// Command purelint enforces the repository's guest-memory access
// discipline on the Go sources: every read or write of a mem.Segment's
// backing slices outside internal/mem must go through the package's
// checked accessors (Load*/Store*, *Range, Trusted*Range), and pointer
// offsets must move through AddChecked/DiffChecked rather than raw
// field arithmetic.
//
// Usage:
//
//	purelint [packages-or-dirs...]   (default: ./...)
//
// Rules (outside internal/mem):
//
//	rawmem: indexing or subslicing a Segment backing slice directly
//	        (p.Seg.I[k], seg.F[a:b], …) bypasses the bounds/freed
//	        discipline the mem accessors centralize
//	rawoff: arithmetic on a raw .Off field (p.Off + k) or forging a
//	        Pointer literal with an explicit Off bypasses
//	        AddChecked/DiffChecked overflow handling
//
// Sites that are deliberate — hot dispatch loops that re-validate by
// construction, oracle scans — carry an audit note:
//
//	//lint:rawmem <why this site is safe>        (this or next line)
//	//lint:file-rawmem <why this file is safe>   (whole file)
//
// When the walked tree contains internal/core/cache.go, purelint also
// enforces cache-key completeness:
//
//	cachekey: every field of core.Config, comp.Options and
//	          transform.Options must either be hashed by cacheKey
//	          (appear as cfg.<Field> — directly or through a local
//	          alias like t := cfg.Transform) or carry a waiver note
//	          //lint:cachekey <why this field cannot affect codegen>
//	          in its doc comment. A codegen-affecting knob that is
//	          missing from the hash would let two differently-compiled
//	          programs share one cache slot.
//
// Taking a whole-slice alias (xs := p.Seg.F) is legal: the alias cannot
// trap by itself, and the Go runtime bounds-checks any later index.
// purelint prints one line per violation and exits non-zero if any
// exist, so it slots into CI next to go vet.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var files []string
	for _, root := range roots {
		root = strings.TrimSuffix(root, "/...")
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") && d.Name() != "." {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fatalf("%v", err)
		}
	}
	sort.Strings(files)

	var bad []string
	for _, path := range files {
		// internal/mem owns the raw representation; the discipline the
		// lint enforces is that everyone else goes through it.
		if strings.Contains(filepath.ToSlash(path), "internal/mem/") {
			continue
		}
		msgs, err := lintFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		bad = append(bad, msgs...)
	}
	ckMsgs, err := checkCacheKey(files)
	if err != nil {
		fatalf("%v", err)
	}
	bad = append(bad, ckMsgs...)
	for _, m := range bad {
		fmt.Println(m)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "purelint: %d violation(s)\n", len(bad))
		os.Exit(1)
	}
}

func lintFile(path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	waived := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if strings.HasPrefix(text, "lint:file-rawmem") {
				return nil, nil
			}
			if strings.HasPrefix(text, "lint:rawmem") {
				// The note covers its own line and the next one, so it
				// can trail the statement or sit right above it.
				line := fset.Position(c.Pos()).Line
				waived[line] = true
				waived[line+1] = true
			}
		}
	}
	var msgs []string
	report := func(pos token.Pos, rule, msg string) {
		p := fset.Position(pos)
		if waived[p.Line] {
			return
		}
		msgs = append(msgs, fmt.Sprintf("%s: %s: %s", p, rule, msg))
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IndexExpr:
			if segSlice(x.X) {
				report(x.Pos(), "rawmem",
					"raw Segment slice index bypasses the mem accessors (use Load*/Store* or a *Range view)")
			}
		case *ast.SliceExpr:
			if segSlice(x.X) {
				report(x.Pos(), "rawmem",
					"raw Segment subslice bypasses the mem accessors (use FloatRange/IntRange or a Trusted*Range)")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD || x.Op == token.SUB || x.Op == token.MUL {
				if offField(x.X) || offField(x.Y) {
					report(x.Pos(), "rawoff",
						"raw .Off arithmetic bypasses AddChecked/DiffChecked")
				}
			}
		case *ast.CompositeLit:
			if pointerLit(x) && hasField(x, "Off") && hasField(x, "Seg") {
				report(x.Pos(), "rawoff",
					"forged Pointer with explicit Off bypasses AddChecked")
			}
		}
		return true
	})
	return msgs, nil
}

// segSlice reports whether e is a Segment backing-slice field: a
// selector .I/.F/.P whose receiver is itself a .Seg selector or an
// identifier conventionally naming a segment.
func segSlice(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "I", "F", "P":
	default:
		return false
	}
	switch recv := sel.X.(type) {
	case *ast.SelectorExpr:
		return recv.Sel.Name == "Seg"
	case *ast.Ident:
		return recv.Name == "seg" || recv.Name == "Seg"
	}
	return false
}

// offField reports whether e (modulo parens) selects a field named Off.
func offField(e ast.Expr) bool {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Off"
}

// pointerLit reports whether the composite literal's type names
// Pointer (mem.Pointer or a local alias).
func pointerLit(x *ast.CompositeLit) bool {
	switch t := x.Type.(type) {
	case *ast.Ident:
		return t.Name == "Pointer"
	case *ast.SelectorExpr:
		return t.Sel.Name == "Pointer"
	}
	return false
}

// hasField reports whether the composite literal sets the named field.
func hasField(x *ast.CompositeLit, name string) bool {
	for _, el := range x.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == name {
			return true
		}
	}
	return false
}

// ----------------------------------------------------------------------------
// cachekey: program-cache key completeness

// cacheKeyStructs are the option structs whose fields shape compiled
// Programs; the rule checks each declared field against the set of
// fields cacheKey actually hashes.
var cacheKeyStructs = []struct{ file, typeName string }{
	{"internal/core/pipeline.go", "Config"},
	{"internal/comp/comp.go", "Options"},
	{"internal/transform/transform.go", "Options"},
}

// checkCacheKey runs the cachekey rule when the walked file set
// contains the cache implementation (so linting an unrelated subtree
// stays silent). Field-name matching is deliberately flat: a hashed
// Config field and a comp.Options field of the same name (Backend,
// Engine, NoFuse, …) are the same knob — the pipeline copies one into
// the other — so one hash write covers both declarations.
func checkCacheKey(files []string) ([]string, error) {
	bySuffix := func(sfx string) string {
		for _, f := range files {
			if strings.HasSuffix(filepath.ToSlash(f), sfx) {
				return f
			}
		}
		return ""
	}
	cachePath := bySuffix("internal/core/cache.go")
	if cachePath == "" {
		return nil, nil
	}
	hashed, err := hashedFields(cachePath)
	if err != nil {
		return nil, err
	}
	if len(hashed) == 0 {
		return []string{cachePath + ": cachekey: cacheKey hashes no cfg fields (rule cannot verify completeness)"}, nil
	}
	var msgs []string
	for _, tgt := range cacheKeyStructs {
		path := bySuffix(tgt.file)
		if path == "" {
			continue
		}
		m, err := checkStructHashed(path, tgt.typeName, hashed)
		if err != nil {
			return nil, err
		}
		msgs = append(msgs, m...)
	}
	return msgs, nil
}

// hashedFields parses the cacheKey function and returns the names of
// every field it hashes: selectors on cfg itself plus selectors on
// locals assigned from a cfg field (t := cfg.Transform; t.Tile …).
func hashedFields(cachePath string) (map[string]bool, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, cachePath, nil, 0)
	if err != nil {
		return nil, err
	}
	var body *ast.BlockStmt
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == "cacheKey" {
			body = fd.Body
		}
	}
	if body == nil {
		return nil, fmt.Errorf("%s: cacheKey function not found", cachePath)
	}
	aliases := map[string]bool{"cfg": true}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			sel, ok := rhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if recv, ok := sel.X.(*ast.Ident); ok && aliases[recv.Name] {
				if lhs, ok := as.Lhs[i].(*ast.Ident); ok {
					aliases[lhs.Name] = true
				}
			}
		}
		return true
	})
	hashed := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if recv, ok := sel.X.(*ast.Ident); ok && aliases[recv.Name] {
			hashed[sel.Sel.Name] = true
		}
		return true
	})
	return hashed, nil
}

// checkStructHashed reports fields of the named struct that are neither
// hashed by cacheKey nor waived with //lint:cachekey in the field's doc
// or trailing comment.
func checkStructHashed(path, typeName string, hashed map[string]bool) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var st *ast.StructType
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok || ts.Name.Name != typeName {
			return true
		}
		if s, ok := ts.Type.(*ast.StructType); ok {
			st = s
		}
		return false
	})
	if st == nil {
		return nil, fmt.Errorf("%s: struct %s not found", path, typeName)
	}
	waived := func(fl *ast.Field) bool {
		for _, cg := range []*ast.CommentGroup{fl.Doc, fl.Comment} {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				if strings.Contains(c.Text, "lint:cachekey") {
					return true
				}
			}
		}
		return false
	}
	var msgs []string
	for _, fl := range st.Fields.List {
		for _, name := range fl.Names {
			if hashed[name.Name] || waived(fl) {
				continue
			}
			p := fset.Position(name.Pos())
			msgs = append(msgs, fmt.Sprintf(
				"%s: cachekey: %s.%s is not hashed by cacheKey and carries no //lint:cachekey waiver (a codegen-affecting knob missing from the key corrupts the program cache)",
				p, typeName, name.Name))
		}
	}
	return msgs, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "purelint: "+format+"\n", args...)
	os.Exit(1)
}
