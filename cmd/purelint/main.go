// Command purelint enforces the repository's guest-memory access
// discipline on the Go sources: every read or write of a mem.Segment's
// backing slices outside internal/mem must go through the package's
// checked accessors (Load*/Store*, *Range, Trusted*Range), and pointer
// offsets must move through AddChecked/DiffChecked rather than raw
// field arithmetic.
//
// Usage:
//
//	purelint [packages-or-dirs...]   (default: ./...)
//
// Rules (outside internal/mem):
//
//	rawmem: indexing or subslicing a Segment backing slice directly
//	        (p.Seg.I[k], seg.F[a:b], …) bypasses the bounds/freed
//	        discipline the mem accessors centralize
//	rawoff: arithmetic on a raw .Off field (p.Off + k) or forging a
//	        Pointer literal with an explicit Off bypasses
//	        AddChecked/DiffChecked overflow handling
//
// Sites that are deliberate — hot dispatch loops that re-validate by
// construction, oracle scans — carry an audit note:
//
//	//lint:rawmem <why this site is safe>        (this or next line)
//	//lint:file-rawmem <why this file is safe>   (whole file)
//
// Taking a whole-slice alias (xs := p.Seg.F) is legal: the alias cannot
// trap by itself, and the Go runtime bounds-checks any later index.
// purelint prints one line per violation and exits non-zero if any
// exist, so it slots into CI next to go vet.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var files []string
	for _, root := range roots {
		root = strings.TrimSuffix(root, "/...")
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") && d.Name() != "." {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fatalf("%v", err)
		}
	}
	sort.Strings(files)

	var bad []string
	for _, path := range files {
		// internal/mem owns the raw representation; the discipline the
		// lint enforces is that everyone else goes through it.
		if strings.Contains(filepath.ToSlash(path), "internal/mem/") {
			continue
		}
		msgs, err := lintFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		bad = append(bad, msgs...)
	}
	for _, m := range bad {
		fmt.Println(m)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "purelint: %d violation(s)\n", len(bad))
		os.Exit(1)
	}
}

func lintFile(path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	waived := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if strings.HasPrefix(text, "lint:file-rawmem") {
				return nil, nil
			}
			if strings.HasPrefix(text, "lint:rawmem") {
				// The note covers its own line and the next one, so it
				// can trail the statement or sit right above it.
				line := fset.Position(c.Pos()).Line
				waived[line] = true
				waived[line+1] = true
			}
		}
	}
	var msgs []string
	report := func(pos token.Pos, rule, msg string) {
		p := fset.Position(pos)
		if waived[p.Line] {
			return
		}
		msgs = append(msgs, fmt.Sprintf("%s: %s: %s", p, rule, msg))
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IndexExpr:
			if segSlice(x.X) {
				report(x.Pos(), "rawmem",
					"raw Segment slice index bypasses the mem accessors (use Load*/Store* or a *Range view)")
			}
		case *ast.SliceExpr:
			if segSlice(x.X) {
				report(x.Pos(), "rawmem",
					"raw Segment subslice bypasses the mem accessors (use FloatRange/IntRange or a Trusted*Range)")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD || x.Op == token.SUB || x.Op == token.MUL {
				if offField(x.X) || offField(x.Y) {
					report(x.Pos(), "rawoff",
						"raw .Off arithmetic bypasses AddChecked/DiffChecked")
				}
			}
		case *ast.CompositeLit:
			if pointerLit(x) && hasField(x, "Off") && hasField(x, "Seg") {
				report(x.Pos(), "rawoff",
					"forged Pointer with explicit Off bypasses AddChecked")
			}
		}
		return true
	})
	return msgs, nil
}

// segSlice reports whether e is a Segment backing-slice field: a
// selector .I/.F/.P whose receiver is itself a .Seg selector or an
// identifier conventionally naming a segment.
func segSlice(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "I", "F", "P":
	default:
		return false
	}
	switch recv := sel.X.(type) {
	case *ast.SelectorExpr:
		return recv.Sel.Name == "Seg"
	case *ast.Ident:
		return recv.Name == "seg" || recv.Name == "Seg"
	}
	return false
}

// offField reports whether e (modulo parens) selects a field named Off.
func offField(e ast.Expr) bool {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Off"
}

// pointerLit reports whether the composite literal's type names
// Pointer (mem.Pointer or a local alias).
func pointerLit(x *ast.CompositeLit) bool {
	switch t := x.Type.(type) {
	case *ast.Ident:
		return t.Name == "Pointer"
	case *ast.SelectorExpr:
		return t.Sel.Name == "Pointer"
	}
	return false
}

// hasField reports whether the composite literal sets the named field.
func hasField(x *ast.CompositeLit, name string) bool {
	for _, el := range x.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == name {
			return true
		}
	}
	return false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "purelint: "+format+"\n", args...)
	os.Exit(1)
}
