// Command purecd is the purec compile-and-run daemon: an HTTP service
// over the tool chain that accepts {source, inputs, options} requests,
// compiles each distinct program once (in-memory cache, singleflight),
// persists build products to an on-disk cache so a restarted daemon
// serves known programs without re-entering the compile chain, executes
// every request in a pooled Process (reset-don't-reallocate), and
// bounds its own load with a global concurrency limit, a timed wait
// queue and per-program run quotas.
//
// Usage:
//
//	purecd [flags]
//
//	-addr HOST:PORT       listen address (default :8321)
//	-cache-dir DIR        persistent program cache directory (empty =
//	                      in-memory caching only)
//	-cache-entries N      on-disk cache entry bound (0 = unlimited)
//	-cache-size N         in-memory program cache bound (default 128)
//	-max-concurrent N     builds+runs executing at once (default
//	                      GOMAXPROCS)
//	-queue-depth N        requests allowed to wait for a run slot
//	                      (default 4×max-concurrent); beyond it: 503
//	-queue-timeout D      max wait for a run slot (default 5s); after
//	                      it: 503
//	-per-program N        concurrent runs of one program (default
//	                      max-concurrent); beyond it: 429
//	-pool-size N          idle Processes retained per program (default
//	                      max-concurrent)
//	-no-pool              fresh Process per request (A/B baseline)
//	-max-source BYTES     request body bound (default 4MiB)
//
// Endpoints: POST /run (body: {"source": "...", "defines": {...},
// "options": {"backend", "engine", "cores", "sequential", "schedule",
// "memoize"}}; response body is the guest's stdout byte-for-byte, run
// metadata in X-Purecd-* headers and trailers), GET /stats, GET
// /healthz.
//
// SIGINT/SIGTERM drain: the listener closes immediately, in-flight
// requests run to completion (bounded by -queue-timeout plus the runs
// themselves), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"purec/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	cacheDir := flag.String("cache-dir", "", "persistent program cache directory (empty = memory only)")
	cacheEntries := flag.Int("cache-entries", 0, "on-disk cache entry bound (0 = unlimited)")
	cacheSize := flag.Int("cache-size", 0, "in-memory program cache bound (0 = default 128)")
	maxConc := flag.Int("max-concurrent", 0, "builds+runs executing at once (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "requests allowed to wait for a run slot (0 = 4×max-concurrent)")
	queueTimeout := flag.Duration("queue-timeout", 0, "max wait for a run slot (0 = 5s)")
	perProgram := flag.Int("per-program", 0, "concurrent runs of one program (0 = max-concurrent)")
	poolSize := flag.Int("pool-size", 0, "idle Processes retained per program (0 = max-concurrent)")
	noPool := flag.Bool("no-pool", false, "fresh Process per request (A/B baseline)")
	maxSource := flag.Int64("max-source", 0, "request body bound in bytes (0 = 4MiB)")
	flag.Parse()

	srv, err := serve.New(serve.Options{
		MaxConcurrent:   *maxConc,
		QueueDepth:      *queueDepth,
		QueueTimeout:    *queueTimeout,
		PerProgramLimit: *perProgram,
		PoolSize:        *poolSize,
		NoPool:          *noPool,
		CacheDir:        *cacheDir,
		DiskEntries:     *cacheEntries,
		CacheSize:       *cacheSize,
		MaxSourceBytes:  *maxSource,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "purecd: %v\n", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "purecd: listening on %s", *addr)
		if *cacheDir != "" {
			fmt.Fprintf(os.Stderr, " (disk cache %s)", *cacheDir)
		}
		fmt.Fprintln(os.Stderr)
		done <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-done:
		fmt.Fprintf(os.Stderr, "purecd: %v\n", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "purecd: %v, draining in-flight requests\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "purecd: shutdown: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "purecd: drained")
	}
}
