// Command purebench regenerates the paper's evaluation figures
// (Figs. 2–11 of "Pure Functions in C: A Small Keyword for Automatic
// Parallelization") on the purec tool chain.
//
// Usage:
//
//	purebench [-fig all|2|3|...|11|m1|m2|r1|k1|a1|a2|t1|b1|s1] [-cores 1,2,4,8,16,32,64] [-reps 3]
//	          [-matmul-n 160] [-heat-n 160] [-heat-steps 30]
//	          [-sat-pix 2000] [-sat-bands 12] [-sat-iters 48]
//	          [-lama-rows 12000] [-lama-nnz 16] [-memo-classes 24]
//	          [-reduce-n 400000] [-kern-n 65536] [-kern-reps 50]
//	          [-hist-n 400000] [-hist-bins 16,256,4096,65536]
//	          [-a2-n 400000] [-a2-bins 65536] [-a2-touched 256]
//	          [-real-cores 1,2,4]
//	          [-bce-n 96] [-bce-reps 20000] [-gather-m 2048] [-quick]
//	          [-json dir] [-check dir]
//
// Figures m1/m2 are the pure-call memoization scenario (quantized
// satellite retrieval with and without the shared memo table); figure
// r1 is the parallel scalar-reduction scenario (quickstart sum and
// extracted dot kernels, serial vs reduction builds); figure k1 is
// the kernel-fusion A/B (axpy, copy, 1-D stencil and extracted-dot
// matmul with the fusion engine off and on); figure a1 is the
// array-reduction scenario (hist[data[i]]++ with privatized per-worker
// copies, swept over -hist-bins to expose the combine overhead);
// figure a2 is the reduction-runtime knob A/B (the sparse-touch
// histogram under every {-combine=linear|tree} x {dense,sparse
// privates} pair — all bit-identical, so the curves isolate the
// privatize-and-combine cost); figures r1 and a1 additionally carry
// real-team rows: actual goroutine teams over -real-cores timed in
// wall clock, no simulation;
// figure t1 is the statement-engine A/B (closure trees vs linearized
// tapes with fusion off, plus the fused build, over the element-wise
// kernels and a deliberately non-canonical branchy body); figure b1
// is the bounds-check-elimination A/B (checked vs proven builds of the
// element-wise kernels and a gather, plus the proven-vs-opaque gather
// parallelization scenario); figure s1 is the serving-throughput
// scenario behind cmd/purecd (one compiled program hammered by
// concurrent clients, pooled reset-and-reuse Processes vs a fresh
// Process per run — wall-clock real concurrency, not simulated
// time). All extend the paper's evaluation.
//
// Each figure prints as an aligned table: one row per program variant,
// one column per simulated core count.
//
// -json writes each collected figure additionally as BENCH_<FIG>.json
// into the given directory (k1/a1/a2/r1/t1/b1/s1 only — the figures with
// a machine-readable export). -check instead compares the fresh numbers
// against committed BENCH_<FIG>.json baselines in the given directory
// and exits non-zero on a large regression; both flags may be
// combined.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"purec/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, one of 2..11, or m1/m2/r1/k1/a1/a2/t1/b1/s1 (comma-separable)")
	jsonDir := flag.String("json", "", "directory receiving BENCH_<FIG>.json exports (k1/a1/a2/r1/t1/b1/s1)")
	checkDir := flag.String("check", "", "directory holding baseline BENCH_<FIG>.json files to compare against")
	coresFlag := flag.String("cores", "", "comma-separated core counts (default 1,2,4,8,16,32,64)")
	reps := flag.Int("reps", 0, "repetitions per measurement (default 3)")
	quick := flag.Bool("quick", false, "tiny workloads for a fast smoke run")
	matmulN := flag.Int("matmul-n", 0, "matrix size N")
	heatN := flag.Int("heat-n", 0, "heat plate size N")
	heatSteps := flag.Int("heat-steps", 0, "heat time steps")
	satPix := flag.Int("sat-pix", 0, "satellite pixel count")
	satBands := flag.Int("sat-bands", 0, "satellite band count")
	satIters := flag.Int("sat-iters", 0, "satellite max retrieval iterations")
	lamaRows := flag.Int("lama-rows", 0, "ELL matrix rows")
	lamaNNZ := flag.Int("lama-nnz", 0, "ELL non-zeros per row")
	memoClasses := flag.Int("memo-classes", 0, "distinct argument classes of the memoization scenario")
	reduceN := flag.Int("reduce-n", 0, "iteration/vector length of the reduction scenario")
	kernN := flag.Int("kern-n", 0, "vector length of the kernel-fusion scenario (fig k1)")
	kernReps := flag.Int("kern-reps", 0, "sweeps per run of the kernel-fusion scenario (fig k1)")
	histN := flag.Int("hist-n", 0, "element count of the array-reduction scenario (fig a1)")
	histBins := flag.String("hist-bins", "", "comma-separated bin counts of the array-reduction scenario (fig a1)")
	a2N := flag.Int("a2-n", 0, "element count of the sparse-touch histogram (fig a2)")
	a2Bins := flag.Int("a2-bins", 0, "bin-space size of the sparse-touch histogram (fig a2)")
	a2Touched := flag.Int("a2-touched", 0, "touched-window width of the sparse-touch histogram (fig a2)")
	realCores := flag.String("real-cores", "", "comma-separated core counts of the real-team rows (default 1,2,4)")
	bceN := flag.Int("bce-n", 0, "vector length of the launch-visibility rows (fig b1)")
	bceReps := flag.Int("bce-reps", 0, "sweeps per run of the launch-visibility rows (fig b1)")
	gatherM := flag.Int("gather-m", 0, "gathered-table length of the gather rows (fig b1)")
	flag.Parse()

	p := bench.Default()
	if *quick {
		p = bench.Quick()
	}
	if *coresFlag != "" {
		var cores []int
		for _, part := range strings.Split(*coresFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 1 {
				fatalf("bad -cores value %q", part)
			}
			cores = append(cores, v)
		}
		p.Cores = cores
	}
	if *reps > 0 {
		p.Reps = *reps
	}
	setIf(&p.MatmulN, *matmulN)
	setIf(&p.HeatN, *heatN)
	setIf(&p.HeatSteps, *heatSteps)
	setIf(&p.SatPix, *satPix)
	setIf(&p.SatBands, *satBands)
	setIf(&p.SatIters, *satIters)
	setIf(&p.LamaRows, *lamaRows)
	setIf(&p.LamaNNZ, *lamaNNZ)
	setIf(&p.MemoClasses, *memoClasses)
	setIf(&p.ReduceN, *reduceN)
	setIf(&p.KernN, *kernN)
	setIf(&p.KernReps, *kernReps)
	setIf(&p.HistN, *histN)
	setIf(&p.A2N, *a2N)
	setIf(&p.A2Bins, *a2Bins)
	setIf(&p.A2Touched, *a2Touched)
	setIf(&p.BCEN, *bceN)
	setIf(&p.BCEReps, *bceReps)
	setIf(&p.GatherM, *gatherM)
	if *histBins != "" {
		var bins []int
		for _, part := range strings.Split(*histBins, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 1 {
				fatalf("bad -hist-bins value %q", part)
			}
			bins = append(bins, v)
		}
		p.HistBins = bins
	}
	if *realCores != "" {
		var cores []int
		for _, part := range strings.Split(*realCores, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 1 {
				fatalf("bad -real-cores value %q", part)
			}
			cores = append(cores, v)
		}
		p.RealCores = cores
	}

	want := map[string]bool{}
	if *fig == "all" {
		for i := 2; i <= 11; i++ {
			want[strconv.Itoa(i)] = true
		}
		for _, f := range []string{"m1", "m2", "r1", "k1", "a1", "a2", "t1", "b1", "s1"} {
			want[f] = true
		}
	} else {
		for _, part := range strings.Split(*fig, ",") {
			want[strings.ToLower(strings.TrimSpace(part))] = true
		}
	}

	// handleJSON exports and/or baseline-checks a figure's
	// machine-readable form, per the -json/-check flags.
	var regressions []string
	handleJSON := func(jf *bench.JSONFigure) {
		if *jsonDir != "" {
			path, err := jf.Write(*jsonDir)
			if err != nil {
				fatalf("json: %v", err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		if *checkDir != "" {
			base, err := bench.ReadJSONFigure(filepath.Join(*checkDir, jf.Filename()))
			if err != nil {
				fatalf("check: %v", err)
			}
			if bad := bench.CheckBaseline(jf, base); bad != nil {
				regressions = append(regressions, bad...)
			} else {
				fmt.Printf("baseline check passed: %s\n", jf.Filename())
			}
		}
	}

	if want["2"] {
		fmt.Println(bench.Fig2())
	}
	if want["3"] || want["4"] || want["5"] {
		d, err := bench.CollectMatmul(p)
		if err != nil {
			fatalf("matmul: %v", err)
		}
		if want["3"] {
			fmt.Println(d.Fig3().Render())
		}
		if want["4"] {
			fmt.Println(d.Fig4().Render())
		}
		if want["5"] {
			fmt.Println(d.Fig5().Render())
		}
	}
	if want["6"] || want["7"] {
		d, err := bench.CollectHeat(p)
		if err != nil {
			fatalf("heat: %v", err)
		}
		if want["6"] {
			fmt.Println(d.Fig6().Render())
		}
		if want["7"] {
			fmt.Println(d.Fig7().Render())
		}
	}
	if want["8"] || want["9"] {
		d, err := bench.CollectSatellite(p)
		if err != nil {
			fatalf("satellite: %v", err)
		}
		if want["8"] {
			fmt.Println(d.Fig8().Render())
		}
		if want["9"] {
			fmt.Println(d.Fig9().Render())
		}
	}
	if want["10"] || want["11"] {
		d, err := bench.CollectLama(p)
		if err != nil {
			fatalf("lama: %v", err)
		}
		if want["10"] {
			fmt.Println(d.Fig10().Render())
		}
		if want["11"] {
			fmt.Println(d.Fig11().Render())
		}
	}
	if want["m1"] || want["m2"] {
		d, err := bench.CollectMemo(p)
		if err != nil {
			fatalf("memo: %v", err)
		}
		if want["m1"] {
			fmt.Println(d.FigMemo().Render())
		}
		if want["m2"] {
			fmt.Println(d.FigMemoSpeedup().Render())
		}
	}
	if want["r1"] {
		d, err := bench.CollectReduction(p)
		if err != nil {
			fatalf("reduction: %v", err)
		}
		fmt.Println(d.FigR1().Render())
		handleJSON(d.JSON())
	}
	if want["k1"] {
		d, err := bench.CollectKernels(p)
		if err != nil {
			fatalf("kernels: %v", err)
		}
		fmt.Println(d.FigK1())
		handleJSON(d.JSON())
	}
	if want["a1"] {
		d, err := bench.CollectHistogram(p)
		if err != nil {
			fatalf("histogram: %v", err)
		}
		fmt.Println(d.FigA1().Render())
		handleJSON(d.JSON())
	}
	if want["a2"] {
		d, err := bench.CollectA2(p)
		if err != nil {
			fatalf("a2: %v", err)
		}
		fmt.Println(d.FigA2().Render())
		handleJSON(d.JSON())
	}
	if want["t1"] {
		d, err := bench.CollectTape(p)
		if err != nil {
			fatalf("tape: %v", err)
		}
		fmt.Println(d.FigT1())
		handleJSON(d.JSON())
	}
	if want["b1"] {
		d, err := bench.CollectBCE(p)
		if err != nil {
			fatalf("bce: %v", err)
		}
		fmt.Println(d.FigB1())
		handleJSON(d.JSON())
	}
	if want["s1"] {
		d, err := bench.CollectServe(p)
		if err != nil {
			fatalf("serve: %v", err)
		}
		fmt.Println(d.FigS1())
		handleJSON(d.JSON())
	}
	for _, m := range regressions {
		fmt.Fprintln(os.Stderr, "purebench: regression: "+m)
	}
	if len(regressions) > 0 {
		os.Exit(1)
	}
}

func setIf(dst *int, v int) {
	if v > 0 {
		*dst = v
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "purebench: "+format+"\n", args...)
	os.Exit(1)
}
