// Command purecc is the compiler driver of the purec tool chain: it runs
// a mini-C file through the paper's full pipeline (Fig. 1) and executes
// the result.
//
// Usage:
//
//	purecc [flags] file.c
//
//	-mode pure|pluto      parallelizer mode (default pure)
//	-backend LIST         comma-separated compile selections: the
//	                      compiler analog (gcc or icc, default gcc)
//	                      and/or the statement engine (closure or
//	                      tape, default closure) — e.g. -backend
//	                      icc,tape. The tape engine linearizes
//	                      statement bodies into flat bytecode run by a
//	                      switch-dispatch loop; results are
//	                      bit-identical to the closure engine
//	-cores N              worker count for parallel regions (default 1)
//	-seq                  disable parallelization (sequential baseline)
//	-tile                 enable rectangular tiling (PluTo-SICA analog)
//	-vectorize            enable fused reduction kernels everywhere
//	                      (SICA SIMD analog)
//	-fuse                 kernel fusion (default on): element-wise
//	                      affine innermost loops compile to fused
//	                      segment-walking kernels with one hoisted
//	                      range check per operand; -fuse=false falls
//	                      back to per-iteration closure dispatch
//	-skew                 enable loop shearing when it enables parallelism
//	-schedule S           OpenMP schedule clause (e.g. dynamic,1)
//	-memo                 memoize calls of memoizable pure functions
//	                      (scalar signature, global-free body) in a
//	                      table shared by all processes of the program
//	-memo-capacity N      bound the memo table entry count (default
//	                      65536)
//	-analyze              print the value-range analysis report instead
//	                      of running: bounds proofs feed check elision
//	                      and gather parallelization; findings cover
//	                      definite/possible out-of-bounds subscripts,
//	                      reads of uninitialized scalars, and dead
//	                      guards, each with the interval derivation. A
//	                      definite out-of-bounds access is a compile
//	                      error (exit 1)
//	-nobce                keep every runtime check even when the
//	                      analysis proved it redundant (bit-identical;
//	                      for Fig B1 and debugging)
//	-noalias              disable the points-to analysis: pointer-based
//	                      accesses stay conservative, so nests using
//	                      them serialize and keep their checks
//	                      (bit-identical; for A/B and debugging)
//	-combine T            reduction combine topology: linear (default,
//	                      worker-ordered folds) or tree (log-depth
//	                      pairwise merges). Integer reductions are
//	                      bit-identical across topologies; float
//	                      reductions follow their topology's documented
//	                      bracketing, identical across runs, schedules
//	                      and real/sim teams
//	-sparse-privates      allocate array-reduction private copies as
//	                      block-sparse segments with lazy first-touch
//	                      identity fill: a worker touching k bins of an
//	                      n-bin histogram pays O(k), not O(n)
//	                      (bit-identical to dense privates)
//	-D NAME=VALUE         define an object-like macro (repeatable)
//	-emit stage           print a stage instead of running:
//	                      stripped|expanded|marked|transformed|final|report|pure
//	                      (report lists each nest's parallel level,
//	                      reduction clauses — scalar "+:s" and array
//	                      "+:hist[]" forms — and, for serial nests,
//	                      the reason, e.g. "serialized by scalar write
//	                      to s", a write through an unresolved pointer,
//	                      or the offending access of a near-miss array
//	                      reduction — plus per-nest alias notes showing
//	                      how each pointer access was resolved)
//	-time                 print the wall time of main()
//	-runs N               execute main N times, each in a fresh Process
//	                      of the one compiled Program (default 1)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"purec/internal/comp"
	"purec/internal/core"
	"purec/internal/rt"
	"purec/internal/transform"
)

type defineFlags map[string]string

func (d defineFlags) String() string { return "" }

func (d defineFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		d[name] = "1"
		return nil
	}
	d[name] = val
	return nil
}

func main() {
	mode := flag.String("mode", "pure", "parallelizer mode: pure or pluto")
	backend := flag.String("backend", "gcc", "comma-separated: compiler analog (gcc|icc) and/or statement engine (closure|tape)")
	cores := flag.Int("cores", 1, "worker count")
	seq := flag.Bool("seq", false, "disable parallelization")
	tile := flag.Bool("tile", false, "enable rectangular tiling")
	vectorize := flag.Bool("vectorize", false, "enable fused reduction kernels everywhere (SICA SIMD analog)")
	fuse := flag.Bool("fuse", true, "kernel fusion: compile element-wise affine loops to segment-walking kernels (-fuse=false for closure dispatch)")
	skew := flag.Bool("skew", false, "enable loop shearing")
	schedule := flag.String("schedule", "", "OpenMP schedule clause")
	memoize := flag.Bool("memo", false, "memoize calls of memoizable pure functions")
	memoCap := flag.Int("memo-capacity", 0, "memo table entry bound (0 = default)")
	analyze := flag.Bool("analyze", false, "print the value-range analysis report instead of running")
	noBCE := flag.Bool("nobce", false, "keep runtime checks the analysis proved redundant")
	noAlias := flag.Bool("noalias", false, "disable the points-to analysis (pointer nests stay serial)")
	combine := flag.String("combine", "linear", "reduction combine topology: linear or tree")
	sparsePriv := flag.Bool("sparse-privates", false, "block-sparse array-reduction privates with lazy identity fill")
	emit := flag.String("emit", "", "print a pipeline stage instead of running")
	timed := flag.Bool("time", false, "print wall time of main()")
	runs := flag.Int("runs", 1, "execute main N times, each in a fresh process")
	defines := defineFlags{}
	flag.Var(defines, "D", "define NAME=VALUE (repeatable)")
	flag.Parse()

	if *runs < 1 {
		fatalf("-runs must be at least 1")
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: purecc [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}

	cfg := core.Config{
		FileName:    flag.Arg(0),
		Defines:     defines,
		Parallelize: !*seq,
		TeamSize:    *cores,
		Transform: transform.Options{
			Tile:     *tile,
			Skew:     *skew,
			Schedule: *schedule,
		},
		Vectorize:      *vectorize,
		NoFuse:         !*fuse,
		NoBCE:          *noBCE,
		NoAlias:        *noAlias,
		SparsePrivates: *sparsePriv,
		Memoize:        *memoize,
		MemoCapacity:   *memoCap,
		Stdout:         os.Stdout,
	}
	if cfg.Combine, err = rt.ParseCombine(*combine); err != nil {
		fatalf("%v", err)
	}
	switch *mode {
	case "pure":
		cfg.Mode = core.ModePure
	case "pluto":
		cfg.Mode = core.ModePluTo
	default:
		fatalf("unknown mode %q", *mode)
	}
	for _, sel := range strings.Split(*backend, ",") {
		switch strings.TrimSpace(sel) {
		case "gcc":
			cfg.Backend = comp.BackendGCC
		case "icc":
			cfg.Backend = comp.BackendICC
		case "closure":
			cfg.Engine = comp.EngineClosure
		case "tape":
			cfg.Engine = comp.EngineTape
		default:
			fatalf("unknown backend %q (want gcc, icc, closure or tape)", sel)
		}
	}

	prog, art, _, err := core.BuildProgram(string(src), cfg)
	if err != nil {
		fatalf("%v", err)
	}

	if *analyze {
		if art.VRA == nil || len(art.VRA.Findings) == 0 {
			fmt.Println("value-range analysis: no findings")
		} else {
			for _, f := range art.VRA.Findings {
				fmt.Println(f)
			}
		}
		fmt.Printf("elided checks: %d\n", prog.ElidedChecks())
		if art.VRA != nil && art.VRA.HasDefiniteOOB() {
			fatalf("program contains a definite out-of-bounds access")
		}
		return
	}

	switch *emit {
	case "":
		// run below
	case "stripped":
		fmt.Print(art.Stages.Stripped)
		return
	case "expanded":
		fmt.Print(art.Stages.Expanded)
		return
	case "marked":
		fmt.Print(art.Stages.Marked)
		return
	case "transformed":
		fmt.Print(art.Stages.Transformed)
		return
	case "final":
		fmt.Print(art.Stages.Final)
		return
	case "report":
		fmt.Printf("verified pure functions: %s\n", strings.Join(sortedNames(art.Pure), ", "))
		fmt.Printf("memoizable pure functions: %s\n", strings.Join(sortedNames(art.Memoizable), ", "))
		fmt.Printf("SCoPs: %d\n", art.SCoPs)
		fmt.Printf("fused kernels: %d\n", prog.FusedKernels())
		fmt.Printf("elided checks: %d\n", prog.ElidedChecks())
		if instrs, consts, temps := prog.TapeStats(); prog.Engine() == comp.EngineTape {
			fmt.Printf("tape: %d instructions, %d pooled constants, %d temp slots\n",
				instrs, consts, temps)
		}
		if art.Report != nil {
			fmt.Print(art.Report.String())
		}
		for _, r := range art.Rejections {
			fmt.Printf("rejected: %s\n", r)
		}
		return
	case "pure":
		fmt.Println(strings.Join(sortedNames(art.Pure), "\n"))
		return
	default:
		fatalf("unknown -emit stage %q", *emit)
	}

	// Every run executes in its own Process of the one immutable
	// Program: the compiler chain runs once however many times the
	// program executes. With -runs N the runs draw from a size-1
	// Process pool, so run 2..N reset-and-reuse run 1's heap and
	// global arenas instead of reallocating them.
	pool := prog.NewPool(comp.PoolOptions{
		Size:    1,
		NewTeam: func() *rt.Team { return rt.NewTeam(*cores) },
	})
	var ret int64
	for r := 0; r < *runs; r++ {
		proc, perr := pool.Get()
		if perr != nil {
			fatalf("process: %v", perr)
		}
		proc.SetStdout(os.Stdout)
		start := time.Now()
		var err error
		ret, err = proc.RunMain()
		dur := time.Since(start)
		if err != nil {
			fatalf("run: %v", err)
		}
		pool.Put(proc)
		if *timed {
			fmt.Fprintf(os.Stderr, "main returned %d in %s (%d cores, %s backend)\n",
				ret, dur, *cores, *backend)
		}
	}
	if *runs > 1 {
		s := pool.Stats()
		fmt.Fprintf(os.Stderr, "pool: %d runs, %d process reuses\n", s.Gets, s.Reuses)
	}
	if *memoize {
		s := prog.MemoStats()
		fmt.Fprintf(os.Stderr, "memo: %d hits / %d misses / %d bypassed (%.1f%% hit rate, %d entries)\n",
			s.Hits, s.Misses, s.Bypassed, 100*s.HitRate(), s.Entries)
	}
	os.Exit(int(ret & 0xff))
}

func sortedNames(ns []string) []string {
	out := append([]string{}, ns...)
	sort.Strings(out)
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "purecc: "+format+"\n", args...)
	os.Exit(1)
}
