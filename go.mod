module purec

go 1.22
