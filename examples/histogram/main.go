// Histogram: the array-reduction demo — `hist[data[i]]++`, a bin-count
// over a data array, writes the hist array through a data-dependent
// subscript every iteration, which classically serializes the loop
// (two iterations may hit the same bin). purec recognizes the update
// as an array reduction and parallelizes it end to end: the polyhedral
// stage drops the accumulator array's carried dependences, the
// transformer emits #pragma omp parallel for reduction(+:hist[]), and
// the runtime gives every worker a private zero-initialized copy of
// hist, combining the copies element-wise in worker order after the
// join (see examples/histogram/README.md for the privatization and
// determinism details).
//
//	go run ./examples/histogram
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"purec"
)

const src = `#include <stdio.h>
#define N 100000
#define BINS 32

int data[N];

void initdata(void) {
    for (int i = 0; i < N; i++)
        data[i] = (i * 1103515245 + 12345) % BINS;
}

int main(void) {
    initdata();
    int hist[BINS];
    for (int b = 0; b < BINS; b++)
        hist[b] = 0;
    for (int i = 0; i < N; i++)
        hist[data[i]]++;
    int checksum = 0;
    for (int b = 0; b < BINS; b++)
        checksum += hist[b] * (b + 1);
    printf("bins: %d  checksum: %d\n", BINS, checksum);
    return 0;
}
`

func main() {
	// Parallel build: the bin-count loop parallelizes even though every
	// iteration writes the hist array.
	par, err := purec.Build(src, purec.Config{
		Parallelize: true,
		TeamSize:    8,
		Stdout:      os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== transformed source (array-reduction clause inserted) ===")
	for _, line := range strings.Split(par.Stages.Transformed, "\n") {
		if strings.Contains(line, "#pragma omp") {
			fmt.Println(strings.TrimSpace(line))
		}
	}

	fmt.Println("\n=== running on 8 workers ===")
	if _, err := par.Machine.RunMain(); err != nil {
		log.Fatal(err)
	}

	// Serial baseline: integer array reductions are bit-identical at
	// every team size, so both runs print the same checksum.
	seq, err := purec.Build(src, purec.Config{Stdout: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== serial baseline (identical checksum) ===")
	if _, err := seq.Machine.RunMain(); err != nil {
		log.Fatal(err)
	}

	// A counterexample: reading the histogram through a second
	// subscript is NOT a reduction, and the report names the offending
	// read.
	diag, err := purec.Build(`
int a[1000], b[1000];
int main(void) {
    int hist[16];
    for (int i = 0; i < 1000; i++)
        hist[a[i]] = hist[b[i]] + 1;
    return 0;
}
`, purec.Config{Parallelize: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== why a near-miss stays serial ===")
	fmt.Print(diag.Report.String())
}
