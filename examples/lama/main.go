// LAMA example: the ELL sparse matrix-vector multiplication (the
// paper's fourth application). Indirect addressing makes the row loop
// opaque to polyhedral analysis; the pure keyword recovers it. Compares
// the automatically parallelized build with the hand-written OpenMP
// kernel.
//
//	go run ./examples/lama [-rows 8000] [-nnz 12]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"time"

	"purec"
	"purec/internal/apps"
	"purec/internal/rt"
)

func main() {
	rows := flag.Int("rows", 8000, "matrix rows")
	nnz := flag.Int("nnz", 12, "max non-zeros per row")
	flag.Parse()

	defs := apps.LamaDefines(*rows, *nnz)
	build := func(src string, parallelize bool) *purec.Result {
		res, err := purec.Build(src, purec.Config{
			Parallelize: parallelize, TeamSize: 1,
			Defines: defs, Stdout: io.Discard,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	auto := build(apps.LamaSrc, true)
	manual := build(apps.LamaManualSrc, false) // hand-written pragma in source

	fmt.Printf("%-10s %16s %16s\n", "cores", "pure auto", "manual static")
	for _, c := range []int{1, 4, 16, 64} {
		fmt.Printf("%-10d %16v %16v\n", c,
			timeRun(auto, c).Round(time.Microsecond),
			timeRun(manual, c).Round(time.Microsecond))
	}

	// Verify both against the native reference.
	want := apps.LamaRef(*rows, *nnz)
	for name, res := range map[string]*purec.Result{"auto": auto, "manual": manual} {
		if err := res.Machine.ResetGlobals(); err != nil {
			log.Fatal(err)
		}
		if _, err := res.Machine.CallInt("initell"); err != nil {
			log.Fatal(err)
		}
		if _, err := res.Machine.CallInt("run"); err != nil {
			log.Fatal(err)
		}
		ptr, _ := res.Machine.GlobalPtr("y")
		got := apps.ReadFloats(ptr, *rows)
		for i := range want {
			if got[i] != want[i] {
				log.Fatalf("%s: row %d differs: %v vs %v", name, i, got[i], want[i])
			}
		}
	}
	fmt.Printf("\nboth builds bit-exact vs reference over %d rows\n", *rows)
}

// timeRun measures the SpMV phase on a simulated team of c workers.
func timeRun(res *purec.Result, c int) time.Duration {
	team := rt.NewSimTeam(c)
	res.Machine.SetTeam(team)
	if err := res.Machine.ResetGlobals(); err != nil {
		log.Fatal(err)
	}
	if _, err := res.Machine.CallInt("initell"); err != nil {
		log.Fatal(err)
	}
	team.TakeSim()
	start := time.Now()
	if _, err := res.Machine.CallInt("run"); err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)
	real, virt := team.TakeSim()
	return wall - real + virt
}
