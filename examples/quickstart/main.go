// Quickstart: run a small pure-annotated C program through the complete
// compiler chain of the paper's Fig. 1 and execute it in parallel.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"purec"
)

const src = `#include <stdio.h>
#define N 64

float in[N], out[N];

pure float smooth(pure float* v, int i) {
    return 0.25f * v[i - 1] + 0.5f * v[i] + 0.25f * v[i + 1];
}

void fill(void) {
    for (int i = 0; i < N; i++)
        in[i] = (float)(i % 10);
}

int main(void) {
    fill();
    for (int i = 1; i < N - 1; i++)
        out[i] = smooth((pure float*)in, i);
    float s = 0.0f;
    for (int i = 0; i < N; i++)
        s += out[i];
    printf("checksum: %f\n", s);
    return 0;
}
`

func main() {
	// Step 1: verify purity only — the PC-CC stage of the paper.
	pure, err := purec.CheckPurity(src)
	if err != nil {
		log.Fatalf("purity: %v", err)
	}
	fmt.Printf("verified pure functions: %v\n\n", pure)

	// Step 2: the full chain — preprocess, verify, mark SCoPs, hide pure
	// calls behind tmpConst_ placeholders, polyhedral transform, insert
	// OpenMP pragmas, lower pure to const, compile.
	res, err := purec.Build(src, purec.Config{
		Parallelize: true,
		TeamSize:    4,
		Stdout:      os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== what the polyhedral stage saw (pure calls substituted) ===")
	fmt.Println(snippet(res.Stages.Marked, "tmpConst"))
	fmt.Println("=== transformed source (OpenMP pragmas inserted) ===")
	fmt.Println(snippet(res.Stages.Transformed, "#pragma omp"))
	fmt.Println("=== final plain-C artifact (pure lowered to const) ===")
	fmt.Println(snippet(res.Stages.Final, "const float*"))

	fmt.Println("=== parallelization report ===")
	fmt.Print(res.Report.String())

	fmt.Println("\n=== running on 4 workers ===")
	if _, err := res.Machine.RunMain(); err != nil {
		log.Fatal(err)
	}
}

// snippet prints the few lines around the first occurrence of marker.
func snippet(src, marker string) string {
	lines := splitLines(src)
	for i, l := range lines {
		if contains(l, marker) {
			lo, hi := i-2, i+4
			if lo < 0 {
				lo = 0
			}
			if hi > len(lines) {
				hi = len(lines)
			}
			out := ""
			for _, s := range lines[lo:hi] {
				out += s + "\n"
			}
			return out
		}
	}
	return "(marker not found)"
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
