// Heat example: the point-heated plate stencil (the paper's second
// application). Shows the pure-function build against the manually
// inlined PluTo-style build and verifies both against the reference.
//
//	go run ./examples/heat [-n 96] [-steps 20] [-cores 8]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"time"

	"purec"
	"purec/internal/apps"
	"purec/internal/core"
)

func main() {
	n := flag.Int("n", 96, "plate size")
	steps := flag.Int("steps", 20, "time steps")
	cores := flag.Int("cores", 8, "workers")
	flag.Parse()

	defs := apps.HeatDefines(*n, *steps)
	want := apps.HeatRef(*n, *steps)

	for _, c := range []struct {
		name string
		src  string
		cfg  purec.Config
	}{
		{"pure", apps.HeatSrc, purec.Config{Parallelize: true, TeamSize: *cores}},
		{"PluTo (inlined)", apps.HeatInlinedSrc,
			purec.Config{Parallelize: true, Mode: core.ModePluTo, TeamSize: *cores}},
	} {
		c.cfg.Defines = defs
		c.cfg.Stdout = io.Discard
		res, err := purec.Build(c.src, c.cfg)
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		start := time.Now()
		if _, err := res.Machine.RunMain(); err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		dur := time.Since(start)
		ptr, _ := res.Machine.GlobalPtr("cur")
		got := apps.ReadMatrix(ptr, *n)
		exact := true
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					exact = false
				}
			}
		}
		fmt.Printf("%-18s %10v   bit-exact vs reference: %v\n",
			c.name, dur.Round(time.Microsecond), exact)
	}

	// Show the heat front after the run.
	res, err := purec.Build(apps.HeatSrc, purec.Config{
		Parallelize: true, TeamSize: *cores, Defines: defs, Stdout: io.Discard,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := res.Machine.RunMain(); err != nil {
		log.Fatal(err)
	}
	ptr, _ := res.Machine.GlobalPtr("cur")
	plate := apps.ReadMatrix(ptr, *n)
	fmt.Println("\nheat front (rows 0..7 around the heated boundary point):")
	for i := 0; i < 8 && i < *n; i++ {
		for j := *n/2 - 8; j < *n/2+8 && j >= 0 && j < *n; j++ {
			fmt.Print(shade(plate[i][j]))
		}
		fmt.Println()
	}
}

func shade(v float32) string {
	switch {
	case v > 50:
		return "#"
	case v > 10:
		return "+"
	case v > 1:
		return "."
	default:
		return " "
	}
}
