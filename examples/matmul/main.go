// Matmul example: the paper's Listing 7 run through every tool-chain
// configuration the evaluation compares, with results verified against a
// native reference.
//
//	go run ./examples/matmul [-n 96] [-cores 8]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"time"

	"purec"
	"purec/internal/apps"
	"purec/internal/core"
)

func main() {
	n := flag.Int("n", 96, "matrix size")
	cores := flag.Int("cores", 8, "workers for the parallel build")
	flag.Parse()

	configs := []struct {
		name string
		src  string
		cfg  purec.Config
	}{
		{"sequential", apps.MatmulSrc, purec.Config{}},
		{"PluTo (inlined source)", apps.MatmulInlinedSrc,
			purec.Config{Parallelize: true, Mode: core.ModePluTo, TeamSize: *cores}},
		{"pure (gcc backend)", apps.MatmulSrc,
			purec.Config{Parallelize: true, TeamSize: *cores}},
		{"pure (icc backend)", apps.MatmulSrc,
			purec.Config{Parallelize: true, TeamSize: *cores, Backend: purec.BackendICC}},
	}

	want := apps.MatmulRef(*n)
	for _, c := range configs {
		c.cfg.Defines = apps.MatmulDefines(*n)
		c.cfg.Stdout = io.Discard
		res, err := purec.Build(c.src, c.cfg)
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		start := time.Now()
		if _, err := res.Machine.RunMain(); err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		dur := time.Since(start)
		ptr, err := res.Machine.GlobalPtr("C")
		if err != nil {
			log.Fatal(err)
		}
		got := apps.ReadMatrix(ptr, *n)
		fmt.Printf("%-24s %10v   max-err %.2e   parallel-loops %d\n",
			c.name, dur.Round(time.Microsecond), maxErr(got, want), parallelLoops(res))
	}
}

func maxErr(got, want [][]float32) float64 {
	worst := 0.0
	for i := range want {
		for j := range want[i] {
			d := math.Abs(float64(got[i][j]) - float64(want[i][j]))
			if s := math.Max(math.Abs(float64(want[i][j])), 1); d/s > worst {
				worst = d / s
			}
		}
	}
	return worst
}

func parallelLoops(res *purec.Result) int {
	if res.Report == nil {
		return 0
	}
	count := 0
	for _, l := range res.Report.Loops {
		if l.ParallelLevel >= 0 {
			count++
		}
	}
	return count
}
