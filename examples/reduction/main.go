// Reduction: the README quickstart loop — `s += square(i)`, the paper's
// headline pattern of a loop accumulating results of a pure call — is
// recognized as an OpenMP-style reduction and parallelized end to end:
// the polyhedral stage drops the accumulator's carried dependence, the
// transformer emits #pragma omp parallel for reduction(+:s), and the
// runtime executes it with per-worker private accumulators and a
// deterministic worker-ordered combine.
//
//	go run ./examples/reduction
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"purec"
)

const src = `#include <stdio.h>
#define N 100000

pure int square(int x) { return x * x; }

int main(void) {
    int s = 0;
    for (int i = 0; i < N; i++)
        s += square(i % 1000);
    printf("sum of squares: %d\n", s);
    return 0;
}
`

func main() {
	// Parallel build: the reduction is recognized and the nest
	// parallelizes even though every iteration writes the scalar s.
	par, err := purec.Build(src, purec.Config{
		Parallelize: true,
		TeamSize:    8,
		Stdout:      os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== transformed source (reduction clause inserted) ===")
	for _, line := range strings.Split(par.Stages.Transformed, "\n") {
		if strings.Contains(line, "#pragma omp") {
			fmt.Println(strings.TrimSpace(line))
		}
	}

	fmt.Println("\n=== parallelization report ===")
	fmt.Print(par.Report.String())

	fmt.Println("\n=== running on 8 workers ===")
	if _, err := par.Machine.RunMain(); err != nil {
		log.Fatal(err)
	}

	// Serial build for comparison: integer reductions are bit-identical
	// at every team size, so both runs print the same sum.
	seq, err := purec.Build(src, purec.Config{Stdout: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== serial baseline (identical sum) ===")
	if _, err := seq.Machine.RunMain(); err != nil {
		log.Fatal(err)
	}

	// A counterexample: a scalar write that is NOT a canonical reduction
	// keeps the nest serial, and the report now says why.
	diag, err := purec.Build(`
pure int f(int x) { return x + 1; }
int main(void) {
    int s = 0;
    int last = 0;
    for (int i = 0; i < 1000; i++) {
        s += f(i);
        last = s;
    }
    return last;
}
`, purec.Config{Parallelize: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== why a nest stays serial ===")
	fmt.Print(diag.Report.String())
}
