// Satellite example: the AOD retrieval filter (the paper's third
// application). Only the pure keyword makes the pixel loop
// parallelizable; the example contrasts schedule(static) against the
// paper's schedule(dynamic,1) fix on the load-imbalanced workload using
// the simulated 64-core team.
//
//	go run ./examples/satellite [-pixels 1200] [-bands 10] [-iters 48]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"time"

	"purec"
	"purec/internal/apps"
	"purec/internal/rt"
)

func main() {
	pixels := flag.Int("pixels", 1200, "pixel count")
	bands := flag.Int("bands", 10, "spectral bands")
	iters := flag.Int("iters", 48, "max retrieval iterations")
	flag.Parse()

	defs := apps.SatelliteDefines(*pixels, *bands, *iters)

	build := func(schedule string) *purec.Result {
		cfg := purec.Config{
			Parallelize: true, TeamSize: 1,
			Defines: defs, Stdout: io.Discard,
		}
		cfg.Transform.Schedule = schedule
		res, err := purec.Build(apps.SatelliteSrc, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	static := build("")
	dynamic := build("dynamic,1")

	fmt.Printf("%-10s %16s %16s\n", "cores", "static", "dynamic,1")
	for _, c := range []int{1, 4, 16, 64} {
		fmt.Printf("%-10d %16v %16v\n", c,
			timeRun(static, c).Round(time.Microsecond),
			timeRun(dynamic, c).Round(time.Microsecond))
	}

	// Verify against the native reference.
	if _, err := static.Machine.CallInt("initcube"); err != nil {
		log.Fatal(err)
	}
	if _, err := static.Machine.CallInt("run"); err != nil {
		log.Fatal(err)
	}
	ptr, _ := static.Machine.GlobalPtr("aod")
	got := apps.ReadFloats(ptr, *pixels)
	want := apps.SatelliteRef(*pixels, *bands, *iters)
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("pixel %d differs: %v vs %v", i, got[i], want[i])
		}
	}
	fmt.Printf("\nall %d retrieved AOD values bit-exact vs reference\n", *pixels)
}

// timeRun measures the compute phase on a simulated team of c workers.
func timeRun(res *purec.Result, c int) time.Duration {
	team := rt.NewSimTeam(c)
	res.Machine.SetTeam(team)
	if err := res.Machine.ResetGlobals(); err != nil {
		log.Fatal(err)
	}
	if _, err := res.Machine.CallInt("initcube"); err != nil {
		log.Fatal(err)
	}
	team.TakeSim()
	start := time.Now()
	if _, err := res.Machine.CallInt("run"); err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)
	real, virt := team.TakeSim()
	return wall - real + virt
}
