// Package lexer turns mini-C source text into a token stream.
//
// The lexer understands the full operator set of C, all literal forms used
// by the paper's evaluation programs, line and block comments, and
// preprocessor lines. Preprocessor lines other than #pragma are expected to
// have been handled by internal/preproc before parsing; #pragma lines are
// emitted as token.PRAGMA so that scop/omp annotations survive the round
// trip through the tool chain exactly as in the paper's Fig. 1.
package lexer

import (
	"fmt"
	"strings"

	"purec/internal/token"
)

// ErrorList collects lexical errors with their positions.
type ErrorList []error

// Error implements the error interface by joining all messages.
func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	msgs := make([]string, len(l))
	for i, e := range l {
		msgs[i] = e.Error()
	}
	return strings.Join(msgs, "\n")
}

// Err returns nil when the list is empty and the list otherwise.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// Lexer scans one source buffer.
type Lexer struct {
	src      string
	file     string
	off      int // byte offset of ch
	rdOff    int // byte offset after ch
	ch       byte
	line     int
	col      int
	keepCmts bool
	errs     ErrorList
}

// Option configures a Lexer.
type Option func(*Lexer)

// KeepComments makes the lexer emit COMMENT tokens instead of skipping them.
func KeepComments() Option { return func(l *Lexer) { l.keepCmts = true } }

// New returns a lexer over src; file is used in positions and diagnostics.
func New(file, src string, opts ...Option) *Lexer {
	l := &Lexer{src: src, file: file, line: 1, col: 0}
	for _, o := range opts {
		o(l)
	}
	l.next()
	return l
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() ErrorList { return l.errs }

const eofByte = 0

func (l *Lexer) next() {
	if l.rdOff >= len(l.src) {
		l.off = len(l.src)
		l.ch = eofByte
		l.col++
		return
	}
	if l.ch == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	l.off = l.rdOff
	l.ch = l.src[l.rdOff]
	l.rdOff++
}

func (l *Lexer) peek() byte {
	if l.rdOff < len(l.src) {
		return l.src[l.rdOff]
	}
	return eofByte
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Col: l.col}
}

func (l *Lexer) errorf(p token.Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...)))
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || ('a' <= c && c <= 'f') || ('A' <= c && c <= 'F')
}

// Scan returns the next token. At end of input it returns EOF forever.
func (l *Lexer) Scan() token.Token {
	for {
		l.skipSpace()
		pos := l.pos()
		switch {
		case l.ch == eofByte:
			return token.Token{Kind: token.EOF, Pos: pos}
		case isLetter(l.ch):
			lit := l.scanIdent()
			kind := token.Lookup(lit)
			if kind == token.IDENT {
				return token.Token{Kind: kind, Lit: lit, Pos: pos}
			}
			return token.Token{Kind: kind, Lit: lit, Pos: pos}
		case isDigit(l.ch) || (l.ch == '.' && isDigit(l.peek())):
			kind, lit := l.scanNumber()
			return token.Token{Kind: kind, Lit: lit, Pos: pos}
		case l.ch == '\'':
			return token.Token{Kind: token.CHARLIT, Lit: l.scanChar(), Pos: pos}
		case l.ch == '"':
			return token.Token{Kind: token.STRINGLIT, Lit: l.scanString(), Pos: pos}
		case l.ch == '#':
			lit, isPragma := l.scanDirective()
			if isPragma {
				return token.Token{Kind: token.PRAGMA, Lit: lit, Pos: pos}
			}
			// Other directives should have been expanded by the
			// preprocessor; report and skip the line.
			l.errorf(pos, "unexpected preprocessor directive %q (run the preprocessor first)", firstWord(lit))
			continue
		case l.ch == '/' && (l.peek() == '/' || l.peek() == '*'):
			lit := l.scanComment()
			if l.keepCmts {
				return token.Token{Kind: token.COMMENT, Lit: lit, Pos: pos}
			}
			continue
		default:
			kind := l.scanOperator()
			if kind == token.ILLEGAL {
				ch := l.ch
				l.next()
				l.errorf(pos, "illegal character %q", string(rune(ch)))
				return token.Token{Kind: token.ILLEGAL, Lit: string(rune(ch)), Pos: pos}
			}
			return token.Token{Kind: kind, Pos: pos}
		}
	}
}

// ScanAll scans until EOF and returns all tokens including the final EOF.
func (l *Lexer) ScanAll() []token.Token {
	var toks []token.Token
	for {
		t := l.Scan()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (l *Lexer) skipSpace() {
	for l.ch == ' ' || l.ch == '\t' || l.ch == '\n' || l.ch == '\r' || l.ch == '\v' || l.ch == '\f' {
		l.next()
	}
}

func (l *Lexer) scanIdent() string {
	start := l.off
	for isLetter(l.ch) || isDigit(l.ch) {
		l.next()
	}
	return l.src[start:l.off]
}

func (l *Lexer) scanNumber() (token.Kind, string) {
	start := l.off
	kind := token.INTLIT
	if l.ch == '0' && (l.peek() == 'x' || l.peek() == 'X') {
		l.next()
		l.next()
		for isHexDigit(l.ch) {
			l.next()
		}
		l.scanIntSuffix()
		return token.INTLIT, l.src[start:l.off]
	}
	for isDigit(l.ch) {
		l.next()
	}
	if l.ch == '.' {
		kind = token.FLOATLIT
		l.next()
		for isDigit(l.ch) {
			l.next()
		}
	}
	if l.ch == 'e' || l.ch == 'E' {
		if isDigit(l.peek()) || ((l.peek() == '+' || l.peek() == '-') && l.rdOff+1 < len(l.src) && isDigit(l.src[l.rdOff+1])) {
			kind = token.FLOATLIT
			l.next()
			if l.ch == '+' || l.ch == '-' {
				l.next()
			}
			for isDigit(l.ch) {
				l.next()
			}
		}
	}
	if kind == token.FLOATLIT {
		if l.ch == 'f' || l.ch == 'F' || l.ch == 'l' || l.ch == 'L' {
			l.next()
		}
	} else {
		l.scanIntSuffix()
	}
	return kind, l.src[start:l.off]
}

func (l *Lexer) scanIntSuffix() {
	for l.ch == 'u' || l.ch == 'U' || l.ch == 'l' || l.ch == 'L' {
		l.next()
	}
}

func (l *Lexer) scanChar() string {
	start := l.off
	pos := l.pos()
	l.next() // opening quote
	for l.ch != '\'' {
		if l.ch == eofByte || l.ch == '\n' {
			l.errorf(pos, "unterminated character literal")
			return l.src[start:l.off]
		}
		if l.ch == '\\' {
			l.next()
		}
		l.next()
	}
	l.next() // closing quote
	return l.src[start:l.off]
}

func (l *Lexer) scanString() string {
	start := l.off
	pos := l.pos()
	l.next() // opening quote
	for l.ch != '"' {
		if l.ch == eofByte || l.ch == '\n' {
			l.errorf(pos, "unterminated string literal")
			return l.src[start:l.off]
		}
		if l.ch == '\\' {
			l.next()
		}
		l.next()
	}
	l.next() // closing quote
	return l.src[start:l.off]
}

// scanDirective consumes a whole preprocessor line (with backslash
// continuations) and reports whether it is a #pragma.
func (l *Lexer) scanDirective() (string, bool) {
	start := l.off
	for l.ch != eofByte {
		if l.ch == '\\' && l.peek() == '\n' {
			l.next()
			l.next()
			continue
		}
		if l.ch == '\n' {
			break
		}
		l.next()
	}
	line := l.src[start:l.off]
	body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
	return line, strings.HasPrefix(body, "pragma")
}

func (l *Lexer) scanComment() string {
	start := l.off
	if l.peek() == '/' {
		for l.ch != '\n' && l.ch != eofByte {
			l.next()
		}
		return l.src[start:l.off]
	}
	pos := l.pos()
	l.next() // '/'
	l.next() // '*'
	for {
		if l.ch == eofByte {
			l.errorf(pos, "unterminated block comment")
			return l.src[start:l.off]
		}
		if l.ch == '*' && l.peek() == '/' {
			l.next()
			l.next()
			return l.src[start:l.off]
		}
		l.next()
	}
}

func (l *Lexer) scanOperator() token.Kind {
	ch := l.ch
	switch ch {
	case '+':
		l.next()
		if l.ch == '+' {
			l.next()
			return token.INC
		}
		if l.ch == '=' {
			l.next()
			return token.ADDASSIGN
		}
		return token.ADD
	case '-':
		l.next()
		switch l.ch {
		case '-':
			l.next()
			return token.DEC
		case '=':
			l.next()
			return token.SUBASSIGN
		case '>':
			l.next()
			return token.ARROW
		}
		return token.SUB
	case '*':
		l.next()
		if l.ch == '=' {
			l.next()
			return token.MULASSIGN
		}
		return token.MUL
	case '/':
		l.next()
		if l.ch == '=' {
			l.next()
			return token.QUOASSIGN
		}
		return token.QUO
	case '%':
		l.next()
		if l.ch == '=' {
			l.next()
			return token.REMASSIGN
		}
		return token.REM
	case '&':
		l.next()
		if l.ch == '&' {
			l.next()
			return token.LAND
		}
		if l.ch == '=' {
			l.next()
			return token.ANDASSIGN
		}
		return token.AND
	case '|':
		l.next()
		if l.ch == '|' {
			l.next()
			return token.LOR
		}
		if l.ch == '=' {
			l.next()
			return token.ORASSIGN
		}
		return token.OR
	case '^':
		l.next()
		if l.ch == '=' {
			l.next()
			return token.XORASSIGN
		}
		return token.XOR
	case '<':
		l.next()
		if l.ch == '<' {
			l.next()
			if l.ch == '=' {
				l.next()
				return token.SHLASSIGN
			}
			return token.SHL
		}
		if l.ch == '=' {
			l.next()
			return token.LEQ
		}
		return token.LSS
	case '>':
		l.next()
		if l.ch == '>' {
			l.next()
			if l.ch == '=' {
				l.next()
				return token.SHRASSIGN
			}
			return token.SHR
		}
		if l.ch == '=' {
			l.next()
			return token.GEQ
		}
		return token.GTR
	case '=':
		l.next()
		if l.ch == '=' {
			l.next()
			return token.EQL
		}
		return token.ASSIGN
	case '!':
		l.next()
		if l.ch == '=' {
			l.next()
			return token.NEQ
		}
		return token.NOT
	case '~':
		l.next()
		return token.TILDE
	case '(':
		l.next()
		return token.LPAREN
	case ')':
		l.next()
		return token.RPAREN
	case '[':
		l.next()
		return token.LBRACK
	case ']':
		l.next()
		return token.RBRACK
	case '{':
		l.next()
		return token.LBRACE
	case '}':
		l.next()
		return token.RBRACE
	case ',':
		l.next()
		return token.COMMA
	case ';':
		l.next()
		return token.SEMI
	case ':':
		l.next()
		return token.COLON
	case '?':
		l.next()
		return token.QUESTION
	case '.':
		if l.peek() == '.' && l.rdOff+1 < len(l.src) && l.src[l.rdOff+1] == '.' {
			l.next()
			l.next()
			l.next()
			return token.ELLIPSIS
		}
		l.next()
		return token.DOT
	}
	return token.ILLEGAL
}

func firstWord(s string) string {
	s = strings.TrimSpace(s)
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return s[:i]
	}
	return s
}
