package lexer

import (
	"strings"
	"testing"
	"testing/quick"

	"purec/internal/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	l := New("test.c", src)
	var ks []token.Kind
	for _, tok := range l.ScanAll() {
		ks = append(ks, tok.Kind)
	}
	if err := l.Errors().Err(); err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return ks
}

func TestKeywords(t *testing.T) {
	got := kinds(t, "pure int for while if else return const struct")
	want := []token.Kind{token.PURE, token.INT, token.FOR, token.WHILE,
		token.IF, token.ELSE, token.RETURN, token.CONST, token.STRUCT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestPureIsKeywordNotIdent(t *testing.T) {
	l := New("t.c", "pure purex xpure")
	toks := l.ScanAll()
	if toks[0].Kind != token.PURE {
		t.Errorf("pure: got %v", toks[0])
	}
	if toks[1].Kind != token.IDENT || toks[1].Lit != "purex" {
		t.Errorf("purex: got %v", toks[1])
	}
	if toks[2].Kind != token.IDENT || toks[2].Lit != "xpure" {
		t.Errorf("xpure: got %v", toks[2])
	}
}

func TestOperators(t *testing.T) {
	src := "+ - * / % ++ -- += -= *= /= %= == != < <= > >= && || & | ^ << >> <<= >>= ! ~ -> . ? : ; , ( ) [ ] { }"
	got := kinds(t, src)
	want := []token.Kind{
		token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.INC, token.DEC,
		token.ADDASSIGN, token.SUBASSIGN, token.MULASSIGN, token.QUOASSIGN, token.REMASSIGN,
		token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
		token.LAND, token.LOR, token.AND, token.OR, token.XOR,
		token.SHL, token.SHR, token.SHLASSIGN, token.SHRASSIGN,
		token.NOT, token.TILDE, token.ARROW, token.DOT,
		token.QUESTION, token.COLON, token.SEMI, token.COMMA,
		token.LPAREN, token.RPAREN, token.LBRACK, token.RBRACK,
		token.LBRACE, token.RBRACE, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("count: got %d want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind token.Kind
	}{
		{"0", token.INTLIT},
		{"42", token.INTLIT},
		{"0x1F", token.INTLIT},
		{"077", token.INTLIT},
		{"42u", token.INTLIT},
		{"42UL", token.INTLIT},
		{"3.14", token.FLOATLIT},
		{"0.0f", token.FLOATLIT},
		{".5", token.FLOATLIT},
		{"1e9", token.FLOATLIT},
		{"1.5e-3", token.FLOATLIT},
		{"2.E+4", token.FLOATLIT},
	}
	for _, c := range cases {
		l := New("t.c", c.src)
		tok := l.Scan()
		if tok.Kind != c.kind || tok.Lit != c.src {
			t.Errorf("%q: got %v (lit %q), want kind %v", c.src, tok.Kind, tok.Lit, c.kind)
		}
	}
}

func TestCommentsSkippedByDefault(t *testing.T) {
	got := kinds(t, "a /* block \n comment */ b // line\nc")
	want := []token.Kind{token.IDENT, token.IDENT, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestCommentsKept(t *testing.T) {
	l := New("t.c", "a // hi\nb", KeepComments())
	toks := l.ScanAll()
	if len(toks) != 4 || toks[1].Kind != token.COMMENT || toks[1].Lit != "// hi" {
		t.Fatalf("got %v", toks)
	}
}

func TestPragmaToken(t *testing.T) {
	l := New("t.c", "#pragma scop\nint x;\n#pragma endscop\n")
	toks := l.ScanAll()
	if toks[0].Kind != token.PRAGMA || toks[0].Lit != "#pragma scop" {
		t.Fatalf("first: %v", toks[0])
	}
	if toks[4].Kind != token.PRAGMA || toks[4].Lit != "#pragma endscop" {
		t.Fatalf("fifth: %v", toks[4])
	}
}

func TestOmpPragmaWithContinuation(t *testing.T) {
	l := New("t.c", "#pragma omp parallel for \\\n    private(i)\nint x;")
	toks := l.ScanAll()
	if toks[0].Kind != token.PRAGMA {
		t.Fatalf("got %v", toks[0])
	}
	if !strings.Contains(toks[0].Lit, "private(i)") {
		t.Errorf("continuation lost: %q", toks[0].Lit)
	}
}

func TestNonPragmaDirectiveIsError(t *testing.T) {
	l := New("t.c", "#include <stdio.h>\nint x;")
	l.ScanAll()
	if l.Errors().Err() == nil {
		t.Fatal("expected error for raw #include (preprocessor must run first)")
	}
}

func TestStringAndCharLiterals(t *testing.T) {
	l := New("t.c", `"hello \"x\"" 'a' '\n' '\\'`)
	toks := l.ScanAll()
	if toks[0].Kind != token.STRINGLIT {
		t.Errorf("string: %v", toks[0])
	}
	for i := 1; i <= 3; i++ {
		if toks[i].Kind != token.CHARLIT {
			t.Errorf("char %d: %v", i, toks[i])
		}
	}
}

func TestUnterminatedString(t *testing.T) {
	l := New("t.c", "\"abc\nint")
	l.ScanAll()
	if l.Errors().Err() == nil {
		t.Fatal("expected unterminated string error")
	}
}

func TestPositions(t *testing.T) {
	l := New("f.c", "int\n  x;")
	toks := l.ScanAll()
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("int at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x at %v", toks[1].Pos)
	}
	if toks[1].Pos.File != "f.c" {
		t.Errorf("file %q", toks[1].Pos.File)
	}
}

func TestIllegalChar(t *testing.T) {
	l := New("t.c", "int @ x;")
	toks := l.ScanAll()
	found := false
	for _, tok := range toks {
		if tok.Kind == token.ILLEGAL {
			found = true
		}
	}
	if !found || l.Errors().Err() == nil {
		t.Fatal("expected ILLEGAL token and error")
	}
}

// TestRescanFixedPoint property: joining token texts and re-lexing yields
// the same token kinds (idempotence of lex∘print on token streams).
func TestRescanFixedPoint(t *testing.T) {
	f := func(seed uint32) bool {
		src := genSource(seed)
		l1 := New("a.c", src)
		t1 := l1.ScanAll()
		if l1.Errors().Err() != nil {
			return true // invalid random input: nothing to check
		}
		var b strings.Builder
		for _, tok := range t1 {
			if tok.Kind == token.EOF {
				break
			}
			b.WriteString(tok.Text())
			b.WriteByte(' ')
		}
		l2 := New("b.c", b.String())
		t2 := l2.ScanAll()
		if l2.Errors().Err() != nil {
			return false
		}
		if len(t1) != len(t2) {
			return false
		}
		for i := range t1 {
			if t1[i].Kind != t2[i].Kind {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// genSource builds a pseudo-random but lexically valid token soup.
func genSource(seed uint32) string {
	words := []string{
		"int", "float", "pure", "x", "y1", "_z", "42", "3.14", "0x1f",
		"+", "-", "*", "/", "%", "==", "!=", "<=", ">=", "<<", ">>",
		"(", ")", "[", "]", "{", "}", ";", ",", "->", "++", "--",
		"for", "while", "if", "else", "return", "'c'", "\"s\"",
	}
	var b strings.Builder
	s := seed
	for i := 0; i < 40; i++ {
		s = s*1664525 + 1013904223
		b.WriteString(words[int(s>>16)%len(words)])
		b.WriteByte(' ')
	}
	return b.String()
}
