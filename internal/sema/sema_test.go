package sema

import (
	"strings"
	"testing"

	"purec/internal/ast"
	"purec/internal/parser"
	"purec/internal/types"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(f)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	in, err := check(t, src)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return in
}

func TestGlobalsAndFuncsCollected(t *testing.T) {
	in := mustCheck(t, `
int g;
float **M;
pure float dot(pure float* a, pure float* b, int n) { return 0.0f; }
int main(void) { return 0; }
`)
	if len(in.Globals) != 2 {
		t.Fatalf("globals: %d", len(in.Globals))
	}
	if sig := in.Funcs["dot"]; sig == nil || !sig.Pure || len(sig.Params) != 3 {
		t.Fatalf("dot sig: %+v", sig)
	}
	if in.GlobalMap["M"].Type.Kind != types.Ptr || in.GlobalMap["M"].Type.Elem.Kind != types.Ptr {
		t.Fatalf("M type: %s", in.GlobalMap["M"].Type)
	}
}

func TestUndeclaredIdentifier(t *testing.T) {
	_, err := check(t, "int f(void) { return xyz; }")
	if err == nil || !strings.Contains(err.Error(), "undeclared identifier xyz") {
		t.Fatalf("got %v", err)
	}
}

func TestUndeclaredFunction(t *testing.T) {
	_, err := check(t, "int f(void) { return g(); }")
	if err == nil || !strings.Contains(err.Error(), "undeclared function g") {
		t.Fatalf("got %v", err)
	}
}

func TestArgCountMismatch(t *testing.T) {
	_, err := check(t, `
int g(int a, int b) { return a + b; }
int f(void) { return g(1); }
`)
	if err == nil || !strings.Contains(err.Error(), "expects 2 arguments") {
		t.Fatalf("got %v", err)
	}
}

func TestBuiltinsKnown(t *testing.T) {
	mustCheck(t, `
double f(double x) { return sin(x) + cos(x) * sqrt(fabs(x)); }
int* g(void) { return (int*)malloc(40); }
void h(int* p) { free(p); }
`)
}

func TestPureBuiltinClassification(t *testing.T) {
	for _, name := range []string{"sin", "cos", "log", "sqrt", "malloc", "free"} {
		if !IsPureBuiltin(name) {
			t.Errorf("%s must be in the pure hashset (paper Sect. 3.2)", name)
		}
	}
	for _, name := range []string{"printf", "rand", "srand", "clock"} {
		if IsPureBuiltin(name) {
			t.Errorf("%s must not be pure", name)
		}
	}
}

func TestScopesAndShadowing(t *testing.T) {
	in := mustCheck(t, `
int x;
int f(int x) {
    int y = x;
    {
        int x = 2;
        y += x;
    }
    return y;
}
`)
	locals := in.FuncLocals["f"]
	// param x, local y, inner local x
	if len(locals) != 3 {
		t.Fatalf("locals: %d", len(locals))
	}
	if locals[0].Kind != SymParam || locals[2].Kind != SymLocal {
		t.Fatalf("kinds: %v %v", locals[0].Kind, locals[2].Kind)
	}
}

func TestRedeclarationError(t *testing.T) {
	_, err := check(t, "int f(void) { int a; int a; return 0; }")
	if err == nil || !strings.Contains(err.Error(), "redeclared") {
		t.Fatalf("got %v", err)
	}
}

func TestArraySymbol(t *testing.T) {
	in := mustCheck(t, `
int f(void) {
    float a[100];
    int m[4][8];
    a[0] = 1.0f;
    m[1][2] = 3;
    return m[1][2];
}
`)
	var aSym, mSym *Symbol
	for _, s := range in.FuncLocals["f"] {
		switch s.Name {
		case "a":
			aSym = s
		case "m":
			mSym = s
		}
	}
	if aSym == nil || len(aSym.Dims) != 1 || aSym.Dims[0] != 100 {
		t.Fatalf("a dims: %+v", aSym)
	}
	if mSym == nil || len(mSym.Dims) != 2 || mSym.Dims[0] != 4 || mSym.Dims[1] != 8 {
		t.Fatalf("m dims: %+v", mSym)
	}
}

func TestTypePropagation(t *testing.T) {
	in := mustCheck(t, `
float g(float x, int i) { return x + (float)i; }
`)
	fd := in.File.LookupFunc("g")
	ret := fd.Body.List[0].(*ast.ReturnStmt)
	tt := in.ExprType[ret.X]
	if tt == nil || tt.Kind != types.Float {
		t.Fatalf("return type: %s", tt)
	}
}

func TestPointerArithmeticTypes(t *testing.T) {
	in := mustCheck(t, `
long f(int* p, int* q) {
    int* r = p + 3;
    return q - p;
}
`)
	_ = in
}

func TestVoidReturnChecks(t *testing.T) {
	_, err := check(t, "void f(void) { return 3; }")
	if err == nil || !strings.Contains(err.Error(), "void function") {
		t.Fatalf("got %v", err)
	}
	_, err = check(t, "int f(void) { return; }")
	if err == nil || !strings.Contains(err.Error(), "without a value") {
		t.Fatalf("got %v", err)
	}
}

func TestStructSemantics(t *testing.T) {
	in := mustCheck(t, `
struct pt {
    int x;
    int y;
    float w[4];
};
int f(void) {
    struct pt p;
    struct pt* q;
    p.x = 1;
    p.w[2] = 0.5f;
    return p.x + p.y;
}
`)
	st := in.Structs["pt"]
	if st == nil || len(st.Fields) != 3 {
		t.Fatalf("struct: %+v", st)
	}
	if st.Fields[2].Count != 4 || st.Fields[2].Offset != 2 {
		t.Fatalf("field layout: %+v", st.Fields[2])
	}
}

func TestUnknownStructField(t *testing.T) {
	_, err := check(t, `
struct s { int a; };
int f(void) { struct s v; return v.b; }
`)
	if err == nil || !strings.Contains(err.Error(), "no field b") {
		t.Fatalf("got %v", err)
	}
}

func TestPureParamSymbolFlag(t *testing.T) {
	in := mustCheck(t, "pure float dot(pure float* a, int n) { return a[0]; }")
	var aSym *Symbol
	for _, s := range in.FuncLocals["dot"] {
		if s.Name == "a" {
			aSym = s
		}
	}
	if aSym == nil || !aSym.Pure {
		t.Fatalf("pure param flag: %+v", aSym)
	}
}

func TestConstIntFolding(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"3", 3},
		{"-3", -3},
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"1 << 10", 1024},
		{"255 & 15", 15},
		{"7 % 3", 1},
		{"sizeof(int)", 4},
		{"sizeof(double)", 8},
		{"sizeof(float*)", 8},
		{"'A'", 65},
	}
	for _, c := range cases {
		e, err := parser.ParseExpr(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		got, ok := ConstInt(e)
		if !ok || got != c.want {
			t.Errorf("%q: got %d (ok=%v), want %d", c.src, got, ok, c.want)
		}
	}
}

func TestPurityMismatchAcrossDecls(t *testing.T) {
	_, err := check(t, `
pure int f(int x);
int f(int x) { return x; }
`)
	if err == nil || !strings.Contains(err.Error(), "different purity") {
		t.Fatalf("got %v", err)
	}
}

func TestSwitchChecks(t *testing.T) {
	_, err := check(t, `
int f(float x) { switch (x) { case 1: return 0; } return 1; }
`)
	if err == nil || !strings.Contains(err.Error(), "switch tag") {
		t.Fatalf("got %v", err)
	}
}
