// Package sema performs name resolution and type checking on parsed
// translation units.
//
// It produces an Info structure that downstream passes consume: the purity
// checker (internal/purity) needs to know whether an identifier is a
// parameter, a local, or a global; the SCoP detector and the polyhedral
// engine need expression types; the compiler (internal/comp) needs symbol
// layout. Together with internal/purity this corresponds to the semantic
// analysis half of the paper's PC-CC stage.
package sema

import (
	"fmt"
	"strings"

	"purec/internal/ast"
	"purec/internal/token"
	"purec/internal/types"
)

// SymKind classifies a resolved symbol.
type SymKind int

// Symbol kinds.
const (
	SymGlobal SymKind = iota
	SymParam
	SymLocal
	SymFunc
	SymBuiltin
)

var symKindNames = [...]string{"global", "parameter", "local", "function", "builtin"}

// String returns the human-readable kind name.
func (k SymKind) String() string { return symKindNames[k] }

// Symbol is a named program entity.
type Symbol struct {
	Name  string
	Kind  SymKind
	Type  *types.Type // decayed type for arrays (pointer to element)
	Dims  []int       // array dimensions for array variables (constant)
	Func  *ast.FuncDecl
	Decl  *ast.VarDecl // defining declaration for variables
	Pure  bool         // pure function (SymFunc/SymBuiltin) or pure pointer
	Index int          // per-function ordinal for locals/params (layout)
}

// IsArray reports whether the symbol is an array variable.
func (s *Symbol) IsArray() bool { return len(s.Dims) > 0 }

// Sig is a function signature.
type Sig struct {
	Name     string
	Pure     bool
	Ret      *types.Type
	Params   []*types.Type
	Variadic bool
	Builtin  bool
	Decl     *ast.FuncDecl // nil for builtins
}

// Builtin purity classification mirrors the paper's initial hashset: the
// side-effect-free C standard functions plus malloc and free, whose
// side-effects "do not affect other threads" (Sect. 3.2).
type builtinSpec struct {
	ret      *types.Type
	params   []*types.Type
	variadic bool
	pure     bool
}

var dbl = types.DoubleType
var voidPtr = types.PointerTo(types.VoidType, false, false)

// Builtins is the table of known C standard functions. Math functions,
// malloc and free are in the paper's pure hashset; printf and friends are
// not.
var Builtins = map[string]builtinSpec{
	"sin":   {ret: dbl, params: []*types.Type{dbl}, pure: true},
	"cos":   {ret: dbl, params: []*types.Type{dbl}, pure: true},
	"tan":   {ret: dbl, params: []*types.Type{dbl}, pure: true},
	"asin":  {ret: dbl, params: []*types.Type{dbl}, pure: true},
	"acos":  {ret: dbl, params: []*types.Type{dbl}, pure: true},
	"atan":  {ret: dbl, params: []*types.Type{dbl}, pure: true},
	"atan2": {ret: dbl, params: []*types.Type{dbl, dbl}, pure: true},
	"exp":   {ret: dbl, params: []*types.Type{dbl}, pure: true},
	"log":   {ret: dbl, params: []*types.Type{dbl}, pure: true},
	"log10": {ret: dbl, params: []*types.Type{dbl}, pure: true},
	"sqrt":  {ret: dbl, params: []*types.Type{dbl}, pure: true},
	"pow":   {ret: dbl, params: []*types.Type{dbl, dbl}, pure: true},
	"fabs":  {ret: dbl, params: []*types.Type{dbl}, pure: true},
	"floor": {ret: dbl, params: []*types.Type{dbl}, pure: true},
	"ceil":  {ret: dbl, params: []*types.Type{dbl}, pure: true},
	"fmod":  {ret: dbl, params: []*types.Type{dbl, dbl}, pure: true},
	"fmin":  {ret: dbl, params: []*types.Type{dbl, dbl}, pure: true},
	"fmax":  {ret: dbl, params: []*types.Type{dbl, dbl}, pure: true},
	"abs":   {ret: types.IntType, params: []*types.Type{types.IntType}, pure: true},
	"expf":  {ret: types.FloatType, params: []*types.Type{types.FloatType}, pure: true},
	"sqrtf": {ret: types.FloatType, params: []*types.Type{types.FloatType}, pure: true},
	"fabsf": {ret: types.FloatType, params: []*types.Type{types.FloatType}, pure: true},

	// malloc and free: treated as pure per the paper (their side-effects
	// do not affect other threads); free is additionally checked by the
	// purity pass to only release locally allocated memory.
	"malloc": {ret: voidPtr, params: []*types.Type{types.LongType}, pure: true},
	"free":   {ret: types.VoidType, params: []*types.Type{voidPtr}, pure: true},

	// Integer helpers emitted by the polyhedral code generator for tiled
	// loop bounds, mirroring the floord/ceild/min/max macros in
	// PluTo-generated code. All are side-effect free.
	"floord": {ret: types.LongType, params: []*types.Type{types.LongType, types.LongType}, pure: true},
	"ceild":  {ret: types.LongType, params: []*types.Type{types.LongType, types.LongType}, pure: true},
	"imin":   {ret: types.LongType, params: []*types.Type{types.LongType, types.LongType}, pure: true},
	"imax":   {ret: types.LongType, params: []*types.Type{types.LongType, types.LongType}, pure: true},

	// Impure standard functions (known, callable outside pure contexts).
	"printf": {ret: types.IntType, params: []*types.Type{types.PointerTo(types.CharType, false, false)}, variadic: true},
	"rand":   {ret: types.IntType},
	"srand":  {ret: types.VoidType, params: []*types.Type{types.UnsignedType}},
	"clock":  {ret: types.LongType},
}

// IsPureBuiltin reports whether name is in the paper's initial pure
// hashset of standard functions.
func IsPureBuiltin(name string) bool {
	b, ok := Builtins[name]
	return ok && b.pure
}

// Info is the result of semantic analysis.
type Info struct {
	File      *ast.File
	ExprType  map[ast.Expr]*types.Type
	Ref       map[*ast.Ident]*Symbol
	Funcs     map[string]*Sig
	Structs   map[string]*types.Type
	Globals   []*Symbol
	GlobalMap map[string]*Symbol
	// FuncLocals lists, per function name, all local and parameter
	// symbols in declaration order (parameters first).
	FuncLocals map[string][]*Symbol
	errs       []error
}

// Errs returns the accumulated semantic errors.
func (in *Info) Errs() []error { return in.errs }

// Check analyzes f and returns the populated Info. The error joins all
// diagnostics; Info is still usable for inspection when err != nil.
func Check(f *ast.File) (*Info, error) {
	in := &Info{
		File:       f,
		ExprType:   make(map[ast.Expr]*types.Type),
		Ref:        make(map[*ast.Ident]*Symbol),
		Funcs:      make(map[string]*Sig),
		Structs:    make(map[string]*types.Type),
		GlobalMap:  make(map[string]*Symbol),
		FuncLocals: make(map[string][]*Symbol),
	}
	c := &checker{info: in}
	c.collectTop(f)
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			c.checkFunc(fd)
		}
	}
	if len(in.errs) > 0 {
		msgs := make([]string, len(in.errs))
		for i, e := range in.errs {
			msgs[i] = e.Error()
		}
		return in, fmt.Errorf("%s", strings.Join(msgs, "\n"))
	}
	return in, nil
}

type checker struct {
	info   *Info
	scopes []map[string]*Symbol
	cur    *Sig // function being checked
	curFn  *ast.FuncDecl
	locals int
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.info.errs = append(c.info.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (c *checker) resolveStruct(tag string) (*types.Type, error) {
	if st, ok := c.info.Structs[tag]; ok {
		return st, nil
	}
	return nil, fmt.Errorf("undefined struct %s", tag)
}

func (c *checker) typeOfAST(te *ast.TypeExpr, pos token.Pos) *types.Type {
	t, err := types.FromAST(te, c.resolveStruct)
	if err != nil {
		c.errorf(pos, "%v", err)
		return types.IntType
	}
	return t
}

// collectTop registers structs, globals and function signatures.
func (c *checker) collectTop(f *ast.File) {
	for _, d := range f.Decls {
		switch x := d.(type) {
		case *ast.StructDecl:
			c.collectStruct(x)
		case *ast.VarDeclGroup:
			for _, vd := range x.Decls {
				c.collectGlobal(vd)
			}
		case *ast.FuncDecl:
			c.collectFunc(x)
		}
	}
}

func (c *checker) collectStruct(sd *ast.StructDecl) {
	if _, dup := c.info.Structs[sd.Name]; dup {
		c.errorf(sd.Pos(), "struct %s redeclared", sd.Name)
		return
	}
	st := &types.Type{Kind: types.Struct, Tag: sd.Name, CName: "struct " + sd.Name}
	off := 0
	for _, fl := range sd.Fields {
		ft := c.typeOfAST(fl.Type, fl.NamePos)
		count := 1
		for _, l := range fl.ArrayLens {
			n, ok := c.constInt(l)
			if !ok || n <= 0 {
				c.errorf(fl.NamePos, "struct field %s: array length must be a positive constant", fl.Name)
				n = 1
			}
			count *= int(n)
		}
		st.Fields = append(st.Fields, types.Field{Name: fl.Name, Type: ft, Count: count, Offset: off})
		off += count
	}
	st.CSize = off * 8
	c.info.Structs[sd.Name] = st
}

func (c *checker) collectGlobal(vd *ast.VarDecl) {
	if _, dup := c.info.GlobalMap[vd.Name]; dup {
		c.errorf(vd.Pos(), "global %s redeclared", vd.Name)
		return
	}
	sym := c.makeVarSymbol(vd, SymGlobal)
	c.info.Globals = append(c.info.Globals, sym)
	c.info.GlobalMap[vd.Name] = sym
	if vd.Init != nil {
		t := c.expr(vd.Init)
		if !types.AssignableLoose(sym.Type, t) && !sym.IsArray() {
			c.errorf(vd.Pos(), "cannot initialize %s (%s) from %s", vd.Name, sym.Type, t)
		}
	}
}

// makeVarSymbol builds the symbol for a variable declaration, decaying
// array dimensions into Dims and a pointer-shaped type.
func (c *checker) makeVarSymbol(vd *ast.VarDecl, kind SymKind) *Symbol {
	base := c.typeOfAST(vd.Type, vd.Pos())
	sym := &Symbol{Name: vd.Name, Kind: kind, Decl: vd}
	if len(vd.ArrayLens) == 0 {
		sym.Type = base
		sym.Pure = base.IsPtr() && base.Pure
		return sym
	}
	for _, l := range vd.ArrayLens {
		n, ok := c.constInt(l)
		if !ok || n <= 0 {
			c.errorf(vd.Pos(), "array %s: length must be a positive integer constant", vd.Name)
			n = 1
		}
		sym.Dims = append(sym.Dims, int(n))
	}
	// The array value decays to nested pointers, one level per dimension.
	t := base
	for range vd.ArrayLens {
		t = types.PointerTo(t, false, false)
	}
	sym.Type = t
	return sym
}

func (c *checker) collectFunc(fd *ast.FuncDecl) {
	ret := c.typeOfAST(fd.Ret, fd.Pos())
	sig := &Sig{Name: fd.Name, Pure: fd.Pure, Ret: ret, Decl: fd}
	for _, p := range fd.Params {
		sig.Params = append(sig.Params, c.typeOfAST(p.Type, p.NamePos))
	}
	if prev, ok := c.info.Funcs[fd.Name]; ok {
		// A definition may follow a prototype; purity and arity must agree.
		if len(prev.Params) != len(sig.Params) {
			c.errorf(fd.Pos(), "function %s redeclared with different parameter count", fd.Name)
		}
		if prev.Pure != sig.Pure {
			c.errorf(fd.Pos(), "function %s redeclared with different purity", fd.Name)
		}
		if fd.Body != nil {
			prev.Decl = fd
		}
		return
	}
	if _, isBuiltin := Builtins[fd.Name]; isBuiltin {
		c.errorf(fd.Pos(), "function %s shadows a standard function", fd.Name)
	}
	c.info.Funcs[fd.Name] = sig
}

// ----------------------------------------------------------------------------
// Function bodies

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(sym *Symbol, pos token.Pos) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		c.errorf(pos, "%s redeclared in this scope", sym.Name)
		return
	}
	sym.Index = c.locals
	c.locals++
	top[sym.Name] = sym
	c.info.FuncLocals[c.curFn.Name] = append(c.info.FuncLocals[c.curFn.Name], sym)
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	if g, ok := c.info.GlobalMap[name]; ok {
		return g
	}
	return nil
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	c.cur = c.info.Funcs[fd.Name]
	c.curFn = fd
	c.locals = 0
	c.push()
	for _, p := range fd.Params {
		t := c.typeOfAST(p.Type, p.NamePos)
		sym := &Symbol{Name: p.Name, Kind: SymParam, Type: t, Pure: t.IsPtr() && t.Pure}
		if p.Name != "" {
			c.declare(sym, p.NamePos)
		}
	}
	c.stmt(fd.Body)
	c.pop()
	c.cur = nil
	c.curFn = nil
}

func (c *checker) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.DeclStmt:
		for _, d := range x.Decls {
			sym := c.makeVarSymbol(d, SymLocal)
			if d.Init != nil {
				t := c.expr(d.Init)
				if !sym.IsArray() && !types.AssignableLoose(sym.Type, t) {
					c.errorf(d.Pos(), "cannot initialize %s (%s) from %s", d.Name, sym.Type, t)
				}
			}
			c.declare(sym, d.Pos())
		}
	case *ast.ExprStmt:
		c.expr(x.X)
	case *ast.BlockStmt:
		c.push()
		for _, s2 := range x.List {
			c.stmt(s2)
		}
		c.pop()
	case *ast.IfStmt:
		c.condition(x.Cond)
		c.stmt(x.Then)
		if x.Else != nil {
			c.stmt(x.Else)
		}
	case *ast.ForStmt:
		c.push()
		if x.Init != nil {
			c.stmt(x.Init)
		}
		if x.Cond != nil {
			c.condition(x.Cond)
		}
		if x.Post != nil {
			c.expr(x.Post)
		}
		c.stmt(x.Body)
		c.pop()
	case *ast.WhileStmt:
		c.condition(x.Cond)
		c.stmt(x.Body)
	case *ast.DoStmt:
		c.stmt(x.Body)
		c.condition(x.Cond)
	case *ast.ReturnStmt:
		if x.X != nil {
			t := c.expr(x.X)
			if c.cur != nil && c.cur.Ret.IsVoid() {
				c.errorf(x.Pos(), "return with a value in void function %s", c.cur.Name)
			} else if c.cur != nil && !types.AssignableLoose(c.cur.Ret, t) {
				c.errorf(x.Pos(), "cannot return %s from function returning %s", t, c.cur.Ret)
			}
		} else if c.cur != nil && !c.cur.Ret.IsVoid() {
			c.errorf(x.Pos(), "return without a value in function %s returning %s", c.cur.Name, c.cur.Ret)
		}
	case *ast.SwitchStmt:
		t := c.expr(x.Tag)
		if t != nil && t.Kind != types.Int {
			c.errorf(x.Pos(), "switch tag must be an integer, got %s", t)
		}
		for _, cl := range x.Cases {
			if cl.Value != nil {
				if _, ok := c.constInt(cl.Value); !ok {
					c.errorf(cl.Pos(), "case label must be an integer constant")
				}
			}
			c.push()
			for _, s2 := range cl.Body {
				c.stmt(s2)
			}
			c.pop()
		}
	case *ast.BreakStmt, *ast.ContinueStmt, *ast.EmptyStmt, *ast.PragmaStmt:
		// nothing to check
	}
}

func (c *checker) condition(e ast.Expr) {
	t := c.expr(e)
	if t != nil && !t.IsArith() && !t.IsPtr() {
		c.errorf(e.Pos(), "condition must be scalar, got %s", t)
	}
}

// ----------------------------------------------------------------------------
// Expressions

func (c *checker) expr(e ast.Expr) *types.Type {
	t := c.exprInner(e)
	if t == nil {
		t = types.IntType
	}
	c.info.ExprType[e] = t
	return t
}

func (c *checker) exprInner(e ast.Expr) *types.Type {
	switch x := e.(type) {
	case *ast.Ident:
		sym := c.lookup(x.Name)
		if sym == nil {
			c.errorf(x.Pos(), "undeclared identifier %s", x.Name)
			return types.IntType
		}
		c.info.Ref[x] = sym
		return sym.Type
	case *ast.IntLit:
		return types.IntType
	case *ast.FloatLit:
		if strings.ContainsAny(x.Text, "fF") {
			return types.FloatType
		}
		return types.DoubleType
	case *ast.CharLit:
		return types.CharType
	case *ast.StringLit:
		return types.PointerTo(types.CharType, false, true)
	case *ast.ParenExpr:
		return c.expr(x.X)
	case *ast.BinaryExpr:
		return c.binary(x)
	case *ast.UnaryExpr:
		return c.unary(x)
	case *ast.PostfixExpr:
		t := c.expr(x.X)
		c.requireLvalue(x.X)
		return t
	case *ast.AssignExpr:
		return c.assign(x)
	case *ast.CondExpr:
		c.condition(x.Cond)
		t1 := c.expr(x.Then)
		t2 := c.expr(x.Else)
		if t1.IsArith() && t2.IsArith() {
			return types.Promote(t1, t2)
		}
		return t1
	case *ast.CallExpr:
		return c.call(x)
	case *ast.IndexExpr:
		base := c.expr(x.X)
		it := c.expr(x.Index)
		if it != nil && it.Kind != types.Int {
			c.errorf(x.Index.Pos(), "array index must be an integer, got %s", it)
		}
		if base == nil || base.Kind != types.Ptr {
			c.errorf(x.Pos(), "indexed expression is not a pointer or array (%s)", base)
			return types.IntType
		}
		return base.Elem
	case *ast.MemberExpr:
		return c.member(x)
	case *ast.CastExpr:
		c.expr(x.X)
		return c.typeOfAST(x.Type, x.Pos())
	case *ast.SizeofExpr:
		if x.X != nil {
			c.expr(x.X)
		} else {
			c.typeOfAST(x.Type, x.Pos())
		}
		return types.LongType
	}
	c.errorf(e.Pos(), "unsupported expression %T", e)
	return types.IntType
}

func (c *checker) binary(x *ast.BinaryExpr) *types.Type {
	tl := c.expr(x.X)
	tr := c.expr(x.Y)
	switch x.Op {
	case token.LAND, token.LOR, token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return types.IntType
	case token.REM, token.AND, token.OR, token.XOR, token.SHL, token.SHR:
		if tl.Kind != types.Int || tr.Kind != types.Int {
			c.errorf(x.Pos(), "operator %s requires integer operands (%s, %s)", x.Op, tl, tr)
		}
		return types.Promote(tl, tr)
	case token.ADD, token.SUB:
		// pointer arithmetic
		if tl.IsPtr() && tr.Kind == types.Int {
			return tl
		}
		if tr.IsPtr() && tl.Kind == types.Int && x.Op == token.ADD {
			return tr
		}
		if tl.IsPtr() && tr.IsPtr() && x.Op == token.SUB {
			return types.LongType
		}
		fallthrough
	default:
		if !tl.IsArith() || !tr.IsArith() {
			c.errorf(x.Pos(), "invalid operands to %s: %s and %s", x.Op, tl, tr)
			return types.IntType
		}
		return types.Promote(tl, tr)
	}
}

func (c *checker) unary(x *ast.UnaryExpr) *types.Type {
	t := c.expr(x.X)
	switch x.Op {
	case token.SUB:
		if !t.IsArith() {
			c.errorf(x.Pos(), "unary - requires arithmetic operand, got %s", t)
		}
		return t
	case token.NOT:
		return types.IntType
	case token.TILDE:
		if t.Kind != types.Int {
			c.errorf(x.Pos(), "~ requires integer operand, got %s", t)
		}
		return t
	case token.MUL:
		if !t.IsPtr() {
			c.errorf(x.Pos(), "cannot dereference non-pointer %s", t)
			return types.IntType
		}
		return t.Elem
	case token.AND:
		c.requireLvalue(x.X)
		return types.PointerTo(t, false, false)
	case token.INC, token.DEC:
		c.requireLvalue(x.X)
		return t
	}
	c.errorf(x.Pos(), "unsupported unary operator %s", x.Op)
	return types.IntType
}

func (c *checker) assign(x *ast.AssignExpr) *types.Type {
	tl := c.expr(x.LHS)
	tr := c.expr(x.RHS)
	c.requireLvalue(x.LHS)
	if x.Op == token.ASSIGN {
		if !types.AssignableLoose(tl, tr) {
			c.errorf(x.Pos(), "cannot assign %s to %s", tr, tl)
		}
	} else if bin, ok := x.Op.AssignBinOp(); ok {
		// Pointer += int is allowed; otherwise arithmetic.
		if tl.IsPtr() && (bin == token.ADD || bin == token.SUB) && tr.Kind == types.Int {
			return tl
		}
		if !tl.IsArith() || !tr.IsArith() {
			c.errorf(x.Pos(), "invalid compound assignment %s: %s and %s", x.Op, tl, tr)
		}
	}
	return tl
}

func (c *checker) call(x *ast.CallExpr) *types.Type {
	name := x.Fun.Name
	var sig *Sig
	if s, ok := c.info.Funcs[name]; ok {
		sig = s
	} else if b, ok := Builtins[name]; ok {
		sig = &Sig{Name: name, Pure: b.pure, Ret: b.ret, Params: b.params, Variadic: b.variadic, Builtin: true}
	} else {
		c.errorf(x.Pos(), "call of undeclared function %s", name)
		for _, a := range x.Args {
			c.expr(a)
		}
		return types.IntType
	}
	// Record the callee as a function symbol use.
	c.info.Ref[x.Fun] = &Symbol{Name: name, Kind: symKindFor(sig), Pure: sig.Pure, Func: sig.Decl}
	if !sig.Variadic && len(x.Args) != len(sig.Params) {
		c.errorf(x.Pos(), "function %s expects %d arguments, got %d", name, len(sig.Params), len(x.Args))
	}
	for i, a := range x.Args {
		at := c.expr(a)
		if i < len(sig.Params) && !types.AssignableLoose(sig.Params[i], at) {
			c.errorf(a.Pos(), "argument %d of %s: cannot pass %s as %s", i+1, name, at, sig.Params[i])
		}
	}
	return sig.Ret
}

func symKindFor(sig *Sig) SymKind {
	if sig.Builtin {
		return SymBuiltin
	}
	return SymFunc
}

func (c *checker) member(x *ast.MemberExpr) *types.Type {
	t := c.expr(x.X)
	st := t
	if x.Arrow {
		if !t.IsPtr() {
			c.errorf(x.Pos(), "-> on non-pointer %s", t)
			return types.IntType
		}
		st = t.Elem
	}
	if st == nil || st.Kind != types.Struct {
		c.errorf(x.Pos(), "member access on non-struct %s", t)
		return types.IntType
	}
	for _, f := range st.Fields {
		if f.Name == x.Name {
			if f.Count > 1 {
				// Array fields decay to a pointer to the element type.
				return types.PointerTo(f.Type, false, false)
			}
			return f.Type
		}
	}
	c.errorf(x.Pos(), "struct %s has no field %s", st.Tag, x.Name)
	return types.IntType
}

func (c *checker) requireLvalue(e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		return
	case *ast.IndexExpr, *ast.MemberExpr:
		return
	case *ast.UnaryExpr:
		if x.Op == token.MUL {
			return
		}
	case *ast.ParenExpr:
		c.requireLvalue(x.X)
		return
	}
	c.errorf(e.Pos(), "expression is not assignable")
}

// constInt evaluates an integer constant expression (literals, unary
// minus, the four basic operators, shifts and sizeof of scalar types).
func (c *checker) constInt(e ast.Expr) (int64, bool) {
	return ConstInt(e)
}

// ConstInt folds an integer constant expression, reporting success.
func ConstInt(e ast.Expr) (int64, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value, true
	case *ast.CharLit:
		return x.Value, true
	case *ast.ParenExpr:
		return ConstInt(x.X)
	case *ast.UnaryExpr:
		v, ok := ConstInt(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case token.SUB:
			return -v, true
		case token.TILDE:
			return ^v, true
		case token.NOT:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *ast.BinaryExpr:
		a, ok1 := ConstInt(x.X)
		b, ok2 := ConstInt(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case token.ADD:
			return a + b, true
		case token.SUB:
			return a - b, true
		case token.MUL:
			return a * b, true
		case token.QUO:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case token.REM:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case token.SHL:
			return a << uint(b), true
		case token.SHR:
			return a >> uint(b), true
		case token.AND:
			return a & b, true
		case token.OR:
			return a | b, true
		case token.XOR:
			return a ^ b, true
		}
	case *ast.SizeofExpr:
		if x.Type != nil {
			t, err := types.FromAST(x.Type, nil)
			if err == nil {
				return int64(t.CSize), true
			}
		}
	}
	return 0, false
}
