package transform

import (
	"strings"
	"testing"
)

func TestArrayReductionPragmaEmitted(t *testing.T) {
	src := `
int data[100];
int main(void) {
    int hist[16];
    for (int i = 0; i < 100; i++)
        hist[data[i]]++;
    return hist[0];
}
`
	info, scops := prep(t, src)
	rep, err := Parallelize(scops, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var lr *LoopReport
	for i := range rep.Loops {
		if len(rep.Loops[i].Reductions) > 0 {
			lr = &rep.Loops[i]
		}
	}
	if lr == nil {
		t.Fatalf("no loop report carries a reduction clause: %+v", rep.Loops)
	}
	if lr.ParallelLevel != 0 {
		t.Errorf("parallel level = %d, want 0 (reduction deps must not serialize)", lr.ParallelLevel)
	}
	if len(lr.Reductions) != 1 || lr.Reductions[0] != "+:hist[]" {
		t.Errorf("reductions = %v, want [+:hist[]]", lr.Reductions)
	}
	if !strings.Contains(lr.Pragma, "reduction(+:hist[])") {
		t.Errorf("pragma %q lacks reduction(+:hist[])", lr.Pragma)
	}
	_ = info
}

// TestArrayReductionNearMissNamesOffendingRead is the regression test
// for the SerialReason bugfix: a near-miss like
// hist[a[i]] = hist[b[i]] + 1 must name the offending read instead of
// the generic array-dependence message.
func TestArrayReductionNearMissNamesOffendingRead(t *testing.T) {
	src := `
int a[100], b[100];
int main(void) {
    int hist[16];
    for (int i = 0; i < 100; i++)
        hist[a[i]] = hist[b[i]] + 1;
    return hist[0];
}
`
	_, scops := prep(t, src)
	rep, err := Parallelize(scops, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loops) != 1 {
		t.Fatalf("loops = %+v", rep.Loops)
	}
	lr := rep.Loops[0]
	if lr.ParallelLevel != -1 {
		t.Fatalf("near-miss nest must stay serial, got level %d", lr.ParallelLevel)
	}
	if !strings.Contains(lr.SerialReason, "hist[b[i]]") {
		t.Errorf("SerialReason %q does not name the offending read hist[b[i]]", lr.SerialReason)
	}
	if strings.Contains(lr.SerialReason, "serialized by loop-carried dependences on") {
		t.Errorf("SerialReason %q is still the generic array-dependence message", lr.SerialReason)
	}
	// The rendered report must carry the same message.
	if !strings.Contains(rep.String(), "hist[b[i]]") {
		t.Errorf("report rendering lost the diagnostic:\n%s", rep.String())
	}
}

func TestArrayReductionScatterWriteStaysSerial(t *testing.T) {
	// A scatter store that is not an update (out[idx[i]] = i) must
	// serialize: two iterations may target the same cell, so order
	// matters. The conservative star self-dependence enforces it.
	src := `
int idx[100];
int main(void) {
    int out[16];
    for (int i = 0; i < 100; i++)
        out[idx[i]] = i;
    return out[0];
}
`
	_, scops := prep(t, src)
	rep, err := Parallelize(scops, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loops) != 1 || rep.Loops[0].ParallelLevel != -1 {
		t.Fatalf("scatter store must stay serial: %+v", rep.Loops)
	}
}

func TestArrayReductionMinMaxPragma(t *testing.T) {
	src := `
int data[100], bin[100];
int main(void) {
    int lo[8];
    for (int i = 0; i < 100; i++)
        if (data[i] < lo[bin[i]]) lo[bin[i]] = data[i];
    return lo[0];
}
`
	_, scops := prep(t, src)
	rep, err := Parallelize(scops, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var pragma string
	for _, lr := range rep.Loops {
		if lr.Pragma != "" {
			pragma = lr.Pragma
		}
	}
	if !strings.Contains(pragma, "reduction(min:lo[])") {
		t.Errorf("pragma %q lacks reduction(min:lo[])", pragma)
	}
}
