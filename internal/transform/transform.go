// Package transform applies the polyhedral schedule to the syntax tree:
// it is the polycc step of the paper's Fig. 1. For every detected SCoP it
// runs dependence analysis, finds parallel loops (after optional skewing,
// the paper's Fig. 2 shearing), optionally tiles permutable bands
// (the PluTo-SICA cache optimization analog), regenerates the loop nest
// from the transformed polyhedron and inserts
// #pragma omp parallel for / #pragma simd annotations that the execution
// backend honors.
package transform

import (
	"fmt"
	"sort"
	"strings"

	"purec/internal/ast"
	"purec/internal/poly"
	"purec/internal/scop"
	"purec/internal/token"
)

// Options configure the transformation, mirroring the paper's tool modes.
type Options struct {
	// Tile enables rectangular tiling of permutable bands (PluTo-SICA).
	Tile bool
	// TileSizes are per-level tile sizes when tiling (default 32).
	TileSizes []int
	// Skew enables the shearing transformation when the outermost loop
	// is not parallel (Fig. 2).
	Skew bool
	// Schedule is the OpenMP schedule clause to emit: "" (compiler
	// default, static), "static" or "dynamic,1" (the paper's satellite
	// fix in Sect. 4.3.3).
	Schedule string
	// MinParallelTrip suppresses the OpenMP pragma on loops whose trip
	// count is a compile-time constant below this bound — the
	// profitability heuristic production parallelizers apply so that
	// tiny loops do not pay the fork/join overhead. 0 means the default
	// of 32; negative disables the heuristic.
	MinParallelTrip int
}

// minTrip resolves the effective threshold.
func (o Options) minTrip() int64 {
	switch {
	case o.MinParallelTrip < 0:
		return 0
	case o.MinParallelTrip == 0:
		return 32
	default:
		return int64(o.MinParallelTrip)
	}
}

// LoopReport describes what happened to one SCoP.
type LoopReport struct {
	Func          string
	Depth         int
	Deps          int
	ParallelLevel int // 0-based level given the final loop order; -1 = serial
	Skewed        bool
	SkewFactor    int64
	Tiled         bool
	Pragma        string
	// Reductions lists the recognized reduction clauses of the nest
	// ("+:s" style), mirrored into the emitted pragma.
	Reductions []string
	// SerialReason explains, in one human-readable sentence, why the
	// nest stayed serial (ParallelLevel == -1): a scalar write that is
	// not a recognized reduction, a carried data dependence, an
	// unresolved pointer access, or the minimum-trip profitability
	// heuristic. Empty for parallel nests.
	SerialReason string
	// AliasNotes records the points-to resolution the SCoP detector
	// applied to the nest's pointer-based accesses (exact region, may
	// set, or unknown), mirrored from scop.SCoP.AliasNotes for
	// -emit report diagnostics.
	AliasNotes []string
	// PrivateScalars lists the iteration-private scalar definitions
	// the detector recognized in the body; the ones defined by plain
	// assignment appear in the pragma's private(...) clause.
	PrivateScalars []string
}

// Report summarizes a Parallelize run.
type Report struct {
	Loops []LoopReport
}

// String renders the report for diagnostics.
func (r *Report) String() string {
	var b strings.Builder
	for _, l := range r.Loops {
		fmt.Fprintf(&b, "%s: depth=%d deps=%d parallel@%d skewed=%v tiled=%v %s\n",
			l.Func, l.Depth, l.Deps, l.ParallelLevel, l.Skewed, l.Tiled, l.Pragma)
		if l.SerialReason != "" {
			fmt.Fprintf(&b, "%s: serial: %s\n", l.Func, l.SerialReason)
		}
		for _, n := range l.AliasNotes {
			fmt.Fprintf(&b, "%s: alias: %s\n", l.Func, n)
		}
	}
	return b.String()
}

// Parallelize transforms every SCoP in place and returns the report.
func Parallelize(scops []*scop.SCoP, opts Options) (*Report, error) {
	rep := &Report{}
	for _, sc := range scops {
		lr, err := transformOne(sc, opts)
		if err != nil {
			return rep, err
		}
		rep.Loops = append(rep.Loops, lr)
	}
	return rep, nil
}

func transformOne(sc *scop.SCoP, opts Options) (LoopReport, error) {
	lr := LoopReport{Func: sc.Func.Name, Depth: sc.Nest.Depth(),
		AliasNotes: sc.AliasNotes, PrivateScalars: sc.PrivateScalars}
	nest := sc.Nest
	deps := poly.AnalyzeDeps(nest)
	lr.Deps = len(deps)
	par := poly.ParallelLevels(nest, deps)

	// Shearing when the outer level is serial but can be compensated.
	if opts.Skew && poly.OutermostParallel(par) != 0 && nest.Depth() >= 2 {
		if f, ok := poly.LegalSkew(deps, 0); ok && f > 0 {
			skewed := poly.ApplySkew(nest, 0, f)
			sdeps := poly.AnalyzeDeps(skewed)
			spar := poly.ParallelLevels(skewed, sdeps)
			if poly.OutermostParallel(spar) >= 0 || poly.Permutable(skewed, sdeps) {
				rewriteSkewedBody(sc, nest.Iters[0], nest.Iters[1], f)
				nest, deps, par = skewed, sdeps, spar
				lr.Skewed, lr.SkewFactor = true, f
			}
		}
	}

	// A data-dependent read the value-range analysis could not prove
	// in-bounds may trap mid-nest; running its iterations concurrently
	// would reorder the trap against the stores of other iterations, so
	// the nest is forced serial for trap parity with the interpreter.
	// Proven-bounded star reads (poly.Access.Bounded) cannot trap and
	// impose nothing.
	forced := unprovenStarRead(nest)
	if forced != nil {
		par = make([]bool, len(par))
	}

	// An access through a pointer the alias analysis could not resolve
	// may touch any array: a write through it (or a read beside any
	// array write) could conflict with every other iteration, so the
	// nest is forced serial. Reduction tagging does not exempt such an
	// access — privatizing an accumulator whose target region is
	// unknown could split updates that alias another array in the nest.
	aliased := mayAliasAccess(nest)
	if aliased != nil {
		par = make([]bool, len(par))
	}

	var gen *poly.GenNest
	var err error
	if opts.Tile && poly.Permutable(nest, deps) && nest.Depth() >= 2 {
		sizes := opts.TileSizes
		if len(sizes) == 0 {
			sizes = make([]int, nest.Depth())
			for i := range sizes {
				sizes[i] = 32
			}
		}
		gen, err = poly.Tile(nest, sizes, par)
		lr.Tiled = err == nil
	}
	if gen == nil {
		gen, err = poly.Generate(nest, par)
	}
	if err != nil {
		return lr, fmt.Errorf("SCoP in %s: %v", sc.Func.Name, err)
	}

	// Choose the outermost parallel loop for the OpenMP pragma, skipping
	// loops whose constant trip count is too small to amortize the
	// fork/join cost.
	parIdx := -1
	tripSuppressed := false
	for i, l := range gen.Loops {
		if !l.Parallel {
			continue
		}
		if trip, known := constTrip(l); known && trip < opts.minTrip() {
			tripSuppressed = true
			continue
		}
		parIdx = i
		break
	}
	lr.ParallelLevel = parIdx
	for _, r := range sc.Reductions {
		lr.Reductions = append(lr.Reductions, r.ClauseOp()+":"+r.ClauseVar())
	}
	if parIdx < 0 {
		lr.SerialReason = serialReason(nest, deps, forced, aliased, tripSuppressed, opts)
	}

	newLoop, pragma := buildLoops(gen, parIdx, opts, sc)
	lr.Pragma = pragma
	replaceStmt(sc.Func.Body, sc.Outer, newLoop)
	return lr, nil
}

// mayAliasAccess returns the first unresolved pointer access that
// forces the nest serial: any MayAlias write, or a MayAlias read in a
// nest that writes some array (reads cannot conflict with scalar
// accumulators, so a reads-plus-scalar-reduction nest — a dot product
// through pointer operands — stays parallel-eligible).
func mayAliasAccess(nest *poly.Nest) *poly.Access {
	hasArrayWrite := false
	for _, st := range nest.Stmts {
		for i := range st.Writes {
			if !strings.HasPrefix(st.Writes[i].Array, "scalar:") {
				hasArrayWrite = true
			}
		}
	}
	for _, st := range nest.Stmts {
		for i := range st.Writes {
			if st.Writes[i].MayAlias {
				return &st.Writes[i]
			}
		}
		for i := range st.Reads {
			if st.Reads[i].MayAlias && hasArrayWrite {
				return &st.Reads[i]
			}
		}
	}
	return nil
}

// unprovenStarRead returns the first non-reduction star read the
// value-range analysis did not prove in-bounds (nil when every
// data-dependent read is proven or reduction-tagged).
func unprovenStarRead(nest *poly.Nest) *poly.Access {
	for _, st := range nest.Stmts {
		for i := range st.Reads {
			a := &st.Reads[i]
			if a.Star && !a.Reduction && !a.Bounded {
				return a
			}
		}
	}
	return nil
}

// serialReason explains why no loop level carries the OpenMP pragma.
func serialReason(nest *poly.Nest, deps []*poly.Dep, forced, aliased *poly.Access, tripSuppressed bool, opts Options) string {
	// An unresolved pointer is the root cause when present: it forces
	// serialization by itself, and any dependences the analysis also
	// found are keyed to a pointer name that may alias anything — so
	// the alias reason is reported before the dependence reasons.
	if aliased != nil {
		kind := "a read"
		if aliased.Write {
			kind = "a write"
		}
		note := aliased.Note
		if note == "" {
			note = aliased.Via + " may point anywhere"
		}
		return fmt.Sprintf("serialized by %s through unresolved pointer %s: %s (iterations could conflict through the hidden target region)",
			kind, aliased.Via, note)
	}
	// A scalar write that did not qualify as a reduction serializes
	// every level — the most common and most actionable cause, so it is
	// reported next.
	scalars := map[string]bool{}
	arrays := map[string]bool{}
	for _, d := range deps {
		if d.Reduction || d.Level == 0 {
			continue
		}
		if name, ok := strings.CutPrefix(d.Array, "scalar:"); ok {
			scalars[name] = true
		} else {
			arrays[d.Array] = true
		}
	}
	if len(scalars) > 0 {
		return fmt.Sprintf("serialized by scalar write to %s (not a recognized reduction: the accumulator must be a local scalar updated by a single `s op= expr` statement and used nowhere else in the nest)",
			strings.Join(sortedKeys(scalars), ", "))
	}
	if len(arrays) > 0 {
		// Near-miss array reductions get a precise diagnostic: when the
		// serializing array is accessed through data-dependent
		// subscripts (hist[a[i]] = hist[b[i]] + 1), name the offending
		// access instead of the generic array-dependence message.
		for _, name := range sortedKeys(arrays) {
			if msg := starAccessReason(nest, name); msg != "" {
				return msg
			}
		}
		return fmt.Sprintf("serialized by loop-carried dependences on %s",
			strings.Join(sortedKeys(arrays), ", "))
	}
	if forced != nil {
		note := forced.Note
		if note == "" {
			if forced.Index != "" {
				note = forced.Index + " range unknown"
			} else {
				note = "index range unknown"
			}
		}
		return fmt.Sprintf("serialized by read %s: %s", forced.Expr, note)
	}
	if tripSuppressed {
		return fmt.Sprintf("parallel loop suppressed: constant trip count below the profitability threshold (%d)", opts.minTrip())
	}
	return "no dependence-free loop level"
}

// starAccessReason builds the near-miss array-reduction diagnostic for
// one serializing array: it names the un-tagged star access — the read
// or write that kept the nest from qualifying — and the statement it
// sits in. Empty when the array has no star accesses (an ordinary
// affine dependence).
func starAccessReason(nest *poly.Nest, array string) string {
	var offending *poly.Access
	var inStmt string
	// Prefer naming a non-reduction read through a subscript other
	// than the statement's own write target (the common near-miss is
	// a read through a second subscript); then any such read; then
	// the write itself.
	for pass := 0; pass < 3 && offending == nil; pass++ {
		for _, st := range nest.Stmts {
			writeExprs := map[string]bool{}
			for _, w := range st.Writes {
				if w.Array == array {
					writeExprs[w.Expr] = true
				}
			}
			accs := st.Reads
			if pass == 2 {
				accs = st.Writes
			}
			for i := range accs {
				a := &accs[i]
				if a.Array != array || !a.Star || a.Reduction {
					continue
				}
				if pass == 0 && writeExprs[a.Expr] {
					continue // the target's own read-modify-write read
				}
				offending = a
				inStmt = strings.TrimSpace(st.Label)
				break
			}
			if offending != nil {
				break
			}
		}
	}
	if offending == nil {
		return ""
	}
	kind := "read of"
	if offending.Write {
		kind = "write to"
	}
	src := offending.Expr
	if src == "" {
		src = array + "[*]"
	}
	return fmt.Sprintf("serialized by %s %s in %q: %s is updated through a data-dependent subscript, but this access keeps it from qualifying as an array reduction (every access of %s in the nest must be the same `%s[expr] op= e` update of one operator)",
		kind, src, inStmt, array, array, array)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// constTrip computes the loop's trip count when all bounds are constant.
func constTrip(l poly.Loop) (int64, bool) {
	env := map[string]int64{}
	for _, b := range append(append([]poly.Bound{}, l.Lowers...), l.Uppers...) {
		if len(b.Expr.Coef) != 0 {
			return 0, false
		}
	}
	lo := l.LowerEnv(env)
	hi := l.UpperEnv(env)
	return hi - lo + 1, true
}

// rewriteSkewedBody substitutes the skewed iterator in the body
// statements: with j' = j + f·i every use of j becomes (j' − f·i).
func rewriteSkewedBody(sc *scop.SCoP, i, j string, f int64) {
	jNew := j + "'"
	// The printed name j' is not a valid identifier; use js suffix.
	jNew = skewedName(j)
	for _, stmt := range sc.BodyStmts {
		ast.RewriteExpr(stmt, func(e ast.Expr) ast.Expr {
			id, ok := e.(*ast.Ident)
			if !ok || id.Name != j {
				return e
			}
			return &ast.ParenExpr{LPos: id.Pos(), X: &ast.BinaryExpr{
				X:  &ast.Ident{NamePos: id.Pos(), Name: jNew},
				Op: token.SUB,
				Y: &ast.BinaryExpr{
					X:  &ast.IntLit{Value: f, Text: fmt.Sprintf("%d", f)},
					Op: token.MUL,
					Y:  &ast.Ident{NamePos: id.Pos(), Name: i},
				},
			}}
		})
	}
}

// skewedName maps the poly package's primed iterator (j') to a valid C
// identifier (j_sk).
func skewedName(j string) string { return j + "_sk" }

// astName converts poly iterator names (which may contain primes from
// skewing) to valid C identifiers.
func astName(v string) string {
	if strings.HasSuffix(v, "'") {
		return skewedName(strings.TrimSuffix(v, "'"))
	}
	return v
}

// buildLoops regenerates the loop nest AST from the generated structure
// and returns it together with the pragma text inserted (if any).
func buildLoops(gen *poly.GenNest, parIdx int, opts Options, sc *scop.SCoP) (ast.Stmt, string) {
	// Innermost body: the original statements, with affine private
	// scalar definitions forward-substituted into their uses.
	var body ast.Stmt = &ast.BlockStmt{List: substPrivates(sc)}
	pragma := ""
	for k := len(gen.Loops) - 1; k >= 0; k-- {
		l := gen.Loops[k]
		name := astName(l.Iter)
		f := &ast.ForStmt{
			Init: &ast.DeclStmt{Decls: []*ast.VarDecl{{
				Type: &ast.TypeExpr{Base: ast.Int},
				Name: name,
				Init: boundsExpr(l.Lowers, true),
			}}},
			Cond: &ast.BinaryExpr{
				X:  &ast.Ident{Name: name},
				Op: token.LEQ,
				Y:  boundsExpr(l.Uppers, false),
			},
			Post: &ast.PostfixExpr{X: &ast.Ident{Name: name}, Op: token.INC},
			Body: body,
		}
		var stmts []ast.Stmt
		if k == parIdx {
			pragma = ompPragma(gen, k, opts, sc)
			stmts = append(stmts, &ast.PragmaStmt{Text: pragma})
		} else if k == len(gen.Loops)-1 && l.Vector && l.Parallel && k != parIdx {
			// SICA-style vectorization hint on the innermost loop.
			stmts = append(stmts, &ast.PragmaStmt{Text: "#pragma simd"})
		}
		stmts = append(stmts, f)
		if len(stmts) == 1 {
			body = f
		} else {
			body = &ast.BlockStmt{List: stmts}
		}
	}
	return body, pragma
}

// substPrivates forward-substitutes the SCoP's affine private scalar
// definitions (`int j = i + k;`) into their uses and drops the
// declarations, so a derived-subscript body collapses to the single
// statement the kernel fuser recognizes (and the value-range analysis
// proves directly, since the substituted subscript is affine in the
// iterator). An affine initializer is pure integer arithmetic of
// iterators, parameters and constants: re-evaluating it per use is
// deterministic and cannot trap, so the rewrite is observation- and
// trap-equivalent. Bodies without substitutable decls pass through
// unchanged.
func substPrivates(sc *scop.SCoP) []ast.Stmt {
	if len(sc.SubstPrivates) == 0 {
		return sc.BodyStmts
	}
	repl := map[string]ast.Expr{}
	out := make([]ast.Stmt, 0, len(sc.BodyStmts))
	for _, s := range sc.BodyStmts {
		if len(repl) > 0 {
			ast.RewriteExpr(s, func(e ast.Expr) ast.Expr {
				if id, ok := e.(*ast.Ident); ok {
					if r, ok2 := repl[id.Name]; ok2 {
						return &ast.ParenExpr{X: cloneExpr(r)}
					}
				}
				return e
			})
		}
		if ds, ok := s.(*ast.DeclStmt); ok && len(ds.Decls) == 1 {
			d := ds.Decls[0]
			if _, ok2 := sc.SubstPrivates[d.Name]; ok2 && d.Init != nil && len(d.ArrayLens) == 0 {
				// Record the live (already-substituted) initializer and
				// drop the declaration.
				repl[d.Name] = d.Init
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// cloneExpr deep-copies the expression forms an affine initializer can
// contain, so each substituted use site owns its nodes. Other forms
// cannot appear in an affine initializer; they are returned shared as a
// harmless fallback (the transformed source is printed and re-parsed,
// which deduplicates).
func cloneExpr(e ast.Expr) ast.Expr {
	switch x := e.(type) {
	case *ast.Ident:
		c := *x
		return &c
	case *ast.IntLit:
		c := *x
		return &c
	case *ast.ParenExpr:
		return &ast.ParenExpr{X: cloneExpr(x.X), LPos: x.LPos}
	case *ast.BinaryExpr:
		return &ast.BinaryExpr{X: cloneExpr(x.X), Op: x.Op, Y: cloneExpr(x.Y)}
	case *ast.UnaryExpr:
		return &ast.UnaryExpr{Op: x.Op, OpPos: x.OpPos, X: cloneExpr(x.X)}
	}
	return e
}

// ompPragma builds the OpenMP directive for the parallel loop: the inner
// iterators and the body's assignment-defined private scalars are listed
// private, like the lbv/ubv/t2 clause in the paper's Listing 8, and
// recognized reduction accumulators get a reduction(op:var) clause that
// the execution backends honor via rt.Team.ParallelForReduce.
func ompPragma(gen *poly.GenNest, k int, opts Options, sc *scop.SCoP) string {
	reds := sc.Reductions
	var privates []string
	for i := k + 1; i < len(gen.Loops); i++ {
		privates = append(privates, astName(gen.Loops[i].Iter))
	}
	privates = append(privates, sc.PrivateScalars...)
	sort.Strings(privates)
	s := "#pragma omp parallel for"
	if len(privates) > 0 {
		s += " private(" + strings.Join(privates, ", ") + ")"
	}
	clauses := make([]string, 0, len(reds))
	for _, r := range reds {
		clauses = append(clauses, "reduction("+r.ClauseOp()+":"+r.ClauseVar()+")")
	}
	sort.Strings(clauses)
	for _, c := range clauses {
		s += " " + c
	}
	if opts.Schedule != "" {
		s += " schedule(" + opts.Schedule + ")"
	}
	return s
}

// boundsExpr folds multiple bounds with imax (lower) or imin (upper).
func boundsExpr(bs []poly.Bound, lower bool) ast.Expr {
	exprs := make([]ast.Expr, len(bs))
	for i, b := range bs {
		exprs[i] = boundExpr(b)
	}
	out := exprs[0]
	fn := "imin"
	if lower {
		fn = "imax"
	}
	for _, e := range exprs[1:] {
		out = &ast.CallExpr{Fun: &ast.Ident{Name: fn}, Args: []ast.Expr{out, e}}
	}
	return out
}

// boundExpr converts one bound to an expression, emitting floord/ceild
// helper calls for divided bounds exactly like PluTo's generated code.
func boundExpr(b poly.Bound) ast.Expr {
	e := affineExpr(b.Expr)
	if b.Div == 1 {
		return e
	}
	fn := "floord"
	if b.Ceil {
		fn = "ceild"
	}
	return &ast.CallExpr{Fun: &ast.Ident{Name: fn}, Args: []ast.Expr{
		e, &ast.IntLit{Value: b.Div, Text: fmt.Sprintf("%d", b.Div)},
	}}
}

// affineExpr renders an affine expression as an AST expression.
func affineExpr(a poly.Affine) ast.Expr {
	var out ast.Expr
	add := func(e ast.Expr, negative bool) {
		if out == nil {
			if negative {
				out = &ast.UnaryExpr{Op: token.SUB, X: e}
			} else {
				out = e
			}
			return
		}
		op := token.ADD
		if negative {
			op = token.SUB
		}
		out = &ast.BinaryExpr{X: out, Op: op, Y: e}
	}
	for _, v := range a.Vars() {
		c := a.Coef[v]
		id := &ast.Ident{Name: astName(v)}
		switch {
		case c == 1:
			add(id, false)
		case c == -1:
			add(id, true)
		case c > 0:
			add(&ast.BinaryExpr{X: &ast.IntLit{Value: c, Text: fmt.Sprintf("%d", c)}, Op: token.MUL, Y: id}, false)
		default:
			add(&ast.BinaryExpr{X: &ast.IntLit{Value: -c, Text: fmt.Sprintf("%d", -c)}, Op: token.MUL, Y: id}, true)
		}
	}
	if a.Const != 0 || out == nil {
		neg := a.Const < 0
		v := a.Const
		if neg {
			v = -v
		}
		add(&ast.IntLit{Value: v, Text: fmt.Sprintf("%d", v)}, neg)
	}
	return out
}

// replaceStmt swaps target for repl wherever it appears in the tree.
func replaceStmt(b *ast.BlockStmt, target ast.Stmt, repl ast.Stmt) bool {
	for i, s := range b.List {
		if s == target {
			b.List[i] = repl
			return true
		}
		switch x := s.(type) {
		case *ast.BlockStmt:
			if replaceStmt(x, target, repl) {
				return true
			}
		case *ast.ForStmt:
			if x.Body == target {
				x.Body = repl
				return true
			}
			if inner, ok := x.Body.(*ast.BlockStmt); ok && replaceStmt(inner, target, repl) {
				return true
			}
		case *ast.WhileStmt:
			if x.Body == target {
				x.Body = repl
				return true
			}
			if inner, ok := x.Body.(*ast.BlockStmt); ok && replaceStmt(inner, target, repl) {
				return true
			}
		case *ast.IfStmt:
			if x.Then == target {
				x.Then = repl
				return true
			}
			if x.Else == target {
				x.Else = repl
				return true
			}
			if inner, ok := x.Then.(*ast.BlockStmt); ok && replaceStmt(inner, target, repl) {
				return true
			}
			if inner, ok := x.Else.(*ast.BlockStmt); ok && replaceStmt(inner, target, repl) {
				return true
			}
		}
	}
	return false
}
