package transform

import (
	"strings"
	"testing"

	"purec/internal/ast"
	"purec/internal/parser"
	"purec/internal/purity"
	"purec/internal/scop"
	"purec/internal/sema"
	"purec/internal/vra"
)

func prep(t *testing.T, src string) (*sema.Info, []*scop.SCoP) {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	pres := purity.Check(info)
	if err := pres.Err(); err != nil {
		t.Fatalf("purity: %v", err)
	}
	// The real pipeline always hands the detector the value-range
	// analysis' alias oracle; mirror that here so pointer-based fixtures
	// resolve like they do under purecc.
	var oracle scop.AliasOracle
	if v := vra.Analyze(info); v.Alias != nil {
		oracle = v.Alias
	}
	res := scop.DetectWith(info, pres, scop.Options{AllowPureCalls: true, Aliases: oracle})
	if len(res.Errors) > 0 {
		t.Fatalf("scop errors: %v", res.Errors)
	}
	return info, res.SCoPs
}

const matmulSrc = `
float **A, **Bt, **C;
int n;

pure float dot(pure float* a, pure float* b, int size) {
    float res = 0.0f;
    for (int i = 0; i < size; ++i)
        res += a[i] * b[i];
    return res;
}

void alloc() {
    A = (float**)malloc(n * sizeof(float*));
    Bt = (float**)malloc(n * sizeof(float*));
    C = (float**)malloc(n * sizeof(float*));
}

int main(void) {
    alloc();
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], n);
    return 0;
}
`

func mainSCoP(t *testing.T, scops []*scop.SCoP) *scop.SCoP {
	t.Helper()
	for _, s := range scops {
		if s.Func.Name == "main" {
			return s
		}
	}
	t.Fatal("main SCoP not found")
	return nil
}

func TestMatmulParallelized(t *testing.T) {
	info, scops := prep(t, matmulSrc)
	sc := mainSCoP(t, scops)
	rep, err := Parallelize([]*scop.SCoP{sc}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loops) != 1 {
		t.Fatalf("report: %+v", rep)
	}
	lr := rep.Loops[0]
	if lr.ParallelLevel != 0 {
		t.Fatalf("outer loop must be parallel: %+v", lr)
	}
	out := ast.Print(info.File)
	if !strings.Contains(out, "#pragma omp parallel for private(j)") {
		t.Fatalf("pragma missing:\n%s", out)
	}
	// The transformed source must reparse and re-check.
	f2, err := parser.Parse("out.c", out)
	if err != nil {
		t.Fatalf("transformed source does not parse: %v\n%s", err, out)
	}
	if _, err := sema.Check(f2); err != nil {
		t.Fatalf("transformed source does not typecheck: %v\n%s", err, out)
	}
}

func TestScheduleClause(t *testing.T) {
	info, scops := prep(t, matmulSrc)
	sc := mainSCoP(t, scops)
	if _, err := Parallelize([]*scop.SCoP{sc}, Options{Schedule: "dynamic,1"}); err != nil {
		t.Fatal(err)
	}
	out := ast.Print(info.File)
	if !strings.Contains(out, "schedule(dynamic,1)") {
		t.Fatalf("schedule clause missing:\n%s", out)
	}
}

func TestTiling(t *testing.T) {
	info, scops := prep(t, matmulSrc)
	sc := mainSCoP(t, scops)
	rep, err := Parallelize([]*scop.SCoP{sc}, Options{Tile: true, TileSizes: []int{8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Loops[0].Tiled {
		t.Fatalf("expected tiling: %+v", rep.Loops[0])
	}
	out := ast.Print(info.File)
	if !strings.Contains(out, "iT") || !strings.Contains(out, "floord") {
		t.Fatalf("tiled loops missing:\n%s", out)
	}
	f2, err := parser.Parse("out.c", out)
	if err != nil {
		t.Fatalf("tiled source does not parse: %v\n%s", err, out)
	}
	if _, err := sema.Check(f2); err != nil {
		t.Fatalf("tiled source does not typecheck: %v\n%s", err, out)
	}
}

const serialOuterSrc = `
int n;
float **A;
int main(void) {
    for (int i = 1; i < n; ++i)
        for (int j = 1; j < n; ++j)
            A[i][j] = A[i - 1][j] + A[i][j - 1];
    return 0;
}
`

func TestSerialNestReported(t *testing.T) {
	info, scops := prep(t, serialOuterSrc)
	sc := mainSCoP(t, scops)
	rep, err := Parallelize([]*scop.SCoP{sc}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loops[0].ParallelLevel != -1 {
		t.Fatalf("in-place stencil must be serial without skewing: %+v", rep.Loops[0])
	}
	out := ast.Print(info.File)
	if strings.Contains(out, "omp parallel for") {
		t.Fatalf("no pragma expected:\n%s", out)
	}
}

// Skewing: dependences (1,0),(0,1),(1,-1) → after shearing the inner
// loop is parallel (paper Fig. 2).
const skewSrc = `
int n;
float **A;
int main(void) {
    for (int i = 1; i < n; ++i)
        for (int j = 1; j < n - 1; ++j)
            A[i][j] = A[i - 1][j] + A[i][j - 1] + A[i - 1][j + 1];
    return 0;
}
`

func TestSkewingEnablesInnerParallelism(t *testing.T) {
	info, scops := prep(t, skewSrc)
	sc := mainSCoP(t, scops)
	rep, err := Parallelize([]*scop.SCoP{sc}, Options{Skew: true})
	if err != nil {
		t.Fatal(err)
	}
	lr := rep.Loops[0]
	if !lr.Skewed || lr.SkewFactor != 1 {
		t.Fatalf("expected skew by 1: %+v", lr)
	}
	out := ast.Print(info.File)
	if !strings.Contains(out, "j_sk") {
		t.Fatalf("skewed iterator missing:\n%s", out)
	}
	f2, err := parser.Parse("out.c", out)
	if err != nil {
		t.Fatalf("skewed source does not parse: %v\n%s", err, out)
	}
	if _, err := sema.Check(f2); err != nil {
		t.Fatalf("skewed source does not typecheck: %v\n%s", err, out)
	}
}

func TestReportString(t *testing.T) {
	_, scops := prep(t, matmulSrc)
	sc := mainSCoP(t, scops)
	rep, err := Parallelize([]*scop.SCoP{sc}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "main") {
		t.Fatalf("report: %q", rep.String())
	}
}

// ----------------------------------------------------------------------------
// Reduction pragma + serialization reasons (PR 3)

const reductionSrc = `
int n;
pure int square(int x) { return x * x; }
int main(void) {
    int s = 0;
    for (int i = 0; i < n; ++i)
        s += square(i);
    return s;
}
`

func TestReductionClauseEmitted(t *testing.T) {
	info, scops := prep(t, reductionSrc)
	sc := mainSCoP(t, scops)
	rep, err := Parallelize([]*scop.SCoP{sc}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lr := rep.Loops[0]
	if lr.ParallelLevel != 0 {
		t.Fatalf("reduction nest must parallelize at level 0: %+v", lr)
	}
	if !strings.Contains(lr.Pragma, "reduction(+:s)") {
		t.Fatalf("pragma lacks reduction clause: %q", lr.Pragma)
	}
	if len(lr.Reductions) != 1 || lr.Reductions[0] != "+:s" {
		t.Fatalf("report reductions: %v", lr.Reductions)
	}
	out := ast.Print(info.File)
	if !strings.Contains(out, "reduction(+:s)") {
		t.Fatalf("transformed source lacks reduction clause:\n%s", out)
	}
	// The emitted source must survive the pipeline's re-parse.
	if _, err := parser.Parse("out.c", out); err != nil {
		t.Fatalf("transformed source does not reparse: %v\n%s", err, out)
	}
}

func TestReductionClauseWithScheduleClause(t *testing.T) {
	_, scops := prep(t, reductionSrc)
	sc := mainSCoP(t, scops)
	rep, err := Parallelize([]*scop.SCoP{sc}, Options{Schedule: "dynamic,1"})
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Loops[0].Pragma
	if !strings.Contains(p, "reduction(+:s)") || !strings.Contains(p, "schedule(dynamic,1)") {
		t.Fatalf("pragma: %q", p)
	}
}

func TestSerialReasonScalarWrite(t *testing.T) {
	_, scops := prep(t, `
int n;
pure int f(int x) { return x + 1; }
int main(void) {
    int s = 0;
    int u = 0;
    for (int i = 0; i < n; ++i) {
        s += f(i);
        u = s;
    }
    return u;
}
`)
	sc := mainSCoP(t, scops)
	rep, err := Parallelize([]*scop.SCoP{sc}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lr := rep.Loops[0]
	if lr.ParallelLevel != -1 {
		t.Fatalf("nest must be serial: %+v", lr)
	}
	if !strings.Contains(lr.SerialReason, "scalar write to") {
		t.Fatalf("SerialReason = %q", lr.SerialReason)
	}
	if !strings.Contains(rep.String(), "serial:") {
		t.Fatalf("report must render the reason:\n%s", rep.String())
	}
}

func TestSerialReasonMinTrip(t *testing.T) {
	_, scops := prep(t, `
float A[8];
int main(void) {
    for (int i = 0; i < 8; ++i)
        A[i] = (float)i;
    return 0;
}
`)
	sc := mainSCoP(t, scops)
	rep, err := Parallelize([]*scop.SCoP{sc}, Options{}) // default MinParallelTrip = 32
	if err != nil {
		t.Fatal(err)
	}
	lr := rep.Loops[0]
	if lr.ParallelLevel != -1 {
		t.Fatalf("8-trip loop must be suppressed: %+v", lr)
	}
	if !strings.Contains(lr.SerialReason, "profitability") {
		t.Fatalf("SerialReason = %q", lr.SerialReason)
	}
}

func TestSerialReasonArrayDependence(t *testing.T) {
	_, scops := prep(t, `
int n;
float A[1000];
int main(void) {
    for (int i = 1; i < n; ++i)
        A[i] = A[i - 1] + 1.0f;
    return 0;
}
`)
	sc := mainSCoP(t, scops)
	rep, err := Parallelize([]*scop.SCoP{sc}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lr := rep.Loops[0]
	if lr.ParallelLevel != -1 {
		t.Fatalf("recurrence must be serial: %+v", lr)
	}
	if !strings.Contains(lr.SerialReason, "dependences on A") {
		t.Fatalf("SerialReason = %q", lr.SerialReason)
	}
}
