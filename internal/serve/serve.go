// Package serve is the compile-and-run service behind cmd/purecd: an
// HTTP layer over the purec tool chain that accepts {source, inputs,
// options} requests, serves compilations from the in-memory program
// cache backed by the persistent on-disk cache, executes each request
// in a per-run Process drawn from a per-program Process pool
// (reset-don't-reallocate), and enforces bounded admission — a global
// concurrency limit with a bounded, timed wait queue plus per-program
// run quotas. Guest stdout streams as the response body, byte-for-byte
// what purecc would print; run metadata travels in headers and HTTP
// trailers so streaming never has to buffer.
//
// Endpoints:
//
//	POST /run      compile (cached) and execute; body = guest stdout
//	GET  /stats    cache/memo hit rates, pool reuse, admission, latency
//	GET  /healthz  liveness probe
//
// Overload behaviour: a request over the per-program quota is rejected
// immediately with 429; a request that finds the global wait queue full,
// or times out waiting for a run slot, is rejected with 503. Rejections
// are cheap (no build, no Process) so saturation drains cleanly.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"purec/internal/comp"
	"purec/internal/core"
	"purec/internal/rt"
	"purec/internal/transform"
)

// Options configure a Server. Zero values select the documented
// defaults.
type Options struct {
	// MaxConcurrent bounds the builds+runs executing at once (default
	// GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth bounds the requests allowed to wait for a run slot
	// beyond the ones holding slots (default 4×MaxConcurrent). A full
	// queue rejects with 503 immediately.
	QueueDepth int
	// QueueTimeout bounds how long a queued request waits for a slot
	// before a 503 (default 5s).
	QueueTimeout time.Duration
	// PerProgramLimit bounds the concurrent runs of one compiled
	// program (default MaxConcurrent); the excess rejects with 429.
	PerProgramLimit int
	// PoolSize bounds the idle Processes retained per program (default
	// MaxConcurrent).
	PoolSize int
	// NoPool disables Process reuse: every run gets a fresh Process
	// (the cold-path A/B of Fig S1).
	NoPool bool
	// CacheDir, when set, layers a persistent on-disk program cache
	// under the in-memory one, so a restarted daemon serves previously
	// built programs without re-entering the compile chain.
	CacheDir string
	// DiskEntries bounds the on-disk cache entry count (0 = unlimited).
	DiskEntries int
	// CacheSize bounds the in-memory program cache (default 128).
	CacheSize int
	// MaxSourceBytes bounds the request body (default 4MB).
	MaxSourceBytes int64
	// MaxCores bounds the per-request team size (default 64).
	MaxCores int
}

func (o *Options) fill() {
	if o.MaxConcurrent < 1 {
		o.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 4 * o.MaxConcurrent
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 5 * time.Second
	}
	if o.PerProgramLimit < 1 {
		o.PerProgramLimit = o.MaxConcurrent
	}
	if o.PoolSize < 1 {
		o.PoolSize = o.MaxConcurrent
	}
	if o.CacheSize < 1 {
		o.CacheSize = 128
	}
	if o.MaxSourceBytes <= 0 {
		o.MaxSourceBytes = 4 << 20
	}
	if o.MaxCores < 1 {
		o.MaxCores = 64
	}
}

// Server is the compile-and-run service state: the layered program
// caches, the per-program Process pools and run quotas, the admission
// gate and the observability counters.
type Server struct {
	opts  Options
	cache *core.ProgramCache
	start time.Time

	// slots is the global admission semaphore; queued counts the
	// requests waiting on it.
	slots  chan struct{}
	queued atomic.Int64

	mu     sync.Mutex
	pools  map[core.CacheKey]*comp.ProcessPool
	quotas map[core.CacheKey]*atomic.Int64

	reqs    reqCounters
	latency latencyRecorder
}

// reqCounters are the admission/outcome counters of /stats.
type reqCounters struct {
	Total         atomic.Uint64
	OK            atomic.Uint64
	Trapped       atomic.Uint64
	BuildErrors   atomic.Uint64
	BadRequests   atomic.Uint64
	RejectedQuota atomic.Uint64
	RejectedQueue atomic.Uint64
	InFlight      atomic.Int64
}

// latencyRecorder keeps a running per-request latency summary.
type latencyRecorder struct {
	mu    sync.Mutex
	count uint64
	total time.Duration
	max   time.Duration
}

func (l *latencyRecorder) record(d time.Duration) {
	l.mu.Lock()
	l.count++
	l.total += d
	if d > l.max {
		l.max = d
	}
	l.mu.Unlock()
}

func (l *latencyRecorder) snapshot() (count uint64, avg, max time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count > 0 {
		avg = l.total / time.Duration(l.count)
	}
	return l.count, avg, l.max
}

// New creates a Server. With Options.CacheDir set, the on-disk cache is
// opened (created if missing) and layered under the in-memory cache.
func New(opts Options) (*Server, error) {
	opts.fill()
	s := &Server{
		opts:   opts,
		cache:  core.NewProgramCache(opts.CacheSize),
		start:  time.Now(),
		slots:  make(chan struct{}, opts.MaxConcurrent),
		pools:  map[core.CacheKey]*comp.ProcessPool{},
		quotas: map[core.CacheKey]*atomic.Int64{},
	}
	if opts.CacheDir != "" {
		disk, err := core.NewDiskCache(opts.CacheDir, opts.DiskEntries)
		if err != nil {
			return nil, err
		}
		s.cache.WithDisk(disk)
	}
	return s, nil
}

// Cache returns the server's program cache (tests inspect its stats).
func (s *Server) Cache() *core.ProgramCache { return s.cache }

// Handler returns the HTTP handler serving /run, /stats and /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// RunRequest is the JSON body of POST /run.
type RunRequest struct {
	// Source is the mini-C program text.
	Source string `json:"source"`
	// Defines are injected object-like macros (purecc -D).
	Defines map[string]string `json:"defines,omitempty"`
	// Options select the build and run configuration.
	Options RunOptions `json:"options"`
}

// RunOptions is the request-visible subset of the build/run knobs.
// Every field is part of the program's content address except Cores,
// which only sizes the run's worker team.
type RunOptions struct {
	// Backend selects the compiler analog: "gcc" (default) or "icc".
	Backend string `json:"backend,omitempty"`
	// Engine selects the statement engine: "closure" (default) or
	// "tape".
	Engine string `json:"engine,omitempty"`
	// Cores sizes the worker team of this run (default 1).
	Cores int `json:"cores,omitempty"`
	// Sequential disables parallelization (the purecc -seq baseline).
	Sequential bool `json:"sequential,omitempty"`
	// Schedule is the OpenMP schedule clause (e.g. "dynamic,1").
	Schedule string `json:"schedule,omitempty"`
	// Memoize enables pure-call memoization; the table is shared by
	// every pooled Process of the program, so hits accumulate across
	// requests.
	Memoize bool `json:"memoize,omitempty"`
}

// config translates a request into the pipeline Config (cache controls
// and run state excluded — the server owns those).
func (s *Server) config(req *RunRequest) (core.Config, error) {
	cfg := core.Config{
		FileName:    "request.c",
		Defines:     req.Defines,
		Parallelize: !req.Options.Sequential,
		Transform:   transform.Options{Schedule: req.Options.Schedule},
		Memoize:     req.Options.Memoize,
	}
	switch req.Options.Backend {
	case "", "gcc":
		cfg.Backend = comp.BackendGCC
	case "icc":
		cfg.Backend = comp.BackendICC
	default:
		return cfg, fmt.Errorf("unknown backend %q (want gcc or icc)", req.Options.Backend)
	}
	switch req.Options.Engine {
	case "", "closure":
		cfg.Engine = comp.EngineClosure
	case "tape":
		cfg.Engine = comp.EngineTape
	default:
		return cfg, fmt.Errorf("unknown engine %q (want closure or tape)", req.Options.Engine)
	}
	if req.Options.Cores < 0 || req.Options.Cores > s.opts.MaxCores {
		return cfg, fmt.Errorf("cores must be in [0,%d]", s.opts.MaxCores)
	}
	return cfg, nil
}

// jsonError writes a structured error response.
func jsonError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// acquireSlot admits the request into the global concurrency gate,
// waiting in the bounded queue when all slots are busy. It reports
// false (and writes the 503) when the queue is full or the wait times
// out; on true the caller must release the slot.
func (s *Server) acquireSlot(w http.ResponseWriter) bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
	}
	if s.queued.Add(1) > int64(s.opts.QueueDepth) {
		s.queued.Add(-1)
		s.reqs.RejectedQueue.Add(1)
		jsonError(w, http.StatusServiceUnavailable, "admission queue full (%d waiting)", s.opts.QueueDepth)
		return false
	}
	defer s.queued.Add(-1)
	t := time.NewTimer(s.opts.QueueTimeout)
	defer t.Stop()
	select {
	case s.slots <- struct{}{}:
		return true
	case <-t.C:
		s.reqs.RejectedQueue.Add(1)
		jsonError(w, http.StatusServiceUnavailable, "timed out after %s waiting for a run slot", s.opts.QueueTimeout)
		return false
	}
}

// programState returns the pool and quota counter of a program,
// creating them on first use.
func (s *Server) programState(key core.CacheKey, prog *comp.Program, cores int) (*comp.ProcessPool, *atomic.Int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pool, ok := s.pools[key]
	if !ok {
		pool = prog.NewPool(comp.PoolOptions{
			Size:    s.opts.PoolSize,
			NewTeam: func() *rt.Team { return rt.NewTeam(cores) },
		})
		s.pools[key] = pool
	}
	quota, ok := s.quotas[key]
	if !ok {
		quota = &atomic.Int64{}
		s.quotas[key] = quota
	}
	return pool, quota
}

// handleRun serves POST /run: admit, build (cached), draw a pooled
// Process, execute, stream stdout.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.reqs.Total.Add(1)
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req RunRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, s.opts.MaxSourceBytes))
	if err := dec.Decode(&req); err != nil {
		s.reqs.BadRequests.Add(1)
		jsonError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Source == "" {
		s.reqs.BadRequests.Add(1)
		jsonError(w, http.StatusBadRequest, "missing source")
		return
	}
	cfg, err := s.config(&req)
	if err != nil {
		s.reqs.BadRequests.Add(1)
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := core.Key(req.Source, cfg)

	// Per-program quota first: rejecting over-quota requests before the
	// global gate keeps one hot program from starving the queue for
	// everyone else.
	s.mu.Lock()
	quota, ok := s.quotas[key]
	if !ok {
		quota = &atomic.Int64{}
		s.quotas[key] = quota
	}
	s.mu.Unlock()
	if quota.Add(1) > int64(s.opts.PerProgramLimit) {
		quota.Add(-1)
		s.reqs.RejectedQuota.Add(1)
		jsonError(w, http.StatusTooManyRequests, "per-program run quota (%d) exceeded", s.opts.PerProgramLimit)
		return
	}
	defer quota.Add(-1)

	// Global admission: the slot covers the build too — compilation is
	// the expensive phase a saturated daemon must bound.
	if !s.acquireSlot(w) {
		return
	}
	defer func() { <-s.slots }()

	s.reqs.InFlight.Add(1)
	defer s.reqs.InFlight.Add(-1)
	start := time.Now()
	defer func() { s.latency.record(time.Since(start)) }()

	prog, _, source, err := s.cache.BuildDetail(req.Source, cfg)
	if err != nil {
		s.reqs.BuildErrors.Add(1)
		jsonError(w, http.StatusUnprocessableEntity, "build: %v", err)
		return
	}

	cores := req.Options.Cores
	if cores < 1 {
		cores = 1
	}
	var proc *comp.Process
	poolState := "fresh"
	if s.opts.NoPool {
		proc, err = prog.NewProcess(comp.ProcOptions{Team: rt.NewTeam(cores)})
	} else {
		pool, _ := s.programState(key, prog, cores)
		before := pool.Stats().Reuses
		proc, err = pool.Get()
		if err == nil {
			if pool.Stats().Reuses > before {
				poolState = "reused"
			}
			defer pool.Put(proc)
		}
	}
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "process: %v", err)
		return
	}
	// Pools hand back the Process with whatever team it was created
	// with; honor this request's core count.
	if proc.Team() == nil || proc.Team().Size() != cores {
		proc.SetTeam(rt.NewTeam(cores))
	}

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Purecd-Program", key.String()[:16])
	w.Header().Set("X-Purecd-Build", source.String())
	w.Header().Set("X-Purecd-Pool", poolState)

	out := &deferredWriter{w: w}
	proc.SetStdout(out)
	ret, runErr := proc.RunMain()
	proc.SetStdout(nil)
	if runErr != nil {
		s.reqs.Trapped.Add(1)
		if !out.wrote {
			// Nothing streamed yet: a clean structured error response.
			jsonError(w, http.StatusUnprocessableEntity, "run: %v", runErr)
			return
		}
		// Output already streamed; the error travels as a trailer.
		w.Header().Set(http.TrailerPrefix+"X-Purecd-Error", runErr.Error())
		return
	}
	out.ensureHeader()
	w.Header().Set(http.TrailerPrefix+"X-Purecd-Ret", fmt.Sprintf("%d", ret))
	s.reqs.OK.Add(1)
}

// deferredWriter delays WriteHeader until the guest's first output
// byte, so a run that traps before printing can still get a structured
// error status, while a run that prints streams live (each write is
// flushed so long-running guests stream incrementally).
type deferredWriter struct {
	w     http.ResponseWriter
	wrote bool
}

func (d *deferredWriter) ensureHeader() {
	if !d.wrote {
		d.wrote = true
		d.w.WriteHeader(http.StatusOK)
	}
}

func (d *deferredWriter) Write(p []byte) (int, error) {
	d.ensureHeader()
	n, err := d.w.Write(p)
	if f, ok := d.w.(http.Flusher); ok {
		f.Flush()
	}
	return n, err
}

// Stats is the JSON shape of GET /stats.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      struct {
		Total         uint64 `json:"total"`
		OK            uint64 `json:"ok"`
		Trapped       uint64 `json:"trapped"`
		BuildErrors   uint64 `json:"build_errors"`
		BadRequests   uint64 `json:"bad_requests"`
		RejectedQuota uint64 `json:"rejected_quota_429"`
		RejectedQueue uint64 `json:"rejected_queue_503"`
		InFlight      int64  `json:"in_flight"`
		Queued        int64  `json:"queued"`
	} `json:"requests"`
	Latency struct {
		Count uint64  `json:"count"`
		AvgMs float64 `json:"avg_ms"`
		MaxMs float64 `json:"max_ms"`
	} `json:"latency"`
	ProgramCache struct {
		Hits    uint64  `json:"hits"`
		Misses  uint64  `json:"misses"`
		HitRate float64 `json:"hit_rate"`
		Len     int     `json:"len"`
	} `json:"program_cache"`
	DiskCache *core.DiskStats `json:"disk_cache,omitempty"`
	Pool      struct {
		Programs  int    `json:"programs"`
		Gets      uint64 `json:"gets"`
		Reuses    uint64 `json:"reuses"`
		Fresh     uint64 `json:"fresh"`
		Discarded uint64 `json:"discarded"`
	} `json:"pool"`
	Memo struct {
		Hits    uint64  `json:"hits"`
		Misses  uint64  `json:"misses"`
		HitRate float64 `json:"hit_rate"`
	} `json:"memo"`
}

// StatsSnapshot assembles the /stats payload.
func (s *Server) StatsSnapshot() *Stats {
	st := &Stats{UptimeSeconds: time.Since(s.start).Seconds()}
	st.Requests.Total = s.reqs.Total.Load()
	st.Requests.OK = s.reqs.OK.Load()
	st.Requests.Trapped = s.reqs.Trapped.Load()
	st.Requests.BuildErrors = s.reqs.BuildErrors.Load()
	st.Requests.BadRequests = s.reqs.BadRequests.Load()
	st.Requests.RejectedQuota = s.reqs.RejectedQuota.Load()
	st.Requests.RejectedQueue = s.reqs.RejectedQueue.Load()
	st.Requests.InFlight = s.reqs.InFlight.Load()
	st.Requests.Queued = s.queued.Load()

	count, avg, max := s.latency.snapshot()
	st.Latency.Count = count
	st.Latency.AvgMs = float64(avg) / float64(time.Millisecond)
	st.Latency.MaxMs = float64(max) / float64(time.Millisecond)

	hits, misses := s.cache.Stats()
	st.ProgramCache.Hits, st.ProgramCache.Misses = hits, misses
	if hits+misses > 0 {
		st.ProgramCache.HitRate = float64(hits) / float64(hits+misses)
	}
	st.ProgramCache.Len = s.cache.Len()
	if d := s.cache.Disk(); d != nil {
		ds := d.Stats()
		st.DiskCache = &ds
	}

	s.mu.Lock()
	pools := make([]*comp.ProcessPool, 0, len(s.pools))
	for _, p := range s.pools {
		pools = append(pools, p)
	}
	s.mu.Unlock()
	st.Pool.Programs = len(pools)
	var memoHits, memoMisses uint64
	for _, p := range pools {
		ps := p.Stats()
		st.Pool.Gets += ps.Gets
		st.Pool.Reuses += ps.Reuses
		st.Pool.Fresh += ps.Fresh
		st.Pool.Discarded += ps.Discarded
		ms := p.Program().MemoStats()
		memoHits += uint64(ms.Hits)
		memoMisses += uint64(ms.Misses)
	}
	st.Memo.Hits, st.Memo.Misses = memoHits, memoMisses
	if memoHits+memoMisses > 0 {
		st.Memo.HitRate = float64(memoHits) / float64(memoHits+memoMisses)
	}
	return st
}

// handleStats serves GET /stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.StatsSnapshot()); err != nil && !errors.Is(err, http.ErrHandlerTimeout) {
		// Encoding into a live ResponseWriter can only fail on a gone
		// client; nothing to do.
		_ = err
	}
}
