package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"purec/internal/comp"
	"purec/internal/core"
	"purec/internal/rt"
)

const serveSrc = `
int *buf;

int main(void) {
    buf = (int*)malloc(64 * sizeof(int));
    int s = 0;
    for (int i = 0; i < 64; i++) {
        buf[i] = i * i;
        s += buf[i];
    }
    printf("sum=%d\n", s);
    return s % 117;
}
`

// post sends a /run request and returns the response.
func post(t *testing.T, ts *httptest.Server, req RunRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestRunColdThenMemoryThenDiskHit walks the three cache layers: the
// first request compiles, the second hits the in-memory cache, and a
// restarted daemon (fresh Server, same cache directory) serves from
// disk — provably without re-entering the pipeline front end. Output
// must be byte-identical across all three.
func TestRunColdThenMemoryThenDiskHit(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Options{CacheDir: dir})

	req := RunRequest{Source: serveSrc}
	resp := post(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	if got := resp.Header.Get("X-Purecd-Build"); got != "compiled" {
		t.Fatalf("cold X-Purecd-Build = %q, want compiled", got)
	}
	coldOut := readBody(t, resp)

	resp = post(t, ts, req)
	if got := resp.Header.Get("X-Purecd-Build"); got != "memory" {
		t.Fatalf("warm X-Purecd-Build = %q, want memory", got)
	}
	if got := resp.Header.Get("X-Purecd-Pool"); got != "reused" {
		t.Fatalf("warm X-Purecd-Pool = %q, want reused", got)
	}
	if out := readBody(t, resp); out != coldOut {
		t.Fatalf("warm output %q differs from cold %q", out, coldOut)
	}

	// Restart: a new Server over the same directory.
	_, ts2 := newTestServer(t, Options{CacheDir: dir})
	frontBefore := core.FrontRuns()
	resp = post(t, ts2, req)
	if got := resp.Header.Get("X-Purecd-Build"); got != "disk" {
		t.Fatalf("restart X-Purecd-Build = %q, want disk", got)
	}
	if delta := core.FrontRuns() - frontBefore; delta != 0 {
		t.Fatalf("front end ran %d times serving the disk hit, want 0", delta)
	}
	if out := readBody(t, resp); out != coldOut {
		t.Fatalf("restart output %q differs from cold %q", out, coldOut)
	}
}

// TestConcurrentIdenticalRequestsCompileOnce: many concurrent POSTs of
// the same source must singleflight into exactly one front-end run.
func TestConcurrentIdenticalRequestsCompileOnce(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxConcurrent: 8, QueueDepth: 64})
	src := `int main(void) { printf("once\n"); return 0; }`

	frontBefore := core.FrontRuns()
	const clients = 12
	var wg sync.WaitGroup
	outs := make([]string, clients)
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(RunRequest{Source: src})
			resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			outs[i], codes[i] = string(data), resp.StatusCode
		}(i)
	}
	wg.Wait()
	if delta := core.FrontRuns() - frontBefore; delta != 1 {
		t.Fatalf("front end ran %d times for %d identical requests, want exactly 1", delta, clients)
	}
	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK || outs[i] != "once\n" {
			t.Fatalf("client %d: status %d body %q", i, codes[i], outs[i])
		}
	}
}

// TestGuestTrapReturnsStructuredError: a guest that traps (use after
// free) must produce a structured JSON error response — not crash the
// daemon, which must keep serving.
func TestGuestTrapReturnsStructuredError(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	trap := `
int main(void) {
    int *p = (int*)malloc(4 * sizeof(int));
    free(p);
    return p[0];
}
`
	resp := post(t, ts, RunRequest{Source: trap})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("trap status = %d, want 422", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("trap content type = %q, want JSON", ct)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(readBody(t, resp)), &e); err != nil {
		t.Fatalf("trap body not JSON: %v", err)
	}
	if !strings.HasPrefix(e.Error, "run:") || e.Error == "run:" {
		t.Fatalf("trap error %q does not describe a run fault", e.Error)
	}

	// The daemon survives and keeps serving.
	resp = post(t, ts, RunRequest{Source: `int main(void) { printf("alive\n"); return 0; }`})
	if resp.StatusCode != http.StatusOK || readBody(t, resp) != "alive\n" {
		t.Fatal("daemon did not keep serving after a guest trap")
	}
}

// TestBuildErrorReturnsStructuredError: source the front end rejects is
// a clean 422, not a daemon fault.
func TestBuildErrorReturnsStructuredError(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := post(t, ts, RunRequest{Source: `int main(void) { return 0`})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
	if body := readBody(t, resp); !strings.Contains(body, "error") {
		t.Fatalf("body %q carries no error", body)
	}
}

// TestAdmissionSaturationRejectsAndDrains: with one run slot, no queue
// and a long-running guest, concurrent extra requests must be rejected
// (429 for the per-program quota, 503 for the full queue) while the
// in-flight run completes — and afterwards the daemon serves normally
// again.
func TestAdmissionSaturationRejectsAndDrains(t *testing.T) {
	_, ts := newTestServer(t, Options{
		MaxConcurrent:   1,
		QueueDepth:      1,
		QueueTimeout:    50 * time.Millisecond,
		PerProgramLimit: 1,
	})
	// A guest slow enough to hold its slot while the others arrive.
	slow := `
int main(void) {
    int s = 0;
    for (int i = 0; i < 20000000; i++)
        s += i % 7;
    printf("s=%d\n", s);
    return 0;
}
`
	// Distinct fast sources dodge the per-program quota and contend on
	// the global gate instead.
	fastFor := func(i int) string {
		return fmt.Sprintf(`int main(void) { printf("f%d\n"); return 0; }`, i)
	}

	const extra = 6
	var wg sync.WaitGroup
	var mu sync.Mutex
	statuses := map[int]int{}
	launch := func(src string) {
		defer wg.Done()
		body, _ := json.Marshal(RunRequest{Source: src})
		resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		mu.Lock()
		statuses[resp.StatusCode]++
		mu.Unlock()
	}

	wg.Add(1)
	go launch(slow)
	time.Sleep(20 * time.Millisecond) // let the slow run take the slot
	// Same program again: per-program quota, expect 429.
	wg.Add(1)
	go launch(slow)
	// Distinct programs: queue of depth 1 with a short timeout, expect
	// 503s among them.
	for i := 0; i < extra; i++ {
		wg.Add(1)
		go launch(fastFor(i))
	}
	wg.Wait()

	if statuses[http.StatusTooManyRequests] == 0 {
		t.Fatalf("no 429 under per-program saturation: %v", statuses)
	}
	if statuses[http.StatusServiceUnavailable] == 0 {
		t.Fatalf("no 503 under queue saturation: %v", statuses)
	}
	if statuses[http.StatusOK] == 0 {
		t.Fatalf("nothing completed during saturation: %v", statuses)
	}

	// Saturation over: the daemon drains and serves cleanly again.
	resp := post(t, ts, RunRequest{Source: `int main(void) { printf("after\n"); return 0; }`})
	if resp.StatusCode != http.StatusOK || readBody(t, resp) != "after\n" {
		t.Fatal("daemon did not drain back to normal service")
	}
}

// TestStdoutMatchesPurecc: the daemon's response body must be
// byte-for-byte the stdout a direct purecc-style run produces.
func TestStdoutMatchesPurecc(t *testing.T) {
	src := `
float v[8];

int main(void) {
    srand(7);
    for (int i = 0; i < 8; i++)
        v[i] = (float)(rand() % 100) * 0.25f;
    for (int i = 0; i < 8; i++)
        printf("v[%d]=%f\n", i, v[i]);
    printf("done %d\n", rand() % 1000);
    return 0;
}
`
	// Reference: the compiler chain run directly, as cmd/purecc does.
	var want bytes.Buffer
	prog, _, _, err := core.BuildProgram(src, core.Config{FileName: "request.c", Parallelize: true})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := prog.NewProcess(comp.ProcOptions{Team: rt.NewTeam(1), Stdout: &want})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.RunMain(); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Options{})
	for run := 0; run < 3; run++ { // cold, then pooled reuses
		resp := post(t, ts, RunRequest{Source: src})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d status %d", run, resp.StatusCode)
		}
		if got := readBody(t, resp); got != want.String() {
			t.Fatalf("run %d body %q, want %q", run, got, want.String())
		}
	}
}

// TestRunOptionsValidated: bad options are 400s, and option variants
// produce distinct cache keys (a sequential build is not served the
// parallel Program).
func TestRunOptionsValidated(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	for _, req := range []RunRequest{
		{Source: ""},
		{Source: "int main(void){return 0;}", Options: RunOptions{Backend: "clang"}},
		{Source: "int main(void){return 0;}", Options: RunOptions{Engine: "jit"}},
		{Source: "int main(void){return 0;}", Options: RunOptions{Cores: -1}},
	} {
		resp := post(t, ts, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%+v: status %d, want 400", req.Options, resp.StatusCode)
		}
		readBody(t, resp)
	}

	src := `int main(void) { printf("ok\n"); return 0; }`
	for _, opts := range []RunOptions{
		{},
		{Sequential: true},
		{Engine: "tape"},
		{Backend: "icc", Cores: 2, Schedule: "dynamic,1"},
	} {
		resp := post(t, ts, RunRequest{Source: src, Options: opts})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%+v: status %d: %s", opts, resp.StatusCode, readBody(t, resp))
		}
		if got := readBody(t, resp); got != "ok\n" {
			t.Fatalf("%+v: body %q", opts, got)
		}
	}
	// Four distinct configurations -> four distinct cached Programs.
	if n := s.Cache().Len(); n != 4 {
		t.Fatalf("cache holds %d programs, want 4 distinct configs", n)
	}
}

// TestStatsEndpoint: /stats reports request counters, cache hit rates
// and pool reuse after traffic.
func TestStatsEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Options{CacheDir: dir})
	req := RunRequest{Source: serveSrc}
	for i := 0; i < 3; i++ {
		readBody(t, post(t, ts, req))
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.Unmarshal([]byte(readBody(t, resp)), &st); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	if st.Requests.Total != 3 || st.Requests.OK != 3 {
		t.Fatalf("request counters %+v, want 3 total / 3 ok", st.Requests)
	}
	if st.ProgramCache.Hits != 2 || st.ProgramCache.Misses != 1 {
		t.Fatalf("cache counters %+v, want 2 hits / 1 miss", st.ProgramCache)
	}
	if st.DiskCache == nil || st.DiskCache.Stores != 1 {
		t.Fatalf("disk cache stats %+v, want 1 store", st.DiskCache)
	}
	if st.Pool.Reuses != 2 || st.Pool.Fresh != 1 {
		t.Fatalf("pool stats %+v, want 2 reuses / 1 fresh", st.Pool)
	}
	if st.Latency.Count != 3 || st.Latency.MaxMs <= 0 {
		t.Fatalf("latency stats %+v", st.Latency)
	}

	// The handler serializes the same snapshot the API exposes.
	if s.StatsSnapshot().Requests.Total != 3 {
		t.Fatal("StatsSnapshot disagrees with /stats")
	}
}
