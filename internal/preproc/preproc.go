// Package preproc implements the preprocessing stages of the paper's
// compiler chain (Fig. 1):
//
//   - PC-PrePro: StripSystemIncludes removes #include <...> lines before
//     the rest of the chain runs, recording them for later reinsertion;
//   - GCC-E analog: Expand resolves local #include "..." files, object-
//     and function-like #define macros, #undef, and #ifdef/#ifndef/#if
//     conditionals;
//   - PC-PosPro: ReinsertSystemIncludes puts the system includes back at
//     the top of the final source.
//
// #pragma lines pass through untouched so SCoP markers and OpenMP
// directives survive the round trip.
package preproc

import (
	"fmt"
	"strconv"
	"strings"
)

// StripSystemIncludes removes all #include <...> lines from src and
// returns the stripped source plus the removed lines in order.
func StripSystemIncludes(src string) (string, []string) {
	var out []string
	var removed []string
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if strings.HasPrefix(t, "#include") && strings.Contains(t, "<") {
			removed = append(removed, t)
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n"), removed
}

// ReinsertSystemIncludes prepends the previously removed system include
// lines to src (PC-PosPro).
func ReinsertSystemIncludes(src string, includes []string) string {
	if len(includes) == 0 {
		return src
	}
	return strings.Join(includes, "\n") + "\n" + src
}

type macro struct {
	params   []string // nil for object-like macros
	body     string
	funcLike bool
}

// Expander performs macro expansion and conditional processing.
type Expander struct {
	// Files resolves #include "name" to file contents.
	Files map[string]string
	// MaxDepth bounds recursive expansion (defaults to 32).
	MaxDepth int

	macros map[string]macro
}

// Expand preprocesses src: resolves local includes, collects and expands
// #define macros, and evaluates #ifdef/#ifndef/#if/#else/#endif
// conditionals. System includes must have been stripped beforehand.
func (e *Expander) Expand(src string) (string, error) {
	if e.macros == nil {
		e.macros = map[string]macro{}
	}
	if e.MaxDepth == 0 {
		e.MaxDepth = 32
	}
	return e.expand(src, 0)
}

// Expand runs a one-shot expander with no include files.
func Expand(src string) (string, error) {
	e := &Expander{}
	return e.Expand(src)
}

// Define registers an object-like macro before expansion (used by the
// bench harness to inject problem sizes, mirroring -DN=4096).
func (e *Expander) Define(name, body string) {
	if e.macros == nil {
		e.macros = map[string]macro{}
	}
	e.macros[name] = macro{body: body}
}

func (e *Expander) expand(src string, depth int) (string, error) {
	if depth > 16 {
		return "", fmt.Errorf("#include nesting too deep")
	}
	var out strings.Builder
	// cond stack: each entry is (taking, everTaken)
	type condState struct{ taking, everTaken bool }
	var conds []condState
	active := func() bool {
		for _, c := range conds {
			if !c.taking {
				return false
			}
		}
		return true
	}
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		line := lines[i]
		// Join backslash continuations.
		for strings.HasSuffix(line, "\\") && i+1 < len(lines) {
			line = strings.TrimSuffix(line, "\\") + lines[i+1]
			i++
		}
		t := strings.TrimSpace(line)
		if !strings.HasPrefix(t, "#") {
			if active() {
				out.WriteString(e.expandLine(line, 0))
				out.WriteByte('\n')
			}
			continue
		}
		directive, rest := splitDirective(t)
		switch directive {
		case "pragma":
			if active() {
				out.WriteString(line)
				out.WriteByte('\n')
			}
		case "include":
			if !active() {
				continue
			}
			name, ok := localIncludeName(rest)
			if !ok {
				return "", fmt.Errorf("unsupported include %q (system includes must be stripped by PC-PrePro first)", t)
			}
			content, ok := e.Files[name]
			if !ok {
				return "", fmt.Errorf("include file %q not found", name)
			}
			sub, err := e.expand(content, depth+1)
			if err != nil {
				return "", err
			}
			out.WriteString(sub)
			if !strings.HasSuffix(sub, "\n") {
				out.WriteByte('\n')
			}
		case "define":
			if active() {
				if err := e.define(rest); err != nil {
					return "", err
				}
			}
		case "undef":
			if active() {
				delete(e.macros, strings.TrimSpace(rest))
			}
		case "ifdef":
			_, defined := e.macros[strings.TrimSpace(rest)]
			conds = append(conds, condState{taking: defined, everTaken: defined})
		case "ifndef":
			_, defined := e.macros[strings.TrimSpace(rest)]
			conds = append(conds, condState{taking: !defined, everTaken: !defined})
		case "if":
			v, err := e.evalCond(rest)
			if err != nil {
				return "", fmt.Errorf("#if: %v", err)
			}
			conds = append(conds, condState{taking: v, everTaken: v})
		case "elif":
			if len(conds) == 0 {
				return "", fmt.Errorf("#elif without #if")
			}
			top := &conds[len(conds)-1]
			if top.everTaken {
				top.taking = false
			} else {
				v, err := e.evalCond(rest)
				if err != nil {
					return "", fmt.Errorf("#elif: %v", err)
				}
				top.taking = v
				top.everTaken = v
			}
		case "else":
			if len(conds) == 0 {
				return "", fmt.Errorf("#else without #if")
			}
			top := &conds[len(conds)-1]
			top.taking = !top.everTaken
			top.everTaken = true
		case "endif":
			if len(conds) == 0 {
				return "", fmt.Errorf("#endif without #if")
			}
			conds = conds[:len(conds)-1]
		default:
			return "", fmt.Errorf("unsupported preprocessor directive #%s", directive)
		}
	}
	if len(conds) != 0 {
		return "", fmt.Errorf("unterminated #if/#ifdef")
	}
	return out.String(), nil
}

func splitDirective(t string) (string, string) {
	t = strings.TrimSpace(strings.TrimPrefix(t, "#"))
	for i := 0; i < len(t); i++ {
		if t[i] == ' ' || t[i] == '\t' || t[i] == '(' {
			if t[i] == '(' {
				return t[:i], t[i:]
			}
			return t[:i], strings.TrimSpace(t[i+1:])
		}
	}
	return t, ""
}

func localIncludeName(rest string) (string, bool) {
	rest = strings.TrimSpace(rest)
	if len(rest) >= 2 && rest[0] == '"' {
		if j := strings.IndexByte(rest[1:], '"'); j >= 0 {
			return rest[1 : 1+j], true
		}
	}
	return "", false
}

func (e *Expander) define(rest string) error {
	rest = strings.TrimSpace(rest)
	i := 0
	for i < len(rest) && isIdentChar(rest[i]) {
		i++
	}
	if i == 0 {
		return fmt.Errorf("bad #define %q", rest)
	}
	name := rest[:i]
	if i < len(rest) && rest[i] == '(' {
		// function-like macro
		j := strings.IndexByte(rest[i:], ')')
		if j < 0 {
			return fmt.Errorf("bad #define %q: missing )", rest)
		}
		paramPart := rest[i+1 : i+j]
		var params []string
		for _, pp := range strings.Split(paramPart, ",") {
			pp = strings.TrimSpace(pp)
			if pp != "" {
				params = append(params, pp)
			}
		}
		e.macros[name] = macro{params: params, body: strings.TrimSpace(rest[i+j+1:]), funcLike: true}
		return nil
	}
	e.macros[name] = macro{body: strings.TrimSpace(rest[i:])}
	return nil
}

func isIdentChar(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

// expandLine performs token-boundary macro substitution on one source
// line, iterating until no macro names remain (bounded by MaxDepth).
func (e *Expander) expandLine(line string, depth int) string {
	if depth >= e.MaxDepth {
		return line
	}
	var out strings.Builder
	i := 0
	changed := false
	for i < len(line) {
		c := line[i]
		switch {
		case c == '"' || c == '\'':
			// copy string/char literal verbatim
			quote := c
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == quote {
					j++
					break
				}
				j++
			}
			out.WriteString(line[i:j])
			i = j
		case c == '/' && i+1 < len(line) && line[i+1] == '/':
			out.WriteString(line[i:])
			i = len(line)
		case isIdentStart(c):
			j := i + 1
			for j < len(line) && isIdentChar(line[j]) {
				j++
			}
			word := line[i:j]
			m, ok := e.macros[word]
			if !ok {
				out.WriteString(word)
				i = j
				continue
			}
			if !m.funcLike {
				out.WriteString(m.body)
				changed = true
				i = j
				continue
			}
			// function-like: need '(' (possibly after spaces)
			k := j
			for k < len(line) && (line[k] == ' ' || line[k] == '\t') {
				k++
			}
			if k >= len(line) || line[k] != '(' {
				out.WriteString(word)
				i = j
				continue
			}
			args, end, ok := parseArgs(line, k)
			if !ok {
				out.WriteString(word)
				i = j
				continue
			}
			out.WriteString(substParams(m, args))
			changed = true
			i = end
		default:
			out.WriteByte(c)
			i++
		}
	}
	res := out.String()
	if changed {
		return e.expandLine(res, depth+1)
	}
	return res
}

// parseArgs parses a balanced macro argument list starting at the '(' at
// position k; it returns the comma-separated top-level arguments and the
// index just past the closing ')'.
func parseArgs(line string, k int) ([]string, int, bool) {
	depth := 0
	var args []string
	var cur strings.Builder
	i := k
	for ; i < len(line); i++ {
		c := line[i]
		switch c {
		case '(':
			depth++
			if depth > 1 {
				cur.WriteByte(c)
			}
		case ')':
			depth--
			if depth == 0 {
				args = append(args, strings.TrimSpace(cur.String()))
				return args, i + 1, true
			}
			cur.WriteByte(c)
		case ',':
			if depth == 1 {
				args = append(args, strings.TrimSpace(cur.String()))
				cur.Reset()
			} else {
				cur.WriteByte(c)
			}
		default:
			cur.WriteByte(c)
		}
	}
	return nil, i, false
}

// substParams substitutes macro parameters into the body at identifier
// boundaries.
func substParams(m macro, args []string) string {
	body := m.body
	var out strings.Builder
	i := 0
	for i < len(body) {
		if isIdentStart(body[i]) {
			j := i + 1
			for j < len(body) && isIdentChar(body[j]) {
				j++
			}
			word := body[i:j]
			replaced := false
			for pi, pn := range m.params {
				if word == pn && pi < len(args) {
					out.WriteString("(" + args[pi] + ")")
					replaced = true
					break
				}
			}
			if !replaced {
				out.WriteString(word)
			}
			i = j
			continue
		}
		out.WriteByte(body[i])
		i++
	}
	return out.String()
}

// evalCond evaluates a #if condition: integers, defined(X), !, &&, ||,
// comparisons and basic arithmetic over macro-expanded text.
func (e *Expander) evalCond(rest string) (bool, error) {
	// Replace defined(X) / defined X before macro expansion.
	s := rest
	for {
		idx := strings.Index(s, "defined")
		if idx < 0 {
			break
		}
		j := idx + len("defined")
		for j < len(s) && (s[j] == ' ' || s[j] == '\t') {
			j++
		}
		var name string
		var end int
		if j < len(s) && s[j] == '(' {
			k := strings.IndexByte(s[j:], ')')
			if k < 0 {
				return false, fmt.Errorf("bad defined() in %q", rest)
			}
			name = strings.TrimSpace(s[j+1 : j+k])
			end = j + k + 1
		} else {
			k := j
			for k < len(s) && isIdentChar(s[k]) {
				k++
			}
			name = s[j:k]
			end = k
		}
		val := "0"
		if _, ok := e.macros[name]; ok {
			val = "1"
		}
		s = s[:idx] + val + s[end:]
	}
	s = e.expandLine(s, 0)
	v, err := evalIntExpr(s)
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

// evalIntExpr evaluates a small integer expression grammar used in #if
// lines: || && == != < <= > >= + - * / % ! unary- parentheses.
func evalIntExpr(s string) (int64, error) {
	p := &condParser{s: s}
	v, err := p.orExpr()
	if err != nil {
		return 0, err
	}
	p.skip()
	if p.i < len(p.s) {
		return 0, fmt.Errorf("trailing input %q in #if expression", p.s[p.i:])
	}
	return v, nil
}

type condParser struct {
	s string
	i int
}

func (p *condParser) skip() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *condParser) has(tok string) bool {
	p.skip()
	if strings.HasPrefix(p.s[p.i:], tok) {
		p.i += len(tok)
		return true
	}
	return false
}

func (p *condParser) orExpr() (int64, error) {
	v, err := p.andExpr()
	if err != nil {
		return 0, err
	}
	for p.has("||") {
		w, err := p.andExpr()
		if err != nil {
			return 0, err
		}
		if v != 0 || w != 0 {
			v = 1
		} else {
			v = 0
		}
	}
	return v, nil
}

func (p *condParser) andExpr() (int64, error) {
	v, err := p.cmpExpr()
	if err != nil {
		return 0, err
	}
	for p.has("&&") {
		w, err := p.cmpExpr()
		if err != nil {
			return 0, err
		}
		if v != 0 && w != 0 {
			v = 1
		} else {
			v = 0
		}
	}
	return v, nil
}

func (p *condParser) cmpExpr() (int64, error) {
	v, err := p.addExpr()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case p.has("=="):
			w, err := p.addExpr()
			if err != nil {
				return 0, err
			}
			v = b2i(v == w)
		case p.has("!="):
			w, err := p.addExpr()
			if err != nil {
				return 0, err
			}
			v = b2i(v != w)
		case p.has("<="):
			w, err := p.addExpr()
			if err != nil {
				return 0, err
			}
			v = b2i(v <= w)
		case p.has(">="):
			w, err := p.addExpr()
			if err != nil {
				return 0, err
			}
			v = b2i(v >= w)
		case p.has("<"):
			w, err := p.addExpr()
			if err != nil {
				return 0, err
			}
			v = b2i(v < w)
		case p.has(">"):
			w, err := p.addExpr()
			if err != nil {
				return 0, err
			}
			v = b2i(v > w)
		default:
			return v, nil
		}
	}
}

func (p *condParser) addExpr() (int64, error) {
	v, err := p.mulExpr()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case p.has("+"):
			w, err := p.mulExpr()
			if err != nil {
				return 0, err
			}
			v += w
		case p.has("-"):
			w, err := p.mulExpr()
			if err != nil {
				return 0, err
			}
			v -= w
		default:
			return v, nil
		}
	}
}

func (p *condParser) mulExpr() (int64, error) {
	v, err := p.unary()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case p.has("*"):
			w, err := p.unary()
			if err != nil {
				return 0, err
			}
			v *= w
		case p.has("/"):
			w, err := p.unary()
			if err != nil {
				return 0, err
			}
			if w == 0 {
				return 0, fmt.Errorf("division by zero in #if")
			}
			v /= w
		case p.has("%"):
			w, err := p.unary()
			if err != nil {
				return 0, err
			}
			if w == 0 {
				return 0, fmt.Errorf("modulo by zero in #if")
			}
			v %= w
		default:
			return v, nil
		}
	}
}

func (p *condParser) unary() (int64, error) {
	p.skip()
	if p.has("!") {
		v, err := p.unary()
		if err != nil {
			return 0, err
		}
		return b2i(v == 0), nil
	}
	if p.has("-") {
		v, err := p.unary()
		if err != nil {
			return 0, err
		}
		return -v, nil
	}
	if p.has("(") {
		v, err := p.orExpr()
		if err != nil {
			return 0, err
		}
		if !p.has(")") {
			return 0, fmt.Errorf("missing ) in #if expression")
		}
		return v, nil
	}
	p.skip()
	j := p.i
	for j < len(p.s) && (p.s[j] >= '0' && p.s[j] <= '9' || p.s[j] == 'x' || p.s[j] == 'X' ||
		p.s[j] >= 'a' && p.s[j] <= 'f' || p.s[j] >= 'A' && p.s[j] <= 'F') {
		j++
	}
	if j == p.i {
		// Undefined identifiers evaluate to 0, as in C preprocessing.
		if p.i < len(p.s) && isIdentStart(p.s[p.i]) {
			for p.i < len(p.s) && isIdentChar(p.s[p.i]) {
				p.i++
			}
			return 0, nil
		}
		return 0, fmt.Errorf("expected number in #if expression at %q", p.s[p.i:])
	}
	text := strings.TrimRight(p.s[p.i:j], "uUlL")
	p.i = j
	var v int64
	var err error
	if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
		v, err = strconv.ParseInt(text[2:], 16, 64)
	} else {
		v, err = strconv.ParseInt(text, 10, 64)
	}
	if err != nil {
		return 0, err
	}
	return v, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
