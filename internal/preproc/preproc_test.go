package preproc

import (
	"strings"
	"testing"
)

func TestStripAndReinsertSystemIncludes(t *testing.T) {
	src := "#include <stdio.h>\n#include <math.h>\nint x;\n#include \"local.h\"\n"
	stripped, removed := StripSystemIncludes(src)
	if len(removed) != 2 {
		t.Fatalf("removed: %v", removed)
	}
	if strings.Contains(stripped, "<stdio.h>") {
		t.Fatal("system include not stripped")
	}
	if !strings.Contains(stripped, `"local.h"`) {
		t.Fatal("local include must remain")
	}
	back := ReinsertSystemIncludes("int y;\n", removed)
	if !strings.HasPrefix(back, "#include <stdio.h>\n#include <math.h>\n") {
		t.Fatalf("reinsert:\n%s", back)
	}
}

func TestObjectMacro(t *testing.T) {
	out, err := Expand("#define N 4096\nint a[N];\nint b = N + N;\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "int a[4096];") || !strings.Contains(out, "4096 + 4096") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestMacroTokenBoundary(t *testing.T) {
	out, err := Expand("#define N 10\nint NN = N;\nint xN;\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "int NN = 10;") {
		t.Fatalf("NN must not expand: %s", out)
	}
	if !strings.Contains(out, "int xN;") {
		t.Fatalf("xN must not expand: %s", out)
	}
}

func TestFunctionMacro(t *testing.T) {
	out, err := Expand("#define SQR(x) ((x) * (x))\nint y = SQR(a + 1);\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(((a + 1)) * ((a + 1)))") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestFunctionMacroTwoParams(t *testing.T) {
	out, err := Expand("#define MIN(a, b) ((a) < (b) ? (a) : (b))\nint m = MIN(x, f(y, z));\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "((x)) < ((f(y, z)))") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestNestedMacros(t *testing.T) {
	out, err := Expand("#define A B\n#define B 7\nint v = A;\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "int v = 7;") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestUndef(t *testing.T) {
	out, err := Expand("#define N 5\n#undef N\nint v = N;\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "int v = N;") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestIfdef(t *testing.T) {
	out, err := Expand("#define FAST\n#ifdef FAST\nint a;\n#else\nint b;\n#endif\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "int a;") || strings.Contains(out, "int b;") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestIfndefAndElse(t *testing.T) {
	out, err := Expand("#ifndef MISSING\nint a;\n#else\nint b;\n#endif\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "int a;") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestIfArithmetic(t *testing.T) {
	out, err := Expand("#define N 8\n#if N * 2 > 10\nint big;\n#elif N > 100\nint huge;\n#else\nint small;\n#endif\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "int big;") || strings.Contains(out, "int small;") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestIfDefined(t *testing.T) {
	out, err := Expand("#define X\n#if defined(X) && !defined(Y)\nint ok;\n#endif\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "int ok;") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestNestedConditionals(t *testing.T) {
	src := `#define A
#ifdef A
#ifdef B
int ab;
#else
int a_only;
#endif
#endif
`
	out, err := Expand(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "int a_only;") || strings.Contains(out, "int ab;") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestLocalInclude(t *testing.T) {
	e := &Expander{Files: map[string]string{
		"defs.h": "#define SIZE 64\npure float dot(pure float* a, pure float* b, int n);\n",
	}}
	out, err := e.Expand("#include \"defs.h\"\nfloat v[SIZE];\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "float v[64];") || !strings.Contains(out, "pure float dot") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestMissingIncludeError(t *testing.T) {
	if _, err := Expand("#include \"nope.h\"\n"); err == nil {
		t.Fatal("expected error")
	}
}

func TestPragmaPreserved(t *testing.T) {
	out, err := Expand("#pragma scop\nint x;\n#pragma endscop\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#pragma scop") || !strings.Contains(out, "#pragma endscop") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestMacroNotExpandedInStrings(t *testing.T) {
	out, err := Expand("#define N 4\nchar* s = \"N is N\";\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"N is N"`) {
		t.Fatalf("macro expanded inside string:\n%s", out)
	}
}

func TestDefineInjection(t *testing.T) {
	e := &Expander{}
	e.Define("PROBLEM_N", "256")
	out, err := e.Expand("int a[PROBLEM_N];\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "int a[256];") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestContinuationLines(t *testing.T) {
	out, err := Expand("#define LONG 1 + \\\n2\nint v = LONG;\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "int v = 1 + 2;") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestUnterminatedIfError(t *testing.T) {
	if _, err := Expand("#ifdef A\nint x;\n"); err == nil {
		t.Fatal("expected unterminated #if error")
	}
}
