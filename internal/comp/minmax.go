package comp

import (
	"purec/internal/ast"
	"purec/internal/sema"
	"purec/internal/token"
	"purec/internal/types"
)

// minMaxKernel fuses the canonical min/max reduction loop shape
//
//	for (int k = LB; k < UB; ++k) if (X[s+k] < m) m = X[s+k];
//
// (and its `m = X[k] < m ? X[k] : m` form, in either comparison
// direction — see ast.MinMaxUpdate) into a segment-walking kernel: one
// hoisted range check over the chunk, then a tight strict-compare fold
// over the raw cells. The fold preserves the dispatch path bit for bit:
// only strict comparisons update, so NaN data never replaces the
// accumulator, and a float32 accumulator rounds every stored update
// exactly like the assignment it replaces. The kernel comes back in
// chunk form (see reduceKernel), so sequential loops run it once while
// parallel min/max reductions hand each worker its chunk bounds.
//
// name and dir identify the matched accumulator and direction so
// parallelReduceFor can check the kernel against the pragma clause.
func (fc *funcCompiler) minMaxKernel(x *ast.ForStmt) (cl canonicalLoop, name string, dir token.Kind, kern kernRun) {
	cl, ok := fc.canonical(x)
	if !ok || !fc.hoistableBounds(cl) {
		return cl, "", 0, nil
	}
	stmt := singleStmt(cl.body)
	if stmt == nil {
		return cl, "", 0, nil
	}
	m, data, dir, ok := ast.MinMaxUpdate(stmt)
	if !ok {
		return cl, "", 0, nil
	}
	sym := fc.prog.info.Ref[m]
	if sym == nil || sym.Kind == sema.SymGlobal || sym == cl.iterSym {
		return cl, "", 0, nil
	}
	sl, global := fc.slotOf(sym, m)
	if global || sl.kind == slotPtr {
		return cl, "", 0, nil
	}
	// A bound reading the accumulator the body mutates is not invariant
	// (the dispatch loop re-evaluates it per iteration).
	if fc.usesSym(cl.lowerX, sym) || fc.usesSym(cl.upperX, sym) {
		return cl, "", 0, nil
	}
	ld, ok := fc.matchLoad(data, cl.iterSym)
	if !ok || ld.gather {
		return cl, "", 0, nil
	}
	idx := sl.idx
	min := dir == token.LSS
	switch sl.kind {
	case slotInt:
		if ld.isFloat {
			return cl, "", 0, nil
		}
		kern = func(e *env, lo, hi int64) {
			if hi < lo {
				return
			}
			xs := ld.prepI(e, lo, hi)
			accv := e.I[idx]
			if min {
				for _, v := range xs {
					if v < accv {
						accv = v
					}
				}
			} else {
				for _, v := range xs {
					if v > accv {
						accv = v
					}
				}
			}
			e.I[idx] = accv
		}
		return cl, m.Name, dir, kern
	case slotFloat:
		if !ld.isFloat {
			return cl, "", 0, nil
		}
		// A float32 accumulator rounds each stored update; the compare
		// still sees the unrounded candidate, exactly like the dispatch
		// path's condition-then-assign.
		f32 := sym.Type != nil && sym.Type.Kind == types.Float && sym.Type.CSize == 4
		kern = func(e *env, lo, hi int64) {
			if hi < lo {
				return
			}
			xs := ld.prepF(e, lo, hi)
			accv := e.F[idx]
			for _, v := range xs {
				if (min && v < accv) || (!min && v > accv) {
					if f32 {
						accv = float64(float32(v))
					} else {
						accv = v
					}
				}
			}
			e.F[idx] = accv
		}
		return cl, m.Name, dir, kern
	}
	return cl, "", 0, nil
}
