package comp

// Kernel fusion: canonical innermost loops whose body is one
// element-wise affine array statement — copy, fill, scale, axpy-style
// triads, stencil reads, compound assigns, general int/float maps —
// compile into a single Go kernel that walks the raw memory segments
// instead of dispatching one closure per iteration per operand.
//
// The fused-kernel contract (see README "Kernel fusion"):
//
//  1. one hoisted range check per operand per kernel launch — the
//     mem.Segment Float/IntRange API validates [lo,hi) once and hands
//     back the raw cell slice, replacing the per-access bounds checks
//     of the closure backend;
//  2. iterations execute in ascending order reading and writing
//     through the same cells as the closure backend, so aliasing
//     between operands (in-place stencils, overlapping copies)
//     behaves identically;
//  3. float arithmetic is float64 with one float32 rounding at the
//     store exactly when the stored C type is 4 bytes — bit-identical
//     to the closure backend and the interp oracle.
//
// Recognition is table-driven: the loop body compiles to a small
// postfix tape over operand loads, hoisted invariants and the
// iterator; a shape table then replaces the common tapes (fill, copy,
// scale, triad) by specialized loops and everything else runs on the
// generic tape walker, still with raw-slice operands.

import (
	"purec/internal/ast"
	"purec/internal/sema"
	"purec/internal/token"
	"purec/internal/types"
)

// kernRun executes iterations [lo, hi] (inclusive) of a fused loop.
// Parallel regions call it once per chunk; sequential loops once.
type kernRun func(e *env, lo, hi int64)

// kAccess is one array operand of a fused kernel: an
// iterator-invariant base pointer and offset (evaluated once per
// launch) plus a constant iterator stride (walked per iteration).
type kAccess struct {
	base   ptrFn
	off    intFn // loop-invariant offset, nil means 0
	stride int64 // constant iterator coefficient, 0 = invariant access
	float  bool
	f32    bool // stored C type is 4 bytes (float32 rounding at stores)
	// trusted marks an operand whose per-launch range check the
	// value-range analysis discharged at compile time: every subscript
	// the loop can form is proven inside the array extent, and the
	// analysis' escape reasoning guarantees the underlying segment
	// cannot have been freed (a pointer that ever reaches free() is
	// escaped and unprovable). prep then skips the range check; the
	// null-pointer check stays, and the Go slice expression remains the
	// memory-safety backstop.
	trusted bool
}

// tape opcodes. The tape is the postfix form of the loop body's
// right-hand side; float and int tapes share the arithmetic opcodes.
const (
	opLoad  uint8 = iota // push loads[arg] at the current iteration
	opInv                // push invariant arg (invF/invI)
	opIter               // push the iterator value (int tape)
	opIterF              // push float64(iterator) (float tape)
	opAdd
	opSub
	opMul
	opQuo
	opRem // int only
	opAnd // int only
	opOr  // int only
	opXor // int only
	opShl // int only
	opShr // int only
	opNeg
	opNot // int only (~)
)

type kOp struct {
	code uint8
	arg  int
}

// fusedKernel is a fully recognized fusible loop body before emission.
type fusedKernel struct {
	store kAccess
	loads []kAccess
	invF  []fltFn
	invI  []intFn
	tape  []kOp
	float bool // element kind of the store (and of every load)
	depth int  // maximum tape stack depth
}

// maxTapeDepth bounds the fixed evaluation stack of the tape walker.
const maxTapeDepth = 16

// ----------------------------------------------------------------------------
// Recognition

// tryFuseLoop recognizes a canonical innermost loop with an
// element-wise affine body and returns its chunk kernel; nil when the
// loop does not fuse (the caller falls back to closure dispatch).
func (fc *funcCompiler) tryFuseLoop(x *ast.ForStmt) (canonicalLoop, kernRun) {
	cl, ok := fc.canonical(x)
	if !ok || !fc.hoistableBounds(cl) {
		return cl, nil
	}
	stmt := singleStmt(cl.body)
	if stmt == nil {
		return cl, nil
	}
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return cl, nil
	}
	as, ok := es.X.(*ast.AssignExpr)
	if !ok {
		return cl, nil
	}
	store, ok := fc.matchKAccess(as.LHS, cl.iterSym)
	if !ok || store.stride < 1 {
		// Invariant stores are loop-carried reductions, handled by the
		// reduction kernels of vector.go.
		return cl, nil
	}
	k := &fusedKernel{store: store, float: store.float}
	if bin, compound := as.Op.AssignBinOp(); compound {
		// Y[i] op= rhs  ≡  Y[i] = Y[i] op rhs, with the load walking
		// the same cells as the store.
		load := store
		k.loads = append(k.loads, load)
		k.push(kOp{code: opLoad, arg: 0})
		if !fc.buildTape(k, as.RHS, cl.iterSym) {
			return cl, nil
		}
		op, ok := tapeOp(bin, k.float)
		if !ok {
			return cl, nil
		}
		k.push(kOp{code: op})
	} else {
		if !fc.buildTape(k, as.RHS, cl.iterSym) {
			return cl, nil
		}
	}
	if k.depth > maxTapeDepth {
		return cl, nil
	}
	return cl, fc.emitFused(k)
}

// seqKernelStmt wraps a chunk kernel for plain sequential execution:
// evaluate the bounds once, run the whole range, and leave the
// dispatch loop's post-loop iterator value (the first failing
// iteration) in the slot.
func seqKernelStmt(cl canonicalLoop, kern kernRun) stmtFn {
	iterSlot := cl.iterSlot
	lower, upper := cl.lower, cl.upper
	return func(e *env) ctrl {
		lo, hi := lower(e), upper(e)
		kern(e, lo, hi)
		if hi < lo {
			e.I[iterSlot] = lo
		} else {
			e.I[iterSlot] = hi + 1
		}
		return ctrlNext
	}
}

// countElided bumps the program's elided-check counter for every
// trusted operand: each one is a runtime range-check site the
// value-range analysis discharged at compile time.
func (fc *funcCompiler) countElided(accs ...kAccess) {
	for _, a := range accs {
		if a.trusted {
			fc.prog.elidedChecks++
		}
	}
}

// hoistableBounds reports whether the loop bounds can be evaluated
// once per launch: a sequential dispatch loop re-evaluates the upper
// bound every iteration, so fusion requires it to be invariant and
// effect-free (the lower bound runs once in both schemes but must not
// trap differently, so it gets the same test).
func (fc *funcCompiler) hoistableBounds(cl canonicalLoop) bool {
	return fc.hoistable(cl.lowerX, cl.iterSym) && fc.hoistable(cl.upperX, cl.iterSym)
}

// push appends a tape op, tracking the stack depth.
func (k *fusedKernel) push(op kOp) {
	k.tape = append(k.tape, op)
	d := 0
	for _, o := range k.tape {
		switch o.code {
		case opLoad, opInv, opIter, opIterF:
			d++
			if d > k.depth {
				k.depth = d
			}
		case opNeg, opNot:
			// unary: depth unchanged
		default:
			d--
		}
	}
}

// tapeOp maps a binary operator token to its tape opcode for the
// element kind.
func tapeOp(op token.Kind, float bool) (uint8, bool) {
	switch op {
	case token.ADD:
		return opAdd, true
	case token.SUB:
		return opSub, true
	case token.MUL:
		return opMul, true
	case token.QUO:
		return opQuo, true
	}
	if float {
		return 0, false
	}
	switch op {
	case token.REM:
		return opRem, true
	case token.AND:
		return opAnd, true
	case token.OR:
		return opOr, true
	case token.XOR:
		return opXor, true
	case token.SHL:
		return opShl, true
	case token.SHR:
		return opShr, true
	}
	return 0, false
}

// buildTape compiles e into postfix tape ops of the kernel's element
// kind. Whole loop-invariant subexpressions hoist into one evaluation
// per launch; affine array accesses become raw-slice loads; the
// iterator itself is a leaf. Anything else (calls, gathers, casts,
// mixed-kind subtrees that vary with the iterator) rejects the loop.
func (fc *funcCompiler) buildTape(k *fusedKernel, e ast.Expr, iter *sema.Symbol) bool {
	e = stripParens(e)
	if fc.hoistable(e, iter) {
		// Invariant leaf: any effect-free scalar expression, evaluated
		// once per launch. fc.num converts invariant int subtrees in
		// float context exactly like the closure backend does.
		t := fc.prog.info.ExprType[e]
		if t == nil || (t.Kind != types.Int && t.Kind != types.Float) {
			return false
		}
		if k.float {
			k.push(kOp{code: opInv, arg: len(k.invF)})
			k.invF = append(k.invF, fc.num(e))
		} else {
			if t.Kind != types.Int {
				return false
			}
			k.push(kOp{code: opInv, arg: len(k.invI)})
			k.invI = append(k.invI, fc.integer(e))
		}
		return true
	}
	switch x := e.(type) {
	case *ast.Ident:
		if fc.prog.info.Ref[x] != iter {
			return false
		}
		if k.float {
			k.push(kOp{code: opIterF})
		} else {
			k.push(kOp{code: opIter})
		}
		return true
	case *ast.IndexExpr:
		acc, ok := fc.matchKAccess(x, iter)
		if !ok || acc.float != k.float {
			return false
		}
		k.push(kOp{code: opLoad, arg: len(k.loads)})
		k.loads = append(k.loads, acc)
		return true
	case *ast.BinaryExpr:
		op, ok := tapeOp(x.Op, k.float)
		if !ok {
			return false
		}
		// The node's own C type must match the tape kind: an int-typed
		// subtree that varies with the iterator (e.g. i/2 stored to a
		// float array) computes in integer arithmetic in the closure
		// backend — evaluating it with float ops would diverge.
		t := fc.prog.info.ExprType[e]
		if t == nil || (k.float && t.Kind != types.Float) || (!k.float && t.Kind != types.Int) {
			return false
		}
		if k.float {
			// Both operand subtrees must be float-typed or reduce to
			// invariant/iterator leaves the float tape can represent.
			if !fc.floatTapeOperand(x.X, iter) || !fc.floatTapeOperand(x.Y, iter) {
				return false
			}
		}
		if !fc.buildTape(k, x.X, iter) || !fc.buildTape(k, x.Y, iter) {
			return false
		}
		k.push(kOp{code: op})
		return true
	case *ast.UnaryExpr:
		switch x.Op {
		case token.SUB:
			if !fc.buildTape(k, x.X, iter) {
				return false
			}
			k.push(kOp{code: opNeg})
			return true
		case token.TILDE:
			if k.float || !fc.buildTape(k, x.X, iter) {
				return false
			}
			k.push(kOp{code: opNot})
			return true
		}
	}
	return false
}

// floatTapeOperand reports whether e can be a float-tape subtree: a
// float-typed expression, or an int-typed leaf the tape converts (the
// iterator, or an invariant expression routed through fc.num).
func (fc *funcCompiler) floatTapeOperand(e ast.Expr, iter *sema.Symbol) bool {
	e = stripParens(e)
	t := fc.prog.info.ExprType[e]
	if t == nil {
		return false
	}
	if t.Kind == types.Float {
		return true
	}
	if t.Kind != types.Int {
		return false
	}
	if id, ok := e.(*ast.Ident); ok && fc.prog.info.Ref[id] == iter {
		return true
	}
	return fc.hoistable(e, iter)
}

// hoistable reports whether e is loop-invariant, effect-free and free
// of memory reads, so evaluating it once per kernel launch cannot be
// observed even when the fused store aliases other arrays. Scalar
// variables qualify (the single array-store body cannot modify frame
// or global scalar slots); array loads do not (the store may alias
// them).
func (fc *funcCompiler) hoistable(e ast.Expr, iter *sema.Symbol) bool {
	ok := true
	ast.Walk(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			sym := fc.prog.info.Ref[x]
			if sym == nil || sym == iter || sym.IsArray() ||
				sym.Type == nil || sym.Type.Kind == types.Ptr || sym.Type.Kind == types.Struct {
				ok = false
			}
		case *ast.IntLit, *ast.FloatLit, *ast.CharLit, *ast.ParenExpr, *ast.SizeofExpr:
		case *ast.BinaryExpr:
			switch x.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
				token.AND, token.OR, token.XOR, token.SHL, token.SHR:
			default:
				ok = false
			}
		case *ast.UnaryExpr:
			if x.Op != token.SUB && x.Op != token.TILDE {
				ok = false
			}
		default:
			ok = false
		}
		return ok
	})
	return ok
}

// effectFree reports whether evaluating e cannot write any state —
// required of operand base expressions, which hoist to one evaluation
// per launch.
func (fc *funcCompiler) effectFree(e ast.Expr) bool {
	ok := true
	ast.Walk(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignExpr, *ast.PostfixExpr, *ast.CallExpr:
			ok = false
		case *ast.UnaryExpr:
			if x.Op == token.INC || x.Op == token.DEC {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// matchKAccess matches an affine scalar array access against the loop
// iterator: a declared array fully indexed with affine subscripts, or
// a pointer expression indexed by one affine subscript. The result
// decomposes the flat cell index as stride*iter + offset with a
// constant stride ≥ 0 and a hoisted invariant offset.
func (fc *funcCompiler) matchKAccess(e ast.Expr, iter *sema.Symbol) (kAccess, bool) {
	x, ok := stripParens(e).(*ast.IndexExpr)
	if !ok {
		return kAccess{}, false
	}
	t := fc.prog.info.ExprType[e]
	if t == nil || (t.Kind != types.Int && t.Kind != types.Float) {
		return kAccess{}, false
	}
	// Declared (possibly multi-dimensional) array, fully subscripted:
	// row-major flattening with per-dimension strides.
	subs, base := collectSubs(x)
	if id, okID := base.(*ast.Ident); okID {
		if sym := fc.prog.info.Ref[id]; sym != nil && sym.IsArray() {
			if len(subs) != len(sym.Dims) {
				return kAccess{}, false
			}
			acc := kAccess{
				base:    fc.ptr(id),
				float:   t.Kind == types.Float,
				f32:     t.Kind == types.Float && t.CSize == 4,
				trusted: fc.prog.proven(e),
			}
			dimStride := int64(1)
			var offs []intFn
			for d := len(subs) - 1; d >= 0; d-- {
				coef, inv, okA := fc.affineInIter(subs[d], iter)
				if !okA {
					return kAccess{}, false
				}
				acc.stride += coef * dimStride
				if inv != nil {
					offs = append(offs, scaleIntFn(inv, dimStride))
				}
				dimStride *= int64(sym.Dims[d])
			}
			acc.off = sumIntFns(offs)
			if acc.stride < 0 {
				return kAccess{}, false
			}
			return acc, true
		}
	}
	// General chain: pointer base, single affine subscript over scalar
	// elements. The base must be invariant and effect-free — it hoists
	// to one evaluation (fused stores write int/float cells, so they
	// can never modify the pointer cells the base may load from).
	bt := fc.prog.info.ExprType[x.X]
	if bt == nil || !bt.IsPtr() || bt.Elem == nil || elemStride(bt.Elem) != 1 {
		return kAccess{}, false
	}
	if bt.Elem.Kind != types.Int && bt.Elem.Kind != types.Float {
		return kAccess{}, false
	}
	if fc.usesSym(x.X, iter) || !fc.effectFree(x.X) {
		return kAccess{}, false
	}
	coef, inv, okA := fc.affineInIter(x.Index, iter)
	if !okA || coef < 0 {
		return kAccess{}, false
	}
	return kAccess{
		base:    fc.ptr(x.X),
		off:     inv,
		stride:  coef,
		float:   bt.Elem.Kind == types.Float,
		f32:     bt.Elem.Kind == types.Float && bt.Elem.CSize == 4,
		trusted: fc.prog.proven(e),
	}, true
}

// affineInIter decomposes an integer expression as coef*iter + inv
// with a compile-time constant coef and a hoistable invariant inv
// (nil = 0). It accepts sums, differences and constant multiples of
// the iterator — i, i+c, c+i, i-c, 2*i, i*3, 2*i+c, N-1-i (negative
// coefficients are decomposed correctly and rejected by the callers).
func (fc *funcCompiler) affineInIter(e ast.Expr, iter *sema.Symbol) (int64, intFn, bool) {
	e = stripParens(e)
	if id, ok := e.(*ast.Ident); ok && fc.prog.info.Ref[id] == iter {
		return 1, nil, true
	}
	if fc.hoistable(e, iter) {
		t := fc.prog.info.ExprType[e]
		if t == nil || t.Kind != types.Int {
			return 0, nil, false
		}
		return 0, fc.integer(e), true
	}
	switch x := e.(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD:
			ca, ia, oka := fc.affineInIter(x.X, iter)
			cb, ib, okb := fc.affineInIter(x.Y, iter)
			if !oka || !okb {
				return 0, nil, false
			}
			return ca + cb, addIntFns(ia, ib), true
		case token.SUB:
			ca, ia, oka := fc.affineInIter(x.X, iter)
			cb, ib, okb := fc.affineInIter(x.Y, iter)
			if !oka || !okb {
				return 0, nil, false
			}
			return ca - cb, subIntFns(ia, ib), true
		case token.MUL:
			if c, ok := sema.ConstInt(x.X); ok {
				cb, ib, okb := fc.affineInIter(x.Y, iter)
				if !okb {
					return 0, nil, false
				}
				return c * cb, scaleIntFn(ib, c), true
			}
			if c, ok := sema.ConstInt(x.Y); ok {
				ca, ia, oka := fc.affineInIter(x.X, iter)
				if !oka {
					return 0, nil, false
				}
				return c * ca, scaleIntFn(ia, c), true
			}
		}
	case *ast.UnaryExpr:
		if x.Op == token.SUB {
			c, i, ok := fc.affineInIter(x.X, iter)
			if !ok {
				return 0, nil, false
			}
			return -c, scaleIntFn(i, -1), true
		}
	}
	return 0, nil, false
}

// Invariant-offset closure algebra (nil means the constant 0).

func sumIntFns(fns []intFn) intFn {
	var out intFn
	for _, f := range fns {
		out = addIntFns(out, f)
	}
	return out
}

func addIntFns(a, b intFn) intFn {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return func(e *env) int64 { return a(e) + b(e) }
}

func subIntFns(a, b intFn) intFn {
	if b == nil {
		return a
	}
	if a == nil {
		return func(e *env) int64 { return -b(e) }
	}
	return func(e *env) int64 { return a(e) - b(e) }
}

func scaleIntFn(a intFn, c int64) intFn {
	if a == nil || c == 0 {
		return nil
	}
	if c == 1 {
		return a
	}
	return func(e *env) int64 { return a(e) * c }
}

// ----------------------------------------------------------------------------
// Emission

// kslice is one prepared operand: the checked raw cells plus the
// per-iteration stride within them.
type kslice struct {
	f      []float64
	i      []int64
	stride int
}

// prep performs the hoisted per-launch work of one operand: evaluate
// base and offset once, run the single range check, hand back the raw
// cells. Violations trap as runtime errors exactly like the
// per-access checks of the closure backend.
func (a *kAccess) prep(e *env, lo, hi int64) kslice {
	p := a.base(e)
	if p.IsNull() {
		rtPanic("null pointer operand in fused loop")
	}
	off := int64(p.Off)
	if a.off != nil {
		off += a.off(e)
	}
	first := off + a.stride*lo
	last := off + a.stride*hi
	var s kslice
	s.stride = int(a.stride)
	if a.trusted {
		// The range check was discharged at compile time (see the
		// kAccess.trusted contract); only the slice handoff remains.
		if a.float {
			s.f = p.Seg.TrustedFloatRange(first, last+1)
		} else {
			s.i = p.Seg.TrustedIntRange(first, last+1)
		}
		return s
	}
	if a.float {
		xs, err := p.Seg.FloatRange(first, last+1)
		if err != nil {
			rtPanic("%v", err)
		}
		s.f = xs
	} else {
		xs, err := p.Seg.IntRange(first, last+1)
		if err != nil {
			rtPanic("%v", err)
		}
		s.i = xs
	}
	return s
}

// kframe is the per-launch state of a fused kernel after hoisting.
type kframe struct {
	n     int
	dst   kslice
	f32   bool
	loads []kslice
	invF  []float64
	invI  []int64
	lo    int64
}

// prep hoists everything loop-invariant: operand ranges (one check
// each), invariant scalars, the store rounding mode.
func (k *fusedKernel) prepFrame(e *env, lo, hi int64) kframe {
	fr := kframe{n: int(hi - lo + 1), lo: lo, f32: k.store.f32}
	fr.dst = k.store.prep(e, lo, hi)
	fr.loads = make([]kslice, len(k.loads))
	for i := range k.loads {
		fr.loads[i] = k.loads[i].prep(e, lo, hi)
	}
	if len(k.invF) > 0 {
		fr.invF = make([]float64, len(k.invF))
		for i, f := range k.invF {
			fr.invF[i] = f(e)
		}
	}
	if len(k.invI) > 0 {
		fr.invI = make([]int64, len(k.invI))
		for i, f := range k.invI {
			fr.invI[i] = f(e)
		}
	}
	return fr
}

// emitFused selects the kernel body: a specialized loop for the common
// shapes, the generic tape walker otherwise.
func (fc *funcCompiler) emitFused(k *fusedKernel) kernRun {
	fc.countElided(k.store)
	fc.countElided(k.loads...)
	for _, sh := range kernelShapes {
		if r := sh.emit(k); r != nil {
			return r
		}
	}
	if k.float {
		return k.genericFloat()
	}
	return k.genericInt()
}

// kernelShape is one entry of the table-driven emitter: match the
// kernel's tape, return a specialized loop (nil = no match).
type kernelShape struct {
	name string
	emit func(k *fusedKernel) kernRun
}

// kernelShapes is ordered most-specific first; the generic tape walker
// is the fallback and not listed.
var kernelShapes = []kernelShape{
	{"fill", emitFill},
	{"copy", emitCopy},
	{"scale", emitScale},
	{"triad", emitTriad},
	{"stencil3", emitStencil3},
}

// tapeIs matches the kernel tape against an opcode signature.
func (k *fusedKernel) tapeIs(codes ...uint8) bool {
	if len(k.tape) != len(codes) {
		return false
	}
	for i, c := range codes {
		if k.tape[i].code != c {
			return false
		}
	}
	return true
}

// emitFill handles Y[i] = inv.
func emitFill(k *fusedKernel) kernRun {
	if !k.tapeIs(opInv) {
		return nil
	}
	if k.float {
		return func(e *env, lo, hi int64) {
			if hi < lo {
				return
			}
			fr := k.prepFrame(e, lo, hi)
			v := fr.invF[0]
			if fr.f32 {
				v = float64(float32(v))
			}
			dst, ds := fr.dst.f, fr.dst.stride
			for t, c := 0, 0; t < fr.n; t, c = t+1, c+ds {
				dst[c] = v
			}
		}
	}
	return func(e *env, lo, hi int64) {
		if hi < lo {
			return
		}
		fr := k.prepFrame(e, lo, hi)
		v := fr.invI[0]
		dst, ds := fr.dst.i, fr.dst.stride
		for t, c := 0, 0; t < fr.n; t, c = t+1, c+ds {
			dst[c] = v
		}
	}
}

// emitCopy handles Y[i] = X[i] (same element kind; the explicit
// ascending loop keeps overlapping in-segment copies bit-identical to
// the closure backend, unlike a memmove).
func emitCopy(k *fusedKernel) kernRun {
	if !k.tapeIs(opLoad) {
		return nil
	}
	if k.float {
		return func(e *env, lo, hi int64) {
			if hi < lo {
				return
			}
			fr := k.prepFrame(e, lo, hi)
			dst, ds := fr.dst.f, fr.dst.stride
			src, ss := fr.loads[0].f, fr.loads[0].stride
			if fr.f32 {
				for t, c, s := 0, 0, 0; t < fr.n; t, c, s = t+1, c+ds, s+ss {
					dst[c] = float64(float32(src[s]))
				}
				return
			}
			for t, c, s := 0, 0, 0; t < fr.n; t, c, s = t+1, c+ds, s+ss {
				dst[c] = src[s]
			}
		}
	}
	return func(e *env, lo, hi int64) {
		if hi < lo {
			return
		}
		fr := k.prepFrame(e, lo, hi)
		dst, ds := fr.dst.i, fr.dst.stride
		src, ss := fr.loads[0].i, fr.loads[0].stride
		for t, c, s := 0, 0, 0; t < fr.n; t, c, s = t+1, c+ds, s+ss {
			dst[c] = src[s]
		}
	}
}

// emitScale handles Y[i] = a * X[i] (either operand order).
func emitScale(k *fusedKernel) kernRun {
	if !k.tapeIs(opInv, opLoad, opMul) && !k.tapeIs(opLoad, opInv, opMul) {
		return nil
	}
	if k.float {
		return func(e *env, lo, hi int64) {
			if hi < lo {
				return
			}
			fr := k.prepFrame(e, lo, hi)
			a := fr.invF[0]
			dst, ds := fr.dst.f, fr.dst.stride
			src, ss := fr.loads[0].f, fr.loads[0].stride
			if fr.f32 {
				for t, c, s := 0, 0, 0; t < fr.n; t, c, s = t+1, c+ds, s+ss {
					dst[c] = float64(float32(a * src[s]))
				}
				return
			}
			for t, c, s := 0, 0, 0; t < fr.n; t, c, s = t+1, c+ds, s+ss {
				dst[c] = a * src[s]
			}
		}
	}
	return func(e *env, lo, hi int64) {
		if hi < lo {
			return
		}
		fr := k.prepFrame(e, lo, hi)
		a := fr.invI[0]
		dst, ds := fr.dst.i, fr.dst.stride
		src, ss := fr.loads[0].i, fr.loads[0].stride
		for t, c, s := 0, 0, 0; t < fr.n; t, c, s = t+1, c+ds, s+ss {
			dst[c] = a * src[s]
		}
	}
}

// emitTriad handles the axpy family Y[i] = a*X[i] + Z[i] in its
// add-commuted operand orders (float addition and multiplication are
// exactly commutative, so one loop serves all of them). Compound
// Y[i] += a*X[i] desugars to the Z=Y instance.
func emitTriad(k *fusedKernel) kernRun {
	var x, z int // load indices of the scaled and added operands
	switch {
	case k.tapeIs(opInv, opLoad, opMul, opLoad, opAdd):
		x, z = 0, 1
	case k.tapeIs(opLoad, opInv, opMul, opLoad, opAdd):
		x, z = 0, 1
	case k.tapeIs(opLoad, opInv, opLoad, opMul, opAdd):
		z, x = 0, 1
	case k.tapeIs(opLoad, opLoad, opInv, opMul, opAdd):
		z, x = 0, 1
	default:
		return nil
	}
	if k.float {
		return func(e *env, lo, hi int64) {
			if hi < lo {
				return
			}
			fr := k.prepFrame(e, lo, hi)
			a := fr.invF[0]
			dst, ds := fr.dst.f, fr.dst.stride
			xs, xss := fr.loads[x].f, fr.loads[x].stride
			zs, zss := fr.loads[z].f, fr.loads[z].stride
			if fr.f32 {
				for t, c, xi, zi := 0, 0, 0, 0; t < fr.n; t, c, xi, zi = t+1, c+ds, xi+xss, zi+zss {
					dst[c] = float64(float32(a*xs[xi] + zs[zi]))
				}
				return
			}
			for t, c, xi, zi := 0, 0, 0, 0; t < fr.n; t, c, xi, zi = t+1, c+ds, xi+xss, zi+zss {
				dst[c] = a*xs[xi] + zs[zi]
			}
		}
	}
	return func(e *env, lo, hi int64) {
		if hi < lo {
			return
		}
		fr := k.prepFrame(e, lo, hi)
		a := fr.invI[0]
		dst, ds := fr.dst.i, fr.dst.stride
		xs, xss := fr.loads[x].i, fr.loads[x].stride
		zs, zss := fr.loads[z].i, fr.loads[z].stride
		for t, c, xi, zi := 0, 0, 0, 0; t < fr.n; t, c, xi, zi = t+1, c+ds, xi+xss, zi+zss {
			dst[c] = a*xs[xi] + zs[zi]
		}
	}
}

// emitStencil3 handles the 3-point stencil family
// Y[i] = c * (A[i-1] + B[i] + C[i+1]): three loads summed
// left-associatively, optionally scaled by an invariant on either
// side. The edge handling hoists into the per-operand range checks
// (each shifted slice is validated once per launch), leaving a
// check-free interior walk with no tape interpretation. The scale
// multiplies in the matched operand order so NaN payload propagation
// stays bit-identical to the dispatch path.
func emitStencil3(k *fusedKernel) kernRun {
	scaled, invFirst := true, true
	switch {
	case k.tapeIs(opInv, opLoad, opLoad, opAdd, opLoad, opAdd, opMul):
	case k.tapeIs(opLoad, opLoad, opAdd, opLoad, opAdd, opInv, opMul):
		invFirst = false
	case k.tapeIs(opLoad, opLoad, opAdd, opLoad, opAdd):
		scaled = false
	default:
		return nil
	}
	if len(k.loads) != 3 {
		return nil
	}
	if k.float {
		return func(e *env, lo, hi int64) {
			if hi < lo {
				return
			}
			fr := k.prepFrame(e, lo, hi)
			a := 1.0
			if scaled {
				a = fr.invF[0]
			}
			dst, ds := fr.dst.f, fr.dst.stride
			xs, xss := fr.loads[0].f, fr.loads[0].stride
			ys, yss := fr.loads[1].f, fr.loads[1].stride
			zs, zss := fr.loads[2].f, fr.loads[2].stride
			for t, c, xi, yi, zi := 0, 0, 0, 0, 0; t < fr.n; t, c, xi, yi, zi = t+1, c+ds, xi+xss, yi+yss, zi+zss {
				v := xs[xi] + ys[yi] + zs[zi]
				switch {
				case scaled && invFirst:
					v = a * v
				case scaled:
					v = v * a
				}
				if fr.f32 {
					v = float64(float32(v))
				}
				dst[c] = v
			}
		}
	}
	return func(e *env, lo, hi int64) {
		if hi < lo {
			return
		}
		fr := k.prepFrame(e, lo, hi)
		a := int64(1)
		if scaled {
			a = fr.invI[0]
		}
		dst, ds := fr.dst.i, fr.dst.stride
		xs, xss := fr.loads[0].i, fr.loads[0].stride
		ys, yss := fr.loads[1].i, fr.loads[1].stride
		zs, zss := fr.loads[2].i, fr.loads[2].stride
		for t, c, xi, yi, zi := 0, 0, 0, 0, 0; t < fr.n; t, c, xi, yi, zi = t+1, c+ds, xi+xss, yi+yss, zi+zss {
			v := xs[xi] + ys[yi] + zs[zi]
			if scaled {
				v = a * v
			}
			dst[c] = v
		}
	}
}

// genericFloat is the tape walker for float kernels: a tight postfix
// evaluation over raw slices, no closure dispatch.
func (k *fusedKernel) genericFloat() kernRun {
	tape := k.tape
	return func(e *env, lo, hi int64) {
		if hi < lo {
			return
		}
		fr := k.prepFrame(e, lo, hi)
		cur := make([]int, len(fr.loads))
		var st [maxTapeDepth]float64
		dst, ds := fr.dst.f, fr.dst.stride
		di := 0
		for t := 0; t < fr.n; t++ {
			sp := 0
			for _, op := range tape {
				switch op.code {
				case opLoad:
					st[sp] = fr.loads[op.arg].f[cur[op.arg]]
					sp++
				case opInv:
					st[sp] = fr.invF[op.arg]
					sp++
				case opIterF:
					st[sp] = float64(fr.lo + int64(t))
					sp++
				case opAdd:
					sp--
					st[sp-1] += st[sp]
				case opSub:
					sp--
					st[sp-1] -= st[sp]
				case opMul:
					sp--
					st[sp-1] *= st[sp]
				case opQuo:
					sp--
					st[sp-1] /= st[sp]
				case opNeg:
					st[sp-1] = -st[sp-1]
				}
			}
			v := st[0]
			if fr.f32 {
				v = float64(float32(v))
			}
			dst[di] = v
			di += ds
			for j := range cur {
				cur[j] += fr.loads[j].stride
			}
		}
	}
}

// genericInt is the tape walker for integer kernels. Division and
// modulo trap on zero divisors with the closure backend's messages.
func (k *fusedKernel) genericInt() kernRun {
	tape := k.tape
	return func(e *env, lo, hi int64) {
		if hi < lo {
			return
		}
		fr := k.prepFrame(e, lo, hi)
		cur := make([]int, len(fr.loads))
		var st [maxTapeDepth]int64
		dst, ds := fr.dst.i, fr.dst.stride
		di := 0
		for t := 0; t < fr.n; t++ {
			sp := 0
			for _, op := range tape {
				switch op.code {
				case opLoad:
					st[sp] = fr.loads[op.arg].i[cur[op.arg]]
					sp++
				case opInv:
					st[sp] = fr.invI[op.arg]
					sp++
				case opIter:
					st[sp] = fr.lo + int64(t)
					sp++
				case opAdd:
					sp--
					st[sp-1] += st[sp]
				case opSub:
					sp--
					st[sp-1] -= st[sp]
				case opMul:
					sp--
					st[sp-1] *= st[sp]
				case opQuo:
					sp--
					if st[sp] == 0 {
						rtPanic("integer division by zero")
					}
					st[sp-1] /= st[sp]
				case opRem:
					sp--
					if st[sp] == 0 {
						rtPanic("integer modulo by zero")
					}
					st[sp-1] %= st[sp]
				case opAnd:
					sp--
					st[sp-1] &= st[sp]
				case opOr:
					sp--
					st[sp-1] |= st[sp]
				case opXor:
					sp--
					st[sp-1] ^= st[sp]
				case opShl:
					sp--
					st[sp-1] <<= uint(st[sp])
				case opShr:
					sp--
					st[sp-1] >>= uint(st[sp])
				case opNeg:
					st[sp-1] = -st[sp-1]
				case opNot:
					st[sp-1] = ^st[sp-1]
				}
			}
			dst[di] = st[0]
			di += ds
			for j := range cur {
				cur[j] += fr.loads[j].stride
			}
		}
	}
}
