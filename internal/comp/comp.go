// Package comp compiles checked mini-C programs into trees of Go
// closures and executes them.
//
// It plays the role of GCC/ICC in the paper's tool chain (Fig. 1): the
// transformed, pragma-annotated source becomes an executable artifact.
// Two backends model the two compilers of the evaluation:
//
//   - BackendGCC compiles straightforwardly (the GCC -O2 analog);
//   - BackendICC additionally inlines tiny pure functions and replaces
//     canonical reduction loops inside extracted pure functions by
//     fused kernels operating directly on memory segments — the analog
//     of ICC's automatic vectorization of the extracted dot-product
//     function that the paper credits for the pure+ICC advantage
//     (Sect. 4.3.1). Inlined loop bodies in the surrounding code are
//     not "vectorized", matching the paper's observation that ICC does
//     not vectorize the PluTo-inlined code.
//
// #pragma omp parallel for statements are honored by dispatching loop
// ranges onto an rt.Team with the requested schedule.
//
// Compilation output is split along the executable/run-state boundary:
//
//   - Program is the immutable compile artifact (compiled closures,
//     function table, global layout, backend metadata). It holds no
//     run state and is safe to share between any number of concurrent
//     runs.
//   - Process is one run of a Program: global slot storage, heap,
//     stdout, worker team and rand state. Processes of one Program are
//     independent; running them concurrently is safe as long as each
//     Process is used sequentially.
//   - Machine bundles one Program with one Process for callers that
//     want the classic compile-and-run object; it remains safe for
//     sequential reuse via ResetGlobals.
package comp

import (
	"fmt"
	"io"
	"math"

	"purec/internal/ast"
	"purec/internal/mem"
	"purec/internal/rt"
	"purec/internal/sema"
	"purec/internal/types"
)

// Backend selects the compiler analog.
type Backend int

// Backends.
const (
	BackendGCC Backend = iota
	BackendICC
)

var backendNames = [...]string{"gcc", "icc"}

// String returns the backend name.
func (b Backend) String() string { return backendNames[b] }

// Engine selects the statement execution engine compiled programs run
// on. Both engines share the trap primitives and float32 store-rounding
// points, so results and failure behavior are bit-identical; only the
// dispatch cost differs.
type Engine int

// Engines.
const (
	// EngineClosure executes statement/expression trees of Go closures
	// (the default, one closure call per AST node).
	EngineClosure Engine = iota
	// EngineTape linearizes statements into flat bytecode tapes executed
	// by a switch-dispatch loop: constants pooled, locals and temps in
	// fixed frame slots, control flow via relative jumps. Calls, malloc,
	// switch statements, parallel-region launches and fused kernels
	// escape into pooled closures; everything else runs instruction by
	// instruction with no per-node allocation or interface calls.
	EngineTape
)

var engineNames = [...]string{"closure", "tape"}

// String returns the engine name.
func (e Engine) String() string { return engineNames[e] }

// Options configure compilation. Backend and Vectorize shape the
// Program; Team and Stdout seed the initial Process of a Machine built
// with Compile (CompileProgram ignores them).
type Options struct {
	Backend Backend
	// Team executes parallel regions; nil means a single worker.
	//lint:cachekey run state: seeds the initial Process, never the Program
	Team *rt.Team
	// Stdout receives printf output (defaults to os.Stdout).
	//lint:cachekey run state: seeds the initial Process, never the Program
	Stdout io.Writer
	// Vectorize applies the fused-kernel compilation to canonical
	// reduction loops everywhere, not only inside pure functions — the
	// PluTo-SICA SIMD-code-generation analog. BackendICC implies it for
	// pure functions only.
	Vectorize bool
	// Memoize wraps call sites of memoizable pure functions (scalar
	// signature, global-free body — see purity.Memoizable) behind a
	// concurrency-safe memo table shared by every Process of the
	// Program. Referential transparency makes the cached results exact.
	Memoize bool
	// Memoizable optionally supplies the precomputed memoizable set for
	// Memoize (the pipeline already ran the analysis for its artifact);
	// nil means CompileProgram derives it from the checked model itself.
	//lint:cachekey derived deterministically from the hashed source by the purity analysis
	Memoizable []string
	// MemoCapacity bounds the memo table entry count (0 selects
	// memo.DefaultCapacity).
	MemoCapacity int
	// MemoShards sets the memo table's lock-stripe count (0 selects
	// memo.DefaultShards).
	MemoShards int
	// NoFuse disables the kernel-fusion engine: element-wise affine
	// innermost loops (copy, fill, scale, axpy, stencil maps) and the
	// ICC/Vectorize reduction kernels then run through per-iteration
	// closure dispatch. Fusion is on by default and bit-identical to
	// dispatch; the knob exists for A/B measurement (purebench Fig K1)
	// and as an escape hatch. Compile-relevant: part of the
	// program-cache key.
	NoFuse bool
	// Engine selects closure-tree or linearized-tape execution for
	// statement dispatch (fused kernels apply under both). Bit-identical
	// results either way. Compile-relevant: part of the program-cache
	// key.
	Engine Engine
	// Proofs is the value-range analysis' proven-in-bounds access set,
	// keyed by the syntax nodes of the compiled model (vra.Result.Proofs
	// over the same sema.Info). Accesses in the set may have their
	// runtime range checks elided; nil disables elision entirely.
	//lint:cachekey derived deterministically from the hashed source by the value-range analysis (NoBCE gates its use and is hashed)
	Proofs map[ast.Expr]bool
	// NoBCE keeps every runtime range check even for proven accesses.
	// Bit-identical results either way (an elided check provably never
	// fires); the knob exists for A/B measurement (purebench Fig B1).
	// Compile-relevant: part of the program-cache key.
	NoBCE bool
	// Combine selects the reduction combine topology (rt.CombineLinear
	// or rt.CombineTree). Integer reductions are bit-identical across
	// topologies; float reductions are bit-identical to their own
	// topology's documented bracketing. Compile-relevant: part of the
	// program-cache key.
	Combine rt.Combine
	// SparsePrivates allocates array-reduction private copies as
	// block-sparse segments with first-touch identity fill, so a worker
	// touching k cells of a large accumulator pays O(k) in allocation,
	// fill and combine instead of O(len). Bit-identical for ints; for
	// floats it folds only touched cells into the reduction target
	// (untouched cells still hold the identity, and fold(a, identity)
	// == a for every supported operator). Compile-relevant: part of the
	// program-cache key.
	SparsePrivates bool
}

// slotKind is the storage class of a frame slot.
type slotKind int

const (
	slotInt slotKind = iota
	slotFloat
	slotPtr
)

type slot struct {
	kind slotKind
	idx  int
}

// ctrl is the statement control-flow result.
type ctrl int

const (
	ctrlNext ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// env is the execution environment of one function activation. All run
// state reaches compiled closures through the env: frame slots directly,
// globals/heap/stdout/rand via the owning Process. Parallel workers get
// a cloned env: private scalar slots, shared segments.
type env struct {
	I []int64
	F []float64
	P []mem.Pointer

	p          *Process
	team       *rt.Team
	inParallel bool

	retI int64
	retF float64
	retP mem.Pointer
}

func (e *env) clone() *env {
	ne := &env{
		I: append([]int64(nil), e.I...),
		F: append([]float64(nil), e.F...),
		P: append([]mem.Pointer(nil), e.P...),
		p: e.p, team: e.team, inParallel: true,
	}
	return ne
}

type (
	intFn  func(*env) int64
	fltFn  func(*env) float64
	ptrFn  func(*env) mem.Pointer
	stmtFn func(*env) ctrl
)

// arrayAlloc describes a local array or struct allocated at function
// entry.
type arrayAlloc struct {
	slot  int // P slot receiving the base pointer
	kind  mem.CellKind
	cells int
	name  string
}

// cfunc is one compiled function.
type cfunc struct {
	name       string
	decl       *ast.FuncDecl
	nI, nF, nP int
	params     []slot
	arrays     []arrayAlloc
	body       stmtFn
	// tape is the body's main instruction tape under EngineTape (nil
	// under EngineClosure); kept for stats and unit inspection.
	tape    *tape
	retKind slotKind
	retVoid bool
	pure    bool
	// memoizable marks verified pure functions whose calls may be served
	// from the memo table (set only when compiling with Options.Memoize).
	memoizable bool
}

func constFloat(e ast.Expr) (float64, bool) {
	switch x := e.(type) {
	case *ast.FloatLit:
		return x.Value, true
	case *ast.IntLit:
		return float64(x.Value), true
	case *ast.UnaryExpr:
		if v, ok := constFloat(x.X); ok {
			return -v, true
		}
	case *ast.ParenExpr:
		return constFloat(x.X)
	}
	return 0, false
}

func slotFor(sym *sema.Symbol) (slotKind, error) {
	if sym.IsArray() {
		return slotPtr, nil
	}
	return slotForType(sym.Type)
}

func slotForType(t *types.Type) (slotKind, error) {
	switch t.Kind {
	case types.Int:
		return slotInt, nil
	case types.Float:
		return slotFloat, nil
	case types.Ptr:
		return slotPtr, nil
	case types.Struct:
		// struct locals live in a segment referenced from a P slot
		return slotPtr, nil
	}
	return slotInt, fmt.Errorf("unsupported storage type %s", t)
}

func cellKindOf(t *types.Type) (mem.CellKind, error) {
	switch t.Kind {
	case types.Int:
		return mem.CellInt, nil
	case types.Float:
		return mem.CellFloat, nil
	case types.Ptr:
		return mem.CellPtr, nil
	case types.Struct:
		return mem.CellMixed, nil
	case types.Void:
		return mem.CellFloat, nil
	}
	return mem.CellInt, fmt.Errorf("no cell kind for %s", t)
}

// structCells returns the flattened cell count of a struct type.
func structCells(t *types.Type) int {
	n := 0
	for _, f := range t.Fields {
		n += f.Count
	}
	if n == 0 {
		n = 1
	}
	return n
}

// elemStride returns the pointer-arithmetic stride (in cells) of a
// pointee type: structs advance by their cell count, scalars by 1.
func elemStride(t *types.Type) int64 {
	if t != nil && t.Kind == types.Struct {
		return int64(structCells(t))
	}
	return 1
}

// RuntimeError is a trapped execution fault (out-of-bounds access, nil
// dereference, division by zero, bad free).
type RuntimeError struct {
	Msg string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string { return "runtime error: " + e.Msg }

func rtPanic(format string, args ...any) {
	panic("purec: " + fmt.Sprintf(format, args...))
}

// addChecked is the compiled pointer-arithmetic path: offset overflow
// traps as a runtime error instead of wrapping past the int range.
func addChecked(p mem.Pointer, n int64) mem.Pointer {
	q, err := p.AddChecked(n)
	if err != nil {
		rtPanic("%v", err)
	}
	return q
}

// addScaled is addChecked for p + i element steps of a multi-cell
// stride: the i·stride product is overflow-checked first, so a wrapped
// product can never smuggle a small in-range offset past AddChecked.
// stride is a compile-time constant ≥ 1.
func addScaled(p mem.Pointer, i, stride int64) mem.Pointer {
	if stride != 1 && (i > math.MaxInt64/stride || i < math.MinInt64/stride) {
		rtPanic("pointer arithmetic overflow: %s + %d*%d elements", p, i, stride)
	}
	return addChecked(p, i*stride)
}
