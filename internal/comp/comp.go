// Package comp compiles checked mini-C programs into trees of Go
// closures and executes them.
//
// It plays the role of GCC/ICC in the paper's tool chain (Fig. 1): the
// transformed, pragma-annotated source becomes an executable artifact.
// Two backends model the two compilers of the evaluation:
//
//   - BackendGCC compiles straightforwardly (the GCC -O2 analog);
//   - BackendICC additionally inlines tiny pure functions and replaces
//     canonical reduction loops inside extracted pure functions by
//     fused kernels operating directly on memory segments — the analog
//     of ICC's automatic vectorization of the extracted dot-product
//     function that the paper credits for the pure+ICC advantage
//     (Sect. 4.3.1). Inlined loop bodies in the surrounding code are
//     not "vectorized", matching the paper's observation that ICC does
//     not vectorize the PluTo-inlined code.
//
// #pragma omp parallel for statements are honored by dispatching loop
// ranges onto an rt.Team with the requested schedule.
package comp

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"purec/internal/ast"
	"purec/internal/mem"
	"purec/internal/rt"
	"purec/internal/sema"
	"purec/internal/types"
)

// Backend selects the compiler analog.
type Backend int

// Backends.
const (
	BackendGCC Backend = iota
	BackendICC
)

var backendNames = [...]string{"gcc", "icc"}

// String returns the backend name.
func (b Backend) String() string { return backendNames[b] }

// Options configure compilation.
type Options struct {
	Backend Backend
	// Team executes parallel regions; nil means a single worker.
	Team *rt.Team
	// Stdout receives printf output (defaults to os.Stdout).
	Stdout io.Writer
	// Vectorize applies the fused-kernel compilation to canonical
	// reduction loops everywhere, not only inside pure functions — the
	// PluTo-SICA SIMD-code-generation analog. BackendICC implies it for
	// pure functions only.
	Vectorize bool
}

// slotKind is the storage class of a frame slot.
type slotKind int

const (
	slotInt slotKind = iota
	slotFloat
	slotPtr
)

type slot struct {
	kind slotKind
	idx  int
}

// ctrl is the statement control-flow result.
type ctrl int

const (
	ctrlNext ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// env is the execution environment of one function activation. Parallel
// workers get a cloned env: private scalar slots, shared segments.
type env struct {
	I []int64
	F []float64
	P []mem.Pointer

	m          *Machine
	team       *rt.Team
	inParallel bool

	retI int64
	retF float64
	retP mem.Pointer
}

func (e *env) clone() *env {
	ne := &env{
		I: append([]int64(nil), e.I...),
		F: append([]float64(nil), e.F...),
		P: append([]mem.Pointer(nil), e.P...),
		m: e.m, team: e.team, inParallel: true,
	}
	return ne
}

type (
	intFn  func(*env) int64
	fltFn  func(*env) float64
	ptrFn  func(*env) mem.Pointer
	stmtFn func(*env) ctrl
)

// arrayAlloc describes a local array or struct allocated at function
// entry.
type arrayAlloc struct {
	slot  int // P slot receiving the base pointer
	kind  mem.CellKind
	cells int
	name  string
}

// cfunc is one compiled function.
type cfunc struct {
	name       string
	decl       *ast.FuncDecl
	nI, nF, nP int
	params     []slot
	arrays     []arrayAlloc
	body       stmtFn
	retKind    slotKind
	retVoid    bool
	pure       bool
}

// Machine is a loaded, executable program.
type Machine struct {
	info  *sema.Info
	opts  Options
	funcs map[string]*cfunc
	heap  mem.Heap

	// global storage
	gI          []int64
	gF          []float64
	gP          []mem.Pointer
	globalSlots map[*sema.Symbol]slot
	globalInit  []func(*Machine) error

	stdout    io.Writer
	team      *rt.Team
	randState uint64
}

// Compile translates a checked program. The returned machine is safe for
// sequential reuse: call ResetGlobals between runs.
func Compile(info *sema.Info, opts Options) (*Machine, error) {
	m := &Machine{
		info:        info,
		opts:        opts,
		funcs:       map[string]*cfunc{},
		globalSlots: map[*sema.Symbol]slot{},
		stdout:      opts.Stdout,
		team:        opts.Team,
	}
	if m.stdout == nil {
		m.stdout = os.Stdout
	}
	if m.team == nil {
		m.team = rt.NewTeam(1)
	}
	if err := m.layoutGlobals(); err != nil {
		return nil, err
	}
	// First pass: create cfunc shells so calls can resolve.
	for _, d := range info.File.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		m.funcs[fd.Name] = &cfunc{name: fd.Name, decl: fd, pure: fd.Pure}
	}
	for _, cf := range m.funcs {
		fc := &funcCompiler{m: m, cf: cf}
		if err := fc.compile(); err != nil {
			return nil, err
		}
	}
	if err := m.ResetGlobals(); err != nil {
		return nil, err
	}
	return m, nil
}

// SetTeam replaces the worker team (between runs).
func (m *Machine) SetTeam(t *rt.Team) { m.team = t }

// Heap returns allocation statistics.
func (m *Machine) Heap() mem.Heap { return m.heap }

// layoutGlobals assigns global slots and builds initializers.
func (m *Machine) layoutGlobals() error {
	var nI, nF, nP int
	for _, g := range m.info.Globals {
		sl, err := slotFor(g)
		if err != nil {
			return fmt.Errorf("global %s: %v", g.Name, err)
		}
		switch sl {
		case slotInt:
			m.globalSlots[g] = slot{slotInt, nI}
			nI++
		case slotFloat:
			m.globalSlots[g] = slot{slotFloat, nF}
			nF++
		case slotPtr:
			m.globalSlots[g] = slot{slotPtr, nP}
			nP++
		}
	}
	m.gI = make([]int64, nI)
	m.gF = make([]float64, nF)
	m.gP = make([]mem.Pointer, nP)
	return nil
}

// ResetGlobals zeroes global storage, re-creates global array segments
// and re-evaluates constant initializers. Run it between measurements so
// each run starts from the C program's initial state.
func (m *Machine) ResetGlobals() error {
	for i := range m.gI {
		m.gI[i] = 0
	}
	for i := range m.gF {
		m.gF[i] = 0
	}
	for i := range m.gP {
		m.gP[i] = mem.Pointer{}
	}
	m.heap = mem.Heap{}
	for _, g := range m.info.Globals {
		sl := m.globalSlots[g]
		if g.IsArray() {
			cells := 1
			for _, d := range g.Dims {
				cells *= d
			}
			kind, err := cellKindOf(g.Type.BaseElem())
			if err != nil {
				return fmt.Errorf("global %s: %v", g.Name, err)
			}
			m.gP[sl.idx] = mem.Pointer{Seg: mem.NewSegment(kind, cells, "global "+g.Name)}
			continue
		}
		if g.Decl != nil && g.Decl.Init != nil {
			v, ok := sema.ConstInt(g.Decl.Init)
			if !ok {
				if fv, okf := constFloat(g.Decl.Init); okf {
					if sl.kind == slotFloat {
						m.gF[sl.idx] = fv
						continue
					}
				}
				return fmt.Errorf("global %s: initializer must be constant", g.Name)
			}
			switch sl.kind {
			case slotInt:
				m.gI[sl.idx] = v
			case slotFloat:
				m.gF[sl.idx] = float64(v)
			default:
				if v != 0 {
					return fmt.Errorf("global pointer %s: only 0 initializer supported", g.Name)
				}
			}
		}
	}
	return nil
}

func constFloat(e ast.Expr) (float64, bool) {
	switch x := e.(type) {
	case *ast.FloatLit:
		return x.Value, true
	case *ast.IntLit:
		return float64(x.Value), true
	case *ast.UnaryExpr:
		if v, ok := constFloat(x.X); ok {
			return -v, true
		}
	case *ast.ParenExpr:
		return constFloat(x.X)
	}
	return 0, false
}

func slotFor(sym *sema.Symbol) (slotKind, error) {
	if sym.IsArray() {
		return slotPtr, nil
	}
	return slotForType(sym.Type)
}

func slotForType(t *types.Type) (slotKind, error) {
	switch t.Kind {
	case types.Int:
		return slotInt, nil
	case types.Float:
		return slotFloat, nil
	case types.Ptr:
		return slotPtr, nil
	case types.Struct:
		// struct locals live in a segment referenced from a P slot
		return slotPtr, nil
	}
	return slotInt, fmt.Errorf("unsupported storage type %s", t)
}

func cellKindOf(t *types.Type) (mem.CellKind, error) {
	switch t.Kind {
	case types.Int:
		return mem.CellInt, nil
	case types.Float:
		return mem.CellFloat, nil
	case types.Ptr:
		return mem.CellPtr, nil
	case types.Struct:
		return mem.CellMixed, nil
	case types.Void:
		return mem.CellFloat, nil
	}
	return mem.CellInt, fmt.Errorf("no cell kind for %s", t)
}

// structCells returns the flattened cell count of a struct type.
func structCells(t *types.Type) int {
	n := 0
	for _, f := range t.Fields {
		n += f.Count
	}
	if n == 0 {
		n = 1
	}
	return n
}

// elemStride returns the pointer-arithmetic stride (in cells) of a
// pointee type: structs advance by their cell count, scalars by 1.
func elemStride(t *types.Type) int64 {
	if t != nil && t.Kind == types.Struct {
		return int64(structCells(t))
	}
	return 1
}

// RuntimeError is a trapped execution fault (out-of-bounds access, nil
// dereference, division by zero, bad free).
type RuntimeError struct {
	Msg string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string { return "runtime error: " + e.Msg }

// Run executes function name with integer/float arguments and returns
// main-style int results. Most tests and benches call RunMain.
func (m *Machine) RunMain() (ret int64, err error) {
	return m.CallInt("main")
}

// CallInt calls an int-returning, zero-argument function.
func (m *Machine) CallInt(name string) (ret int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, isRT := r.(runtime.Error); isRT {
				err = &RuntimeError{Msg: fmt.Sprint(r)}
				return
			}
			if s, isStr := r.(string); isStr && strings.HasPrefix(s, "purec:") {
				err = &RuntimeError{Msg: strings.TrimPrefix(s, "purec: ")}
				return
			}
			panic(r)
		}
	}()
	cf, ok := m.funcs[name]
	if !ok {
		return 0, fmt.Errorf("function %s not found", name)
	}
	e := m.newEnv(cf)
	cf.body(e)
	return e.retI, nil
}

// CallFloat calls a float-returning function with the given arguments
// (ints fill int parameters in order, floats fill float parameters,
// pointers fill pointer parameters).
func (m *Machine) CallFloat(name string, args ...any) (ret float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, isRT := r.(runtime.Error); isRT {
				err = &RuntimeError{Msg: fmt.Sprint(r)}
				return
			}
			if s, isStr := r.(string); isStr && strings.HasPrefix(s, "purec:") {
				err = &RuntimeError{Msg: strings.TrimPrefix(s, "purec: ")}
				return
			}
			panic(r)
		}
	}()
	cf, ok := m.funcs[name]
	if !ok {
		return 0, fmt.Errorf("function %s not found", name)
	}
	e := m.newEnv(cf)
	ai := 0
	for _, ps := range cf.params {
		if ai >= len(args) {
			return 0, fmt.Errorf("not enough arguments for %s", name)
		}
		switch ps.kind {
		case slotInt:
			v, ok := args[ai].(int64)
			if !ok {
				return 0, fmt.Errorf("argument %d of %s must be int64", ai, name)
			}
			e.I[ps.idx] = v
		case slotFloat:
			v, ok := args[ai].(float64)
			if !ok {
				return 0, fmt.Errorf("argument %d of %s must be float64", ai, name)
			}
			e.F[ps.idx] = v
		case slotPtr:
			v, ok := args[ai].(mem.Pointer)
			if !ok {
				return 0, fmt.Errorf("argument %d of %s must be mem.Pointer", ai, name)
			}
			e.P[ps.idx] = v
		}
		ai++
	}
	cf.body(e)
	return e.retF, nil
}

// newEnv builds a fresh activation for cf, allocating local arrays.
func (m *Machine) newEnv(cf *cfunc) *env {
	e := &env{
		I: make([]int64, cf.nI),
		F: make([]float64, cf.nF),
		P: make([]mem.Pointer, cf.nP),
		m: m, team: m.team,
	}
	for _, a := range cf.arrays {
		e.P[a.slot] = mem.Pointer{Seg: mem.NewSegment(a.kind, a.cells, a.name)}
	}
	return e
}

// GlobalPtr returns the pointer value of global pointer/array name, for
// test and bench verification.
func (m *Machine) GlobalPtr(name string) (mem.Pointer, error) {
	g, ok := m.info.GlobalMap[name]
	if !ok {
		return mem.Pointer{}, fmt.Errorf("no global %s", name)
	}
	sl := m.globalSlots[g]
	if sl.kind != slotPtr {
		return mem.Pointer{}, fmt.Errorf("global %s is not a pointer", name)
	}
	return m.gP[sl.idx], nil
}

// GlobalInt returns the value of an integer global.
func (m *Machine) GlobalInt(name string) (int64, error) {
	g, ok := m.info.GlobalMap[name]
	if !ok {
		return 0, fmt.Errorf("no global %s", name)
	}
	sl := m.globalSlots[g]
	if sl.kind != slotInt {
		return 0, fmt.Errorf("global %s is not an int", name)
	}
	return m.gI[sl.idx], nil
}

// GlobalFloat returns the value of a float global.
func (m *Machine) GlobalFloat(name string) (float64, error) {
	g, ok := m.info.GlobalMap[name]
	if !ok {
		return 0, fmt.Errorf("no global %s", name)
	}
	sl := m.globalSlots[g]
	if sl.kind != slotFloat {
		return 0, fmt.Errorf("global %s is not a float", name)
	}
	return m.gF[sl.idx], nil
}

func rtPanic(format string, args ...any) {
	panic("purec: " + fmt.Sprintf(format, args...))
}
