package comp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"purec/internal/interp"
	"purec/internal/mem"
	"purec/internal/parser"
	"purec/internal/rt"
	"purec/internal/sema"
)

// newFloatSeg builds a float segment pointer for direct function calls.
func newFloatSeg(vals []float64) mem.Pointer {
	seg := mem.NewSegment(mem.CellFloat, len(vals), "test")
	copy(seg.F, vals)
	return mem.Pointer{Seg: seg}
}

func compile(t *testing.T, src string, opts Options) *Machine {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	m, err := Compile(info, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

// runBoth executes main via the compiler and the interpreter and checks
// both agree on the return value.
func runBoth(t *testing.T, src string) int64 {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	m, err := Compile(info, Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	got, err := m.RunMain()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	in, err := interp.New(info, nil)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	want, err := in.RunMain()
	if err != nil {
		t.Fatalf("interp run: %v", err)
	}
	if got != want {
		t.Fatalf("compiler returned %d, interpreter %d\nsource:\n%s", got, want, src)
	}
	return got
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"int main(void) { return 2 + 3 * 4; }", 14},
		{"int main(void) { return (2 + 3) * 4; }", 20},
		{"int main(void) { return 17 / 5; }", 3},
		{"int main(void) { return 17 % 5; }", 2},
		{"int main(void) { return -7 + 3; }", -4},
		{"int main(void) { return 1 << 10; }", 1024},
		{"int main(void) { return 255 >> 4; }", 15},
		{"int main(void) { return 12 & 10; }", 8},
		{"int main(void) { return 12 | 10; }", 14},
		{"int main(void) { return 12 ^ 10; }", 6},
		{"int main(void) { return ~0; }", -1},
		{"int main(void) { return !0 + !5; }", 1},
		{"int main(void) { return 3 < 5 && 5 < 3 || 1; }", 1},
		{"int main(void) { return 1 ? 42 : 7; }", 42},
		{"int main(void) { return (int)3.99; }", 3},
		{"int main(void) { return (int)(3.5 + 0.75); }", 4},
	}
	for _, c := range cases {
		if got := runBoth(t, c.src); got != c.want {
			t.Errorf("%q: got %d want %d", c.src, got, c.want)
		}
	}
}

func TestControlFlow(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{`int main(void) { int s = 0; for (int i = 0; i < 10; i++) s += i; return s; }`, 45},
		{`int main(void) { int s = 0; int i = 0; while (i < 5) { s += i; i++; } return s; }`, 10},
		{`int main(void) { int s = 0; int i = 0; do { s += i; i++; } while (i < 3); return s; }`, 3},
		{`int main(void) { int s = 0; for (int i = 0; i < 10; i++) { if (i == 5) break; s += i; } return s; }`, 10},
		{`int main(void) { int s = 0; for (int i = 0; i < 10; i++) { if (i % 2) continue; s += i; } return s; }`, 20},
		{`int main(void) { int x = 2; switch (x) { case 1: return 10; case 2: return 20; default: return 30; } }`, 20},
		{`int main(void) { int x = 2; int s = 0; switch (x) { case 2: s += 1; case 3: s += 2; break; case 4: s += 4; } return s; }`, 3},
		{`int main(void) { int x = 9; switch (x) { case 1: return 10; default: return 99; } }`, 99},
	}
	for _, c := range cases {
		if got := runBoth(t, c.src); got != c.want {
			t.Errorf("got %d want %d for:\n%s", got, c.want, c.src)
		}
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	src := `
pure int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int twice(int x) { return x * 2; }
int main(void) { return fib(12) + twice(3); }
`
	if got := runBoth(t, src); got != 144+6 {
		t.Fatalf("got %d", got)
	}
}

func TestArrays(t *testing.T) {
	src := `
int main(void) {
    int a[10];
    for (int i = 0; i < 10; i++) a[i] = i * i;
    int m[3][4];
    for (int i = 0; i < 3; i++)
        for (int j = 0; j < 4; j++)
            m[i][j] = i * 10 + j;
    return a[7] + m[2][3];
}
`
	if got := runBoth(t, src); got != 49+23 {
		t.Fatalf("got %d", got)
	}
}

func TestGlobalArraysAndScalars(t *testing.T) {
	src := `
int total;
float weights[8];
int main(void) {
    for (int i = 0; i < 8; i++) weights[i] = (float)i * 0.5f;
    total = 0;
    for (int i = 0; i < 8; i++) total += (int)weights[i];
    return total;
}
`
	if got := runBoth(t, src); got != 0+0+1+1+2+2+3+3 {
		t.Fatalf("got %d", got)
	}
}

func TestMallocFreePointers(t *testing.T) {
	src := `
int main(void) {
    int* p = (int*)malloc(10 * sizeof(int));
    for (int i = 0; i < 10; i++) p[i] = i + 1;
    int* q = p + 3;
    int v = *q + q[1];
    free(p);
    return v;
}
`
	if got := runBoth(t, src); got != 4+5 {
		t.Fatalf("got %d", got)
	}
}

func TestPointerToPointer(t *testing.T) {
	src := `
int main(void) {
    float** rows = (float**)malloc(3 * sizeof(float*));
    for (int i = 0; i < 3; i++) {
        rows[i] = (float*)malloc(4 * sizeof(float));
        for (int j = 0; j < 4; j++) rows[i][j] = (float)(i * 4 + j);
    }
    int v = (int)rows[2][3];
    for (int i = 0; i < 3; i++) free(rows[i]);
    free(rows);
    return v;
}
`
	if got := runBoth(t, src); got != 11 {
		t.Fatalf("got %d", got)
	}
}

func TestStructs(t *testing.T) {
	src := `
struct point {
    int x;
    int y;
    float w[2];
};
int main(void) {
    struct point p;
    p.x = 3;
    p.y = 4;
    p.w[0] = 1.5f;
    p.w[1] = 2.5f;
    struct point* q = (struct point*)malloc(2 * sizeof(struct point));
    q[0].x = 10;
    q[1].x = 20;
    struct point* r = q + 1;
    int v = p.x + p.y + (int)(p.w[0] + p.w[1]) + q[0].x + r->x;
    free(q);
    return v;
}
`
	if got := runBoth(t, src); got != 3+4+4+10+20 {
		t.Fatalf("got %d", got)
	}
}

func TestMathBuiltins(t *testing.T) {
	src := `
int main(void) {
    double a = sqrt(16.0) + fabs(-3.0) + floor(2.9) + ceil(0.1);
    double b = pow(2.0, 10.0) + fmin(1.0, 2.0) + fmax(1.0, 2.0);
    return (int)(a + b);
}
`
	if got := runBoth(t, src); got != 4+3+2+1+1024+1+2 {
		t.Fatalf("got %d", got)
	}
}

func TestFloatRounding(t *testing.T) {
	// float (4-byte) stores must round like C floats.
	src := `
int main(void) {
    float f = 16777216.0f;
    f = f + 1.0f;
    if (f == 16777216.0f) return 1;
    return 0;
}
`
	if got := runBoth(t, src); got != 1 {
		t.Fatalf("float32 rounding not modeled, got %d", got)
	}
}

func TestPrintf(t *testing.T) {
	var buf bytes.Buffer
	m := compile(t, `
int main(void) {
    printf("n=%d f=%f s=%s c=%c\n", 42, 1.5, "hi", 'x');
    return 0;
}
`, Options{Stdout: &buf})
	if _, err := m.RunMain(); err != nil {
		t.Fatal(err)
	}
	want := "n=42 f=1.500000 s=hi c=x\n"
	if buf.String() != want {
		t.Fatalf("printf: %q want %q", buf.String(), want)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"int main(void) { int a = 0; return 5 / a; }", "division by zero"},
		{`int main(void) { int a[3]; return a[5]; }`, "out of range"},
		{`int main(void) { int* p = (int*)malloc(8); free(p); free(p); return 0; }`, "double free"},
		{`int main(void) { int* p; return *p; }`, "nil"},
	}
	for _, c := range cases {
		m := compile(t, c.src, Options{})
		_, err := m.RunMain()
		if err == nil {
			t.Errorf("%q: expected runtime error", c.src)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), c.frag) {
			t.Errorf("%q: error %q missing %q", c.src, err, c.frag)
		}
	}
}

const parallelMatmul = `
float **A, **Bt, **C;
int n;

pure float mult(float a, float b) {
    return a * b;
}

pure float dot(pure float* a, pure float* b, int size) {
    float res = 0.0f;
    for (int i = 0; i < size; ++i)
        res += mult(a[i], b[i]);
    return res;
}

void init(void) {
    n = 24;
    A = (float**)malloc(n * sizeof(float*));
    Bt = (float**)malloc(n * sizeof(float*));
    C = (float**)malloc(n * sizeof(float*));
    for (int i = 0; i < n; i++) {
        A[i] = (float*)malloc(n * sizeof(float));
        Bt[i] = (float*)malloc(n * sizeof(float));
        C[i] = (float*)malloc(n * sizeof(float));
        for (int j = 0; j < n; j++) {
            A[i][j] = (float)(i + j) * 0.25f;
            Bt[i][j] = (float)(i - j) * 0.5f;
        }
    }
}

int checksum(void) {
    float s = 0.0f;
    for (int i = 0; i < n; i++)
        for (int j = 0; j < n; j++)
            s += C[i][j];
    return (int)s;
}

int main(void) {
    init();
#pragma omp parallel for private(j)
    for (int i = 0; i < n; i++)
        for (int j = 0; j < n; j++)
            C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], n);
    return checksum();
}
`

func TestParallelForMatchesSequential(t *testing.T) {
	mSeq := compile(t, parallelMatmul, Options{Team: rt.NewTeam(1)})
	want, err := mSeq.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 8} {
		m := compile(t, parallelMatmul, Options{Team: rt.NewTeam(workers)})
		got, err := m.RunMain()
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		if got != want {
			t.Fatalf("%d workers: checksum %d, sequential %d", workers, got, want)
		}
	}
}

func TestICCBackendMatchesGCC(t *testing.T) {
	g := compile(t, parallelMatmul, Options{Backend: BackendGCC, Team: rt.NewTeam(2)})
	i := compile(t, parallelMatmul, Options{Backend: BackendICC, Team: rt.NewTeam(2)})
	a, err := g.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	b, err := i.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("backends disagree: gcc=%d icc=%d", a, b)
	}
}

func TestVectorizedKernelIsUsed(t *testing.T) {
	// Compile dot with ICC and verify the kernel computes the same value
	// as the scalar path on a direct call.
	src := `
pure float dot(pure float* a, pure float* b, int size) {
    float res = 0.0f;
    for (int i = 0; i < size; ++i)
        res += a[i] * b[i];
    return res;
}
int main(void) { return 0; }
`
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	gcc, err := Compile(info, Options{Backend: BackendGCC})
	if err != nil {
		t.Fatal(err)
	}
	icc, err := Compile(info, Options{Backend: BackendICC})
	if err != nil {
		t.Fatal(err)
	}
	n := 257
	av := make([]float64, n)
	bv := make([]float64, n)
	for i := 0; i < n; i++ {
		av[i] = float64(float32(0.5 * float64(i)))
		bv[i] = float64(float32(0.25 * float64(n-i)))
	}
	pa := newFloatSeg(av)
	pb := newFloatSeg(bv)
	rg, err := gcc.CallFloat("dot", pa, pb, int64(n))
	if err != nil {
		t.Fatal(err)
	}
	ri, err := icc.CallFloat("dot", pa, pb, int64(n))
	if err != nil {
		t.Fatal(err)
	}
	if rg != ri {
		t.Fatalf("vectorized kernel differs: gcc=%v icc=%v", rg, ri)
	}
	if rg == 0 {
		t.Fatal("dot returned zero, inputs ignored")
	}
}

func TestDynamicScheduleCorrect(t *testing.T) {
	src := strings.Replace(parallelMatmul,
		"#pragma omp parallel for private(j)",
		"#pragma omp parallel for private(j) schedule(dynamic,1)", 1)
	mSeq := compile(t, parallelMatmul, Options{Team: rt.NewTeam(1)})
	want, err := mSeq.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	m := compile(t, src, Options{Team: rt.NewTeam(4)})
	got, err := m.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("dynamic schedule: %d want %d", got, want)
	}
}

// Property: random straight-line integer programs agree between compiler
// and interpreter.
func TestCompilerInterpreterAgreeProperty(t *testing.T) {
	f := func(seed uint32) bool {
		src := genIntProgram(seed)
		fAst, err := parser.Parse("p.c", src)
		if err != nil {
			return false
		}
		info, err := sema.Check(fAst)
		if err != nil {
			return false
		}
		m, err := Compile(info, Options{})
		if err != nil {
			return false
		}
		got, err := m.RunMain()
		if err != nil {
			return true // runtime fault (e.g. div by zero): both would fault
		}
		in, err := interp.New(info, nil)
		if err != nil {
			return false
		}
		want, err := in.RunMain()
		if err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// genIntProgram builds a deterministic random arithmetic program.
func genIntProgram(seed uint32) string {
	s := seed
	next := func(n int) int {
		s = s*1664525 + 1013904223
		return int(s>>16) % n
	}
	ops := []string{"+", "-", "*", "%", "/", "&", "|", "^"}
	var b strings.Builder
	b.WriteString("int main(void) {\n int a = ")
	fmt.Fprintf(&b, "%d; int v = 1;\n", next(100)+1)
	for i := 0; i < 12; i++ {
		op := ops[next(len(ops))]
		c := next(37) + 1
		fmt.Fprintf(&b, " a = (a %s %d) + v;\n", op, c)
		if next(3) == 0 {
			fmt.Fprintf(&b, " if (a > %d) v = v + 1; else v = v - 1;\n", next(500))
		}
		if next(4) == 0 {
			fmt.Fprintf(&b, " for (int k = 0; k < %d; k++) a = a + k;\n", next(6))
		}
	}
	b.WriteString(" return a;\n}\n")
	return b.String()
}
