package comp

import (
	"strings"

	"purec/internal/ast"
	"purec/internal/rt"
	"purec/internal/sema"
	"purec/internal/token"
	"purec/internal/types"
)

// block compiles a statement block, honoring #pragma omp parallel for
// annotations on the following loop.
func (fc *funcCompiler) block(b *ast.BlockStmt) stmtFn {
	return fc.stmtList(b.List)
}

func (fc *funcCompiler) stmtList(list []ast.Stmt) stmtFn {
	var fns []stmtFn
	for i := 0; i < len(list); i++ {
		s := list[i]
		if pr, ok := s.(*ast.PragmaStmt); ok {
			if isOmpParallelFor(pr.Text) && i+1 < len(list) {
				if f, ok := list[i+1].(*ast.ForStmt); ok {
					fns = append(fns, fc.parallelFor(f, pr.Text))
					i++
					continue
				}
			}
			// scop/endscop/simd markers have no runtime effect.
			continue
		}
		fns = append(fns, fc.stmt(s))
	}
	switch len(fns) {
	case 0:
		return func(*env) ctrl { return ctrlNext }
	case 1:
		return fns[0]
	}
	return func(e *env) ctrl {
		for _, f := range fns {
			if c := f(e); c != ctrlNext {
				return c
			}
		}
		return ctrlNext
	}
}

func isOmpParallelFor(text string) bool {
	return strings.Contains(text, "omp") && strings.Contains(text, "parallel") &&
		strings.Contains(text, "for")
}

func (fc *funcCompiler) stmt(s ast.Stmt) stmtFn {
	switch x := s.(type) {
	case *ast.DeclStmt:
		return fc.declStmt(x)
	case *ast.ExprStmt:
		eff := fc.effect(x.X)
		return func(e *env) ctrl {
			eff(e)
			return ctrlNext
		}
	case *ast.EmptyStmt:
		return func(*env) ctrl { return ctrlNext }
	case *ast.BlockStmt:
		return fc.block(x)
	case *ast.IfStmt:
		c := fc.cond(x.Cond)
		then := fc.stmt(x.Then)
		if x.Else == nil {
			return func(e *env) ctrl {
				if c(e) {
					return then(e)
				}
				return ctrlNext
			}
		}
		els := fc.stmt(x.Else)
		return func(e *env) ctrl {
			if c(e) {
				return then(e)
			}
			return els(e)
		}
	case *ast.ForStmt:
		return fc.forStmt(x)
	case *ast.WhileStmt:
		c := fc.cond(x.Cond)
		body := fc.stmt(x.Body)
		return func(e *env) ctrl {
			for c(e) {
				switch body(e) {
				case ctrlBreak:
					return ctrlNext
				case ctrlReturn:
					return ctrlReturn
				}
			}
			return ctrlNext
		}
	case *ast.DoStmt:
		c := fc.cond(x.Cond)
		body := fc.stmt(x.Body)
		return func(e *env) ctrl {
			for {
				switch body(e) {
				case ctrlBreak:
					return ctrlNext
				case ctrlReturn:
					return ctrlReturn
				}
				if !c(e) {
					return ctrlNext
				}
			}
		}
	case *ast.ReturnStmt:
		return fc.returnStmt(x)
	case *ast.BreakStmt:
		return func(*env) ctrl { return ctrlBreak }
	case *ast.ContinueStmt:
		return func(*env) ctrl { return ctrlContinue }
	case *ast.SwitchStmt:
		return fc.switchStmt(x)
	case *ast.PragmaStmt:
		return func(*env) ctrl { return ctrlNext }
	}
	fc.errorf(s, "unsupported statement %T", s)
	return nil
}

func (fc *funcCompiler) declStmt(x *ast.DeclStmt) stmtFn {
	var fns []func(*env)
	for _, d := range x.Decls {
		sym := fc.declSym[d]
		if sym == nil {
			fc.errorf(d, "declaration of %s has no symbol", d.Name)
		}
		if d.Init == nil {
			continue
		}
		sl := fc.slots[sym]
		switch sl.kind {
		case slotInt:
			v := fc.integer(d.Init)
			idx := sl.idx
			fns = append(fns, func(e *env) { e.I[idx] = v(e) })
		case slotFloat:
			v := fc.num(d.Init)
			idx := sl.idx
			if sym.Type.CSize == 4 {
				inner := v
				v = func(e *env) float64 { return float64(float32(inner(e))) }
			}
			fns = append(fns, func(e *env) { e.F[idx] = v(e) })
		case slotPtr:
			if sym.IsArray() || sym.Type.Kind == types.Struct {
				fc.errorf(d, "array/struct initializers are not supported")
			}
			v := fc.ptr(d.Init)
			idx := sl.idx
			fns = append(fns, func(e *env) { e.P[idx] = v(e) })
		}
	}
	return func(e *env) ctrl {
		for _, f := range fns {
			f(e)
		}
		return ctrlNext
	}
}

func (fc *funcCompiler) returnStmt(x *ast.ReturnStmt) stmtFn {
	if x.X == nil {
		return func(*env) ctrl { return ctrlReturn }
	}
	if fc.cf.retVoid {
		fc.errorf(x, "value returned from void function")
	}
	switch fc.cf.retKind {
	case slotInt:
		v := fc.integer(x.X)
		return func(e *env) ctrl {
			e.retI = v(e)
			return ctrlReturn
		}
	case slotFloat:
		v := fc.num(x.X)
		if fc.sig != nil && fc.sig.Ret.CSize == 4 {
			inner := v
			v = func(e *env) float64 { return float64(float32(inner(e))) }
		}
		return func(e *env) ctrl {
			e.retF = v(e)
			return ctrlReturn
		}
	default:
		v := fc.ptr(x.X)
		return func(e *env) ctrl {
			e.retP = v(e)
			return ctrlReturn
		}
	}
}

func (fc *funcCompiler) switchStmt(x *ast.SwitchStmt) stmtFn {
	tag := fc.integer(x.Tag)
	type ccase struct {
		val   int64
		deflt bool
		body  stmtFn
	}
	var cases []ccase
	for _, c := range x.Cases {
		cc := ccase{body: fc.stmtList(c.Body)}
		if c.Value == nil {
			cc.deflt = true
		} else {
			v, ok := sema.ConstInt(c.Value)
			if !ok {
				fc.errorf(c, "case label must be constant")
			}
			cc.val = v
		}
		cases = append(cases, cc)
	}
	// C fall-through: execution continues into following cases until a
	// break. We execute from the matching case through the rest.
	return func(e *env) ctrl {
		v := tag(e)
		start := -1
		for i, c := range cases {
			if !c.deflt && c.val == v {
				start = i
				break
			}
		}
		if start < 0 {
			for i, c := range cases {
				if c.deflt {
					start = i
					break
				}
			}
		}
		if start < 0 {
			return ctrlNext
		}
		for i := start; i < len(cases); i++ {
			switch cases[i].body(e) {
			case ctrlBreak:
				return ctrlNext
			case ctrlReturn:
				return ctrlReturn
			case ctrlContinue:
				return ctrlContinue
			}
		}
		return ctrlNext
	}
}

// forStmt compiles a sequential for loop. Inside pure functions the ICC
// backend first tries to replace canonical reduction loops by fused
// kernels (the vectorization analog).
func (fc *funcCompiler) forStmt(x *ast.ForStmt) stmtFn {
	if (fc.prog.backend == BackendICC && fc.cf.pure) || fc.prog.vectorize {
		if k := fc.tryVectorize(x); k != nil {
			return k
		}
	}
	var init stmtFn
	if x.Init != nil {
		init = fc.stmt(x.Init)
	}
	var cond func(*env) bool
	if x.Cond != nil {
		cond = fc.cond(x.Cond)
	} else {
		cond = func(*env) bool { return true }
	}
	var post func(*env)
	if x.Post != nil {
		post = fc.effect(x.Post)
	}
	body := fc.stmt(x.Body)
	return func(e *env) ctrl {
		if init != nil {
			init(e)
		}
		for cond(e) {
			switch body(e) {
			case ctrlBreak:
				return ctrlNext
			case ctrlReturn:
				return ctrlReturn
			}
			if post != nil {
				post(e)
			}
		}
		return ctrlNext
	}
}

// canonicalLoop extracts (iterSlot, lower, upperInclusive, body) from a
// canonical loop "for (int i = LB; i < UB; i++) ...".
type canonicalLoop struct {
	iterSlot int
	lower    intFn
	upper    intFn // inclusive
	body     ast.Stmt
	iterSym  *sema.Symbol
}

func (fc *funcCompiler) canonical(x *ast.ForStmt) (canonicalLoop, bool) {
	var cl canonicalLoop
	var iterName string
	switch init := x.Init.(type) {
	case *ast.DeclStmt:
		if len(init.Decls) != 1 || init.Decls[0].Init == nil {
			return cl, false
		}
		sym := fc.declSym[init.Decls[0]]
		if sym == nil {
			return cl, false
		}
		sl := fc.slots[sym]
		if sl.kind != slotInt {
			return cl, false
		}
		cl.iterSlot = sl.idx
		cl.iterSym = sym
		cl.lower = fc.integer(init.Decls[0].Init)
		iterName = init.Decls[0].Name
	case *ast.ExprStmt:
		as, ok := init.X.(*ast.AssignExpr)
		if !ok || as.Op != token.ASSIGN {
			return cl, false
		}
		id, ok := as.LHS.(*ast.Ident)
		if !ok {
			return cl, false
		}
		sym := fc.symOf(id)
		sl, global := fc.slotOf(sym, id)
		if global || sl.kind != slotInt {
			return cl, false
		}
		cl.iterSlot = sl.idx
		cl.iterSym = sym
		cl.lower = fc.integer(as.RHS)
		iterName = id.Name
	default:
		return cl, false
	}
	condBin, ok := x.Cond.(*ast.BinaryExpr)
	if !ok {
		return cl, false
	}
	condID, ok := condBin.X.(*ast.Ident)
	if !ok || condID.Name != iterName {
		return cl, false
	}
	ub := fc.integer(condBin.Y)
	switch condBin.Op {
	case token.LSS:
		cl.upper = func(e *env) int64 { return ub(e) - 1 }
	case token.LEQ:
		cl.upper = ub
	default:
		return cl, false
	}
	switch post := x.Post.(type) {
	case *ast.PostfixExpr:
		id, ok := post.X.(*ast.Ident)
		if !ok || id.Name != iterName || post.Op != token.INC {
			return cl, false
		}
	case *ast.UnaryExpr:
		id, ok := post.X.(*ast.Ident)
		if !ok || id.Name != iterName || post.Op != token.INC {
			return cl, false
		}
	case *ast.AssignExpr:
		id, ok := post.LHS.(*ast.Ident)
		if !ok || id.Name != iterName || post.Op != token.ADDASSIGN {
			return cl, false
		}
		if v, ok := sema.ConstInt(post.RHS); !ok || v != 1 {
			return cl, false
		}
	default:
		return cl, false
	}
	cl.body = x.Body
	return cl, true
}

// parallelFor compiles a loop annotated with #pragma omp parallel for.
// Iterations are distributed over the team; each worker executes on a
// cloned environment (private scalars, shared segments), the OpenMP
// private-variable analog.
func (fc *funcCompiler) parallelFor(x *ast.ForStmt, pragma string) stmtFn {
	cl, ok := fc.canonical(x)
	if !ok {
		fc.errorf(x, "#pragma omp parallel for requires a canonical loop (int i = lb; i < ub; i++)")
	}
	sched, chunk := parseOmpSchedule(pragma)
	body := fc.stmt(cl.body)
	iterSlot := cl.iterSlot
	return func(e *env) ctrl {
		lo := cl.lower(e)
		hi := cl.upper(e)
		if e.inParallel || e.team == nil || e.team.Size() == 1 {
			// Nested parallelism is disabled (OpenMP default); run inline.
			for i := lo; i <= hi; i++ {
				e.I[iterSlot] = i
				if c := body(e); c == ctrlBreak {
					break
				} else if c == ctrlReturn {
					return ctrlReturn
				}
			}
			return ctrlNext
		}
		e.team.ParallelFor(lo, hi, sched, chunk, func(w int, clo, chi int64) {
			we := e.clone()
			for i := clo; i <= chi; i++ {
				we.I[iterSlot] = i
				body(we)
			}
		})
		return ctrlNext
	}
}

// parseOmpSchedule extracts the schedule clause of an omp pragma.
func parseOmpSchedule(pragma string) (rt.Schedule, int) {
	i := strings.Index(pragma, "schedule(")
	if i < 0 {
		return rt.Static, 0
	}
	rest := pragma[i+len("schedule("):]
	j := strings.IndexByte(rest, ')')
	if j < 0 {
		return rt.Static, 0
	}
	s, c, err := rt.ParseSchedule(strings.TrimSpace(rest[:j]))
	if err != nil {
		return rt.Static, 0
	}
	return s, c
}
