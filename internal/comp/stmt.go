package comp

import (
	"math"
	"strings"

	"purec/internal/ast"
	"purec/internal/rt"
	"purec/internal/sema"
	"purec/internal/token"
	"purec/internal/types"
)

// block compiles a statement block, honoring #pragma omp parallel for
// annotations on the following loop.
func (fc *funcCompiler) block(b *ast.BlockStmt) stmtFn {
	return fc.stmtList(b.List)
}

func (fc *funcCompiler) stmtList(list []ast.Stmt) stmtFn {
	var fns []stmtFn
	for i := 0; i < len(list); i++ {
		s := list[i]
		if pr, ok := s.(*ast.PragmaStmt); ok {
			if isOmpParallelFor(pr.Text) && i+1 < len(list) {
				if f, ok := list[i+1].(*ast.ForStmt); ok {
					// Any reduction clause — supported operator or not —
					// must take the reduction path: compiling it as a
					// plain parallelFor would discard the accumulator
					// updates made in the workers' private clones.
					if strings.Contains(pr.Text, "reduction(") {
						fns = append(fns, fc.parallelReduceFor(f, pr.Text))
					} else {
						fns = append(fns, fc.parallelFor(f, pr.Text))
					}
					i++
					continue
				}
			}
			// scop/endscop/simd markers have no runtime effect.
			continue
		}
		fns = append(fns, fc.stmt(s))
	}
	switch len(fns) {
	case 0:
		return func(*env) ctrl { return ctrlNext }
	case 1:
		return fns[0]
	}
	return func(e *env) ctrl {
		for _, f := range fns {
			if c := f(e); c != ctrlNext {
				return c
			}
		}
		return ctrlNext
	}
}

func isOmpParallelFor(text string) bool {
	return strings.Contains(text, "omp") && strings.Contains(text, "parallel") &&
		strings.Contains(text, "for")
}

func (fc *funcCompiler) stmt(s ast.Stmt) stmtFn {
	switch x := s.(type) {
	case *ast.DeclStmt:
		return fc.declStmt(x)
	case *ast.ExprStmt:
		eff := fc.effect(x.X)
		return func(e *env) ctrl {
			eff(e)
			return ctrlNext
		}
	case *ast.EmptyStmt:
		return func(*env) ctrl { return ctrlNext }
	case *ast.BlockStmt:
		return fc.block(x)
	case *ast.IfStmt:
		c := fc.cond(x.Cond)
		then := fc.stmt(x.Then)
		if x.Else == nil {
			return func(e *env) ctrl {
				if c(e) {
					return then(e)
				}
				return ctrlNext
			}
		}
		els := fc.stmt(x.Else)
		return func(e *env) ctrl {
			if c(e) {
				return then(e)
			}
			return els(e)
		}
	case *ast.ForStmt:
		return fc.forStmt(x)
	case *ast.WhileStmt:
		c := fc.cond(x.Cond)
		body := fc.stmt(x.Body)
		return func(e *env) ctrl {
			for c(e) {
				switch body(e) {
				case ctrlBreak:
					return ctrlNext
				case ctrlReturn:
					return ctrlReturn
				}
			}
			return ctrlNext
		}
	case *ast.DoStmt:
		c := fc.cond(x.Cond)
		body := fc.stmt(x.Body)
		return func(e *env) ctrl {
			for {
				switch body(e) {
				case ctrlBreak:
					return ctrlNext
				case ctrlReturn:
					return ctrlReturn
				}
				if !c(e) {
					return ctrlNext
				}
			}
		}
	case *ast.ReturnStmt:
		return fc.returnStmt(x)
	case *ast.BreakStmt:
		return func(*env) ctrl { return ctrlBreak }
	case *ast.ContinueStmt:
		return func(*env) ctrl { return ctrlContinue }
	case *ast.SwitchStmt:
		return fc.switchStmt(x)
	case *ast.PragmaStmt:
		return func(*env) ctrl { return ctrlNext }
	}
	fc.errorf(s, "unsupported statement %T", s)
	return nil
}

func (fc *funcCompiler) declStmt(x *ast.DeclStmt) stmtFn {
	var fns []func(*env)
	for _, d := range x.Decls {
		sym := fc.declSym[d]
		if sym == nil {
			fc.errorf(d, "declaration of %s has no symbol", d.Name)
		}
		if d.Init == nil {
			continue
		}
		sl := fc.slots[sym]
		switch sl.kind {
		case slotInt:
			v := fc.integer(d.Init)
			idx := sl.idx
			fns = append(fns, func(e *env) { e.I[idx] = v(e) })
		case slotFloat:
			v := fc.num(d.Init)
			idx := sl.idx
			if sym.Type.CSize == 4 {
				inner := v
				v = func(e *env) float64 { return float64(float32(inner(e))) }
			}
			fns = append(fns, func(e *env) { e.F[idx] = v(e) })
		case slotPtr:
			if sym.IsArray() || sym.Type.Kind == types.Struct {
				fc.errorf(d, "array/struct initializers are not supported")
			}
			v := fc.ptr(d.Init)
			idx := sl.idx
			fns = append(fns, func(e *env) { e.P[idx] = v(e) })
		}
	}
	return func(e *env) ctrl {
		for _, f := range fns {
			f(e)
		}
		return ctrlNext
	}
}

func (fc *funcCompiler) returnStmt(x *ast.ReturnStmt) stmtFn {
	if x.X == nil {
		return func(*env) ctrl { return ctrlReturn }
	}
	if fc.cf.retVoid {
		fc.errorf(x, "value returned from void function")
	}
	switch fc.cf.retKind {
	case slotInt:
		v := fc.integer(x.X)
		return func(e *env) ctrl {
			e.retI = v(e)
			return ctrlReturn
		}
	case slotFloat:
		v := fc.num(x.X)
		if fc.sig != nil && fc.sig.Ret.CSize == 4 {
			inner := v
			v = func(e *env) float64 { return float64(float32(inner(e))) }
		}
		return func(e *env) ctrl {
			e.retF = v(e)
			return ctrlReturn
		}
	default:
		v := fc.ptr(x.X)
		return func(e *env) ctrl {
			e.retP = v(e)
			return ctrlReturn
		}
	}
}

func (fc *funcCompiler) switchStmt(x *ast.SwitchStmt) stmtFn {
	tag := fc.integer(x.Tag)
	type ccase struct {
		val   int64
		deflt bool
		body  stmtFn
	}
	var cases []ccase
	for _, c := range x.Cases {
		cc := ccase{body: fc.stmtList(c.Body)}
		if c.Value == nil {
			cc.deflt = true
		} else {
			v, ok := sema.ConstInt(c.Value)
			if !ok {
				fc.errorf(c, "case label must be constant")
			}
			cc.val = v
		}
		cases = append(cases, cc)
	}
	// C fall-through: execution continues into following cases until a
	// break. We execute from the matching case through the rest.
	return func(e *env) ctrl {
		v := tag(e)
		start := -1
		for i, c := range cases {
			if !c.deflt && c.val == v {
				start = i
				break
			}
		}
		if start < 0 {
			for i, c := range cases {
				if c.deflt {
					start = i
					break
				}
			}
		}
		if start < 0 {
			return ctrlNext
		}
		for i := start; i < len(cases); i++ {
			switch cases[i].body(e) {
			case ctrlBreak:
				return ctrlNext
			case ctrlReturn:
				return ctrlReturn
			case ctrlContinue:
				return ctrlContinue
			}
		}
		return ctrlNext
	}
}

// fuseReductions reports whether canonical reduction loops compile to
// fused kernels here: the ICC backend vectorizes extracted pure
// functions, Options.Vectorize extends that everywhere (the PluTo-SICA
// analog), and Options.NoFuse turns the whole engine off.
func (fc *funcCompiler) fuseReductions() bool {
	return !fc.prog.noFuse &&
		((fc.prog.backend == BackendICC && fc.cf.pure) || fc.prog.vectorize)
}

// forStmt compiles a sequential for loop. Inside pure functions the ICC
// backend first tries to replace canonical reduction loops by fused
// kernels (the vectorization analog); element-wise affine loop bodies
// fuse on every backend unless Options.NoFuse.
func (fc *funcCompiler) forStmt(x *ast.ForStmt) stmtFn {
	if fc.fuseReductions() {
		if k := fc.tryVectorize(x); k != nil {
			fc.prog.fusedKernels++
			return k
		}
	}
	if !fc.prog.noFuse {
		if cl, kern := fc.tryFuseLoop(x); kern != nil {
			fc.prog.fusedKernels++
			return seqKernelStmt(cl, kern)
		}
		if cl, kern := fc.tryGatherKernel(x); kern != nil {
			fc.prog.fusedKernels++
			return seqKernelStmt(cl, kern)
		}
		if cl, kern := fc.tryHistKernel(x); kern != nil {
			fc.prog.fusedKernels++
			return seqKernelStmt(cl, kern)
		}
		if cl, _, _, kern := fc.minMaxKernel(x); kern != nil {
			fc.prog.fusedKernels++
			return seqKernelStmt(cl, kern)
		}
	}
	var init stmtFn
	if x.Init != nil {
		init = fc.stmt(x.Init)
	}
	var cond func(*env) bool
	if x.Cond != nil {
		cond = fc.cond(x.Cond)
	} else {
		cond = func(*env) bool { return true }
	}
	var post func(*env)
	if x.Post != nil {
		post = fc.effect(x.Post)
	}
	body := fc.stmt(x.Body)
	return func(e *env) ctrl {
		if init != nil {
			init(e)
		}
		for cond(e) {
			switch body(e) {
			case ctrlBreak:
				return ctrlNext
			case ctrlReturn:
				return ctrlReturn
			}
			if post != nil {
				post(e)
			}
		}
		return ctrlNext
	}
}

// canonicalLoop extracts (iterSlot, lower, upperInclusive, body) from a
// canonical loop "for (int i = LB; i < UB; i++) ...".
type canonicalLoop struct {
	iterSlot int
	lower    intFn
	upper    intFn // inclusive
	body     ast.Stmt
	iterSym  *sema.Symbol
	// lowerX and upperX are the bound expressions (upperX is the raw
	// condition bound, exclusive under <); the fusion engine checks
	// them for hoistability before evaluating bounds once per launch.
	lowerX ast.Expr
	upperX ast.Expr
}

func (fc *funcCompiler) canonical(x *ast.ForStmt) (canonicalLoop, bool) {
	var cl canonicalLoop
	var iterName string
	switch init := x.Init.(type) {
	case *ast.DeclStmt:
		if len(init.Decls) != 1 || init.Decls[0].Init == nil {
			return cl, false
		}
		sym := fc.declSym[init.Decls[0]]
		if sym == nil {
			return cl, false
		}
		sl := fc.slots[sym]
		if sl.kind != slotInt {
			return cl, false
		}
		cl.iterSlot = sl.idx
		cl.iterSym = sym
		cl.lower = fc.integer(init.Decls[0].Init)
		cl.lowerX = init.Decls[0].Init
		iterName = init.Decls[0].Name
	case *ast.ExprStmt:
		as, ok := init.X.(*ast.AssignExpr)
		if !ok || as.Op != token.ASSIGN {
			return cl, false
		}
		id, ok := as.LHS.(*ast.Ident)
		if !ok {
			return cl, false
		}
		sym := fc.symOf(id)
		sl, global := fc.slotOf(sym, id)
		if global || sl.kind != slotInt {
			return cl, false
		}
		cl.iterSlot = sl.idx
		cl.iterSym = sym
		cl.lower = fc.integer(as.RHS)
		cl.lowerX = as.RHS
		iterName = id.Name
	default:
		return cl, false
	}
	condBin, ok := x.Cond.(*ast.BinaryExpr)
	if !ok {
		return cl, false
	}
	condID, ok := condBin.X.(*ast.Ident)
	if !ok || condID.Name != iterName {
		return cl, false
	}
	ub := fc.integer(condBin.Y)
	cl.upperX = condBin.Y
	switch condBin.Op {
	case token.LSS:
		cl.upper = func(e *env) int64 { return ub(e) - 1 }
	case token.LEQ:
		cl.upper = ub
	default:
		return cl, false
	}
	switch post := x.Post.(type) {
	case *ast.PostfixExpr:
		id, ok := post.X.(*ast.Ident)
		if !ok || id.Name != iterName || post.Op != token.INC {
			return cl, false
		}
	case *ast.UnaryExpr:
		id, ok := post.X.(*ast.Ident)
		if !ok || id.Name != iterName || post.Op != token.INC {
			return cl, false
		}
	case *ast.AssignExpr:
		id, ok := post.LHS.(*ast.Ident)
		if !ok || id.Name != iterName || post.Op != token.ADDASSIGN {
			return cl, false
		}
		if v, ok := sema.ConstInt(post.RHS); !ok || v != 1 {
			return cl, false
		}
	default:
		return cl, false
	}
	cl.body = x.Body
	return cl, true
}

// runsInline reports whether a parallel region executes inline on the
// calling environment: nested parallelism is disabled (OpenMP default),
// a missing team means sequential execution, and a real 1-worker team
// runs inline for an honest 1-core baseline. Simulated teams of every
// size — including 1 worker — go through the runtime so their regions
// are accounted (the simulated 1-core baseline would otherwise report
// zero region time).
func runsInline(e *env) bool {
	return e.inParallel || e.team == nil ||
		(e.team.Size() == 1 && !e.team.Simulated())
}

// parallelFor compiles a loop annotated with #pragma omp parallel for.
// Iterations are distributed over the team; each worker executes on a
// cloned environment (private scalars, shared segments), the OpenMP
// private-variable analog. A fusible element-wise body skips the
// per-iteration dispatch entirely: each worker runs the fused kernel
// over its chunk bounds (composing with every schedule, on real and
// simulated teams), reading the parent environment's invariants and
// writing only the shared segments.
func (fc *funcCompiler) parallelFor(x *ast.ForStmt, pragma string) stmtFn {
	cl, ok := fc.canonical(x)
	if !ok {
		fc.errorf(x, "#pragma omp parallel for requires a canonical loop (int i = lb; i < ub; i++)")
	}
	sched, chunk := parseOmpSchedule(pragma)
	if !fc.prog.noFuse {
		fcl, kern := fc.tryFuseLoop(x)
		if kern == nil {
			// Proven-bounded gather nests arrive here once the
			// polyhedral stage parallelizes them; chunked gather kernels
			// are safe because chunks partition the store range and the
			// gathered array is only read.
			fcl, kern = fc.tryGatherKernel(x)
		}
		if kern != nil {
			fc.prog.fusedKernels++
			iterSlot := fcl.iterSlot
			lower, upper := fcl.lower, fcl.upper
			return func(e *env) ctrl {
				lo, hi := lower(e), upper(e)
				if runsInline(e) {
					kern(e, lo, hi)
					if hi >= lo {
						// The dispatch inline loop leaves the last
						// iteration value in the slot.
						e.I[iterSlot] = hi
					}
					return ctrlNext
				}
				e.team.ParallelFor(lo, hi, sched, chunk, func(_ int, clo, chi int64) {
					kern(e, clo, chi)
				})
				return ctrlNext
			}
		}
	}
	body := fc.loopBody(cl.body)
	iterSlot := cl.iterSlot
	return func(e *env) ctrl {
		lo := cl.lower(e)
		hi := cl.upper(e)
		if runsInline(e) {
			for i := lo; i <= hi; i++ {
				e.I[iterSlot] = i
				if c := body(e); c == ctrlBreak {
					break
				} else if c == ctrlReturn {
					return ctrlReturn
				}
			}
			return ctrlNext
		}
		e.team.ParallelFor(lo, hi, sched, chunk, func(w int, clo, chi int64) {
			we := e.clone()
			for i := clo; i <= chi; i++ {
				we.I[iterSlot] = i
				body(we)
			}
		})
		return ctrlNext
	}
}

// redClause is one parsed reduction(op:var) clause entry with the
// operator resolved to its token. array marks the privatized-array
// form reduction(op:A[]) — name then holds the bare array name.
type redClause struct {
	op    token.Kind // ADD, MUL, AND, OR, XOR; LSS/GTR for min/max
	name  string
	array bool
}

// parseOmpReductions extracts the reduction clauses of an omp pragma and
// maps the operator symbols to tokens; min/max clauses map to the
// comparison markers LSS/GTR, and a [] suffix on the variable selects
// the array-reduction form. supported is false when any clause uses
// an operator outside the parallelizable set {+,-,*,&,|,^,min,max}
// (e.g. "/") — the loop must then run serially, which is always
// correct, instead of losing the accumulator updates. "-" reduces by
// negation onto "+": the loop body applies the subtractions, so each
// private partial is the negated sum of its chunk and the partials
// fold back with addition (OpenMP gives "-" the same identity and
// combiner as "+").
func parseOmpReductions(pragma string) (reds []redClause, supported bool) {
	for _, c := range rt.ParseOmpReductions(pragma) {
		var op token.Kind
		switch c.Op {
		case "+":
			op = token.ADD
		case "-":
			op = token.SUB
		case "*":
			op = token.MUL
		case "&":
			op = token.AND
		case "|":
			op = token.OR
		case "^":
			op = token.XOR
		case "min":
			op = token.LSS
		case "max":
			op = token.GTR
		default:
			return nil, false
		}
		name, isArr := strings.CutSuffix(c.Var, "[]")
		reds = append(reds, redClause{op: op, name: name, array: isArr})
	}
	return reds, true
}

// reduction is a compiled reduction accumulator: identity installation
// into a worker's private environment and the worker-ordered combine
// back into the parent environment.
type reduction struct {
	setIdentity func(we *env)
	combine     func(dst, src *env)
}

// declaredInside returns the variable declarations nested under n; a
// reduction clause can only name a variable from the enclosing scope,
// so symbols declared inside the annotated loop (which shadow it and
// are automatically private) must not bind the clause.
func declaredInside(n ast.Node) map[*ast.VarDecl]bool {
	out := map[*ast.VarDecl]bool{}
	ast.Walk(n, func(m ast.Node) bool {
		if d, ok := m.(*ast.DeclStmt); ok {
			for _, vd := range d.Decls {
				out[vd] = true
			}
		}
		return true
	})
	return out
}

// resolveReduction binds a clause to the accumulator's frame slot by
// locating the `name op= expr` assignment in the loop body, skipping
// updates of loop-local shadows of the name. found reports whether a
// matching enclosing-scope accumulator update exists at all (a clause
// without one is a malformed pragma); ok additionally requires a
// privatizable local slot. A non-scalar accumulator is a compile error
// (mirroring the interp oracle's validation).
func (fc *funcCompiler) resolveReduction(body ast.Stmt, c redClause) (r reduction, found, ok bool) {
	if c.op == token.LSS || c.op == token.GTR {
		return fc.resolveMinMax(body, c)
	}
	inner := declaredInside(body)
	var sym *sema.Symbol
	var site *ast.Ident
	for _, as := range ast.Assignments(body) {
		bin, okOp := as.Op.AssignBinOp()
		matches := okOp && bin == c.op
		if !matches && c.op == token.SUB && as.Op == token.ASSIGN {
			// Plain form of a "-" clause: s = s - e (only the
			// left-anchored form is a reduction — s = e - s is not).
			if b, okB := stripParens(as.RHS).(*ast.BinaryExpr); okB && b.Op == token.SUB {
				if x, okX := stripParens(b.X).(*ast.Ident); okX && x.Name == c.name {
					matches = true
				}
			}
		}
		if !matches {
			continue
		}
		id, okID := as.LHS.(*ast.Ident)
		if !okID || id.Name != c.name {
			continue
		}
		s := fc.prog.info.Ref[id]
		if s == nil || (s.Decl != nil && inner[s.Decl]) {
			continue // loop-local shadow: automatically private
		}
		sym = s
		site = id
		break
	}
	if sym == nil {
		return reduction{}, false, false
	}
	if sym.Kind == sema.SymGlobal {
		// Global accumulators live in Process storage shared by every
		// worker — they cannot be privatized through the frame clone.
		return reduction{}, true, false
	}
	sl, global := fc.slotOf(sym, site)
	if global {
		return reduction{}, true, false
	}
	if sl.kind == slotPtr {
		fc.errorf(site, "reduction accumulator %s must be a scalar", c.name)
	}
	idx := sl.idx
	switch sl.kind {
	case slotInt:
		var identity int64
		var fold func(a, b int64) int64
		switch c.op {
		case token.ADD:
			identity, fold = 0, func(a, b int64) int64 { return a + b }
		case token.SUB:
			// Negation onto "+": the body subtracts into a zero-seeded
			// private, so each partial is −(chunk sum) and partials add.
			identity, fold = 0, func(a, b int64) int64 { return a + b }
		case token.MUL:
			identity, fold = 1, func(a, b int64) int64 { return a * b }
		case token.AND:
			identity, fold = -1, func(a, b int64) int64 { return a & b }
		case token.OR:
			identity, fold = 0, func(a, b int64) int64 { return a | b }
		case token.XOR:
			identity, fold = 0, func(a, b int64) int64 { return a ^ b }
		default:
			return reduction{}, true, false
		}
		return reduction{
			setIdentity: func(we *env) { we.I[idx] = identity },
			combine:     func(dst, src *env) { dst.I[idx] = fold(dst.I[idx], src.I[idx]) },
		}, true, true
	case slotFloat:
		var identity float64
		var fold func(a, b float64) float64
		switch c.op {
		case token.ADD:
			identity, fold = 0, func(a, b float64) float64 { return a + b }
		case token.SUB:
			identity, fold = 0, func(a, b float64) float64 { return a + b }
		case token.MUL:
			identity, fold = 1, func(a, b float64) float64 { return a * b }
		default:
			return reduction{}, true, false
		}
		// C float accumulators round every stored value through float32;
		// the combine is a store and rounds the same way.
		if sym.Type != nil && sym.Type.CSize == 4 {
			inner := fold
			fold = func(a, b float64) float64 { return float64(float32(inner(a, b))) }
		}
		return reduction{
			setIdentity: func(we *env) { we.F[idx] = identity },
			combine:     func(dst, src *env) { dst.F[idx] = fold(dst.F[idx], src.F[idx]) },
		}, true, true
	}
	return reduction{}, true, false
}

// resolveMinMax binds a min/max reduction clause (op LSS = min,
// GTR = max) to its accumulator: the loop body must contain a guarded
// update of the named variable in the clause's direction —
// `if (x < m) m = x;` or `m = x < m ? x : m;` (see ast.MinMaxUpdate).
// found reports whether any plain assignment to the name binds the
// enclosing scope at all (a clause without one is a malformed pragma,
// mirroring the interp oracle); ok additionally requires the matching
// pattern and a privatizable local scalar slot — otherwise the loop
// runs serially, which is always correct.
//
// The identity values are the comparison's absorbing elements
// (MaxInt64/+Inf for min, MinInt64/−Inf for max) and the combine is
// the strict-comparison fold itself — NaN data never replaces an
// accumulator, exactly like the guarded update in the loop body.
func (fc *funcCompiler) resolveMinMax(body ast.Stmt, c redClause) (r reduction, found, ok bool) {
	inner := declaredInside(body)
	for _, as := range ast.Assignments(body) {
		if as.Op != token.ASSIGN {
			continue
		}
		id, okID := as.LHS.(*ast.Ident)
		if !okID || id.Name != c.name {
			continue
		}
		s := fc.prog.info.Ref[id]
		if s == nil || (s.Decl != nil && inner[s.Decl]) {
			continue
		}
		found = true
		break
	}
	if !found {
		return reduction{}, false, false
	}
	var site *ast.Ident
	ast.Walk(body, func(n ast.Node) bool {
		if site != nil {
			return false
		}
		s, okS := n.(ast.Stmt)
		if !okS {
			return true
		}
		m, _, dir, okM := ast.MinMaxUpdate(s)
		if !okM || m.Name != c.name || dir != c.op {
			return true
		}
		sym := fc.prog.info.Ref[m]
		if sym == nil || (sym.Decl != nil && inner[sym.Decl]) {
			return true
		}
		site = m
		return false
	})
	if site == nil {
		return reduction{}, true, false
	}
	sym := fc.prog.info.Ref[site]
	if sym.Kind == sema.SymGlobal {
		return reduction{}, true, false
	}
	sl, global := fc.slotOf(sym, site)
	if global {
		return reduction{}, true, false
	}
	if sl.kind == slotPtr {
		fc.errorf(site, "reduction accumulator %s must be a scalar", c.name)
	}
	idx := sl.idx
	min := c.op == token.LSS
	switch sl.kind {
	case slotInt:
		identity := int64(math.MaxInt64)
		if !min {
			identity = math.MinInt64
		}
		return reduction{
			setIdentity: func(we *env) { we.I[idx] = identity },
			combine: func(dst, src *env) {
				if min {
					if src.I[idx] < dst.I[idx] {
						dst.I[idx] = src.I[idx]
					}
				} else if src.I[idx] > dst.I[idx] {
					dst.I[idx] = src.I[idx]
				}
			},
		}, true, true
	case slotFloat:
		identity := math.Inf(1)
		if !min {
			identity = math.Inf(-1)
		}
		return reduction{
			setIdentity: func(we *env) { we.F[idx] = identity },
			combine: func(dst, src *env) {
				if min {
					if src.F[idx] < dst.F[idx] {
						dst.F[idx] = src.F[idx]
					}
				} else if src.F[idx] > dst.F[idx] {
					dst.F[idx] = src.F[idx]
				}
			},
		}, true, true
	}
	return reduction{}, true, false
}

// parallelReduceFor compiles a loop annotated with
// #pragma omp parallel for reduction(op:s): iterations are distributed
// over the team through rt.Team.ParallelForReduce — every worker
// accumulates into a private clone whose accumulator slots start at the
// operator identity, and the partials fold back in worker order 0..n-1
// (the determinism contract: integer reductions are exact everywhere;
// float reductions are reproducible at a fixed team size under static
// schedules and in simulated mode).
//
// Inline execution (nested regions, no team, real 1-worker teams) keeps
// the plain sequential accumulation order, so those runs stay
// bit-identical to the serial build and the interp oracle even for
// floats — and the ICC fused-kernel vectorization of canonical
// reduction loops in pure functions still applies there.
//
// Clauses with operators outside the parallelizable set (e.g. "/"),
// min/max clauses whose loop body lacks the guarded-update pattern,
// and accumulators that cannot be privatized (globals) compile to
// serial execution of the loop — always correct, never silently
// wrong. A clause naming no matching accumulator update at all is a
// malformed pragma and a compile error, mirroring parallelFor's
// canonical-loop diagnostic and the interp oracle's validation.
func (fc *funcCompiler) parallelReduceFor(x *ast.ForStmt, pragma string) stmtFn {
	cl, ok := fc.canonical(x)
	if !ok {
		fc.errorf(x, "#pragma omp parallel for requires a canonical loop (int i = lb; i < ub; i++)")
	}
	clauses, supported := parseOmpReductions(pragma)
	if !supported {
		return fc.stmt(x)
	}
	reds := make([]reduction, 0, len(clauses))
	hasArray := false
	for _, c := range clauses {
		var r reduction
		var found, ok bool
		if c.array {
			r, found, ok = fc.resolveArrayReduction(x.Body, c)
		} else {
			r, found, ok = fc.resolveReduction(x.Body, c)
		}
		if !found {
			if c.array {
				fc.errorf(x, "reduction clause names %s[], but the loop has no matching '%s[...] %s=' update", c.name, c.name, c.op)
			} else {
				fc.errorf(x, "reduction clause names %s, but the loop has no matching '%s %s=' update", c.name, c.name, c.op)
			}
		}
		if !ok {
			return fc.stmt(x)
		}
		hasArray = hasArray || c.array
		reds = append(reds, r)
	}
	// A fusible reduction body composes with the parallel runtime: each
	// worker runs the fused kernel over its chunk bounds, accumulating
	// into its private clone's identity-initialized accumulator slot
	// (the body is the single statement updating the clause accumulator,
	// so the kernel's accumulator and the clause's coincide), and the
	// partials fold back in worker order exactly like the dispatch path.
	// Array-reduction bodies use the gather-update kernel: the worker's
	// cloned pointer slot aims it at the private copy.
	var vecChunk kernRun
	if hasArray {
		if !fc.prog.noFuse {
			if _, kern := fc.tryHistKernel(x); kern != nil {
				vecChunk = kern
				fc.prog.fusedKernels++
			}
		}
	} else if fc.fuseReductions() {
		if _, kern := fc.reduceKernel(x); kern != nil {
			vecChunk = kern
			fc.prog.fusedKernels++
		}
	}
	// Min/max clauses fuse on every backend (like the element-wise
	// kernels): the fold is the clause's own guarded update, so the
	// kernel must match the single clause's accumulator and direction.
	if vecChunk == nil && !hasArray && !fc.prog.noFuse && len(clauses) == 1 {
		c := clauses[0]
		if _, name, dir, kern := fc.minMaxKernel(x); kern != nil && name == c.name && dir == c.op {
			vecChunk = kern
			fc.prog.fusedKernels++
		}
	}
	sched, chunk := parseOmpSchedule(pragma)
	body := fc.loopBody(cl.body)
	iterSlot := cl.iterSlot
	return func(e *env) ctrl {
		if runsInline(e) {
			lo := cl.lower(e)
			hi := cl.upper(e)
			if vecChunk != nil {
				vecChunk(e, lo, hi)
				if hi >= lo {
					e.I[iterSlot] = hi
				}
				return ctrlNext
			}
			for i := lo; i <= hi; i++ {
				e.I[iterSlot] = i
				if c := body(e); c == ctrlBreak {
					break
				} else if c == ctrlReturn {
					return ctrlReturn
				}
			}
			return ctrlNext
		}
		init := func(int) any {
			we := e.clone()
			for _, r := range reds {
				r.setIdentity(we)
			}
			return we
		}
		bodyFn := func(_ int, clo, chi int64, acc any) any {
			we := acc.(*env)
			if vecChunk != nil {
				vecChunk(we, clo, chi)
				return we
			}
			for i := clo; i <= chi; i++ {
				we.I[iterSlot] = i
				body(we)
			}
			return we
		}
		combineFn := func(_ int, acc any) {
			we := acc.(*env)
			for _, r := range reds {
				r.combine(e, we)
			}
		}
		// Under the tree topology the runtime also merges partials into
		// partials; the clause combines apply pairwise to the worker
		// clones, and the surviving clone folds into the caller through
		// combineFn exactly once.
		opts := rt.ReduceOptions{Combine: fc.prog.combine}
		if opts.Combine == rt.CombineTree {
			opts.Merge = func(dst, src any) any {
				d, s := dst.(*env), src.(*env)
				for _, r := range reds {
					r.combine(d, s)
				}
				return d
			}
		}
		if hasArray {
			// Array reductions allocate O(len) private copies: the
			// lazy-allocating runtime entry point skips workers that
			// never receive a chunk and charges the element-wise
			// combine pass on the simulated critical path.
			e.team.ParallelForReduceArrayOpts(cl.lower(e), cl.upper(e), sched, chunk, opts,
				init, bodyFn, combineFn)
		} else {
			e.team.ParallelForReduceOpts(cl.lower(e), cl.upper(e), sched, chunk, opts,
				init, bodyFn, combineFn)
		}
		return ctrlNext
	}
}

// parseOmpSchedule extracts the schedule clause of an omp pragma.
func parseOmpSchedule(pragma string) (rt.Schedule, int) {
	i := strings.Index(pragma, "schedule(")
	if i < 0 {
		return rt.Static, 0
	}
	rest := pragma[i+len("schedule("):]
	j := strings.IndexByte(rest, ')')
	if j < 0 {
		return rt.Static, 0
	}
	s, c, err := rt.ParseSchedule(strings.TrimSpace(rest[:j]))
	if err != nil {
		return rt.Static, 0
	}
	return s, c
}
