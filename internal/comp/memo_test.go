package comp

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"purec/internal/interp"
	"purec/internal/parser"
	"purec/internal/rt"
	"purec/internal/sema"
)

// memoWorkload exercises every memoization path: a memoizable scalar
// kernel called with heavily repeated arguments (integer and float), a
// pointer-taking pure helper that must bypass the table, and printf
// output so stdout comparison catches any drift.
const memoWorkload = `
float acc[64];

pure int kernel(int x, int budget) {
    int r = 0;
    for (int i = 0; i < budget; i++)
        r += (x * i + 3) % 11;
    return r;
}

pure float fkernel(float x) {
    float s = 0.0f;
    for (int i = 0; i < 50; i++)
        s += sqrt(x + (float)i);
    return s;
}

pure float fsum(pure float* v, int n) {
    float s = 0.0f;
    for (int i = 0; i < n; i++)
        s += v[i];
    return s;
}

int main(void) {
    int total = 0;
    for (int i = 0; i < 512; i++)
        total += kernel(i % 16, 40);
    for (int i = 0; i < 64; i++)
        acc[i] = fkernel((float)(i % 8));
    float fs = fsum((pure float*)acc, 64);
    printf("total=%d fs=%f\n", total, fs);
    return total % 97;
}
`

// TestMemoizedMatchesOracle is the memoization acceptance gate: one
// memoizing Program runs in 12 concurrent Processes that share the
// Program's memo table, and every result — return value, stdout bytes,
// global float array — must be bit-identical to the sequential interp
// oracle. Run under -race this also proves the shared table is safe.
func TestMemoizedMatchesOracle(t *testing.T) {
	f, err := parser.Parse("t.c", memoWorkload)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	prog, err := CompileProgram(info, Options{Memoize: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if got := len(prog.Memoizable()); got != 2 {
		t.Fatalf("memoizable functions = %v, want kernel and fkernel", prog.Memoizable())
	}

	var oracleOut bytes.Buffer
	in2, err := interp.New(info, &oracleOut)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	want, err := in2.RunMain()
	if err != nil {
		t.Fatalf("interp run: %v", err)
	}
	wantAcc, err := in2.GlobalPtr("acc")
	if err != nil {
		t.Fatal(err)
	}

	const procs = 12
	var wg sync.WaitGroup
	errs := make(chan error, procs)
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out bytes.Buffer
			proc, err := prog.NewProcess(ProcOptions{
				Team:   rt.NewTeam(1 + i%4),
				Stdout: &out,
			})
			if err != nil {
				errs <- fmt.Errorf("process %d: %v", i, err)
				return
			}
			got, err := proc.RunMain()
			if err != nil {
				errs <- fmt.Errorf("process %d: run: %v", i, err)
				return
			}
			if got != want {
				errs <- fmt.Errorf("process %d: returned %d, oracle %d", i, got, want)
				return
			}
			if out.String() != oracleOut.String() {
				errs <- fmt.Errorf("process %d: stdout %q, oracle %q", i, out.String(), oracleOut.String())
				return
			}
			accPtr, err := proc.GlobalPtr("acc")
			if err != nil {
				errs <- fmt.Errorf("process %d: %v", i, err)
				return
			}
			for j := int64(0); j < 64; j++ {
				if g, w := accPtr.Add(j).LoadFloat(), wantAcc.Add(j).LoadFloat(); g != w {
					errs <- fmt.Errorf("process %d: acc[%d] = %v, oracle %v", i, j, g, w)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	s := prog.MemoStats()
	if s.Hits == 0 {
		t.Fatalf("shared table recorded no hits across %d processes: %+v", procs, s)
	}
	if s.Bypassed == 0 {
		t.Fatalf("pointer-taking pure call was not counted as bypassed: %+v", s)
	}
}

// TestMemoizedMatchesUnmemoized compares a memoizing build against a
// plain build of the same program: results must be bit-identical.
func TestMemoizedMatchesUnmemoized(t *testing.T) {
	runOnce := func(opts Options) (int64, string) {
		t.Helper()
		prog := compileProgram(t, memoWorkload, opts)
		var out bytes.Buffer
		proc, err := prog.NewProcess(ProcOptions{Stdout: &out})
		if err != nil {
			t.Fatal(err)
		}
		v, err := proc.RunMain()
		if err != nil {
			t.Fatal(err)
		}
		return v, out.String()
	}
	v1, o1 := runOnce(Options{})
	v2, o2 := runOnce(Options{Memoize: true})
	if v1 != v2 || o1 != o2 {
		t.Fatalf("memoized run diverged: %d/%q vs %d/%q", v1, o1, v2, o2)
	}
}

// TestPrivateMemoIsolation: a PrivateMemo Process keeps its own table,
// so its stats are independent of the Program-shared one.
func TestPrivateMemoIsolation(t *testing.T) {
	prog := compileProgram(t, memoWorkload, Options{Memoize: true, MemoCapacity: 128})
	priv, err := prog.NewProcess(ProcOptions{Stdout: &bytes.Buffer{}, PrivateMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if priv.MemoTable() == prog.Memo() {
		t.Fatal("PrivateMemo process shares the Program table")
	}
	if _, err := priv.RunMain(); err != nil {
		t.Fatal(err)
	}
	if s := priv.MemoStats(); s.Hits == 0 {
		t.Fatalf("private table unused: %+v", s)
	}
	if s := prog.MemoStats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("private run leaked into the shared table: %+v", s)
	}

	// An explicit table override wins over PrivateMemo and is shared by
	// whoever holds it.
	shared, err := prog.NewProcess(ProcOptions{Stdout: &bytes.Buffer{}, Memo: priv.MemoTable(), PrivateMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if shared.MemoTable() != priv.MemoTable() {
		t.Fatal("explicit Memo option ignored")
	}
}

// TestNoMemoWithoutOption: without Options.Memoize no table exists and
// stats stay zero.
func TestNoMemoWithoutOption(t *testing.T) {
	prog := compileProgram(t, memoWorkload, Options{})
	if prog.Memo() != nil {
		t.Fatal("non-memoizing program carries a table")
	}
	proc, err := prog.NewProcess(ProcOptions{Stdout: &bytes.Buffer{}})
	if err != nil {
		t.Fatal(err)
	}
	if proc.MemoTable() != nil {
		t.Fatal("process of a non-memoizing program carries a table")
	}
	if _, err := proc.RunMain(); err != nil {
		t.Fatal(err)
	}
	if s := proc.MemoStats(); s != (prog.MemoStats()) {
		t.Fatalf("stats should be zero: %+v", s)
	}
}
