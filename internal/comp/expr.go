package comp

import (
	"fmt"
	"math"

	"purec/internal/ast"
	"purec/internal/mem"
	"purec/internal/sema"
	"purec/internal/token"
	"purec/internal/types"
)

// compileError aborts compilation of a function; compile() recovers it.
type compileError struct{ err error }

type funcCompiler struct {
	prog *Program
	cf   *cfunc
	// slots maps local/param symbols to frame slots.
	slots map[*sema.Symbol]slot
	// declSym maps declarations to their symbols.
	declSym map[*ast.VarDecl]*sema.Symbol
	sig     *sema.Sig
	// paramBind substitutes closures for parameter symbols while a
	// trivial pure callee is being inlined into this function (the
	// GCC/ICC -O2 inlining analog, see tryInline).
	paramBind   map[*sema.Symbol]valueFns
	inlineDepth int
	// talloc manages the temp register space shared by the function's
	// tapes when compiling under EngineTape (nil under EngineClosure).
	talloc *tapeAlloc
}

func (fc *funcCompiler) errorf(n ast.Node, format string, args ...any) {
	pos := ""
	if n != nil {
		pos = n.Pos().String() + ": "
	}
	panic(compileError{fmt.Errorf("%s%s%s", pos, fmt.Sprintf(format, args...), "")})
}

// compile translates the function body into cf.
func (fc *funcCompiler) compile() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(compileError); ok {
				err = fmt.Errorf("compile %s: %v", fc.cf.name, ce.err)
				return
			}
			panic(r)
		}
	}()
	fc.sig = fc.prog.info.Funcs[fc.cf.name]
	fc.slots = map[*sema.Symbol]slot{}
	fc.declSym = map[*ast.VarDecl]*sema.Symbol{}
	locals := fc.prog.info.FuncLocals[fc.cf.name]
	for _, sym := range locals {
		if sym.Decl != nil {
			fc.declSym[sym.Decl] = sym
		}
		var sl slot
		switch {
		case sym.IsArray():
			sl = slot{slotPtr, fc.cf.nP}
			fc.cf.nP++
			kind, kerr := cellKindOf(sym.Type.BaseElem())
			if kerr != nil {
				fc.errorf(sym.Decl, "%v", kerr)
			}
			cells := 1
			for _, d := range sym.Dims {
				cells *= d
			}
			fc.cf.arrays = append(fc.cf.arrays, arrayAlloc{
				slot: sl.idx, kind: kind, cells: cells,
				name: fc.cf.name + "." + sym.Name,
			})
		case sym.Type.Kind == types.Struct:
			sl = slot{slotPtr, fc.cf.nP}
			fc.cf.nP++
			fc.cf.arrays = append(fc.cf.arrays, arrayAlloc{
				slot: sl.idx, kind: mem.CellMixed, cells: structCells(sym.Type),
				name: fc.cf.name + "." + sym.Name,
			})
		default:
			k, kerr := slotForType(sym.Type)
			if kerr != nil {
				fc.errorf(sym.Decl, "%v", kerr)
			}
			switch k {
			case slotInt:
				sl = slot{slotInt, fc.cf.nI}
				fc.cf.nI++
			case slotFloat:
				sl = slot{slotFloat, fc.cf.nF}
				fc.cf.nF++
			case slotPtr:
				sl = slot{slotPtr, fc.cf.nP}
				fc.cf.nP++
			}
		}
		fc.slots[sym] = sl
		if sym.Kind == sema.SymParam {
			fc.cf.params = append(fc.cf.params, sl)
		}
	}
	if fc.sig != nil {
		if fc.sig.Ret.IsVoid() {
			fc.cf.retVoid = true
		} else {
			k, kerr := slotForType(fc.sig.Ret)
			if kerr != nil {
				fc.errorf(fc.cf.decl, "%v", kerr)
			}
			fc.cf.retKind = k
		}
	}
	if fc.prog.engine == EngineTape {
		fc.compileTapeBody()
	} else {
		fc.cf.body = fc.block(fc.cf.decl.Body)
	}
	return nil
}

// symOf resolves an identifier use.
func (fc *funcCompiler) symOf(id *ast.Ident) *sema.Symbol {
	sym := fc.prog.info.Ref[id]
	if sym == nil {
		fc.errorf(id, "unresolved identifier %s", id.Name)
	}
	return sym
}

// typeOf returns the checked type of an expression.
func (fc *funcCompiler) typeOf(e ast.Expr) *types.Type {
	t := fc.prog.info.ExprType[e]
	if t == nil {
		fc.errorf(e, "expression has no type information (was the file re-checked after transformation?)")
	}
	return t
}

// ----------------------------------------------------------------------------
// Typed expression compilation

// num compiles an arithmetic expression to a float closure, converting
// integers.
func (fc *funcCompiler) num(e ast.Expr) fltFn {
	t := fc.typeOf(e)
	if t.Kind == types.Float {
		return fc.flt(e)
	}
	f := fc.integer(e)
	return func(env *env) float64 { return float64(f(env)) }
}

// integer compiles an expression of integer type (coercing floats by C
// truncation when needed).
func (fc *funcCompiler) integer(e ast.Expr) intFn {
	t := fc.typeOf(e)
	if t.Kind == types.Float {
		f := fc.flt(e)
		return func(env *env) int64 { return int64(f(env)) }
	}
	if t.Kind == types.Ptr {
		fc.errorf(e, "pointer used in integer context")
	}
	return fc.intExpr(e)
}

func (fc *funcCompiler) intExpr(e ast.Expr) intFn {
	switch x := e.(type) {
	case *ast.IntLit:
		v := x.Value
		return func(*env) int64 { return v }
	case *ast.CharLit:
		v := x.Value
		return func(*env) int64 { return v }
	case *ast.Ident:
		sym := fc.symOf(x)
		if b, ok := fc.paramBind[sym]; ok {
			return b.i
		}
		sl, global := fc.slotOf(sym, x)
		if global {
			idx := sl.idx
			return func(e *env) int64 { return e.p.gI[idx] }
		}
		idx := sl.idx
		return func(e *env) int64 { return e.I[idx] }
	case *ast.ParenExpr:
		return fc.intExpr(x.X)
	case *ast.BinaryExpr:
		return fc.intBinary(x)
	case *ast.UnaryExpr:
		return fc.intUnary(x)
	case *ast.PostfixExpr:
		// x++ as int expression: return old value
		get, set := fc.intLvalue(x.X)
		delta := int64(1)
		if x.Op == token.DEC {
			delta = -1
		}
		return func(e *env) int64 {
			v := get(e)
			set(e, v+delta)
			return v
		}
	case *ast.AssignExpr:
		eff, val := fc.assign(x)
		return func(e *env) int64 {
			eff(e)
			return val.i(e)
		}
	case *ast.CondExpr:
		c := fc.cond(x.Cond)
		a := fc.integer(x.Then)
		b := fc.integer(x.Else)
		return func(e *env) int64 {
			if c(e) {
				return a(e)
			}
			return b(e)
		}
	case *ast.IndexExpr:
		addr := fc.addr(x)
		return func(e *env) int64 { return addr(e).LoadInt() }
	case *ast.MemberExpr:
		addr := fc.addr(x)
		return func(e *env) int64 { return addr(e).LoadInt() }
	case *ast.CastExpr:
		t := fc.typeOf(x)
		switch t.Kind {
		case types.Int:
			inner := fc.typeOf(x.X)
			if inner.Kind == types.Float {
				f := fc.flt(x.X)
				return func(e *env) int64 { return int64(f(e)) }
			}
			return fc.intExpr(x.X)
		}
		fc.errorf(e, "unsupported cast to %s in integer context", t)
	case *ast.SizeofExpr:
		v := fc.sizeofValue(x)
		return func(*env) int64 { return v }
	case *ast.CallExpr:
		return fc.callInt(x)
	case *ast.StringLit:
		fc.errorf(e, "string literal in integer context")
	}
	fc.errorf(e, "unsupported integer expression %T", e)
	return nil
}

func (fc *funcCompiler) sizeofValue(x *ast.SizeofExpr) int64 {
	if x.Type != nil {
		t, err := types.FromAST(x.Type, func(tag string) (*types.Type, error) {
			if st, ok := fc.prog.info.Structs[tag]; ok {
				return st, nil
			}
			return nil, fmt.Errorf("unknown struct %s", tag)
		})
		if err != nil {
			fc.errorf(x, "%v", err)
		}
		return int64(t.CSize)
	}
	t := fc.typeOf(x.X)
	return int64(t.CSize)
}

func (fc *funcCompiler) intBinary(x *ast.BinaryExpr) intFn {
	tl, tr := fc.typeOf(x.X), fc.typeOf(x.Y)
	// comparisons and logical ops
	switch x.Op {
	case token.LAND:
		a, b := fc.cond(x.X), fc.cond(x.Y)
		return func(e *env) int64 {
			if !a(e) {
				return 0
			}
			if b(e) {
				return 1
			}
			return 0
		}
	case token.LOR:
		a, b := fc.cond(x.X), fc.cond(x.Y)
		return func(e *env) int64 {
			if a(e) {
				return 1
			}
			if b(e) {
				return 1
			}
			return 0
		}
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return fc.compare(x)
	}
	if tl.IsPtr() || tr.IsPtr() {
		// pointer difference
		if x.Op == token.SUB && tl.IsPtr() && tr.IsPtr() {
			a, b := fc.ptr(x.X), fc.ptr(x.Y)
			stride := elemStride(tl.Elem)
			return func(e *env) int64 {
				d, err := a(e).DiffChecked(b(e))
				if err != nil {
					rtPanic("%v", err)
				}
				return d / stride
			}
		}
		fc.errorf(x, "invalid pointer arithmetic in integer context")
	}
	a := fc.integer(x.X)
	b := fc.integer(x.Y)
	switch x.Op {
	case token.ADD:
		return func(e *env) int64 { return a(e) + b(e) }
	case token.SUB:
		return func(e *env) int64 { return a(e) - b(e) }
	case token.MUL:
		return func(e *env) int64 { return a(e) * b(e) }
	case token.QUO:
		return func(e *env) int64 {
			d := b(e)
			if d == 0 {
				rtPanic("integer division by zero")
			}
			return a(e) / d
		}
	case token.REM:
		return func(e *env) int64 {
			d := b(e)
			if d == 0 {
				rtPanic("integer modulo by zero")
			}
			return a(e) % d
		}
	case token.AND:
		return func(e *env) int64 { return a(e) & b(e) }
	case token.OR:
		return func(e *env) int64 { return a(e) | b(e) }
	case token.XOR:
		return func(e *env) int64 { return a(e) ^ b(e) }
	case token.SHL:
		return func(e *env) int64 { return a(e) << uint(b(e)) }
	case token.SHR:
		return func(e *env) int64 { return a(e) >> uint(b(e)) }
	}
	fc.errorf(x, "unsupported integer operator %s", x.Op)
	return nil
}

// compare compiles a comparison of arithmetic or pointer operands.
func (fc *funcCompiler) compare(x *ast.BinaryExpr) intFn {
	tl, tr := fc.typeOf(x.X), fc.typeOf(x.Y)
	if tl.IsPtr() && tr.IsPtr() {
		a, b := fc.ptr(x.X), fc.ptr(x.Y)
		op := x.Op
		return func(e *env) int64 {
			pa, pb := a(e), b(e)
			var r bool
			switch op {
			case token.EQL:
				r = pa == pb
			case token.NEQ:
				r = pa != pb
			case token.LSS:
				r = pa.Off < pb.Off
			case token.LEQ:
				r = pa.Off <= pb.Off
			case token.GTR:
				r = pa.Off > pb.Off
			case token.GEQ:
				r = pa.Off >= pb.Off
			}
			if r {
				return 1
			}
			return 0
		}
	}
	if tl.Kind == types.Float || tr.Kind == types.Float {
		a, b := fc.num(x.X), fc.num(x.Y)
		op := x.Op
		return func(e *env) int64 {
			va, vb := a(e), b(e)
			var r bool
			switch op {
			case token.EQL:
				r = va == vb
			case token.NEQ:
				r = va != vb
			case token.LSS:
				r = va < vb
			case token.LEQ:
				r = va <= vb
			case token.GTR:
				r = va > vb
			case token.GEQ:
				r = va >= vb
			}
			if r {
				return 1
			}
			return 0
		}
	}
	a, b := fc.integer(x.X), fc.integer(x.Y)
	op := x.Op
	return func(e *env) int64 {
		va, vb := a(e), b(e)
		var r bool
		switch op {
		case token.EQL:
			r = va == vb
		case token.NEQ:
			r = va != vb
		case token.LSS:
			r = va < vb
		case token.LEQ:
			r = va <= vb
		case token.GTR:
			r = va > vb
		case token.GEQ:
			r = va >= vb
		}
		if r {
			return 1
		}
		return 0
	}
}

func (fc *funcCompiler) intUnary(x *ast.UnaryExpr) intFn {
	switch x.Op {
	case token.SUB:
		a := fc.integer(x.X)
		return func(e *env) int64 { return -a(e) }
	case token.NOT:
		a := fc.cond(x.X)
		return func(e *env) int64 {
			if a(e) {
				return 0
			}
			return 1
		}
	case token.TILDE:
		a := fc.integer(x.X)
		return func(e *env) int64 { return ^a(e) }
	case token.MUL:
		addr := fc.addr(x)
		return func(e *env) int64 { return addr(e).LoadInt() }
	case token.INC, token.DEC:
		get, set := fc.intLvalue(x.X)
		delta := int64(1)
		if x.Op == token.DEC {
			delta = -1
		}
		return func(e *env) int64 {
			v := get(e) + delta
			set(e, v)
			return v
		}
	}
	fc.errorf(x, "unsupported unary operator %s in integer context", x.Op)
	return nil
}

// cond compiles any scalar expression to a boolean closure.
func (fc *funcCompiler) cond(e ast.Expr) func(*env) bool {
	t := fc.typeOf(e)
	switch t.Kind {
	case types.Float:
		f := fc.flt(e)
		return func(env *env) bool { return f(env) != 0 }
	case types.Ptr:
		p := fc.ptr(e)
		return func(env *env) bool { return !p(env).IsNull() }
	default:
		f := fc.intExpr(e)
		return func(env *env) bool { return f(env) != 0 }
	}
}

// flt compiles a float-typed expression.
func (fc *funcCompiler) flt(e ast.Expr) fltFn {
	switch x := e.(type) {
	case *ast.FloatLit:
		v := x.Value
		return func(*env) float64 { return v }
	case *ast.IntLit:
		v := float64(x.Value)
		return func(*env) float64 { return v }
	case *ast.Ident:
		sym := fc.symOf(x)
		if b, ok := fc.paramBind[sym]; ok {
			return b.f
		}
		sl, global := fc.slotOf(sym, x)
		if global {
			idx := sl.idx
			return func(e *env) float64 { return e.p.gF[idx] }
		}
		idx := sl.idx
		return func(e *env) float64 { return e.F[idx] }
	case *ast.ParenExpr:
		return fc.flt(x.X)
	case *ast.BinaryExpr:
		a, b := fc.num(x.X), fc.num(x.Y)
		switch x.Op {
		case token.ADD:
			return func(e *env) float64 { return a(e) + b(e) }
		case token.SUB:
			return func(e *env) float64 { return a(e) - b(e) }
		case token.MUL:
			return func(e *env) float64 { return a(e) * b(e) }
		case token.QUO:
			return func(e *env) float64 { return a(e) / b(e) }
		}
		fc.errorf(x, "unsupported float operator %s", x.Op)
	case *ast.UnaryExpr:
		switch x.Op {
		case token.SUB:
			a := fc.num(x.X)
			return func(e *env) float64 { return -a(e) }
		case token.MUL:
			addr := fc.addr(x)
			return func(e *env) float64 { return addr(e).LoadFloat() }
		case token.INC, token.DEC:
			get, set := fc.fltLvalue(x.X)
			d := 1.0
			if x.Op == token.DEC {
				d = -1
			}
			return func(e *env) float64 {
				v := get(e) + d
				set(e, v)
				return v
			}
		}
		fc.errorf(x, "unsupported unary %s in float context", x.Op)
	case *ast.PostfixExpr:
		get, set := fc.fltLvalue(x.X)
		d := 1.0
		if x.Op == token.DEC {
			d = -1
		}
		return func(e *env) float64 {
			v := get(e)
			set(e, v+d)
			return v
		}
	case *ast.AssignExpr:
		eff, val := fc.assign(x)
		return func(e *env) float64 {
			eff(e)
			return val.f(e)
		}
	case *ast.CondExpr:
		c := fc.cond(x.Cond)
		a := fc.num(x.Then)
		b := fc.num(x.Else)
		return func(e *env) float64 {
			if c(e) {
				return a(e)
			}
			return b(e)
		}
	case *ast.IndexExpr:
		addr := fc.addr(x)
		return func(e *env) float64 { return addr(e).LoadFloat() }
	case *ast.MemberExpr:
		addr := fc.addr(x)
		return func(e *env) float64 { return addr(e).LoadFloat() }
	case *ast.CastExpr:
		inner := fc.typeOf(x.X)
		if inner.Kind == types.Float {
			f := fc.flt(x.X)
			if fc.typeOf(x).CSize == 4 {
				// (float) cast of a double: round through float32 like C.
				return func(e *env) float64 { return float64(float32(f(e))) }
			}
			return f
		}
		g := fc.integer(x.X)
		return func(e *env) float64 { return float64(g(e)) }
	case *ast.CallExpr:
		return fc.callFlt(x)
	}
	fc.errorf(e, "unsupported float expression %T", e)
	return nil
}

// ptr compiles a pointer-typed expression.
func (fc *funcCompiler) ptr(e ast.Expr) ptrFn {
	switch x := e.(type) {
	case *ast.Ident:
		sym := fc.symOf(x)
		sl, global := fc.slotOf(sym, x)
		if global {
			idx := sl.idx
			return func(e *env) mem.Pointer { return e.p.gP[idx] }
		}
		idx := sl.idx
		return func(e *env) mem.Pointer { return e.P[idx] }
	case *ast.ParenExpr:
		return fc.ptr(x.X)
	case *ast.IndexExpr:
		// Partial indexing of a multi-dimensional array yields a row
		// pointer; full indexing of a pointer-element array loads it.
		if pf, ok := fc.partialArrayIndex(x); ok {
			return pf
		}
		addr := fc.addr(x)
		return func(e *env) mem.Pointer { return addr(e).LoadPtr() }
	case *ast.MemberExpr:
		// Array field decays to pointer; pointer field loads.
		st, fld := fc.fieldOf(x)
		base := fc.structBase(x)
		off := fld.Offset
		_ = st
		if fld.Count > 1 {
			return func(e *env) mem.Pointer { return base(e).Add(int64(off)) }
		}
		return func(e *env) mem.Pointer { return base(e).Add(int64(off)).LoadPtr() }
	case *ast.CastExpr:
		// (T*)malloc(bytes) — the only way to materialize fresh memory.
		if call, ok := stripParens(x.X).(*ast.CallExpr); ok && call.Fun.Name == "malloc" {
			return fc.mallocCall(x, call)
		}
		inner := fc.typeOf(x.X)
		if inner.Kind == types.Ptr {
			return fc.ptr(x.X)
		}
		if inner.Kind == types.Int {
			// Null-pointer constants.
			g := fc.integer(x.X)
			return func(e *env) mem.Pointer {
				if g(e) != 0 {
					rtPanic("cast of non-zero integer to pointer")
				}
				return mem.Pointer{}
			}
		}
		fc.errorf(x, "unsupported pointer cast from %s", inner)
	case *ast.BinaryExpr:
		tl, tr := fc.typeOf(x.X), fc.typeOf(x.Y)
		switch {
		case tl.IsPtr() && tr.Kind == types.Int:
			p := fc.ptr(x.X)
			i := fc.integer(x.Y)
			stride := elemStride(tl.Elem)
			if x.Op == token.SUB {
				return func(e *env) mem.Pointer { return addScaled(p(e), -i(e), stride) }
			}
			return func(e *env) mem.Pointer { return addScaled(p(e), i(e), stride) }
		case tr.IsPtr() && tl.Kind == types.Int && x.Op == token.ADD:
			p := fc.ptr(x.Y)
			i := fc.integer(x.X)
			stride := elemStride(tr.Elem)
			return func(e *env) mem.Pointer { return addScaled(p(e), i(e), stride) }
		}
		fc.errorf(x, "unsupported pointer arithmetic")
	case *ast.UnaryExpr:
		switch x.Op {
		case token.AND:
			return fc.addr(x.X)
		case token.MUL:
			addr := fc.addr(x)
			return func(e *env) mem.Pointer { return addr(e).LoadPtr() }
		}
		fc.errorf(x, "unsupported unary %s in pointer context", x.Op)
	case *ast.CondExpr:
		c := fc.cond(x.Cond)
		a := fc.ptr(x.Then)
		b := fc.ptr(x.Else)
		return func(e *env) mem.Pointer {
			if c(e) {
				return a(e)
			}
			return b(e)
		}
	case *ast.AssignExpr:
		eff, val := fc.assign(x)
		return func(e *env) mem.Pointer {
			eff(e)
			return val.p(e)
		}
	case *ast.CallExpr:
		if x.Fun.Name == "malloc" {
			fc.errorf(x, "malloc must be cast to its target pointer type, e.g. (int*)malloc(n)")
		}
		return fc.callPtr(x)
	case *ast.IntLit:
		if x.Value == 0 {
			return func(*env) mem.Pointer { return mem.Pointer{} }
		}
		fc.errorf(e, "non-zero integer used as pointer")
	case *ast.StringLit:
		seg := mem.NewSegment(mem.CellInt, len(x.Value)+1, "string")
		for i := 0; i < len(x.Value); i++ {
			seg.I[i] = int64(x.Value[i]) //lint:rawmem fresh segment sized len+1, i < len by the loop bound
		}
		p := mem.Pointer{Seg: seg}
		return func(*env) mem.Pointer { return p }
	}
	fc.errorf(e, "unsupported pointer expression %T", e)
	return nil
}

// partialArrayIndex handles a[i] (or a[i][j]...) where a is a declared
// multi-dimensional array indexed with fewer subscripts than dimensions:
// the result is a pointer into the flattened segment.
func (fc *funcCompiler) partialArrayIndex(x *ast.IndexExpr) (ptrFn, bool) {
	subs, base := collectSubs(x)
	id, ok := base.(*ast.Ident)
	if !ok {
		return nil, false
	}
	sym := fc.prog.info.Ref[id]
	if sym == nil || !sym.IsArray() || len(subs) >= len(sym.Dims) {
		return nil, false
	}
	basePtr := fc.ptr(id)
	offFn := fc.flatOffset(sym, subs)
	// Remaining dimensions contribute a stride multiplier.
	stride := int64(1)
	for _, d := range sym.Dims[len(subs):] {
		stride *= int64(d)
	}
	return func(e *env) mem.Pointer { return basePtr(e).Add(offFn(e) * stride) }, true
}

// flatOffset compiles the row-major offset of the given subscripts over
// the leading dims of sym, in units of the remaining-dimension stride.
func (fc *funcCompiler) flatOffset(sym *sema.Symbol, subs []ast.Expr) intFn {
	fns := make([]intFn, len(subs))
	strides := make([]int64, len(subs))
	for i := range subs {
		fns[i] = fc.integer(subs[i])
		stride := int64(1)
		for _, d := range sym.Dims[i+1 : len(subs)] {
			stride *= int64(d)
		}
		strides[i] = stride
	}
	if len(fns) == 1 {
		f := fns[0]
		return f
	}
	return func(e *env) int64 {
		off := int64(0)
		for i, f := range fns {
			off += f(e) * strides[i]
		}
		return off
	}
}

func collectSubs(e ast.Expr) ([]ast.Expr, ast.Expr) {
	var subs []ast.Expr
	cur := e
	for {
		ix, ok := cur.(*ast.IndexExpr)
		if !ok {
			return subs, cur
		}
		subs = append([]ast.Expr{ix.Index}, subs...)
		cur = ix.X
	}
}

func stripParens(e ast.Expr) ast.Expr { return ast.Unparen(e) }

// mallocCall compiles (T*)malloc(bytes): the segment kind and cell count
// derive from the cast's element type.
func (fc *funcCompiler) mallocCall(cast *ast.CastExpr, call *ast.CallExpr) ptrFn {
	if len(call.Args) != 1 {
		fc.errorf(call, "malloc takes one argument")
	}
	bytesFn := fc.integer(call.Args[0])
	t := fc.typeOf(cast)
	if !t.IsPtr() {
		fc.errorf(cast, "malloc cast must be a pointer type")
	}
	elem := t.Elem
	var kind mem.CellKind
	var cellBytes int64
	if elem.Kind == types.Struct {
		kind = mem.CellMixed
		cellBytes = int64(elem.CSize) / int64(structCells(elem))
	} else {
		k, err := cellKindOf(elem)
		if err != nil {
			fc.errorf(cast, "%v", err)
		}
		kind = k
		cellBytes = int64(elem.CSize)
		if cellBytes == 0 {
			cellBytes = 8
		}
	}
	name := "malloc@" + fc.cf.name
	return func(e *env) mem.Pointer {
		b := bytesFn(e)
		cells := b / cellBytes
		if b%cellBytes != 0 {
			cells++
		}
		if cells < 0 {
			rtPanic("malloc of negative size")
		}
		return e.p.heap.Malloc(kind, int(cells), name)
	}
}

// ----------------------------------------------------------------------------
// Addresses and lvalues

// addr compiles the address of an lvalue cell.
func (fc *funcCompiler) addr(e ast.Expr) ptrFn {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return fc.addr(x.X)
	case *ast.IndexExpr:
		subs, base := collectSubs(x)
		if id, ok := base.(*ast.Ident); ok {
			sym := fc.symOf(id)
			if sym.IsArray() && len(subs) == len(sym.Dims) {
				basePtr := fc.ptr(id)
				offFn := fc.flatOffset(sym, subs)
				return func(e *env) mem.Pointer { return basePtr(e).Add(offFn(e)) }
			}
		}
		// General chain: evaluate the base as a pointer, add index.
		bt := fc.typeOf(x.X)
		if !bt.IsPtr() {
			fc.errorf(x, "indexing non-pointer")
		}
		basePtr := fc.ptr(x.X)
		idxFn := fc.integer(x.Index)
		stride := elemStride(bt.Elem)
		return func(e *env) mem.Pointer { return basePtr(e).Add(idxFn(e) * stride) }
	case *ast.UnaryExpr:
		if x.Op == token.MUL {
			return fc.ptr(x.X)
		}
	case *ast.MemberExpr:
		_, fld := fc.fieldOf(x)
		base := fc.structBase(x)
		off := int64(fld.Offset)
		return func(e *env) mem.Pointer { return base(e).Add(off) }
	case *ast.Ident:
		sym := fc.symOf(x)
		if sym.IsArray() || (sym.Type != nil && sym.Type.Kind == types.Struct) {
			return fc.ptr(x)
		}
		fc.errorf(x, "cannot take the address of scalar %s (frame storage)", x.Name)
	}
	fc.errorf(e, "expression is not addressable")
	return nil
}

// fieldOf resolves the struct field of a member expression.
func (fc *funcCompiler) fieldOf(x *ast.MemberExpr) (*types.Type, types.Field) {
	bt := fc.typeOf(x.X)
	st := bt
	if x.Arrow {
		st = bt.Elem
	}
	if st == nil || st.Kind != types.Struct {
		fc.errorf(x, "member access on non-struct")
	}
	for _, f := range st.Fields {
		if f.Name == x.Name {
			return st, f
		}
	}
	fc.errorf(x, "struct %s has no field %s", st.Tag, x.Name)
	return nil, types.Field{}
}

// structBase compiles the base pointer of a member access.
func (fc *funcCompiler) structBase(x *ast.MemberExpr) ptrFn {
	if x.Arrow {
		return fc.ptr(x.X)
	}
	// value access: the struct lives in a segment referenced by its slot
	return fc.addrOfStruct(x.X)
}

func (fc *funcCompiler) addrOfStruct(e ast.Expr) ptrFn {
	switch x := e.(type) {
	case *ast.Ident:
		return fc.ptr(x) // struct local slot holds segment pointer
	case *ast.ParenExpr:
		return fc.addrOfStruct(x.X)
	case *ast.IndexExpr:
		return fc.addr(x)
	case *ast.UnaryExpr:
		if x.Op == token.MUL {
			return fc.ptr(x.X)
		}
	case *ast.MemberExpr:
		_, fld := fc.fieldOf(x)
		base := fc.structBase(x)
		off := int64(fld.Offset)
		return func(e *env) mem.Pointer { return base(e).Add(off) }
	}
	fc.errorf(e, "unsupported struct expression")
	return nil
}

// slotOf resolves a symbol to its slot, reporting whether it is global.
func (fc *funcCompiler) slotOf(sym *sema.Symbol, n ast.Node) (slot, bool) {
	if sym.Kind == sema.SymGlobal {
		sl, ok := fc.prog.globalSlots[sym]
		if !ok {
			fc.errorf(n, "global %s has no storage", sym.Name)
		}
		return sl, true
	}
	sl, ok := fc.slots[sym]
	if !ok {
		fc.errorf(n, "local %s has no slot", sym.Name)
	}
	return sl, false
}

// intLvalue returns load/store closures for an integer lvalue.
func (fc *funcCompiler) intLvalue(e ast.Expr) (func(*env) int64, func(*env, int64)) {
	switch x := stripParens(e).(type) {
	case *ast.Ident:
		sym := fc.symOf(x)
		sl, global := fc.slotOf(sym, x)
		idx := sl.idx
		if global {
			return func(e *env) int64 { return e.p.gI[idx] }, func(e *env, v int64) { e.p.gI[idx] = v }
		}
		return func(e *env) int64 { return e.I[idx] }, func(e *env, v int64) { e.I[idx] = v }
	default:
		addr := fc.addr(e)
		return func(e *env) int64 { return addr(e).LoadInt() },
			func(e *env, v int64) { addr(e).StoreInt(v) }
	}
}

// fltLvalue returns load/store closures for a float lvalue.
func (fc *funcCompiler) fltLvalue(e ast.Expr) (func(*env) float64, func(*env, float64)) {
	switch x := stripParens(e).(type) {
	case *ast.Ident:
		sym := fc.symOf(x)
		sl, global := fc.slotOf(sym, x)
		idx := sl.idx
		if global {
			return func(e *env) float64 { return e.p.gF[idx] }, func(e *env, v float64) { e.p.gF[idx] = v }
		}
		return func(e *env) float64 { return e.F[idx] }, func(e *env, v float64) { e.F[idx] = v }
	default:
		addr := fc.addr(e)
		return func(e *env) float64 { return addr(e).LoadFloat() },
			func(e *env, v float64) { addr(e).StoreFloat(v) }
	}
}

// ptrLvalue returns load/store closures for a pointer lvalue.
func (fc *funcCompiler) ptrLvalue(e ast.Expr) (func(*env) mem.Pointer, func(*env, mem.Pointer)) {
	switch x := stripParens(e).(type) {
	case *ast.Ident:
		sym := fc.symOf(x)
		sl, global := fc.slotOf(sym, x)
		idx := sl.idx
		if global {
			return func(e *env) mem.Pointer { return e.p.gP[idx] }, func(e *env, v mem.Pointer) { e.p.gP[idx] = v }
		}
		return func(e *env) mem.Pointer { return e.P[idx] }, func(e *env, v mem.Pointer) { e.P[idx] = v }
	default:
		addr := fc.addr(e)
		return func(e *env) mem.Pointer { return addr(e).LoadPtr() },
			func(e *env, v mem.Pointer) { addr(e).StorePtr(v) }
	}
}

// valueFns packages typed value closures for assignment results.
type valueFns struct {
	kind slotKind
	i    intFn
	f    fltFn
	p    ptrFn
}

// assign compiles an assignment, returning an effect closure plus value
// closures for expression contexts.
func (fc *funcCompiler) assign(x *ast.AssignExpr) (func(*env), valueFns) {
	tl := fc.typeOf(x.LHS)
	switch tl.Kind {
	case types.Float:
		get, set := fc.fltLvalue(x.LHS)
		var rhs fltFn
		if bin, ok := x.Op.AssignBinOp(); ok {
			r := fc.num(x.RHS)
			switch bin {
			case token.ADD:
				rhs = func(e *env) float64 { return get(e) + r(e) }
			case token.SUB:
				rhs = func(e *env) float64 { return get(e) - r(e) }
			case token.MUL:
				rhs = func(e *env) float64 { return get(e) * r(e) }
			case token.QUO:
				rhs = func(e *env) float64 { return get(e) / r(e) }
			default:
				fc.errorf(x, "unsupported compound float assignment %s", x.Op)
			}
		} else {
			rhs = fc.num(x.RHS)
		}
		// C float (4 bytes) rounds every stored value through float32.
		if tl.CSize == 4 {
			inner := rhs
			rhs = func(e *env) float64 { return float64(float32(inner(e))) }
		}
		eff := func(e *env) { set(e, rhs(e)) }
		return eff, valueFns{kind: slotFloat, f: func(e *env) float64 { v := rhs(e); set(e, v); return v }}
	case types.Ptr:
		get, set := fc.ptrLvalue(x.LHS)
		var rhs ptrFn
		if bin, ok := x.Op.AssignBinOp(); ok {
			r := fc.integer(x.RHS)
			stride := elemStride(tl.Elem)
			switch bin {
			case token.ADD:
				rhs = func(e *env) mem.Pointer { return addScaled(get(e), r(e), stride) }
			case token.SUB:
				rhs = func(e *env) mem.Pointer { return addScaled(get(e), -r(e), stride) }
			default:
				fc.errorf(x, "unsupported compound pointer assignment %s", x.Op)
			}
		} else {
			rhs = fc.ptr(x.RHS)
		}
		eff := func(e *env) { set(e, rhs(e)) }
		return eff, valueFns{kind: slotPtr, p: func(e *env) mem.Pointer { v := rhs(e); set(e, v); return v }}
	default:
		get, set := fc.intLvalue(x.LHS)
		var rhs intFn
		if bin, ok := x.Op.AssignBinOp(); ok {
			r := fc.integer(x.RHS)
			switch bin {
			case token.ADD:
				rhs = func(e *env) int64 { return get(e) + r(e) }
			case token.SUB:
				rhs = func(e *env) int64 { return get(e) - r(e) }
			case token.MUL:
				rhs = func(e *env) int64 { return get(e) * r(e) }
			case token.QUO:
				rhs = func(e *env) int64 {
					d := r(e)
					if d == 0 {
						rtPanic("integer division by zero")
					}
					return get(e) / d
				}
			case token.REM:
				rhs = func(e *env) int64 {
					d := r(e)
					if d == 0 {
						rtPanic("integer modulo by zero")
					}
					return get(e) % d
				}
			case token.AND:
				rhs = func(e *env) int64 { return get(e) & r(e) }
			case token.OR:
				rhs = func(e *env) int64 { return get(e) | r(e) }
			case token.XOR:
				rhs = func(e *env) int64 { return get(e) ^ r(e) }
			case token.SHL:
				rhs = func(e *env) int64 { return get(e) << uint(r(e)) }
			case token.SHR:
				rhs = func(e *env) int64 { return get(e) >> uint(r(e)) }
			}
		} else {
			rhs = fc.integer(x.RHS)
		}
		eff := func(e *env) { set(e, rhs(e)) }
		return eff, valueFns{kind: slotInt, i: func(e *env) int64 { v := rhs(e); set(e, v); return v }}
	}
}

// effect compiles an expression for its side effects only.
func (fc *funcCompiler) effect(e ast.Expr) func(*env) {
	switch x := e.(type) {
	case *ast.AssignExpr:
		eff, _ := fc.assign(x)
		return eff
	case *ast.PostfixExpr, *ast.UnaryExpr:
		// ++/--; other unaries are pure but legal statements.
		t := fc.typeOf(e)
		switch t.Kind {
		case types.Float:
			f := fc.flt(e)
			return func(env *env) { f(env) }
		case types.Ptr:
			f := fc.ptr(e)
			return func(env *env) { f(env) }
		default:
			f := fc.intExpr(e)
			return func(env *env) { f(env) }
		}
	case *ast.CallExpr:
		return fc.callEffect(x)
	case *ast.ParenExpr:
		return fc.effect(x.X)
	default:
		t := fc.typeOf(e)
		switch t.Kind {
		case types.Float:
			f := fc.flt(e)
			return func(env *env) { f(env) }
		case types.Ptr:
			f := fc.ptr(e)
			return func(env *env) { f(env) }
		default:
			f := fc.integer(e)
			return func(env *env) { f(env) }
		}
	}
}

var _ = math.Abs // referenced by builtins in call.go
