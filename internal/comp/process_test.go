package comp

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"purec/internal/interp"
	"purec/internal/parser"
	"purec/internal/rt"
	"purec/internal/sema"
)

// compileProgram builds an immutable Program from source.
func compileProgram(t *testing.T, src string, opts Options) *Program {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	prog, err := CompileProgram(info, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// TestConcurrentProcesses is the concurrency contract of the
// Program/Process split: one compiled Program runs in many concurrent
// Processes (with different team sizes) and every result must match the
// sequential internal/interp oracle. Run under -race this also verifies
// the Program carries no mutable run state.
func TestConcurrentProcesses(t *testing.T) {
	f, err := parser.Parse("t.c", parallelMatmul)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	prog, err := CompileProgram(info, Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}

	// Oracle: the tree-walking interpreter on the same checked program.
	in, err := interp.New(info, nil)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	want, err := in.RunMain()
	if err != nil {
		t.Fatalf("interp run: %v", err)
	}
	oraclePtr, err := in.GlobalPtr("C")
	if err != nil {
		t.Fatalf("interp global C: %v", err)
	}

	const procs = 12
	var wg sync.WaitGroup
	errs := make(chan error, procs)
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out bytes.Buffer
			proc, err := prog.NewProcess(ProcOptions{
				Team:   rt.NewTeam(1 + i%4),
				Stdout: &out,
			})
			if err != nil {
				errs <- fmt.Errorf("process %d: %v", i, err)
				return
			}
			got, err := proc.RunMain()
			if err != nil {
				errs <- fmt.Errorf("process %d: run: %v", i, err)
				return
			}
			if got != want {
				errs <- fmt.Errorf("process %d: returned %d, oracle %d", i, got, want)
				return
			}
			// Every element of the result matrix must match the oracle.
			cPtr, err := proc.GlobalPtr("C")
			if err != nil {
				errs <- fmt.Errorf("process %d: global C: %v", i, err)
				return
			}
			n, err := proc.GlobalInt("n")
			if err != nil {
				errs <- fmt.Errorf("process %d: global n: %v", i, err)
				return
			}
			for r := int64(0); r < n; r++ {
				gotRow := cPtr.Add(r).LoadPtr()
				wantRow := oraclePtr.Add(r).LoadPtr()
				for c := int64(0); c < n; c++ {
					gv := gotRow.Add(c).LoadFloat()
					wv := wantRow.Add(c).LoadFloat()
					if gv != wv {
						errs <- fmt.Errorf("process %d: C[%d][%d] = %v, oracle %v", i, r, c, gv, wv)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestProcessIsolation verifies that all run state (globals, heap, rand,
// stdout) is per-Process: a run in one Process must not leak into a
// sibling Process of the same Program.
func TestProcessIsolation(t *testing.T) {
	src := `
int counter;
int main(void) {
    srand(7);
    counter = counter + rand() % 100 + 1;
    int* p = (int*)malloc(4 * sizeof(int));
    p[0] = counter;
    int v = p[0];
    free(p);
    printf("v=%d\n", v);
    return v;
}
`
	prog := compileProgram(t, src, Options{})

	var out1 bytes.Buffer
	p1, err := prog.NewProcess(ProcOptions{Stdout: &out1})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p1.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	c1, err := p1.GlobalInt("counter")
	if err != nil {
		t.Fatal(err)
	}
	if c1 == 0 {
		t.Fatal("first run left counter at 0")
	}
	if h := p1.Heap(); h.Allocs != 1 || h.Frees != 1 {
		t.Fatalf("heap stats = %+v, want 1 alloc / 1 free", h)
	}

	// A sibling Process starts from the pristine initial state.
	var out2 bytes.Buffer
	p2, err := prog.NewProcess(ProcOptions{Stdout: &out2})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p2.GlobalInt("counter")
	if err != nil {
		t.Fatal(err)
	}
	if c2 != 0 {
		t.Fatalf("fresh process sees counter = %d, want 0", c2)
	}
	r2, err := p2.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("deterministic program returned %d then %d", r1, r2)
	}
	if out1.String() != out2.String() || out1.Len() == 0 {
		t.Fatalf("stdout differs between processes: %q vs %q", out1.String(), out2.String())
	}
	if h := p2.Heap(); h.Allocs != 1 || h.Frees != 1 {
		t.Fatalf("second process heap stats = %+v, want 1 alloc / 1 free", h)
	}
}
