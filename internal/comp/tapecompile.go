package comp

// The tape compiler walks the same AST the closure backend walks and
// emits tinstr words instead of closures. Every emitter mirrors its
// closure counterpart's evaluation order exactly — operands materialize
// into temp registers at the moment the corresponding closure would
// run, compound assignments compute the lvalue address twice, and the
// integer /= and %= forms evaluate the divisor (and trap on zero)
// before the accumulator load, because that is what the closure
// backend does.
//
// Totality comes from the bail mechanism: any construct the tape does
// not linearize (calls in value context compile to pooled closures;
// assignment used as an expression value, inline parameter bindings
// and anything the closure backend itself rejects) panics tapeBail,
// which rolls the current statement back and re-compiles the whole
// statement with the regular backend into a tStmt escape. The
// surrounding control flow stays on the tape either way.

import (
	"math"
	"strings"

	"purec/internal/ast"
	"purec/internal/sema"
	"purec/internal/token"
	"purec/internal/types"
)

// tapeBail aborts native tape compilation of the current statement;
// tapeCompiler.stmt recovers it and escapes the statement into a
// pooled closure compiled by the regular backend.
type tapeBail struct{}

// tapeAlloc manages one function's temp register space. The bases sit
// just past the locals; temps stack upward and never live across a
// statement boundary, so the main tape and every nested parallel-body
// tape of the function share the same registers. The high-water marks
// extend cf.nI/nF/nP when compilation finishes, which makes worker
// clones privatize temps for free.
type tapeAlloc struct {
	baseI, baseF, baseP int
	tI, tF, tP          int
	maxI, maxF, maxP    int
}

func (ta *tapeAlloc) allocI() int32 {
	r := ta.baseI + ta.tI
	ta.tI++
	if ta.tI > ta.maxI {
		ta.maxI = ta.tI
	}
	return int32(r)
}

func (ta *tapeAlloc) allocF() int32 {
	r := ta.baseF + ta.tF
	ta.tF++
	if ta.tF > ta.maxF {
		ta.maxF = ta.tF
	}
	return int32(r)
}

func (ta *tapeAlloc) allocP() int32 {
	r := ta.baseP + ta.tP
	ta.tP++
	if ta.tP > ta.maxP {
		ta.maxP = ta.tP
	}
	return int32(r)
}

func (ta *tapeAlloc) popI() { ta.tI-- }
func (ta *tapeAlloc) popF() { ta.tF-- }
func (ta *tapeAlloc) popP() { ta.tP-- }

// tapePatch is a pending jump offset: field a of the instruction at pc,
// or field c (the tStmt continue offset) when cont is set.
type tapePatch struct {
	pc   int
	cont bool
}

// tapeLoopCtx collects the pending break/continue exits of one open
// tape loop.
type tapeLoopCtx struct {
	breaks []tapePatch
	conts  []tapePatch
}

type tapeCompiler struct {
	fc    *funcCompiler
	tp    *tape
	ta    *tapeAlloc
	loops []*tapeLoopCtx
	cI    map[int64]int32
	cF    map[uint64]int32
}

// newTape compiles one instruction sequence with a fresh tapeCompiler
// sharing the function's register space.
func (fc *funcCompiler) newTape(build func(*tapeCompiler)) *tape {
	tc := &tapeCompiler{
		fc: fc,
		tp: &tape{},
		ta: fc.talloc,
		cI: map[int64]int32{},
		cF: map[uint64]int32{},
	}
	tc.tp.tmpI = int32(fc.talloc.baseI)
	tc.tp.tmpF = int32(fc.talloc.baseF)
	tc.tp.tmpP = int32(fc.talloc.baseP)
	build(tc)
	tc.tp.optimize()
	fc.prog.noteTape(tc.tp)
	return tc.tp
}

// compileTapeBody compiles the function body for EngineTape.
func (fc *funcCompiler) compileTapeBody() {
	fc.talloc = &tapeAlloc{baseI: fc.cf.nI, baseF: fc.cf.nF, baseP: fc.cf.nP}
	tp := fc.newTape(func(tc *tapeCompiler) {
		tc.stmtList(fc.cf.decl.Body.List)
	})
	fc.cf.body = tp.stmtFn()
	fc.cf.tape = tp
	fc.cf.nI = fc.talloc.baseI + fc.talloc.maxI
	fc.cf.nF = fc.talloc.baseF + fc.talloc.maxF
	fc.cf.nP = fc.talloc.baseP + fc.talloc.maxP
	fc.prog.tapeTemps += fc.talloc.maxI + fc.talloc.maxF + fc.talloc.maxP
}

// loopBody compiles a parallel-loop body with the active engine: under
// EngineTape the per-iteration dispatch runs on a nested tape sharing
// the function's temp registers (all temps are dead at the region
// boundary, and worker clones copy the extended frame).
func (fc *funcCompiler) loopBody(s ast.Stmt) stmtFn {
	if fc.prog.engine != EngineTape || fc.talloc == nil {
		return fc.stmt(s)
	}
	savedI, savedF, savedP := fc.talloc.tI, fc.talloc.tF, fc.talloc.tP
	tp := fc.newTape(func(tc *tapeCompiler) { tc.stmt(s) })
	fc.talloc.tI, fc.talloc.tF, fc.talloc.tP = savedI, savedF, savedP
	return tp.stmtFn()
}

// ----------------------------------------------------------------------------
// Emission primitives

func (tc *tapeCompiler) emit(in tinstr) int {
	tc.tp.code = append(tc.tp.code, in)
	return len(tc.tp.code) - 1
}

func (tc *tapeCompiler) here() int { return len(tc.tp.code) }

// patch aims the jump at pc at the current end of the tape.
func (tc *tapeCompiler) patch(pc int) {
	tc.tp.code[pc].a = int32(len(tc.tp.code) - pc)
}

func (tc *tapeCompiler) patchList(ps []tapePatch, target int) {
	for _, p := range ps {
		off := int32(target - p.pc)
		if p.cont {
			tc.tp.code[p.pc].c = off
		} else {
			tc.tp.code[p.pc].a = off
		}
	}
}

func (tc *tapeCompiler) constIdxI(v int64) int32 {
	if idx, ok := tc.cI[v]; ok {
		return idx
	}
	idx := int32(len(tc.tp.constI))
	tc.tp.constI = append(tc.tp.constI, v)
	tc.cI[v] = idx
	return idx
}

func (tc *tapeCompiler) constIdxF(v float64) int32 {
	bits := math.Float64bits(v)
	if idx, ok := tc.cF[bits]; ok {
		return idx
	}
	idx := int32(len(tc.tp.constF))
	tc.tp.constF = append(tc.tp.constF, v)
	tc.cF[bits] = idx
	return idx
}

func (tc *tapeCompiler) loadConstI(v int64) int32 {
	r := tc.ta.allocI()
	tc.emit(tinstr{op: tConstI, a: r, b: tc.constIdxI(v)})
	return r
}

func (tc *tapeCompiler) loadConstF(v float64) int32 {
	r := tc.ta.allocF()
	tc.emit(tinstr{op: tConstF, a: r, b: tc.constIdxF(v)})
	return r
}

// Closure escape pools: the result lands in a fresh register.

func (tc *tapeCompiler) callI(fn intFn) int32 {
	idx := int32(len(tc.tp.intFns))
	tc.tp.intFns = append(tc.tp.intFns, fn)
	r := tc.ta.allocI()
	tc.emit(tinstr{op: tCallI, a: r, b: idx})
	return r
}

func (tc *tapeCompiler) callF(fn fltFn) int32 {
	idx := int32(len(tc.tp.fltFns))
	tc.tp.fltFns = append(tc.tp.fltFns, fn)
	r := tc.ta.allocF()
	tc.emit(tinstr{op: tCallF, a: r, b: idx})
	return r
}

func (tc *tapeCompiler) callP(fn ptrFn) int32 {
	idx := int32(len(tc.tp.ptrFns))
	tc.tp.ptrFns = append(tc.tp.ptrFns, fn)
	r := tc.ta.allocP()
	tc.emit(tinstr{op: tCallP, a: r, b: idx})
	return r
}

// escapeStmt pools a closure-compiled statement behind a tStmt word.
// Inside a tape loop its break/continue ctrl results jump like native
// break/continue; otherwise they propagate out of the tape.
func (tc *tapeCompiler) escapeStmt(fn stmtFn) {
	idx := int32(len(tc.tp.stmts))
	tc.tp.stmts = append(tc.tp.stmts, fn)
	pc := tc.emit(tinstr{op: tStmt, a: tapeCtrlRet, b: idx, c: tapeCtrlRet})
	if n := len(tc.loops); n > 0 {
		ctx := tc.loops[n-1]
		ctx.breaks = append(ctx.breaks, tapePatch{pc: pc})
		ctx.conts = append(ctx.conts, tapePatch{pc: pc, cont: true})
	}
}

// ----------------------------------------------------------------------------
// Statements

// tapeMark snapshots compiler state for the bail rollback.
type tapeMark struct {
	code       int
	loops      int
	breakLens  []int
	contLens   []int
	tI, tF, tP int
	fused      int
}

func (tc *tapeCompiler) mark() tapeMark {
	m := tapeMark{
		code:  len(tc.tp.code),
		loops: len(tc.loops),
		tI:    tc.ta.tI, tF: tc.ta.tF, tP: tc.ta.tP,
		fused: tc.fc.prog.fusedKernels,
	}
	for _, ctx := range tc.loops {
		m.breakLens = append(m.breakLens, len(ctx.breaks))
		m.contLens = append(m.contLens, len(ctx.conts))
	}
	return m
}

func (tc *tapeCompiler) rollback(m tapeMark) {
	tc.tp.code = tc.tp.code[:m.code]
	tc.loops = tc.loops[:m.loops]
	for i, ctx := range tc.loops {
		ctx.breaks = ctx.breaks[:m.breakLens[i]]
		ctx.conts = ctx.conts[:m.contLens[i]]
	}
	tc.ta.tI, tc.ta.tF, tc.ta.tP = m.tI, m.tF, m.tP
	tc.fc.prog.fusedKernels = m.fused
}

// stmt compiles one statement, escaping it to the closure backend when
// any part of it bails. Compile errors propagate.
func (tc *tapeCompiler) stmt(s ast.Stmt) {
	m := tc.mark()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(tapeBail); !ok {
				panic(r)
			}
			tc.rollback(m)
			tc.escapeStmt(tc.fc.stmt(s))
		}
	}()
	tc.stmtNative(s)
}

func (tc *tapeCompiler) stmtNative(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.DeclStmt:
		tc.tapeDecl(x)
	case *ast.ExprStmt:
		tc.effect(x.X)
	case *ast.EmptyStmt, *ast.PragmaStmt:
		// stray scop/endscop/simd markers have no runtime effect
	case *ast.BlockStmt:
		tc.stmtList(x.List)
	case *ast.IfStmt:
		r := tc.test(x.Cond)
		jz := tc.emit(tinstr{op: tJz, b: r})
		tc.ta.popI()
		tc.stmt(x.Then)
		if x.Else == nil {
			tc.patch(jz)
		} else {
			jmp := tc.emit(tinstr{op: tJmp})
			tc.patch(jz)
			tc.stmt(x.Else)
			tc.patch(jmp)
		}
	case *ast.ForStmt:
		tc.tapeFor(x)
	case *ast.WhileStmt:
		lcond := tc.here()
		r := tc.test(x.Cond)
		jz := tc.emit(tinstr{op: tJz, b: r})
		tc.ta.popI()
		ctx := &tapeLoopCtx{}
		tc.loops = append(tc.loops, ctx)
		tc.stmt(x.Body)
		tc.loops = tc.loops[:len(tc.loops)-1]
		jpc := tc.emit(tinstr{op: tJmp})
		tc.tp.code[jpc].a = int32(lcond - jpc)
		tc.patch(jz)
		tc.patchList(ctx.breaks, tc.here())
		tc.patchList(ctx.conts, lcond)
	case *ast.DoStmt:
		lbody := tc.here()
		ctx := &tapeLoopCtx{}
		tc.loops = append(tc.loops, ctx)
		tc.stmt(x.Body)
		tc.loops = tc.loops[:len(tc.loops)-1]
		lcond := tc.here()
		r := tc.test(x.Cond)
		jnz := tc.emit(tinstr{op: tJnz, b: r})
		tc.tp.code[jnz].a = int32(lbody - jnz)
		tc.ta.popI()
		tc.patchList(ctx.breaks, tc.here())
		tc.patchList(ctx.conts, lcond)
	case *ast.ReturnStmt:
		tc.tapeReturn(x)
	case *ast.BreakStmt:
		if n := len(tc.loops); n > 0 {
			pc := tc.emit(tinstr{op: tJmp})
			ctx := tc.loops[n-1]
			ctx.breaks = append(ctx.breaks, tapePatch{pc: pc})
		} else {
			tc.emit(tinstr{op: tBrk})
		}
	case *ast.ContinueStmt:
		if n := len(tc.loops); n > 0 {
			pc := tc.emit(tinstr{op: tJmp})
			ctx := tc.loops[n-1]
			ctx.conts = append(ctx.conts, tapePatch{pc: pc})
		} else {
			tc.emit(tinstr{op: tCont})
		}
	case *ast.SwitchStmt:
		// C fall-through and per-case break consumption stay on the
		// battle-tested closure path.
		tc.escapeStmt(tc.fc.switchStmt(x))
	default:
		panic(tapeBail{}) // closure backend reports the diagnostic
	}
}

// stmtList mirrors the closure backend's pragma handling: an omp
// parallel-for pragma plus loop compiles through the parallel runtime
// (whose per-iteration bodies come back as nested tapes via loopBody).
func (tc *tapeCompiler) stmtList(list []ast.Stmt) {
	for i := 0; i < len(list); i++ {
		s := list[i]
		if pr, ok := s.(*ast.PragmaStmt); ok {
			if isOmpParallelFor(pr.Text) && i+1 < len(list) {
				if f, ok := list[i+1].(*ast.ForStmt); ok {
					if strings.Contains(pr.Text, "reduction(") {
						tc.escapeStmt(tc.fc.parallelReduceFor(f, pr.Text))
					} else {
						tc.escapeStmt(tc.fc.parallelFor(f, pr.Text))
					}
					i++
					continue
				}
			}
			continue
		}
		tc.stmt(s)
	}
}

func (tc *tapeCompiler) tapeDecl(x *ast.DeclStmt) {
	fc := tc.fc
	for _, d := range x.Decls {
		sym := fc.declSym[d]
		if sym == nil {
			panic(tapeBail{})
		}
		if d.Init == nil {
			continue
		}
		sl := fc.slots[sym]
		switch sl.kind {
		case slotInt:
			r := tc.integer(d.Init)
			tc.emit(tinstr{op: tMovI, a: int32(sl.idx), b: r})
			tc.ta.popI()
		case slotFloat:
			r := tc.num(d.Init)
			if sym.Type.CSize == 4 {
				tc.emit(tinstr{op: tRoundF, a: r, b: r})
			}
			tc.emit(tinstr{op: tMovF, a: int32(sl.idx), b: r})
			tc.ta.popF()
		case slotPtr:
			if sym.IsArray() || sym.Type.Kind == types.Struct {
				panic(tapeBail{})
			}
			r := tc.ptrExpr(d.Init)
			tc.emit(tinstr{op: tMovP, a: int32(sl.idx), b: r})
			tc.ta.popP()
		}
	}
}

func (tc *tapeCompiler) tapeReturn(x *ast.ReturnStmt) {
	fc := tc.fc
	if x.X == nil {
		tc.emit(tinstr{op: tRet})
		return
	}
	if fc.cf.retVoid {
		panic(tapeBail{})
	}
	switch fc.cf.retKind {
	case slotInt:
		r := tc.integer(x.X)
		tc.emit(tinstr{op: tRetI, a: r})
		tc.ta.popI()
	case slotFloat:
		r := tc.num(x.X)
		if fc.sig != nil && fc.sig.Ret.CSize == 4 {
			tc.emit(tinstr{op: tRoundF, a: r, b: r})
		}
		tc.emit(tinstr{op: tRetF, a: r})
		tc.ta.popF()
	default:
		r := tc.ptrExpr(x.X)
		tc.emit(tinstr{op: tRetP, a: r})
		tc.ta.popP()
	}
}

// tapeFor mirrors forStmt: fused kernels still win where they match
// (escaped behind tStmt); everything else linearizes.
func (tc *tapeCompiler) tapeFor(x *ast.ForStmt) {
	fc := tc.fc
	if fc.fuseReductions() {
		if k := fc.tryVectorize(x); k != nil {
			fc.prog.fusedKernels++
			tc.escapeStmt(k)
			return
		}
	}
	if !fc.prog.noFuse {
		if cl, kern := fc.tryFuseLoop(x); kern != nil {
			fc.prog.fusedKernels++
			tc.escapeStmt(seqKernelStmt(cl, kern))
			return
		}
		if cl, kern := fc.tryGatherKernel(x); kern != nil {
			fc.prog.fusedKernels++
			tc.escapeStmt(seqKernelStmt(cl, kern))
			return
		}
		if cl, kern := fc.tryHistKernel(x); kern != nil {
			fc.prog.fusedKernels++
			tc.escapeStmt(seqKernelStmt(cl, kern))
			return
		}
	}
	// Rotated loop: entry test, body, post, bottom test jumping back.
	// The condition compiles twice but evaluates once per round exactly
	// as the top-test form did (entry + one per iteration), so side
	// effects and traps keep their order — and the hot path pays one
	// taken branch per iteration instead of two.
	if x.Init != nil {
		tc.stmt(x.Init)
	}
	jz := -1
	if x.Cond != nil {
		r := tc.test(x.Cond)
		jz = tc.emit(tinstr{op: tJz, b: r})
		tc.ta.popI()
	}
	lbody := tc.here()
	ctx := &tapeLoopCtx{}
	tc.loops = append(tc.loops, ctx)
	tc.stmt(x.Body)
	tc.loops = tc.loops[:len(tc.loops)-1]
	lpost := tc.here()
	if x.Post != nil {
		tc.effect(x.Post)
	}
	if x.Cond != nil {
		r := tc.test(x.Cond)
		jnz := tc.emit(tinstr{op: tJnz, b: r})
		tc.ta.popI()
		tc.tp.code[jnz].a = int32(lbody - jnz)
	} else {
		jpc := tc.emit(tinstr{op: tJmp})
		tc.tp.code[jpc].a = int32(lbody - jpc)
	}
	if jz >= 0 {
		tc.patch(jz)
	}
	tc.patchList(ctx.breaks, tc.here())
	tc.patchList(ctx.conts, lpost)
}

// ----------------------------------------------------------------------------
// Expressions. Every emitter nets exactly one new register of its
// result kind; operand registers pop as soon as the consuming
// instruction is emitted.

// test compiles any scalar expression into an int register that is
// nonzero iff the closure backend's cond would be true.
func (tc *tapeCompiler) test(e ast.Expr) int32 {
	t := tc.fc.typeOf(e)
	switch t.Kind {
	case types.Float:
		f := tc.flt(e)
		tc.ta.popF()
		r := tc.ta.allocI()
		tc.emit(tinstr{op: tTstF, a: r, b: f})
		return r
	case types.Ptr:
		p := tc.ptrExpr(e)
		tc.ta.popP()
		r := tc.ta.allocI()
		tc.emit(tinstr{op: tTstP, a: r, b: p})
		return r
	default:
		return tc.intExpr(e)
	}
}

// num compiles an arithmetic expression into a float register,
// converting integers.
func (tc *tapeCompiler) num(e ast.Expr) int32 {
	if tc.fc.typeOf(e).Kind == types.Float {
		return tc.flt(e)
	}
	r := tc.integer(e)
	tc.ta.popI()
	f := tc.ta.allocF()
	tc.emit(tinstr{op: tI2F, a: f, b: r})
	return f
}

// integer compiles an integer-typed expression (coercing floats by C
// truncation).
func (tc *tapeCompiler) integer(e ast.Expr) int32 {
	t := tc.fc.typeOf(e)
	if t.Kind == types.Float {
		f := tc.flt(e)
		tc.ta.popF()
		r := tc.ta.allocI()
		tc.emit(tinstr{op: tF2I, a: r, b: f})
		return r
	}
	if t.Kind == types.Ptr {
		tc.fc.errorf(e, "pointer used in integer context")
	}
	return tc.intExpr(e)
}

func (tc *tapeCompiler) intExpr(e ast.Expr) int32 {
	fc := tc.fc
	switch x := e.(type) {
	case *ast.IntLit:
		return tc.loadConstI(x.Value)
	case *ast.CharLit:
		return tc.loadConstI(x.Value)
	case *ast.Ident:
		sym := fc.symOf(x)
		if _, ok := fc.paramBind[sym]; ok {
			panic(tapeBail{})
		}
		sl, global := fc.slotOf(sym, x)
		r := tc.ta.allocI()
		if global {
			tc.emit(tinstr{op: tLdGI, a: r, b: int32(sl.idx)})
		} else {
			tc.emit(tinstr{op: tMovI, a: r, b: int32(sl.idx)})
		}
		return r
	case *ast.ParenExpr:
		return tc.intExpr(x.X)
	case *ast.BinaryExpr:
		return tc.intBinary(x)
	case *ast.UnaryExpr:
		return tc.intUnary(x)
	case *ast.PostfixExpr:
		// x++ as int expression: the old value stays on the stack.
		get, set := tc.intLval(x.X)
		v := get()
		delta := int64(1)
		if x.Op == token.DEC {
			delta = -1
		}
		d := tc.loadConstI(delta)
		nv := tc.ta.allocI()
		tc.emit(tinstr{op: tAddI, a: nv, b: v, c: d})
		set(nv)
		tc.ta.popI() // nv
		tc.ta.popI() // d
		return v
	case *ast.AssignExpr:
		// Assignment as an expression value re-evaluates the RHS in the
		// closure backend; escape the whole statement to preserve that.
		panic(tapeBail{})
	case *ast.CondExpr:
		r := tc.ta.allocI()
		c := tc.test(x.Cond)
		jz := tc.emit(tinstr{op: tJz, b: c})
		tc.ta.popI()
		a := tc.integer(x.Then)
		tc.emit(tinstr{op: tMovI, a: r, b: a})
		tc.ta.popI()
		jmp := tc.emit(tinstr{op: tJmp})
		tc.patch(jz)
		b := tc.integer(x.Else)
		tc.emit(tinstr{op: tMovI, a: r, b: b})
		tc.ta.popI()
		tc.patch(jmp)
		return r
	case *ast.IndexExpr, *ast.MemberExpr:
		p := tc.addr(e)
		r := tc.ta.allocI()
		tc.emit(tinstr{op: tLdInd, a: r, b: p})
		tc.ta.popP()
		// r is now the top int temp; shift it down over the freed slot
		// is unnecessary — registers are indices, not stack cells.
		return r
	case *ast.CastExpr:
		if fc.typeOf(x).Kind == types.Int {
			inner := fc.typeOf(x.X)
			if inner.Kind == types.Float {
				f := tc.flt(x.X)
				tc.ta.popF()
				r := tc.ta.allocI()
				tc.emit(tinstr{op: tF2I, a: r, b: f})
				return r
			}
			return tc.intExpr(x.X)
		}
		panic(tapeBail{})
	case *ast.SizeofExpr:
		return tc.loadConstI(fc.sizeofValue(x))
	case *ast.CallExpr:
		return tc.callI(fc.callInt(x))
	}
	panic(tapeBail{})
}

func (tc *tapeCompiler) intBinary(x *ast.BinaryExpr) int32 {
	fc := tc.fc
	tl, tr := fc.typeOf(x.X), fc.typeOf(x.Y)
	switch x.Op {
	case token.LAND:
		r := tc.ta.allocI()
		a := tc.test(x.X)
		jz1 := tc.emit(tinstr{op: tJz, b: a})
		tc.ta.popI()
		b := tc.test(x.Y)
		jz2 := tc.emit(tinstr{op: tJz, b: b})
		tc.ta.popI()
		tc.emit(tinstr{op: tConstI, a: r, b: tc.constIdxI(1)})
		jend := tc.emit(tinstr{op: tJmp})
		tc.patch(jz1)
		tc.patch(jz2)
		tc.emit(tinstr{op: tConstI, a: r, b: tc.constIdxI(0)})
		tc.patch(jend)
		return r
	case token.LOR:
		r := tc.ta.allocI()
		a := tc.test(x.X)
		jnz1 := tc.emit(tinstr{op: tJnz, b: a})
		tc.ta.popI()
		b := tc.test(x.Y)
		jnz2 := tc.emit(tinstr{op: tJnz, b: b})
		tc.ta.popI()
		tc.emit(tinstr{op: tConstI, a: r, b: tc.constIdxI(0)})
		jend := tc.emit(tinstr{op: tJmp})
		tc.patch(jnz1)
		tc.patch(jnz2)
		tc.emit(tinstr{op: tConstI, a: r, b: tc.constIdxI(1)})
		tc.patch(jend)
		return r
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return tc.compare(x)
	}
	if tl.IsPtr() || tr.IsPtr() {
		if x.Op == token.SUB && tl.IsPtr() && tr.IsPtr() {
			a := tc.ptrExpr(x.X)
			b := tc.ptrExpr(x.Y)
			r := tc.ta.allocI()
			tc.emit(tinstr{op: tPtrDiff, a: r, b: a, c: b, aux: elemStride(tl.Elem)})
			tc.ta.popP()
			tc.ta.popP()
			return r
		}
		panic(tapeBail{})
	}
	a := tc.integer(x.X)
	b := tc.integer(x.Y)
	var op topcode
	switch x.Op {
	case token.ADD:
		op = tAddI
	case token.SUB:
		op = tSubI
	case token.MUL:
		op = tMulI
	case token.QUO:
		op = tDivI
	case token.REM:
		op = tRemI
	case token.AND:
		op = tAndI
	case token.OR:
		op = tOrI
	case token.XOR:
		op = tXorI
	case token.SHL:
		op = tShlI
	case token.SHR:
		op = tShrI
	default:
		panic(tapeBail{})
	}
	tc.emit(tinstr{op: op, a: a, b: a, c: b})
	tc.ta.popI()
	return a
}

func (tc *tapeCompiler) compare(x *ast.BinaryExpr) int32 {
	fc := tc.fc
	tl, tr := fc.typeOf(x.X), fc.typeOf(x.Y)
	if tl.IsPtr() && tr.IsPtr() {
		a := tc.ptrExpr(x.X)
		b := tc.ptrExpr(x.Y)
		r := tc.ta.allocI()
		var op topcode
		switch x.Op {
		case token.EQL:
			op = tPtrEq
		case token.NEQ:
			op = tPtrNe
		case token.LSS:
			op = tPtrLt
		case token.LEQ:
			op = tPtrLe
		case token.GTR:
			op = tPtrGt
		case token.GEQ:
			op = tPtrGe
		}
		tc.emit(tinstr{op: op, a: r, b: a, c: b})
		tc.ta.popP()
		tc.ta.popP()
		return r
	}
	if tl.Kind == types.Float || tr.Kind == types.Float {
		a := tc.num(x.X)
		b := tc.num(x.Y)
		r := tc.ta.allocI()
		var op topcode
		switch x.Op {
		case token.EQL:
			op = tEqF
		case token.NEQ:
			op = tNeF
		case token.LSS:
			op = tLtF
		case token.LEQ:
			op = tLeF
		case token.GTR:
			op = tGtF
		case token.GEQ:
			op = tGeF
		}
		tc.emit(tinstr{op: op, a: r, b: a, c: b})
		tc.ta.popF()
		tc.ta.popF()
		return r
	}
	a := tc.integer(x.X)
	b := tc.integer(x.Y)
	var op topcode
	switch x.Op {
	case token.EQL:
		op = tEqI
	case token.NEQ:
		op = tNeI
	case token.LSS:
		op = tLtI
	case token.LEQ:
		op = tLeI
	case token.GTR:
		op = tGtI
	case token.GEQ:
		op = tGeI
	}
	tc.emit(tinstr{op: op, a: a, b: a, c: b})
	tc.ta.popI()
	return a
}

func (tc *tapeCompiler) intUnary(x *ast.UnaryExpr) int32 {
	switch x.Op {
	case token.SUB:
		a := tc.integer(x.X)
		tc.emit(tinstr{op: tNegI, a: a, b: a})
		return a
	case token.NOT:
		a := tc.test(x.X)
		tc.emit(tinstr{op: tNotI, a: a, b: a})
		return a
	case token.TILDE:
		a := tc.integer(x.X)
		tc.emit(tinstr{op: tCmplI, a: a, b: a})
		return a
	case token.MUL:
		p := tc.addr(x)
		r := tc.ta.allocI()
		tc.emit(tinstr{op: tLdInd, a: r, b: p})
		tc.ta.popP()
		return r
	case token.INC, token.DEC:
		// pre-increment yields the new value
		get, set := tc.intLval(x.X)
		v := get()
		delta := int64(1)
		if x.Op == token.DEC {
			delta = -1
		}
		d := tc.loadConstI(delta)
		tc.emit(tinstr{op: tAddI, a: v, b: v, c: d})
		tc.ta.popI()
		set(v)
		return v
	}
	panic(tapeBail{})
}

func (tc *tapeCompiler) flt(e ast.Expr) int32 {
	fc := tc.fc
	switch x := e.(type) {
	case *ast.FloatLit:
		return tc.loadConstF(x.Value)
	case *ast.IntLit:
		return tc.loadConstF(float64(x.Value))
	case *ast.Ident:
		sym := fc.symOf(x)
		if _, ok := fc.paramBind[sym]; ok {
			panic(tapeBail{})
		}
		sl, global := fc.slotOf(sym, x)
		r := tc.ta.allocF()
		if global {
			tc.emit(tinstr{op: tLdGF, a: r, b: int32(sl.idx)})
		} else {
			tc.emit(tinstr{op: tMovF, a: r, b: int32(sl.idx)})
		}
		return r
	case *ast.ParenExpr:
		return tc.flt(x.X)
	case *ast.BinaryExpr:
		a := tc.num(x.X)
		b := tc.num(x.Y)
		var op topcode
		switch x.Op {
		case token.ADD:
			op = tAddF
		case token.SUB:
			op = tSubF
		case token.MUL:
			op = tMulF
		case token.QUO:
			op = tDivF
		default:
			panic(tapeBail{})
		}
		tc.emit(tinstr{op: op, a: a, b: a, c: b})
		tc.ta.popF()
		return a
	case *ast.UnaryExpr:
		switch x.Op {
		case token.SUB:
			a := tc.num(x.X)
			tc.emit(tinstr{op: tNegF, a: a, b: a})
			return a
		case token.MUL:
			p := tc.addr(x)
			r := tc.ta.allocF()
			tc.emit(tinstr{op: tLdIndF, a: r, b: p})
			tc.ta.popP()
			return r
		case token.INC, token.DEC:
			// no float32 rounding on ++/--, matching the closure backend
			get, set := tc.fltLval(x.X)
			v := get()
			d := 1.0
			if x.Op == token.DEC {
				d = -1
			}
			dr := tc.loadConstF(d)
			tc.emit(tinstr{op: tAddF, a: v, b: v, c: dr})
			tc.ta.popF()
			set(v)
			return v
		}
		panic(tapeBail{})
	case *ast.PostfixExpr:
		get, set := tc.fltLval(x.X)
		v := get()
		d := 1.0
		if x.Op == token.DEC {
			d = -1
		}
		dr := tc.loadConstF(d)
		nv := tc.ta.allocF()
		tc.emit(tinstr{op: tAddF, a: nv, b: v, c: dr})
		set(nv)
		tc.ta.popF() // nv
		tc.ta.popF() // dr
		return v
	case *ast.AssignExpr:
		panic(tapeBail{})
	case *ast.CondExpr:
		r := tc.ta.allocF()
		c := tc.test(x.Cond)
		jz := tc.emit(tinstr{op: tJz, b: c})
		tc.ta.popI()
		a := tc.num(x.Then)
		tc.emit(tinstr{op: tMovF, a: r, b: a})
		tc.ta.popF()
		jmp := tc.emit(tinstr{op: tJmp})
		tc.patch(jz)
		b := tc.num(x.Else)
		tc.emit(tinstr{op: tMovF, a: r, b: b})
		tc.ta.popF()
		tc.patch(jmp)
		return r
	case *ast.IndexExpr, *ast.MemberExpr:
		p := tc.addr(e)
		r := tc.ta.allocF()
		tc.emit(tinstr{op: tLdIndF, a: r, b: p})
		tc.ta.popP()
		return r
	case *ast.CastExpr:
		inner := fc.typeOf(x.X)
		if inner.Kind == types.Float {
			f := tc.flt(x.X)
			if fc.typeOf(x).CSize == 4 {
				// (float) cast of a double rounds through float32 like C.
				tc.emit(tinstr{op: tRoundF, a: f, b: f})
			}
			return f
		}
		g := tc.integer(x.X)
		tc.ta.popI()
		r := tc.ta.allocF()
		tc.emit(tinstr{op: tI2F, a: r, b: g})
		return r
	case *ast.CallExpr:
		return tc.callF(fc.callFlt(x))
	}
	panic(tapeBail{})
}

func (tc *tapeCompiler) ptrExpr(e ast.Expr) int32 {
	fc := tc.fc
	switch x := e.(type) {
	case *ast.Ident:
		sl, global := fc.slotOf(fc.symOf(x), x)
		r := tc.ta.allocP()
		if global {
			tc.emit(tinstr{op: tLdGP, a: r, b: int32(sl.idx)})
		} else {
			tc.emit(tinstr{op: tMovP, a: r, b: int32(sl.idx)})
		}
		return r
	case *ast.ParenExpr:
		return tc.ptrExpr(x.X)
	case *ast.IndexExpr:
		if r, ok := tc.partialArrayIndex(x); ok {
			return r
		}
		p := tc.addr(x)
		tc.emit(tinstr{op: tLdIndP, a: p, b: p})
		return p
	case *ast.MemberExpr:
		// array field decays to a pointer; pointer field loads
		_, fld := fc.fieldOf(x)
		base := tc.structBase(x)
		tc.emit(tinstr{op: tPtrImm, a: base, b: base, aux: int64(fld.Offset)})
		if fld.Count <= 1 {
			tc.emit(tinstr{op: tLdIndP, a: base, b: base})
		}
		return base
	case *ast.CastExpr:
		if call, ok := stripParens(x.X).(*ast.CallExpr); ok && call.Fun.Name == "malloc" {
			return tc.callP(fc.mallocCall(x, call))
		}
		inner := fc.typeOf(x.X)
		if inner.Kind == types.Ptr {
			return tc.ptrExpr(x.X)
		}
		if inner.Kind == types.Int {
			g := tc.integer(x.X)
			tc.ta.popI()
			r := tc.ta.allocP()
			tc.emit(tinstr{op: tIntToPtr, a: r, b: g})
			return r
		}
		panic(tapeBail{})
	case *ast.BinaryExpr:
		tl, tr := fc.typeOf(x.X), fc.typeOf(x.Y)
		switch {
		case tl.IsPtr() && tr.Kind == types.Int:
			p := tc.ptrExpr(x.X)
			i := tc.integer(x.Y)
			op := tPtrAdd
			if x.Op == token.SUB {
				op = tPtrSub
			}
			tc.emit(tinstr{op: op, a: p, b: p, c: i, aux: elemStride(tl.Elem)})
			tc.ta.popI()
			return p
		case tr.IsPtr() && tl.Kind == types.Int && x.Op == token.ADD:
			// i + p: the closure backend evaluates the pointer first
			p := tc.ptrExpr(x.Y)
			i := tc.integer(x.X)
			tc.emit(tinstr{op: tPtrAdd, a: p, b: p, c: i, aux: elemStride(tr.Elem)})
			tc.ta.popI()
			return p
		}
		panic(tapeBail{})
	case *ast.UnaryExpr:
		switch x.Op {
		case token.AND:
			return tc.addr(x.X)
		case token.MUL:
			p := tc.addr(x)
			tc.emit(tinstr{op: tLdIndP, a: p, b: p})
			return p
		}
		panic(tapeBail{})
	case *ast.CondExpr:
		r := tc.ta.allocP()
		c := tc.test(x.Cond)
		jz := tc.emit(tinstr{op: tJz, b: c})
		tc.ta.popI()
		a := tc.ptrExpr(x.Then)
		tc.emit(tinstr{op: tMovP, a: r, b: a})
		tc.ta.popP()
		jmp := tc.emit(tinstr{op: tJmp})
		tc.patch(jz)
		b := tc.ptrExpr(x.Else)
		tc.emit(tinstr{op: tMovP, a: r, b: b})
		tc.ta.popP()
		tc.patch(jmp)
		return r
	case *ast.AssignExpr:
		panic(tapeBail{})
	case *ast.CallExpr:
		if x.Fun.Name == "malloc" {
			panic(tapeBail{}) // closure backend reports the cast diagnostic
		}
		return tc.callP(fc.callPtr(x))
	case *ast.IntLit:
		if x.Value == 0 {
			r := tc.ta.allocP()
			tc.emit(tinstr{op: tNullP, a: r})
			return r
		}
		panic(tapeBail{})
	case *ast.StringLit:
		// the closure materializes the segment at compile time
		return tc.callP(fc.ptr(e))
	}
	panic(tapeBail{})
}

// partialArrayIndex mirrors the closure backend's row-pointer rule for
// under-subscripted multi-dimensional arrays.
func (tc *tapeCompiler) partialArrayIndex(x *ast.IndexExpr) (int32, bool) {
	fc := tc.fc
	subs, base := collectSubs(x)
	id, ok := base.(*ast.Ident)
	if !ok {
		return 0, false
	}
	sym := fc.prog.info.Ref[id]
	if sym == nil || !sym.IsArray() || len(subs) >= len(sym.Dims) {
		return 0, false
	}
	p := tc.ptrExpr(id)
	off := tc.flatOffset(sym, subs)
	stride := int64(1)
	for _, d := range sym.Dims[len(subs):] {
		stride *= int64(d)
	}
	tc.emit(tinstr{op: tPtrIdx, a: p, b: p, c: off, aux: stride})
	tc.ta.popI()
	return p, true
}

// flatOffset emits the row-major offset of the subscripts, evaluating
// them left to right like the closure backend.
func (tc *tapeCompiler) flatOffset(sym *sema.Symbol, subs []ast.Expr) int32 {
	if len(subs) == 1 {
		return tc.integer(subs[0])
	}
	acc := tc.loadConstI(0)
	for i := range subs {
		stride := int64(1)
		for _, d := range sym.Dims[i+1 : len(subs)] {
			stride *= int64(d)
		}
		f := tc.integer(subs[i])
		s := tc.loadConstI(stride)
		tc.emit(tinstr{op: tMulI, a: f, b: f, c: s})
		tc.emit(tinstr{op: tAddI, a: acc, b: acc, c: f})
		tc.ta.popI() // s
		tc.ta.popI() // f
	}
	return acc
}

// addr emits the address of an lvalue cell into a pointer register.
func (tc *tapeCompiler) addr(e ast.Expr) int32 {
	fc := tc.fc
	switch x := e.(type) {
	case *ast.ParenExpr:
		return tc.addr(x.X)
	case *ast.IndexExpr:
		subs, base := collectSubs(x)
		if id, ok := base.(*ast.Ident); ok {
			sym := fc.symOf(id)
			if sym.IsArray() && len(subs) == len(sym.Dims) {
				p := tc.ptrExpr(id)
				off := tc.flatOffset(sym, subs)
				tc.emit(tinstr{op: tPtrOff, a: p, b: p, c: off})
				tc.ta.popI()
				return p
			}
		}
		bt := fc.typeOf(x.X)
		if !bt.IsPtr() {
			panic(tapeBail{})
		}
		p := tc.ptrExpr(x.X)
		i := tc.integer(x.Index)
		tc.emit(tinstr{op: tPtrIdx, a: p, b: p, c: i, aux: elemStride(bt.Elem)})
		tc.ta.popI()
		return p
	case *ast.UnaryExpr:
		if x.Op == token.MUL {
			return tc.ptrExpr(x.X)
		}
		panic(tapeBail{})
	case *ast.MemberExpr:
		_, fld := fc.fieldOf(x)
		base := tc.structBase(x)
		tc.emit(tinstr{op: tPtrImm, a: base, b: base, aux: int64(fld.Offset)})
		return base
	case *ast.Ident:
		sym := fc.symOf(x)
		if sym.IsArray() || (sym.Type != nil && sym.Type.Kind == types.Struct) {
			return tc.ptrExpr(x)
		}
		panic(tapeBail{}) // scalar address-of is a closure-side diagnostic
	}
	panic(tapeBail{})
}

func (tc *tapeCompiler) structBase(x *ast.MemberExpr) int32 {
	if x.Arrow {
		return tc.ptrExpr(x.X)
	}
	return tc.addrOfStruct(x.X)
}

func (tc *tapeCompiler) addrOfStruct(e ast.Expr) int32 {
	switch x := e.(type) {
	case *ast.Ident:
		return tc.ptrExpr(x)
	case *ast.ParenExpr:
		return tc.addrOfStruct(x.X)
	case *ast.IndexExpr:
		return tc.addr(x)
	case *ast.UnaryExpr:
		if x.Op == token.MUL {
			return tc.ptrExpr(x.X)
		}
	case *ast.MemberExpr:
		_, fld := tc.fc.fieldOf(x)
		base := tc.structBase(x)
		tc.emit(tinstr{op: tPtrImm, a: base, b: base, aux: int64(fld.Offset)})
		return base
	}
	panic(tapeBail{})
}

// ----------------------------------------------------------------------------
// Lvalues. get emits a load into a fresh register; set emits the store
// of a source register. Non-identifier lvalues compute their address
// independently in get and set — exactly the closure backend's
// behavior for compound assignment and ++/--.

func (tc *tapeCompiler) intLval(e ast.Expr) (get func() int32, set func(src int32)) {
	switch x := stripParens(e).(type) {
	case *ast.Ident:
		sl, global := tc.fc.slotOf(tc.fc.symOf(x), x)
		idx := int32(sl.idx)
		if global {
			return func() int32 {
					r := tc.ta.allocI()
					tc.emit(tinstr{op: tLdGI, a: r, b: idx})
					return r
				}, func(src int32) {
					tc.emit(tinstr{op: tStGI, a: idx, b: src})
				}
		}
		return func() int32 {
				r := tc.ta.allocI()
				tc.emit(tinstr{op: tMovI, a: r, b: idx})
				return r
			}, func(src int32) {
				tc.emit(tinstr{op: tMovI, a: idx, b: src})
			}
	default:
		return func() int32 {
				p := tc.addr(e)
				r := tc.ta.allocI()
				tc.emit(tinstr{op: tLdInd, a: r, b: p})
				tc.ta.popP()
				return r
			}, func(src int32) {
				p := tc.addr(e)
				tc.emit(tinstr{op: tStInd, a: p, b: src})
				tc.ta.popP()
			}
	}
}

func (tc *tapeCompiler) fltLval(e ast.Expr) (get func() int32, set func(src int32)) {
	switch x := stripParens(e).(type) {
	case *ast.Ident:
		sl, global := tc.fc.slotOf(tc.fc.symOf(x), x)
		idx := int32(sl.idx)
		if global {
			return func() int32 {
					r := tc.ta.allocF()
					tc.emit(tinstr{op: tLdGF, a: r, b: idx})
					return r
				}, func(src int32) {
					tc.emit(tinstr{op: tStGF, a: idx, b: src})
				}
		}
		return func() int32 {
				r := tc.ta.allocF()
				tc.emit(tinstr{op: tMovF, a: r, b: idx})
				return r
			}, func(src int32) {
				tc.emit(tinstr{op: tMovF, a: idx, b: src})
			}
	default:
		return func() int32 {
				p := tc.addr(e)
				r := tc.ta.allocF()
				tc.emit(tinstr{op: tLdIndF, a: r, b: p})
				tc.ta.popP()
				return r
			}, func(src int32) {
				p := tc.addr(e)
				tc.emit(tinstr{op: tStIndF, a: p, b: src})
				tc.ta.popP()
			}
	}
}

func (tc *tapeCompiler) ptrLval(e ast.Expr) (get func() int32, set func(src int32)) {
	switch x := stripParens(e).(type) {
	case *ast.Ident:
		sl, global := tc.fc.slotOf(tc.fc.symOf(x), x)
		idx := int32(sl.idx)
		if global {
			return func() int32 {
					r := tc.ta.allocP()
					tc.emit(tinstr{op: tLdGP, a: r, b: idx})
					return r
				}, func(src int32) {
					tc.emit(tinstr{op: tStGP, a: idx, b: src})
				}
		}
		return func() int32 {
				r := tc.ta.allocP()
				tc.emit(tinstr{op: tMovP, a: r, b: idx})
				return r
			}, func(src int32) {
				tc.emit(tinstr{op: tMovP, a: idx, b: src})
			}
	default:
		return func() int32 {
				p := tc.addr(e)
				r := tc.ta.allocP()
				tc.emit(tinstr{op: tLdIndP, a: r, b: p})
				tc.ta.popP()
				return r
			}, func(src int32) {
				p := tc.addr(e)
				tc.emit(tinstr{op: tStIndP, a: p, b: src})
				tc.ta.popP()
			}
	}
}

// assignEffect compiles a statement-context assignment. (Assignment in
// expression-value context bails: the closure backend re-evaluates the
// RHS there, and the tape must not paper over that.)
func (tc *tapeCompiler) assignEffect(x *ast.AssignExpr) {
	fc := tc.fc
	tl := fc.typeOf(x.LHS)
	switch tl.Kind {
	case types.Float:
		get, set := tc.fltLval(x.LHS)
		var v int32
		if bin, ok := x.Op.AssignBinOp(); ok {
			v = get()
			r := tc.num(x.RHS)
			var op topcode
			switch bin {
			case token.ADD:
				op = tAddF
			case token.SUB:
				op = tSubF
			case token.MUL:
				op = tMulF
			case token.QUO:
				op = tDivF
			default:
				panic(tapeBail{})
			}
			tc.emit(tinstr{op: op, a: v, b: v, c: r})
			tc.ta.popF()
		} else {
			v = tc.num(x.RHS)
		}
		// C float (4 bytes) rounds every stored value through float32.
		if tl.CSize == 4 {
			tc.emit(tinstr{op: tRoundF, a: v, b: v})
		}
		set(v)
		tc.ta.popF()
	case types.Ptr:
		get, set := tc.ptrLval(x.LHS)
		var v int32
		if bin, ok := x.Op.AssignBinOp(); ok {
			v = get()
			r := tc.integer(x.RHS)
			op := tPtrAdd
			switch bin {
			case token.ADD:
				op = tPtrAdd
			case token.SUB:
				op = tPtrSub
			default:
				panic(tapeBail{})
			}
			tc.emit(tinstr{op: op, a: v, b: v, c: r, aux: elemStride(tl.Elem)})
			tc.ta.popI()
		} else {
			v = tc.ptrExpr(x.RHS)
		}
		set(v)
		tc.ta.popP()
	default:
		get, set := tc.intLval(x.LHS)
		var v int32
		if bin, ok := x.Op.AssignBinOp(); ok {
			if bin == token.QUO || bin == token.REM {
				// The closure backend evaluates the divisor first and
				// traps on zero before the accumulator load.
				r := tc.integer(x.RHS)
				chk, op := tChkDiv0, tDivI
				if bin == token.REM {
					chk, op = tChkRem0, tRemI
				}
				tc.emit(tinstr{op: chk, b: r})
				v = get()
				tc.emit(tinstr{op: op, a: v, b: v, c: r})
				set(v)
				tc.ta.popI() // v
				tc.ta.popI() // r
				return
			}
			v = get()
			r := tc.integer(x.RHS)
			var op topcode
			switch bin {
			case token.ADD:
				op = tAddI
			case token.SUB:
				op = tSubI
			case token.MUL:
				op = tMulI
			case token.AND:
				op = tAndI
			case token.OR:
				op = tOrI
			case token.XOR:
				op = tXorI
			case token.SHL:
				op = tShlI
			case token.SHR:
				op = tShrI
			default:
				panic(tapeBail{})
			}
			tc.emit(tinstr{op: op, a: v, b: v, c: r})
			tc.ta.popI()
		} else {
			v = tc.integer(x.RHS)
		}
		set(v)
		tc.ta.popI()
	}
}

// effect compiles an expression statement for its side effects.
func (tc *tapeCompiler) effect(e ast.Expr) {
	fc := tc.fc
	switch x := e.(type) {
	case *ast.AssignExpr:
		tc.assignEffect(x)
	case *ast.CallExpr:
		fn := fc.callEffect(x)
		idx := int32(len(tc.tp.effFns))
		tc.tp.effFns = append(tc.tp.effFns, fn)
		tc.emit(tinstr{op: tEff, b: idx})
	case *ast.ParenExpr:
		tc.effect(x.X)
	default:
		switch fc.typeOf(e).Kind {
		case types.Float:
			tc.flt(e)
			tc.ta.popF()
		case types.Ptr:
			tc.ptrExpr(e)
			tc.ta.popP()
		default:
			tc.intExpr(e)
			tc.ta.popI()
		}
	}
}
