package comp

// Peephole optimizer over finished tapes. The front end emits one
// instruction per closure-backend node, which keeps the translation
// auditable but pays switch dispatch for every temp-register move. The
// passes here fuse those sequences into the superinstructions declared
// in tape.go, cutting the dispatch count per source statement roughly
// in half to a third.
//
// Every rewrite preserves the tape contract exactly:
//
//   - liveness of temp registers is computed over the real control-flow
//     graph, and a write is only elided when the register is provably
//     dead (frame slots below the temp base — locals and parameters —
//     are always live);
//   - windows never cross a jump target (leader), a closure escape, or
//     an instruction that could observe or clobber the moved value, so
//     on every path the fused form reads the same values the expanded
//     form read;
//   - trapping instructions are never deleted, reordered relative to
//     other traps or stores, or given new operands: immediate division
//     folds only happen for nonzero constants, and the indexed memory
//     forms compute Off + int(idx*stride) exactly like Pointer.Add so
//     bad pointers panic with the identical runtime error;
//   - float arithmetic stays float64 with the same operation order:
//     constant operands fold only where IEEE 754 makes the swap exact
//     (never when the constant is NaN), and the multiply-add fusions
//     keep two roundings via an explicit float64 conversion.

import "math"

// optimize runs fusion passes to a fixpoint. Every successful rewrite
// nops at least one instruction and compaction removes the nops, so the
// loop strictly shrinks the tape and terminates.
func (tp *tape) optimize() {
	for {
		tp.compact()
		if len(tp.code) == 0 {
			return
		}
		lv := tp.analyze()
		if !tp.peephole(lv) {
			return
		}
	}
}

// ----------------------------------------------------------------------------
// Instruction descriptors: which fields hold frame-slot reads/writes.

type tfield uint8

const (
	fA tfield = iota
	fB
	fC
	fAux
)

const (
	tfPure    = 1 << iota // no trap, no memory/global/control effect
	tfBarrier             // closure escape: unknown global/memory effects
	tfJump                // transfers control (incl. conditional)
	tfExit                // leaves the tape (no fallthrough successor)
	tfGWrite              // writes a global scalar/pointer slot
)

// tdesc describes one opcode for the optimizer. rI/rF/rP list the
// instruction fields holding read slots of each kind; wI/wF/wP the
// field holding the written slot (or -1).
type tdesc struct {
	rI, rF, rP []tfield
	wI, wF, wP int8
	flags      uint8
}

var tdescs [256]tdesc

func tdef(ops []topcode, d tdesc) {
	for _, op := range ops {
		tdescs[op] = d
	}
}

func init() {
	for i := range tdescs {
		tdescs[i] = tdesc{wI: -1, wF: -1, wP: -1}
	}
	w := func(f tfield) int8 { return int8(f) }
	no := int8(-1)

	tdef([]topcode{tNop}, tdesc{wI: no, wF: no, wP: no, flags: tfPure})
	tdef([]topcode{tConstI}, tdesc{wI: w(fA), wF: no, wP: no, flags: tfPure})
	tdef([]topcode{tMovI, tNegI, tCmplI, tNotI},
		tdesc{rI: []tfield{fB}, wI: w(fA), wF: no, wP: no, flags: tfPure})
	tdef([]topcode{tAddI, tSubI, tMulI, tAndI, tOrI, tXorI, tShlI, tShrI,
		tEqI, tNeI, tLtI, tLeI, tGtI, tGeI},
		tdesc{rI: []tfield{fB, fC}, wI: w(fA), wF: no, wP: no, flags: tfPure})
	tdef([]topcode{tDivI, tRemI},
		tdesc{rI: []tfield{fB, fC}, wI: w(fA), wF: no, wP: no})
	tdef([]topcode{tChkDiv0, tChkRem0},
		tdesc{rI: []tfield{fB}, wI: no, wF: no, wP: no})
	// tDivII/tRemII are pure: they are only created with aux != 0.
	tdef([]topcode{tAddII, tRsbII, tMulII, tDivII, tRemII, tAndII, tOrII,
		tXorII, tShlII, tShrII, tEqII, tNeII, tLtII, tLeII, tGtII, tGeII},
		tdesc{rI: []tfield{fB}, wI: w(fA), wF: no, wP: no, flags: tfPure})

	tdef([]topcode{tConstF}, tdesc{wI: no, wF: w(fA), wP: no, flags: tfPure})
	tdef([]topcode{tMovF, tNegF, tRoundF},
		tdesc{rF: []tfield{fB}, wI: no, wF: w(fA), wP: no, flags: tfPure})
	tdef([]topcode{tAddF, tSubF, tMulF, tDivF},
		tdesc{rF: []tfield{fB, fC}, wI: no, wF: w(fA), wP: no, flags: tfPure})
	tdef([]topcode{tAddFC, tSubFC, tRsbFC, tMulFC, tDivFC, tRdivFC},
		tdesc{rF: []tfield{fB}, wI: no, wF: w(fA), wP: no, flags: tfPure})
	tdef([]topcode{tMulAddF, tAddMulF},
		tdesc{rF: []tfield{fB, fC, fAux}, wI: no, wF: w(fA), wP: no, flags: tfPure})
	tdef([]topcode{tMulAddFC, tAddMulFC},
		tdesc{rF: []tfield{fB, fAux}, wI: no, wF: w(fA), wP: no, flags: tfPure})
	tdef([]topcode{tI2F}, tdesc{rI: []tfield{fB}, wI: no, wF: w(fA), wP: no, flags: tfPure})
	tdef([]topcode{tF2I, tTstF}, tdesc{rF: []tfield{fB}, wI: w(fA), wF: no, wP: no, flags: tfPure})
	tdef([]topcode{tEqF, tNeF, tLtF, tLeF, tGtF, tGeF},
		tdesc{rF: []tfield{fB, fC}, wI: w(fA), wF: no, wP: no, flags: tfPure})
	tdef([]topcode{tEqFC, tNeFC, tLtFC, tLeFC, tGtFC, tGeFC},
		tdesc{rF: []tfield{fB}, wI: w(fA), wF: no, wP: no, flags: tfPure})

	tdef([]topcode{tLdGI}, tdesc{wI: w(fA), wF: no, wP: no, flags: tfPure})
	tdef([]topcode{tLdGF}, tdesc{wI: no, wF: w(fA), wP: no, flags: tfPure})
	tdef([]topcode{tLdGP}, tdesc{wI: no, wF: no, wP: w(fA), flags: tfPure})
	tdef([]topcode{tStGI}, tdesc{rI: []tfield{fB}, wI: no, wF: no, wP: no, flags: tfGWrite})
	tdef([]topcode{tStGF}, tdesc{rF: []tfield{fB}, wI: no, wF: no, wP: no, flags: tfGWrite})
	tdef([]topcode{tStGP}, tdesc{rP: []tfield{fB}, wI: no, wF: no, wP: no, flags: tfGWrite})

	tdef([]topcode{tMovP}, tdesc{rP: []tfield{fB}, wI: no, wF: no, wP: w(fA), flags: tfPure})
	tdef([]topcode{tNullP}, tdesc{wI: no, wF: no, wP: w(fA), flags: tfPure})
	tdef([]topcode{tTstP}, tdesc{rP: []tfield{fB}, wI: w(fA), wF: no, wP: no, flags: tfPure})
	tdef([]topcode{tIntToPtr}, tdesc{rI: []tfield{fB}, wI: no, wF: no, wP: w(fA)})
	tdef([]topcode{tPtrIdx, tPtrOff},
		tdesc{rP: []tfield{fB}, rI: []tfield{fC}, wI: no, wF: no, wP: w(fA), flags: tfPure})
	tdef([]topcode{tPtrImm}, tdesc{rP: []tfield{fB}, wI: no, wF: no, wP: w(fA), flags: tfPure})
	tdef([]topcode{tPtrAdd, tPtrSub},
		tdesc{rP: []tfield{fB}, rI: []tfield{fC}, wI: no, wF: no, wP: w(fA)})
	tdef([]topcode{tPtrDiff}, tdesc{rP: []tfield{fB, fC}, wI: w(fA), wF: no, wP: no})
	tdef([]topcode{tPtrEq, tPtrNe, tPtrLt, tPtrLe, tPtrGt, tPtrGe},
		tdesc{rP: []tfield{fB, fC}, wI: w(fA), wF: no, wP: no, flags: tfPure})

	tdef([]topcode{tLdInd}, tdesc{rP: []tfield{fB}, wI: w(fA), wF: no, wP: no})
	tdef([]topcode{tLdIndF}, tdesc{rP: []tfield{fB}, wI: no, wF: w(fA), wP: no})
	tdef([]topcode{tLdIndP}, tdesc{rP: []tfield{fB}, wI: no, wF: no, wP: w(fA)})
	tdef([]topcode{tStInd}, tdesc{rP: []tfield{fA}, rI: []tfield{fB}, wI: no, wF: no, wP: no})
	tdef([]topcode{tStIndF}, tdesc{rP: []tfield{fA}, rF: []tfield{fB}, wI: no, wF: no, wP: no})
	tdef([]topcode{tStIndP}, tdesc{rP: []tfield{fA, fB}, wI: no, wF: no, wP: no})

	tdef([]topcode{tLdGIdx}, tdesc{rI: []tfield{fC}, wI: w(fA), wF: no, wP: no})
	tdef([]topcode{tLdGIdxF, tLdGIdxFR}, tdesc{rI: []tfield{fC}, wI: no, wF: w(fA), wP: no})
	tdef([]topcode{tLdGIdxP}, tdesc{rI: []tfield{fC}, wI: no, wF: no, wP: w(fA)})
	tdef([]topcode{tStGIdx}, tdesc{rI: []tfield{fA, fC}, wI: no, wF: no, wP: no})
	tdef([]topcode{tStGIdxF, tStGIdxFR},
		tdesc{rF: []tfield{fA}, rI: []tfield{fC}, wI: no, wF: no, wP: no})
	tdef([]topcode{tStGIdxP}, tdesc{rP: []tfield{fA}, rI: []tfield{fC}, wI: no, wF: no, wP: no})
	tdef([]topcode{tLdIdx}, tdesc{rP: []tfield{fB}, rI: []tfield{fC}, wI: w(fA), wF: no, wP: no})
	tdef([]topcode{tLdIdxF, tLdIdxFR}, tdesc{rP: []tfield{fB}, rI: []tfield{fC}, wI: no, wF: w(fA), wP: no})
	tdef([]topcode{tLdIdxP}, tdesc{rP: []tfield{fB}, rI: []tfield{fC}, wI: no, wF: no, wP: w(fA)})
	tdef([]topcode{tStIdx}, tdesc{rI: []tfield{fA, fC}, rP: []tfield{fB}, wI: no, wF: no, wP: no})
	tdef([]topcode{tStIdxF, tStIdxFR},
		tdesc{rF: []tfield{fA}, rI: []tfield{fC}, rP: []tfield{fB}, wI: no, wF: no, wP: no})
	tdef([]topcode{tStIdxP}, tdesc{rP: []tfield{fA, fB}, rI: []tfield{fC}, wI: no, wF: no, wP: no})

	tdef([]topcode{tJmp}, tdesc{wI: no, wF: no, wP: no, flags: tfJump | tfExit})
	tdef([]topcode{tJz, tJnz}, tdesc{rI: []tfield{fB}, wI: no, wF: no, wP: no, flags: tfJump})
	tdef([]topcode{tJeqI, tJltI, tJleI},
		tdesc{rI: []tfield{fB, fC}, wI: no, wF: no, wP: no, flags: tfJump})
	tdef([]topcode{tJeqII, tJltII, tJleII},
		tdesc{rI: []tfield{fB}, wI: no, wF: no, wP: no, flags: tfJump})
	tdef([]topcode{tJeqF, tJneF, tJltF, tJleF, tJgtF, tJgeF,
		tJeqFC, tJneFC, tJltFC, tJleFC, tJgtFC, tJgeFC, tJzF, tJnzF},
		tdesc{rF: []tfield{fB}, wI: no, wF: no, wP: no, flags: tfJump})
	tdef([]topcode{tJeqF, tJneF, tJltF, tJleF, tJgtF, tJgeF},
		tdesc{rF: []tfield{fB, fC}, wI: no, wF: no, wP: no, flags: tfJump})
	tdef([]topcode{tJzP, tJnzP}, tdesc{rP: []tfield{fB}, wI: no, wF: no, wP: no, flags: tfJump})
	tdef([]topcode{tIncJltII}, tdesc{rI: []tfield{fB}, wI: w(fB), wF: no, wP: no, flags: tfJump})
	tdef([]topcode{tRet, tBrk, tCont}, tdesc{wI: no, wF: no, wP: no, flags: tfExit})
	tdef([]topcode{tRetI}, tdesc{rI: []tfield{fA}, wI: no, wF: no, wP: no, flags: tfExit})
	tdef([]topcode{tRetF}, tdesc{rF: []tfield{fA}, wI: no, wF: no, wP: no, flags: tfExit})
	tdef([]topcode{tRetP}, tdesc{rP: []tfield{fA}, wI: no, wF: no, wP: no, flags: tfExit})

	// Escapes touch no temp registers: closure-compiled code works on
	// the locals below the temp base, and nested tapes fully
	// rematerialize their operands. tCall* results land in a temp.
	tdef([]topcode{tCallI}, tdesc{wI: w(fA), wF: no, wP: no, flags: tfBarrier})
	tdef([]topcode{tCallF}, tdesc{wI: no, wF: w(fA), wP: no, flags: tfBarrier})
	tdef([]topcode{tCallP}, tdesc{wI: no, wF: no, wP: w(fA), flags: tfBarrier})
	tdef([]topcode{tEff}, tdesc{wI: no, wF: no, wP: no, flags: tfBarrier})
	tdef([]topcode{tStmt}, tdesc{wI: no, wF: no, wP: no, flags: tfBarrier | tfJump})
}

func tfieldVal(in *tinstr, f tfield) int32 {
	switch f {
	case fA:
		return in.a
	case fB:
		return in.b
	case fC:
		return in.c
	default:
		return int32(in.aux)
	}
}

func tfieldSet(in *tinstr, f tfield, v int32) {
	switch f {
	case fA:
		in.a = v
	case fB:
		in.b = v
	case fC:
		in.c = v
	default:
		in.aux = int64(v)
	}
}

// slot kind selectors for the generic helpers below
const (
	tkI = iota
	tkF
	tkP
)

func (d *tdesc) reads(kind int) []tfield {
	switch kind {
	case tkI:
		return d.rI
	case tkF:
		return d.rF
	default:
		return d.rP
	}
}

func (d *tdesc) writeField(kind int) int8 {
	switch kind {
	case tkI:
		return d.wI
	case tkF:
		return d.wF
	default:
		return d.wP
	}
}

func instrReads(in *tinstr, kind int, slot int32) bool {
	for _, f := range tdescs[in.op].reads(kind) {
		if tfieldVal(in, f) == slot {
			return true
		}
	}
	return false
}

func instrWrites(in *tinstr, kind int, slot int32) bool {
	wf := tdescs[in.op].writeField(kind)
	return wf >= 0 && tfieldVal(in, tfield(wf)) == slot
}

// substReads replaces every read of slot from with to. The write field
// is left alone.
func substReads(in *tinstr, kind int, from, to int32) {
	d := &tdescs[in.op]
	wf := d.writeField(kind)
	for _, f := range d.reads(kind) {
		if int8(f) != wf && tfieldVal(in, f) == from {
			tfieldSet(in, f, to)
		}
	}
}

// ----------------------------------------------------------------------------
// Control flow and liveness

// succs appends the successor pcs of the instruction at pc (an offset
// landing at len(code) is normal fall-off and not a successor).
func (tp *tape) succs(pc int, buf []int) []int {
	in := &tp.code[pc]
	n := len(tp.code)
	add := func(t int) []int {
		if t >= 0 && t < n {
			buf = append(buf, t)
		}
		return buf
	}
	d := &tdescs[in.op]
	if in.op == tStmt {
		buf = add(pc + 1)
		if in.a != tapeCtrlRet {
			buf = add(pc + int(in.a))
		}
		if in.c != tapeCtrlRet {
			buf = add(pc + int(in.c))
		}
		return buf
	}
	if d.flags&tfExit != 0 {
		if in.op == tJmp {
			return add(pc + int(in.a))
		}
		return buf
	}
	if d.flags&tfJump != 0 {
		buf = add(pc + 1)
		return add(pc + int(in.a))
	}
	return add(pc + 1)
}

// leaders marks every jump target. Index len(code) is the implicit
// exit block.
func (tp *tape) leaders() []bool {
	n := len(tp.code)
	ld := make([]bool, n+1)
	ld[0] = true
	for pc := range tp.code {
		in := &tp.code[pc]
		d := &tdescs[in.op]
		mark := func(off int32) {
			if t := pc + int(off); t >= 0 && t <= n {
				ld[t] = true
			}
		}
		if in.op == tStmt {
			if in.a != tapeCtrlRet {
				mark(in.a)
			}
			if in.c != tapeCtrlRet {
				mark(in.c)
			}
		} else if d.flags&tfJump != 0 {
			mark(in.a)
		}
	}
	return ld
}

type tbits []uint64

func (b tbits) get(i int32) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }
func (b tbits) set(i int32)      { b[i>>6] |= 1 << uint(i&63) }

func (b tbits) orInto(o tbits) bool {
	changed := false
	for i, w := range o {
		if b[i]|w != b[i] {
			b[i] |= w
			changed = true
		}
	}
	return changed
}

// tlive holds per-pc live-in temp sets per kind, plus the leaders.
type tlive struct {
	tp               *tape
	inI, inF, inP    []tbits
	ld               []bool
	maxI, maxF, maxP int32
}

// liveOut reports whether the temp slot is live after pc. Slots below
// the temp base are always live; slots the tape never reads are dead.
func (lv *tlive) liveOut(pc int, kind int, slot int32) bool {
	var base int32
	var sets []tbits
	var max int32
	switch kind {
	case tkI:
		base, sets, max = lv.tp.tmpI, lv.inI, lv.maxI
	case tkF:
		base, sets, max = lv.tp.tmpF, lv.inF, lv.maxF
	default:
		base, sets, max = lv.tp.tmpP, lv.inP, lv.maxP
	}
	if slot < base {
		return true
	}
	if slot >= max {
		return false
	}
	var buf [3]int
	for _, s := range lv.tp.succs(pc, buf[:0]) {
		if sets[s].get(slot) {
			return true
		}
	}
	return false
}

// analyze computes backward liveness of temp registers over the tape's
// control-flow graph (a standard dataflow fixpoint).
func (tp *tape) analyze() *tlive {
	n := len(tp.code)
	lv := &tlive{tp: tp, ld: tp.leaders()}
	for pc := range tp.code {
		in := &tp.code[pc]
		d := &tdescs[in.op]
		grow := func(kind int, max *int32) {
			for _, f := range d.reads(kind) {
				if v := tfieldVal(in, f); v >= *max {
					*max = v + 1
				}
			}
			if wf := d.writeField(kind); wf >= 0 {
				if v := tfieldVal(in, tfield(wf)); v >= *max {
					*max = v + 1
				}
			}
		}
		grow(tkI, &lv.maxI)
		grow(tkF, &lv.maxF)
		grow(tkP, &lv.maxP)
	}
	alloc := func(max int32) []tbits {
		words := int(max+63) / 64
		sets := make([]tbits, n)
		backing := make([]uint64, n*words)
		for i := range sets {
			sets[i] = backing[i*words : (i+1)*words]
		}
		return sets
	}
	lv.inI, lv.inF, lv.inP = alloc(lv.maxI), alloc(lv.maxF), alloc(lv.maxP)

	scratch := struct{ i, f, p tbits }{
		make(tbits, int(lv.maxI+63)/64),
		make(tbits, int(lv.maxF+63)/64),
		make(tbits, int(lv.maxP+63)/64),
	}
	var buf [3]int
	for changed := true; changed; {
		changed = false
		for pc := n - 1; pc >= 0; pc-- {
			in := &tp.code[pc]
			d := &tdescs[in.op]
			for i := range scratch.i {
				scratch.i[i] = 0
			}
			for i := range scratch.f {
				scratch.f[i] = 0
			}
			for i := range scratch.p {
				scratch.p[i] = 0
			}
			for _, s := range tp.succs(pc, buf[:0]) {
				scratch.i.orInto(lv.inI[s])
				scratch.f.orInto(lv.inF[s])
				scratch.p.orInto(lv.inP[s])
			}
			step := func(kind int, set tbits, base int32) {
				if wf := d.writeField(kind); wf >= 0 {
					if v := tfieldVal(in, tfield(wf)); v >= base {
						set[v>>6] &^= 1 << uint(v&63)
					}
				}
				for _, f := range d.reads(kind) {
					if v := tfieldVal(in, f); v >= base {
						set.set(v)
					}
				}
			}
			step(tkI, scratch.i, tp.tmpI)
			step(tkF, scratch.f, tp.tmpF)
			step(tkP, scratch.p, tp.tmpP)
			if lv.inI[pc].orInto(scratch.i) {
				changed = true
			}
			if lv.inF[pc].orInto(scratch.f) {
				changed = true
			}
			if lv.inP[pc].orInto(scratch.p) {
				changed = true
			}
		}
	}
	return lv
}

// ----------------------------------------------------------------------------
// Compaction

// compact removes tNop instructions and remaps every relative jump
// offset (including tStmt break/continue offsets) across the removal.
func (tp *tape) compact() {
	n := len(tp.code)
	newpc := make([]int, n+1)
	k := 0
	for i := 0; i < n; i++ {
		newpc[i] = k
		if tp.code[i].op != tNop {
			k++
		}
	}
	newpc[n] = k
	if k == n {
		return
	}
	out := make([]tinstr, 0, k)
	for i := 0; i < n; i++ {
		in := tp.code[i]
		if in.op == tNop {
			continue
		}
		remap := func(off int32) int32 {
			return int32(newpc[i+int(off)] - newpc[i])
		}
		if in.op == tStmt {
			if in.a != tapeCtrlRet {
				in.a = remap(in.a)
			}
			if in.c != tapeCtrlRet {
				in.c = remap(in.c)
			}
		} else if tdescs[in.op].flags&tfJump != 0 {
			in.a = remap(in.a)
		}
		out = append(out, in)
	}
	tp.code = out
}

// ----------------------------------------------------------------------------
// Constant pool access (optimizer side — the compiler's maps are gone)

func (tp *tape) constIIdx(v int64) int32 {
	for i, x := range tp.constI {
		if x == v {
			return int32(i)
		}
	}
	tp.constI = append(tp.constI, v)
	return int32(len(tp.constI) - 1)
}

func (tp *tape) constFIdx(v float64) int32 {
	bits := math.Float64bits(v)
	for i, x := range tp.constF {
		if math.Float64bits(x) == bits {
			return int32(i)
		}
	}
	tp.constF = append(tp.constF, v)
	return int32(len(tp.constF) - 1)
}

// ----------------------------------------------------------------------------
// The peephole pass

// tapeOptWindow caps forward/backward scans. Windows are short by
// design: temps die within a statement, so fusible pairs sit close.
const tapeOptWindow = 12

// peephole makes one forward scan, applying every applicable rewrite.
// Leaders and liveness come from before the scan; all rewrites either
// shrink a live range or (compare→branch, copy propagation) extend a
// read by at most the distance to a consumer across instructions the
// scan verified to not touch the slot, which no later pattern in the
// same pass can observe incorrectly (deadness queries are tied to
// writes, and writes of the slot stop every scan).
func (tp *tape) peephole(lv *tlive) bool {
	changed := false
	for i := range tp.code {
		switch tp.code[i].op {
		case tNop:
			continue
		case tConstI:
			changed = tp.foldConstI(i, lv) || changed
		case tConstF:
			changed = tp.foldConstF(i, lv) || changed
		case tPtrIdx, tPtrOff:
			changed = tp.fuseIndexed(i, lv) || changed
		case tMulF, tMulFC:
			changed = tp.fuseMulAdd(i, lv) || changed
		case tRoundF:
			changed = tp.fuseRoundStore(i, lv) || changed
		case tLdGIdxF, tLdIdxF:
			changed = tp.fuseLoadRound(i, lv) || changed
		case tAddII:
			changed = tp.fuseIncJlt(i, lv) || changed
		}
		in := &tp.code[i]
		d := &tdescs[in.op]
		if in.op != tNop {
			if d.wI >= 0 || d.wF >= 0 || d.wP >= 0 {
				changed = tp.fuseCmpBranch(i, lv) || changed
				changed = tp.elimMov(i, lv) || changed
			}
			switch in.op {
			case tMovI, tMovF, tMovP:
				changed = tp.copyProp(i, lv) || changed
			}
			changed = tp.elimDead(i, lv) || changed
		}
	}
	return changed
}

// deadOrRedefined reports that temp slot is not consumed beyond pc:
// either liveness proves it dead after pc, or the instruction at pc
// itself redefines it (so later readers see the new value).
func (tp *tape) deadOrRedefined(lv *tlive, pc int, kind int, slot int32) bool {
	if instrWrites(&tp.code[pc], kind, slot) {
		return true
	}
	return !lv.liveOut(pc, kind, slot)
}

func (tp *tape) isTmp(kind int, slot int32) bool {
	switch kind {
	case tkI:
		return slot >= tp.tmpI
	case tkF:
		return slot >= tp.tmpF
	default:
		return slot >= tp.tmpP
	}
}

// elimDead nops a pure instruction whose only effect is writing dead
// temp registers.
func (tp *tape) elimDead(i int, lv *tlive) bool {
	in := &tp.code[i]
	d := &tdescs[in.op]
	if d.flags&tfPure == 0 || in.op == tNop {
		return false
	}
	hasW := false
	for kind := tkI; kind <= tkP; kind++ {
		wf := d.writeField(kind)
		if wf < 0 {
			continue
		}
		hasW = true
		slot := tfieldVal(in, tfield(wf))
		if !tp.isTmp(kind, slot) || lv.liveOut(i, kind, slot) {
			return false
		}
	}
	if !hasW {
		return false
	}
	*in = tinstr{}
	return true
}

// foldConstI folds [tConstI t,K][op … t …] into an immediate form when
// t is a dead-after temp. Constant-constant chains fold back into
// tConstI, constant branches into tJmp/nothing, and a passing
// tChkDiv0/tChkRem0 on a nonzero constant disappears.
func (tp *tape) foldConstI(i int, lv *tlive) bool {
	if i+1 >= len(tp.code) || lv.ld[i+1] {
		return false
	}
	in, nx := &tp.code[i], &tp.code[i+1]
	t := in.a
	if !tp.isTmp(tkI, t) {
		return false
	}
	k := tp.constI[in.b]

	// A nonzero constant divisor check always passes.
	if (nx.op == tChkDiv0 || nx.op == tChkRem0) && nx.b == t && k != 0 {
		*nx = tinstr{}
		return true
	}

	if !tp.deadOrRedefined(lv, i+1, tkI, t) {
		return false
	}
	switch nx.op {
	case tJz:
		if nx.b != t {
			return false
		}
		if k == 0 {
			*nx = tinstr{op: tJmp, a: nx.a}
		} else {
			*nx = tinstr{}
		}
		*in = tinstr{}
		return true
	case tJnz:
		if nx.b != t {
			return false
		}
		if k != 0 {
			*nx = tinstr{op: tJmp, a: nx.a}
		} else {
			*nx = tinstr{}
		}
		*in = tinstr{}
		return true
	case tMovI:
		if nx.b != t {
			return false
		}
		*nx = tinstr{op: tConstI, a: nx.a, b: in.b}
		*in = tinstr{}
		return true
	}

	// Constant-constant chain: an immediate op consuming t.
	if immK, ok := tapeEvalImm(nx, k); ok && nx.b == t {
		*nx = tinstr{op: tConstI, a: nx.a, b: tp.constIIdx(immK)}
		*in = tinstr{}
		return true
	}

	type immMap struct {
		right, left topcode // 0 = not foldable on that side
	}
	m, ok := map[topcode]immMap{
		tAddI: {tAddII, tAddII},
		tSubI: {tAddII, tRsbII}, // b - K == b + (-K) in two's complement
		tMulI: {tMulII, tMulII},
		tDivI: {tDivII, 0},
		tRemI: {tRemII, 0},
		tAndI: {tAndII, tAndII},
		tOrI:  {tOrII, tOrII},
		tXorI: {tXorII, tXorII},
		tShlI: {tShlII, 0},
		tShrI: {tShrII, 0},
		tEqI:  {tEqII, tEqII},
		tNeI:  {tNeII, tNeII},
		tLtI:  {tLtII, tGtII}, // K < x  ⇔  x > K
		tLeI:  {tLeII, tGeII},
		tGtI:  {tGtII, tLtII},
		tGeI:  {tGeII, tLeII},
	}[nx.op]
	if !ok {
		return false
	}
	aux := k
	if nx.op == tSubI && nx.c == t {
		aux = -k
	}
	switch {
	case nx.c == t && nx.b != t && m.right != 0:
		if (nx.op == tDivI || nx.op == tRemI) && k == 0 {
			return false
		}
		*nx = tinstr{op: m.right, a: nx.a, b: nx.b, aux: aux}
	case nx.b == t && nx.c != t && m.left != 0:
		*nx = tinstr{op: m.left, a: nx.a, b: nx.c, aux: k}
	default:
		return false
	}
	*in = tinstr{}
	return true
}

// tapeEvalImm evaluates an immediate integer op applied to constant k,
// mirroring exec exactly.
func tapeEvalImm(in *tinstr, k int64) (int64, bool) {
	switch in.op {
	case tAddII:
		return k + in.aux, true
	case tRsbII:
		return in.aux - k, true
	case tMulII:
		return k * in.aux, true
	case tDivII:
		return k / in.aux, true
	case tRemII:
		return k % in.aux, true
	case tAndII:
		return k & in.aux, true
	case tOrII:
		return k | in.aux, true
	case tXorII:
		return k ^ in.aux, true
	case tShlII:
		return k << uint(in.aux), true
	case tShrII:
		return k >> uint(in.aux), true
	case tEqII:
		return b2i(k == in.aux), true
	case tNeII:
		return b2i(k != in.aux), true
	case tLtII:
		return b2i(k < in.aux), true
	case tLeII:
		return b2i(k <= in.aux), true
	case tGtII:
		return b2i(k > in.aux), true
	case tGeII:
		return b2i(k >= in.aux), true
	}
	return 0, false
}

// foldConstF folds [tConstF t,K][float op … t …] into the FC forms.
// Swapping a constant to the right of + and * is exact in IEEE 754
// unless the constant is NaN (payload propagation may be order-
// dependent); mirrored compares are exact including NaN.
func (tp *tape) foldConstF(i int, lv *tlive) bool {
	if i+1 >= len(tp.code) || lv.ld[i+1] {
		return false
	}
	in, nx := &tp.code[i], &tp.code[i+1]
	t := in.a
	if !tp.isTmp(tkF, t) {
		return false
	}
	k := tp.constF[in.b]
	kidx := in.b

	// Compares write an int register; arithmetic writes a float one.
	// Redefinition of t can only happen through the float write field.
	dead := tp.deadOrRedefined(lv, i+1, tkF, t)
	if !dead {
		return false
	}

	switch nx.op {
	case tMovF:
		if nx.b != t {
			return false
		}
		*nx = tinstr{op: tConstF, a: nx.a, b: kidx}
		*in = tinstr{}
		return true
	case tRoundF:
		if nx.b != t {
			return false
		}
		*nx = tinstr{op: tConstF, a: nx.a, b: tp.constFIdx(float64(float32(k)))}
		*in = tinstr{}
		return true
	}

	type fcMap struct {
		right, left topcode
		swapNaN     bool // left form commutes operands — unsafe for NaN K
	}
	m, ok := map[topcode]fcMap{
		tAddF: {tAddFC, tAddFC, true},
		tSubF: {tSubFC, tRsbFC, false},
		tMulF: {tMulFC, tMulFC, true},
		tDivF: {tDivFC, tRdivFC, false},
		tEqF:  {tEqFC, tEqFC, false}, // symmetric predicates are exact
		tNeF:  {tNeFC, tNeFC, false},
		tLtF:  {tLtFC, tGtFC, false}, // K < x  ⇔  x > K, incl. NaN
		tLeF:  {tLeFC, tGeFC, false},
		tGtF:  {tGtFC, tLtFC, false},
		tGeF:  {tGeFC, tLeFC, false},
	}[nx.op]
	if !ok {
		return false
	}
	switch {
	case nx.c == t && nx.b != t:
		*nx = tinstr{op: m.right, a: nx.a, b: nx.b, c: kidx}
	case nx.b == t && nx.c != t:
		if m.swapNaN && math.IsNaN(k) {
			return false
		}
		*nx = tinstr{op: m.left, a: nx.a, b: nx.c, c: kidx}
	default:
		return false
	}
	*in = tinstr{}
	return true
}

// fuseCmpBranch rewrites [compare t,…][tJz/tJnz t] into one fused
// compare-and-branch. Int predicates reduce to eq/lt/le with a negate
// flag (exact); float predicates keep all six and only negate the
// branch sense, which is NaN-exact by construction.
func (tp *tape) fuseCmpBranch(i int, lv *tlive) bool {
	if i+1 >= len(tp.code) || lv.ld[i+1] {
		return false
	}
	in, nx := &tp.code[i], &tp.code[i+1]
	if nx.op != tJz && nx.op != tJnz {
		return false
	}
	t := in.a
	if nx.b != t || !tp.isTmp(tkI, t) || lv.liveOut(i+1, tkI, t) {
		return false
	}
	neg := nx.op == tJz
	var out tinstr
	switch in.op {
	case tNotI:
		// [tNotI t,v][jz t] ⇔ jump when v != 0.
		if neg {
			out = tinstr{op: tJnz, a: nx.a, b: in.b}
		} else {
			out = tinstr{op: tJz, a: nx.a, b: in.b}
		}
	case tTstF:
		if neg {
			out = tinstr{op: tJzF, a: nx.a, b: in.b}
		} else {
			out = tinstr{op: tJnzF, a: nx.a, b: in.b}
		}
	case tTstP:
		if neg {
			out = tinstr{op: tJzP, a: nx.a, b: in.b}
		} else {
			out = tinstr{op: tJnzP, a: nx.a, b: in.b}
		}
	case tEqI, tNeI, tLtI, tLeI, tGtI, tGeI:
		m := map[topcode]struct {
			op   topcode
			flip bool
		}{
			tEqI: {tJeqI, false}, tNeI: {tJeqI, true},
			tLtI: {tJltI, false}, tGeI: {tJltI, true},
			tLeI: {tJleI, false}, tGtI: {tJleI, true},
		}[in.op]
		out = tinstr{op: m.op, a: nx.a, b: in.b, c: in.c, aux: b2i(neg != m.flip)}
	case tEqII, tNeII, tLtII, tLeII, tGtII, tGeII:
		m := map[topcode]struct {
			op   topcode
			flip bool
		}{
			tEqII: {tJeqII, false}, tNeII: {tJeqII, true},
			tLtII: {tJltII, false}, tGeII: {tJltII, true},
			tLeII: {tJleII, false}, tGtII: {tJleII, true},
		}[in.op]
		out = tinstr{op: m.op, a: nx.a, b: in.b, c: int32(b2i(neg != m.flip)), aux: in.aux}
	case tEqF, tNeF, tLtF, tLeF, tGtF, tGeF:
		op := map[topcode]topcode{
			tEqF: tJeqF, tNeF: tJneF, tLtF: tJltF,
			tLeF: tJleF, tGtF: tJgtF, tGeF: tJgeF,
		}[in.op]
		out = tinstr{op: op, a: nx.a, b: in.b, c: in.c, aux: b2i(neg)}
	case tEqFC, tNeFC, tLtFC, tLeFC, tGtFC, tGeFC:
		op := map[topcode]topcode{
			tEqFC: tJeqFC, tNeFC: tJneFC, tLtFC: tJltFC,
			tLeFC: tJleFC, tGtFC: tJgtFC, tGeFC: tJgeFC,
		}[in.op]
		out = tinstr{op: op, a: nx.a, b: in.b, c: in.c, aux: b2i(neg)}
	default:
		return false
	}
	*nx = out
	*in = tinstr{}
	return true
}

// elimMov retargets [op → t][tMov* v,t] into op writing v directly
// when t is a dead-after temp. Operands are read before the result is
// written, so this is exact even when op reads v.
func (tp *tape) elimMov(i int, lv *tlive) bool {
	if i+1 >= len(tp.code) || lv.ld[i+1] {
		return false
	}
	in, nx := &tp.code[i], &tp.code[i+1]
	var kind int
	switch nx.op {
	case tMovI:
		kind = tkI
	case tMovF:
		kind = tkF
	case tMovP:
		kind = tkP
	default:
		return false
	}
	d := &tdescs[in.op]
	wf := d.writeField(kind)
	if wf != int8(fA) || d.flags&tfJump != 0 {
		return false
	}
	t := in.a
	if nx.b != t || nx.a == t || !tp.isTmp(kind, t) || lv.liveOut(i+1, kind, t) {
		return false
	}
	in.a = nx.a
	*nx = tinstr{}
	return true
}

// scanStop reports instructions a forward value-motion scan cannot
// cross: control flow, closure escapes, and jump targets.
func (tp *tape) scanStop(j int, lv *tlive) bool {
	if lv.ld[j] {
		return true
	}
	return tdescs[tp.code[j].op].flags&(tfBarrier|tfJump|tfExit) != 0
}

// copyProp forwards [tMov* t,v] into the first consumer of t within
// the window, when nothing in between touches t or v and t dies at the
// consumer.
func (tp *tape) copyProp(i int, lv *tlive) bool {
	in := &tp.code[i]
	var kind int
	switch in.op {
	case tMovI:
		kind = tkI
	case tMovF:
		kind = tkF
	case tMovP:
		kind = tkP
	default:
		return false
	}
	t, v := in.a, in.b
	if t == v || !tp.isTmp(kind, t) {
		return false
	}
	for j := i + 1; j < len(tp.code) && j <= i+tapeOptWindow; j++ {
		if tp.scanStop(j, lv) {
			return false
		}
		nx := &tp.code[j]
		if instrReads(nx, kind, t) {
			if !tp.deadOrRedefined(lv, j, kind, t) {
				return false
			}
			substReads(nx, kind, t, v)
			*in = tinstr{}
			return true
		}
		if instrWrites(nx, kind, t) || instrWrites(nx, kind, v) {
			return false
		}
	}
	return false
}

// fuseMulAdd turns a float multiply whose dead temp feeds a later
// tAddF into one fused multiply-add, preserving operand order (the
// product stays on the side it occupied in the addition) and both
// roundings.
func (tp *tape) fuseMulAdd(i int, lv *tlive) bool {
	in := &tp.code[i]
	t := in.a
	if !tp.isTmp(tkF, t) {
		return false
	}
	m1, m2 := in.b, in.c
	regMul := in.op == tMulF
	for j := i + 1; j < len(tp.code) && j <= i+tapeOptWindow; j++ {
		if tp.scanStop(j, lv) {
			return false
		}
		nx := &tp.code[j]
		if instrReads(nx, tkF, t) {
			if nx.op != tAddF || !tp.deadOrRedefined(lv, j, tkF, t) {
				return false
			}
			var out tinstr
			switch {
			case nx.b == t && nx.c != t:
				if regMul {
					out = tinstr{op: tMulAddF, a: nx.a, b: m1, c: m2, aux: int64(nx.c)}
				} else {
					out = tinstr{op: tMulAddFC, a: nx.a, b: m1, c: m2, aux: int64(nx.c)}
				}
			case nx.c == t && nx.b != t:
				if regMul {
					out = tinstr{op: tAddMulF, a: nx.a, b: m1, c: m2, aux: int64(nx.b)}
				} else {
					out = tinstr{op: tAddMulFC, a: nx.a, b: m1, c: m2, aux: int64(nx.b)}
				}
			default:
				return false
			}
			*nx = out
			*in = tinstr{}
			return true
		}
		if instrWrites(nx, tkF, t) || instrWrites(nx, tkF, m1) ||
			(regMul && instrWrites(nx, tkF, m2)) {
			return false
		}
	}
	return false
}

// fuseIndexed collapses [base load p][tPtrIdx/tPtrOff p,p,idx][access
// through p] into one indexed superinstruction. The base producer —
// tLdGP (global array) or tMovP (frame slot) — may sit a few
// instructions back; the scan only crosses instructions that cannot
// change the base slot or the producer's source, so the fused re-read
// yields the identical pointer. Address arithmetic and the raw segment
// access match Pointer.Add + Load/Store panic for panic.
func (tp *tape) fuseIndexed(i int, lv *tlive) bool {
	if i+1 >= len(tp.code) || lv.ld[i] || lv.ld[i+1] {
		return false
	}
	idx := &tp.code[i]
	d := idx.a     // pointer register the access reads
	s := idx.b     // pointer register holding the base
	st := int64(1) // element stride
	if idx.op == tPtrIdx {
		st = idx.aux
	}
	if !tp.isTmp(tkP, d) || !tp.isTmp(tkP, s) {
		return false
	}
	nx := &tp.code[i+1]
	var isLoad bool
	switch nx.op {
	case tLdInd, tLdIndF, tLdIndP:
		if nx.b != d {
			return false
		}
		isLoad = true
	case tStInd, tStIndF, tStIndP:
		if nx.a != d {
			return false
		}
	default:
		return false
	}
	if !tp.deadOrRedefined(lv, i+1, tkP, d) {
		return false
	}
	if s != d && lv.liveOut(i+1, tkP, s) {
		return false
	}

	// Find the producer of the base register.
	prod := -1
	for j := i - 1; j >= 0 && j >= i-tapeOptWindow; j-- {
		pj := &tp.code[j]
		if pj.op == tLdGP && pj.a == s {
			prod = j
			break
		}
		if pj.op == tMovP && pj.a == s {
			prod = j
			break
		}
		if instrReads(pj, tkP, s) || instrWrites(pj, tkP, s) {
			return false
		}
		if tdescs[pj.op].flags&(tfBarrier|tfJump|tfExit|tfGWrite) != 0 {
			return false
		}
		// Positions between producer and access must not be entered
		// sideways; the producer itself may be a leader (the fused
		// access re-reads the same unchanged base).
		if lv.ld[j] {
			return false
		}
	}
	if prod < 0 {
		return false
	}
	pr := &tp.code[prod]
	global := pr.op == tLdGP
	base := pr.b
	if !global {
		// Frame-slot base: its value must be unchanged up to the access.
		for j := prod + 1; j < i; j++ {
			if instrWrites(&tp.code[j], tkP, base) {
				return false
			}
		}
	}

	var out tinstr
	if isLoad {
		ops := map[topcode][2]topcode{
			tLdInd:  {tLdGIdx, tLdIdx},
			tLdIndF: {tLdGIdxF, tLdIdxF},
			tLdIndP: {tLdGIdxP, tLdIdxP},
		}[nx.op]
		op := ops[1]
		if global {
			op = ops[0]
		}
		out = tinstr{op: op, a: nx.a, b: base, c: idx.c, aux: st}
	} else {
		ops := map[topcode][2]topcode{
			tStInd:  {tStGIdx, tStIdx},
			tStIndF: {tStGIdxF, tStIdxF},
			tStIndP: {tStGIdxP, tStIdxP},
		}[nx.op]
		op := ops[1]
		if global {
			op = ops[0]
		}
		out = tinstr{op: op, a: nx.b, b: base, c: idx.c, aux: st}
	}
	*nx = out
	*idx = tinstr{}
	*pr = tinstr{}
	return true
}

// fuseRoundStore merges [tRoundF t,src][indexed float store of t] into
// the round-while-storing forms.
func (tp *tape) fuseRoundStore(i int, lv *tlive) bool {
	if i+1 >= len(tp.code) || lv.ld[i+1] {
		return false
	}
	in, nx := &tp.code[i], &tp.code[i+1]
	t := in.a
	if !tp.isTmp(tkF, t) {
		return false
	}
	var op topcode
	switch nx.op {
	case tStGIdxF:
		op = tStGIdxFR
	case tStIdxF:
		op = tStIdxFR
	default:
		return false
	}
	if nx.a != t || lv.liveOut(i+1, tkF, t) {
		return false
	}
	nx.op = op
	nx.a = in.b
	*in = tinstr{}
	return true
}

// fuseLoadRound merges [indexed float load t][tRoundF v,t] into the
// rounding load forms (float32 array reads feeding float declarations).
func (tp *tape) fuseLoadRound(i int, lv *tlive) bool {
	if i+1 >= len(tp.code) || lv.ld[i+1] {
		return false
	}
	in, nx := &tp.code[i], &tp.code[i+1]
	t := in.a
	if !tp.isTmp(tkF, t) || nx.op != tRoundF || nx.b != t {
		return false
	}
	if !tp.deadOrRedefined(lv, i+1, tkF, t) {
		return false
	}
	switch in.op {
	case tLdGIdxF:
		in.op = tLdGIdxFR
	case tLdIdxF:
		in.op = tLdIdxFR
	default:
		return false
	}
	in.a = nx.a
	*nx = tinstr{}
	return true
}

// fuseIncJlt merges a rotated loop tail [tAddII v,v,1][tJltII v < N]
// into one increment-test-branch. v may be a local: the fused form
// performs the identical write.
func (tp *tape) fuseIncJlt(i int, lv *tlive) bool {
	if i+1 >= len(tp.code) || lv.ld[i+1] {
		return false
	}
	in, nx := &tp.code[i], &tp.code[i+1]
	if in.a != in.b || in.aux != 1 {
		return false
	}
	if nx.op != tJltII || nx.b != in.a || nx.c != 0 {
		return false
	}
	*nx = tinstr{op: tIncJltII, a: nx.a, b: in.a, aux: nx.aux}
	*in = tinstr{}
	return true
}
