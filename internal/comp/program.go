package comp

import (
	"fmt"

	"purec/internal/ast"
	"purec/internal/memo"
	"purec/internal/purity"
	"purec/internal/rt"
	"purec/internal/sema"
)

// Program is an immutable, concurrency-safe compile artifact: the
// compiled function closures, the global storage layout and the backend
// metadata. A Program holds no run state — globals, heap, stdout, team
// and rand state live in a Process — so any number of Processes of one
// Program may execute concurrently. The one concurrency-safe mutable
// attachment is the shared memo table (when compiled with
// Options.Memoize): pure-call results are referentially transparent, so
// sharing them across Processes never changes observable behaviour.
type Program struct {
	info      *sema.Info
	backend   Backend
	engine    Engine
	vectorize bool
	noFuse    bool
	// fusedKernels counts the loops compiled into fused segment-walking
	// kernels (element-wise and reduction shapes), for the purecc
	// "fused kernels: N" report line.
	fusedKernels int
	// proofs is the value-range analysis' proven-in-bounds access set
	// (Options.Proofs); noBCE keeps checks despite proofs, and
	// elidedChecks counts the runtime checks compilation dropped, for
	// the purecc "elided checks: N" report line.
	proofs       map[ast.Expr]bool
	noBCE        bool
	elidedChecks int
	// Reduction knobs (Options.Combine, Options.SparsePrivates): combine
	// topology passed to the rt reduce entry points and block-sparse
	// private-copy allocation.
	combine        rt.Combine
	sparsePrivates bool
	// Tape-backend size counters (EngineTape only), for the purecc
	// "tape:" report line: total instruction words, pooled constants and
	// temp registers across all function tapes.
	tapeInstrs, tapeConsts, tapeTemps int

	funcs       map[string]*cfunc
	globalSlots map[*sema.Symbol]slot
	// global slot counts (the per-Process storage sizes)
	nGI, nGF, nGP int

	// memoization (Options.Memoize)
	memoize             bool
	memoCap, memoShards int
	memo                *memo.Table
}

// CompileProgram translates a checked program into an immutable Program.
// Options.Team and Options.Stdout are run state and ignored here; pass
// them to NewProcess instead.
func CompileProgram(info *sema.Info, opts Options) (*Program, error) {
	p := &Program{
		info:           info,
		backend:        opts.Backend,
		engine:         opts.Engine,
		vectorize:      opts.Vectorize,
		noFuse:         opts.NoFuse,
		proofs:         opts.Proofs,
		noBCE:          opts.NoBCE,
		combine:        opts.Combine,
		sparsePrivates: opts.SparsePrivates,
		funcs:          map[string]*cfunc{},
		globalSlots:    map[*sema.Symbol]slot{},
	}
	if err := p.layoutGlobals(); err != nil {
		return nil, err
	}
	// First pass: create cfunc shells so calls can resolve.
	for _, d := range info.File.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		p.funcs[fd.Name] = &cfunc{name: fd.Name, decl: fd, pure: fd.Pure}
	}
	if opts.Memoize {
		p.memoize = true
		p.memoCap = opts.MemoCapacity
		p.memoShards = opts.MemoShards
		p.memo = memo.New(opts.MemoCapacity, opts.MemoShards)
		names := opts.Memoizable
		if names == nil {
			for name := range purity.Memoizable(info) {
				names = append(names, name)
			}
		}
		for _, name := range names {
			if cf := p.funcs[name]; cf != nil {
				cf.memoizable = true
			}
		}
	}
	for _, cf := range p.funcs {
		fc := &funcCompiler{prog: p, cf: cf}
		if err := fc.compile(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Backend returns the compile backend analog the program was built with.
func (p *Program) Backend() Backend { return p.backend }

// Engine returns the statement execution engine the program was built
// with.
func (p *Program) Engine() Engine { return p.engine }

// TapeStats returns the linearized-backend size counters: total
// instruction words, pooled constants and temp registers across all
// function tapes (all zero under EngineClosure).
func (p *Program) TapeStats() (instrs, consts, temps int) {
	return p.tapeInstrs, p.tapeConsts, p.tapeTemps
}

// noteTape accumulates one compiled tape into the size counters.
func (p *Program) noteTape(tp *tape) {
	p.tapeInstrs += len(tp.code)
	p.tapeConsts += len(tp.constI) + len(tp.constF)
}

// FusedKernels returns the number of loops compiled into fused
// segment-walking kernels (0 when built with Options.NoFuse).
func (p *Program) FusedKernels() int { return p.fusedKernels }

// ElidedChecks returns the number of runtime range checks compilation
// dropped on the strength of value-range bounds proofs (0 when built
// with Options.NoBCE or without proofs).
func (p *Program) ElidedChecks() int { return p.elidedChecks }

// proven reports whether the access expression carries a bounds proof
// the compiler may act on.
func (p *Program) proven(e ast.Expr) bool {
	return !p.noBCE && p.proofs[e]
}

// Info returns the semantic model the program was compiled from.
func (p *Program) Info() *sema.Info { return p.info }

// Memo returns the Program-shared memo table, or nil when the program
// was compiled without Options.Memoize.
func (p *Program) Memo() *memo.Table { return p.memo }

// MemoStats snapshots the shared memo table counters (zero when the
// program was compiled without memoization).
func (p *Program) MemoStats() memo.Stats {
	if p.memo == nil {
		return memo.Stats{}
	}
	return p.memo.Stats()
}

// Memoizable returns the sorted-insensitive set of functions whose
// calls are served from the memo table (empty without Options.Memoize).
func (p *Program) Memoizable() []string {
	var out []string
	for name, cf := range p.funcs {
		if cf.memoizable {
			out = append(out, name)
		}
	}
	return out
}

// layoutGlobals assigns global slots and records the storage sizes each
// Process must allocate.
func (p *Program) layoutGlobals() error {
	var nI, nF, nP int
	for _, g := range p.info.Globals {
		sl, err := slotFor(g)
		if err != nil {
			return fmt.Errorf("global %s: %v", g.Name, err)
		}
		switch sl {
		case slotInt:
			p.globalSlots[g] = slot{slotInt, nI}
			nI++
		case slotFloat:
			p.globalSlots[g] = slot{slotFloat, nF}
			nF++
		case slotPtr:
			p.globalSlots[g] = slot{slotPtr, nP}
			nP++
		}
	}
	p.nGI, p.nGF, p.nGP = nI, nF, nP
	return nil
}
