package comp

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"purec/internal/interp"
	"purec/internal/mem"
	"purec/internal/parser"
	"purec/internal/rt"
	"purec/internal/sema"
)

// fuseCompare compiles src with fusion on and off plus the interp
// oracle, runs all three, and requires bit-identical return values and
// global array contents. It returns the fused build for extra checks.
func fuseCompare(t *testing.T, src string, arrays ...string) *Machine {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	fused := compile(t, src, Options{})
	plain := compile(t, src, Options{NoFuse: true})
	if got := plain.Program().FusedKernels(); got != 0 {
		t.Fatalf("NoFuse build reports %d fused kernels", got)
	}
	in, err := interp.New(info, nil)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := fused.RunMain()
	if err != nil {
		t.Fatalf("fused run: %v", err)
	}
	rp, err := plain.RunMain()
	if err != nil {
		t.Fatalf("dispatch run: %v", err)
	}
	ro, err := in.RunMain()
	if err != nil {
		t.Fatalf("oracle run: %v", err)
	}
	if rf != rp || rf != ro {
		t.Fatalf("return values diverge: fused=%d dispatch=%d oracle=%d", rf, rp, ro)
	}
	for _, name := range arrays {
		fp, err := fused.GlobalPtr(name)
		if err != nil {
			t.Fatalf("global %s: %v", name, err)
		}
		pp, err := plain.GlobalPtr(name)
		if err != nil {
			t.Fatal(err)
		}
		op, err := in.GlobalPtr(name)
		if err != nil {
			t.Fatal(err)
		}
		fv, pv, ov := snapshotSeg(fp), snapshotSeg(pp), snapshotSeg(op)
		if fv != pv {
			t.Fatalf("%s: fused != dispatch\nfused:    %s\ndispatch: %s", name, fv, pv)
		}
		if fv != ov {
			t.Fatalf("%s: fused != oracle\nfused:  %s\noracle: %s", name, fv, ov)
		}
	}
	return fused
}

// snapshotSeg renders the full bit pattern of the array behind p.
func snapshotSeg(p mem.Pointer) string {
	var b strings.Builder
	switch p.Seg.Kind {
	case mem.CellFloat:
		for _, v := range p.Seg.F {
			fmt.Fprintf(&b, "%x,", math.Float64bits(v))
		}
	case mem.CellInt:
		for _, v := range p.Seg.I {
			fmt.Fprintf(&b, "%d,", v)
		}
	}
	return b.String()
}

func TestFusedShapesMatchDispatchAndOracle(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"fill_float", "y[i] = 2.5f;"},
		{"fill_int", "w[i] = 7;"},
		{"copy_float", "y[i] = x[i];"},
		{"copy_int", "w[i] = v[i];"},
		{"scale", "y[i] = a * x[i];"},
		{"scale_rhs", "y[i] = x[i] * a;"},
		{"axpy", "y[i] = a * x[i] + y[i];"},
		{"axpy_commuted", "y[i] = y[i] + x[i] * a;"},
		{"compound_add", "y[i] += x[i];"},
		{"compound_mul", "y[i] *= 1.25f;"},
		{"compound_int_xor", "w[i] ^= v[i];"},
		{"stencil", "y[i] = 0.5f * (x[i - 1] + x[i + 1]);"},
		{"offset", "y[i] = x[i + 3];"},
		{"iter_poly", "w[i] = i * i + 2 * i + 1;"},
		{"iter_float", "y[i] = x[i] * i;"},
		{"mixed_invariant", "y[i] = x[i] * (a + 1.5f) - b;"},
		{"int_div", "w[i] = v[i] / (c + 1);"},
		{"int_shift", "w[i] = v[i] << 2;"},
		{"neg", "y[i] = -x[i];"},
		{"deep", "y[i] = (x[i] + 1.0f) * (x[i] - 1.0f) / (a + 2.0f);"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := fmt.Sprintf(`
float x[100], y[100];
int v[100], w[100];
int main(void) {
    float a = 1.5f;
    float b = 0.25f;
    int c = 3;
    for (int i = 0; i < 100; i++) {
        x[i] = (float)((i %% 13) - 6) * 0.5f;
        v[i] = i * 7 - 50;
        y[i] = (float)(i %% 5);
        w[i] = i;
    }
    for (int i = 4; i < 96; i++) {
        %s
    }
    return (int)y[50] + w[50];
}`, c.body)
			m := fuseCompare(t, src, "x", "y", "v", "w")
			// The init loop has a multi-statement body and stays
			// dispatched; the shape under test must fuse.
			if m.Program().FusedKernels() != 1 {
				t.Errorf("expected exactly the body loop to fuse, got %d kernels",
					m.Program().FusedKernels())
			}
		})
	}
}

func TestFusedStridedRead(t *testing.T) {
	// Constant-stride subscripts (2*i) walk the raw slice with a
	// per-iteration cursor increment of 2.
	src := `
float x[100], y[50];
int main(void) {
    for (int i = 0; i < 100; i++)
        x[i] = i * 0.5f;
    for (int i = 0; i < 50; i++)
        y[i] = x[2 * i];
    return 0;
}`
	m := fuseCompare(t, src, "x", "y")
	if m.Program().FusedKernels() < 2 {
		t.Fatalf("strided read did not fuse (%d kernels)", m.Program().FusedKernels())
	}
}

func TestFusedMultiDimInnerLoop(t *testing.T) {
	// The innermost j-loop of a 2-D nest: invariant row offset i*N,
	// stride 1 — the declared-array flattening path.
	src := `
float A[20][20], B[20][20];
int main(void) {
    for (int i = 0; i < 20; i++)
        for (int j = 0; j < 20; j++)
            A[i][j] = (float)(i * 20 + j) * 0.125f;
    for (int i = 1; i < 19; i++)
        for (int j = 1; j < 19; j++)
            B[i][j] = 0.25f * (A[i - 1][j] + A[i][j - 1] + A[i][j + 1] + A[i + 1][j]);
    return 0;
}`
	m := fuseCompare(t, src, "A", "B")
	if m.Program().FusedKernels() < 1 {
		t.Fatalf("multi-dim inner loops did not fuse (%d kernels)", m.Program().FusedKernels())
	}
}

func TestFusedAliasingInPlace(t *testing.T) {
	// Serial in-place shifts propagate values iteration to iteration;
	// the fused kernel must read and write the same cells in the same
	// ascending order as dispatch (a memmove-style copy would diverge).
	for _, body := range []string{
		"x[i] = x[i - 1];",
		"x[i] = x[i - 1] + x[i];",
		"x[i] += x[i - 1];",
	} {
		src := fmt.Sprintf(`
float x[64];
int main(void) {
    for (int i = 0; i < 64; i++)
        x[i] = (float)i;
    for (int i = 1; i < 64; i++) {
        %s
    }
    return (int)x[63];
}`, body)
		fuseCompare(t, src, "x")
	}
}

func TestFusedPostLoopIteratorValue(t *testing.T) {
	// A fused loop with an outer-declared iterator must leave the
	// dispatch loop's post-loop value (first failing iteration).
	src := `
int w[10];
int main(void) {
    int i;
    for (i = 0; i < 10; i++)
        w[i] = i;
    return i;
}`
	m := fuseCompare(t, src, "w")
	if m.Program().FusedKernels() != 1 {
		t.Fatalf("loop did not fuse (%d kernels)", m.Program().FusedKernels())
	}
}

func TestFusedEmptyLoop(t *testing.T) {
	src := `
int w[4];
int main(void) {
    int i;
    int n = 0;
    for (i = 5; i < n; i++)
        w[i] = 1;
    return i;   /* 5: the loop never ran */
}`
	fuseCompare(t, src, "w")
}

func TestFusedOutOfBoundsTraps(t *testing.T) {
	// The hoisted range check must trap exactly when dispatch would:
	// the stencil reads x[96+1] for i=96, one past the array.
	src := `
float x[97], y[100];
int main(void) {
    for (int i = 0; i < 97; i++)
        x[i] = 1.0f;
    for (int i = 1; i < 97; i++)
        y[i] = x[i - 1] + x[i + 1];
    return 0;
}`
	for _, opts := range []Options{{}, {NoFuse: true}} {
		m := compile(t, src, opts)
		if _, err := m.RunMain(); err == nil {
			t.Fatalf("NoFuse=%v: out-of-bounds stencil read must trap", opts.NoFuse)
		}
	}
}

func TestFusedDivisionByZeroTraps(t *testing.T) {
	src := `
int v[8], w[8];
int main(void) {
    for (int i = 0; i < 8; i++)
        v[i] = i;
    int z = 0;
    for (int i = 0; i < 8; i++)
        w[i] = v[i] / z;
    return 0;
}`
	for _, opts := range []Options{{}, {NoFuse: true}} {
		m := compile(t, src, opts)
		_, err := m.RunMain()
		if err == nil {
			t.Fatalf("NoFuse=%v: division by zero must trap", opts.NoFuse)
		}
		if !strings.Contains(err.Error(), "division by zero") {
			t.Fatalf("NoFuse=%v: unexpected trap message %q", opts.NoFuse, err)
		}
	}
}

func TestFusedParallelForEveryScheduleAndTeam(t *testing.T) {
	// Fused kernels under #pragma omp parallel for: each worker runs
	// the kernel over its chunk bounds; every schedule, real and
	// simulated teams, must produce the dispatch/oracle result.
	for _, sched := range []string{"", " schedule(static,7)", " schedule(dynamic,3)", " schedule(guided)"} {
		src := fmt.Sprintf(`
float x[512], y[512];
int main(void) {
    float a = 0.75f;
    for (int i = 0; i < 512; i++) {
        x[i] = (float)(i %% 17) * 0.25f;
        y[i] = (float)(i %% 5);
    }
#pragma omp parallel for%s
    for (int i = 0; i < 512; i++)
        y[i] = a * x[i] + y[i];
    return 0;
}`, sched)
		// Serial oracle bits.
		ref := compile(t, src, Options{NoFuse: true})
		if _, err := ref.RunMain(); err != nil {
			t.Fatal(err)
		}
		want := readFloatArray(t, ref, "y", 512)
		for _, team := range reduceTeams() {
			m := compile(t, src, Options{Team: team})
			if m.Program().FusedKernels() < 1 {
				t.Fatalf("parallel axpy did not fuse")
			}
			if _, err := m.RunMain(); err != nil {
				t.Fatalf("sched %q team %d (sim=%v): %v", sched, team.Size(), team.Simulated(), err)
			}
			got := readFloatArray(t, m, "y", 512)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("sched %q team %d (sim=%v): y[%d] = %v, want %v",
						sched, team.Size(), team.Simulated(), i, got[i], want[i])
				}
			}
		}
	}
}

func TestFusedReductionThroughTeam(t *testing.T) {
	// A fused dot-product reduction dispatched through
	// rt.Team.ParallelForReduce: integer-exact against the serial
	// build at every team size; the kernel accumulates per chunk into
	// the worker's private slot.
	src := `
int v[1000], w[1000];
int out;
int main(void) {
    for (int i = 0; i < 1000; i++) {
        v[i] = i % 89;
        w[i] = i % 97;
    }
    int s = 0;
#pragma omp parallel for reduction(+:s) schedule(dynamic,13)
    for (int i = 0; i < 1000; i++)
        s += v[i] * w[i];
    out = s;
    return 0;
}`
	ref := compile(t, src, Options{NoFuse: true})
	if _, err := ref.RunMain(); err != nil {
		t.Fatal(err)
	}
	want, err := ref.GlobalInt("out")
	if err != nil {
		t.Fatal(err)
	}
	for _, team := range reduceTeams() {
		// Vectorize extends reduction fusion beyond pure/ICC contexts.
		m := compile(t, src, Options{Team: team, Vectorize: true})
		if _, err := m.RunMain(); err != nil {
			t.Fatalf("team %d (sim=%v): %v", team.Size(), team.Simulated(), err)
		}
		got, err := m.GlobalInt("out")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("team %d (sim=%v): got %d want %d", team.Size(), team.Simulated(), got, want)
		}
	}
}

// readFloatArray reads n cells of a global float array.
func readFloatArray(t *testing.T, m *Machine, name string, n int) []float64 {
	t.Helper()
	p, err := m.GlobalPtr(name)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = p.Add(int64(i)).LoadFloat()
	}
	return out
}

func TestFusedBoundsNotHoistableFallsBack(t *testing.T) {
	// An upper bound read from an array the loop may alias must not be
	// hoisted: the loop falls back to dispatch and re-reads it per
	// iteration, shrinking the trip count mid-loop.
	src := `
int n[1];
int w[16];
int main(void) {
    n[0] = 10;
    int s = 0;
    for (int i = 0; i < n[0]; i++) {
        n[0] = n[0] - 1;
        s = s + 1;
    }
    return s;   /* 5: bound shrinks as i grows */
}`
	got := runBoth(t, src)
	if got != 5 {
		t.Fatalf("got %d want 5", got)
	}
}

func TestFusedKernelsCountAndParallelComposition(t *testing.T) {
	// One program, three fusible loops (two init fills + axpy), plus a
	// non-fusible loop (call in body). The counter reports exactly the
	// fused ones.
	src := `
float x[50], y[50];
pure float id(float v) { return v; }
int main(void) {
    for (int i = 0; i < 50; i++)
        x[i] = 1.0f;
    for (int i = 0; i < 50; i++)
        y[i] = 2.0f;
    for (int i = 0; i < 50; i++)
        y[i] = 0.5f * x[i] + y[i];
    for (int i = 0; i < 50; i++)
        y[i] = id(y[i]);
    return 0;
}`
	m := compile(t, src, Options{})
	if _, err := m.RunMain(); err != nil {
		t.Fatal(err)
	}
	if got := m.Program().FusedKernels(); got != 3 {
		t.Fatalf("FusedKernels = %d, want 3", got)
	}
}

func TestFusedRaceUnderRealTeams(t *testing.T) {
	// Many workers over one fused loop on a real team: the race
	// detector must stay quiet (workers share the parent env read-only
	// and write disjoint chunk slices).
	src := `
float x[4096], y[4096];
int main(void) {
    for (int i = 0; i < 4096; i++)
        x[i] = (float)(i % 31);
#pragma omp parallel for schedule(dynamic,64)
    for (int i = 0; i < 4096; i++)
        y[i] = 2.0f * x[i];
    return 0;
}`
	m := compile(t, src, Options{Team: rt.NewTeam(8)})
	if _, err := m.RunMain(); err != nil {
		t.Fatal(err)
	}
}

func TestFusedIntSubtreeInFloatStoreNotMiscompiled(t *testing.T) {
	// i/2 is C integer division even when stored to a float array; a
	// float-tape evaluation would yield 0.5 where dispatch/oracle give
	// 0. The loop must either fuse with integer semantics or fall back
	// to dispatch — fuseCompare pins bit-equality either way.
	for _, body := range []string{
		"y[i] = i / 2;",
		"y[i] = i % 3;",
		"y[i] = x[i] + i / 2;",
	} {
		src := fmt.Sprintf(`
float x[32], y[32];
int main(void) {
    for (int i = 0; i < 32; i++)
        x[i] = i * 0.25f;
    for (int i = 0; i < 32; i++) {
        %s
    }
    return (int)(y[1] * 4.0f) + (int)(y[7] * 4.0f);
}`, body)
		fuseCompare(t, src, "y")
	}
}

func TestReductionBoundReadingAccumulatorNotHoisted(t *testing.T) {
	// for (k = 0; k < s; k++) s += x[k]: the bound reads the
	// accumulator the body mutates, so the dispatch loop self-extends.
	// The fused reduction kernel must refuse this loop rather than
	// hoist the bound.
	src := `
float x[64];
float out;
int main(void) {
    for (int i = 0; i < 64; i++)
        x[i] = i < 6 ? 1.0f : 0.0f;
    float s = 4.0f;
    for (int k = 0; k < s; k++)
        s += x[k];
    out = s;   /* dispatch: the bound grows from 4 to 10 as s grows */
    return (int)s;
}`
	want := runWithTeam(t, src, nil)
	if want != 10 {
		t.Fatalf("dispatch baseline = %d, want 10 (self-extending bound)", want)
	}
	m := compile(t, src, Options{Vectorize: true})
	got, err := m.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("vectorized build: got %d, dispatch gives %d (bound must not be hoisted)", got, want)
	}
}

func TestPointerStrideOverflowTraps(t *testing.T) {
	// p + i on a struct pointer multiplies i by the element stride
	// before the offset check; a product that wraps int64 must trap,
	// not validate a small bogus offset.
	src := `
struct pair { int a; int b; };
int main(void) {
    struct pair* p = (struct pair*)malloc(4 * sizeof(struct pair));
    long long huge = 4611686018427387905; /* 2^62 + 1: *2 wraps to 2 */
    struct pair* q = p + huge;
    q->a = 1;
    return 0;
}`
	m := compile(t, src, Options{})
	_, err := m.RunMain()
	if err == nil {
		t.Fatal("wrapped stride product must trap")
	}
	if !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("unexpected trap: %v", err)
	}
}
