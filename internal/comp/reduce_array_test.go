package comp

import (
	"fmt"
	"testing"

	"purec/internal/interp"
	"purec/internal/parser"
	"purec/internal/rt"
	"purec/internal/sema"
)

// histProgram builds a histogram program whose hot loop carries an
// explicit array-reduction pragma with the given update and clause.
func histProgram(clause, update string) string {
	return fmt.Sprintf(`
int data[300];
int out[16];
int main(void) {
    for (int i = 0; i < 300; i++)
        data[i] = (i * 17 + 5) %% 16;
    int hist[16];
    for (int b = 0; b < 16; b++)
        hist[b] = 1;
#pragma omp parallel for %s
    for (int i = 0; i < 300; i++)
        %s
    int sum = 0;
    for (int b = 0; b < 16; b++)
        sum += hist[b] * (b + 1);
    out[0] = sum;
    return sum;
}`, clause, update)
}

// serialResult runs the program on a 1-worker real team (inline,
// bit-identical to the sequential build).
func serialResult(t *testing.T, src string) int64 {
	t.Helper()
	return runWithTeam(t, src, rt.NewTeam(1))
}

func TestArrayReductionPragmaEveryOp(t *testing.T) {
	cases := []struct {
		name   string
		clause string
		update string
	}{
		{"increment", "reduction(+:hist[])", "hist[data[i]]++;"},
		{"decrement", "reduction(+:hist[])", "hist[data[i]]--;"},
		{"compound_add", "reduction(+:hist[])", "hist[data[i]] += 3;"},
		{"compound_mul", "reduction(*:hist[])", "hist[data[i]] *= 2;"},
		{"compound_and", "reduction(&:hist[])", "hist[data[i]] &= 6;"},
		{"compound_or", "reduction(|:hist[])", "hist[data[i]] |= 8;"},
		{"compound_xor", "reduction(^:hist[])", "hist[data[i]] ^= 5;"},
	}
	for _, c := range cases {
		src := histProgram(c.clause, c.update)
		want := serialResult(t, src)
		for _, team := range reduceTeams() {
			if got := runWithTeam(t, src, team); got != want {
				t.Errorf("%s on %d workers (sim=%v): got %d want %d",
					c.name, team.Size(), team.Simulated(), got, want)
			}
		}
	}
}

func TestArrayReductionEverySchedule(t *testing.T) {
	for _, sched := range []string{"", "static", "static,7", "dynamic", "dynamic,13", "guided", "guided,4"} {
		clause := "reduction(+:hist[])"
		if sched != "" {
			clause += fmt.Sprintf(" schedule(%s)", sched)
		}
		src := histProgram(clause, "hist[data[i]]++;")
		want := serialResult(t, src)
		for _, team := range reduceTeams() {
			if got := runWithTeam(t, src, team); got != want {
				t.Errorf("schedule %q on %d workers (sim=%v): got %d want %d",
					sched, team.Size(), team.Simulated(), got, want)
			}
		}
	}
}

func TestArrayReductionFuseMatchesDispatch(t *testing.T) {
	// The fused gather-update kernel must be bit-identical to closure
	// dispatch on every team.
	src := histProgram("reduction(+:hist[])", "hist[data[i]] += 2;")
	want := serialResult(t, src)
	for _, noFuse := range []bool{false, true} {
		for _, team := range reduceTeams() {
			m := compile(t, src, Options{Team: team, NoFuse: noFuse})
			got, err := m.RunMain()
			if err != nil {
				t.Fatalf("NoFuse=%v: %v", noFuse, err)
			}
			if got != want {
				t.Errorf("NoFuse=%v on %d workers (sim=%v): got %d want %d",
					noFuse, team.Size(), team.Simulated(), got, want)
			}
		}
	}
}

func TestArrayReductionGlobalArrayFallsBackSerial(t *testing.T) {
	// A clause naming a global array cannot privatize through the
	// frame clone: the loop runs serially and stays exact.
	src := `
int hist[8];
int main(void) {
    for (int b = 0; b < 8; b++)
        hist[b] = b;
#pragma omp parallel for reduction(+:hist[])
    for (int i = 0; i < 100; i++)
        hist[i % 8]++;
    int sum = 0;
    for (int b = 0; b < 8; b++)
        sum += hist[b];
    return sum;
}`
	want := int64(0 + 1 + 2 + 3 + 4 + 5 + 6 + 7 + 100)
	for _, team := range reduceTeams() {
		if got := runWithTeam(t, src, team); got != want {
			t.Errorf("%d workers (sim=%v): got %d want %d", team.Size(), team.Simulated(), got, want)
		}
	}
}

func TestArrayReductionPointerBaseFallsBackSerial(t *testing.T) {
	// A pointer base may alias anything and its extent is unknown:
	// serial fallback, exact result.
	src := `
int main(void) {
    int* hist = (int*)malloc(8 * sizeof(int));
    for (int b = 0; b < 8; b++)
        hist[b] = 0;
#pragma omp parallel for reduction(+:hist[])
    for (int i = 0; i < 100; i++)
        hist[i % 8]++;
    int sum = 0;
    for (int b = 0; b < 8; b++)
        sum += hist[b] * (b + 1);
    free(hist);
    return sum;
}`
	want := serialResult(t, src)
	for _, team := range reduceTeams() {
		if got := runWithTeam(t, src, team); got != want {
			t.Errorf("%d workers (sim=%v): got %d want %d", team.Size(), team.Simulated(), got, want)
		}
	}
}

func TestArrayReductionMissingUpdateRejectedByBoth(t *testing.T) {
	src := `
int main(void) {
    int hist[8];
    int s = 0;
#pragma omp parallel for reduction(+:hist[])
    for (int i = 0; i < 10; i++)
        s += i;
    return s;
}`
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(info, Options{}); err == nil {
		t.Fatal("array clause without a matching update must fail compilation")
	}
	in, err := interp.New(info, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.RunMain(); err == nil {
		t.Fatal("oracle must also reject the malformed array clause")
	}
}

func TestArrayReductionMinMax(t *testing.T) {
	src := `
int data[200], bin[200];
int main(void) {
    for (int i = 0; i < 200; i++) {
        data[i] = (i * 37) % 151;
        bin[i] = i % 8;
    }
    data[77] = -5;
    int lo[8];
    for (int b = 0; b < 8; b++)
        lo[b] = 1000000;
#pragma omp parallel for reduction(min:lo[]) schedule(dynamic,7)
    for (int i = 0; i < 200; i++)
        if (data[i] < lo[bin[i]]) lo[bin[i]] = data[i];
    int sum = 0;
    for (int b = 0; b < 8; b++)
        sum += lo[b];
    return sum;
}`
	want := serialResult(t, src)
	for _, team := range reduceTeams() {
		if got := runWithTeam(t, src, team); got != want {
			t.Errorf("%d workers (sim=%v): got %d want %d", team.Size(), team.Simulated(), got, want)
		}
	}
}

func TestArrayReductionMinMaxTernary(t *testing.T) {
	src := `
int data[100], bin[100];
int main(void) {
    for (int i = 0; i < 100; i++) {
        data[i] = 500 - i * 3;
        bin[i] = i % 4;
    }
    int hi[4];
    for (int b = 0; b < 4; b++)
        hi[b] = -1000000;
#pragma omp parallel for reduction(max:hi[])
    for (int i = 0; i < 100; i++)
        hi[bin[i]] = data[i] > hi[bin[i]] ? data[i] : hi[bin[i]];
    int sum = 0;
    for (int b = 0; b < 4; b++)
        sum += hi[b];
    return sum;
}`
	want := serialResult(t, src)
	for _, team := range reduceTeams() {
		if got := runWithTeam(t, src, team); got != want {
			t.Errorf("%d workers (sim=%v): got %d want %d", team.Size(), team.Simulated(), got, want)
		}
	}
}

func TestArrayReductionEmptyRangeKeepsValues(t *testing.T) {
	// An empty iteration range must leave the array untouched — the
	// identity never leaks out of the private copies.
	src := `
int data[4];
int main(void) {
    int hist[4];
    for (int b = 0; b < 4; b++)
        hist[b] = 7;
    int n = 0;
#pragma omp parallel for reduction(*:hist[])
    for (int i = 0; i < n; i++)
        hist[data[i]] *= 2;
    return hist[0] + hist[1] + hist[2] + hist[3];
}`
	for _, team := range reduceTeams() {
		if got := runWithTeam(t, src, team); got != 28 {
			t.Errorf("%d workers (sim=%v): got %d want 28", team.Size(), team.Simulated(), got)
		}
	}
}

func TestArrayReductionFloatDeterministicAtFixedSimTeam(t *testing.T) {
	// Float array reductions follow the scalar determinism contract:
	// reproducible run-to-run at a fixed simulated team size under any
	// schedule (round-robin accumulator assignment + worker-ordered
	// combine).
	src := `
int bin[5000];
float acc[4];
float out;
int main(void) {
    for (int i = 0; i < 5000; i++)
        bin[i] = i % 4;
    float a[4];
    for (int b = 0; b < 4; b++)
        a[b] = 0.0f;
#pragma omp parallel for reduction(+:a[]) schedule(dynamic,3)
    for (int i = 0; i < 5000; i++)
        a[bin[i]] += 0.125f;
    out = a[0] + a[1] * 2.0f + a[2] * 3.0f + a[3] * 4.0f;
    return 0;
}`
	read := func(team *rt.Team) float64 {
		m := compile(t, src, Options{Team: team})
		if _, err := m.RunMain(); err != nil {
			t.Fatalf("run: %v", err)
		}
		v, err := m.GlobalFloat("out")
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	for _, n := range []int{2, 4, 8} {
		first := read(rt.NewSimTeam(n))
		for rep := 0; rep < 5; rep++ {
			if got := read(rt.NewSimTeam(n)); got != first {
				t.Fatalf("sim %d workers: run %d gave %x, first %x", n, rep, got, first)
			}
		}
	}
}

func TestArrayReductionOutOfRangeBinTraps(t *testing.T) {
	// A bin outside the array must trap as a runtime error on every
	// path — dispatch and fused kernel, serial and parallel.
	src := `
int data[10];
int main(void) {
    for (int i = 0; i < 10; i++)
        data[i] = i;
    data[7] = 99;
    int hist[8];
    for (int b = 0; b < 8; b++)
        hist[b] = 0;
#pragma omp parallel for reduction(+:hist[])
    for (int i = 0; i < 10; i++)
        hist[data[i]]++;
    return hist[0];
}`
	for _, noFuse := range []bool{false, true} {
		for _, team := range []*rt.Team{rt.NewTeam(1), rt.NewTeam(4), rt.NewSimTeam(4)} {
			m := compile(t, src, Options{Team: team, NoFuse: noFuse})
			if _, err := m.RunMain(); err == nil {
				t.Errorf("NoFuse=%v team=%d sim=%v: out-of-range bin must trap",
					noFuse, team.Size(), team.Simulated())
			}
		}
	}
}

func TestArrayReductionSerialLoopFusesHistKernel(t *testing.T) {
	// The gather-update kernel also serves plain sequential loops: the
	// program (no pragma) must report a fused kernel and match the
	// dispatch build.
	src := `
int data[300];
int hist[16];
int main(void) {
    for (int i = 0; i < 300; i++)
        data[i] = (i * 11 + 2) % 16;
    for (int b = 0; b < 16; b++)
        hist[b] = 0;
    for (int i = 0; i < 300; i++)
        hist[data[i]]++;
    int sum = 0;
    for (int b = 0; b < 16; b++)
        sum += hist[b] * (b + 1);
    return sum;
}`
	fused := compile(t, src, Options{})
	got, err := fused.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if fused.Program().FusedKernels() == 0 {
		t.Error("sequential histogram loop did not fuse")
	}
	dispatch := compile(t, src, Options{NoFuse: true})
	want, err := dispatch.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("fused %d != dispatch %d", got, want)
	}
}
