package comp

import (
	"fmt"
	"math"
	"strings"

	"purec/internal/ast"
	"purec/internal/mem"
	"purec/internal/memo"
	"purec/internal/sema"
	"purec/internal/token"
	"purec/internal/types"
)

// mathBuiltins maps unary float builtins to Go implementations.
var mathUnary = map[string]func(float64) float64{
	"sin": math.Sin, "cos": math.Cos, "tan": math.Tan,
	"asin": math.Asin, "acos": math.Acos, "atan": math.Atan,
	"exp": math.Exp, "log": math.Log, "log10": math.Log10,
	"sqrt": math.Sqrt, "fabs": math.Abs, "floor": math.Floor,
	"ceil": math.Ceil, "expf": math.Exp, "sqrtf": math.Sqrt,
	"fabsf": math.Abs,
}

var mathBinary = map[string]func(float64, float64) float64{
	"pow": math.Pow, "atan2": math.Atan2, "fmod": math.Mod,
	"fmin": math.Min, "fmax": math.Max,
}

// tryInline inlines a call of a trivial pure function: single return
// statement, scalar parameters only, each used at most twice, body built
// from parameters, globals, literals and pure math builtins. This mirrors
// the -O2 inlining both GCC and ICC perform on helpers like the matmul
// mult(a,b); functions taking pointer parameters (the heat stencil's avg)
// are deliberately NOT inlined, matching the paper's observation that the
// extracted stencil call survives in the pure build (Sect. 4.3.2).
func (fc *funcCompiler) tryInline(x *ast.CallExpr) (valueFns, bool) {
	if fc.inlineDepth >= 4 {
		return valueFns{}, false
	}
	callee, ok := fc.prog.funcs[x.Fun.Name]
	if !ok || !callee.pure || callee.decl.Body == nil || len(callee.decl.Body.List) != 1 {
		return valueFns{}, false
	}
	ret, ok := callee.decl.Body.List[0].(*ast.ReturnStmt)
	if !ok || ret.X == nil {
		return valueFns{}, false
	}
	sig := fc.prog.info.Funcs[x.Fun.Name]
	if sig == nil || len(sig.Params) != len(x.Args) {
		return valueFns{}, false
	}
	for _, pt := range sig.Params {
		if pt.Kind != types.Int && pt.Kind != types.Float {
			return valueFns{}, false
		}
	}
	if sig.Ret.Kind != types.Int && sig.Ret.Kind != types.Float {
		return valueFns{}, false
	}
	// Map parameter symbols and count their uses; reject unknown locals
	// and calls to anything but pure math builtins.
	paramSyms := map[*sema.Symbol]int{}
	ok = true
	ast.Walk(ret.X, func(n ast.Node) bool {
		switch y := n.(type) {
		case *ast.CallExpr:
			if _, isMath := mathUnary[y.Fun.Name]; !isMath {
				if _, isMath2 := mathBinary[y.Fun.Name]; !isMath2 {
					ok = false
				}
			}
		case *ast.Ident:
			sym := fc.prog.info.Ref[y]
			if sym == nil {
				ok = false
				return false
			}
			switch sym.Kind {
			case sema.SymParam:
				paramSyms[sym]++
				if paramSyms[sym] > 2 {
					ok = false
				}
			case sema.SymGlobal, sema.SymBuiltin, sema.SymFunc:
				// fine
			default:
				ok = false
			}
		case *ast.AssignExpr, *ast.PostfixExpr:
			ok = false
		case *ast.UnaryExpr:
			if y.Op == token.INC || y.Op == token.DEC {
				ok = false
			}
		}
		return ok
	})
	if !ok {
		return valueFns{}, false
	}
	// Arguments must be side-effect free since a parameter may be
	// evaluated twice.
	for _, a := range x.Args {
		if hasSideEffects(fc, a) {
			return valueFns{}, false
		}
	}
	// Bind parameters: compile each argument by the parameter type.
	binds := map[*sema.Symbol]valueFns{}
	locals := fc.prog.info.FuncLocals[x.Fun.Name]
	pi := 0
	for _, sym := range locals {
		if sym.Kind != sema.SymParam {
			continue
		}
		if pi >= len(x.Args) {
			return valueFns{}, false
		}
		arg := x.Args[pi]
		pt := sig.Params[pi]
		pi++
		if _, used := paramSyms[sym]; !used {
			// Parameter unused in the body; still type-check the arg by
			// compiling it for effectless evaluation at bind time.
		}
		switch pt.Kind {
		case types.Int:
			binds[sym] = valueFns{kind: slotInt, i: fc.integer(arg)}
		case types.Float:
			af := fc.num(arg)
			if pt.CSize == 4 {
				inner := af
				af = func(e *env) float64 { return float64(float32(inner(e))) }
			}
			binds[sym] = valueFns{kind: slotFloat, f: af}
		}
	}
	// Compile the callee's return expression in this compiler with the
	// bindings active.
	savedBind := fc.paramBind
	fc.paramBind = binds
	if savedBind != nil {
		merged := map[*sema.Symbol]valueFns{}
		for k, v := range savedBind {
			merged[k] = v
		}
		for k, v := range binds {
			merged[k] = v
		}
		fc.paramBind = merged
	}
	fc.inlineDepth++
	defer func() {
		fc.paramBind = savedBind
		fc.inlineDepth--
	}()
	out := valueFns{}
	if sig.Ret.Kind == types.Float {
		body := fc.num(ret.X)
		if sig.Ret.CSize == 4 {
			inner := body
			body = func(e *env) float64 { return float64(float32(inner(e))) }
		}
		out.kind = slotFloat
		out.f = body
	} else {
		out.kind = slotInt
		out.i = fc.integer(ret.X)
	}
	return out, true
}

// memoArg is one compiled scalar argument of a memoized call (the
// callee frame slot is resolved at run time — the callee may not have
// been compiled yet when the call site is).
type memoArg struct {
	kind slotKind
	i    intFn
	f    fltFn
}

// tryMemo compiles a memoized pure call: the scalar argument values
// form a memo.Key, a table hit returns the cached result bits, and a
// miss executes the callee once and stores the result. Only functions
// the purity analysis marked memoizable (scalar signature, global-free
// body) qualify, so the cached result is bit-identical to execution.
// Argument expressions are evaluated exactly once, matching the direct
// call path even when they have side effects.
func (fc *funcCompiler) tryMemo(x *ast.CallExpr) (valueFns, bool) {
	if !fc.prog.memoize {
		return valueFns{}, false
	}
	callee, ok := fc.prog.funcs[x.Fun.Name]
	if !ok || !callee.memoizable || len(x.Args) != len(callee.decl.Params) {
		return valueFns{}, false
	}
	// Guard against an externally supplied Options.Memoizable entry the
	// key cannot hold; the call falls back to direct execution.
	if len(x.Args) > memo.MaxArgs {
		return valueFns{}, false
	}
	// The callee's frame layout may not be compiled yet, so the return
	// kind comes from the semantic signature (memoizable guarantees it
	// is scalar).
	sig := fc.prog.info.Funcs[x.Fun.Name]
	if sig == nil || sig.Ret == nil {
		return valueFns{}, false
	}
	var retKind slotKind
	switch sig.Ret.Kind {
	case types.Int:
		retKind = slotInt
	case types.Float:
		retKind = slotFloat
	default:
		return valueFns{}, false
	}
	// Compile the argument evaluators by parameter type, mirroring
	// userCall's setters (memoizable guarantees all-scalar parameters).
	args := make([]memoArg, len(x.Args))
	for i, arg := range x.Args {
		pt, err := fc.paramType(callee, i)
		if err != nil {
			fc.errorf(x, "%v", err)
		}
		switch pt.Kind {
		case types.Int:
			args[i] = memoArg{kind: slotInt, i: fc.integer(arg)}
		case types.Float:
			args[i] = memoArg{kind: slotFloat, f: fc.num(arg)}
		default:
			return valueFns{}, false
		}
	}
	name := x.Fun.Name
	nargs := uint8(len(x.Args))
	seed := memo.FnSeed(name)
	// run executes the callee with the already-evaluated argument bits
	// (the miss path and the no-table fallback).
	run := func(e *env, k *memo.Key) (int64, float64) {
		ne := e.p.newEnv(callee)
		ne.team = e.team
		ne.inParallel = e.inParallel
		for j, a := range args {
			if a.kind == slotInt {
				ne.I[callee.params[j].idx] = int64(k.Args[j])
			} else {
				ne.F[callee.params[j].idx] = math.Float64frombits(k.Args[j])
			}
		}
		callee.body(ne)
		return ne.retI, ne.retF
	}
	makeKey := func(e *env) memo.Key {
		k := memo.Key{Fn: name, N: nargs}
		for j, a := range args {
			if a.kind == slotInt {
				k.Args[j] = uint64(a.i(e))
			} else {
				k.Args[j] = math.Float64bits(a.f(e))
			}
		}
		return k
	}
	out := valueFns{kind: retKind}
	if retKind == slotFloat {
		out.f = func(e *env) float64 {
			k := makeKey(e)
			tab := e.p.memo
			if tab != nil {
				if v, ok := tab.GetSeeded(seed, k); ok {
					return math.Float64frombits(v)
				}
			}
			_, rf := run(e, &k)
			if tab != nil {
				tab.PutSeeded(seed, k, math.Float64bits(rf))
			}
			return rf
		}
	} else {
		out.i = func(e *env) int64 {
			k := makeKey(e)
			tab := e.p.memo
			if tab != nil {
				if v, ok := tab.GetSeeded(seed, k); ok {
					return int64(v)
				}
			}
			ri, _ := run(e, &k)
			if tab != nil {
				tab.PutSeeded(seed, k, uint64(ri))
			}
			return ri
		}
	}
	return out, true
}

// countsAsBypass reports whether calls of name should increment the
// memo bypass counter: pure calls memoization cannot serve (pointer
// arguments, oversized signatures, global-reading bodies). Only
// consulted when the Program memoizes.
func (fc *funcCompiler) countsAsBypass(name string) bool {
	if !fc.prog.memoize {
		return false
	}
	cf, ok := fc.prog.funcs[name]
	return ok && cf.pure && !cf.memoizable
}

// wrapBypass wraps exec to count a memo bypass for calls of name, or
// returns exec unchanged when such calls are not bypassed pure calls.
func (fc *funcCompiler) wrapBypass(name string, exec func(*env) *env) func(*env) *env {
	if !fc.countsAsBypass(name) {
		return exec
	}
	return func(e *env) *env {
		if t := e.p.memo; t != nil {
			t.Bypass()
		}
		return exec(e)
	}
}

// paramType resolves the declared type of callee's i-th parameter
// (shared by userCall's setters and tryMemo's key builders so the two
// call paths cannot diverge).
func (fc *funcCompiler) paramType(callee *cfunc, i int) (*types.Type, error) {
	return types.FromAST(callee.decl.Params[i].Type, func(tag string) (*types.Type, error) {
		if st, ok := fc.prog.info.Structs[tag]; ok {
			return st, nil
		}
		return nil, fmt.Errorf("unknown struct %s", tag)
	})
}

// hasSideEffects conservatively reports whether evaluating e twice could
// change program behaviour.
func hasSideEffects(fc *funcCompiler, e ast.Expr) bool {
	effect := false
	ast.Walk(e, func(n ast.Node) bool {
		switch y := n.(type) {
		case *ast.AssignExpr, *ast.PostfixExpr:
			effect = true
		case *ast.UnaryExpr:
			if y.Op == token.INC || y.Op == token.DEC {
				effect = true
			}
		case *ast.CallExpr:
			if !sema.IsPureBuiltin(y.Fun.Name) || y.Fun.Name == "malloc" || y.Fun.Name == "free" {
				if cf, ok := fc.prog.funcs[y.Fun.Name]; !ok || !cf.pure {
					effect = true
				}
			}
		}
		return !effect
	})
	return effect
}

// callFlt compiles a float-returning call.
func (fc *funcCompiler) callFlt(x *ast.CallExpr) fltFn {
	name := x.Fun.Name
	if f1, ok := mathUnary[name]; ok {
		if len(x.Args) != 1 {
			fc.errorf(x, "%s takes one argument", name)
		}
		a := fc.num(x.Args[0])
		return func(e *env) float64 { return f1(a(e)) }
	}
	if f2, ok := mathBinary[name]; ok {
		if len(x.Args) != 2 {
			fc.errorf(x, "%s takes two arguments", name)
		}
		a, b := fc.num(x.Args[0]), fc.num(x.Args[1])
		return func(e *env) float64 { return f2(a(e), b(e)) }
	}
	if inl, ok := fc.tryInline(x); ok && inl.kind == slotFloat {
		return inl.f
	}
	if m, ok := fc.tryMemo(x); ok && m.kind == slotFloat {
		return m.f
	}
	exec := fc.wrapBypass(name, fc.userCall(x))
	return func(e *env) float64 { return exec(e).retF }
}

// callInt compiles an int-returning call.
func (fc *funcCompiler) callInt(x *ast.CallExpr) intFn {
	name := x.Fun.Name
	switch name {
	case "abs":
		a := fc.integer(x.Args[0])
		return func(e *env) int64 {
			v := a(e)
			if v < 0 {
				return -v
			}
			return v
		}
	case "floord":
		a, b := fc.integer(x.Args[0]), fc.integer(x.Args[1])
		return func(e *env) int64 { return floorDiv(a(e), b(e)) }
	case "ceild":
		a, b := fc.integer(x.Args[0]), fc.integer(x.Args[1])
		return func(e *env) int64 { return ceilDiv(a(e), b(e)) }
	case "imin":
		a, b := fc.integer(x.Args[0]), fc.integer(x.Args[1])
		return func(e *env) int64 {
			va, vb := a(e), b(e)
			if va < vb {
				return va
			}
			return vb
		}
	case "imax":
		a, b := fc.integer(x.Args[0]), fc.integer(x.Args[1])
		return func(e *env) int64 {
			va, vb := a(e), b(e)
			if va > vb {
				return va
			}
			return vb
		}
	case "rand":
		// Deterministic LCG so runs are reproducible.
		return func(e *env) int64 { return e.p.nextRand() }
	case "printf":
		eff := fc.printfCall(x)
		return func(e *env) int64 {
			eff(e)
			return 0
		}
	case "clock":
		return func(*env) int64 { return 0 }
	}
	if _, ok := mathUnary[name]; ok {
		f := fc.callFlt(x)
		return func(e *env) int64 { return int64(f(e)) }
	}
	if inl, ok := fc.tryInline(x); ok && inl.kind == slotInt {
		return inl.i
	}
	if m, ok := fc.tryMemo(x); ok && m.kind == slotInt {
		return m.i
	}
	exec := fc.wrapBypass(name, fc.userCall(x))
	return func(e *env) int64 { return exec(e).retI }
}

// callPtr compiles a pointer-returning user call.
func (fc *funcCompiler) callPtr(x *ast.CallExpr) ptrFn {
	exec := fc.wrapBypass(x.Fun.Name, fc.userCall(x))
	return func(e *env) mem.Pointer { return exec(e).retP }
}

// callEffect compiles a call in statement position.
func (fc *funcCompiler) callEffect(x *ast.CallExpr) func(*env) {
	name := x.Fun.Name
	switch name {
	case "free":
		if len(x.Args) != 1 {
			fc.errorf(x, "free takes one argument")
		}
		p := fc.ptr(x.Args[0])
		return func(e *env) {
			if err := e.p.heap.Free(p(e)); err != nil {
				rtPanic("%v", err)
			}
		}
	case "printf":
		return fc.printfCall(x)
	case "srand":
		a := fc.integer(x.Args[0])
		return func(e *env) { e.p.randState.Store(uint64(a(e))) }
	case "malloc":
		fc.errorf(x, "malloc result must be used (cast and assign it)")
	}
	if _, ok := mathUnary[name]; ok {
		f := fc.callFlt(x)
		return func(e *env) { f(e) }
	}
	if _, ok := mathBinary[name]; ok {
		f := fc.callFlt(x)
		return func(e *env) { f(e) }
	}
	exec := fc.userCall(x)
	if cf, ok := fc.prog.funcs[name]; ok && fc.prog.memoize && cf.pure {
		// A pure call in statement position never consults the table
		// (its result is discarded), so it counts as bypassed — even
		// when the function is memoizable at value call sites.
		return func(e *env) {
			if t := e.p.memo; t != nil {
				t.Bypass()
			}
			exec(e)
		}
	}
	return func(e *env) { exec(e) }
}

// userCall compiles a call of a user-defined function into a closure
// producing the callee's finished environment.
func (fc *funcCompiler) userCall(x *ast.CallExpr) func(*env) *env {
	name := x.Fun.Name
	callee, ok := fc.prog.funcs[name]
	if !ok {
		fc.errorf(x, "call of unknown function %s", name)
	}
	if len(x.Args) != len(callee.decl.Params) {
		fc.errorf(x, "function %s expects %d arguments, got %d", name, len(callee.decl.Params), len(x.Args))
	}
	// Compile argument closures by the parameter's slot kind. Parameter
	// slot layout is params-first, mirroring funcCompiler.compile.
	type argSetter func(caller *env, ne *env)
	var setters []argSetter
	for i, arg := range x.Args {
		pt, err := fc.paramType(callee, i)
		if err != nil {
			fc.errorf(x, "%v", err)
		}
		k, err := slotForType(pt)
		if err != nil {
			fc.errorf(x, "%v", err)
		}
		idx := i
		switch k {
		case slotInt:
			a := fc.integer(arg)
			setters = append(setters, func(c *env, ne *env) { ne.I[callee.params[idx].idx] = a(c) })
		case slotFloat:
			a := fc.num(arg)
			setters = append(setters, func(c *env, ne *env) { ne.F[callee.params[idx].idx] = a(c) })
		case slotPtr:
			a := fc.ptr(arg)
			setters = append(setters, func(c *env, ne *env) { ne.P[callee.params[idx].idx] = a(c) })
		}
	}
	return func(e *env) *env {
		ne := e.p.newEnv(callee)
		ne.team = e.team
		ne.inParallel = e.inParallel
		for _, s := range setters {
			s(e, ne)
		}
		callee.body(ne)
		return ne
	}
}

// printfCall compiles a printf with a constant format string.
func (fc *funcCompiler) printfCall(x *ast.CallExpr) func(*env) {
	if len(x.Args) == 0 {
		fc.errorf(x, "printf needs a format string")
	}
	lit, ok := stripParens(x.Args[0]).(*ast.StringLit)
	if !ok {
		fc.errorf(x, "printf format must be a string literal")
	}
	format := lit.Value
	type piece struct {
		text string
		verb byte // 0 for plain text
		long bool
	}
	var pieces []piece
	i := 0
	for i < len(format) {
		j := strings.IndexByte(format[i:], '%')
		if j < 0 {
			pieces = append(pieces, piece{text: format[i:]})
			break
		}
		if j > 0 {
			pieces = append(pieces, piece{text: format[i : i+j]})
		}
		i += j + 1
		// skip flags/width/precision
		long := false
		for i < len(format) && (format[i] == '-' || format[i] == '+' || format[i] == ' ' ||
			format[i] == '0' || format[i] == '.' || (format[i] >= '0' && format[i] <= '9')) {
			i++
		}
		for i < len(format) && format[i] == 'l' {
			long = true
			i++
		}
		if i >= len(format) {
			break
		}
		v := format[i]
		i++
		if v == '%' {
			pieces = append(pieces, piece{text: "%"})
			continue
		}
		pieces = append(pieces, piece{verb: v, long: long})
	}
	// Compile value closures for each verb in order.
	ai := 1
	type valFn struct {
		verb byte
		i    intFn
		f    fltFn
		p    ptrFn
	}
	var vals []valFn
	for _, pc := range pieces {
		if pc.verb == 0 {
			continue
		}
		if ai >= len(x.Args) {
			fc.errorf(x, "printf: not enough arguments for format %q", format)
		}
		arg := x.Args[ai]
		ai++
		switch pc.verb {
		case 'd', 'i', 'u', 'x', 'c':
			vals = append(vals, valFn{verb: pc.verb, i: fc.integer(arg)})
		case 'f', 'g', 'e':
			vals = append(vals, valFn{verb: pc.verb, f: fc.num(arg)})
		case 's':
			vals = append(vals, valFn{verb: pc.verb, p: fc.ptr(arg)})
		default:
			fc.errorf(x, "printf: unsupported verb %%%c", pc.verb)
		}
	}
	return func(e *env) {
		var b strings.Builder
		vi := 0
		for _, pc := range pieces {
			if pc.verb == 0 {
				b.WriteString(pc.text)
				continue
			}
			v := vals[vi]
			vi++
			switch pc.verb {
			case 'd', 'i', 'u':
				fmt.Fprintf(&b, "%d", v.i(e))
			case 'x':
				fmt.Fprintf(&b, "%x", v.i(e))
			case 'c':
				fmt.Fprintf(&b, "%c", rune(v.i(e)))
			case 'f':
				fmt.Fprintf(&b, "%f", v.f(e))
			case 'g':
				fmt.Fprintf(&b, "%g", v.f(e))
			case 'e':
				fmt.Fprintf(&b, "%e", v.f(e))
			case 's':
				b.WriteString(cString(v.p(e)))
			}
		}
		fmt.Fprint(e.p.stdout, b.String())
	}
}

// cString reads a NUL-terminated string from an int segment.
func cString(p mem.Pointer) string {
	if p.IsNull() {
		return "(null)"
	}
	if p.Seg.Freed() {
		// The poisoned backing slice would read as an empty string and
		// mask the use-after-free; trap it like any other stale access.
		rtPanic("use after free of %s", p.Seg.Name)
	}
	var b strings.Builder
	for off := p.Off; off < len(p.Seg.I); off++ {
		c := p.Seg.I[off] //lint:rawmem NUL scan bounded by len() on the same slice; freed checked above
		if c == 0 {
			break
		}
		b.WriteByte(byte(c))
	}
	return b.String()
}

func floorDiv(a, b int64) int64 {
	if b == 0 {
		rtPanic("floord division by zero")
	}
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	if b == 0 {
		rtPanic("ceild division by zero")
	}
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}
