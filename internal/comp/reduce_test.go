package comp

import (
	"fmt"
	"testing"

	"purec/internal/interp"
	"purec/internal/parser"
	"purec/internal/rt"
	"purec/internal/sema"
)

// reduceTeams is the team matrix reduction loops are exercised on: real
// and simulated, 1 worker through oversubscribed.
func reduceTeams() []*rt.Team {
	var out []*rt.Team
	for _, n := range []int{1, 2, 3, 8} {
		out = append(out, rt.NewTeam(n), rt.NewSimTeam(n))
	}
	return out
}

func runWithTeam(t *testing.T, src string, team *rt.Team) int64 {
	t.Helper()
	m := compile(t, src, Options{Team: team})
	got, err := m.RunMain()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return got
}

// runSerialOracle executes main under the interp oracle alone.
func runSerialOracle(t *testing.T, src string) int64 {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	in, err := interp.New(info, nil)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	got, err := in.RunMain()
	if err != nil {
		t.Fatalf("interp run: %v", err)
	}
	return got
}

func TestReductionPragmaEveryOp(t *testing.T) {
	cases := []struct {
		op   string
		init string
		want int64
	}{
		// s starts nonzero so the combine must fold the initial value in.
		{"+", "5", 5 + 4950},          // sum 0..99
		{"*", "2", 2 * 1 * 2 * 3 * 4}, // product of i+1 over 0..3
		{"&", "255", 255 & 254 & 253}, // and over 254,253
		{"|", "1", 1 | 8 | 9},         // or
		{"^", "7", 7 ^ 10 ^ 11 ^ 12},  // xor
	}
	bounds := map[string]int{"+": 100, "*": 4, "&": 2, "|": 2, "^": 3}
	for _, c := range cases {
		var src string
		switch c.op {
		case "+":
			src = fmt.Sprintf(`
int main(void) {
    int s = %s;
#pragma omp parallel for reduction(+:s)
    for (int i = 0; i < %d; i++)
        s += i;
    return s;
}`, c.init, bounds[c.op])
		case "*":
			src = fmt.Sprintf(`
int main(void) {
    int s = %s;
#pragma omp parallel for reduction(*:s)
    for (int i = 0; i < %d; i++)
        s *= i + 1;
    return s;
}`, c.init, bounds[c.op])
		case "&":
			src = fmt.Sprintf(`
int main(void) {
    int s = %s;
#pragma omp parallel for reduction(&:s)
    for (int i = 0; i < %d; i++)
        s &= 254 - i;
    return s;
}`, c.init, bounds[c.op])
		case "|":
			src = fmt.Sprintf(`
int main(void) {
    int s = %s;
#pragma omp parallel for reduction(|:s)
    for (int i = 0; i < %d; i++)
        s |= 8 + i;
    return s;
}`, c.init, bounds[c.op])
		case "^":
			src = fmt.Sprintf(`
int main(void) {
    int s = %s;
#pragma omp parallel for reduction(^:s)
    for (int i = 0; i < %d; i++)
        s ^= 10 + i;
    return s;
}`, c.init, bounds[c.op])
		}
		for _, team := range reduceTeams() {
			got := runWithTeam(t, src, team)
			if got != c.want {
				t.Errorf("op %s on %d workers (sim=%v): got %d want %d",
					c.op, team.Size(), team.Simulated(), got, c.want)
			}
		}
	}
}

func TestReductionPragmaEverySchedule(t *testing.T) {
	// sum 1..10000 = 50005000 under every schedule clause, on real and
	// simulated teams.
	for _, sched := range []string{"", "static", "static,7", "dynamic", "dynamic,13", "guided", "guided,4"} {
		clause := ""
		if sched != "" {
			clause = fmt.Sprintf(" schedule(%s)", sched)
		}
		src := fmt.Sprintf(`
int main(void) {
    int s = 0;
#pragma omp parallel for reduction(+:s)%s
    for (int i = 1; i <= 10000; i++)
        s += i;
    return s == 50005000;
}`, clause)
		for _, team := range reduceTeams() {
			if got := runWithTeam(t, src, team); got != 1 {
				t.Errorf("schedule %q on %d workers (sim=%v): wrong sum", sched, team.Size(), team.Simulated())
			}
		}
	}
}

func TestReductionPragmaMultipleAccumulators(t *testing.T) {
	src := `
int main(void) {
    int s = 0;
    int p = 1;
#pragma omp parallel for reduction(+:s) reduction(*:p)
    for (int i = 1; i <= 6; i++) {
        s += i;
        p *= i;
    }
    return s * 1000 + p;   /* 21 and 720 */
}`
	for _, team := range reduceTeams() {
		if got := runWithTeam(t, src, team); got != 21720 {
			t.Errorf("%d workers (sim=%v): got %d want 21720", team.Size(), team.Simulated(), got)
		}
	}
}

func TestReductionPragmaFloatDeterministicAtFixedSimTeam(t *testing.T) {
	// Float reductions: reproducible run-to-run at a fixed simulated
	// team size (fixed chunk order + worker-ordered combine), and exact
	// against the interp oracle when the initial value is the identity
	// at 1 worker.
	src := `
float out;
int main(void) {
    float s = 0.0f;
#pragma omp parallel for reduction(+:s) schedule(dynamic,3)
    for (int i = 0; i < 5000; i++)
        s += 1.0f / (float)(i + 1);
    out = s;
    return 0;
}`
	read := func(team *rt.Team) float64 {
		m := compile(t, src, Options{Team: team})
		if _, err := m.RunMain(); err != nil {
			t.Fatalf("run: %v", err)
		}
		v, err := m.GlobalFloat("out")
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	for _, n := range []int{2, 4, 8} {
		first := read(rt.NewSimTeam(n))
		for rep := 0; rep < 5; rep++ {
			if got := read(rt.NewSimTeam(n)); got != first {
				t.Fatalf("sim %d workers: run %d gave %x, first %x", n, rep, got, first)
			}
		}
	}
}

func TestReductionGlobalAccumulatorFallsBackSerial(t *testing.T) {
	// A reduction clause naming a global cannot be privatized through
	// the frame clone; the compiled loop must fall back to serial
	// execution and still produce the exact result.
	src := `
int g;
int main(void) {
    g = 3;
#pragma omp parallel for reduction(+:g)
    for (int i = 0; i < 100; i++)
        g += i;
    return g;
}`
	for _, team := range reduceTeams() {
		if got := runWithTeam(t, src, team); got != 3+4950 {
			t.Errorf("%d workers (sim=%v): got %d want %d", team.Size(), team.Simulated(), got, 3+4950)
		}
	}
}

func TestReductionMatchesInterpOracle(t *testing.T) {
	// Integer reductions are bit-identical to the sequential interp
	// oracle on every backend and team size.
	src := `
pure int square(int x) { return x * x; }
int main(void) {
    int s = 17;
#pragma omp parallel for reduction(+:s) schedule(dynamic,5)
    for (int i = 0; i < 200; i++)
        s += square(i);
    return s;
}`
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	in, err := interp.New(info, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := in.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []Backend{BackendGCC, BackendICC} {
		for _, team := range reduceTeams() {
			m := compile(t, src, Options{Backend: backend, Team: team})
			got, err := m.RunMain()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%v on %d workers (sim=%v): got %d, oracle %d",
					backend, team.Size(), team.Simulated(), got, want)
			}
		}
	}
}

func TestSimOneWorkerMachineAccountsRegions(t *testing.T) {
	// Regression through the whole execution path: a 1-worker simulated
	// team must accumulate region time for pragma-annotated loops (both
	// plain parallel-for and reductions).
	srcs := map[string]string{
		"plain": `
int a[256];
int main(void) {
#pragma omp parallel for
    for (int i = 0; i < 256; i++)
        a[i] = i * i;
    return 0;
}`,
		"reduction": `
int main(void) {
    int s = 0;
#pragma omp parallel for reduction(+:s)
    for (int i = 0; i < 256; i++)
        s += i * i;
    return 0;
}`,
	}
	for name, src := range srcs {
		team := rt.NewSimTeam(1)
		m := compile(t, src, Options{Team: team})
		if _, err := m.RunMain(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		real, virt := team.TakeSim()
		if real <= 0 || virt <= 0 {
			t.Errorf("%s: 1-worker sim team reported zero region time (real=%v virt=%v)", name, real, virt)
		}
	}
}

func TestReductionInterpRejectsMalformedPragma(t *testing.T) {
	// The oracle validates reduction clauses instead of silently
	// ignoring them.
	src := `
int main(void) {
    int s = 0;
#pragma omp parallel for reduction(+:nosuch)
    for (int i = 0; i < 10; i++)
        s += i;
    return s;
}`
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	in, err := interp.New(info, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.RunMain(); err == nil {
		t.Fatal("interp must reject a reduction clause with no matching accumulator")
	}
}

func TestReductionUnsupportedOperatorRunsSerial(t *testing.T) {
	// reduction(/:s) is valid OpenMP syntax but outside purec's
	// parallelizable operator set: the loop must run serially and still
	// produce the exact result (never silently drop the accumulator
	// updates).
	src := `
int main(void) {
    int s = 1000000;
#pragma omp parallel for reduction(/:s)
    for (int i = 1; i <= 3; i++)
        s /= 2;
    return s;
}`
	for _, team := range reduceTeams() {
		if got := runWithTeam(t, src, team); got != 125000 {
			t.Errorf("%d workers (sim=%v): got %d want 125000", team.Size(), team.Simulated(), got)
		}
	}
}

func TestReductionSubCompoundParallelizes(t *testing.T) {
	// reduction(-:s) reduces by negation onto "+": zero-seeded privates
	// accumulate the subtractions and the partials fold back with
	// addition. Integer results are exact at every team size.
	src := `
int main(void) {
    int s = 1000;
#pragma omp parallel for reduction(-:s)
    for (int i = 1; i <= 10; i++)
        s -= i;
    return s;
}`
	for _, team := range reduceTeams() {
		if got := runWithTeam(t, src, team); got != 1000-55 {
			t.Errorf("%d workers (sim=%v): got %d want %d", team.Size(), team.Simulated(), got, 1000-55)
		}
	}
}

func TestReductionSubPlainFormParallelizes(t *testing.T) {
	// The plain-assignment form s = s - e binds a "-" clause exactly
	// like the compound form.
	src := `
int main(void) {
    int s = 500;
#pragma omp parallel for reduction(-:s)
    for (int i = 0; i < 100; i++)
        s = s - i;
    return s;
}`
	for _, team := range reduceTeams() {
		if got := runWithTeam(t, src, team); got != 500-4950 {
			t.Errorf("%d workers (sim=%v): got %d want %d", team.Size(), team.Simulated(), got, 500-4950)
		}
	}
}

func TestReductionSubFloatOracleExact(t *testing.T) {
	// Float "-" reductions: the serial oracle and the inline/1-worker
	// compiled runs share the sequential accumulation order, so they
	// agree bit-exactly (scaled into an int return).
	src := `
int main(void) {
    double s = 1000.0;
#pragma omp parallel for reduction(-:s)
    for (int i = 1; i <= 50; i++)
        s -= i * 0.5;
    return (int)(s * 4.0);
}`
	want := int64((1000.0 - 0.5*(50*51/2)) * 4.0)
	if got := runBoth(t, src); got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func TestReductionSubArrayParallelizes(t *testing.T) {
	// hist[a[i]] -= e binds a reduction(-:hist[]) clause; the fused
	// gather-update kernel already handles the SUB update, so the
	// parallel result is exact at every team size and engine.
	src := `
int main(void) {
    int hist[8];
    int data[64];
    for (int i = 0; i < 8; i++) hist[i] = 100;
    for (int i = 0; i < 64; i++) data[i] = (i * 5) % 8;
#pragma omp parallel for reduction(-:hist[])
    for (int i = 0; i < 64; i++)
        hist[data[i]] -= 2;
    int s = 0;
    for (int i = 0; i < 8; i++) s = s + hist[i] * (i + 1);
    return s;
}`
	for _, eng := range []Engine{EngineClosure, EngineTape} {
		for _, team := range reduceTeams() {
			m := compile(t, src, Options{Team: team, Engine: eng})
			got, err := m.RunMain()
			if err != nil {
				t.Fatal(err)
			}
			want := runSerialOracle(t, src)
			if got != want {
				t.Errorf("engine=%v %d workers (sim=%v): got %d want %d",
					eng, team.Size(), team.Simulated(), got, want)
			}
		}
	}
}

func TestReductionNonCanonicalLoopIsCompileError(t *testing.T) {
	// parallelFor diagnoses non-canonical annotated loops; adding a
	// reduction clause must not suppress that diagnostic.
	src := `
int main(void) {
    int s = 0;
    int i;
#pragma omp parallel for reduction(+:s)
    for (i = 0; i < 10; i += 2)
        s += i;
    return s;
}`
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(info, Options{}); err == nil {
		t.Fatal("non-canonical reduction loop must fail compilation")
	}
}

func TestReductionMissingAccumulatorIsCompileError(t *testing.T) {
	// A clause naming no matching update is a malformed pragma: both the
	// compiler and the oracle must reject it (not one of them).
	src := `
int main(void) {
    int s = 0;
#pragma omp parallel for reduction(+:nosuch)
    for (int i = 0; i < 10; i++)
        s += i;
    return s;
}`
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(info, Options{}); err == nil {
		t.Fatal("reduction clause without a matching accumulator must fail compilation")
	}
}

func TestNonParallelForPragmaWithReductionIgnoredByOracle(t *testing.T) {
	// The compiler ignores pragmas that are not omp parallel for; the
	// oracle must not validate (and reject) their reduction clauses.
	src := `
int main(void) {
    int s = 0;
#pragma omp simd reduction(+:s)
    for (int i = 0; i < 10; i++)
        s = s + i;
    return s;
}`
	if got := runBoth(t, src); got != 45 {
		t.Fatalf("got %d want 45", got)
	}
}

func TestReductionShadowedAccumulatorBindsEnclosingScope(t *testing.T) {
	// An inner-scope `int s` shadowing the accumulator is automatically
	// private; the clause must bind the enclosing s, and its updates
	// must survive at every team size.
	src := `
int main(void) {
    int s = 0;
#pragma omp parallel for reduction(+:s)
    for (int i = 0; i < 100; i++) {
        if (i > 1000) {
            int s = 0;
            s += 1;
        }
        s += i;
    }
    return s;
}`
	for _, team := range reduceTeams() {
		if got := runWithTeam(t, src, team); got != 4950 {
			t.Errorf("%d workers (sim=%v): got %d want 4950", team.Size(), team.Simulated(), got)
		}
	}
}

func TestReductionOnlyShadowedUpdateIsCompileError(t *testing.T) {
	// When every matching update targets a loop-local shadow, the clause
	// names no enclosing accumulator: both compiler and oracle reject.
	src := `
int main(void) {
    int s = 0;
#pragma omp parallel for reduction(+:s)
    for (int i = 0; i < 10; i++) {
        int s = 0;
        s += i;
    }
    return s;
}`
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(info, Options{}); err == nil {
		t.Fatal("shadow-only reduction clause must fail compilation")
	}
	in, err := interp.New(info, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.RunMain(); err == nil {
		t.Fatal("oracle must also reject the shadow-only clause")
	}
}

func TestReductionUnsupportedOpAcceptedByBothBackendAndOracle(t *testing.T) {
	// Clauses outside the parallelized operator set run serially in the
	// compiler and are skipped by the oracle's validation — the two must
	// agree the program is valid (even with a bogus variable name).
	src := `
int main(void) {
    int s = 0;
#pragma omp parallel for reduction(/:nosuch)
    for (int i = 0; i < 10; i++)
        s = s + i;
    return s;
}`
	if got := runBoth(t, src); got != 45 {
		t.Fatalf("got %d want 45", got)
	}
}

func TestReductionSubMissingAccumulatorRejectedByBoth(t *testing.T) {
	// "-" is now in the parallelized set, so a "-" clause naming no
	// matching update is a malformed pragma for compiler and oracle
	// alike.
	src := `
int main(void) {
    int s = 0;
#pragma omp parallel for reduction(-:nosuch)
    for (int i = 0; i < 10; i++)
        s = s + i;
    return s;
}`
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(info, Options{}); err == nil {
		t.Fatal("reduction(-:nosuch) must fail compilation")
	}
	in, err := interp.New(info, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.RunMain(); err == nil {
		t.Fatal("oracle must also reject reduction(-:nosuch)")
	}
}

func TestReductionPointerAccumulatorRejectedByBoth(t *testing.T) {
	src := `
int main(void) {
    int a[4];
    int* p = a;
#pragma omp parallel for reduction(+:p)
    for (int i = 0; i < 4; i++)
        p += 1;
    return 0;
}`
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(info, Options{}); err == nil {
		t.Fatal("pointer accumulator must fail compilation")
	}
	in, err := interp.New(info, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.RunMain(); err == nil {
		t.Fatal("oracle must also reject a pointer accumulator")
	}
}

func TestReductionMinMaxPragma(t *testing.T) {
	// Guarded min/max updates run through ParallelForReduce with the
	// comparison's absorbing identity; every team produces the serial
	// result. Both the if-pattern and the ?: form, both directions.
	cases := []struct {
		name string
		src  string
		want int64
	}{
		{"min_if", `
int a[200];
int main(void) {
    for (int i = 0; i < 200; i++)
        a[i] = (i * 37) % 151 + 10;
    a[123] = 3;
    int m = 1000000;
#pragma omp parallel for reduction(min:m) schedule(dynamic,7)
    for (int i = 0; i < 200; i++)
        if (a[i] < m) m = a[i];
    return m;
}`, 3},
		{"max_if", `
int a[200];
int main(void) {
    for (int i = 0; i < 200; i++)
        a[i] = (i * 37) % 151;
    a[77] = 9999;
    int m = -1000000;
#pragma omp parallel for reduction(max:m)
    for (int i = 0; i < 200; i++)
        if (a[i] > m) m = a[i];
    return m;
}`, 9999},
		{"min_ternary", `
int a[100];
int main(void) {
    for (int i = 0; i < 100; i++)
        a[i] = 500 - i * 3;
    int m = 1 << 30;
#pragma omp parallel for reduction(min:m) schedule(static,9)
    for (int i = 0; i < 100; i++)
        m = a[i] < m ? a[i] : m;
    return m;
}`, 500 - 99*3},
		{"max_reversed_cond", `
int a[100];
int main(void) {
    for (int i = 0; i < 100; i++)
        a[i] = (i * 13) % 89;
    int m = -1;
#pragma omp parallel for reduction(max:m)
    for (int i = 0; i < 100; i++)
        if (m < a[i]) m = a[i];
    return m;
}`, 88},
	}
	for _, c := range cases {
		for _, team := range reduceTeams() {
			got := runWithTeam(t, c.src, team)
			if got != c.want {
				t.Errorf("%s on %d workers (sim=%v): got %d want %d",
					c.name, team.Size(), team.Simulated(), got, c.want)
			}
		}
	}
}

func TestReductionMinMaxFloat(t *testing.T) {
	// Float min: comparisons pick among stored (already rounded)
	// values, so the parallel result is bit-identical to serial at
	// every team size — no regrouping sensitivity.
	src := `
float a[500];
float out;
int main(void) {
    for (int i = 0; i < 500; i++)
        a[i] = (float)((i * 29) % 211) * 0.5f + 1.0f;
    a[321] = 0.125f;
    float m = 1000000.0f;
#pragma omp parallel for reduction(min:m) schedule(dynamic,11)
    for (int i = 0; i < 500; i++)
        if (a[i] < m) m = a[i];
    out = m;
    return 0;
}`
	read := func(team *rt.Team) float64 {
		m := compile(t, src, Options{Team: team})
		if _, err := m.RunMain(); err != nil {
			t.Fatal(err)
		}
		v, err := m.GlobalFloat("out")
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	want := read(rt.NewTeam(1))
	if want != 0.125 {
		t.Fatalf("serial min = %v, want 0.125", want)
	}
	for _, team := range reduceTeams() {
		if got := read(team); got != want {
			t.Errorf("%d workers (sim=%v): got %v want %v", team.Size(), team.Simulated(), got, want)
		}
	}
}

func TestReductionMinMaxEmptyRangeKeepsInitial(t *testing.T) {
	// An empty iteration range must leave the accumulator untouched
	// (the identity never leaks out of the private clones).
	src := `
int a[4];
int main(void) {
    int m = 42;
    int n = 0;
#pragma omp parallel for reduction(min:m)
    for (int i = 0; i < n; i++)
        if (a[i] < m) m = a[i];
    return m;
}`
	for _, team := range reduceTeams() {
		if got := runWithTeam(t, src, team); got != 42 {
			t.Errorf("%d workers (sim=%v): got %d want 42", team.Size(), team.Simulated(), got)
		}
	}
}

func TestReductionMinMaxMissingUpdateRejectedByBoth(t *testing.T) {
	// A min clause naming a variable with no plain assignment in the
	// loop is a malformed pragma: compiler and oracle must both reject.
	src := `
int main(void) {
    int m = 7;
#pragma omp parallel for reduction(min:m)
    for (int i = 0; i < 10; i++)
        m += i;
    return m;
}`
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(info, Options{}); err == nil {
		t.Fatal("min clause without a plain assignment must fail compilation")
	}
	in, err := interp.New(info, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.RunMain(); err == nil {
		t.Fatal("oracle must also reject the malformed min clause")
	}
}

func TestReductionMinMaxNonPatternRunsSerial(t *testing.T) {
	// A plain assignment that is not a guarded min/max update keeps
	// the loop serial (wrong-direction pattern): the result must be
	// the sequential one at every team size, never a min-combine of
	// partials.
	src := `
int a[50];
int main(void) {
    for (int i = 0; i < 50; i++)
        a[i] = i;
    int m = 0;
#pragma omp parallel for reduction(min:m)
    for (int i = 0; i < 50; i++)
        if (a[i] > m) m = a[i];   /* max pattern under a min clause */
    return m;
}`
	for _, team := range reduceTeams() {
		if got := runWithTeam(t, src, team); got != 49 {
			t.Errorf("%d workers (sim=%v): got %d want 49 (serial fallback)", team.Size(), team.Simulated(), got)
		}
	}
}
