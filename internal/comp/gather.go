package comp

import (
	"math"

	"purec/internal/ast"
	"purec/internal/token"
	"purec/internal/types"
)

// This file fuses pure-gather map loops
//
//	for (i = lo; i </<= hi; i++) y[a*i+b] = x[idx[c*i+d]];
//
// and their ?:-clamped variants
//
//	y[a*i+b] = x[idx[c*i+d] < L ? L : (idx[c*i+d] > H ? H : idx[c*i+d])];
//
// into segment-walking kernels. The destination and the index array are
// affine operands (one hoisted range check each, elidable under a
// bounds proof like every kAccess); the gathered read x[idx[...]] is
// data-dependent, so it pays a per-element bounds test — unless the
// value-range analysis proved the index array's contents inside x's
// extent, in which case the test is elided and the loop body is a bare
// indexed copy. The elided and checked variants are bit-identical
// whenever the checked one does not trap, which the proof guarantees.

// tryGatherKernel recognizes the gather map shape; nil kernel when the
// loop does not match (the caller tries the other kernel families and
// finally falls back to closure dispatch).
func (fc *funcCompiler) tryGatherKernel(x *ast.ForStmt) (canonicalLoop, kernRun) {
	cl, ok := fc.canonical(x)
	if !ok || !fc.hoistableBounds(cl) {
		return cl, nil
	}
	es, ok := singleStmt(cl.body).(*ast.ExprStmt)
	if !ok {
		return cl, nil
	}
	as, ok := es.X.(*ast.AssignExpr)
	if !ok || as.Op != token.ASSIGN {
		return cl, nil
	}
	dst, ok := fc.matchKAccess(as.LHS, cl.iterSym)
	if !ok {
		return cl, nil
	}
	gx, ok := stripParens(as.RHS).(*ast.IndexExpr)
	if !ok {
		return cl, nil
	}
	// The gathered array: a 1-D base whose element kind matches the
	// store exactly (implicit conversions stay on the dispatch path),
	// invariant and effect-free so it hoists to one evaluation.
	elemT := fc.prog.info.ExprType[ast.Expr(gx)]
	if elemT == nil || (elemT.Kind != types.Int && elemT.Kind != types.Float) {
		return cl, nil
	}
	float := elemT.Kind == types.Float
	if float != dst.float {
		return cl, nil
	}
	if baseID, okID := stripParens(gx.X).(*ast.Ident); okID {
		if sym := fc.symOf(baseID); sym != nil && sym.IsArray() && len(sym.Dims) != 1 {
			return cl, nil
		}
	}
	bt := fc.prog.info.ExprType[gx.X]
	if bt == nil || !bt.IsPtr() || bt.Elem == nil || elemStride(bt.Elem) != 1 {
		return cl, nil
	}
	if fc.usesSym(gx.X, cl.iterSym) || !fc.effectFree(gx.X) {
		return cl, nil
	}
	// The data-dependent subscript: an affine int access idx[c*i+d],
	// possibly wrapped in a ?:-min/max clamp with constant bounds.
	idxExpr, clampLo, clampHi, okC := matchClamp(stripParens(gx.Index))
	if !okC {
		return cl, nil
	}
	subIx, ok := idxExpr.(*ast.IndexExpr)
	if !ok {
		return cl, nil
	}
	idxAcc, ok := fc.matchKAccess(subIx, cl.iterSym)
	if !ok || idxAcc.float {
		return cl, nil
	}
	trusted := fc.prog.proven(ast.Expr(gx))
	fc.countElided(dst, idxAcc)
	if trusted {
		fc.prog.elidedChecks++ // the per-element gather bounds test
	}
	return cl, emitGather(fc.ptr(gx.X), dst, idxAcc, float, trusted, clampLo, clampHi, ast.PrintExpr(gx))
}

// matchClamp peels a ?:-min/max clamp off a gather subscript:
//
//	v < L ? L : rest   (lower clamp; also L > v ? L : rest)
//	v > H ? H : rest   (upper clamp; also H < v ? H : rest)
//
// where rest is v itself or a nested clamp of the same v, compared
// syntactically. It returns the clamped access v and the accumulated
// bounds (math.MinInt64/MaxInt64 when a side is unclamped); a
// non-ternary subscript passes through with open bounds. ok is false
// for ternaries that are not clamps — those stay on the dispatch path.
func matchClamp(e ast.Expr) (inner ast.Expr, lo, hi int64, ok bool) {
	lo, hi = math.MinInt64, math.MaxInt64
	ce, isCond := e.(*ast.CondExpr)
	if !isCond {
		return e, lo, hi, true
	}
	cond, isBin := stripParens(ce.Cond).(*ast.BinaryExpr)
	if !isBin {
		return nil, 0, 0, false
	}
	v, bound, op := stripParens(cond.X), stripParens(cond.Y), cond.Op
	k, isLit := intLitValue(bound)
	if !isLit {
		// Mirrored form: L > v ? L : rest.
		if k2, isLit2 := intLitValue(v); isLit2 {
			v, k, isLit = bound, k2, true
			switch op {
			case token.LSS:
				op = token.GTR
			case token.GTR:
				op = token.LSS
			default:
				return nil, 0, 0, false
			}
		}
	}
	if !isLit {
		return nil, 0, 0, false
	}
	// The taken arm must be the bound constant.
	if tk, isTk := intLitValue(stripParens(ce.Then)); !isTk || tk != k {
		return nil, 0, 0, false
	}
	rest, rlo, rhi, okR := matchClamp(stripParens(ce.Else))
	if !okR || ast.PrintExpr(rest) != ast.PrintExpr(v) {
		return nil, 0, 0, false
	}
	switch op {
	case token.LSS:
		lo = k
	case token.GTR:
		hi = k
	default:
		return nil, 0, 0, false
	}
	if rlo > lo {
		lo = rlo
	}
	if rhi < hi {
		hi = rhi
	}
	return rest, lo, hi, true
}

// intLitValue evaluates an integer literal, allowing a leading unary
// minus.
func intLitValue(e ast.Expr) (int64, bool) {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.SUB {
		if v, ok2 := intLitValue(stripParens(u.X)); ok2 {
			return -v, true
		}
		return 0, false
	}
	lit, ok := e.(*ast.IntLit)
	if !ok {
		return 0, false
	}
	return lit.Value, true
}

// emitGather builds the kernel. src is the gathered array's hoisted
// base pointer; trusted elides the per-element bounds test; clampLo and
// clampHi apply the subscript's ?:-clamp (open sides are the int64
// extremes, so clamping is unconditional and branch-predictable).
func emitGather(src ptrFn, dst, idxAcc kAccess, float, trusted bool, clampLo, clampHi int64, expr string) kernRun {
	return func(e *env, lo, hi int64) {
		if hi < lo {
			return
		}
		n := int(hi - lo + 1)
		ds := dst.prep(e, lo, hi)
		is := idxAcc.prep(e, lo, hi)
		p := src(e)
		if p.IsNull() {
			rtPanic("null pointer operand in fused loop")
		}
		if p.Seg.Freed() {
			rtPanic("use of freed segment %s", p.Seg.Name)
		}
		off := int64(p.Off)
		ix, ss := is.i, is.stride
		clamp := func(v int64) int64 {
			if v < clampLo {
				return clampLo
			}
			if v > clampHi {
				return clampHi
			}
			return v
		}
		if float {
			xs := p.Seg.F
			ys, ds2 := ds.f, ds.stride
			if trusted {
				if dst.f32 {
					for t, si, di := 0, 0, 0; t < n; t, si, di = t+1, si+ss, di+ds2 {
						ys[di] = float64(float32(xs[off+clamp(ix[si])]))
					}
				} else {
					for t, si, di := 0, 0, 0; t < n; t, si, di = t+1, si+ss, di+ds2 {
						ys[di] = xs[off+clamp(ix[si])]
					}
				}
				return
			}
			for t, si, di := 0, 0, 0; t < n; t, si, di = t+1, si+ss, di+ds2 {
				c := gatherCell(off, clamp(ix[si]), len(xs), expr)
				if dst.f32 {
					ys[di] = float64(float32(xs[c]))
				} else {
					ys[di] = xs[c]
				}
			}
			return
		}
		xs := p.Seg.I
		ys, ds2 := ds.i, ds.stride
		if trusted {
			for t, si, di := 0, 0, 0; t < n; t, si, di = t+1, si+ss, di+ds2 {
				ys[di] = xs[off+clamp(ix[si])]
			}
			return
		}
		for t, si, di := 0, 0, 0; t < n; t, si, di = t+1, si+ss, di+ds2 {
			ys[di] = xs[gatherCell(off, clamp(ix[si]), len(xs), expr)]
		}
	}
}

// gatherCell converts a data-dependent element index to a validated
// cell index, trapping like the dispatch backend's per-access checks.
func gatherCell(off, idx int64, n int, expr string) int {
	cell := off + idx
	if (idx > 0 && cell < off) || (idx < 0 && cell > off) || int64(int(cell)) != cell {
		rtPanic("pointer arithmetic overflow: offset %d + %d elements", off, idx)
	}
	if cell < 0 || cell >= int64(n) {
		rtPanic("gather read %s: cell %d out of bounds (%d cells)", expr, cell, n)
	}
	return int(cell)
}
