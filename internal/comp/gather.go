package comp

import (
	"purec/internal/ast"
	"purec/internal/token"
	"purec/internal/types"
)

// This file fuses pure-gather map loops
//
//	for (i = lo; i </<= hi; i++) y[a*i+b] = x[idx[c*i+d]];
//
// into segment-walking kernels. The destination and the index array are
// affine operands (one hoisted range check each, elidable under a
// bounds proof like every kAccess); the gathered read x[idx[...]] is
// data-dependent, so it pays a per-element bounds test — unless the
// value-range analysis proved the index array's contents inside x's
// extent, in which case the test is elided and the loop body is a bare
// indexed copy. The elided and checked variants are bit-identical
// whenever the checked one does not trap, which the proof guarantees.

// tryGatherKernel recognizes the gather map shape; nil kernel when the
// loop does not match (the caller tries the other kernel families and
// finally falls back to closure dispatch).
func (fc *funcCompiler) tryGatherKernel(x *ast.ForStmt) (canonicalLoop, kernRun) {
	cl, ok := fc.canonical(x)
	if !ok || !fc.hoistableBounds(cl) {
		return cl, nil
	}
	es, ok := singleStmt(cl.body).(*ast.ExprStmt)
	if !ok {
		return cl, nil
	}
	as, ok := es.X.(*ast.AssignExpr)
	if !ok || as.Op != token.ASSIGN {
		return cl, nil
	}
	dst, ok := fc.matchKAccess(as.LHS, cl.iterSym)
	if !ok {
		return cl, nil
	}
	gx, ok := stripParens(as.RHS).(*ast.IndexExpr)
	if !ok {
		return cl, nil
	}
	// The gathered array: a 1-D base whose element kind matches the
	// store exactly (implicit conversions stay on the dispatch path),
	// invariant and effect-free so it hoists to one evaluation.
	elemT := fc.prog.info.ExprType[ast.Expr(gx)]
	if elemT == nil || (elemT.Kind != types.Int && elemT.Kind != types.Float) {
		return cl, nil
	}
	float := elemT.Kind == types.Float
	if float != dst.float {
		return cl, nil
	}
	if baseID, okID := stripParens(gx.X).(*ast.Ident); okID {
		if sym := fc.symOf(baseID); sym != nil && sym.IsArray() && len(sym.Dims) != 1 {
			return cl, nil
		}
	}
	bt := fc.prog.info.ExprType[gx.X]
	if bt == nil || !bt.IsPtr() || bt.Elem == nil || elemStride(bt.Elem) != 1 {
		return cl, nil
	}
	if fc.usesSym(gx.X, cl.iterSym) || !fc.effectFree(gx.X) {
		return cl, nil
	}
	// The data-dependent subscript: an affine int access idx[c*i+d].
	subIx, ok := stripParens(gx.Index).(*ast.IndexExpr)
	if !ok {
		return cl, nil
	}
	idxAcc, ok := fc.matchKAccess(subIx, cl.iterSym)
	if !ok || idxAcc.float {
		return cl, nil
	}
	trusted := fc.prog.proven(ast.Expr(gx))
	fc.countElided(dst, idxAcc)
	if trusted {
		fc.prog.elidedChecks++ // the per-element gather bounds test
	}
	return cl, emitGather(fc.ptr(gx.X), dst, idxAcc, float, trusted, ast.PrintExpr(gx))
}

// emitGather builds the kernel. src is the gathered array's hoisted
// base pointer; trusted elides the per-element bounds test.
func emitGather(src ptrFn, dst, idxAcc kAccess, float, trusted bool, expr string) kernRun {
	return func(e *env, lo, hi int64) {
		if hi < lo {
			return
		}
		n := int(hi - lo + 1)
		ds := dst.prep(e, lo, hi)
		is := idxAcc.prep(e, lo, hi)
		p := src(e)
		if p.IsNull() {
			rtPanic("null pointer operand in fused loop")
		}
		if p.Seg.Freed() {
			rtPanic("use of freed segment %s", p.Seg.Name)
		}
		off := int64(p.Off)
		ix, ss := is.i, is.stride
		if float {
			xs := p.Seg.F
			ys, ds2 := ds.f, ds.stride
			if trusted {
				if dst.f32 {
					for t, si, di := 0, 0, 0; t < n; t, si, di = t+1, si+ss, di+ds2 {
						ys[di] = float64(float32(xs[off+ix[si]]))
					}
				} else {
					for t, si, di := 0, 0, 0; t < n; t, si, di = t+1, si+ss, di+ds2 {
						ys[di] = xs[off+ix[si]]
					}
				}
				return
			}
			for t, si, di := 0, 0, 0; t < n; t, si, di = t+1, si+ss, di+ds2 {
				c := gatherCell(off, ix[si], len(xs), expr)
				if dst.f32 {
					ys[di] = float64(float32(xs[c]))
				} else {
					ys[di] = xs[c]
				}
			}
			return
		}
		xs := p.Seg.I
		ys, ds2 := ds.i, ds.stride
		if trusted {
			for t, si, di := 0, 0, 0; t < n; t, si, di = t+1, si+ss, di+ds2 {
				ys[di] = xs[off+ix[si]]
			}
			return
		}
		for t, si, di := 0, 0, 0; t < n; t, si, di = t+1, si+ss, di+ds2 {
			ys[di] = xs[gatherCell(off, ix[si], len(xs), expr)]
		}
	}
}

// gatherCell converts a data-dependent element index to a validated
// cell index, trapping like the dispatch backend's per-access checks.
func gatherCell(off, idx int64, n int, expr string) int {
	cell := off + idx
	if (idx > 0 && cell < off) || (idx < 0 && cell > off) || int64(int(cell)) != cell {
		rtPanic("pointer arithmetic overflow: offset %d + %d elements", off, idx)
	}
	if cell < 0 || cell >= int64(n) {
		rtPanic("gather read %s: cell %d out of bounds (%d cells)", expr, cell, n)
	}
	return int(cell)
}
