package comp

// Array reductions: #pragma omp parallel for reduction(op:A[]) marks a
// loop updating a function-local array through a data-dependent
// subscript (hist[a[i]]++, lo[b[i]] = x < lo[b[i]] ? x : lo[b[i]]).
// Each worker receives a fresh identity-initialized private copy of
// the array's segment (installed into the cloned environment's pointer
// slot, so the unchanged loop body transparently updates the copy) and
// the partial arrays fold back element-wise in worker order 0..n-1
// through rt.Team.ParallelForReduceArray.
//
// Accumulators that cannot be privatized — global arrays, pointer
// bases with unknown extent or aliasing — compile to serial execution
// of the loop: always correct, never silently wrong. A clause naming
// no matching update at all is a malformed pragma and a compile
// error, mirroring the interp oracle's validation.
//
// The canonical histogram body additionally compiles to a fused
// gather-update kernel (tryHistKernel): one hoisted range check for
// the subscript operand, raw-slice walking for the index values, and a
// per-element bounds check on the data-dependent target cell — the
// PR 4 fused-kernel contract applied to the privatized copies.

import (
	"math"

	"purec/internal/ast"
	"purec/internal/mem"
	"purec/internal/sema"
	"purec/internal/token"
	"purec/internal/types"
)

// resolveArrayReduction binds a reduction(op:A[]) clause to the
// updated array's pointer slot. found reports whether any matching
// update of A exists in the loop body at all (a clause without one is
// a malformed pragma); ok additionally requires a privatizable
// function-local declared array of int/float elements.
func (fc *funcCompiler) resolveArrayReduction(body ast.Stmt, c redClause) (r reduction, found, ok bool) {
	if c.op == token.LSS || c.op == token.GTR {
		return fc.resolveArrayMinMax(body, c)
	}
	inner := declaredInside(body)
	site := fc.findArrayUpdate(body, c, inner)
	if site == nil {
		return reduction{}, false, false
	}
	return fc.arrayReductionFor(site, c.op)
}

// findArrayUpdate locates the base identifier of an update of array
// c.name with the clause's operator: a compound assignment
// `A[e] op= v`, or — for the + clause — `A[e]++`/`A[e]--` (both are
// sum contributions; the decrement accumulates a negative partial).
// Loop-local shadows of the name do not bind the clause.
func (fc *funcCompiler) findArrayUpdate(body ast.Stmt, c redClause, inner map[*ast.VarDecl]bool) *ast.Ident {
	var site *ast.Ident
	ast.Walk(body, func(n ast.Node) bool {
		if site != nil {
			return false
		}
		var ix *ast.IndexExpr
		switch x := n.(type) {
		case *ast.AssignExpr:
			bin, okOp := x.Op.AssignBinOp()
			if !okOp || bin != c.op {
				return true
			}
			ix, _ = stripParens(x.LHS).(*ast.IndexExpr)
		case *ast.PostfixExpr:
			if c.op != token.ADD || (x.Op != token.INC && x.Op != token.DEC) {
				return true
			}
			ix, _ = stripParens(x.X).(*ast.IndexExpr)
		case *ast.UnaryExpr:
			if c.op != token.ADD || (x.Op != token.INC && x.Op != token.DEC) {
				return true
			}
			ix, _ = stripParens(x.X).(*ast.IndexExpr)
		default:
			return true
		}
		if ix == nil {
			return true
		}
		base := ast.BaseIdent(ix)
		if base == nil || base.Name != c.name {
			return true
		}
		sym := fc.prog.info.Ref[base]
		if sym == nil || (sym.Decl != nil && inner[sym.Decl]) {
			return true
		}
		site = base
		return false
	})
	return site
}

// resolveArrayMinMax binds a reduction(min:A[])/reduction(max:A[])
// clause: the loop body must contain a guarded update of an element of
// A in the clause's direction (ast.MinMaxUpdateLV with an index-chain
// target). found mirrors the scalar resolveMinMax contract — any plain
// assignment to an element of A binds the clause; a body whose
// assignments merely fail the pattern runs serially.
func (fc *funcCompiler) resolveArrayMinMax(body ast.Stmt, c redClause) (r reduction, found, ok bool) {
	inner := declaredInside(body)
	for _, as := range ast.Assignments(body) {
		if as.Op != token.ASSIGN {
			continue
		}
		ix, okIx := stripParens(as.LHS).(*ast.IndexExpr)
		if !okIx {
			continue
		}
		base := ast.BaseIdent(ix)
		if base == nil || base.Name != c.name {
			continue
		}
		sym := fc.prog.info.Ref[base]
		if sym == nil || (sym.Decl != nil && inner[sym.Decl]) {
			continue
		}
		found = true
		break
	}
	if !found {
		return reduction{}, false, false
	}
	var site *ast.Ident
	ast.Walk(body, func(n ast.Node) bool {
		if site != nil {
			return false
		}
		s, okS := n.(ast.Stmt)
		if !okS {
			return true
		}
		target, _, dir, okM := ast.MinMaxUpdateLV(s)
		if !okM || dir != c.op {
			return true
		}
		ix, okIx := target.(*ast.IndexExpr)
		if !okIx {
			return true
		}
		base := ast.BaseIdent(ix)
		if base == nil || base.Name != c.name {
			return true
		}
		sym := fc.prog.info.Ref[base]
		if sym == nil || (sym.Decl != nil && inner[sym.Decl]) {
			return true
		}
		site = base
		return false
	})
	if site == nil {
		return reduction{}, true, false
	}
	return fc.arrayReductionFor(site, c.op)
}

// arrayReductionFor builds the privatize/combine pair for the array
// whose base identifier is site. found is always true here; ok
// requires a function-local declared array — or a single-level local
// pointer the alias analysis resolved, which the transformer only
// tags when its target region is known — of int/float elements
// reachable through a frame pointer slot.
func (fc *funcCompiler) arrayReductionFor(site *ast.Ident, op token.Kind) (r reduction, found, ok bool) {
	sym := fc.prog.info.Ref[site]
	if sym == nil || sym.Kind == sema.SymGlobal || sym.Type == nil {
		// Global bases live in Process storage shared by every worker;
		// they run serially.
		return reduction{}, true, false
	}
	if !sym.IsArray() {
		// A local pointer base qualifies when it is single-level: its
		// slot then holds a pointer into the target region, and the
		// privatize/combine pair below works on the pointed-to segment
		// exactly as it does for a decayed local array.
		if !sym.Type.IsPtr() || sym.Type.Elem == nil || sym.Type.Elem.IsPtr() {
			return reduction{}, true, false
		}
	}
	sl, global := fc.slotOf(sym, site)
	if global || sl.kind != slotPtr {
		return reduction{}, true, false
	}
	elem := sym.Type.BaseElem()
	if elem == nil {
		return reduction{}, true, false
	}
	idx := sl.idx
	name := site.Name
	switch elem.Kind {
	case types.Int:
		var identity int64
		var fold func(a, b int64) int64
		switch op {
		case token.ADD:
			identity, fold = 0, func(a, b int64) int64 { return a + b }
		case token.SUB:
			// Negation onto "+": the body subtracts into the
			// identity-valued private, so partials add (see
			// parseOmpReductions).
			identity, fold = 0, func(a, b int64) int64 { return a + b }
		case token.MUL:
			identity, fold = 1, func(a, b int64) int64 { return a * b }
		case token.AND:
			identity, fold = -1, func(a, b int64) int64 { return a & b }
		case token.OR:
			identity, fold = 0, func(a, b int64) int64 { return a | b }
		case token.XOR:
			identity, fold = 0, func(a, b int64) int64 { return a ^ b }
		case token.LSS:
			identity = math.MaxInt64
			fold = func(a, b int64) int64 {
				if b < a {
					return b
				}
				return a
			}
		case token.GTR:
			identity = math.MinInt64
			fold = func(a, b int64) int64 {
				if b > a {
					return b
				}
				return a
			}
		default:
			return reduction{}, true, false
		}
		if fc.prog.sparsePrivates {
			return reduction{
				setIdentity: func(we *env) {
					privateSparse(we, idx, name, func(n int, label string) *mem.Segment {
						return mem.NewSparseIntSegment(n, identity, label)
					})
				},
				combine: func(dst, src *env) {
					dp, sp := accPair(dst, src, idx, name)
					foldSegsInt(dp.Seg, sp.Seg, fold)
				},
			}, true, true
		}
		return reduction{
			setIdentity: func(we *env) {
				seg := privateCopy(we, idx, mem.CellInt, name)
				if identity != 0 {
					for i := range seg.I {
						seg.I[i] = identity //lint:rawmem range loop over a fresh private copy
					}
				}
			},
			combine: func(dst, src *env) {
				d, s := combineSlicesInt(dst, src, idx, name)
				for i := range d {
					d[i] = fold(d[i], s[i])
				}
			},
		}, true, true
	case types.Float:
		var identity float64
		var fold func(a, b float64) float64
		switch op {
		case token.ADD:
			identity, fold = 0, func(a, b float64) float64 { return a + b }
		case token.SUB:
			identity, fold = 0, func(a, b float64) float64 { return a + b }
		case token.MUL:
			identity, fold = 1, func(a, b float64) float64 { return a * b }
		case token.LSS:
			// Strict-comparison folds: NaN partials never replace an
			// accumulator, exactly like the guarded update in the body.
			identity = math.Inf(1)
			fold = func(a, b float64) float64 {
				if b < a {
					return b
				}
				return a
			}
		case token.GTR:
			identity = math.Inf(-1)
			fold = func(a, b float64) float64 {
				if b > a {
					return b
				}
				return a
			}
		default:
			return reduction{}, true, false
		}
		// C float accumulators round every stored value through
		// float32; the combine is a store and rounds the same way.
		// Min/max pick among already-rounded stored values, which the
		// rounding maps to themselves.
		if elem.CSize == 4 {
			inner := fold
			fold = func(a, b float64) float64 { return float64(float32(inner(a, b))) }
		}
		if fc.prog.sparsePrivates {
			return reduction{
				setIdentity: func(we *env) {
					privateSparse(we, idx, name, func(n int, label string) *mem.Segment {
						return mem.NewSparseFloatSegment(n, identity, label)
					})
				},
				combine: func(dst, src *env) {
					dp, sp := accPair(dst, src, idx, name)
					foldSegsFloat(dp.Seg, sp.Seg, fold)
				},
			}, true, true
		}
		return reduction{
			setIdentity: func(we *env) {
				seg := privateCopy(we, idx, mem.CellFloat, name)
				if identity != 0 {
					for i := range seg.F {
						seg.F[i] = identity //lint:rawmem range loop over a fresh private copy
					}
				}
			},
			combine: func(dst, src *env) {
				d, s := combineSlicesFloat(dst, src, idx, name)
				for i := range d {
					d[i] = fold(d[i], s[i])
				}
			},
		}, true, true
	}
	return reduction{}, true, false
}

// privateCopy replaces the worker environment's pointer slot with a
// fresh private segment sized like the parent's array; the caller
// fills the identity when it is nonzero (fresh segments are zeroed).
func privateCopy(we *env, idx int, kind mem.CellKind, name string) *mem.Segment {
	p := we.P[idx]
	if p.IsNull() || p.Seg.Freed() {
		rtPanic("array reduction accumulator %s is not allocated", name)
	}
	seg := mem.NewSegment(kind, p.Seg.Len(), p.Seg.Name+" (reduction private)")
	// Keep the slot's element offset: a pointer base like p = &a[4] must
	// index the private segment exactly as it indexed the shared one, or
	// the combine would fold shifted cells.
	//lint:rawmem repointing the slot at an equal-length private segment; p.Off was validated when p was built
	we.P[idx] = mem.Pointer{Seg: seg, Off: p.Off}
	return seg
}

// privateSparse replaces the worker's pointer slot with a block-sparse
// private segment (Options.SparsePrivates): untouched blocks are never
// allocated or identity-filled — the fill happens at a block's
// first-touch store inside mem — so a worker touching k cells pays
// O(k), not O(len), in allocation, fill and combine.
func privateSparse(we *env, idx int, name string, newSeg func(n int, label string) *mem.Segment) {
	p := we.P[idx]
	if p.IsNull() || p.Seg.Freed() {
		rtPanic("array reduction accumulator %s is not allocated", name)
	}
	seg := newSeg(p.Seg.Len(), p.Seg.Name+" (reduction private)")
	// Keep the slot's element offset, exactly like privateCopy.
	//lint:rawmem repointing the slot at an equal-length private segment; p.Off was validated when p was built
	we.P[idx] = mem.Pointer{Seg: seg, Off: p.Off}
}

// accPair validates the accumulator slot pair of a sparse-private
// combine (the dense paths use combineSlicesInt/Float).
func accPair(dst, src *env, idx int, name string) (dp, sp mem.Pointer) {
	dp, sp = dst.P[idx], src.P[idx]
	if dp.IsNull() || sp.IsNull() || dp.Seg.Len() != sp.Seg.Len() {
		rtPanic("array reduction accumulator %s changed under the loop", name)
	}
	return dp, sp
}

// foldSegsInt folds the source accumulator segment into the
// destination element-wise. Sparse sources contribute only their dirty
// blocks: every untouched cell still holds the fold's identity, and
// fold(a, identity) == a for every supported operator, so skipping
// them is exact. The destination is the caller's dense array (linear
// combine, or the tree's root fold) or a sibling private — sparse when
// the source is — during tree merges; block bases align because both
// segments share the accumulator's length.
func foldSegsInt(d, s *mem.Segment, fold func(a, b int64) int64) {
	switch {
	case !s.IsSparse() && !d.IsSparse():
		di, si := d.I, s.I
		for i := range di {
			di[i] = fold(di[i], si[i]) //lint:rawmem equal-length accumulator pair validated by accPair
		}
	case s.IsSparse() && !d.IsSparse():
		di := d.I
		s.DirtyIntBlocks(func(base int, cells []int64) {
			for i, v := range cells {
				di[base+i] = fold(di[base+i], v) //lint:rawmem dirty block lies inside the equal-length dense accumulator
			}
		})
	default: // sparse source into sparse destination
		s.DirtyIntBlocks(func(base int, cells []int64) {
			dc := d.SparseIntCells(base)
			for i, v := range cells {
				dc[i] = fold(dc[i], v)
			}
		})
	}
}

// foldSegsFloat is foldSegsInt for float accumulators.
func foldSegsFloat(d, s *mem.Segment, fold func(a, b float64) float64) {
	switch {
	case !s.IsSparse() && !d.IsSparse():
		df, sf := d.F, s.F
		for i := range df {
			df[i] = fold(df[i], sf[i]) //lint:rawmem equal-length accumulator pair validated by accPair
		}
	case s.IsSparse() && !d.IsSparse():
		df := d.F
		s.DirtyFloatBlocks(func(base int, cells []float64) {
			for i, v := range cells {
				df[base+i] = fold(df[base+i], v) //lint:rawmem dirty block lies inside the equal-length dense accumulator
			}
		})
	default:
		s.DirtyFloatBlocks(func(base int, cells []float64) {
			dc := d.SparseFloatCells(base)
			for i, v := range cells {
				dc[i] = fold(dc[i], v)
			}
		})
	}
}

// combineSlicesInt fetches the parent and private integer cells of the
// accumulator slot for the worker-ordered combine.
func combineSlicesInt(dst, src *env, idx int, name string) (d, s []int64) {
	dp, sp := dst.P[idx], src.P[idx]
	if dp.IsNull() || sp.IsNull() || len(dp.Seg.I) != len(sp.Seg.I) {
		rtPanic("array reduction accumulator %s changed under the loop", name)
	}
	return dp.Seg.I, sp.Seg.I
}

// combineSlicesFloat is combineSlicesInt for float accumulators.
func combineSlicesFloat(dst, src *env, idx int, name string) (d, s []float64) {
	dp, sp := dst.P[idx], src.P[idx]
	if dp.IsNull() || sp.IsNull() || len(dp.Seg.F) != len(sp.Seg.F) {
		rtPanic("array reduction accumulator %s changed under the loop", name)
	}
	return dp.Seg.F, sp.Seg.F
}

// ----------------------------------------------------------------------------
// Fused gather-update kernel

// tryHistKernel recognizes the canonical array-reduction body — a
// single statement updating a 1-D array through an int-array gather
// subscript:
//
//	A[B[affine(i)]]++            (and --)
//	A[B[affine(i)]] op= inv      (op ∈ + - * & | ^; float: + - *)
//
// and compiles it into a fused kernel: the subscript operand B gets
// one hoisted range check per launch (mem.Segment.IntRange) and is
// walked as a raw slice; the data-dependent target cell gets a
// per-element bounds check that traps exactly like the dispatch
// backend's per-access checks. Float updates compute in float64 and
// round through float32 at 4-byte stores — bit-identical to dispatch.
//
// The kernel reads the target array through the environment's pointer
// slot, so running it on a worker's cloned environment transparently
// updates that worker's private copy.
func (fc *funcCompiler) tryHistKernel(x *ast.ForStmt) (canonicalLoop, kernRun) {
	cl, ok := fc.canonical(x)
	if !ok || !fc.hoistableBounds(cl) {
		return cl, nil
	}
	stmt := singleStmt(cl.body)
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return cl, nil
	}
	var target *ast.IndexExpr
	var op token.Kind
	var rhsX ast.Expr // nil for ++/--
	switch u := es.X.(type) {
	case *ast.AssignExpr:
		bin, okOp := u.Op.AssignBinOp()
		if !okOp {
			return cl, nil
		}
		switch bin {
		case token.ADD, token.SUB, token.MUL, token.AND, token.OR, token.XOR:
			op = bin
		default:
			// Division/modulo/shift keep their per-iteration trap
			// semantics on the dispatch path.
			return cl, nil
		}
		target, _ = stripParens(u.LHS).(*ast.IndexExpr)
		rhsX = u.RHS
	case *ast.PostfixExpr:
		if u.Op != token.INC && u.Op != token.DEC {
			return cl, nil
		}
		if u.Op == token.INC {
			op = token.ADD
		} else {
			op = token.SUB
		}
		target, _ = stripParens(u.X).(*ast.IndexExpr)
	case *ast.UnaryExpr:
		if u.Op != token.INC && u.Op != token.DEC {
			return cl, nil
		}
		if u.Op == token.INC {
			op = token.ADD
		} else {
			op = token.SUB
		}
		target, _ = stripParens(u.X).(*ast.IndexExpr)
	default:
		return cl, nil
	}
	if target == nil {
		return cl, nil
	}
	baseID, ok := stripParens(target.X).(*ast.Ident)
	if !ok {
		return cl, nil // only 1-D bases: a nested index chain means 2-D
	}
	sym := fc.symOf(baseID)
	if sym == nil {
		return cl, nil
	}
	if sym.IsArray() && len(sym.Dims) != 1 {
		return cl, nil
	}
	if !sym.IsArray() {
		bt := fc.prog.info.ExprType[ast.Expr(baseID)]
		if bt == nil || !bt.IsPtr() || bt.Elem == nil || elemStride(bt.Elem) != 1 {
			return cl, nil
		}
	}
	elemT := fc.prog.info.ExprType[ast.Expr(target)]
	if elemT == nil || (elemT.Kind != types.Int && elemT.Kind != types.Float) {
		return cl, nil
	}
	float := elemT.Kind == types.Float
	if float && op != token.ADD && op != token.SUB && op != token.MUL {
		return cl, nil
	}
	if float && rhsX == nil {
		// Float ++/-- stores unrounded in the dispatch backend (unlike
		// compound assignment); keep those on the dispatch path rather
		// than replicate the corner case.
		return cl, nil
	}
	// The gather subscript: an int-element access affine in the
	// iterator (B[i], B[2*i+c], pointer chains included).
	subIx, ok := stripParens(target.Index).(*ast.IndexExpr)
	if !ok {
		return cl, nil
	}
	idxAcc, ok := fc.matchKAccess(subIx, cl.iterSym)
	if !ok || idxAcc.float {
		return cl, nil
	}
	// The update value: 1 for ++/--, otherwise a hoistable invariant.
	var rhsI intFn
	var rhsF fltFn
	switch {
	case rhsX == nil:
		// constant 1
	case !fc.hoistable(rhsX, cl.iterSym) || !fc.effectFree(rhsX):
		return cl, nil
	case float:
		rhsF = fc.num(rhsX)
	default:
		t := fc.prog.info.ExprType[stripParens(rhsX)]
		if t == nil || t.Kind != types.Int {
			return cl, nil
		}
		rhsI = fc.integer(rhsX)
	}
	base := fc.ptr(baseID)
	f32 := float && elemT.CSize == 4
	fc.countElided(idxAcc)
	if float {
		return cl, emitHistFloat(base, idxAcc, op, rhsF, f32)
	}
	return cl, emitHistInt(base, idxAcc, op, rhsI)
}

// histCell converts the data-dependent target cell index to a slice
// index, trapping on int overflow like the dispatch backend's checked
// pointer arithmetic (the slice bounds check then traps negative and
// out-of-range cells exactly like per-access checks).
func histCell(off, bin int64) int {
	cell := off + bin
	if (bin > 0 && cell < off) || (bin < 0 && cell > off) || int64(int(cell)) != cell {
		rtPanic("pointer arithmetic overflow: offset %d + %d elements", off, bin)
	}
	return int(cell)
}

// emitHistInt emits the integer gather-update kernel.
func emitHistInt(base ptrFn, idxAcc kAccess, op token.Kind, rhs intFn) kernRun {
	return func(e *env, lo, hi int64) {
		if hi < lo {
			return
		}
		is := idxAcc.prep(e, lo, hi)
		p := base(e)
		if p.IsNull() {
			rtPanic("null pointer operand in fused loop")
		}
		off := int64(p.Off)
		n := int(hi - lo + 1)
		v := int64(1)
		if rhs != nil {
			v = rhs(e)
		}
		ix, ss := is.i, is.stride
		if p.Seg.IsSparse() {
			// Sparse private copy (Options.SparsePrivates): walk through
			// the per-cell accessors, which materialize and identity-fill
			// blocks on first touch and bounds-check like the dense
			// slice accesses below.
			seg := p.Seg
			var f func(a int64) int64
			switch op {
			case token.ADD:
				f = func(a int64) int64 { return a + v }
			case token.SUB:
				f = func(a int64) int64 { return a - v }
			case token.MUL:
				f = func(a int64) int64 { return a * v }
			case token.AND:
				f = func(a int64) int64 { return a & v }
			case token.OR:
				f = func(a int64) int64 { return a | v }
			case token.XOR:
				f = func(a int64) int64 { return a ^ v }
			}
			for t, si := 0, 0; t < n; t, si = t+1, si+ss {
				//lint:rawmem histCell traps offset overflow; the accessor's bounds check traps the rest
				q := mem.Pointer{Seg: seg, Off: histCell(off, ix[si])}
				q.StoreInt(f(q.LoadInt()))
			}
			return
		}
		dst := p.Seg.I
		switch op {
		case token.ADD:
			for t, si := 0, 0; t < n; t, si = t+1, si+ss {
				dst[histCell(off, ix[si])] += v
			}
		case token.SUB:
			for t, si := 0, 0; t < n; t, si = t+1, si+ss {
				dst[histCell(off, ix[si])] -= v
			}
		case token.MUL:
			for t, si := 0, 0; t < n; t, si = t+1, si+ss {
				dst[histCell(off, ix[si])] *= v
			}
		case token.AND:
			for t, si := 0, 0; t < n; t, si = t+1, si+ss {
				dst[histCell(off, ix[si])] &= v
			}
		case token.OR:
			for t, si := 0, 0; t < n; t, si = t+1, si+ss {
				dst[histCell(off, ix[si])] |= v
			}
		case token.XOR:
			for t, si := 0, 0; t < n; t, si = t+1, si+ss {
				dst[histCell(off, ix[si])] ^= v
			}
		}
	}
}

// emitHistFloat emits the float gather-update kernel: float64
// arithmetic, float32 rounding at 4-byte stores, like the dispatch
// backend.
func emitHistFloat(base ptrFn, idxAcc kAccess, op token.Kind, rhs fltFn, f32 bool) kernRun {
	return func(e *env, lo, hi int64) {
		if hi < lo {
			return
		}
		is := idxAcc.prep(e, lo, hi)
		p := base(e)
		if p.IsNull() {
			rtPanic("null pointer operand in fused loop")
		}
		off := int64(p.Off)
		n := int(hi - lo + 1)
		v := 1.0
		if rhs != nil {
			v = rhs(e)
		}
		ix, ss := is.i, is.stride
		if p.Seg.IsSparse() {
			// Sparse private copy: per-cell accessors with first-touch
			// materialization (see emitHistInt).
			seg := p.Seg
			for t, si := 0, 0; t < n; t, si = t+1, si+ss {
				//lint:rawmem histCell traps offset overflow; the accessor's bounds check traps the rest
				q := mem.Pointer{Seg: seg, Off: histCell(off, ix[si])}
				var nv float64
				switch op {
				case token.ADD:
					nv = q.LoadFloat() + v
				case token.SUB:
					nv = q.LoadFloat() - v
				default:
					nv = q.LoadFloat() * v
				}
				if f32 {
					nv = float64(float32(nv))
				}
				q.StoreFloat(nv)
			}
			return
		}
		dst := p.Seg.F
		for t, si := 0, 0; t < n; t, si = t+1, si+ss {
			c := histCell(off, ix[si])
			var nv float64
			switch op {
			case token.ADD:
				nv = dst[c] + v
			case token.SUB:
				nv = dst[c] - v
			default:
				nv = dst[c] * v
			}
			if f32 {
				nv = float64(float32(nv))
			}
			dst[c] = nv
		}
	}
}
