package comp

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"purec/internal/rt"
)

// poolWorkload allocates heap storage through a global pointer, fills
// globals, and prints — so reuse bugs in any of the three reset paths
// (heap, globals, stdout plumbing) would surface as output drift.
const poolWorkload = `
int *buf;
int gsum;

int main(void) {
    buf = (int*)malloc(32 * sizeof(int));
    gsum = 0;
    for (int i = 0; i < 32; i++) {
        buf[i] = i * i;
        gsum += buf[i];
    }
    printf("gsum=%d buf7=%d\n", gsum, buf[7]);
    return gsum % 251;
}
`

// TestPoolReuseIsObservableAndIdentical: a size-1 pool serves repeated
// runs by resetting one Process; every run's return value and stdout
// must be byte-identical to the first (which ran on a fresh Process),
// and the counters must show the reuse actually happened.
func TestPoolReuseIsObservableAndIdentical(t *testing.T) {
	prog := compileProgram(t, poolWorkload, Options{})
	pool := prog.NewPool(PoolOptions{Size: 1})

	var wantRet int64
	var wantOut string
	for run := 0; run < 5; run++ {
		proc, err := pool.Get()
		if err != nil {
			t.Fatalf("get #%d: %v", run, err)
		}
		var out bytes.Buffer
		proc.SetStdout(&out)
		ret, err := proc.RunMain()
		if err != nil {
			t.Fatalf("run #%d: %v", run, err)
		}
		pool.Put(proc)
		if run == 0 {
			wantRet, wantOut = ret, out.String()
			if wantOut == "" {
				t.Fatal("workload produced no output")
			}
			continue
		}
		if ret != wantRet || out.String() != wantOut {
			t.Fatalf("run #%d diverged: ret %d (want %d), out %q (want %q)",
				run, ret, wantRet, out.String(), wantOut)
		}
	}

	s := pool.Stats()
	if s.Gets != 5 || s.Fresh != 1 || s.Reuses != 4 || s.Discarded != 0 {
		t.Fatalf("stats = %+v, want 5 gets / 1 fresh / 4 reuses / 0 discarded", s)
	}
}

// TestPoolReuseRecyclesArenaStorage: the second run of a pooled Process
// must be served from recycled backing storage, not fresh allocations —
// the reset-don't-reallocate contract the daemon's warm path depends
// on.
func TestPoolReuseRecyclesArenaStorage(t *testing.T) {
	prog := compileProgram(t, poolWorkload, Options{})
	pool := prog.NewPool(PoolOptions{Size: 1})

	proc, err := pool.Get()
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	proc.SetStdout(io.Discard)
	if _, err := proc.RunMain(); err != nil {
		t.Fatalf("run 1: %v", err)
	}
	pool.Put(proc)

	proc, err = pool.Get()
	if err != nil {
		t.Fatalf("get 2: %v", err)
	}
	proc.SetStdout(io.Discard)
	if _, err := proc.RunMain(); err != nil {
		t.Fatalf("run 2: %v", err)
	}
	st := proc.ArenaStats()
	if st.Recycled == 0 {
		t.Fatalf("arena stats %+v: reset parked no storage", st)
	}
	if st.Reused == 0 {
		t.Fatalf("arena stats %+v: second run reused no parked storage", st)
	}
	pool.Put(proc)
}

// TestPoolResetPoisonsPreviousRun: a pointer that escaped a previous
// run of a pooled Process must trap — not silently read recycled
// memory — after the Process is reset for its next run. This is the
// free() poisoning contract extended across pool reuse: arena reuse
// recycles backing slices, never Segment identities.
func TestPoolResetPoisonsPreviousRun(t *testing.T) {
	prog := compileProgram(t, poolWorkload, Options{})
	pool := prog.NewPool(PoolOptions{Size: 1})

	proc, err := pool.Get()
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	proc.SetStdout(io.Discard)
	if _, err := proc.RunMain(); err != nil {
		t.Fatalf("run: %v", err)
	}
	stale, err := proc.GlobalPtr("buf")
	if err != nil {
		t.Fatalf("global buf: %v", err)
	}
	if stale.IsNull() || stale.Seg.Freed() {
		t.Fatal("expected a live heap pointer after the run")
	}
	pool.Put(proc)

	again, err := pool.Get()
	if err != nil {
		t.Fatalf("get 2: %v", err)
	}
	if again != proc {
		t.Fatal("expected the pooled Process back (size-1 pool)")
	}
	if !stale.Seg.Freed() {
		t.Fatal("previous run's heap segment not poisoned by reset")
	}
	if _, err := stale.Seg.IntRange(0, 8); err == nil ||
		!strings.Contains(err.Error(), "use of freed segment") {
		t.Fatalf("stale range access = %v, want use-of-freed trap", err)
	}
	// The reset Process itself must still run cleanly on the recycled
	// storage.
	var out bytes.Buffer
	again.SetStdout(&out)
	if _, err := again.RunMain(); err != nil {
		t.Fatalf("run after reset: %v", err)
	}
	if !strings.Contains(out.String(), "gsum=") {
		t.Fatalf("unexpected output %q", out.String())
	}
	pool.Put(again)
}

// TestPoolPutBounds: Put retains at most Size idle Processes and
// rejects Processes of other Programs.
func TestPoolPutBounds(t *testing.T) {
	prog := compileProgram(t, poolWorkload, Options{})
	other := compileProgram(t, `int main(void) { return 0; }`, Options{})
	pool := prog.NewPool(PoolOptions{Size: 1})

	a, err := pool.Get()
	if err != nil {
		t.Fatalf("get a: %v", err)
	}
	b, err := pool.Get()
	if err != nil {
		t.Fatalf("get b: %v", err)
	}
	pool.Put(a)
	pool.Put(b) // over the size bound: discarded
	if s := pool.Stats(); s.Discarded != 1 {
		t.Fatalf("stats = %+v, want 1 discarded", s)
	}

	alien, err := other.NewProcess(ProcOptions{Team: rt.NewTeam(1)})
	if err != nil {
		t.Fatalf("alien process: %v", err)
	}
	pool.Put(alien) // wrong program: rejected outright
	got, err := pool.Get()
	if err != nil {
		t.Fatalf("get after put: %v", err)
	}
	if got == alien {
		t.Fatal("pool handed out a Process of a different Program")
	}
}
