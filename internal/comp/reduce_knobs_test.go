package comp

import (
	"fmt"
	"testing"

	"purec/internal/rt"
)

// knobTeams is the team matrix of the reduction-runtime knob suite:
// real and simulated, single worker through the 12-worker acceptance
// size (oversubscribed on most machines, which is the point — the
// race detector sees every combine topology under real contention).
func knobTeams() []*rt.Team {
	var out []*rt.Team
	for _, n := range []int{1, 4, 12} {
		out = append(out, rt.NewTeam(n), rt.NewSimTeam(n))
	}
	return out
}

// knobProgram pairs an array reduction (600-bin histogram, so sparse
// privates span multiple 256-cell blocks with most never touched) with
// a "-" scalar reduction under one schedule clause.
func knobProgram(sched string) string {
	return fmt.Sprintf(`
int data[400];
int main(void) {
    for (int i = 0; i < 400; i++)
        data[i] = 100 + (i * 29 + 7) %% 400;
    int hist[600];
    for (int b = 0; b < 600; b++)
        hist[b] = 0;
#pragma omp parallel for reduction(+:hist[]) %s
    for (int i = 0; i < 400; i++)
        hist[data[i]] += 2;
    int s = 1000;
#pragma omp parallel for reduction(-:s) %s
    for (int i = 0; i < 400; i++)
        s -= data[i] %% 9;
    int sum = s;
    for (int b = 0; b < 600; b++)
        sum += hist[b] * (b %% 7 + 1);
    return sum %% 251;
}`, sched, sched)
}

// TestReductionKnobMatrixMatchesOracle is the acceptance suite of the
// reduction-runtime rework: every {combine topology} x {private
// layout} x {statement engine} x {schedule} x {team} combination must
// return the serial interp oracle's integer result bit-identically.
// CI runs the whole package under -race, so the 12-worker real teams
// also put every tree-combine level and sparse materialization path
// under the race detector.
func TestReductionKnobMatrixMatchesOracle(t *testing.T) {
	schedules := []string{"", "schedule(static)", "schedule(static,7)", "schedule(dynamic,3)", "schedule(guided,2)"}
	for _, sched := range schedules {
		src := knobProgram(sched)
		want := runSerialOracle(t, src)
		for _, combine := range []rt.Combine{rt.CombineLinear, rt.CombineTree} {
			for _, sparse := range []bool{false, true} {
				for _, engine := range []Engine{EngineClosure, EngineTape} {
					for _, team := range knobTeams() {
						m := compile(t, src, Options{Team: team,
							Combine: combine, SparsePrivates: sparse, Engine: engine})
						got, err := m.RunMain()
						if err != nil {
							t.Fatalf("%q combine=%v sparse=%v engine=%v team=%d sim=%v: %v",
								sched, combine, sparse, engine, team.Size(), team.Simulated(), err)
						}
						if got != want {
							t.Errorf("%q combine=%v sparse=%v engine=%v team=%d sim=%v: got %d want %d",
								sched, combine, sparse, engine, team.Size(), team.Simulated(), got, want)
						}
					}
				}
			}
		}
	}
}

// TestCombineOrderFloatDeterminismMatrix pins the float determinism
// contract per topology: at a fixed team size, simulated teams under
// every schedule and real teams under static schedules are bit-identical
// run to run, and real static equals sim static (same span-to-worker
// assignment, same documented combine order). Real dynamic/guided
// assign chunks by arrival and promise only integer exactness — they
// are deliberately absent here and covered by the oracle matrix above.
// That tree and linear may legally disagree on floats (while never on
// ints) is proven at the runtime layer in rt's
// TestTreeVsLinearFloatsMayDiffer.
func TestCombineOrderFloatDeterminismMatrix(t *testing.T) {
	prog := func(sched string) string {
		return fmt.Sprintf(`
double out;
int main(void) {
    double s = 0.0;
#pragma omp parallel for reduction(+:s) %s
    for (int i = 0; i < 3000; i++)
        s += 1.0 / (i + 1);
    out = s;
    return 0;
}`, sched)
	}
	read := func(src string, team *rt.Team, combine rt.Combine) float64 {
		t.Helper()
		m := compile(t, src, Options{Team: team, Combine: combine})
		if _, err := m.RunMain(); err != nil {
			t.Fatalf("run: %v", err)
		}
		v, err := m.GlobalFloat("out")
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	for _, combine := range []rt.Combine{rt.CombineLinear, rt.CombineTree} {
		for _, workers := range []int{2, 5, 12} {
			for _, c := range []struct {
				sched string
				sim   bool
			}{
				{"schedule(static)", false}, {"schedule(static,7)", false},
				{"", true}, {"schedule(static,7)", true},
				{"schedule(dynamic,3)", true}, {"schedule(guided,2)", true},
			} {
				src := prog(c.sched)
				mk := func() *rt.Team {
					if c.sim {
						return rt.NewSimTeam(workers)
					}
					return rt.NewTeam(workers)
				}
				first := read(src, mk(), combine)
				for rep := 0; rep < 4; rep++ {
					if got := read(src, mk(), combine); got != first {
						t.Fatalf("combine=%v @%d workers %q sim=%v: rep %d gave %x, first %x",
							combine, workers, c.sched, c.sim, rep, got, first)
					}
				}
				// Real and sim static teams share span assignment and
				// combine order, so their floats agree bitwise too.
				if !c.sim {
					if sim := read(src, rt.NewSimTeam(workers), combine); sim != first {
						t.Fatalf("combine=%v @%d workers %q: real %x != sim %x",
							combine, workers, c.sched, first, sim)
					}
				}
			}
		}
	}
}

// TestTreeVsLinearIntsIdenticalThroughCompiler is the language-level
// half of the topology contract: integer results never depend on the
// combine topology, under either private layout.
func TestTreeVsLinearIntsIdenticalThroughCompiler(t *testing.T) {
	src := knobProgram("schedule(dynamic,3)")
	want := runSerialOracle(t, src)
	for _, sparse := range []bool{false, true} {
		for _, team := range knobTeams() {
			lin := compile(t, src, Options{Team: team, Combine: rt.CombineLinear, SparsePrivates: sparse})
			tree := compile(t, src, Options{Team: team, Combine: rt.CombineTree, SparsePrivates: sparse})
			lg, err := lin.RunMain()
			if err != nil {
				t.Fatal(err)
			}
			tg, err := tree.RunMain()
			if err != nil {
				t.Fatal(err)
			}
			if lg != want || tg != want {
				t.Errorf("sparse=%v team=%d sim=%v: linear=%d tree=%d want %d",
					sparse, team.Size(), team.Simulated(), lg, tg, want)
			}
		}
	}
}

// TestSparsePrivatesFloatHistBitIdentical checks that the sparse
// private layout changes no float bits either: skipping an
// unmaterialized block is exact because folding the identity is (+0.0
// absorbs), so dense and sparse builds agree bitwise with the serial
// build on static teams.
func TestSparsePrivatesFloatHistBitIdentical(t *testing.T) {
	src := `
int bin[500];
double out;
int main(void) {
    for (int i = 0; i < 500; i++)
        bin[i] = 300 + (i * 13) % 600;
    double h[1200];
    for (int b = 0; b < 1200; b++)
        h[b] = 0.0;
#pragma omp parallel for reduction(+:h[]) schedule(static)
    for (int i = 0; i < 500; i++)
        h[bin[i]] += 0.37;
    double sum = 0.0;
    for (int b = 0; b < 1200; b++)
        sum += h[b] * (b % 5 + 1);
    out = sum;
    return 0;
}`
	read := func(team *rt.Team, sparse bool) float64 {
		t.Helper()
		m := compile(t, src, Options{Team: team, SparsePrivates: sparse})
		if _, err := m.RunMain(); err != nil {
			t.Fatalf("run: %v", err)
		}
		v, err := m.GlobalFloat("out")
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	want := read(rt.NewTeam(1), false)
	for _, sparse := range []bool{false, true} {
		for _, team := range []*rt.Team{rt.NewTeam(4), rt.NewTeam(12), rt.NewSimTeam(4), rt.NewSimTeam(12)} {
			if got := read(team, sparse); got != want {
				t.Errorf("sparse=%v team=%d sim=%v: %x != serial %x",
					sparse, team.Size(), team.Simulated(), got, want)
			}
		}
	}
}

// TestSparsePrivatesSubHist runs the "-" array reduction on sparse
// privates: negation onto "+" composes with lazy identity fill (the
// identity stays 0).
func TestSparsePrivatesSubHist(t *testing.T) {
	src := `
int data[300];
int main(void) {
    for (int i = 0; i < 300; i++)
        data[i] = 400 + (i * 7) % 300;
    int hist[900];
    for (int b = 0; b < 900; b++)
        hist[b] = 5;
#pragma omp parallel for reduction(-:hist[]) schedule(dynamic,7)
    for (int i = 0; i < 300; i++)
        hist[data[i]] -= 2;
    int sum = 0;
    for (int b = 0; b < 900; b++)
        sum += hist[b] * (b % 3 + 1);
    return sum % 509;
}`
	want := runSerialOracle(t, src)
	for _, engine := range []Engine{EngineClosure, EngineTape} {
		for _, team := range knobTeams() {
			m := compile(t, src, Options{Team: team, SparsePrivates: true, Engine: engine})
			got, err := m.RunMain()
			if err != nil {
				t.Fatalf("engine=%v team=%d sim=%v: %v", engine, team.Size(), team.Simulated(), err)
			}
			if got != want {
				t.Errorf("engine=%v team=%d sim=%v: got %d want %d",
					engine, team.Size(), team.Simulated(), got, want)
			}
		}
	}
}

// TestSparsePrivatesOutOfRangeBinTraps: the sparse accessor's bounds
// check must trap exactly like a dense private's slice check.
func TestSparsePrivatesOutOfRangeBinTraps(t *testing.T) {
	src := `
int data[10];
int main(void) {
    for (int i = 0; i < 10; i++)
        data[i] = i;
    data[7] = 99;
    int hist[8];
    for (int b = 0; b < 8; b++)
        hist[b] = 0;
#pragma omp parallel for reduction(+:hist[])
    for (int i = 0; i < 10; i++)
        hist[data[i]]++;
    return hist[0];
}`
	for _, noFuse := range []bool{false, true} {
		for _, team := range []*rt.Team{rt.NewTeam(1), rt.NewTeam(4), rt.NewSimTeam(4)} {
			m := compile(t, src, Options{Team: team, SparsePrivates: true, NoFuse: noFuse})
			if _, err := m.RunMain(); err == nil {
				t.Errorf("NoFuse=%v team=%d sim=%v: out-of-range bin must trap on sparse privates",
					noFuse, team.Size(), team.Simulated())
			}
		}
	}
}
