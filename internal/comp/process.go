package comp

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync/atomic"

	"purec/internal/mem"
	"purec/internal/memo"
	"purec/internal/rt"
	"purec/internal/sema"
)

// ProcOptions configure one run of a Program.
type ProcOptions struct {
	// Team executes parallel regions; nil means a single worker.
	Team *rt.Team
	// Stdout receives printf output (defaults to os.Stdout).
	Stdout io.Writer
	// Memo overrides the memo table this Process consults. By default a
	// Process of a memoizing Program shares the Program's table (one
	// cache across all concurrent Processes); pass an explicit table to
	// share results across Programs of the same source instead. It has
	// no effect on a Program compiled without Options.Memoize — call
	// sites carry no memo wrappers there, so the table is never
	// consulted.
	Memo *memo.Table
	// PrivateMemo gives the Process its own fresh memo table sized by
	// the Program's memo options, isolating its cache from siblings.
	// Ignored when Memo is set or the Program does not memoize.
	PrivateMemo bool
}

// Process is the run state of one execution of a Program: global slot
// storage, heap, stdout, worker team and rand state. A Process must be
// used sequentially, but distinct Processes of the same Program are
// fully independent and may run concurrently.
type Process struct {
	prog *Program
	heap mem.Heap

	// global storage
	gI []int64
	gF []float64
	gP []mem.Pointer

	stdout io.Writer
	team   *rt.Team
	// memo serves memoized pure calls; nil when the Program was compiled
	// without memoization. Shared tables are concurrency-safe, so this
	// is the one piece of Process state siblings may share.
	memo *memo.Table
	// randState backs rand()/srand(). Atomic so calls from inside
	// parallel regions are race-free (sequentially the CAS never
	// retries, keeping the LCG stream deterministic).
	randState atomic.Uint64
}

// nextRand advances the deterministic LCG and returns the C rand()
// value.
func (p *Process) nextRand() int64 {
	for {
		old := p.randState.Load()
		next := old*6364136223846793005 + 1442695040888963407
		if p.randState.CompareAndSwap(old, next) {
			return int64((next >> 33) & 0x7fffffff)
		}
	}
}

// NewProcess creates a fresh run of the program with globals in the C
// program's initial state.
func (p *Program) NewProcess(opts ProcOptions) (*Process, error) {
	return p.newProcess(opts, nil)
}

// newProcess is NewProcess with an optional arena attached before the
// first allocation, so the global array segments of the very first
// ResetGlobals are already tracked for recycling (the pool's path).
func (p *Program) newProcess(opts ProcOptions, arena *mem.Arena) (*Process, error) {
	pr := &Process{
		prog:   p,
		stdout: opts.Stdout,
		team:   opts.Team,
	}
	if arena != nil {
		pr.heap.SetArena(arena)
	}
	if pr.stdout == nil {
		pr.stdout = os.Stdout
	}
	if pr.team == nil {
		pr.team = rt.NewTeam(1)
	}
	switch {
	case opts.Memo != nil:
		pr.memo = opts.Memo
	case opts.PrivateMemo && p.memoize:
		pr.memo = memo.New(p.memoCap, p.memoShards)
	default:
		pr.memo = p.memo
	}
	if err := pr.ResetGlobals(); err != nil {
		return nil, err
	}
	return pr, nil
}

// Program returns the compiled program this process runs.
func (p *Process) Program() *Program { return p.prog }

// SetTeam replaces the worker team (between runs).
func (p *Process) SetTeam(t *rt.Team) { p.team = t }

// Team returns the worker team the process runs parallel regions on.
func (p *Process) Team() *rt.Team { return p.team }

// SetStdout redirects printf output (between runs).
func (p *Process) SetStdout(w io.Writer) {
	if w == nil {
		w = os.Stdout
	}
	p.stdout = w
}

// ArenaStats snapshots the storage-reuse counters of a pooled Process
// (zero for a Process without an arena).
func (p *Process) ArenaStats() mem.ArenaStats {
	if a := p.heap.Arena(); a != nil {
		return a.Stats()
	}
	return mem.ArenaStats{}
}

// Reset returns the Process to the C program's initial state for its
// next pooled run without reallocating what the previous run already
// paid for: every segment of the finished run is poisoned — stale
// pointers keep trapping exactly as after free() — and its backing
// storage is recycled through the arena, globals and constant
// initializers are re-established, the heap counters, the rand stream
// and any stale simulated-time accounting are cleared. The worker team
// is kept. On a Process without an arena, Reset degrades to
// ResetGlobals plus the rand/team reset (fresh allocations, same
// observable state).
func (p *Process) Reset() error {
	p.heap.ReleaseLive()
	p.randState.Store(0)
	if p.team != nil {
		p.team.TakeSim()
	}
	return p.ResetGlobals()
}

// Heap returns allocation statistics.
func (p *Process) Heap() mem.HeapStats { return p.heap.Stats() }

// MemoTable returns the memo table this Process consults (nil when the
// Program was compiled without memoization).
func (p *Process) MemoTable() *memo.Table { return p.memo }

// MemoStats snapshots the memo counters of this Process's table (zero
// when memoization is off).
func (p *Process) MemoStats() memo.Stats {
	if p.memo == nil {
		return memo.Stats{}
	}
	return p.memo.Stats()
}

// ResetGlobals zeroes global storage, re-creates global array segments
// and re-evaluates constant initializers. Run it between measurements so
// each run starts from the C program's initial state.
func (p *Process) ResetGlobals() error {
	for i := range p.gI {
		p.gI[i] = 0
	}
	for i := range p.gF {
		p.gF[i] = 0
	}
	for i := range p.gP {
		p.gP[i] = mem.Pointer{}
	}
	if p.gI == nil {
		p.gI = make([]int64, p.prog.nGI)
		p.gF = make([]float64, p.prog.nGF)
		p.gP = make([]mem.Pointer, p.prog.nGP)
	}
	p.heap.Reset()
	for _, g := range p.prog.info.Globals {
		sl := p.prog.globalSlots[g]
		if g.IsArray() {
			cells := 1
			for _, d := range g.Dims {
				cells *= d
			}
			kind, err := cellKindOf(g.Type.BaseElem())
			if err != nil {
				return fmt.Errorf("global %s: %v", g.Name, err)
			}
			p.gP[sl.idx] = mem.Pointer{Seg: p.heap.NewSegment(kind, cells, "global "+g.Name)}
			continue
		}
		if g.Decl != nil && g.Decl.Init != nil {
			v, ok := sema.ConstInt(g.Decl.Init)
			if !ok {
				if fv, okf := constFloat(g.Decl.Init); okf {
					if sl.kind == slotFloat {
						p.gF[sl.idx] = fv
						continue
					}
				}
				return fmt.Errorf("global %s: initializer must be constant", g.Name)
			}
			switch sl.kind {
			case slotInt:
				p.gI[sl.idx] = v
			case slotFloat:
				p.gF[sl.idx] = float64(v)
			default:
				if v != 0 {
					return fmt.Errorf("global pointer %s: only 0 initializer supported", g.Name)
				}
			}
		}
	}
	return nil
}

// RunMain executes main and returns its int result.
func (p *Process) RunMain() (ret int64, err error) {
	return p.CallInt("main")
}

// CallInt calls an int-returning, zero-argument function.
func (p *Process) CallInt(name string) (ret int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, isRT := r.(runtime.Error); isRT {
				err = &RuntimeError{Msg: fmt.Sprint(r)}
				return
			}
			if s, isStr := r.(string); isStr && strings.HasPrefix(s, "purec:") {
				err = &RuntimeError{Msg: strings.TrimPrefix(s, "purec: ")}
				return
			}
			panic(r)
		}
	}()
	cf, ok := p.prog.funcs[name]
	if !ok {
		return 0, fmt.Errorf("function %s not found", name)
	}
	e := p.newEnv(cf)
	cf.body(e)
	return e.retI, nil
}

// CallFloat calls a float-returning function with the given arguments
// (ints fill int parameters in order, floats fill float parameters,
// pointers fill pointer parameters).
func (p *Process) CallFloat(name string, args ...any) (ret float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, isRT := r.(runtime.Error); isRT {
				err = &RuntimeError{Msg: fmt.Sprint(r)}
				return
			}
			if s, isStr := r.(string); isStr && strings.HasPrefix(s, "purec:") {
				err = &RuntimeError{Msg: strings.TrimPrefix(s, "purec: ")}
				return
			}
			panic(r)
		}
	}()
	cf, ok := p.prog.funcs[name]
	if !ok {
		return 0, fmt.Errorf("function %s not found", name)
	}
	e := p.newEnv(cf)
	ai := 0
	for _, ps := range cf.params {
		if ai >= len(args) {
			return 0, fmt.Errorf("not enough arguments for %s", name)
		}
		switch ps.kind {
		case slotInt:
			v, ok := args[ai].(int64)
			if !ok {
				return 0, fmt.Errorf("argument %d of %s must be int64", ai, name)
			}
			e.I[ps.idx] = v
		case slotFloat:
			v, ok := args[ai].(float64)
			if !ok {
				return 0, fmt.Errorf("argument %d of %s must be float64", ai, name)
			}
			e.F[ps.idx] = v
		case slotPtr:
			v, ok := args[ai].(mem.Pointer)
			if !ok {
				return 0, fmt.Errorf("argument %d of %s must be mem.Pointer", ai, name)
			}
			e.P[ps.idx] = v
		}
		ai++
	}
	cf.body(e)
	return e.retF, nil
}

// newEnv builds a fresh activation for cf, allocating local arrays.
func (p *Process) newEnv(cf *cfunc) *env {
	e := &env{
		I: make([]int64, cf.nI),
		F: make([]float64, cf.nF),
		P: make([]mem.Pointer, cf.nP),
		p: p, team: p.team,
	}
	for _, a := range cf.arrays {
		e.P[a.slot] = mem.Pointer{Seg: p.heap.NewSegment(a.kind, a.cells, a.name)}
	}
	return e
}

// GlobalPtr returns the pointer value of global pointer/array name, for
// test and bench verification.
func (p *Process) GlobalPtr(name string) (mem.Pointer, error) {
	g, ok := p.prog.info.GlobalMap[name]
	if !ok {
		return mem.Pointer{}, fmt.Errorf("no global %s", name)
	}
	sl := p.prog.globalSlots[g]
	if sl.kind != slotPtr {
		return mem.Pointer{}, fmt.Errorf("global %s is not a pointer", name)
	}
	return p.gP[sl.idx], nil
}

// GlobalInt returns the value of an integer global.
func (p *Process) GlobalInt(name string) (int64, error) {
	g, ok := p.prog.info.GlobalMap[name]
	if !ok {
		return 0, fmt.Errorf("no global %s", name)
	}
	sl := p.prog.globalSlots[g]
	if sl.kind != slotInt {
		return 0, fmt.Errorf("global %s is not an int", name)
	}
	return p.gI[sl.idx], nil
}

// GlobalFloat returns the value of a float global.
func (p *Process) GlobalFloat(name string) (float64, error) {
	g, ok := p.prog.info.GlobalMap[name]
	if !ok {
		return 0, fmt.Errorf("no global %s", name)
	}
	sl := p.prog.globalSlots[g]
	if sl.kind != slotFloat {
		return 0, fmt.Errorf("global %s is not a float", name)
	}
	return p.gF[sl.idx], nil
}
