package comp

import (
	"testing"

	"purec/internal/parser"
	"purec/internal/sema"
)

// Native microbenchmarks for the hot paths the fusion engine targets,
// committed as an in-repo baseline for future perf PRs:
//
//	go test ./internal/comp -bench 'Dispatch|Fused' -run xxx
//
// BenchmarkDispatchLoop and BenchmarkFusedAxpy run the same axpy
// program with the engine off and on; BenchmarkFusedMatmul does the
// same for the extracted-dot matrix multiplication (the reduction
// kernel family).

const benchAxpySrc = `
float x[4096], y[4096];
void setup(void) {
    for (int i = 0; i < 4096; i++) {
        x[i] = (float)(i % 13) * 0.25f;
        y[i] = (float)(i % 7) * 0.5f;
    }
}
int run(void) {
    float a = 1.5f;
    for (int i = 0; i < 4096; i++)
        y[i] = a * x[i] + y[i];
    return 0;
}
int main(void) { setup(); return run(); }
`

const benchMatmulSrc = `
float A[48][48], Bt[48][48], C[48][48];
void setup(void) {
    for (int i = 0; i < 48; i++)
        for (int j = 0; j < 48; j++) {
            A[i][j] = (float)((i + j) % 13) * 0.25f;
            Bt[i][j] = (float)((i - j) % 7) * 0.5f;
        }
}
pure float dot(pure float* a, pure float* b, int size) {
    float res = 0.0f;
    for (int k = 0; k < size; ++k)
        res += a[k] * b[k];
    return res;
}
int run(void) {
    for (int i = 0; i < 48; ++i)
        for (int j = 0; j < 48; ++j)
            C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], 48);
    return 0;
}
int main(void) { setup(); return run(); }
`

func benchProgram(b *testing.B, src string, opts Options) *Machine {
	b.Helper()
	f, err := parser.Parse("b.c", src)
	if err != nil {
		b.Fatal(err)
	}
	info, err := sema.Check(f)
	if err != nil {
		b.Fatal(err)
	}
	m, err := Compile(info, opts)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.CallInt("setup"); err != nil {
		b.Fatal(err)
	}
	return m
}

func benchEntry(b *testing.B, m *Machine) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.CallInt("run"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispatchLoop is the closure-dispatch baseline: one closure
// call per iteration per operand of the axpy loop.
func BenchmarkDispatchLoop(b *testing.B) {
	benchEntry(b, benchProgram(b, benchAxpySrc, Options{NoFuse: true}))
}

// BenchmarkFusedAxpy runs the same loop as one fused triad kernel.
func BenchmarkFusedAxpy(b *testing.B) {
	m := benchProgram(b, benchAxpySrc, Options{})
	if m.Program().FusedKernels() < 1 {
		b.Fatal("axpy loop did not fuse")
	}
	benchEntry(b, m)
}

// BenchmarkFusedMatmul times the extracted-dot matmul with the fused
// reduction kernel (ICC backend) against its dispatch baseline.
func BenchmarkFusedMatmul(b *testing.B) {
	b.Run("dispatch", func(b *testing.B) {
		benchEntry(b, benchProgram(b, benchMatmulSrc, Options{Backend: BackendICC, NoFuse: true}))
	})
	b.Run("fused", func(b *testing.B) {
		m := benchProgram(b, benchMatmulSrc, Options{Backend: BackendICC})
		if m.Program().FusedKernels() < 1 {
			b.Fatal("dot loop did not fuse")
		}
		benchEntry(b, m)
	})
}
