package comp

import (
	"strings"
	"testing"

	"purec/internal/interp"
	"purec/internal/parser"
	"purec/internal/sema"
)

// compileEngine compiles src with the given engine.
func compileEngine(t *testing.T, src string, eng Engine) (*Machine, *sema.Info) {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	m, err := Compile(info, Options{Engine: eng})
	if err != nil {
		t.Fatalf("compile (%s): %v", eng, err)
	}
	return m, info
}

// TestTapeEquivalence runs programs exercising every linearized
// construct — and the closure escapes — under both engines and the
// interp oracle, demanding identical results.
func TestTapeEquivalence(t *testing.T) {
	// noOracle skips the interp comparison for shapes the interpreter
	// does not model (address of a local struct).
	noOracle := map[string]bool{"struct-ptr": true}
	cases := []struct {
		name string
		src  string
	}{
		{"arith", `int main(void) { return (2 + 3 * 4 - 5 / 2) % 7 + (1 << 4) - (65 >> 2) + (12 & 10) - (12 | 3) + (12 ^ 5) + ~3 - (-4); }`},
		{"compare-logic", `int main(void) {
			int a = 3, b = 5, r = 0;
			if (a < b && b <= 5) r += 1;
			if (a == 3 || b == 99) r += 2;
			if (!(a > b) && a != b && b >= 5) r += 4;
			return r + (a < b ? 10 : 20);
		}`},
		{"shortcircuit-effects", `int g;
		int bump(void) { g = g + 1; return 1; }
		int main(void) {
			g = 0;
			int r = (0 && bump()) + (1 || bump()) + (1 && bump()) + (0 || bump());
			return g * 10 + r;
		}`},
		{"loops", `int main(void) {
			int s = 0;
			for (int i = 0; i < 10; i++) {
				if (i == 3) continue;
				if (i == 8) break;
				s += i;
			}
			int j = 0;
			while (j < 5) { s += 100; j++; }
			do { s += 1000; j--; } while (j > 2);
			return s;
		}`},
		{"nested-break", `int main(void) {
			int s = 0;
			for (int i = 0; i < 4; i++)
				for (int j = 0; j < 4; j++) {
					if (j > i) break;
					if (j == 2) continue;
					s = s * 2 + i + j;
				}
			return s;
		}`},
		{"switch-escape", `int main(void) {
			int s = 0;
			for (int i = 0; i < 6; i++) {
				switch (i % 3) {
				case 0: s += 1; break;
				case 1: s += 10; /* fall through */
				case 2: s += 100; break;
				default: s += 1000;
				}
			}
			return s;
		}`},
		{"incdec", `int main(void) {
			int i = 5;
			int a = i++ * 10 + i;
			int b = ++i * 10 + i;
			int c = i-- + --i;
			return a * 1000 + b * 10 + c;
		}`},
		{"compound-assign", `int main(void) {
			int x = 100;
			x += 5; x -= 2; x *= 3; x /= 4; x %= 50; x <<= 2; x >>= 1; x &= 0xff; x |= 3; x ^= 9;
			return x;
		}`},
		{"float-rounding", `float f;
		double d;
		float half(float v) { return v / 3.0f; }
		int main(void) {
			f = 0.1f;
			f += 0.2f;
			d = f;
			d += 0.1;
			float g = (float)d;
			f = half(g) * 2.0f;
			return (int)(f * 1000000.0f);
		}`},
		{"float-ops", `int main(void) {
			double x = 2.5;
			double y = -x + 1.0;
			float z = 3.5f;
			z++; --z;
			int cmp = (x > y) + (x >= 2.5) * 2 + (y != x) * 4 + (z == 3.5f) * 8;
			return (int)(x * y + z) * 100 + cmp + (int)-1.5 + (x < 3.0 ? 7 : 9);
		}`},
		{"pointers", `int a[10];
		int main(void) {
			int *p = a;
			for (int i = 0; i < 10; i++) p[i] = i * i;
			int *q = p + 7;
			int *r = 2 + q - 4;
			int d = q - r;
			return *q * 1000 + *r * 10 + d + (q > r) + (q != r) * 2;
		}`},
		{"ptr-compound", `int a[8];
		int main(void) {
			int *p = a;
			for (int i = 0; i < 8; i++) a[i] = i + 1;
			p += 5;
			p -= 2;
			return *p;
		}`},
		{"matrix", `int m[3][4];
		int main(void) {
			for (int i = 0; i < 3; i++)
				for (int j = 0; j < 4; j++)
					m[i][j] = i * 10 + j;
			int *row = m[2];
			return m[1][3] * 100 + row[1];
		}`},
		{"malloc-free", `int main(void) {
			int *p = (int*)malloc(4 * sizeof(int));
			for (int i = 0; i < 4; i++) p[i] = i + 10;
			int s = p[0] + p[3];
			free(p);
			return s;
		}`},
		{"struct", `struct pt { int x; int y; };
		int main(void) {
			struct pt p;
			p.x = 3;
			p.y = 4;
			p.x += 10;
			return p.x * p.y;
		}`},
		{"struct-ptr", `struct pt { int x; int y; };
		int main(void) {
			struct pt p;
			p.x = 3;
			p.y = 4;
			struct pt *q = &p;
			q->x += 10;
			return q->x * p.y;
		}`},
		{"calls", `int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
		int twice(int v) { return 2 * v; }
		int main(void) { return fib(12) + twice(5); }`},
		{"globals", `int gi;
		double gd;
		int *gp;
		int arr[4];
		int main(void) {
			gi = 41;
			gi++;
			gd = 2.5;
			gd *= 2.0;
			gp = arr;
			gp[2] = 9;
			return gi + (int)gd + arr[2];
		}`},
		{"ternary-sideeffect", `int main(void) {
			int i = 0;
			int r = i++ ? 100 : 200;
			double f = i ? 1.5 : 2.5;
			return r + i + (int)(f * 2.0);
		}`},
		{"cond-float-trunc", `int main(void) {
			/* intExpr CondExpr truncates a float condition to int */
			double c = 0.5;
			int r = c ? 1 : 2;
			return r;
		}`},
		{"parallel-region", `double x[64], y[64];
		int main(void) {
			for (int i = 0; i < 64; i++) { x[i] = i; y[i] = 0.0; }
			#pragma omp parallel for
			for (int i = 0; i < 64; i++)
				y[i] = 2.0 * x[i] + 1.0;
			double s = 0.0;
			#pragma omp parallel for reduction(+:s)
			for (int i = 0; i < 64; i++)
				s += y[i];
			return (int)s;
		}`},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			mc, info := compileEngine(t, c.src, EngineClosure)
			mt, _ := compileEngine(t, c.src, EngineTape)
			want, err := mc.RunMain()
			if err != nil {
				t.Fatalf("closure run: %v", err)
			}
			got, err := mt.RunMain()
			if err != nil {
				t.Fatalf("tape run: %v", err)
			}
			if got != want {
				t.Fatalf("tape returned %d, closure %d", got, want)
			}
			if !noOracle[c.name] {
				in, err := interp.New(info, nil)
				if err != nil {
					t.Fatalf("interp: %v", err)
				}
				oracle, err := in.RunMain()
				if err != nil {
					t.Fatalf("interp run: %v", err)
				}
				if got != oracle {
					t.Fatalf("tape returned %d, interp oracle %d", got, oracle)
				}
			}
			if st, _, _ := mt.Program().TapeStats(); st == 0 {
				t.Fatal("tape build reports zero instructions")
			}
		})
	}
}

// TestTapeTrapParity pins the trap contract: identical RuntimeError
// messages under both engines, including the compound-division rule
// that the divisor evaluates (and traps) before the accumulator load.
func TestTapeTrapParity(t *testing.T) {
	cases := []struct {
		name string
		src  string
		msg  string
	}{
		{"div-zero", `int main(void) { int a = 7, b = 0; return a / b; }`, "integer division by zero"},
		{"mod-zero", `int main(void) { int a = 7, b = 0; return a % b; }`, "integer modulo by zero"},
		{"compound-div-zero", `int g;
		int boom(void) { g = 1; return 0; }
		int main(void) { int x = 5; x /= boom(); return x; }`, "integer division by zero"},
		{"compound-mod-zero", `int main(void) { int x = 5, z = 0; x %= z; return x; }`, "integer modulo by zero"},
		{"oob", `int a[4]; int main(void) { int i = 4; return a[i]; }`, "out of"},
		{"null-deref", `int main(void) { int *p = 0; return p[0]; }`, "nil pointer"},
		{"use-after-free", `int main(void) {
			int *p = (int*)malloc(2 * sizeof(int));
			free(p);
			return p[0];
		}`, "out of range"},
		{"int-to-ptr", `int main(void) { int v = 7; int *p = (int*)v; return 0; }`, "cast of non-zero integer to pointer"},
		{"cross-segment-diff", `int a[4]; int b[4];
		int main(void) { int *p = a; int *q = b; return p - q; }`, "across segments"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var msgs [2]string
			for i, eng := range []Engine{EngineClosure, EngineTape} {
				m, _ := compileEngine(t, c.src, eng)
				_, err := m.RunMain()
				if err == nil {
					t.Fatalf("%s: expected a trap", eng)
				}
				if _, ok := err.(*RuntimeError); !ok {
					t.Fatalf("%s: want *RuntimeError, got %T: %v", eng, err, err)
				}
				msgs[i] = err.Error()
			}
			if msgs[0] != msgs[1] {
				t.Fatalf("trap messages differ:\nclosure: %s\ntape:    %s", msgs[0], msgs[1])
			}
			if !strings.Contains(msgs[1], c.msg) {
				t.Fatalf("trap %q does not mention %q", msgs[1], c.msg)
			}
		})
	}
}

// TestTapeJumpPatching checks every emitted jump lands inside the tape
// (no zero or unpatched offsets survive compilation) across the control
// constructs that patch forward and backward.
func TestTapeJumpPatching(t *testing.T) {
	src := `int main(void) {
		int s = 0;
		for (int i = 0; i < 20; i++) {
			if (i % 2 == 0) continue;
			if (i > 15) break;
			int j = i;
			while (j > 0) { s += j; j--; if (j == 1) break; }
			do { s++; } while (0);
			s += (i < 10 && s < 10000) ? 1 : 2;
		}
		return s;
	}`
	m, _ := compileEngine(t, src, EngineTape)
	prog := m.Program()
	cf := prog.funcs["main"]
	tp := tapeOf(t, cf)
	for pc, in := range tp.code {
		switch in.op {
		case tJmp, tJz, tJnz:
			if in.a == 0 {
				t.Fatalf("pc %d: %d-op jump with unpatched zero offset", pc, in.op)
			}
			if tgt := pc + int(in.a); tgt < 0 || tgt > len(tp.code) {
				t.Fatalf("pc %d: jump lands at %d, outside [0,%d]", pc, tgt, len(tp.code))
			}
		case tStmt:
			for _, off := range []int32{in.a, in.c} {
				if off == tapeCtrlRet {
					continue
				}
				if tgt := pc + int(off); tgt < 0 || tgt > len(tp.code) {
					t.Fatalf("pc %d: tStmt ctrl jump lands at %d, outside [0,%d]", pc, tgt, len(tp.code))
				}
			}
		}
	}
	got, err := m.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	mc, _ := compileEngine(t, src, EngineClosure)
	want, err := mc.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("tape returned %d, closure %d", got, want)
	}
}

// tapeOf fetches the main instruction tape the compiler attaches to a
// function compiled under EngineTape.
func tapeOf(t *testing.T, cf *cfunc) *tape {
	t.Helper()
	if cf.tape == nil {
		t.Fatal("compiled function has no tape attached")
	}
	return cf.tape
}

// TestTapeConstantPooling verifies repeated literals share one pool
// entry.
func TestTapeConstantPooling(t *testing.T) {
	src := `int main(void) {
		int a = 7;
		int b = 7;
		return 7 + a + b - 7;
	}`
	m, _ := compileEngine(t, src, EngineTape)
	_, consts, _ := m.Program().TapeStats()
	if consts != 1 {
		t.Fatalf("want 1 pooled constant (7), got %d", consts)
	}
	got, err := m.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if got != 7+7+7-7 {
		t.Fatalf("got %d", got)
	}
}

// TestTapeSlotAllocation pins the temp high-water accounting: the frame
// grows past the locals by exactly the deepest expression's register
// need, and execution stays inside it.
func TestTapeSlotAllocation(t *testing.T) {
	src := `int main(void) {
		return ((1 + 2) * (3 + 4)) + ((5 + 6) * (7 + 8));
	}`
	m, _ := compileEngine(t, src, EngineTape)
	prog := m.Program()
	cf := prog.funcs["main"]
	// No locals: nI is purely temps. The right-hand product holds the
	// left sum live while its two sub-sums evaluate: depth 4.
	if cf.nI != 4 {
		t.Fatalf("want 4 int temp slots, got %d", cf.nI)
	}
	_, _, temps := prog.TapeStats()
	if temps != 4 {
		t.Fatalf("want 4 temps reported, got %d", temps)
	}
	got, err := m.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if got != (1+2)*(3+4)+(5+6)*(7+8) {
		t.Fatalf("got %d", got)
	}
}
