package comp

import "purec/internal/sema"

// Machine wraps one Process of a Program: the classic compile-and-run
// object. It is safe for sequential reuse — call ResetGlobals between
// runs — and all run-state methods (RunMain, CallInt, CallFloat,
// SetTeam, Global*) come from the embedded Process. The compiled
// artifact is reachable via Process.Program(); for concurrent runs
// give each goroutine its own Process of that Program.
type Machine struct {
	*Process
}

// Compile translates a checked program and pairs it with a fresh
// Process built from opts (Team, Stdout).
func Compile(info *sema.Info, opts Options) (*Machine, error) {
	prog, err := CompileProgram(info, opts)
	if err != nil {
		return nil, err
	}
	proc, err := prog.NewProcess(ProcOptions{Team: opts.Team, Stdout: opts.Stdout})
	if err != nil {
		return nil, err
	}
	return &Machine{Process: proc}, nil
}
