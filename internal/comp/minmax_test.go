package comp

import (
	"testing"

	"purec/internal/interp"
)

// TestMinMaxKernel checks the fused min/max reduction kernels against
// the dispatch path (NoFuse) and the interp oracle, sequentially and
// under a parallel reduction clause.
func TestMinMaxKernel(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"seq-int-min", `int a[100];
		int main(void) {
			for (int i = 0; i < 100; i++) a[i] = (i * 37) % 91 - 40;
			int m = 1000000;
			for (int i = 0; i < 100; i++) if (a[i] < m) m = a[i];
			return m;
		}`},
		{"seq-float-max-ternary", `double a[100];
		int main(void) {
			for (int i = 0; i < 100; i++) a[i] = (i * 37 % 91) * 0.25;
			double m = -1.0e30;
			for (int i = 0; i < 100; i++) m = a[i] > m ? a[i] : m;
			return (int)(m * 100.0);
		}`},
		{"seq-f32-min", `float a[64];
		int main(void) {
			for (int i = 0; i < 64; i++) a[i] = 10.0f - i * 0.125f;
			float m = 1.0e30f;
			for (int i = 0; i < 64; i++) if (a[i] < m) m = a[i];
			return (int)(m * 1000.0f);
		}`},
		{"par-int-max", `int a[200];
		int main(void) {
			for (int i = 0; i < 200; i++) a[i] = (i * 53) % 171;
			int m = -1;
			#pragma omp parallel for reduction(max:m)
			for (int i = 0; i < 200; i++) if (a[i] > m) m = a[i];
			return m;
		}`},
		{"par-float-min-offset", `double a[128];
		int main(void) {
			for (int i = 0; i < 128; i++) a[i] = ((i * 29) % 83) * 0.5 - 10.0;
			double m = 1.0e30;
			#pragma omp parallel for reduction(min:m)
			for (int i = 0; i < 120; i++) if (a[i + 8] < m) m = a[i + 8];
			return (int)(m * 10.0);
		}`},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			f := compile(t, c.src, Options{})
			if f.Program().FusedKernels() == 0 {
				t.Fatal("min/max loop did not fuse")
			}
			d := compile(t, c.src, Options{NoFuse: true})
			if d.Program().FusedKernels() != 0 {
				t.Fatal("NoFuse build still fused")
			}
			fused, err := f.RunMain()
			if err != nil {
				t.Fatalf("fused: %v", err)
			}
			dispatch, err := d.RunMain()
			if err != nil {
				t.Fatalf("dispatch: %v", err)
			}
			if fused != dispatch {
				t.Fatalf("fused returned %d, dispatch %d", fused, dispatch)
			}
			in, err := interp.New(f.Program().Info(), nil)
			if err != nil {
				t.Fatalf("interp: %v", err)
			}
			oracle, err := in.RunMain()
			if err != nil {
				t.Fatalf("interp run: %v", err)
			}
			if fused != oracle {
				t.Fatalf("fused returned %d, interp oracle %d", fused, oracle)
			}
		})
	}
}
