package comp

//lint:file-rawmem the dispatch loop's indexed load/store opcodes rely on the
// Go runtime's slice bounds check, recovered by Process.CallInt into the same
// trap the mem accessors raise (see the tape contract below) — routing the
// hot path through mem would re-add the call overhead the tape exists to cut.

// Linearized bytecode backend: statement/expression trees flatten into
// a flat instruction array executed by one switch-dispatch loop, with
// constants pooled and every operand materialized in fixed frame slots
// — no per-node closures and no interface calls on the hot path.
//
// The tape contract mirrors the closure backend bit for bit:
//
//   - every operand is materialized into a temp register at the moment
//     the corresponding closure leaf would run, so side effects inside
//     subexpressions observe the same intermediate state;
//   - float arithmetic is float64 with tRoundF emitted at exactly the
//     closure backend's float32 store-rounding points (4-byte stores,
//     declarations, returns, casts);
//   - traps reuse the same primitives (rtPanic messages, addScaled,
//     DiffChecked, raw Load/Store panics recovered by Process.CallInt),
//     so bounds, overflow, use-after-free poisoning and cross-segment
//     pointer diffs fail identically to dispatch and the interp oracle.
//
// Temp registers extend the function frame beyond its locals, so worker
// clones privatize them for free and execution allocates nothing. Temps
// never live across a statement boundary, which lets nested tapes (the
// bodies of parallel regions run on the same environment) reuse the
// same register space.
//
// Constructs with heavyweight semantics — calls (inlining, memoization),
// malloc, printf/free/srand, switch statements, parallel regions and
// fused kernels — escape into pooled closures compiled by the regular
// backend; the surrounding control flow still runs on the tape.

import (
	"math"

	"purec/internal/mem"
)

// nullPtr is the null pointer constant stored by tNullP/tIntToPtr.
var nullPtr mem.Pointer

// topcode is a tape instruction opcode. (The t prefix keeps the set
// disjoint from the fused-kernel postfix opcodes in kernel.go.)
type topcode uint8

const (
	tNop topcode = iota

	// Integer register ops: a = destination, b/c = operands.
	tConstI // I[a] = constI[b]
	tMovI   // I[a] = I[b]
	tAddI   // I[a] = I[b] + I[c]
	tSubI
	tMulI
	tDivI // traps "integer division by zero"
	tRemI // traps "integer modulo by zero"
	tAndI
	tOrI
	tXorI
	tShlI
	tShrI
	tChkDiv0 // traps "integer division by zero" when I[b] == 0
	tChkRem0 // traps "integer modulo by zero" when I[b] == 0
	tNegI    // I[a] = -I[b]
	tCmplI   // I[a] = ^I[b]
	tNotI    // I[a] = 1 if I[b] == 0 else 0
	tEqI     // I[a] = 1 if I[b] == I[c] else 0 (…tGeI likewise)
	tNeI
	tLtI
	tLeI
	tGtI
	tGeI

	// Float register ops.
	tConstF // F[a] = constF[b]
	tMovF
	tAddF
	tSubF
	tMulF
	tDivF
	tNegF
	tRoundF // F[a] = float64(float32(F[b])) — C float store rounding
	tI2F    // F[a] = float64(I[b])
	tF2I    // I[a] = int64(F[b]) — C truncation
	tTstF   // I[a] = 1 if F[b] != 0 else 0
	tEqF    // I[a] = 1 if F[b] == F[c] else 0 (…tGeF likewise)
	tNeF
	tLtF
	tLeF
	tGtF
	tGeF

	// Global slot access (globals live in Process storage).
	tLdGI // I[a] = gI[b]
	tStGI // gI[a] = I[b]
	tLdGF
	tStGF
	tLdGP
	tStGP

	// Pointer ops.
	tMovP
	tNullP    // P[a] = null
	tTstP     // I[a] = 1 if !P[b].IsNull() else 0
	tIntToPtr // P[a] = null when I[b] == 0, else traps (int→ptr cast)
	tPtrIdx   // P[a] = P[b].Add(I[c]*aux) — unchecked address arithmetic
	tPtrOff   // P[a] = P[b].Add(I[c])
	tPtrImm   // P[a] = P[b].Add(aux)
	tPtrAdd   // P[a] = addScaled(P[b], I[c], aux) — checked ptr value arith
	tPtrSub   // P[a] = addScaled(P[b], -I[c], aux)
	tPtrDiff  // I[a] = P[b].DiffChecked(P[c]) / aux
	tPtrEq    // I[a] = 1 if P[b] == P[c] else 0 (whole-Pointer equality)
	tPtrNe
	tPtrLt // I[a] = 1 if P[b].Off < P[c].Off else 0 (…tPtrGe likewise)
	tPtrLe
	tPtrGt
	tPtrGe

	// Memory access through a pointer register. Bounds and use-after-
	// free poisoning trap inside mem exactly as in the closure backend.
	tLdInd  // I[a] = P[b].LoadInt()
	tLdIndF // F[a] = P[b].LoadFloat()
	tLdIndP // P[a] = P[b].LoadPtr()
	tStInd  // P[a].StoreInt(I[b])
	tStIndF // P[a].StoreFloat(F[b])
	tStIndP // P[a].StorePtr(P[b])

	// Control flow: taken jumps do pc += a (relative, patched).
	tJmp
	tJz  // when I[b] == 0
	tJnz // when I[b] != 0
	tRet
	tRetI // retI = I[a]; return
	tRetF
	tRetP
	tBrk  // return ctrlBreak (break with no enclosing tape loop)
	tCont // return ctrlContinue

	// Closure escapes: calls, malloc, effects, statements with
	// heavyweight semantics. b indexes the pool.
	tCallI // I[a] = intFns[b](e)
	tCallF // F[a] = fltFns[b](e)
	tCallP // P[a] = ptrFns[b](e)
	tEff   // effFns[b](e)
	tStmt  // run stmts[b]; break jumps by a, continue by c

	// ------------------------------------------------------------------
	// Fused superinstructions, produced only by the peephole optimizer
	// (tapeopt.go), never by the front end. Each one is semantically the
	// exact instruction sequence it replaces — same operand evaluation
	// order, same trap points, same float64 arithmetic and float32
	// rounding — with writes of dead temp registers elided.

	// Integer ops with an immediate operand in aux.
	tAddII // I[a] = I[b] + aux
	tRsbII // I[a] = aux - I[b]
	tMulII
	tDivII // I[a] = I[b] / aux — only emitted with aux != 0
	tRemII
	tAndII
	tOrII
	tXorII
	tShlII // I[a] = I[b] << uint(aux)
	tShrII
	tEqII // I[a] = 1 if I[b] == aux else 0 (…tGeII likewise)
	tNeII
	tLtII
	tLeII
	tGtII
	tGeII

	// Float ops against a pooled constant: c indexes constF.
	tAddFC // F[a] = F[b] + constF[c]
	tSubFC
	tRsbFC // F[a] = constF[c] - F[b]
	tMulFC
	tDivFC
	tRdivFC // F[a] = constF[c] / F[b]
	tEqFC   // I[a] = 1 if F[b] == constF[c] else 0 (…tGeFC likewise)
	tNeFC
	tLtFC
	tLeFC
	tGtFC
	tGeFC

	// Fused multiply-add. The explicit float64 conversion around the
	// product pins the closure backend's two separate roundings — Go may
	// not contract the expression into an FMA.
	tMulAddF  // F[a] = float64(F[b]*F[c]) + F[aux]
	tMulAddFC // F[a] = float64(F[b]*constF[c]) + F[aux]
	tAddMulF  // F[a] = F[aux] + float64(F[b]*F[c])
	tAddMulFC // F[a] = F[aux] + float64(F[b]*constF[c])

	// Fused compare-and-branch: pc += a when the predicate (negated by
	// the flag) holds. Int predicates carry the negate flag in aux
	// (reg-reg) or c (immediate, aux = constant); float predicates are
	// never negated away (NaN), so all six exist and the flag picks the
	// jz/jnz sense exactly: jump iff pred != flag.
	tJeqI  // pred I[b] == I[c], negate in aux
	tJltI  // pred I[b] < I[c]
	tJleI  // pred I[b] <= I[c]
	tJeqII // pred I[b] == aux, negate in c
	tJltII
	tJleII
	tJeqF // pred F[b] == F[c], negate in aux
	tJneF
	tJltF
	tJleF
	tJgtF
	tJgeF
	tJeqFC // pred F[b] == constF[c], negate in aux
	tJneFC
	tJltFC
	tJleFC
	tJgtFC
	tJgeFC
	tJzF      // when F[b] == 0
	tJnzF     // when F[b] != 0
	tJzP      // when P[b].IsNull()
	tJnzP     // when !P[b].IsNull()
	tIncJltII // I[b]++; jump when I[b] < aux (rotated loop tail)

	// Indexed memory superinstructions: base reload + index arithmetic +
	// access in one step. b = base (global P slot on the G forms, frame
	// P slot otherwise), c = index I slot, aux = element stride; a is the
	// loaded destination or stored value slot. The address is
	// Off + int(I[c]*aux) — exactly Pointer.Add — and the raw Seg access
	// panics identically to Load/Store on every bad pointer.
	tLdGIdx  // I[a] = gP[b].Seg.I[Off+I[c]*aux]
	tLdGIdxF // F[a] = gP[b].Seg.F[Off+I[c]*aux]
	tLdGIdxP
	tLdGIdxFR // tLdGIdxF then float32 store rounding
	tStGIdx   // gP[b].Seg.I[Off+I[c]*aux] = I[a]
	tStGIdxF
	tStGIdxP
	tStGIdxFR // stores float64(float32(F[a]))
	tLdIdx    // I[a] = P[b].Seg.I[Off+I[c]*aux]
	tLdIdxF
	tLdIdxP
	tLdIdxFR
	tStIdx // P[b].Seg.I[Off+I[c]*aux] = I[a]
	tStIdxF
	tStIdxP
	tStIdxFR
)

// tapeCtrlRet marks a tStmt break/continue offset with no enclosing
// tape loop: the ctrl propagates out of the tape instead of jumping.
const tapeCtrlRet = int32(math.MinInt32)

// tinstr is one tape instruction word.
type tinstr struct {
	op      topcode
	a, b, c int32
	aux     int64
}

// tape is one compiled instruction sequence plus its pools. The main
// body of a function compiles to one tape; each parallel-region body
// compiles to its own tape sharing the function's temp register space.
type tape struct {
	code   []tinstr
	constI []int64
	constF []float64

	// closure escape pools
	intFns []intFn
	fltFns []fltFn
	ptrFns []ptrFn
	effFns []func(*env)
	stmts  []stmtFn

	// first temp register of each kind (frame slots below these are
	// locals/params, which the optimizer must treat as always live)
	tmpI, tmpF, tmpP int32
}

// stmtFn adapts the tape to the closure backend's statement interface.
func (tp *tape) stmtFn() stmtFn {
	return func(e *env) ctrl { return tp.exec(e) }
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// exec runs the tape on an environment. Falling off the end of the
// code is normal completion (ctrlNext). The frame slices are hoisted
// into locals: an env's I/F/P headers never change after creation
// (escapes mutate elements in place, workers run on clones).
func (tp *tape) exec(e *env) ctrl {
	code := tp.code
	I, F, P := e.I, e.F, e.P
	cf := tp.constF
	for pc := 0; pc < len(code); {
		in := code[pc]
		switch in.op {
		case tNop:
		case tConstI:
			I[in.a] = tp.constI[in.b]
		case tMovI:
			I[in.a] = I[in.b]
		case tAddI:
			I[in.a] = I[in.b] + I[in.c]
		case tSubI:
			I[in.a] = I[in.b] - I[in.c]
		case tMulI:
			I[in.a] = I[in.b] * I[in.c]
		case tDivI:
			d := I[in.c]
			if d == 0 {
				rtPanic("integer division by zero")
			}
			I[in.a] = I[in.b] / d
		case tRemI:
			d := I[in.c]
			if d == 0 {
				rtPanic("integer modulo by zero")
			}
			I[in.a] = I[in.b] % d
		case tChkDiv0:
			if I[in.b] == 0 {
				rtPanic("integer division by zero")
			}
		case tChkRem0:
			if I[in.b] == 0 {
				rtPanic("integer modulo by zero")
			}
		case tAndI:
			I[in.a] = I[in.b] & I[in.c]
		case tOrI:
			I[in.a] = I[in.b] | I[in.c]
		case tXorI:
			I[in.a] = I[in.b] ^ I[in.c]
		case tShlI:
			I[in.a] = I[in.b] << uint(I[in.c])
		case tShrI:
			I[in.a] = I[in.b] >> uint(I[in.c])
		case tNegI:
			I[in.a] = -I[in.b]
		case tCmplI:
			I[in.a] = ^I[in.b]
		case tNotI:
			I[in.a] = b2i(I[in.b] == 0)
		case tEqI:
			I[in.a] = b2i(I[in.b] == I[in.c])
		case tNeI:
			I[in.a] = b2i(I[in.b] != I[in.c])
		case tLtI:
			I[in.a] = b2i(I[in.b] < I[in.c])
		case tLeI:
			I[in.a] = b2i(I[in.b] <= I[in.c])
		case tGtI:
			I[in.a] = b2i(I[in.b] > I[in.c])
		case tGeI:
			I[in.a] = b2i(I[in.b] >= I[in.c])

		case tAddII:
			I[in.a] = I[in.b] + in.aux
		case tRsbII:
			I[in.a] = in.aux - I[in.b]
		case tMulII:
			I[in.a] = I[in.b] * in.aux
		case tDivII:
			I[in.a] = I[in.b] / in.aux
		case tRemII:
			I[in.a] = I[in.b] % in.aux
		case tAndII:
			I[in.a] = I[in.b] & in.aux
		case tOrII:
			I[in.a] = I[in.b] | in.aux
		case tXorII:
			I[in.a] = I[in.b] ^ in.aux
		case tShlII:
			I[in.a] = I[in.b] << uint(in.aux)
		case tShrII:
			I[in.a] = I[in.b] >> uint(in.aux)
		case tEqII:
			I[in.a] = b2i(I[in.b] == in.aux)
		case tNeII:
			I[in.a] = b2i(I[in.b] != in.aux)
		case tLtII:
			I[in.a] = b2i(I[in.b] < in.aux)
		case tLeII:
			I[in.a] = b2i(I[in.b] <= in.aux)
		case tGtII:
			I[in.a] = b2i(I[in.b] > in.aux)
		case tGeII:
			I[in.a] = b2i(I[in.b] >= in.aux)

		case tConstF:
			F[in.a] = cf[in.b]
		case tMovF:
			F[in.a] = F[in.b]
		case tAddF:
			F[in.a] = F[in.b] + F[in.c]
		case tSubF:
			F[in.a] = F[in.b] - F[in.c]
		case tMulF:
			F[in.a] = F[in.b] * F[in.c]
		case tDivF:
			F[in.a] = F[in.b] / F[in.c]
		case tNegF:
			F[in.a] = -F[in.b]
		case tRoundF:
			F[in.a] = float64(float32(F[in.b]))
		case tI2F:
			F[in.a] = float64(I[in.b])
		case tF2I:
			I[in.a] = int64(F[in.b])
		case tTstF:
			I[in.a] = b2i(F[in.b] != 0)
		case tEqF:
			I[in.a] = b2i(F[in.b] == F[in.c])
		case tNeF:
			I[in.a] = b2i(F[in.b] != F[in.c])
		case tLtF:
			I[in.a] = b2i(F[in.b] < F[in.c])
		case tLeF:
			I[in.a] = b2i(F[in.b] <= F[in.c])
		case tGtF:
			I[in.a] = b2i(F[in.b] > F[in.c])
		case tGeF:
			I[in.a] = b2i(F[in.b] >= F[in.c])

		case tAddFC:
			F[in.a] = F[in.b] + cf[in.c]
		case tSubFC:
			F[in.a] = F[in.b] - cf[in.c]
		case tRsbFC:
			F[in.a] = cf[in.c] - F[in.b]
		case tMulFC:
			F[in.a] = F[in.b] * cf[in.c]
		case tDivFC:
			F[in.a] = F[in.b] / cf[in.c]
		case tRdivFC:
			F[in.a] = cf[in.c] / F[in.b]
		case tEqFC:
			I[in.a] = b2i(F[in.b] == cf[in.c])
		case tNeFC:
			I[in.a] = b2i(F[in.b] != cf[in.c])
		case tLtFC:
			I[in.a] = b2i(F[in.b] < cf[in.c])
		case tLeFC:
			I[in.a] = b2i(F[in.b] <= cf[in.c])
		case tGtFC:
			I[in.a] = b2i(F[in.b] > cf[in.c])
		case tGeFC:
			I[in.a] = b2i(F[in.b] >= cf[in.c])

		case tMulAddF:
			F[in.a] = float64(F[in.b]*F[in.c]) + F[in.aux]
		case tMulAddFC:
			F[in.a] = float64(F[in.b]*cf[in.c]) + F[in.aux]
		case tAddMulF:
			F[in.a] = F[in.aux] + float64(F[in.b]*F[in.c])
		case tAddMulFC:
			F[in.a] = F[in.aux] + float64(F[in.b]*cf[in.c])

		case tLdGI:
			I[in.a] = e.p.gI[in.b]
		case tStGI:
			e.p.gI[in.a] = I[in.b]
		case tLdGF:
			F[in.a] = e.p.gF[in.b]
		case tStGF:
			e.p.gF[in.a] = F[in.b]
		case tLdGP:
			P[in.a] = e.p.gP[in.b]
		case tStGP:
			e.p.gP[in.a] = P[in.b]

		case tMovP:
			P[in.a] = P[in.b]
		case tNullP:
			P[in.a] = nullPtr
		case tTstP:
			I[in.a] = b2i(!P[in.b].IsNull())
		case tIntToPtr:
			if I[in.b] != 0 {
				rtPanic("cast of non-zero integer to pointer")
			}
			P[in.a] = nullPtr
		case tPtrIdx:
			P[in.a] = P[in.b].Add(I[in.c] * in.aux)
		case tPtrOff:
			P[in.a] = P[in.b].Add(I[in.c])
		case tPtrImm:
			P[in.a] = P[in.b].Add(in.aux)
		case tPtrAdd:
			P[in.a] = addScaled(P[in.b], I[in.c], in.aux)
		case tPtrSub:
			P[in.a] = addScaled(P[in.b], -I[in.c], in.aux)
		case tPtrDiff:
			d, err := P[in.b].DiffChecked(P[in.c])
			if err != nil {
				rtPanic("%v", err)
			}
			I[in.a] = d / in.aux
		case tPtrEq:
			I[in.a] = b2i(P[in.b] == P[in.c])
		case tPtrNe:
			I[in.a] = b2i(P[in.b] != P[in.c])
		case tPtrLt:
			I[in.a] = b2i(P[in.b].Off < P[in.c].Off)
		case tPtrLe:
			I[in.a] = b2i(P[in.b].Off <= P[in.c].Off)
		case tPtrGt:
			I[in.a] = b2i(P[in.b].Off > P[in.c].Off)
		case tPtrGe:
			I[in.a] = b2i(P[in.b].Off >= P[in.c].Off)

		case tLdInd:
			I[in.a] = P[in.b].LoadInt()
		case tLdIndF:
			F[in.a] = P[in.b].LoadFloat()
		case tLdIndP:
			P[in.a] = P[in.b].LoadPtr()
		case tStInd:
			P[in.a].StoreInt(I[in.b])
		case tStIndF:
			P[in.a].StoreFloat(F[in.b])
		case tStIndP:
			P[in.a].StorePtr(P[in.b])

		case tLdGIdx:
			p := e.p.gP[in.b]
			I[in.a] = p.Seg.I[p.Off+int(I[in.c]*in.aux)]
		case tLdGIdxF:
			p := e.p.gP[in.b]
			F[in.a] = p.Seg.F[p.Off+int(I[in.c]*in.aux)]
		case tLdGIdxP:
			p := e.p.gP[in.b]
			P[in.a] = p.Seg.P[p.Off+int(I[in.c]*in.aux)]
		case tLdGIdxFR:
			p := e.p.gP[in.b]
			F[in.a] = float64(float32(p.Seg.F[p.Off+int(I[in.c]*in.aux)]))
		case tStGIdx:
			p := e.p.gP[in.b]
			p.Seg.I[p.Off+int(I[in.c]*in.aux)] = I[in.a]
		case tStGIdxF:
			p := e.p.gP[in.b]
			p.Seg.F[p.Off+int(I[in.c]*in.aux)] = F[in.a]
		case tStGIdxP:
			p := e.p.gP[in.b]
			p.Seg.P[p.Off+int(I[in.c]*in.aux)] = P[in.a]
		case tStGIdxFR:
			p := e.p.gP[in.b]
			p.Seg.F[p.Off+int(I[in.c]*in.aux)] = float64(float32(F[in.a]))
		// Frame pointer slots can aim at block-sparse reduction privates
		// (Options.SparsePrivates), so the int/float indexed ops go
		// through the Pointer accessors, whose sparse branch handles
		// first-touch materialization; pointer-cell segments are never
		// sparse and keep the raw form.
		case tLdIdx:
			I[in.a] = P[in.b].Add(I[in.c] * in.aux).LoadInt()
		case tLdIdxF:
			F[in.a] = P[in.b].Add(I[in.c] * in.aux).LoadFloat()
		case tLdIdxP:
			p := P[in.b]
			P[in.a] = p.Seg.P[p.Off+int(I[in.c]*in.aux)]
		case tLdIdxFR:
			F[in.a] = float64(float32(P[in.b].Add(I[in.c] * in.aux).LoadFloat()))
		case tStIdx:
			P[in.b].Add(I[in.c] * in.aux).StoreInt(I[in.a])
		case tStIdxF:
			P[in.b].Add(I[in.c] * in.aux).StoreFloat(F[in.a])
		case tStIdxP:
			p := P[in.b]
			p.Seg.P[p.Off+int(I[in.c]*in.aux)] = P[in.a]
		case tStIdxFR:
			P[in.b].Add(I[in.c] * in.aux).StoreFloat(float64(float32(F[in.a])))

		case tJmp:
			pc += int(in.a)
			continue
		case tJz:
			if I[in.b] == 0 {
				pc += int(in.a)
				continue
			}
		case tJnz:
			if I[in.b] != 0 {
				pc += int(in.a)
				continue
			}
		case tJeqI:
			if (I[in.b] == I[in.c]) != (in.aux != 0) {
				pc += int(in.a)
				continue
			}
		case tJltI:
			if (I[in.b] < I[in.c]) != (in.aux != 0) {
				pc += int(in.a)
				continue
			}
		case tJleI:
			if (I[in.b] <= I[in.c]) != (in.aux != 0) {
				pc += int(in.a)
				continue
			}
		case tJeqII:
			if (I[in.b] == in.aux) != (in.c != 0) {
				pc += int(in.a)
				continue
			}
		case tJltII:
			if (I[in.b] < in.aux) != (in.c != 0) {
				pc += int(in.a)
				continue
			}
		case tJleII:
			if (I[in.b] <= in.aux) != (in.c != 0) {
				pc += int(in.a)
				continue
			}
		case tJeqF:
			if (F[in.b] == F[in.c]) != (in.aux != 0) {
				pc += int(in.a)
				continue
			}
		case tJneF:
			if (F[in.b] != F[in.c]) != (in.aux != 0) {
				pc += int(in.a)
				continue
			}
		case tJltF:
			if (F[in.b] < F[in.c]) != (in.aux != 0) {
				pc += int(in.a)
				continue
			}
		case tJleF:
			if (F[in.b] <= F[in.c]) != (in.aux != 0) {
				pc += int(in.a)
				continue
			}
		case tJgtF:
			if (F[in.b] > F[in.c]) != (in.aux != 0) {
				pc += int(in.a)
				continue
			}
		case tJgeF:
			if (F[in.b] >= F[in.c]) != (in.aux != 0) {
				pc += int(in.a)
				continue
			}
		case tJeqFC:
			if (F[in.b] == cf[in.c]) != (in.aux != 0) {
				pc += int(in.a)
				continue
			}
		case tJneFC:
			if (F[in.b] != cf[in.c]) != (in.aux != 0) {
				pc += int(in.a)
				continue
			}
		case tJltFC:
			if (F[in.b] < cf[in.c]) != (in.aux != 0) {
				pc += int(in.a)
				continue
			}
		case tJleFC:
			if (F[in.b] <= cf[in.c]) != (in.aux != 0) {
				pc += int(in.a)
				continue
			}
		case tJgtFC:
			if (F[in.b] > cf[in.c]) != (in.aux != 0) {
				pc += int(in.a)
				continue
			}
		case tJgeFC:
			if (F[in.b] >= cf[in.c]) != (in.aux != 0) {
				pc += int(in.a)
				continue
			}
		case tJzF:
			if F[in.b] == 0 {
				pc += int(in.a)
				continue
			}
		case tJnzF:
			if F[in.b] != 0 {
				pc += int(in.a)
				continue
			}
		case tJzP:
			if P[in.b].IsNull() {
				pc += int(in.a)
				continue
			}
		case tJnzP:
			if !P[in.b].IsNull() {
				pc += int(in.a)
				continue
			}
		case tIncJltII:
			v := I[in.b] + 1
			I[in.b] = v
			if v < in.aux {
				pc += int(in.a)
				continue
			}
		case tRet:
			return ctrlReturn
		case tRetI:
			e.retI = I[in.a]
			return ctrlReturn
		case tRetF:
			e.retF = F[in.a]
			return ctrlReturn
		case tRetP:
			e.retP = P[in.a]
			return ctrlReturn
		case tBrk:
			return ctrlBreak
		case tCont:
			return ctrlContinue

		case tCallI:
			I[in.a] = tp.intFns[in.b](e)
		case tCallF:
			F[in.a] = tp.fltFns[in.b](e)
		case tCallP:
			P[in.a] = tp.ptrFns[in.b](e)
		case tEff:
			tp.effFns[in.b](e)
		case tStmt:
			switch tp.stmts[in.b](e) {
			case ctrlReturn:
				return ctrlReturn
			case ctrlBreak:
				if in.a == tapeCtrlRet {
					return ctrlBreak
				}
				pc += int(in.a)
				continue
			case ctrlContinue:
				if in.c == tapeCtrlRet {
					return ctrlContinue
				}
				pc += int(in.c)
				continue
			}
		}
		pc++
	}
	return ctrlNext
}
