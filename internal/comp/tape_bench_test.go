package comp

import (
	"testing"

	"purec/internal/parser"
	"purec/internal/sema"
)

// benchSrc is an axpy-shaped dispatch workload: with fusion off, every
// iteration pays full statement dispatch on the selected engine.
const benchSrc = `
float x[4096], y[4096];

int run(void) {
	float a = 1.5f;
	for (int i = 0; i < 4096; i++)
		y[i] = a * x[i] + y[i];
	return 0;
}

int main(void) { return run(); }
`

// benchBranchSrc is the non-canonical branchy body (Fig T1's noncanon).
const benchBranchSrc = `
float x[4096], y[4096];

int run(void) {
	for (int i = 0; i < 4096; i++) {
		float v = x[i];
		if (v > 2.0f)
			y[i] = v * 0.5f + y[i] * 0.25f;
		else
			y[i] = v + 0.125f;
	}
	return 0;
}

int main(void) { return run(); }
`

func benchEngine(b *testing.B, src string, eng Engine) {
	b.Helper()
	file, err := parser.Parse("bench.c", src)
	if err != nil {
		b.Fatal(err)
	}
	info, err := sema.Check(file)
	if err != nil {
		b.Fatal(err)
	}
	m, err := Compile(info, Options{Engine: eng, NoFuse: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.CallInt("run"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAxpyClosure(b *testing.B)   { benchEngine(b, benchSrc, EngineClosure) }
func BenchmarkAxpyTape(b *testing.B)      { benchEngine(b, benchSrc, EngineTape) }
func BenchmarkBranchClosure(b *testing.B) { benchEngine(b, benchBranchSrc, EngineClosure) }
func BenchmarkBranchTape(b *testing.B)    { benchEngine(b, benchBranchSrc, EngineTape) }
