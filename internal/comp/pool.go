package comp

import (
	"sync"

	"purec/internal/mem"
	"purec/internal/rt"
)

// PoolOptions configure a ProcessPool.
type PoolOptions struct {
	// Size bounds the idle Processes the pool retains (minimum 1).
	// Get never blocks on the bound — a drained pool hands out fresh
	// Processes; Put discards beyond it.
	Size int
	// NewTeam constructs the worker team of each fresh pooled Process
	// (nil means rt.NewTeam(1)). The team stays with its Process across
	// reuses — teams spawn workers per region, so reuse costs nothing
	// and keeps the simulated-time accounting object stable.
	NewTeam func() *rt.Team
	// PrivateMemo gives each pooled Process its own memo table instead
	// of the Program-shared default (see ProcOptions.PrivateMemo). The
	// default — sharing the Program's table — is what a serving pool
	// wants: pure-call results are referentially transparent, so a table
	// warmed by one request serves every later one.
	PrivateMemo bool
}

// PoolStats counts a pool's traffic. Reuses is the headline number: how
// many runs were served by resetting an existing Process instead of
// allocating a fresh one.
type PoolStats struct {
	Gets      uint64
	Reuses    uint64
	Fresh     uint64
	Discarded uint64
}

// ProcessPool hands out Processes of one Program for sequential
// per-request use and takes them back for reuse. Each pooled Process
// owns a mem.Arena, so returning it resets-without-reallocating: the
// previous run's segments are poisoned (stale pointers trap, exactly
// the free() contract) while their backing storage feeds the next
// run's allocations. A Process obtained from Get is exclusively the
// caller's until Put; distinct pooled Processes run concurrently.
type ProcessPool struct {
	prog *Program
	opts PoolOptions

	mu   sync.Mutex
	idle []*Process

	gets, reuses, fresh, discarded uint64
}

// NewPool creates a Process pool for the program.
func (p *Program) NewPool(opts PoolOptions) *ProcessPool {
	if opts.Size < 1 {
		opts.Size = 1
	}
	if opts.NewTeam == nil {
		opts.NewTeam = func() *rt.Team { return rt.NewTeam(1) }
	}
	return &ProcessPool{prog: p, opts: opts}
}

// Get returns a Process in the program's initial state: an idle pooled
// Process reset in place when one is available, a fresh arena-backed
// Process otherwise. The caller runs it sequentially and returns it
// with Put.
func (pl *ProcessPool) Get() (*Process, error) {
	pl.mu.Lock()
	var proc *Process
	if n := len(pl.idle); n > 0 {
		proc = pl.idle[n-1]
		pl.idle[n-1] = nil
		pl.idle = pl.idle[:n-1]
	}
	pl.gets++
	pl.mu.Unlock()
	if proc != nil {
		if err := proc.Reset(); err == nil {
			pl.mu.Lock()
			pl.reuses++
			pl.mu.Unlock()
			return proc, nil
		}
		// A Process that cannot reset is discarded; fall through to a
		// fresh one so the request still runs.
		pl.mu.Lock()
		pl.discarded++
		pl.mu.Unlock()
	}
	fresh, err := pl.prog.newProcess(ProcOptions{
		Team:        pl.opts.NewTeam(),
		PrivateMemo: pl.opts.PrivateMemo,
	}, mem.NewArena())
	if err != nil {
		return nil, err
	}
	pl.mu.Lock()
	pl.fresh++
	pl.mu.Unlock()
	return fresh, nil
}

// Put returns a Process to the pool for reuse. Beyond the size bound
// the Process is discarded (its storage goes to the garbage collector,
// exactly as an unpooled Process would). Put accepts a Process in any
// state — trapped runs included — because Get resets before reuse.
func (pl *ProcessPool) Put(proc *Process) {
	if proc == nil || proc.prog != pl.prog {
		return
	}
	proc.SetStdout(nil)
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if len(pl.idle) >= pl.opts.Size {
		pl.discarded++
		return
	}
	pl.idle = append(pl.idle, proc)
}

// Stats snapshots the pool counters.
func (pl *ProcessPool) Stats() PoolStats {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return PoolStats{Gets: pl.gets, Reuses: pl.reuses, Fresh: pl.fresh, Discarded: pl.discarded}
}

// Program returns the program the pool serves.
func (pl *ProcessPool) Program() *Program { return pl.prog }
