package comp

import (
	"purec/internal/ast"
	"purec/internal/sema"
	"purec/internal/token"
	"purec/internal/types"
)

// reduceKernel is the ICC-backend analog of automatic vectorization: a
// canonical reduction loop inside an extracted pure function,
//
//	for (int k = LB; k < UB; ++k) acc += X[k] * Y[k];
//
// (also through a trivial pure helper like mult(a,b), and the indirect
// ELL form X[s+k] * Y[Z[s+k]]) is compiled into a fused kernel that
// accumulates directly over the memory segments instead of dispatching
// closures per iteration. The paper attributes the pure+ICC advantage
// on the matrix–matrix multiplication to exactly this: ICC vectorizes
// the extracted dot function but not the PluTo-inlined loop
// (Sect. 4.3.1). The kernel preserves C float rounding per iteration,
// so results are bit-identical to the unvectorized backend.
//
// The kernel comes back in chunk form — run iterations [lo, hi] on an
// environment — so sequential loops run it once while parallel
// reduction regions hand each worker its chunk bounds (see
// parallelReduceFor).
func (fc *funcCompiler) reduceKernel(x *ast.ForStmt) (canonicalLoop, kernRun) {
	cl, ok := fc.canonical(x)
	if !ok || !fc.hoistableBounds(cl) {
		return cl, nil
	}
	stmt := singleStmt(cl.body)
	if stmt == nil {
		return cl, nil
	}
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return cl, nil
	}
	as, ok := es.X.(*ast.AssignExpr)
	if !ok || as.Op != token.ADDASSIGN {
		return cl, nil
	}
	acc, f32, ok := fc.accumulator(as.LHS, cl.iterSym)
	if !ok {
		return cl, nil
	}
	// The reduction body writes the accumulator every iteration: a
	// bound that reads it (for (k = 0; k < s; k++) s += x[k];) is not
	// invariant even though hoistable's scalar test passes — the
	// dispatch loop re-evaluates it per iteration and self-extends.
	if acc.sym != nil && (fc.usesSym(cl.lowerX, acc.sym) || fc.usesSym(cl.upperX, acc.sym)) {
		return cl, nil
	}

	rhs := stripParens(as.RHS)
	// Unwrap trivial pure helper calls: mult(a, b) with body return a*b.
	// The helper's float return rounds the product, which the kernel must
	// reproduce to stay bit-identical with the scalar backend.
	if call, ok := rhs.(*ast.CallExpr); ok {
		if a, b, ok := fc.trivialMulBody(call); ok {
			prodRound := false
			if sig := fc.prog.info.Funcs[call.Fun.Name]; sig != nil && sig.Ret.Kind == types.Float && sig.Ret.CSize == 4 {
				prodRound = true
			}
			return cl, fc.mulKernel(cl, acc, a, b, f32, prodRound)
		}
		return cl, nil
	}
	if bin, ok := rhs.(*ast.BinaryExpr); ok && bin.Op == token.MUL {
		return cl, fc.mulKernel(cl, acc, bin.X, bin.Y, f32, false)
	}
	// Plain sum: acc += X[k].
	if ld, ok := fc.matchLoad(rhs, cl.iterSym); ok && !ld.gather {
		return cl, fc.sumKernel(acc, ld, f32)
	}
	return cl, nil
}

// tryVectorize wraps reduceKernel for sequential execution (see
// seqKernelStmt for the bounds and post-loop iterator contract).
func (fc *funcCompiler) tryVectorize(x *ast.ForStmt) stmtFn {
	cl, kern := fc.reduceKernel(x)
	if kern == nil {
		return nil
	}
	return seqKernelStmt(cl, kern)
}

// accessor abstracts the reduction target: either a float frame slot or
// an iterator-invariant float memory cell (e.g. C[i][j] in a k-loop).
// sym is the accumulator's symbol for the frame-slot variant (nil for
// memory cells) — reduceKernel uses it to reject loops whose bounds
// read the accumulator the body mutates.
type accessor struct {
	get func(*env) float64
	set func(*env, float64)
	sym *sema.Symbol
}

// accumulator matches the reduction target of a vectorizable loop.
func (fc *funcCompiler) accumulator(lhs ast.Expr, iter *sema.Symbol) (accessor, bool, bool) {
	switch x := stripParens(lhs).(type) {
	case *ast.Ident:
		sym := fc.prog.info.Ref[x]
		if sym == nil || sym.Kind == sema.SymGlobal || sym.Type.Kind != types.Float {
			return accessor{}, false, false
		}
		sl := fc.slots[sym]
		if sl.kind != slotFloat {
			return accessor{}, false, false
		}
		idx := sl.idx
		return accessor{
			get: func(e *env) float64 { return e.F[idx] },
			set: func(e *env, v float64) { e.F[idx] = v },
			sym: sym,
		}, sym.Type.CSize == 4, true
	case *ast.IndexExpr:
		t := fc.prog.info.ExprType[lhs]
		if t == nil || t.Kind != types.Float {
			return accessor{}, false, false
		}
		if fc.usesSym(lhs, iter) {
			return accessor{}, false, false
		}
		addr := fc.addr(x)
		return accessor{
			get: func(e *env) float64 { return addr(e).LoadFloat() },
			set: func(e *env, v float64) { addr(e).StoreFloat(v) },
		}, t.CSize == 4, true
	}
	return accessor{}, false, false
}

// singleStmt unwraps a body that consists of exactly one statement.
func singleStmt(s ast.Stmt) ast.Stmt {
	if b, ok := s.(*ast.BlockStmt); ok {
		if len(b.List) != 1 {
			return nil
		}
		return b.List[0]
	}
	return s
}

// trivialMulBody recognizes calls f(a, b) to a pure function whose body
// is exactly "return p1 * p2;" and yields the argument expressions.
func (fc *funcCompiler) trivialMulBody(call *ast.CallExpr) (ast.Expr, ast.Expr, bool) {
	callee, ok := fc.prog.funcs[call.Fun.Name]
	if !ok || !callee.pure || len(call.Args) != 2 || len(callee.decl.Params) != 2 {
		return nil, nil, false
	}
	body := callee.decl.Body
	if body == nil || len(body.List) != 1 {
		return nil, nil, false
	}
	ret, ok := body.List[0].(*ast.ReturnStmt)
	if !ok || ret.X == nil {
		return nil, nil, false
	}
	bin, ok := stripParens(ret.X).(*ast.BinaryExpr)
	if !ok || bin.Op != token.MUL {
		return nil, nil, false
	}
	p1, ok1 := stripParens(bin.X).(*ast.Ident)
	p2, ok2 := stripParens(bin.Y).(*ast.Ident)
	if !ok1 || !ok2 {
		return nil, nil, false
	}
	n1, n2 := callee.decl.Params[0].Name, callee.decl.Params[1].Name
	switch {
	case p1.Name == n1 && p2.Name == n2:
		return call.Args[0], call.Args[1], true
	case p1.Name == n2 && p2.Name == n1:
		return call.Args[1], call.Args[0], true
	}
	return nil, nil, false
}

// load describes one strided or gathered array load inside the kernel.
type load struct {
	base ptrFn // base pointer (iterator-invariant)
	off  intFn // invariant offset added to the iterator
	// gather: the element index is read from an int array Z[off+k].
	gather  bool
	gBase   ptrFn // float array indexed indirectly
	isFloat bool
}

// matchLoad matches X[k], X[s+k], X[k+s], X[k-s] and the gather form
// Y[Z[s+k]] against iterator iter.
func (fc *funcCompiler) matchLoad(e ast.Expr, iter *sema.Symbol) (load, bool) {
	ix, ok := stripParens(e).(*ast.IndexExpr)
	if !ok {
		return load{}, false
	}
	baseT := fc.prog.info.ExprType[ix.X]
	if baseT == nil || !baseT.IsPtr() {
		return load{}, false
	}
	if fc.usesSym(ix.X, iter) {
		return load{}, false
	}
	// Direct: subscript linear in iter.
	if off, ok := fc.linearInIter(ix.Index, iter); ok {
		return load{
			base: fc.ptr(ix.X), off: off,
			isFloat: baseT.Elem.Kind == types.Float,
		}, true
	}
	// Gather: subscript is an int-array load Z[s+k].
	inner, ok := stripParens(ix.Index).(*ast.IndexExpr)
	if !ok {
		return load{}, false
	}
	innerT := fc.prog.info.ExprType[inner.X]
	if innerT == nil || !innerT.IsPtr() || innerT.Elem.Kind != types.Int {
		return load{}, false
	}
	if fc.usesSym(inner.X, iter) {
		return load{}, false
	}
	off, ok := fc.linearInIter(inner.Index, iter)
	if !ok {
		return load{}, false
	}
	return load{
		base: fc.ptr(inner.X), off: off,
		gather: true, gBase: fc.ptr(ix.X),
		isFloat: baseT.Elem.Kind == types.Float,
	}, true
}

// linearInIter matches iter, iter+inv, inv+iter, iter-inv, producing the
// invariant offset closure.
func (fc *funcCompiler) linearInIter(e ast.Expr, iter *sema.Symbol) (intFn, bool) {
	e = stripParens(e)
	if id, ok := e.(*ast.Ident); ok {
		if fc.prog.info.Ref[id] == iter {
			return func(*env) int64 { return 0 }, true
		}
		return nil, false
	}
	bin, ok := e.(*ast.BinaryExpr)
	if !ok {
		return nil, false
	}
	isIter := func(x ast.Expr) bool {
		id, ok := stripParens(x).(*ast.Ident)
		return ok && fc.prog.info.Ref[id] == iter
	}
	switch bin.Op {
	case token.ADD:
		if isIter(bin.X) && !fc.usesSym(bin.Y, iter) {
			return fc.integer(bin.Y), true
		}
		if isIter(bin.Y) && !fc.usesSym(bin.X, iter) {
			return fc.integer(bin.X), true
		}
	case token.SUB:
		if isIter(bin.X) && !fc.usesSym(bin.Y, iter) {
			f := fc.integer(bin.Y)
			return func(e *env) int64 { return -f(e) }, true
		}
	}
	return nil, false
}

// usesSym reports whether the expression references the symbol.
func (fc *funcCompiler) usesSym(e ast.Expr, sym *sema.Symbol) bool {
	found := false
	ast.Walk(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && fc.prog.info.Ref[id] == sym {
			found = true
		}
		return !found
	})
	return found
}

// prepF validates the stride-1 float cells the load touches over
// iterations [lo, hi] — one hoisted range check — and returns the raw
// slice (see kAccess.prep).
func (l load) prepF(e *env, lo, hi int64) []float64 {
	a := kAccess{base: l.base, off: l.off, stride: 1, float: true}
	return a.prep(e, lo, hi).f
}

// prepI is prepF for integer cells (the gather index array).
func (l load) prepI(e *env, lo, hi int64) []int64 {
	a := kAccess{base: l.base, off: l.off, stride: 1}
	return a.prep(e, lo, hi).i
}

// mulKernel builds the fused multiply-accumulate kernel for
// acc += A·B over iterations [lo, hi]. prodRound marks that the scalar
// path rounds the product through a float return before accumulating.
func (fc *funcCompiler) mulKernel(cl canonicalLoop, acc accessor, ax, bx ast.Expr, f32, prodRound bool) kernRun {
	la, ok := fc.matchLoad(ax, cl.iterSym)
	if !ok || !la.isFloat {
		return nil
	}
	lb, ok := fc.matchLoad(bx, cl.iterSym)
	if !ok || !lb.isFloat {
		return nil
	}
	switch {
	case !la.gather && !lb.gather:
		return func(e *env, lo, hi int64) {
			if hi < lo {
				return
			}
			n := int(hi - lo + 1)
			xs := la.prepF(e, lo, hi)
			ys := lb.prepF(e, lo, hi)
			accv := acc.get(e)
			switch {
			case f32 && prodRound:
				// acc = f32(acc + f32(x*y)) per iteration.
				for i := 0; i < n; i++ {
					accv = float64(float32(accv + float64(float32(xs[i]*ys[i]))))
				}
			case f32:
				// acc = f32(acc + x*y): the store rounds, the product
				// stays double (C expression semantics of the model).
				for i := 0; i < n; i++ {
					accv = float64(float32(accv + xs[i]*ys[i]))
				}
			default:
				for i := 0; i < n; i++ {
					accv += xs[i] * ys[i]
				}
			}
			acc.set(e, accv)
		}
	case !la.gather && lb.gather:
		return fc.gatherKernel(acc, la, lb, f32)
	case la.gather && !lb.gather:
		return fc.gatherKernel(acc, lb, la, f32)
	default:
		return nil
	}
}

// gatherKernel handles acc += X[s+k] * Y[Z[t+k]] (the ELL SpMV shape).
// The direct operand and the index array get hoisted range checks; the
// gathered target keeps per-element checks, its indices being
// data-dependent.
func (fc *funcCompiler) gatherKernel(acc accessor, direct, gather load, f32 bool) kernRun {
	return func(e *env, lo, hi int64) {
		if hi < lo {
			return
		}
		n := int(hi - lo + 1)
		xs := direct.prepF(e, lo, hi)
		zs := gather.prepI(e, lo, hi)
		py := gather.gBase(e)
		yf := py.Seg.F
		yo := py.Off
		accv := acc.get(e)
		if f32 {
			for i := 0; i < n; i++ {
				accv = float64(float32(accv + xs[i]*yf[yo+int(zs[i])]))
			}
		} else {
			for i := 0; i < n; i++ {
				accv += xs[i] * yf[yo+int(zs[i])]
			}
		}
		acc.set(e, accv)
	}
}

// sumKernel handles acc += X[s+k].
func (fc *funcCompiler) sumKernel(acc accessor, ld load, f32 bool) kernRun {
	if !ld.isFloat {
		return nil
	}
	return func(e *env, lo, hi int64) {
		if hi < lo {
			return
		}
		n := int(hi - lo + 1)
		xs := ld.prepF(e, lo, hi)
		accv := acc.get(e)
		if f32 {
			for i := 0; i < n; i++ {
				accv = float64(float32(accv + xs[i]))
			}
		} else {
			for i := 0; i < n; i++ {
				accv += xs[i]
			}
		}
		acc.set(e, accv)
	}
}
