// Package types defines the semantic types of the mini-C subset.
//
// The model is deliberately small: all integer base types collapse onto
// Int (with their C size kept for sizeof), float and double collapse onto
// Float (again with size kept), plus Void, Struct and Ptr. Pointer levels
// carry the pure and const qualifiers that the paper's compiler pass
// enforces.
package types

import (
	"fmt"
	"strings"

	"purec/internal/ast"
)

// Kind classifies a semantic type.
type Kind int

// Semantic type kinds.
const (
	Void Kind = iota
	Int
	Float
	Struct
	Ptr
)

// Type is a semantic type. Types are immutable after construction and may
// be shared freely.
type Type struct {
	Kind   Kind
	CSize  int    // sizeof in bytes
	CName  string // C spelling of the base ("int", "float", "double", ...)
	Elem   *Type  // pointee for Ptr
	Pure   bool   // pure qualifier on this pointer level (paper's extension)
	Const  bool
	Fields []Field // for Struct
	Tag    string  // struct tag
}

// Field is one struct member with its byte-less index layout: the memory
// model addresses fields by flattened cell index, so Offset counts cells.
type Field struct {
	Name   string
	Type   *Type
	Count  int // flattened cell count (arrays of scalars)
	Offset int // cell offset within the struct
}

// Predeclared singleton types.
var (
	VoidType     = &Type{Kind: Void, CName: "void"}
	IntType      = &Type{Kind: Int, CSize: 4, CName: "int"}
	CharType     = &Type{Kind: Int, CSize: 1, CName: "char"}
	ShortType    = &Type{Kind: Int, CSize: 2, CName: "short"}
	LongType     = &Type{Kind: Int, CSize: 8, CName: "long"}
	UnsignedType = &Type{Kind: Int, CSize: 4, CName: "unsigned"}
	FloatType    = &Type{Kind: Float, CSize: 4, CName: "float"}
	DoubleType   = &Type{Kind: Float, CSize: 8, CName: "double"}
)

// PointerTo returns a pointer type to elem with the given qualifiers.
func PointerTo(elem *Type, pure, cnst bool) *Type {
	return &Type{Kind: Ptr, CSize: 8, CName: "*", Elem: elem, Pure: pure, Const: cnst}
}

// IsArith reports whether t participates in arithmetic (Int or Float).
func (t *Type) IsArith() bool { return t != nil && (t.Kind == Int || t.Kind == Float) }

// IsPtr reports whether t is a pointer.
func (t *Type) IsPtr() bool { return t != nil && t.Kind == Ptr }

// IsVoid reports whether t is void.
func (t *Type) IsVoid() bool { return t == nil || t.Kind == Void }

// BaseElem follows pointer levels to the ultimate non-pointer element.
func (t *Type) BaseElem() *Type {
	for t != nil && t.Kind == Ptr {
		t = t.Elem
	}
	return t
}

// String renders the type in C-like syntax, innermost base first.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Ptr:
		var b strings.Builder
		b.WriteString(t.Elem.String())
		if t.Pure {
			b.WriteString(" pure")
		}
		if t.Const {
			b.WriteString(" const")
		}
		b.WriteString("*")
		return b.String()
	case Struct:
		return "struct " + t.Tag
	default:
		return t.CName
	}
}

// Equal reports structural equality ignoring qualifiers.
func Equal(a, b *Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Ptr:
		return Equal(a.Elem, b.Elem)
	case Struct:
		return a.Tag == b.Tag
	default:
		return a.CName == b.CName
	}
}

// AssignableLoose reports whether a value of type src may be assigned to
// dst under the subset's forgiving conversion rules (arithmetic types
// interconvert; pointers convert to pointers of equal shape or via void*).
func AssignableLoose(dst, src *Type) bool {
	if dst == nil || src == nil {
		return false
	}
	if dst.IsArith() && src.IsArith() {
		return true
	}
	if dst.Kind == Ptr && src.Kind == Ptr {
		if dst.Elem.IsVoid() || src.Elem.IsVoid() {
			return true
		}
		return Equal(dst, src)
	}
	if dst.Kind == Ptr && src.Kind == Int {
		return true // NULL-style literals
	}
	if dst.Kind == Struct && src.Kind == Struct {
		return dst.Tag == src.Tag
	}
	return false
}

// Resolver maps struct tags to their declared types.
type Resolver func(tag string) (*Type, error)

// FromAST converts a syntactic type expression into a semantic type.
// resolve may be nil when the type contains no struct references.
func FromAST(te *ast.TypeExpr, resolve Resolver) (*Type, error) {
	if te == nil {
		return VoidType, nil
	}
	var base *Type
	switch te.Base {
	case ast.Void:
		base = VoidType
	case ast.Char:
		base = CharType
	case ast.Short:
		base = ShortType
	case ast.Int:
		base = IntType
	case ast.Long:
		base = LongType
	case ast.Unsigned:
		base = UnsignedType
	case ast.Float:
		base = FloatType
	case ast.Double:
		base = DoubleType
	case ast.Struct:
		if resolve == nil {
			return nil, fmt.Errorf("struct %s used where no struct resolver is available", te.StructName)
		}
		st, err := resolve(te.StructName)
		if err != nil {
			return nil, err
		}
		base = st
	default:
		return nil, fmt.Errorf("unsupported base type %v", te.Base)
	}
	t := base
	for _, q := range te.Ptrs {
		t = PointerTo(t, q.Pure, q.Const)
	}
	return t, nil
}

// Promote returns the arithmetic result type of a binary operation on a
// and b: Float wins over Int; the wider size wins within a kind.
func Promote(a, b *Type) *Type {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.Kind == Float || b.Kind == Float {
		if a.Kind == Float && a.CSize == 8 || b.Kind == Float && b.CSize == 8 {
			return DoubleType
		}
		return FloatType
	}
	if a.CSize >= 8 || b.CSize >= 8 {
		return LongType
	}
	return IntType
}
