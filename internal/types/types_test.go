package types

import (
	"testing"

	"purec/internal/ast"
)

func TestString(t *testing.T) {
	cases := []struct {
		t    *Type
		want string
	}{
		{IntType, "int"},
		{FloatType, "float"},
		{DoubleType, "double"},
		{PointerTo(FloatType, false, false), "float*"},
		{PointerTo(FloatType, true, false), "float pure*"},
		{PointerTo(PointerTo(FloatType, false, false), false, false), "float**"},
		{PointerTo(IntType, false, true), "int const*"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("got %q want %q", got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Equal(PointerTo(IntType, true, false), PointerTo(IntType, false, true)) {
		t.Error("qualifiers must not affect Equal")
	}
	if Equal(PointerTo(IntType, false, false), IntType) {
		t.Error("ptr != scalar")
	}
	if Equal(FloatType, DoubleType) {
		t.Error("float != double")
	}
}

func TestAssignableLoose(t *testing.T) {
	ip := PointerTo(IntType, false, false)
	vp := PointerTo(VoidType, false, false)
	if !AssignableLoose(IntType, FloatType) || !AssignableLoose(FloatType, IntType) {
		t.Error("arithmetic interconversion")
	}
	if !AssignableLoose(ip, vp) || !AssignableLoose(vp, ip) {
		t.Error("void* interconversion")
	}
	if AssignableLoose(ip, PointerTo(FloatType, false, false)) {
		t.Error("int* from float* must fail")
	}
	if !AssignableLoose(ip, IntType) {
		t.Error("NULL-style 0 assignment")
	}
}

func TestPromote(t *testing.T) {
	if Promote(IntType, FloatType) != FloatType {
		t.Error("int+float=float")
	}
	if Promote(FloatType, DoubleType) != DoubleType {
		t.Error("float+double=double")
	}
	if Promote(IntType, LongType) != LongType {
		t.Error("int+long=long")
	}
	if Promote(CharType, ShortType) != IntType {
		t.Error("char+short=int")
	}
}

func TestFromAST(t *testing.T) {
	te := &ast.TypeExpr{Base: ast.Float, Ptrs: []ast.PtrQual{{Pure: true}}}
	ty, err := FromAST(te, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ty.IsPtr() || !ty.Pure || ty.Elem != FloatType {
		t.Fatalf("got %s", ty)
	}
	if _, err := FromAST(&ast.TypeExpr{Base: ast.Struct, StructName: "x"}, nil); err == nil {
		t.Error("struct without resolver must fail")
	}
}

func TestBaseElem(t *testing.T) {
	pp := PointerTo(PointerTo(FloatType, false, false), false, false)
	if pp.BaseElem() != FloatType {
		t.Errorf("base elem: %s", pp.BaseElem())
	}
	if IntType.BaseElem() != IntType {
		t.Error("scalar base elem is itself")
	}
}

func TestSizes(t *testing.T) {
	if IntType.CSize != 4 || LongType.CSize != 8 || FloatType.CSize != 4 ||
		DoubleType.CSize != 8 || CharType.CSize != 1 {
		t.Error("C sizes wrong")
	}
	if PointerTo(IntType, false, false).CSize != 8 {
		t.Error("pointer size must be 8")
	}
}
