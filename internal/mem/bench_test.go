package mem

import "testing"

// BenchmarkHeapLoadStore pins the per-access overhead the fused kernels
// eliminate: copying 4096 cells through per-element Pointer loads and
// stores (one slice bounds check per access) versus one checked range
// per operand followed by a raw slice walk. Future perf PRs diff
// against this in-repo baseline.
func BenchmarkHeapLoadStore(b *testing.B) {
	const n = 4096
	src := NewSegment(CellFloat, n, "src")
	dst := NewSegment(CellFloat, n, "dst")
	for i := range src.F {
		src.F[i] = float64(i)
	}
	b.Run("pointer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := Pointer{Seg: src}
			d := Pointer{Seg: dst}
			for k := int64(0); k < n; k++ {
				d.Add(k).StoreFloat(s.Add(k).LoadFloat())
			}
		}
	})
	b.Run("ranged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			xs, err := src.FloatRange(0, n)
			if err != nil {
				b.Fatal(err)
			}
			ys, err := dst.FloatRange(0, n)
			if err != nil {
				b.Fatal(err)
			}
			for k := 0; k < n; k++ {
				ys[k] = xs[k]
			}
		}
	})
}
