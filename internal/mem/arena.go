package mem

import "sync"

// Arena recycles segment backing storage across the runs of a pooled
// Process. The unit of reuse is the backing slice, never the Segment
// struct: releasing a segment poisons it exactly like free() does
// (slices dropped, freed flag set), so any stale Pointer from a
// previous run keeps trapping, while the storage itself is parked in
// per-size free lists and handed — zeroed — to the next allocation of
// the same shape. Programs re-run through a pool request the same
// segment sizes every time, which makes the exact-size lookup hit on
// effectively every warm allocation.
//
// An Arena belongs to one Process. Allocation and release both take the
// arena lock: mallocs and frees can be issued from inside parallel
// regions, and the lock is uncontended on the serial paths where
// allocation actually concentrates.
type Arena struct {
	mu     sync.Mutex
	ints   map[int][][]int64
	floats map[int][][]float64
	ptrs   map[int][][]Pointer

	reused   uint64
	fresh    uint64
	recycled uint64
}

// ArenaStats counts the arena's traffic: Reused slices served from a
// free list, Fresh slices that had to be allocated, and Recycled slices
// parked by Release.
type ArenaStats struct {
	Reused   uint64
	Fresh    uint64
	Recycled uint64
}

// NewArena creates an empty arena.
func NewArena() *Arena {
	return &Arena{
		ints:   map[int][][]int64{},
		floats: map[int][][]float64{},
		ptrs:   map[int][][]Pointer{},
	}
}

// Stats snapshots the traffic counters.
func (a *Arena) Stats() ArenaStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return ArenaStats{Reused: a.reused, Fresh: a.fresh, Recycled: a.recycled}
}

// takeInt pops a zeroed int slice of exactly n cells, or nil.
func (a *Arena) takeInt(n int) []int64 {
	if list := a.ints[n]; len(list) > 0 {
		buf := list[len(list)-1]
		a.ints[n] = list[:len(list)-1]
		clear(buf)
		return buf
	}
	return nil
}

func (a *Arena) takeFloat(n int) []float64 {
	if list := a.floats[n]; len(list) > 0 {
		buf := list[len(list)-1]
		a.floats[n] = list[:len(list)-1]
		clear(buf)
		return buf
	}
	return nil
}

func (a *Arena) takePtr(n int) []Pointer {
	if list := a.ptrs[n]; len(list) > 0 {
		buf := list[len(list)-1]
		a.ptrs[n] = list[:len(list)-1]
		clear(buf)
		return buf
	}
	return nil
}

// NewSegment allocates a segment of n cells of kind k, serving the
// backing storage from the free lists when a previous run released a
// same-size slice. The Segment struct itself is always fresh — struct
// identity is what poisoning hangs off, so structs are never reused.
func (a *Arena) NewSegment(k CellKind, n int, name string) *Segment {
	s := &Segment{Kind: k, Name: name}
	a.mu.Lock()
	defer a.mu.Unlock()
	hit := false
	switch k {
	case CellInt:
		if s.I = a.takeInt(n); s.I != nil {
			hit = true
		} else {
			s.I = make([]int64, n)
		}
	case CellFloat:
		if s.F = a.takeFloat(n); s.F != nil {
			hit = true
		} else {
			s.F = make([]float64, n)
		}
	case CellPtr:
		if s.P = a.takePtr(n); s.P != nil {
			hit = true
		} else {
			s.P = make([]Pointer, n)
		}
	case CellMixed:
		// Mixed (struct) segments reuse each backing slice independently;
		// count the allocation as reused only when all three hit.
		s.I, s.F, s.P = a.takeInt(n), a.takeFloat(n), a.takePtr(n)
		hit = s.I != nil && s.F != nil && s.P != nil
		if s.I == nil {
			s.I = make([]int64, n)
		}
		if s.F == nil {
			s.F = make([]float64, n)
		}
		if s.P == nil {
			s.P = make([]Pointer, n)
		}
	}
	if hit {
		a.reused++
	} else {
		a.fresh++
	}
	return s
}

// Release poisons s — backing slices dropped, freed flag set, exactly
// the observable state free() leaves behind — and parks the reclaimed
// storage for reuse. Segments already freed by the guest have nothing
// left to reclaim; their storage was dropped for good at free() time so
// stale-pointer traps stay truthful for the rest of the run. Sparse
// segments drop their block tables (blocks are identity-filled per run
// and too irregular to pool).
func (a *Arena) Release(s *Segment) {
	if s == nil || s.freed.Swap(true) {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if s.I != nil {
		a.ints[len(s.I)] = append(a.ints[len(s.I)], s.I)
		a.recycled++
	}
	if s.F != nil {
		a.floats[len(s.F)] = append(a.floats[len(s.F)], s.F)
		a.recycled++
	}
	if s.P != nil {
		// Pointer cells keep *Segment references alive; the slice was
		// cleared on reuse anyway, but clear it now so released segments
		// from the previous run become collectible immediately.
		clear(s.P)
		a.ptrs[len(s.P)] = append(a.ptrs[len(s.P)], s.P)
		a.recycled++
	}
	s.I, s.F, s.P = nil, nil, nil
	s.blockI, s.blockF = nil, nil
}
