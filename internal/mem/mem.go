// Package mem provides the runtime memory model for executing mini-C
// programs: typed segments addressed by (segment, offset) pointers with
// C-style pointer arithmetic in element units.
//
// Segments are the unit of allocation: every global array, local array,
// struct object and malloc block is one segment. Pointer values reference
// a segment plus an element offset, so out-of-bounds accesses surface as
// Go slice bounds panics, which the machine converts into runtime errors
// — a stricter behaviour than C that makes the test suite trustworthy.
//
// free() poisons the released segment by dropping its backing slices, so
// any later load or store through a stale pointer surfaces as a runtime
// error (use-after-free detection) instead of silently reading freed
// memory.
package mem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// CellKind is the element type of a segment.
type CellKind int

// Segment element kinds. Mixed segments (structs) carry all three
// backing slices so each field offset uses the slice its type requires.
const (
	CellInt CellKind = iota
	CellFloat
	CellPtr
	CellMixed
)

var cellKindNames = [...]string{"int", "float", "ptr", "mixed"}

// String returns the kind name.
func (k CellKind) String() string { return cellKindNames[k] }

// Segment is one allocation.
type Segment struct {
	Kind CellKind
	I    []int64
	F    []float64
	P    []Pointer
	// Name is a diagnostic label ("global A", "malloc@main").
	Name string
	// freed marks segments released by free(). It is atomic so
	// double-free detection also works for frees issued from inside
	// parallel regions.
	freed atomic.Bool

	// Sparse segments (NewSparseIntSegment/NewSparseFloatSegment) back
	// their cells with fixed-size blocks materialized on first store,
	// so a segment of which only k cells are ever written costs
	// O(k/SparseBlockCells) blocks of allocation and identity fill
	// instead of O(n). Loads of unmaterialized blocks return the
	// identity without materializing. Used for reduction private
	// copies, where most of a large accumulator is never touched.
	sparse  bool
	sparseN int
	identI  int64
	identF  float64
	blockI  [][]int64
	blockF  [][]float64
}

// SparseBlockCells is the block granularity of sparse segments: the
// unit of first-touch materialization, identity fill and dirty-block
// combining.
const SparseBlockCells = 256

// NewSparseIntSegment allocates a sparse integer segment of n cells
// whose untouched cells read as ident.
func NewSparseIntSegment(n int, ident int64, name string) *Segment {
	return &Segment{Kind: CellInt, Name: name, sparse: true, sparseN: n,
		identI: ident, blockI: make([][]int64, nblocks(n))}
}

// NewSparseFloatSegment allocates a sparse float segment of n cells
// whose untouched cells read as ident.
func NewSparseFloatSegment(n int, ident float64, name string) *Segment {
	return &Segment{Kind: CellFloat, Name: name, sparse: true, sparseN: n,
		identF: ident, blockF: make([][]float64, nblocks(n))}
}

func nblocks(n int) int { return (n + SparseBlockCells - 1) / SparseBlockCells }

// IsSparse reports whether the segment uses block-sparse backing.
func (s *Segment) IsSparse() bool { return s.sparse }

// sparseCheck traps out-of-bounds sparse accesses with the same
// observable behaviour as a dense segment's slice bounds check: a panic
// the machine converts into a runtime error ("purec: " prefix, see
// comp's trap recovery).
func (s *Segment) sparseCheck(off int) {
	if off < 0 || off >= s.sparseN {
		panic(fmt.Sprintf("purec: index %d out of bounds of %s (%d cells)", off, s.Name, s.sparseN))
	}
}

func (s *Segment) sparseLoadInt(off int) int64 {
	s.sparseCheck(off)
	if cells := s.blockI[off/SparseBlockCells]; cells != nil {
		return cells[off%SparseBlockCells]
	}
	return s.identI
}

func (s *Segment) sparseLoadFloat(off int) float64 {
	s.sparseCheck(off)
	if cells := s.blockF[off/SparseBlockCells]; cells != nil {
		return cells[off%SparseBlockCells]
	}
	return s.identF
}

func (s *Segment) sparseStoreInt(off int, v int64) {
	s.sparseCheck(off)
	cells := s.blockI[off/SparseBlockCells]
	if cells == nil {
		cells = s.materializeIntBlock(off / SparseBlockCells)
	}
	cells[off%SparseBlockCells] = v
}

func (s *Segment) sparseStoreFloat(off int, v float64) {
	s.sparseCheck(off)
	cells := s.blockF[off/SparseBlockCells]
	if cells == nil {
		cells = s.materializeFloatBlock(off / SparseBlockCells)
	}
	cells[off%SparseBlockCells] = v
}

// blockLen sizes block b so the final block covers only the segment
// tail: sparse segments of equal n always produce equal-length blocks
// at equal bases, which the dirty-block combine relies on.
func (s *Segment) blockLen(b int) int {
	n := SparseBlockCells
	if rem := s.sparseN - b*SparseBlockCells; rem < n {
		n = rem
	}
	return n
}

func (s *Segment) materializeIntBlock(b int) []int64 {
	cells := make([]int64, s.blockLen(b))
	if s.identI != 0 {
		for i := range cells {
			cells[i] = s.identI
		}
	}
	s.blockI[b] = cells
	return cells
}

func (s *Segment) materializeFloatBlock(b int) []float64 {
	cells := make([]float64, s.blockLen(b))
	if s.identF != 0 {
		for i := range cells {
			cells[i] = s.identF
		}
	}
	s.blockF[b] = cells
	return cells
}

// SparseIntCells returns the backing cells of the block starting at
// cell index base (a multiple of SparseBlockCells), materializing and
// identity-filling it if untouched. Combine passes use it to fold a
// dirty source block into the matching destination block.
func (s *Segment) SparseIntCells(base int) []int64 {
	b := base / SparseBlockCells
	if cells := s.blockI[b]; cells != nil {
		return cells
	}
	return s.materializeIntBlock(b)
}

// SparseFloatCells is SparseIntCells for float segments.
func (s *Segment) SparseFloatCells(base int) []float64 {
	b := base / SparseBlockCells
	if cells := s.blockF[b]; cells != nil {
		return cells
	}
	return s.materializeFloatBlock(b)
}

// DirtyIntBlocks visits the materialized blocks of a sparse integer
// segment in ascending base order: fn(base, cells) with cells the
// block's backing storage starting at cell index base. Untouched
// blocks — still holding the identity by construction — are skipped,
// which is what makes sparse combines O(touched), not O(len).
func (s *Segment) DirtyIntBlocks(fn func(base int, cells []int64)) {
	for b, cells := range s.blockI {
		if cells != nil {
			fn(b*SparseBlockCells, cells)
		}
	}
}

// DirtyFloatBlocks is DirtyIntBlocks for float segments.
func (s *Segment) DirtyFloatBlocks(fn func(base int, cells []float64)) {
	for b, cells := range s.blockF {
		if cells != nil {
			fn(b*SparseBlockCells, cells)
		}
	}
}

// NewSegment allocates a segment of n cells of kind k.
func NewSegment(k CellKind, n int, name string) *Segment {
	s := &Segment{Kind: k, Name: name}
	switch k {
	case CellInt:
		s.I = make([]int64, n)
	case CellFloat:
		s.F = make([]float64, n)
	case CellPtr:
		s.P = make([]Pointer, n)
	case CellMixed:
		s.I = make([]int64, n)
		s.F = make([]float64, n)
		s.P = make([]Pointer, n)
	}
	return s
}

// Freed reports whether the segment was released by free() (and its
// storage poisoned).
func (s *Segment) Freed() bool { return s.freed.Load() }

// Len returns the cell count.
func (s *Segment) Len() int {
	if s.sparse {
		return s.sparseN
	}
	switch s.Kind {
	case CellInt:
		return len(s.I)
	case CellFloat:
		return len(s.F)
	case CellPtr:
		return len(s.P)
	default:
		return len(s.F)
	}
}

// FloatRange validates the half-open cell range [lo, hi) against the
// segment once and hands back the raw float cells, so bulk kernels can
// walk the slice directly instead of paying one bounds check per
// element access. Freed segments, non-float segments and out-of-range
// bounds report an error (the fused-kernel analog of the per-access
// traps).
func (s *Segment) FloatRange(lo, hi int64) ([]float64, error) {
	if err := s.checkRange(lo, hi, len(s.F), "float"); err != nil {
		return nil, err
	}
	return s.F[lo:hi], nil
}

// IntRange validates the half-open cell range [lo, hi) once and hands
// back the raw integer cells; see FloatRange.
func (s *Segment) IntRange(lo, hi int64) ([]int64, error) {
	if err := s.checkRange(lo, hi, len(s.I), "int"); err != nil {
		return nil, err
	}
	return s.I[lo:hi], nil
}

// TrustedFloatRange hands back the raw float cells of [lo, hi) without
// the range validation: the caller holds a static bounds proof that the
// range fits (value-range analysis check elimination). Freed-segment
// detection is intentionally kept out of the proof's scope — callers
// that must trap on freed segments check Freed() separately — and the
// Go slice expression remains the memory-safety backstop: a wrong proof
// panics here instead of reading out of bounds.
func (s *Segment) TrustedFloatRange(lo, hi int64) []float64 {
	return s.F[lo:hi]
}

// TrustedIntRange hands back the raw integer cells of [lo, hi) without
// the range validation; see TrustedFloatRange.
func (s *Segment) TrustedIntRange(lo, hi int64) []int64 {
	return s.I[lo:hi]
}

// checkRange is the shared validation of the bulk-range accessors.
func (s *Segment) checkRange(lo, hi int64, n int, kind string) error {
	if s.Freed() {
		return fmt.Errorf("use of freed segment %s", s.Name)
	}
	if s.sparse {
		// Sparse segments have no contiguous backing; kernels that need a
		// raw range fall back to the per-cell accessors.
		return fmt.Errorf("bulk %s range over sparse segment %s", kind, s.Name)
	}
	if lo < 0 || hi < lo || hi > int64(n) {
		return fmt.Errorf("%s range [%d,%d) out of bounds of %s (%d cells)",
			kind, lo, hi, s.Name, n)
	}
	return nil
}

// Pointer is a C pointer value: a segment and an element offset.
// The zero Pointer is the NULL pointer.
type Pointer struct {
	Seg *Segment
	Off int
}

// IsNull reports whether p is the null pointer.
func (p Pointer) IsNull() bool { return p.Seg == nil }

// Add returns p advanced by n elements. The offset arithmetic is
// unchecked (two's-complement wraparound); compiled pointer arithmetic
// goes through AddChecked so overflowing offsets trap instead of
// silently referencing a wrapped cell.
func (p Pointer) Add(n int64) Pointer { return Pointer{Seg: p.Seg, Off: p.Off + int(n)} }

// AddChecked returns p advanced by n elements, reporting an error when
// the resulting offset overflows the int range (including platforms
// where int is narrower than 64 bits) instead of wrapping — the
// memory-layer analog of the runtime's unsigned-offset schedulers.
func (p Pointer) AddChecked(n int64) (Pointer, error) {
	off := int64(p.Off) + n
	if (n > 0 && off < int64(p.Off)) || (n < 0 && off > int64(p.Off)) ||
		int64(int(off)) != off {
		return Pointer{}, fmt.Errorf("pointer arithmetic overflow: %s + %d elements", p, n)
	}
	return Pointer{Seg: p.Seg, Off: int(off)}, nil
}

// Diff returns the element distance p−q; both must reference the same
// segment (use DiffChecked when that is not guaranteed — for pointers
// into different segments the plain offset delta is meaningless).
func (p Pointer) Diff(q Pointer) int64 { return int64(p.Off - q.Off) }

// DiffChecked returns the element distance p−q, reporting an error when
// the pointers reference different segments (undefined behaviour in C,
// a checked runtime error here).
func (p Pointer) DiffChecked(q Pointer) (int64, error) {
	if p.Seg != q.Seg {
		return 0, fmt.Errorf("pointer difference across segments (%s - %s)", p, q)
	}
	return int64(p.Off - q.Off), nil
}

// String renders the pointer for diagnostics.
func (p Pointer) String() string {
	if p.IsNull() {
		return "NULL"
	}
	return fmt.Sprintf("&%s[%d]", p.Seg.Name, p.Off)
}

// LoadInt reads an integer cell. The sparse branch covers reduction
// private copies; on dense segments it is a predicted-not-taken
// compare against a field already in cache.
func (p Pointer) LoadInt() int64 {
	if p.Seg.sparse {
		return p.Seg.sparseLoadInt(p.Off)
	}
	return p.Seg.I[p.Off]
}

// LoadFloat reads a float cell.
func (p Pointer) LoadFloat() float64 {
	if p.Seg.sparse {
		return p.Seg.sparseLoadFloat(p.Off)
	}
	return p.Seg.F[p.Off]
}

// LoadPtr reads a pointer cell.
func (p Pointer) LoadPtr() Pointer { return p.Seg.P[p.Off] }

// StoreInt writes an integer cell.
func (p Pointer) StoreInt(v int64) {
	if p.Seg.sparse {
		p.Seg.sparseStoreInt(p.Off, v)
		return
	}
	p.Seg.I[p.Off] = v
}

// StoreFloat writes a float cell.
func (p Pointer) StoreFloat(v float64) {
	if p.Seg.sparse {
		p.Seg.sparseStoreFloat(p.Off, v)
		return
	}
	p.Seg.F[p.Off] = v
}

// StorePtr writes a pointer cell.
func (p Pointer) StorePtr(v Pointer) { p.Seg.P[p.Off] = v }

// Heap tracks malloc/free allocations for leak/double-free diagnostics.
// The counters are atomic so allocations from inside parallel regions
// account safely; segment creation itself is lock-free (each malloc
// returns a fresh segment).
//
// A heap may additionally carry an Arena (SetArena): segments then
// allocate their backing storage through the arena's free lists and are
// tracked in a live set, so ReleaseLive can poison the whole previous
// run and recycle its storage in one sweep — the reset-don't-reallocate
// path of pooled Processes. Without an arena (the default) nothing is
// tracked and allocation behaves exactly as before.
type Heap struct {
	allocs atomic.Int64
	frees  atomic.Int64

	arena *Arena
	mu    sync.Mutex
	live  []*Segment
}

// SetArena attaches an arena to the heap. Call it before the first
// allocation of the first run; segments allocated earlier are not
// tracked and will be garbage collected rather than recycled.
func (h *Heap) SetArena(a *Arena) { h.arena = a }

// Arena returns the attached arena (nil without one).
func (h *Heap) Arena() *Arena { return h.arena }

// NewSegment allocates a non-heap segment (a global or local array)
// with the same storage-reuse and tracking treatment as Malloc, but
// without counting toward the malloc statistics. Without an arena it is
// exactly the package-level NewSegment.
func (h *Heap) NewSegment(k CellKind, n int, name string) *Segment {
	if h.arena == nil {
		return NewSegment(k, n, name)
	}
	s := h.arena.NewSegment(k, n, name)
	h.mu.Lock()
	h.live = append(h.live, s)
	h.mu.Unlock()
	return s
}

// ReleaseLive poisons every tracked segment of the finished run and
// recycles its backing storage into the arena. Stale pointers into the
// run keep trapping (the segments are in the freed state, slices
// dropped); the storage itself feeds the next run's allocations. A
// no-op without an arena.
func (h *Heap) ReleaseLive() {
	if h.arena == nil {
		return
	}
	h.mu.Lock()
	live := h.live
	h.live = nil
	h.mu.Unlock()
	for _, s := range live {
		h.arena.Release(s)
	}
}

// HeapStats is a snapshot of the allocation counters.
type HeapStats struct {
	Allocs int64
	Frees  int64
}

// Stats returns the current allocation counters.
func (h *Heap) Stats() HeapStats {
	return HeapStats{Allocs: h.allocs.Load(), Frees: h.frees.Load()}
}

// Reset zeroes the counters (a fresh run's heap).
func (h *Heap) Reset() {
	h.allocs.Store(0)
	h.frees.Store(0)
}

// Malloc allocates a segment of n cells of kind k.
func (h *Heap) Malloc(k CellKind, n int, name string) Pointer {
	h.allocs.Add(1)
	return Pointer{Seg: h.NewSegment(k, n, name)}
}

// Free releases the segment referenced by p. Double frees and frees of
// interior pointers report an error.
func (h *Heap) Free(p Pointer) error {
	if p.IsNull() {
		return nil // free(NULL) is a no-op in C
	}
	if p.Off != 0 {
		return fmt.Errorf("free of interior pointer %s", p)
	}
	if p.Seg.freed.Swap(true) {
		return fmt.Errorf("double free of %s", p.Seg.Name)
	}
	// Poison the segment: dropping the backing slices makes any later
	// access through a stale pointer fail the slice bounds check, which
	// the machine reports as a runtime error (use-after-free detection).
	// Sparse segments drop the block table for the same effect.
	p.Seg.I, p.Seg.F, p.Seg.P = nil, nil, nil
	p.Seg.blockI, p.Seg.blockF = nil, nil
	h.frees.Add(1)
	return nil
}
