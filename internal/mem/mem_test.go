package mem

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSegmentKinds(t *testing.T) {
	f := NewSegment(CellFloat, 8, "f")
	if f.Len() != 8 || f.F == nil || f.I != nil {
		t.Fatalf("float segment: %+v", f)
	}
	i := NewSegment(CellInt, 4, "i")
	if i.Len() != 4 || i.I == nil {
		t.Fatalf("int segment: %+v", i)
	}
	p := NewSegment(CellPtr, 2, "p")
	if p.Len() != 2 || p.P == nil {
		t.Fatalf("ptr segment: %+v", p)
	}
	m := NewSegment(CellMixed, 3, "m")
	if m.I == nil || m.F == nil || m.P == nil {
		t.Fatalf("mixed segment: %+v", m)
	}
}

func TestPointerArithmetic(t *testing.T) {
	s := NewSegment(CellFloat, 10, "s")
	p := Pointer{Seg: s}
	q := p.Add(3)
	q.StoreFloat(1.5)
	if s.F[3] != 1.5 {
		t.Fatal("store through offset pointer")
	}
	if q.LoadFloat() != 1.5 {
		t.Fatal("load")
	}
	if q.Diff(p) != 3 || p.Diff(q) != -3 {
		t.Fatal("diff")
	}
	r := q.Add(-1)
	if r.Off != 2 {
		t.Fatal("negative add")
	}
}

func TestNullPointer(t *testing.T) {
	var p Pointer
	if !p.IsNull() {
		t.Fatal("zero pointer must be null")
	}
	if p.String() != "NULL" {
		t.Fatalf("string: %s", p.String())
	}
}

func TestHeapMallocFree(t *testing.T) {
	var h Heap
	p := h.Malloc(CellInt, 4, "x")
	if p.IsNull() || p.Seg.Len() != 4 {
		t.Fatal("malloc")
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err == nil {
		t.Fatal("double free must error")
	}
	if s := h.Stats(); s.Allocs != 1 || s.Frees != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestFreeInteriorPointer(t *testing.T) {
	var h Heap
	p := h.Malloc(CellInt, 4, "x")
	if err := h.Free(p.Add(1)); err == nil {
		t.Fatal("interior free must error")
	}
}

func TestFreeNull(t *testing.T) {
	var h Heap
	if err := h.Free(Pointer{}); err != nil {
		t.Fatalf("free(NULL) must be a no-op: %v", err)
	}
}

func TestUseAfterFreePanics(t *testing.T) {
	var h Heap
	p := h.Malloc(CellInt, 4, "x")
	p.StoreInt(7)
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	for name, access := range map[string]func(){
		"load":  func() { p.LoadInt() },
		"store": func() { p.StoreInt(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s after free must panic", name)
				}
			}()
			access()
		}()
	}
}

func TestFreePoisonsAllCellKinds(t *testing.T) {
	var h Heap
	for _, k := range []CellKind{CellInt, CellFloat, CellPtr, CellMixed} {
		p := h.Malloc(k, 2, "x")
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
		if p.Seg.I != nil || p.Seg.F != nil || p.Seg.P != nil {
			t.Fatalf("%v segment not poisoned after free", k)
		}
	}
}

func TestDiffChecked(t *testing.T) {
	s := NewSegment(CellFloat, 10, "s")
	p := Pointer{Seg: s, Off: 7}
	q := Pointer{Seg: s, Off: 3}
	d, err := p.DiffChecked(q)
	if err != nil || d != 4 {
		t.Fatalf("same-segment diff = %d, %v", d, err)
	}
	other := Pointer{Seg: NewSegment(CellFloat, 10, "t"), Off: 3}
	if _, err := p.DiffChecked(other); err == nil {
		t.Fatal("cross-segment diff must error")
	} else if got := err.Error(); !strings.Contains(got, "pointer difference across segments") {
		t.Fatalf("unexpected error text: %s", got)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected bounds panic")
		}
	}()
	s := NewSegment(CellInt, 2, "s")
	Pointer{Seg: s, Off: 5}.LoadInt()
}

// Property: pointer arithmetic is associative with integer offsets.
func TestAddAssociativityProperty(t *testing.T) {
	s := NewSegment(CellFloat, 1, "s")
	f := func(a, b int16) bool {
		p := Pointer{Seg: s}
		return p.Add(int64(a)).Add(int64(b)) == p.Add(int64(a)+int64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
