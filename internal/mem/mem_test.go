package mem

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSegmentKinds(t *testing.T) {
	f := NewSegment(CellFloat, 8, "f")
	if f.Len() != 8 || f.F == nil || f.I != nil {
		t.Fatalf("float segment: %+v", f)
	}
	i := NewSegment(CellInt, 4, "i")
	if i.Len() != 4 || i.I == nil {
		t.Fatalf("int segment: %+v", i)
	}
	p := NewSegment(CellPtr, 2, "p")
	if p.Len() != 2 || p.P == nil {
		t.Fatalf("ptr segment: %+v", p)
	}
	m := NewSegment(CellMixed, 3, "m")
	if m.I == nil || m.F == nil || m.P == nil {
		t.Fatalf("mixed segment: %+v", m)
	}
}

func TestPointerArithmetic(t *testing.T) {
	s := NewSegment(CellFloat, 10, "s")
	p := Pointer{Seg: s}
	q := p.Add(3)
	q.StoreFloat(1.5)
	if s.F[3] != 1.5 {
		t.Fatal("store through offset pointer")
	}
	if q.LoadFloat() != 1.5 {
		t.Fatal("load")
	}
	if q.Diff(p) != 3 || p.Diff(q) != -3 {
		t.Fatal("diff")
	}
	r := q.Add(-1)
	if r.Off != 2 {
		t.Fatal("negative add")
	}
}

func TestNullPointer(t *testing.T) {
	var p Pointer
	if !p.IsNull() {
		t.Fatal("zero pointer must be null")
	}
	if p.String() != "NULL" {
		t.Fatalf("string: %s", p.String())
	}
}

func TestHeapMallocFree(t *testing.T) {
	var h Heap
	p := h.Malloc(CellInt, 4, "x")
	if p.IsNull() || p.Seg.Len() != 4 {
		t.Fatal("malloc")
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err == nil {
		t.Fatal("double free must error")
	}
	if s := h.Stats(); s.Allocs != 1 || s.Frees != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestFreeInteriorPointer(t *testing.T) {
	var h Heap
	p := h.Malloc(CellInt, 4, "x")
	if err := h.Free(p.Add(1)); err == nil {
		t.Fatal("interior free must error")
	}
}

func TestFreeNull(t *testing.T) {
	var h Heap
	if err := h.Free(Pointer{}); err != nil {
		t.Fatalf("free(NULL) must be a no-op: %v", err)
	}
}

func TestUseAfterFreePanics(t *testing.T) {
	var h Heap
	p := h.Malloc(CellInt, 4, "x")
	p.StoreInt(7)
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	for name, access := range map[string]func(){
		"load":  func() { p.LoadInt() },
		"store": func() { p.StoreInt(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s after free must panic", name)
				}
			}()
			access()
		}()
	}
}

func TestFreePoisonsAllCellKinds(t *testing.T) {
	var h Heap
	for _, k := range []CellKind{CellInt, CellFloat, CellPtr, CellMixed} {
		p := h.Malloc(k, 2, "x")
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
		if p.Seg.I != nil || p.Seg.F != nil || p.Seg.P != nil {
			t.Fatalf("%v segment not poisoned after free", k)
		}
	}
}

func TestDiffChecked(t *testing.T) {
	s := NewSegment(CellFloat, 10, "s")
	p := Pointer{Seg: s, Off: 7}
	q := Pointer{Seg: s, Off: 3}
	d, err := p.DiffChecked(q)
	if err != nil || d != 4 {
		t.Fatalf("same-segment diff = %d, %v", d, err)
	}
	other := Pointer{Seg: NewSegment(CellFloat, 10, "t"), Off: 3}
	if _, err := p.DiffChecked(other); err == nil {
		t.Fatal("cross-segment diff must error")
	} else if got := err.Error(); !strings.Contains(got, "pointer difference across segments") {
		t.Fatalf("unexpected error text: %s", got)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected bounds panic")
		}
	}()
	s := NewSegment(CellInt, 2, "s")
	Pointer{Seg: s, Off: 5}.LoadInt()
}

// Property: pointer arithmetic is associative with integer offsets.
func TestAddAssociativityProperty(t *testing.T) {
	s := NewSegment(CellFloat, 1, "s")
	f := func(a, b int16) bool {
		p := Pointer{Seg: s}
		return p.Add(int64(a)).Add(int64(b)) == p.Add(int64(a)+int64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangeAccessors(t *testing.T) {
	s := NewSegment(CellFloat, 8, "s")
	for i := range s.F {
		s.F[i] = float64(i)
	}
	xs, err := s.FloatRange(2, 6)
	if err != nil || len(xs) != 4 || xs[0] != 2 {
		t.Fatalf("FloatRange(2,6) = %v, %v", xs, err)
	}
	// The range is the raw backing storage, not a copy.
	xs[0] = 42
	if s.F[2] != 42 {
		t.Fatal("FloatRange must alias the segment cells")
	}
	if _, err := s.FloatRange(2, 9); err == nil {
		t.Fatal("over-length range must error")
	}
	if _, err := s.FloatRange(-1, 3); err == nil {
		t.Fatal("negative range must error")
	}
	if _, err := s.FloatRange(5, 4); err == nil {
		t.Fatal("inverted range must error")
	}
	if ys, err := s.FloatRange(3, 3); err != nil || len(ys) != 0 {
		t.Fatalf("empty range = %v, %v", ys, err)
	}
	if _, err := s.IntRange(0, 1); err == nil {
		t.Fatal("IntRange on a float segment must error")
	}
	i := NewSegment(CellInt, 4, "i")
	if vs, err := i.IntRange(0, 4); err != nil || len(vs) != 4 {
		t.Fatalf("IntRange(0,4) = %v, %v", vs, err)
	}
}

func TestRangeAccessorsFreedSegment(t *testing.T) {
	var h Heap
	p := h.Malloc(CellFloat, 8, "m")
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Seg.FloatRange(0, 1); err == nil {
		t.Fatal("range over a freed segment must error (use-after-free)")
	} else if !strings.Contains(err.Error(), "freed") {
		t.Fatalf("unexpected error text: %v", err)
	}
}

func TestAddChecked(t *testing.T) {
	s := NewSegment(CellInt, 4, "s")
	p := Pointer{Seg: s, Off: 2}
	q, err := p.AddChecked(1)
	if err != nil || q.Off != 3 {
		t.Fatalf("AddChecked(1) = %v, %v", q, err)
	}
	q, err = p.AddChecked(-2)
	if err != nil || q.Off != 0 {
		t.Fatalf("AddChecked(-2) = %v, %v", q, err)
	}
	// Offset overflow past the int64 range must trap, not wrap — the
	// unchecked Add would silently produce a negative offset here.
	if _, err := (Pointer{Seg: s, Off: 1}).AddChecked(math.MaxInt64); err == nil {
		t.Fatal("positive overflow must error")
	}
	if _, err := (Pointer{Seg: s, Off: -2}).AddChecked(math.MinInt64); err == nil {
		t.Fatal("negative overflow must error")
	}
}
