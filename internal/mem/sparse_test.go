package mem

import (
	"strings"
	"testing"
)

func TestSparseLoadReturnsIdentityWithoutMaterializing(t *testing.T) {
	s := NewSparseIntSegment(1000, 7, "h")
	if !s.IsSparse() || s.Len() != 1000 {
		t.Fatalf("sparse=%v len=%d", s.IsSparse(), s.Len())
	}
	p := Pointer{Seg: s}
	for _, off := range []int64{0, 255, 256, 999} {
		if got := p.Add(off).LoadInt(); got != 7 {
			t.Fatalf("untouched cell %d = %d, want identity 7", off, got)
		}
	}
	dirty := 0
	s.DirtyIntBlocks(func(int, []int64) { dirty++ })
	if dirty != 0 {
		t.Fatalf("loads materialized %d blocks, want 0", dirty)
	}
}

func TestSparseFirstTouchIdentityFill(t *testing.T) {
	s := NewSparseIntSegment(1000, 3, "h")
	p := Pointer{Seg: s, Off: 300}
	p.StoreInt(42)
	if got := p.LoadInt(); got != 42 {
		t.Fatalf("stored cell = %d, want 42", got)
	}
	// Neighbours in the same block read the identity (filled at
	// materialization), neighbours outside it stay unmaterialized.
	if got := (Pointer{Seg: s, Off: 301}).LoadInt(); got != 3 {
		t.Fatalf("same-block neighbour = %d, want identity 3", got)
	}
	var bases []int
	s.DirtyIntBlocks(func(base int, cells []int64) {
		bases = append(bases, base)
		if len(cells) != SparseBlockCells {
			t.Fatalf("block %d has %d cells, want %d", base, len(cells), SparseBlockCells)
		}
	})
	if len(bases) != 1 || bases[0] != 256 {
		t.Fatalf("dirty blocks %v, want [256]", bases)
	}
}

func TestSparseFloatIdentityAndTailBlock(t *testing.T) {
	// 300 cells: block 0 holds 256, the tail block 44.
	s := NewSparseFloatSegment(300, -1.5, "f")
	p := Pointer{Seg: s, Off: 299}
	p.StoreFloat(2.25)
	if got := p.LoadFloat(); got != 2.25 {
		t.Fatalf("stored cell = %g", got)
	}
	if got := (Pointer{Seg: s, Off: 260}).LoadFloat(); got != -1.5 {
		t.Fatalf("tail-block neighbour = %g, want identity -1.5", got)
	}
	s.DirtyFloatBlocks(func(base int, cells []float64) {
		if base != 256 || len(cells) != 44 {
			t.Fatalf("tail block base=%d len=%d, want 256/44", base, len(cells))
		}
	})
}

func TestSparseDirtyBlocksAscending(t *testing.T) {
	s := NewSparseIntSegment(4*SparseBlockCells, 0, "h")
	// Touch blocks out of order; iteration must come back ascending.
	for _, off := range []int{900, 10, 600} {
		(Pointer{Seg: s, Off: off}).StoreInt(1)
	}
	var bases []int
	s.DirtyIntBlocks(func(base int, _ []int64) { bases = append(bases, base) })
	want := []int{0, 512, 768}
	if len(bases) != len(want) {
		t.Fatalf("dirty bases %v, want %v", bases, want)
	}
	for i := range want {
		if bases[i] != want[i] {
			t.Fatalf("dirty bases %v, want %v", bases, want)
		}
	}
}

func TestSparseCellsMaterializeOnDemand(t *testing.T) {
	s := NewSparseIntSegment(600, 9, "h")
	cells := s.SparseIntCells(256)
	if len(cells) != SparseBlockCells {
		t.Fatalf("cells len %d", len(cells))
	}
	for i, v := range cells {
		if v != 9 {
			t.Fatalf("cell %d = %d, want identity 9", i, v)
		}
	}
	cells[0] = 11
	if got := (Pointer{Seg: s, Off: 256}).LoadInt(); got != 11 {
		t.Fatalf("SparseIntCells is not the live block: %d", got)
	}
	// A second call returns the same block, not a fresh fill.
	if again := s.SparseIntCells(256); &again[0] != &cells[0] {
		t.Fatal("SparseIntCells re-materialized an existing block")
	}
}

func TestSparseOutOfBoundsPanics(t *testing.T) {
	s := NewSparseIntSegment(100, 0, "h")
	for _, off := range []int{-1, 100, 1 << 40} {
		func() {
			defer func() {
				r := recover()
				if r == nil || !strings.Contains(r.(string), "out of bounds") {
					t.Fatalf("off %d: want bounds panic, got %v", off, r)
				}
			}()
			(Pointer{Seg: s, Off: off}).LoadInt()
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("store off %d: want bounds panic", off)
				}
			}()
			(Pointer{Seg: s, Off: off}).StoreInt(1)
		}()
	}
}

func TestSparseBulkRangeRejected(t *testing.T) {
	// Bulk range views would bypass the block indirection; sparse
	// segments refuse them so fused kernels fall back to the accessor
	// path.
	s := NewSparseIntSegment(100, 0, "h")
	if _, err := s.IntRange(0, 99); err == nil {
		t.Fatal("IntRange over a sparse segment must error")
	}
	f := NewSparseFloatSegment(100, 0, "f")
	if _, err := f.FloatRange(0, 99); err == nil {
		t.Fatal("FloatRange over a sparse segment must error")
	}
}
