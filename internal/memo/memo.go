// Package memo provides a sharded, concurrency-safe memoization table
// for pure-call results.
//
// The paper's purity verification (internal/purity) proves that
// pure-marked functions are referentially transparent; for the subset
// whose signature is all-scalar (no pointer parameters, scalar return)
// and whose body reads no global state, a call is a pure mathematical
// function of its argument values — so its result can be cached and
// shared across every concurrent Process of a Program, the same way the
// core.ProgramCache shares compiled Programs across builds.
//
// The table is lock-striped: keys hash onto a power-of-two number of
// shards, each protected by its own mutex, so concurrent Processes
// hitting different keys do not serialize. Within a shard, eviction is
// LRU via an intrusive move-to-front list over the map entries.
package memo

import (
	"sync"
	"sync/atomic"
)

// MaxArgs is the largest scalar argument count a call key can carry;
// calls of memoizable functions with more parameters are bypassed.
const MaxArgs = 4

// Key identifies one pure call: the function name plus the bit patterns
// of its scalar arguments (int64 values directly, float64 values via
// math.Float64bits). Keys of calls with fewer than MaxArgs arguments
// zero-fill the tail; N disambiguates a zero argument from no argument.
type Key struct {
	Fn   string
	N    uint8
	Args [MaxArgs]uint64
}

// FnSeed precomputes the shard-hash prefix of a function name (FNV-1a).
// Call sites that build many keys for one function — the compiled memo
// wrappers — compute it once and pass it to GetSeeded/PutSeeded so the
// name is not rehashed on every call.
func FnSeed(fn string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(fn); i++ {
		h ^= uint64(fn[i])
		h *= 1099511628211
	}
	return h
}

// hashFrom mixes the argument words into the precomputed name seed and
// finalizes (xorshift-multiply) so low bits depend on all input bits.
func (k Key) hashFrom(seed uint64) uint64 {
	h := seed
	for i := uint8(0); i < k.N && i < MaxArgs; i++ {
		h ^= k.Args[i]
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// hash mixes the key into a shard selector.
func (k Key) hash() uint64 { return k.hashFrom(FnSeed(k.Fn)) }

// Stats is a snapshot of the table counters.
type Stats struct {
	// Hits counts calls served from the table.
	Hits uint64
	// Misses counts calls that executed and stored their result.
	Misses uint64
	// Bypassed counts pure calls that could not be memoized (pointer
	// arguments, too many parameters, or a body reading global state).
	Bypassed uint64
	// Evicted counts entries dropped by capacity pressure.
	Evicted uint64
	// Entries is the current number of cached results.
	Entries int
}

// HitRate returns the fraction of lookups served from the table.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one cached result inside a shard, linked into the shard's
// LRU list (front = most recently used).
type entry struct {
	key        Key
	val        uint64
	prev, next *entry
}

// shard is one lock stripe of the table.
type shard struct {
	mu   sync.Mutex
	m    map[Key]*entry
	head *entry // most recently used
	tail *entry // least recently used
	max  int
}

// Table is a sharded memoization table mapping pure-call keys to scalar
// result bit patterns. All methods are safe for concurrent use; the
// zero value is not usable — construct with New.
type Table struct {
	shards []shard
	mask   uint64

	hits     atomic.Uint64
	misses   atomic.Uint64
	bypassed atomic.Uint64
	evicted  atomic.Uint64
}

// DefaultCapacity is the table-wide entry bound used when New is given
// a non-positive capacity.
const DefaultCapacity = 1 << 16

// DefaultShards is the stripe count used when New is given a
// non-positive shard count.
const DefaultShards = 16

// New creates a table holding at most capacity entries across shards
// lock stripes. The shard count is rounded up to a power of two;
// non-positive arguments select the defaults. Each shard holds at most
// ceil(capacity/shards) entries, so the effective capacity is within
// one entry per shard of the request.
func New(capacity, shards int) *Table {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	t := &Table{shards: make([]shard, n), mask: uint64(n - 1)}
	for i := range t.shards {
		t.shards[i].m = make(map[Key]*entry)
		t.shards[i].max = perShard
	}
	return t
}

// Get returns the cached result bits for k. A found entry is promoted
// to most-recently-used in its shard.
func (t *Table) Get(k Key) (uint64, bool) { return t.GetSeeded(FnSeed(k.Fn), k) }

// GetSeeded is Get with the FnSeed(k.Fn) prefix precomputed.
func (t *Table) GetSeeded(seed uint64, k Key) (uint64, bool) {
	s := &t.shards[k.hashFrom(seed)&t.mask]
	s.mu.Lock()
	e, ok := s.m[k]
	if !ok {
		s.mu.Unlock()
		t.misses.Add(1)
		return 0, false
	}
	s.moveToFront(e)
	v := e.val
	s.mu.Unlock()
	t.hits.Add(1)
	return v, true
}

// Put stores the result bits for k, evicting the shard's LRU entry when
// the shard is full. Storing an existing key refreshes its value and
// recency (pure results are deterministic, so the value is identical —
// concurrent double-computes of one key are benign).
func (t *Table) Put(k Key, v uint64) { t.PutSeeded(FnSeed(k.Fn), k, v) }

// PutSeeded is Put with the FnSeed(k.Fn) prefix precomputed.
func (t *Table) PutSeeded(seed uint64, k Key, v uint64) {
	s := &t.shards[k.hashFrom(seed)&t.mask]
	s.mu.Lock()
	if e, ok := s.m[k]; ok {
		e.val = v
		s.moveToFront(e)
		s.mu.Unlock()
		return
	}
	if len(s.m) >= s.max {
		if lru := s.tail; lru != nil {
			s.unlink(lru)
			delete(s.m, lru.key)
			t.evicted.Add(1)
		}
	}
	e := &entry{key: k, val: v}
	s.m[k] = e
	s.pushFront(e)
	s.mu.Unlock()
}

// Bypass records a pure call that executed without consulting the table
// (not memoizable). It only feeds the stats.
func (t *Table) Bypass() { t.bypassed.Add(1) }

// Len returns the current number of cached results.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the counters.
func (t *Table) Stats() Stats {
	return Stats{
		Hits:     t.hits.Load(),
		Misses:   t.misses.Load(),
		Bypassed: t.bypassed.Load(),
		Evicted:  t.evicted.Load(),
		Entries:  t.Len(),
	}
}

// Reset drops every entry and zeroes the counters.
func (t *Table) Reset() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.m = make(map[Key]*entry)
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
	t.hits.Store(0)
	t.misses.Store(0)
	t.bypassed.Store(0)
	t.evicted.Store(0)
}

// ----------------------------------------------------------------------------
// intrusive LRU list (shard mutex held)

func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
