package memo

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func key(fn string, args ...uint64) Key {
	k := Key{Fn: fn, N: uint8(len(args))}
	copy(k.Args[:], args)
	return k
}

func TestGetPut(t *testing.T) {
	tab := New(64, 4)
	k := key("f", 1, 2)
	if _, ok := tab.Get(k); ok {
		t.Fatal("empty table reported a hit")
	}
	tab.Put(k, 42)
	v, ok := tab.Get(k)
	if !ok || v != 42 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	s := tab.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestKeyDistinguishesArity(t *testing.T) {
	tab := New(64, 1)
	tab.Put(key("f", 0), 1)
	if _, ok := tab.Get(key("f")); ok {
		t.Fatal("f() and f(0) must have distinct keys")
	}
	if _, ok := tab.Get(key("g", 0)); ok {
		t.Fatal("f(0) and g(0) must have distinct keys")
	}
}

func TestFloatBitsRoundTrip(t *testing.T) {
	tab := New(64, 2)
	in := math.Float64bits(3.14159)
	tab.Put(key("sinish", math.Float64bits(1.5)), in)
	v, ok := tab.Get(key("sinish", math.Float64bits(1.5)))
	if !ok || math.Float64frombits(v) != 3.14159 {
		t.Fatalf("float round trip: %v %v", v, ok)
	}
}

func TestCapacityEviction(t *testing.T) {
	tab := New(8, 1) // single shard, cap 8
	for i := 0; i < 20; i++ {
		tab.Put(key("f", uint64(i)), uint64(i))
	}
	if n := tab.Len(); n != 8 {
		t.Fatalf("table holds %d entries, want 8", n)
	}
	if s := tab.Stats(); s.Evicted != 12 {
		t.Fatalf("evicted = %d, want 12", s.Evicted)
	}
	// The most recent keys survive.
	for i := 12; i < 20; i++ {
		if _, ok := tab.Get(key("f", uint64(i))); !ok {
			t.Fatalf("recent key %d was evicted", i)
		}
	}
}

func TestLRUPromotionOnHit(t *testing.T) {
	tab := New(2, 1)
	tab.Put(key("f", 1), 1)
	tab.Put(key("f", 2), 2)
	// Touch key 1 so key 2 becomes the LRU victim.
	if _, ok := tab.Get(key("f", 1)); !ok {
		t.Fatal("key 1 missing")
	}
	tab.Put(key("f", 3), 3)
	if _, ok := tab.Get(key("f", 1)); !ok {
		t.Fatal("hit-promoted key was evicted")
	}
	if _, ok := tab.Get(key("f", 2)); ok {
		t.Fatal("LRU key survived eviction")
	}
}

func TestShardRoundingAndDefaults(t *testing.T) {
	tab := New(0, 0)
	if len(tab.shards) != DefaultShards {
		t.Fatalf("default shards = %d", len(tab.shards))
	}
	tab = New(100, 3) // rounds to 4 shards
	if len(tab.shards) != 4 {
		t.Fatalf("shards = %d, want 4", len(tab.shards))
	}
	if tab.shards[0].max != 25 {
		t.Fatalf("per-shard cap = %d, want 25", tab.shards[0].max)
	}
}

func TestBypassAndHitRate(t *testing.T) {
	tab := New(16, 1)
	tab.Put(key("f", 1), 1)
	tab.Get(key("f", 1)) // hit
	tab.Get(key("f", 2)) // miss
	tab.Bypass()
	s := tab.Stats()
	if s.Bypassed != 1 {
		t.Fatalf("bypassed = %d", s.Bypassed)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", s.HitRate())
	}
}

// TestSeededEquivalence: the precomputed-seed fast path must select
// the same shard and entry as the plain path.
func TestSeededEquivalence(t *testing.T) {
	tab := New(64, 8)
	k := key("retrieve", 3, math.Float64bits(1.5))
	seed := FnSeed("retrieve")
	tab.PutSeeded(seed, k, 99)
	if v, ok := tab.Get(k); !ok || v != 99 {
		t.Fatalf("plain Get after seeded Put: %d, %v", v, ok)
	}
	tab.Put(key("retrieve", 4), 7)
	if v, ok := tab.GetSeeded(seed, key("retrieve", 4)); !ok || v != 7 {
		t.Fatalf("seeded Get after plain Put: %d, %v", v, ok)
	}
	if k.hash() != k.hashFrom(seed) {
		t.Fatal("hash and hashFrom(FnSeed) disagree")
	}
}

func TestReset(t *testing.T) {
	tab := New(16, 2)
	tab.Put(key("f", 1), 1)
	tab.Get(key("f", 1))
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatal("reset left entries")
	}
	if s := tab.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("reset left counters: %+v", s)
	}
}

// TestConcurrentAccess hammers one table from many goroutines with
// overlapping key sets; run under -race this is the lock-striping
// correctness check.
func TestConcurrentAccess(t *testing.T) {
	tab := New(256, 8)
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := key(fmt.Sprintf("f%d", i%7), uint64(i%29))
				if v, ok := tab.Get(k); ok {
					if v != uint64(i%29)*3 {
						t.Errorf("worker %d: corrupt value %d for %v", w, v, k)
						return
					}
				} else {
					tab.Put(k, uint64(i%29)*3)
				}
			}
		}(w)
	}
	wg.Wait()
	s := tab.Stats()
	if s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("degenerate stats: %+v", s)
	}
}
