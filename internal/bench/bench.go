// Package bench regenerates the paper's evaluation (Figs. 3–11): it
// builds every program variant through the compiler chain, sweeps the
// worker count over the paper's core axis (1,2,4,...,64), measures
// repeated runs and renders time and speedup tables shaped like the
// paper's figures.
//
// Absolute numbers differ from the paper (the backend is an execution
// model, not a native compiler on a 64-core Opteron); the comparisons the
// figures make — who wins, how curves scale, where they cross — are the
// reproduction target (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"purec/internal/comp"
	"purec/internal/core"
	"purec/internal/rt"
)

// Params hold the workload sizes and measurement setup.
type Params struct {
	MatmulN   int
	HeatN     int
	HeatSteps int
	SatPix    int
	SatBands  int
	SatIters  int
	LamaRows  int
	LamaNNZ   int
	// MemoClasses is the distinct-argument count of the memoization
	// scenario (quantized satellite retrieval): SatPix pixels collapse
	// onto MemoClasses pure-call keys.
	MemoClasses int
	// ReduceN is the iteration/vector length of the reduction scenario
	// (Fig. R1: quickstart sum and extracted dot kernels).
	ReduceN int
	// KernN and KernReps size the Fig K1 element-wise kernels (axpy,
	// copy, 1-D stencil): vector length and sweep count per run.
	KernN    int
	KernReps int
	// HistN is the element count of the array-reduction scenario
	// (Fig A1: bin-count over a data array) and HistBins the bin
	// counts it sweeps — the private-copy allocation and the
	// worker-ordered combine both scale with the bin count, so the
	// sweep exposes where combine overhead eats the parallel speedup.
	HistN    int
	HistBins []int
	// A2N, A2Bins and A2Touched size the Fig A2 sparse-touch
	// histogram: A2N elements land in an A2Touched-bin window of an
	// A2Bins-cell accumulator, so dense privates pay O(A2Bins) per
	// worker while block-sparse privates pay O(A2Touched).
	A2N       int
	A2Bins    int
	A2Touched int
	// RealCores is the core axis of the real-team (non-simulated)
	// scaling points: actual goroutine teams timed in wall clock, so
	// the list stays small and within a laptop's physical cores.
	RealCores []int
	// BCEN and BCEReps size the launch-visibility rows of Fig B1: a
	// tiny vector swept many times, so the per-launch range checks the
	// bounds proofs elide are a measurable share of each run.
	BCEN    int
	BCEReps int
	// GatherM is the gathered-table length of the Fig B1 gather
	// y[i] = x[idx[i]] (the output length and sweep count reuse
	// KernN/KernReps).
	GatherM int
	// S1Runs, S1Clients, S1Sizes and S1Reps shape the Fig S1 serving
	// scenario: S1Runs executions per measured point, spread over each
	// client count of S1Clients, of the axpy kernel at each vector
	// length of S1Sizes (S1Reps sweeps per run). Wall-clock real
	// concurrency, not simulated time.
	S1Runs    int
	S1Clients []int
	S1Sizes   []int
	S1Reps    int
	Cores     []int
	Reps      int
}

// Default returns laptop-scaled parameters preserving the paper's
// workload shapes (the paper used N=4096 matrices, a 4096² plate with
// 200 steps, a MODIS granule and the 217k-row pwtk matrix on a 64-core
// node).
func Default() Params {
	return Params{
		MatmulN:     160,
		HeatN:       160,
		HeatSteps:   30,
		SatPix:      2000,
		SatBands:    12,
		SatIters:    48,
		LamaRows:    12000,
		LamaNNZ:     16,
		MemoClasses: 24,
		ReduceN:     400000,
		KernN:       65536,
		KernReps:    50,
		HistN:       400000,
		HistBins:    []int{16, 256, 4096, 65536},
		A2N:         400000,
		A2Bins:      65536,
		A2Touched:   256,
		RealCores:   []int{1, 2, 4},
		BCEN:        96,
		BCEReps:     20000,
		GatherM:     2048,
		S1Runs:      60,
		S1Clients:   []int{1, 2, 4, 8},
		S1Sizes:     []int{1024, 8192, 65536},
		S1Reps:      2,
		Cores:       []int{1, 2, 4, 8, 16, 32, 64},
		Reps:        3,
	}
}

// Quick returns tiny parameters for tests.
func Quick() Params {
	return Params{
		MatmulN:     24,
		HeatN:       24,
		HeatSteps:   4,
		SatPix:      80,
		SatBands:    6,
		SatIters:    12,
		LamaRows:    200,
		LamaNNZ:     6,
		MemoClasses: 8,
		ReduceN:     20000,
		KernN:       2048,
		KernReps:    3,
		HistN:       20000,
		HistBins:    []int{8, 64},
		A2N:         20000,
		A2Bins:      4096,
		A2Touched:   64,
		RealCores:   []int{1, 2},
		BCEN:        32,
		BCEReps:     200,
		GatherM:     256,
		S1Runs:      120,
		S1Clients:   []int{1, 2},
		S1Sizes:     []int{256, 2048, 8192},
		S1Reps:      2,
		Cores:       []int{1, 2, 4},
		Reps:        1,
	}
}

// Series is one curve of a figure: seconds per core count. Real marks
// curves measured on real goroutine teams in wall clock rather than on
// simulated teams; the JSON export carries the distinction through.
type Series struct {
	Name  string
	Times map[int]float64
	Real  bool
}

// Figure is one regenerated paper figure.
type Figure struct {
	ID       string
	Title    string
	Kind     string // "time" or "speedup"
	Cores    []int
	Series   []Series
	Baseline float64 // sequential reference seconds (0 if none)
	BaseName string
	Notes    []string
}

// Render formats the figure as an aligned text table.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	if f.Baseline > 0 {
		fmt.Fprintf(&b, "sequential baseline (%s): %.4f s\n", f.BaseName, f.Baseline)
	}
	unit := "seconds"
	if f.Kind == "speedup" {
		unit = "speedup vs sequential"
	}
	fmt.Fprintf(&b, "[%s]\n", unit)
	// header
	fmt.Fprintf(&b, "%-26s", "cores")
	for _, c := range f.Cores {
		fmt.Fprintf(&b, "%10d", c)
	}
	b.WriteByte('\n')
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-26s", s.Name)
		for _, c := range f.Cores {
			v, ok := s.Times[c]
			if !ok {
				fmt.Fprintf(&b, "%10s", "-")
				continue
			}
			if f.Kind == "speedup" {
				fmt.Fprintf(&b, "%10.2f", v)
			} else {
				fmt.Fprintf(&b, "%10.4f", v)
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Speedup derives a speedup figure from a time figure.
func (f *Figure) Speedup(id, title string) *Figure {
	out := &Figure{ID: id, Title: title, Kind: "speedup", Cores: f.Cores,
		Baseline: f.Baseline, BaseName: f.BaseName}
	for _, s := range f.Series {
		ns := Series{Name: s.Name, Times: map[int]float64{}}
		for c, t := range s.Times {
			if t > 0 && f.Baseline > 0 {
				ns.Times[c] = f.Baseline / t
			}
		}
		out.Series = append(out.Series, ns)
	}
	return out
}

// variant describes one measured configuration.
type variant struct {
	name string
	src  string
	defs map[string]string
	cfg  core.Config
	// init and entry split the program into an untimed setup call and a
	// timed compute call (the paper times only the kernel for the
	// satellite and LAMA codes). Empty means: time main() entirely.
	init  string
	entry string
	// native, when set, replaces the machine run (the MKL comparator).
	native func(team *rt.Team)
	// real runs on real goroutine teams (rt.NewTeam) timed in wall
	// clock instead of simulated teams; sim accounting is zero there,
	// so timeIt's adjustment is a no-op and the raw wall time reports.
	real bool
}

// measure builds the variant once — through the content-addressed
// program cache, so repeated figure collections share the compile — and
// times it across core counts on simulated teams: chunks execute
// sequentially and deterministically; the reported time is wall time
// with each parallel region's real duration replaced by its simulated
// parallel duration (DESIGN.md, substitution for the paper's 64-core
// node). Each core count runs in its own Process of the shared Program.
// Variants with real set run on real goroutine teams instead: the sim
// adjustment is zero there, so the raw wall time reports.
func measure(v variant, cores []int, reps int) (Series, error) {
	s := Series{Name: v.name, Times: map[int]float64{}, Real: v.real}
	newTeam := rt.NewSimTeam
	if v.real {
		newTeam = rt.NewTeam
	}
	if v.native != nil {
		for _, c := range cores {
			team := newTeam(c)
			secs, err := timeIt(reps, team, func() error {
				v.native(team)
				return nil
			})
			if err != nil {
				return s, err
			}
			s.Times[c] = secs
		}
		return s, nil
	}
	cfg := v.cfg
	cfg.Defines = v.defs
	prog, _, _, err := core.BuildProgram(v.src, cfg)
	if err != nil {
		return s, fmt.Errorf("%s: %v", v.name, err)
	}
	for _, c := range cores {
		team := newTeam(c)
		proc, err := prog.NewProcess(comp.ProcOptions{Team: team, Stdout: io.Discard})
		if err != nil {
			return s, fmt.Errorf("%s @%d cores: %v", v.name, c, err)
		}
		var secs float64
		if v.entry == "" {
			secs, err = timeIt(reps, team, func() error {
				if err := proc.ResetGlobals(); err != nil {
					return err
				}
				_, err := proc.RunMain()
				return err
			})
		} else {
			secs, err = timeItPrepared(reps, team, func() error {
				if err := proc.ResetGlobals(); err != nil {
					return err
				}
				if v.init != "" {
					if _, err := proc.CallInt(v.init); err != nil {
						return err
					}
				}
				return nil
			}, func() error {
				_, err := proc.CallInt(v.entry)
				return err
			})
		}
		if err != nil {
			return s, fmt.Errorf("%s @%d cores: %v", v.name, c, err)
		}
		s.Times[c] = secs
	}
	return s, nil
}

// measureSeq times a sequential (non-parallelized) build once.
func measureSeq(v variant, reps int) (float64, error) {
	s, err := measure(v, []int{1}, reps)
	if err != nil {
		return 0, err
	}
	return s.Times[1], nil
}

// timeIt returns the best (minimum) adjusted time of reps runs: wall
// time minus the real duration of simulated regions plus their
// simulated duration. The minimum rejects scheduler and GC noise —
// a slow outlier rep says nothing about the code under test — which
// keeps the figure ratios and the CI baseline check stable.
func timeIt(reps int, team *rt.Team, f func() error) (float64, error) {
	if reps < 1 {
		reps = 1
	}
	var best time.Duration
	if team != nil {
		team.TakeSim() // drop stale accounting
	}
	for i := 0; i < reps; i++ {
		runtime.GC()
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		wall := time.Since(start)
		if team != nil {
			real, virt := team.TakeSim()
			wall = wall - real + virt
		}
		if i == 0 || wall < best {
			best = wall
		}
	}
	return best.Seconds(), nil
}

// timeItPrepared runs prep untimed before each timed run; like timeIt
// it reports the best (minimum) rep.
func timeItPrepared(reps int, team *rt.Team, prep, f func() error) (float64, error) {
	if reps < 1 {
		reps = 1
	}
	var best time.Duration
	for i := 0; i < reps; i++ {
		if err := prep(); err != nil {
			return 0, err
		}
		if team != nil {
			team.TakeSim() // discard accounting from the setup phase
		}
		runtime.GC()
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		wall := time.Since(start)
		if team != nil {
			real, virt := team.TakeSim()
			wall = wall - real + virt
		}
		if i == 0 || wall < best {
			best = wall
		}
	}
	return best.Seconds(), nil
}

func sortedCores(cs []int) []int {
	out := append([]int{}, cs...)
	sort.Ints(out)
	return out
}
