package bench

import (
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	f := &JSONFigure{Fig: "T1", Title: "engines",
		Points: []JSONPoint{
			{Workload: "noncanon/closure", Cores: 1, Seconds: 0.5, NsPerOp: 10},
			{Workload: "noncanon/tape", Cores: 1, Seconds: 0.1, NsPerOp: 2, Speedup: 5},
		}}
	if f.Filename() != "BENCH_T1.json" {
		t.Fatalf("filename: %s", f.Filename())
	}
	dir := t.TempDir()
	path, err := f.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ReadJSONFigure(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Fig != f.Fig || len(g.Points) != 2 || g.Points[1].Speedup != 5 {
		t.Fatalf("round trip: %+v", g)
	}
}

func TestCheckBaseline(t *testing.T) {
	base := &JSONFigure{Fig: "T1", Points: []JSONPoint{
		{Workload: "noncanon/tape", Cores: 1, Speedup: 4},
		{Workload: "axpy/tape", Cores: 1, Speedup: 2},
	}}
	// Same speedups: clean.
	if bad := CheckBaseline(base, base); bad != nil {
		t.Fatalf("self-check: %v", bad)
	}
	// Noise within the generous threshold: clean.
	cur := &JSONFigure{Fig: "T1", Points: []JSONPoint{
		{Workload: "noncanon/tape", Cores: 1, Speedup: 1.1},
		{Workload: "axpy/tape", Cores: 1, Speedup: 0.6},
	}}
	if bad := CheckBaseline(cur, base); bad != nil {
		t.Fatalf("within threshold: %v", bad)
	}
	// Collapse below a quarter of baseline: flagged.
	cur.Points[0].Speedup = 0.9
	bad := CheckBaseline(cur, base)
	if len(bad) != 1 || !strings.Contains(bad[0], "noncanon/tape") {
		t.Fatalf("regression not flagged: %v", bad)
	}
	// Missing point: flagged.
	cur.Points = cur.Points[1:]
	bad = CheckBaseline(cur, base)
	if len(bad) != 1 || !strings.Contains(bad[0], "missing") {
		t.Fatalf("missing point not flagged: %v", bad)
	}
}

func TestTapeDataJSON(t *testing.T) {
	d := &TapeData{P: Params{KernN: 100, KernReps: 2},
		Workloads: []TapeResult{{Name: "noncanon", Closure: 0.4, Tape: 0.1, Fused: 0.4}}}
	jf := d.JSON()
	if jf.Fig != "T1" || len(jf.Points) != 3 {
		t.Fatalf("points: %+v", jf)
	}
	tapePt := jf.Points[1]
	if tapePt.Workload != "noncanon/tape" || tapePt.Speedup != 4 {
		t.Fatalf("tape point: %+v", tapePt)
	}
	if tapePt.NsPerOp != 0.1*1e9/200 {
		t.Fatalf("ns/op: %v", tapePt.NsPerOp)
	}
}
