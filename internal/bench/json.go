package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Machine-readable figure export. purebench -json serializes each
// collected figure as BENCH_<FIG>.json next to the text tables, and
// CheckBaseline lets CI compare a fresh quick run against committed
// baselines without parsing the human tables.

// JSONPoint is one measured configuration of a figure.
type JSONPoint struct {
	// Workload names the program variant ("axpy/tape", "hist[] reduction
	// (16 bins)", …).
	Workload string `json:"workload"`
	// Cores is the simulated team size of the measurement (1 = serial).
	Cores int `json:"cores"`
	// Schedule is the loop schedule of parallel points ("default" when
	// the pragma names none); empty for serial measurements.
	Schedule string `json:"schedule,omitempty"`
	// Seconds is the measured run time (simulated critical path for
	// multi-core points).
	Seconds float64 `json:"seconds,omitempty"`
	// NsPerOp is Seconds normalized per logical operation of the
	// workload, when the figure knows its operation count.
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// Speedup is the figure's ratio metric for this point (vs the
	// figure's own baseline); 0 when the point is a baseline itself.
	Speedup float64 `json:"speedup,omitempty"`
	// Sim marks measurements taken in simulated time (virtual cores on
	// an rt.SimTeam); real wall-clock points leave it false.
	Sim bool `json:"sim"`
}

// JSONFigure is one figure's machine-readable form.
type JSONFigure struct {
	Fig    string      `json:"fig"`
	Title  string      `json:"title"`
	Points []JSONPoint `json:"points"`
}

// Filename returns the canonical file name of the figure export.
func (f *JSONFigure) Filename() string {
	fig := strings.ReplaceAll(strings.ToUpper(f.Fig), " ", "_")
	return "BENCH_" + fig + ".json"
}

// Write serializes the figure into dir and returns the file path.
func (f *JSONFigure) Write(dir string) (string, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	path := filepath.Join(dir, f.Filename())
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadJSONFigure loads a figure export written by Write.
func ReadJSONFigure(path string) (*JSONFigure, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f := &JSONFigure{}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return f, nil
}

// CheckBaseline compares a fresh collection against a committed
// baseline of the same figure and returns one message per regression
// (nil means clean). Only ratio metrics are compared — speedups are
// machine-relative, absolute seconds are not — and the threshold is
// deliberately generous so only large regressions (a speedup falling
// below a quarter of its baseline, or a baseline point disappearing)
// fail a loaded CI box. Real (non-simulated) multi-core points are
// checked for presence only — their wall-clock ratios are
// machine-relative twice over.
func CheckBaseline(cur, base *JSONFigure) []string {
	key := func(p JSONPoint) string {
		return fmt.Sprintf("%s|%d|%s", p.Workload, p.Cores, p.Schedule)
	}
	idx := make(map[string]JSONPoint, len(cur.Points))
	for _, p := range cur.Points {
		idx[key(p)] = p
	}
	var bad []string
	for _, bp := range base.Points {
		cp, ok := idx[key(bp)]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: point %q (cores=%d) missing from current run",
				base.Fig, bp.Workload, bp.Cores))
			continue
		}
		// Real (non-simulated) multi-core points are wall-clock
		// goroutine measurements: their ratio depends on the physical
		// core count of the measuring machine, so only their presence
		// is checked.
		if !bp.Sim && bp.Cores > 1 {
			continue
		}
		if bp.Speedup > 0 && cp.Speedup < bp.Speedup/4 {
			bad = append(bad, fmt.Sprintf("%s: %q (cores=%d) speedup %.2fx fell below a quarter of baseline %.2fx",
				base.Fig, bp.Workload, bp.Cores, cp.Speedup, bp.Speedup))
		}
	}
	return bad
}

// speedupFigureJSON flattens a rendered speedup Figure into points
// (ratio metric only — a speedup figure carries no absolute seconds).
// Real series export with Sim false at every core count: their
// multi-core points are wall-clock goroutine measurements.
func speedupFigureJSON(id string, f *Figure) *JSONFigure {
	jf := &JSONFigure{Fig: id, Title: f.Title}
	for _, s := range f.Series {
		for _, c := range sortedCores(f.Cores) {
			sp, ok := s.Times[c]
			if !ok {
				continue
			}
			jf.Points = append(jf.Points, JSONPoint{
				Workload: s.Name, Cores: c, Schedule: "default",
				Speedup: sp, Sim: c > 1 && !s.Real,
			})
		}
	}
	return jf
}

// kernPoint builds one serial A/B point with per-op normalization.
func kernPoint(workload string, seconds, ops, speedup float64) JSONPoint {
	p := JSONPoint{Workload: workload, Cores: 1, Seconds: seconds, Speedup: speedup}
	if ops > 0 && seconds > 0 {
		p.NsPerOp = seconds * 1e9 / ops
	}
	return p
}

// JSON exports Fig K1 (dispatch-vs-fused serial A/B).
func (d *KernelData) JSON() *JSONFigure {
	jf := &JSONFigure{Fig: "K1",
		Title: fmt.Sprintf("fused kernels vs closure dispatch (N=%d, %d sweeps; matmul N=%d)",
			d.P.KernN, d.P.KernReps, d.P.MatmulN)}
	for _, r := range d.Workloads {
		ops := float64(d.P.KernN) * float64(d.P.KernReps)
		if r.Name == "matmul" {
			n := float64(d.P.MatmulN)
			ops = n * n * n
		}
		jf.Points = append(jf.Points,
			kernPoint(r.Name+"/dispatch", r.Dispatch, ops, 0),
			kernPoint(r.Name+"/fused", r.Fused, ops, r.Speedup()))
	}
	return jf
}

// JSON exports Fig T1 (closure-vs-tape-vs-fused serial A/B).
func (d *TapeData) JSON() *JSONFigure {
	jf := &JSONFigure{Fig: "T1",
		Title: fmt.Sprintf("statement engines: closure dispatch vs linearized tape (N=%d, %d sweeps)",
			d.P.KernN, d.P.KernReps)}
	ops := float64(d.P.KernN) * float64(d.P.KernReps)
	for _, r := range d.Workloads {
		fusedSp := 0.0
		if r.Fused > 0 {
			fusedSp = r.Closure / r.Fused
		}
		jf.Points = append(jf.Points,
			kernPoint(r.Name+"/closure", r.Closure, ops, 0),
			kernPoint(r.Name+"/tape", r.Tape, ops, r.Speedup()),
			kernPoint(r.Name+"/fused", r.Fused, ops, fusedSp))
	}
	return jf
}

// JSON exports Fig B1 (bounds-check elimination: checked-vs-elided
// serial A/Bs plus the gather parallelization curve).
func (d *BCEData) JSON() *JSONFigure {
	jf := &JSONFigure{Fig: "B1",
		Title: fmt.Sprintf("bounds-check elimination (launch rows N=%d, %d sweeps; gather N=%d from %d)",
			d.P.BCEN, d.P.BCEReps, d.P.KernN, d.P.GatherM)}
	for _, r := range d.Kernels {
		ops := float64(d.P.BCEN) * float64(d.P.BCEReps)
		switch r.Name {
		case "gather", "derived", "gather (clamp)", "ptr-scale":
			// Full-length rows (the relational rows share the gather's N).
			ops = float64(d.P.KernN) * float64(d.P.KernReps)
		}
		jf.Points = append(jf.Points,
			kernPoint(r.Name+"/checked", r.Checked, ops, 0),
			kernPoint(r.Name+"/elided", r.Elided, ops, r.Speedup()))
	}
	jf.Points = append(jf.Points,
		kernPoint("gather opaque serial", d.GatherSerial, float64(d.P.KernN)*float64(d.P.KernReps), 0))
	for _, c := range sortedCores(d.P.Cores) {
		t, ok := d.GatherPar.Times[c]
		if !ok {
			continue
		}
		sp := 0.0
		if t > 0 && d.GatherSerial > 0 {
			sp = d.GatherSerial / t
		}
		jf.Points = append(jf.Points, JSONPoint{
			Workload: "gather proven (parallel)", Cores: c, Schedule: "default",
			Seconds: t, Speedup: sp, Sim: c > 1,
		})
	}
	return jf
}

// JSON exports Fig R1 (parallel scalar-reduction speedups).
func (d *ReduceData) JSON() *JSONFigure {
	f := d.FigR1()
	jf := speedupFigureJSON("R1", f)
	jf.Points = append(jf.Points,
		kernPoint("sum seq gcc", d.SumSeq, float64(d.P.ReduceN), 0),
		kernPoint("dot seq gcc", d.DotSeq, float64(d.P.ReduceN), 0))
	return jf
}

// JSON exports Fig A1 (array-reduction speedups across the bin sweep).
func (d *HistData) JSON() *JSONFigure {
	f := d.FigA1()
	jf := speedupFigureJSON("A1", f)
	for _, bins := range sortedCores(append([]int{}, d.P.HistBins...)) {
		jf.Points = append(jf.Points,
			kernPoint(fmt.Sprintf("hist seq (%d bins)", bins), d.Seq[bins], float64(d.P.HistN), 0))
	}
	return jf
}

// JSON exports Fig A2 (reduction-runtime knob A/B on the sparse-touch
// histogram).
func (d *A2Data) JSON() *JSONFigure {
	f := d.FigA2()
	jf := speedupFigureJSON("A2", f)
	jf.Points = append(jf.Points,
		kernPoint("sparse-hist seq", d.Seq, float64(d.P.A2N), 0))
	return jf
}
