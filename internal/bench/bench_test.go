package bench

import (
	"strings"
	"testing"
)

func TestFig2Demo(t *testing.T) {
	out := Fig2()
	if !strings.Contains(out, "rectangular tiling legal: false") {
		t.Fatalf("pre-skew tiling must be illegal:\n%s", out)
	}
	if !strings.Contains(out, "rectangular tiling legal: true") {
		t.Fatalf("post-skew tiling must be legal:\n%s", out)
	}
	if !strings.Contains(out, "legal shearing factor: 1") {
		t.Fatalf("skew factor must be 1:\n%s", out)
	}
}

func TestCollectMatmulQuick(t *testing.T) {
	d, err := CollectMatmul(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if d.SeqGCC <= 0 {
		t.Fatal("no sequential baseline")
	}
	f3 := d.Fig3()
	if len(f3.Series) != 5 {
		t.Fatalf("Fig3 series: %d", len(f3.Series))
	}
	for _, s := range f3.Series {
		for _, c := range f3.Cores {
			if s.Times[c] <= 0 {
				t.Fatalf("series %s cores %d: no time", s.Name, c)
			}
		}
	}
	f5 := d.Fig5()
	if f5.Kind != "speedup" || len(f5.Series) != 9 {
		t.Fatalf("Fig5: %+v", f5)
	}
	out := f3.Render()
	if !strings.Contains(out, "Fig 3") || !strings.Contains(out, "pure (gcc)") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestCollectHeatQuick(t *testing.T) {
	d, err := CollectHeat(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Series) != 4 {
		t.Fatalf("series: %d", len(d.Series))
	}
	if out := d.Fig7().Render(); !strings.Contains(out, "speedup") {
		t.Fatalf("fig7:\n%s", out)
	}
}

func TestCollectSatelliteQuick(t *testing.T) {
	d, err := CollectSatellite(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Series) != 4 {
		t.Fatalf("series: %d", len(d.Series))
	}
	if out := d.Fig8().Render(); !strings.Contains(out, "dynamic") {
		t.Fatalf("fig8:\n%s", out)
	}
}

func TestCollectLamaQuick(t *testing.T) {
	d, err := CollectLama(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Series) != 4 {
		t.Fatalf("series: %d", len(d.Series))
	}
	if out := d.Fig11().Render(); !strings.Contains(out, "Fig 11") {
		t.Fatalf("fig11:\n%s", out)
	}
}

// TestCollectMemoQuick is the acceptance check of the memoization
// scenario: the memoizing build must show a hit-rate-driven speedup
// over the plain parallel build of the same quantized workload.
func TestCollectMemoQuick(t *testing.T) {
	p := Quick()
	// Enough argument reuse per class that the table effect dominates
	// measurement noise even on a loaded CI box.
	p.SatPix = 600
	p.SatIters = 24
	d, err := CollectMemo(p)
	if err != nil {
		t.Fatal(err)
	}
	fig := d.FigMemo()
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(fig.Series))
	}
	if d.HitRate < 0.9 {
		t.Errorf("shared-table hit rate = %.2f, want ≥ 0.9 (%d pixels in %d classes)",
			d.HitRate, p.SatPix, p.MemoClasses)
	}
	plain, memoized := fig.Series[0].Times, fig.Series[1].Times
	for _, c := range fig.Cores {
		if plain[c] <= 0 || memoized[c] <= 0 {
			t.Fatalf("non-positive time at %d cores: plain=%v memo=%v", c, plain[c], memoized[c])
		}
	}
	// Compare at 1 core, where the parallel runtime cannot mask the
	// per-call saving: the memoized run recomputes only one fit per
	// class, the plain run one per pixel.
	if memoized[1] >= plain[1] {
		t.Errorf("memoized run not faster at 1 core: memo=%.4fs plain=%.4fs", memoized[1], plain[1])
	}
	t.Logf("1-core times: plain=%.4fs memoized=%.4fs (hit rate %.1f%%)",
		plain[1], memoized[1], 100*d.HitRate)
}

func TestSpeedupDerivation(t *testing.T) {
	f := &Figure{
		ID: "T", Kind: "time", Cores: []int{1, 2},
		Baseline: 10,
		Series:   []Series{{Name: "x", Times: map[int]float64{1: 10, 2: 5}}},
	}
	sp := f.Speedup("S", "t")
	if sp.Series[0].Times[1] != 1 || sp.Series[0].Times[2] != 2 {
		t.Fatalf("speedup: %+v", sp.Series[0])
	}
}

func TestCollectReductionQuick(t *testing.T) {
	d, err := CollectReduction(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if d.SumSeq <= 0 || d.DotSeq <= 0 {
		t.Fatal("missing sequential baselines")
	}
	f := d.FigR1()
	// Two simulated curves plus the two real-team rows.
	if f.Kind != "speedup" || len(f.Series) != 4 {
		t.Fatalf("FigR1: %+v", f)
	}
	for _, s := range f.Series {
		cores := f.Cores
		if s.Real {
			cores = Quick().RealCores
		}
		for _, c := range cores {
			if s.Times[c] <= 0 {
				t.Fatalf("series %s cores %d: no speedup value", s.Name, c)
			}
		}
	}
	out := f.Render()
	if !strings.Contains(out, "Fig R1") || !strings.Contains(out, "dot reduction (gcc)") ||
		!strings.Contains(out, "sum reduction real (gcc)") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestCollectKernelsQuick(t *testing.T) {
	d, err := CollectKernels(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Workloads) != 4 {
		t.Fatalf("want 4 workloads, got %d", len(d.Workloads))
	}
	for _, w := range d.Workloads {
		if w.Dispatch <= 0 || w.Fused <= 0 {
			t.Errorf("%s: non-positive times: %+v", w.Name, w)
		}
	}
	out := d.FigK1()
	for _, want := range []string{"Fig K1", "axpy", "copy", "stencil", "matmul", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("FigK1 output lacks %q:\n%s", want, out)
		}
	}
}

func TestCollectTapeQuick(t *testing.T) {
	d, err := CollectTape(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Workloads) != 4 {
		t.Fatalf("want 4 workloads, got %d", len(d.Workloads))
	}
	for _, w := range d.Workloads {
		if w.Closure <= 0 || w.Tape <= 0 || w.Fused <= 0 {
			t.Errorf("%s: non-positive times: %+v", w.Name, w)
		}
		if w.Speedup() <= 0 {
			t.Errorf("%s: non-positive speedup", w.Name)
		}
	}
	out := d.FigT1()
	for _, want := range []string{"Fig T1", "axpy", "copy", "stencil", "noncanon", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("FigT1 output lacks %q:\n%s", want, out)
		}
	}
}

func TestCollectHistogramQuick(t *testing.T) {
	p := Quick()
	d, err := CollectHistogram(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Par) != len(p.HistBins) {
		t.Fatalf("want %d curves, got %d", len(p.HistBins), len(d.Par))
	}
	for _, bins := range p.HistBins {
		if d.Seq[bins] <= 0 {
			t.Fatalf("missing sequential baseline for %d bins", bins)
		}
	}
	f := d.FigA1()
	// One curve per bin count plus the real-team row.
	if f.Kind != "speedup" || len(f.Series) != len(p.HistBins)+1 {
		t.Fatalf("FigA1: %+v", f)
	}
	for _, s := range f.Series {
		cores := f.Cores
		if s.Real {
			cores = p.RealCores
		}
		for _, c := range cores {
			if s.Times[c] <= 0 {
				t.Fatalf("series %s cores %d: no speedup value", s.Name, c)
			}
		}
	}
	out := f.Render()
	if !strings.Contains(out, "Fig A1") || !strings.Contains(out, "hist[] reduction") ||
		!strings.Contains(out, "reduction real") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestCollectA2Quick(t *testing.T) {
	p := Quick()
	d, err := CollectA2(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.Seq <= 0 {
		t.Fatal("missing sequential baseline")
	}
	if len(d.Series) != 4 {
		t.Fatalf("want 4 configurations, got %d", len(d.Series))
	}
	f := d.FigA2()
	for _, s := range f.Series {
		for _, c := range f.Cores {
			if s.Times[c] <= 0 {
				t.Fatalf("series %s cores %d: no speedup value", s.Name, c)
			}
		}
	}
	out := f.Render()
	for _, want := range []string{"Fig A2", "linear/dense", "tree/dense", "linear/sparse", "tree/sparse"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render lacks %q:\n%s", want, out)
		}
	}
	jf := d.JSON()
	if jf.Fig != "A2" {
		t.Fatalf("JSON fig %q", jf.Fig)
	}
}

func TestRealPointsExportSimFalse(t *testing.T) {
	// The JSON export must mark real-team rows Sim:false at every core
	// count — CheckBaseline exempts their wall-clock ratios on that
	// flag.
	d, err := CollectReduction(Quick())
	if err != nil {
		t.Fatal(err)
	}
	jf := d.JSON()
	real, sim := 0, 0
	for _, pt := range jf.Points {
		if strings.Contains(pt.Workload, " real ") || strings.HasSuffix(pt.Workload, " real (gcc)") {
			if pt.Sim {
				t.Errorf("real point %q cores=%d exported Sim:true", pt.Workload, pt.Cores)
			}
			real++
		} else if pt.Sim {
			sim++
		}
	}
	if real == 0 || sim == 0 {
		t.Fatalf("expected both real (%d) and sim (%d) points", real, sim)
	}
}
