package bench

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"purec/internal/apps"
	"purec/internal/comp"
	"purec/internal/core"
	"purec/internal/rt"
)

// Fig S1 is the serving-throughput figure behind cmd/purecd: one
// compiled Program (the axpy kernel at several sizes) hammered by
// concurrent clients, with each run's Process either drawn from a
// ProcessPool (reset-don't-reallocate, the daemon's warm path) or
// allocated fresh (the daemon's -no-pool baseline). The metric is
// runs per second of wall clock, so — unlike the simulated-time
// scaling figures — S1 is a real-concurrency measurement: client
// goroutines genuinely contend for pool slots and the allocator.

// serveReps is the measurement-window count per S1 point; each point
// reports its best window.
const serveReps = 3

// ServePoint is one (size, clients, variant) throughput measurement.
type ServePoint struct {
	N       int     // vector length of the axpy workload
	Clients int     // concurrent client goroutines
	Pooled  bool    // pooled Processes vs fresh-per-run
	RPS     float64 // runs per second of wall clock
	Reuses  uint64  // pool reuse count (pooled points)
}

// ServeData is the collected Fig S1 material.
type ServeData struct {
	P      Params
	Points []ServePoint
}

// CollectServe measures serving throughput: for every workload size and
// client count, S1Runs executions of the shared compiled Program are
// spread over the clients, once drawing Processes from a shared pool
// and once allocating each fresh.
func CollectServe(p Params) (*ServeData, error) {
	d := &ServeData{P: p}
	for _, n := range p.S1Sizes {
		cfg := core.Config{
			FileName:    fmt.Sprintf("axpy_%d.c", n),
			Defines:     apps.KernDefines(n, p.S1Reps),
			Parallelize: true,
		}
		prog, _, _, err := core.BuildProgram(apps.AxpySrc, cfg)
		if err != nil {
			return nil, fmt.Errorf("axpy N=%d: %v", n, err)
		}
		for _, clients := range p.S1Clients {
			// Best of serveReps windows, mirroring timeIt's minimum-time
			// policy: a slow outlier window says nothing about the code
			// under test, and the baseline check needs stable ratios.
			var fresh, pooled float64
			var reuses uint64
			for r := 0; r < serveReps; r++ {
				rps, _, err := serveThroughput(prog, clients, p.S1Runs, nil)
				if err != nil {
					return nil, fmt.Errorf("axpy N=%d fresh @%d clients: %v", n, clients, err)
				}
				if rps > fresh {
					fresh = rps
				}
			}
			pool := prog.NewPool(comp.PoolOptions{
				Size:    clients,
				NewTeam: func() *rt.Team { return rt.NewTeam(1) },
			})
			// Warm the pool (one Process per client) so the measured
			// window is the daemon's steady state, not its first requests.
			if err := warmPool(pool, clients); err != nil {
				return nil, fmt.Errorf("axpy N=%d warm @%d clients: %v", n, clients, err)
			}
			for r := 0; r < serveReps; r++ {
				rps, ru, err := serveThroughput(prog, clients, p.S1Runs, pool)
				if err != nil {
					return nil, fmt.Errorf("axpy N=%d pooled @%d clients: %v", n, clients, err)
				}
				if rps > pooled {
					pooled = rps
				}
				reuses += ru
			}
			d.Points = append(d.Points,
				ServePoint{N: n, Clients: clients, Pooled: false, RPS: fresh},
				ServePoint{N: n, Clients: clients, Pooled: true, RPS: pooled, Reuses: reuses})
		}
	}
	return d, nil
}

// warmPool cycles n Processes through the pool so it holds n idle ones.
func warmPool(pool *comp.ProcessPool, n int) error {
	procs := make([]*comp.Process, 0, n)
	for i := 0; i < n; i++ {
		proc, err := pool.Get()
		if err != nil {
			return err
		}
		procs = append(procs, proc)
	}
	for _, proc := range procs {
		pool.Put(proc)
	}
	return nil
}

// serveThroughput runs the program `runs` times spread over `clients`
// goroutines and returns runs per wall-clock second. With a pool each
// run draws from it; otherwise each run allocates a fresh Process.
func serveThroughput(prog *comp.Program, clients, runs int, pool *comp.ProcessPool) (rps float64, reuses uint64, err error) {
	if clients < 1 {
		clients = 1
	}
	var startReuses uint64
	if pool != nil {
		startReuses = pool.Stats().Reuses
	}
	work := make(chan struct{}, runs)
	for i := 0; i < runs; i++ {
		work <- struct{}{}
	}
	close(work)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				var proc *comp.Process
				var perr error
				if pool != nil {
					proc, perr = pool.Get()
					if perr == nil {
						proc.SetStdout(io.Discard)
					}
				} else {
					proc, perr = prog.NewProcess(comp.ProcOptions{
						Team: rt.NewTeam(1), Stdout: io.Discard,
					})
				}
				if perr == nil {
					_, perr = proc.RunMain()
				}
				if pool != nil && proc != nil {
					pool.Put(proc)
				}
				if perr != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = perr
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	secs := time.Since(start).Seconds()
	if firstErr != nil {
		return 0, 0, firstErr
	}
	if pool != nil {
		reuses = pool.Stats().Reuses - startReuses
	}
	if secs <= 0 {
		secs = 1e-9
	}
	return float64(runs) / secs, reuses, nil
}

// FigS1 renders the serving-throughput table: one row per
// (size, variant), one column per client count, cells in runs/sec.
func (d *ServeData) FigS1() string {
	var b strings.Builder
	add := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }
	add("Fig S1 — serving throughput: pooled vs fresh Processes (axpy, %d runs/point, REPS=%d)\n",
		d.P.S1Runs, d.P.S1Reps)
	add("[runs per second of wall clock]\n")
	add("%-26s", "clients")
	for _, c := range d.P.S1Clients {
		add("%10d", c)
	}
	add("\n")
	for _, n := range d.P.S1Sizes {
		for _, pooled := range []bool{false, true} {
			name := fmt.Sprintf("axpy N=%d/", n)
			if pooled {
				name += "pooled"
			} else {
				name += "fresh"
			}
			add("%-26s", name)
			for _, c := range d.P.S1Clients {
				if pt, ok := d.point(n, c, pooled); ok {
					add("%10.1f", pt.RPS)
				} else {
					add("%10s", "-")
				}
			}
			add("\n")
		}
	}
	add("note: pooled rows reuse reset Processes (arena-backed heaps and globals);\n")
	add("note: fresh rows allocate every Process anew — purecd's -no-pool baseline.\n")
	return b.String()
}

// point finds a collected measurement.
func (d *ServeData) point(n, clients int, pooled bool) (ServePoint, bool) {
	for _, pt := range d.Points {
		if pt.N == n && pt.Clients == clients && pt.Pooled == pooled {
			return pt, true
		}
	}
	return ServePoint{}, false
}

// JSON exports Fig S1. Pooled points carry the ratio metric
// (pooled RPS / fresh RPS at the same size and client count); all
// points are wall-clock concurrency measurements, so multi-client
// points are presence-checked only by CheckBaseline (Sim=false), while
// the single-client pooled-vs-fresh ratio is compared.
func (d *ServeData) JSON() *JSONFigure {
	jf := &JSONFigure{Fig: "S1",
		Title: fmt.Sprintf("serving throughput: pooled vs fresh Processes (axpy, %d runs/point, REPS=%d)",
			d.P.S1Runs, d.P.S1Reps)}
	for _, pt := range d.Points {
		name := fmt.Sprintf("axpy N=%d/", pt.N)
		variant := "fresh"
		if pt.Pooled {
			variant = "pooled"
		}
		p := JSONPoint{
			Workload: name + variant,
			Cores:    pt.Clients,
			Seconds:  1 / pt.RPS,
			Sim:      false,
		}
		if pt.Pooled {
			if fresh, ok := d.point(pt.N, pt.Clients, false); ok && fresh.RPS > 0 {
				p.Speedup = pt.RPS / fresh.RPS
			}
		}
		jf.Points = append(jf.Points, p)
	}
	return jf
}
