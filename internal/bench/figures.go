package bench

import (
	"fmt"
	"strings"

	"purec/internal/apps"
	"purec/internal/comp"
	"purec/internal/core"
	"purec/internal/poly"
	"purec/internal/rt"
	"purec/internal/transform"
)

// MatmulData carries every measured matmul configuration; Figs. 3–5 are
// views of it.
type MatmulData struct {
	P      Params
	SeqGCC float64
	GCC    []Series // PluTo, PluTo-SICA, pure, pure(no-init), MKL
	ICC    []Series // PluTo, PluTo-SICA, pure, MKL
}

// CollectMatmul measures all matrix-multiplication variants.
func CollectMatmul(p Params) (*MatmulData, error) {
	d := &MatmulData{P: p}
	defs := apps.MatmulDefines(p.MatmulN)
	seq, err := measureSeq(variant{
		name: "seq gcc", src: apps.MatmulSrc, defs: defs,
		cfg: core.Config{Backend: comp.BackendGCC},
	}, p.Reps)
	if err != nil {
		return nil, err
	}
	d.SeqGCC = seq

	gccVariants := []variant{
		{name: "PluTo (gcc)", src: apps.MatmulInlinedSrc, defs: defs,
			cfg: core.Config{Parallelize: true, Mode: core.ModePluTo, Backend: comp.BackendGCC}},
		{name: "PluTo-SICA (gcc)", src: apps.MatmulInlinedSrc, defs: defs,
			cfg: core.Config{Parallelize: true, Mode: core.ModePluTo, Backend: comp.BackendGCC, Vectorize: true}},
		{name: "pure (gcc)", src: apps.MatmulSrc, defs: defs,
			cfg: core.Config{Parallelize: true, Backend: comp.BackendGCC}},
		{name: "pure no-init-par (gcc)", src: apps.MatmulNoInitParSrc, defs: defs,
			cfg: core.Config{Parallelize: true, Backend: comp.BackendGCC}},
		mklVariant(p, "MKL (hand-tuned)"),
	}
	for _, v := range gccVariants {
		s, err := measure(v, p.Cores, p.Reps)
		if err != nil {
			return nil, err
		}
		d.GCC = append(d.GCC, s)
	}
	iccVariants := []variant{
		{name: "PluTo (icc)", src: apps.MatmulInlinedSrc, defs: defs,
			cfg: core.Config{Parallelize: true, Mode: core.ModePluTo, Backend: comp.BackendICC}},
		{name: "PluTo-SICA (icc)", src: apps.MatmulInlinedSrc, defs: defs,
			cfg: core.Config{Parallelize: true, Mode: core.ModePluTo, Backend: comp.BackendICC, Vectorize: true}},
		{name: "pure (icc)", src: apps.MatmulSrc, defs: defs,
			cfg: core.Config{Parallelize: true, Backend: comp.BackendICC}},
		mklVariant(p, "MKL (hand-tuned)"),
	}
	for _, v := range iccVariants {
		s, err := measure(v, p.Cores, p.Reps)
		if err != nil {
			return nil, err
		}
		d.ICC = append(d.ICC, s)
	}
	return d, nil
}

func mklVariant(p Params, name string) variant {
	return variant{name: name, native: func(team *rt.Team) {
		a, bt := apps.MatmulInputs(p.MatmulN)
		apps.MatmulMKL(a, bt, team)
	}}
}

// Fig3 renders the GCC execution times (paper Fig. 3).
func (d *MatmulData) Fig3() *Figure {
	return &Figure{
		ID:    "Fig 3",
		Title: fmt.Sprintf("matrix-matrix multiplication, execution time, GCC backend (N=%d)", d.P.MatmulN),
		Kind:  "time", Cores: sortedCores(d.P.Cores),
		Series: d.GCC, Baseline: d.SeqGCC, BaseName: "gcc -O2 analog",
		Notes: []string{
			"pure beats PluTo because the malloc loop is parallelized (malloc is in the pure hashset)",
			"pure no-init-par excludes the allocation loop and lands near PluTo",
		},
	}
}

// Fig4 renders the ICC execution times (paper Fig. 4).
func (d *MatmulData) Fig4() *Figure {
	return &Figure{
		ID:    "Fig 4",
		Title: fmt.Sprintf("matrix-matrix multiplication, execution time, ICC backend (N=%d)", d.P.MatmulN),
		Kind:  "time", Cores: sortedCores(d.P.Cores),
		Series: d.ICC, Baseline: d.SeqGCC, BaseName: "gcc -O2 analog",
		Notes: []string{
			"ICC vectorizes the extracted pure dot function; the PluTo-inlined loop does not benefit",
		},
	}
}

// Fig5 renders the speedups of all variants (paper Fig. 5).
func (d *MatmulData) Fig5() *Figure {
	f := &Figure{
		ID:    "Fig 5",
		Title: "matrix-matrix multiplication, speedup vs sequential GCC",
		Kind:  "speedup", Cores: sortedCores(d.P.Cores),
		Baseline: d.SeqGCC, BaseName: "gcc -O2 analog",
	}
	for _, s := range append(append([]Series{}, d.GCC...), d.ICC...) {
		ns := Series{Name: s.Name, Times: map[int]float64{}}
		for c, t := range s.Times {
			if t > 0 {
				ns.Times[c] = d.SeqGCC / t
			}
		}
		f.Series = append(f.Series, ns)
	}
	return f
}

// HeatData carries the heat-distribution measurements (Figs. 6 and 7).
type HeatData struct {
	P      Params
	SeqGCC float64
	SeqICC float64
	Series []Series
}

// CollectHeat measures the heat variants.
func CollectHeat(p Params) (*HeatData, error) {
	d := &HeatData{P: p}
	defs := apps.HeatDefines(p.HeatN, p.HeatSteps)
	var err error
	d.SeqGCC, err = measureSeq(variant{name: "seq gcc", src: apps.HeatSrc, defs: defs,
		cfg: core.Config{Backend: comp.BackendGCC}}, p.Reps)
	if err != nil {
		return nil, err
	}
	d.SeqICC, err = measureSeq(variant{name: "seq icc", src: apps.HeatSrc, defs: defs,
		cfg: core.Config{Backend: comp.BackendICC}}, p.Reps)
	if err != nil {
		return nil, err
	}
	variants := []variant{
		{name: "PluTo-SICA (gcc)", src: apps.HeatInlinedSrc, defs: defs,
			cfg: core.Config{Parallelize: true, Mode: core.ModePluTo, Backend: comp.BackendGCC, Vectorize: true}},
		{name: "PluTo-SICA (icc)", src: apps.HeatInlinedSrc, defs: defs,
			cfg: core.Config{Parallelize: true, Mode: core.ModePluTo, Backend: comp.BackendICC, Vectorize: true}},
		{name: "pure (gcc)", src: apps.HeatSrc, defs: defs,
			cfg: core.Config{Parallelize: true, Backend: comp.BackendGCC}},
		{name: "pure (icc)", src: apps.HeatSrc, defs: defs,
			cfg: core.Config{Parallelize: true, Backend: comp.BackendICC}},
	}
	for _, v := range variants {
		s, err := measure(v, p.Cores, p.Reps)
		if err != nil {
			return nil, err
		}
		d.Series = append(d.Series, s)
	}
	return d, nil
}

// Fig6 renders the heat execution times (paper Fig. 6).
func (d *HeatData) Fig6() *Figure {
	return &Figure{
		ID:    "Fig 6",
		Title: fmt.Sprintf("heat distribution, execution time (N=%d, %d steps)", d.P.HeatN, d.P.HeatSteps),
		Kind:  "time", Cores: sortedCores(d.P.Cores),
		Series: d.Series, Baseline: d.SeqGCC, BaseName: "gcc -O2 analog",
		Notes: []string{
			fmt.Sprintf("sequential icc analog: %.4f s", d.SeqICC),
			"the inlined PluTo version avoids one call per cell and wins (Sect. 4.3.2)",
		},
	}
}

// Fig7 renders the heat speedups (paper Fig. 7).
func (d *HeatData) Fig7() *Figure {
	return d.Fig6().Speedup("Fig 7", "heat distribution, speedup vs sequential GCC")
}

// SatData carries the satellite measurements (Figs. 8 and 9).
type SatData struct {
	P      Params
	SeqGCC float64
	Series []Series
}

// CollectSatellite measures the AOD retrieval variants.
func CollectSatellite(p Params) (*SatData, error) {
	d := &SatData{P: p}
	defs := apps.SatelliteDefines(p.SatPix, p.SatBands, p.SatIters)
	var err error
	d.SeqGCC, err = measureSeq(variant{name: "seq gcc", src: apps.SatelliteSrc, defs: defs,
		init: "initcube", entry: "run",
		cfg: core.Config{Backend: comp.BackendGCC}}, p.Reps)
	if err != nil {
		return nil, err
	}
	variants := []variant{
		{name: "pure auto (gcc)", src: apps.SatelliteSrc, defs: defs,
			init: "initcube", entry: "run",
			cfg: core.Config{Parallelize: true, Backend: comp.BackendGCC}},
		{name: "pure auto (icc)", src: apps.SatelliteSrc, defs: defs,
			init: "initcube", entry: "run",
			cfg: core.Config{Parallelize: true, Backend: comp.BackendICC}},
		{name: "manual dynamic,1 (gcc)", src: apps.SatelliteSrc, defs: defs,
			init: "initcube", entry: "run",
			cfg: core.Config{Parallelize: true, Backend: comp.BackendGCC,
				Transform: transform.Options{Schedule: "dynamic,1"}}},
		{name: "manual dynamic,1 (icc)", src: apps.SatelliteSrc, defs: defs,
			init: "initcube", entry: "run",
			cfg: core.Config{Parallelize: true, Backend: comp.BackendICC,
				Transform: transform.Options{Schedule: "dynamic,1"}}},
	}
	for _, v := range variants {
		s, err := measure(v, p.Cores, p.Reps)
		if err != nil {
			return nil, err
		}
		d.Series = append(d.Series, s)
	}
	return d, nil
}

// Fig8 renders the satellite execution times (paper Fig. 8).
func (d *SatData) Fig8() *Figure {
	return &Figure{
		ID:    "Fig 8",
		Title: fmt.Sprintf("satellite AOD retrieval, execution time (%d pixels, %d bands)", d.P.SatPix, d.P.SatBands),
		Kind:  "time", Cores: sortedCores(d.P.Cores),
		Series: d.Series, Baseline: d.SeqGCC, BaseName: "gcc -O2 analog",
		Notes: []string{
			"only the pure chain can parallelize this loop at all (complex filter, dynamic branches)",
			"schedule(dynamic,1) absorbs the pixel-dependent load imbalance (Sect. 4.3.3)",
		},
	}
}

// Fig9 renders the satellite speedups (paper Fig. 9).
func (d *SatData) Fig9() *Figure {
	return d.Fig8().Speedup("Fig 9", "satellite AOD retrieval, speedup vs sequential GCC")
}

// MemoData carries the pure-call memoization scenario: the quantized
// satellite retrieval measured with and without the memo table.
type MemoData struct {
	P      Params
	SeqGCC float64
	Series []Series
	// HitRate is the shared-table hit fraction accumulated over the
	// memoizing measurements.
	HitRate float64
}

// CollectMemo measures the quantized AOD retrieval (SatPix pixels in
// MemoClasses distinct argument classes) as a plain parallel build and
// as a memoizing build whose table is shared by every measured Process.
func CollectMemo(p Params) (*MemoData, error) {
	d := &MemoData{P: p}
	defs := apps.MemoSatDefines(p.SatPix, p.MemoClasses, p.SatBands, p.SatIters)
	// An isolated program cache pins the memoizing Program for the whole
	// collection, so the hit-rate snapshot below reads the very table
	// the measured Processes shared (the global DefaultCache could evict
	// the entry mid-sweep and hand back a fresh, zero-stats Program).
	cache := core.NewProgramCache(8)
	var err error
	d.SeqGCC, err = measureSeq(variant{name: "seq gcc", src: apps.MemoSatSrc, defs: defs,
		init: "initmemo", entry: "run",
		cfg: core.Config{Backend: comp.BackendGCC, Cache: cache}}, p.Reps)
	if err != nil {
		return nil, err
	}
	memoCfg := core.Config{Parallelize: true, Backend: comp.BackendGCC, Memoize: true, Cache: cache}
	memoCfg.Defines = defs
	memoProg, _, _, err := core.BuildProgram(apps.MemoSatSrc, memoCfg)
	if err != nil {
		return nil, err
	}
	variants := []variant{
		{name: "pure auto (gcc)", src: apps.MemoSatSrc, defs: defs,
			init: "initmemo", entry: "run",
			cfg: core.Config{Parallelize: true, Backend: comp.BackendGCC, Cache: cache}},
		{name: "pure auto + memo (gcc)", src: apps.MemoSatSrc, defs: defs,
			init: "initmemo", entry: "run",
			cfg: memoCfg},
	}
	for _, v := range variants {
		s, err := measure(v, p.Cores, p.Reps)
		if err != nil {
			return nil, err
		}
		d.Series = append(d.Series, s)
	}
	// Every measured Process of the memoizing variant came from
	// memoProg (same cache, same key) and shared its table.
	d.HitRate = memoProg.MemoStats().HitRate()
	return d, nil
}

// FigMemo renders the memoization scenario times. It extends the
// paper's evaluation (no memoization there): the point is the
// hit-rate-driven drop of the memoizing curve once each argument class
// has been computed once.
func (d *MemoData) FigMemo() *Figure {
	return &Figure{
		ID: "Fig M1",
		Title: fmt.Sprintf("memoized AOD retrieval, execution time (%d pixels, %d classes, %d bands)",
			d.P.SatPix, d.P.MemoClasses, d.P.SatBands),
		Kind: "time", Cores: sortedCores(d.P.Cores),
		Series: d.Series, Baseline: d.SeqGCC, BaseName: "gcc -O2 analog",
		Notes: []string{
			"pure calls are referentially transparent, so memoized results are bit-identical",
			fmt.Sprintf("shared memo table across all measured Processes: %.1f%% hit rate", 100*d.HitRate),
		},
	}
}

// FigMemoSpeedup derives the memoization speedup view.
func (d *MemoData) FigMemoSpeedup() *Figure {
	return d.FigMemo().Speedup("Fig M2", "memoized AOD retrieval, speedup vs sequential GCC")
}

// ReduceData carries the reduction scenario (Fig. R1): the README
// quickstart sum and the extracted dot kernel, each measured as a
// sequential build and as a parallel-reduction build, plus real-team
// (wall-clock goroutine) scaling points of both kernels.
type ReduceData struct {
	P       Params
	SumSeq  float64
	DotSeq  float64
	Sum     Series
	Dot     Series
	SumReal Series
	DotReal Series
}

// CollectReduction measures serial vs parallel-reduction builds of the
// two kernels. The kernels are chosen so the new reduction runtime is
// the only parallelism: the quickstart sum reduces at the top level of
// run(), and the dot kernel calls the extracted pure dot exactly once.
// The real-team rows rerun both kernels on actual goroutine teams over
// P.RealCores — wall clock, no simulation — so the figure carries a
// ground-truth scaling point next to the simulated curves.
func CollectReduction(p Params) (*ReduceData, error) {
	d := &ReduceData{P: p}
	defs := apps.ReduceDefines(p.ReduceN)
	var err error
	d.SumSeq, err = measureSeq(variant{name: "sum seq gcc", src: apps.ReduceSumSrc, defs: defs,
		entry: "run",
		cfg:   core.Config{Backend: comp.BackendGCC}}, p.Reps)
	if err != nil {
		return nil, err
	}
	d.DotSeq, err = measureSeq(variant{name: "dot seq gcc", src: apps.ReduceDotSrc, defs: defs,
		init: "initvec", entry: "run",
		cfg: core.Config{Backend: comp.BackendGCC}}, p.Reps)
	if err != nil {
		return nil, err
	}
	sumVar := variant{name: "sum reduction (gcc)", src: apps.ReduceSumSrc, defs: defs,
		entry: "run",
		cfg:   core.Config{Parallelize: true, Backend: comp.BackendGCC}}
	dotVar := variant{name: "dot reduction (gcc)", src: apps.ReduceDotSrc, defs: defs,
		init: "initvec", entry: "run",
		cfg: core.Config{Parallelize: true, Backend: comp.BackendGCC}}
	d.Sum, err = measure(sumVar, p.Cores, p.Reps)
	if err != nil {
		return nil, err
	}
	d.Dot, err = measure(dotVar, p.Cores, p.Reps)
	if err != nil {
		return nil, err
	}
	sumVar.name, sumVar.real = "sum reduction real (gcc)", true
	d.SumReal, err = measure(sumVar, p.RealCores, p.Reps)
	if err != nil {
		return nil, err
	}
	dotVar.name, dotVar.real = "dot reduction real (gcc)", true
	d.DotReal, err = measure(dotVar, p.RealCores, p.Reps)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// FigR1 renders the serial-vs-reduction speedups: each kernel's curve
// is normalized to its own sequential baseline.
func (d *ReduceData) FigR1() *Figure {
	f := &Figure{
		ID:    "Fig R1",
		Title: fmt.Sprintf("parallel scalar reductions, speedup vs sequential GCC (N=%d)", d.P.ReduceN),
		Kind:  "speedup", Cores: sortedCores(d.P.Cores),
		Notes: []string{
			fmt.Sprintf("sequential baselines: sum %.4f s, dot %.4f s", d.SumSeq, d.DotSeq),
			"the quickstart loop (s += square(i)) compiles to #pragma omp parallel for reduction(+:s)",
			"integer sums are bit-identical at every team size; float dot follows the fixed-combine-order determinism contract",
			"speedup above the core count reflects the execution model: parallel chunks iterate natively while the sequential baseline pays the interpreted loop head per iteration (same effect as the other figures' 1-core points)",
			"the real rows run actual goroutine teams in wall clock (no simulation); their axis stays within a laptop's physical cores",
		},
	}
	for _, pair := range []struct {
		s    Series
		base float64
	}{{d.Sum, d.SumSeq}, {d.Dot, d.DotSeq}, {d.SumReal, d.SumSeq}, {d.DotReal, d.DotSeq}} {
		ns := Series{Name: pair.s.Name, Times: map[int]float64{}, Real: pair.s.Real}
		for c, t := range pair.s.Times {
			if t > 0 && pair.base > 0 {
				ns.Times[c] = pair.base / t
			}
		}
		f.Series = append(f.Series, ns)
	}
	return f
}

// HistData carries the array-reduction scenario (Fig A1): the
// bin-count workload measured serially and as a privatized parallel
// reduction, per bin count.
type HistData struct {
	P Params
	// Seq maps bin count to the sequential baseline seconds.
	Seq map[int]float64
	// Par holds one privatized-reduction curve per bin count, in
	// P.HistBins order.
	Par []Series
	// Real is the real-team (wall-clock goroutine) curve at the first
	// bin count, over P.RealCores.
	Real Series
}

// CollectHistogram measures the bin-count workload across the bin
// sweep: for each bin count, a sequential build and a parallel build
// whose hot loop runs through reduction(+:hist[]) — per-worker private
// copies plus a worker-ordered element-wise combine. The combine and
// the private-copy allocation are O(bins · active workers) on the
// simulated critical path, so large bin counts show the privatization
// overhead overtaking the parallel win.
func CollectHistogram(p Params) (*HistData, error) {
	d := &HistData{P: p, Seq: map[int]float64{}}
	for _, bins := range p.HistBins {
		defs := apps.HistogramDefines(p.HistN, bins)
		seq, err := measureSeq(variant{
			name: fmt.Sprintf("hist seq (%d bins)", bins), src: apps.HistogramSrc, defs: defs,
			init: "initdata", entry: "run",
			cfg: core.Config{Backend: comp.BackendGCC}}, p.Reps)
		if err != nil {
			return nil, err
		}
		d.Seq[bins] = seq
		s, err := measure(variant{
			name: fmt.Sprintf("hist[] reduction (%d bins)", bins), src: apps.HistogramSrc, defs: defs,
			init: "initdata", entry: "run",
			cfg: core.Config{Parallelize: true, Backend: comp.BackendGCC}}, p.Cores, p.Reps)
		if err != nil {
			return nil, err
		}
		d.Par = append(d.Par, s)
	}
	// Ground-truth scaling: the first bin count rerun on actual
	// goroutine teams in wall clock over the small real-core axis.
	if len(p.HistBins) > 0 {
		bins := p.HistBins[0]
		var err error
		d.Real, err = measure(variant{
			name: fmt.Sprintf("hist[] reduction real (%d bins)", bins), src: apps.HistogramSrc,
			defs: apps.HistogramDefines(p.HistN, bins),
			init: "initdata", entry: "run", real: true,
			cfg: core.Config{Parallelize: true, Backend: comp.BackendGCC}}, p.RealCores, p.Reps)
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// FigA1 renders the privatized-vs-serial speedups, one curve per bin
// count, each normalized to its own sequential baseline.
func (d *HistData) FigA1() *Figure {
	f := &Figure{
		ID:    "Fig A1",
		Title: fmt.Sprintf("array reduction (hist[data[i]]++), speedup vs sequential GCC (N=%d)", d.P.HistN),
		Kind:  "speedup", Cores: sortedCores(d.P.Cores),
		Notes: []string{
			"the hot loop compiles to #pragma omp parallel for reduction(+:hist[]): per-worker private copies, worker-ordered element-wise combine",
			"integer array reductions are bit-identical to serial at every team size and schedule",
			"the combine pass is O(bins x active workers) on the critical path: large bin counts with many workers pay more in combine than they win in parallel updates",
		},
	}
	for i, bins := range d.P.HistBins {
		base := d.Seq[bins]
		ns := Series{Name: d.Par[i].Name, Times: map[int]float64{}}
		for c, t := range d.Par[i].Times {
			if t > 0 && base > 0 {
				ns.Times[c] = base / t
			}
		}
		f.Series = append(f.Series, ns)
	}
	if len(d.P.HistBins) > 0 && d.Real.Times != nil {
		base := d.Seq[d.P.HistBins[0]]
		ns := Series{Name: d.Real.Name, Times: map[int]float64{}, Real: true}
		for c, t := range d.Real.Times {
			if t > 0 && base > 0 {
				ns.Times[c] = base / t
			}
		}
		f.Series = append(f.Series, ns)
		f.Notes = append(f.Notes, "the real row runs actual goroutine teams in wall clock (no simulation)")
	}
	for _, bins := range sortedCores(append([]int{}, d.P.HistBins...)) {
		f.Notes = append(f.Notes, fmt.Sprintf("sequential baseline at %d bins: %.4f s", bins, d.Seq[bins]))
	}
	return f
}

// A2Data carries the reduction-runtime knob A/B (Fig A2): the
// sparse-touch histogram measured under every {combine topology,
// private layout} pair.
type A2Data struct {
	P   Params
	Seq float64
	// Series holds one curve per configuration, in the fixed order
	// linear/dense, tree/dense, linear/sparse, tree/sparse.
	Series []Series
}

// CollectA2 measures the sparse-touch histogram (A2N elements in an
// A2Touched-bin window of an A2Bins-cell accumulator) across the four
// reduction-runtime configurations. All four produce bit-identical
// results — the knobs move work, not semantics — so the curves isolate
// exactly the privatize-and-combine cost: dense privates pay
// O(A2Bins) per worker to allocate, identity-fill and combine where
// sparse privates pay O(A2Touched), and the tree topology cuts the
// combine critical path from workers to log2(workers) levels.
func CollectA2(p Params) (*A2Data, error) {
	d := &A2Data{P: p}
	defs := apps.SparseHistDefines(p.A2N, p.A2Bins, p.A2Touched)
	var err error
	d.Seq, err = measureSeq(variant{
		name: "sparse-hist seq", src: apps.SparseHistSrc, defs: defs,
		init: "initdata", entry: "run",
		cfg: core.Config{Backend: comp.BackendGCC}}, p.Reps)
	if err != nil {
		return nil, err
	}
	configs := []struct {
		name    string
		combine rt.Combine
		sparse  bool
	}{
		{"linear/dense", rt.CombineLinear, false},
		{"tree/dense", rt.CombineTree, false},
		{"linear/sparse", rt.CombineLinear, true},
		{"tree/sparse", rt.CombineTree, true},
	}
	for _, c := range configs {
		s, err := measure(variant{
			name: c.name, src: apps.SparseHistSrc, defs: defs,
			init: "initdata", entry: "run",
			cfg: core.Config{Parallelize: true, Backend: comp.BackendGCC,
				Combine: c.combine, SparsePrivates: c.sparse}}, p.Cores, p.Reps)
		if err != nil {
			return nil, err
		}
		d.Series = append(d.Series, s)
	}
	return d, nil
}

// FigA2 renders the knob A/B speedups, every configuration normalized
// to the one sequential baseline.
func (d *A2Data) FigA2() *Figure {
	f := &Figure{
		ID: "Fig A2",
		Title: fmt.Sprintf("reduction runtime knobs on a sparse-touch histogram (N=%d, %d bins, %d touched)",
			d.P.A2N, d.P.A2Bins, d.P.A2Touched),
		Kind: "speedup", Cores: sortedCores(d.P.Cores),
		Notes: []string{
			fmt.Sprintf("sequential baseline: %.4f s", d.Seq),
			"all four configurations are bit-identical (integer accumulator; the knobs move work, not semantics)",
			"dense privates pay O(bins) per worker to allocate, identity-fill and combine; block-sparse privates pay O(touched)",
			"-combine=tree replaces the worker-ordered combine chain with log-depth pairwise merges: the critical path drops from workers to log2(workers) levels",
		},
	}
	for _, s := range d.Series {
		ns := Series{Name: s.Name, Times: map[int]float64{}}
		for c, t := range s.Times {
			if t > 0 && d.Seq > 0 {
				ns.Times[c] = d.Seq / t
			}
		}
		f.Series = append(f.Series, ns)
	}
	return f
}

// KernelResult is one Fig K1 workload: the same build measured with
// the fusion engine off (closure dispatch) and on.
type KernelResult struct {
	Name     string
	Dispatch float64 // seconds, NoFuse build
	Fused    float64 // seconds, default build
}

// Speedup is the dispatch/fused throughput ratio.
func (r KernelResult) Speedup() float64 {
	if r.Fused <= 0 {
		return 0
	}
	return r.Dispatch / r.Fused
}

// KernelData carries the kernel-fusion A/B measurements (Fig K1).
type KernelData struct {
	P         Params
	Workloads []KernelResult
}

// CollectKernels measures the Fig K1 workloads — axpy, copy, a 1-D
// stencil and the extracted-dot matmul — as sequential builds with the
// fusion engine off and on. Fusion changes no results (bit-identical
// by contract), only the per-iteration execution scheme, so the two
// columns isolate exactly the dispatch overhead the engine removes.
func CollectKernels(p Params) (*KernelData, error) {
	d := &KernelData{P: p}
	kd := apps.KernDefines(p.KernN, p.KernReps)
	workloads := []struct {
		name        string
		src         string
		defs        map[string]string
		init, entry string
		cfg         core.Config
	}{
		{"axpy", apps.AxpySrc, kd, "initvec", "run", core.Config{}},
		{"copy", apps.CopySrc, kd, "initvec", "run", core.Config{}},
		{"stencil", apps.StencilSrc, kd, "initvec", "run", core.Config{}},
		// The matmul hot loop is the extracted-dot reduction; the ICC
		// backend is what fuses it (the paper's Sect. 4.3.1 effect).
		{"matmul", apps.MatmulKernSrc, apps.MatmulDefines(p.MatmulN), "initmat", "run",
			core.Config{Backend: comp.BackendICC}},
	}
	for _, w := range workloads {
		r := KernelResult{Name: w.name}
		dispatchCfg := w.cfg
		dispatchCfg.NoFuse = true
		var err error
		r.Dispatch, err = measureSeq(variant{
			name: w.name + " dispatch", src: w.src, defs: w.defs,
			init: w.init, entry: w.entry, cfg: dispatchCfg,
		}, p.Reps)
		if err != nil {
			return nil, err
		}
		r.Fused, err = measureSeq(variant{
			name: w.name + " fused", src: w.src, defs: w.defs,
			init: w.init, entry: w.entry, cfg: w.cfg,
		}, p.Reps)
		if err != nil {
			return nil, err
		}
		d.Workloads = append(d.Workloads, r)
	}
	return d, nil
}

// FigK1 renders the fused-vs-dispatch throughput table.
func (d *KernelData) FigK1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig K1 — fused kernels vs closure dispatch (N=%d, %d sweeps; matmul N=%d)\n",
		d.P.KernN, d.P.KernReps, d.P.MatmulN)
	b.WriteString("[seconds per run; speedup = dispatch/fused]\n")
	fmt.Fprintf(&b, "%-12s%14s%14s%10s\n", "workload", "dispatch", "fused", "speedup")
	for _, r := range d.Workloads {
		fmt.Fprintf(&b, "%-12s%14.4f%14.4f%9.1fx\n", r.Name, r.Dispatch, r.Fused, r.Speedup())
	}
	b.WriteString("note: outputs are bit-identical by the fusion contract; only the execution scheme differs\n")
	b.WriteString("note: one hoisted range check per operand per loop replaces the per-access bounds checks\n")
	return b.String()
}

// TapeResult is one Fig T1 workload: the same program measured on the
// closure engine and the tape engine with fusion off (pure dispatch
// cost), plus the default fused build as the reference point.
type TapeResult struct {
	Name    string
	Closure float64 // seconds, EngineClosure + NoFuse
	Tape    float64 // seconds, EngineTape + NoFuse
	Fused   float64 // seconds, default build (closure engine, fusion on)
}

// Speedup is the closure/tape throughput ratio on the unfused builds.
func (r TapeResult) Speedup() float64 {
	if r.Tape <= 0 {
		return 0
	}
	return r.Closure / r.Tape
}

// TapeData carries the statement-engine A/B measurements (Fig T1).
type TapeData struct {
	P         Params
	Workloads []TapeResult
}

// CollectTape measures the Fig T1 workloads — the K1 element-wise
// kernels plus the deliberately non-canonical branchy body — on both
// statement engines with fusion disabled, isolating exactly the
// dispatch cost the tape removes, and on the default fused build for
// scale. Results are bit-identical across all three builds by the
// engine contract; the non-canonical body never fuses, so its fused
// column equals closure dispatch and the tape column is the only win
// available to it.
func CollectTape(p Params) (*TapeData, error) {
	d := &TapeData{P: p}
	kd := apps.KernDefines(p.KernN, p.KernReps)
	workloads := []struct {
		name string
		src  string
	}{
		{"axpy", apps.AxpySrc},
		{"copy", apps.CopySrc},
		{"stencil", apps.StencilSrc},
		{"noncanon", apps.NoncanonSrc},
	}
	for _, w := range workloads {
		r := TapeResult{Name: w.name}
		var err error
		r.Closure, err = measureSeq(variant{
			name: w.name + " closure", src: w.src, defs: kd,
			init: "initvec", entry: "run",
			cfg: core.Config{NoFuse: true, Engine: comp.EngineClosure},
		}, p.Reps)
		if err != nil {
			return nil, err
		}
		r.Tape, err = measureSeq(variant{
			name: w.name + " tape", src: w.src, defs: kd,
			init: "initvec", entry: "run",
			cfg: core.Config{NoFuse: true, Engine: comp.EngineTape},
		}, p.Reps)
		if err != nil {
			return nil, err
		}
		r.Fused, err = measureSeq(variant{
			name: w.name + " fused", src: w.src, defs: kd,
			init: "initvec", entry: "run",
			cfg: core.Config{},
		}, p.Reps)
		if err != nil {
			return nil, err
		}
		d.Workloads = append(d.Workloads, r)
	}
	return d, nil
}

// FigT1 renders the closure-vs-tape-vs-fused table.
func (d *TapeData) FigT1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig T1 — statement engines: closure dispatch vs linearized tape (N=%d, %d sweeps)\n",
		d.P.KernN, d.P.KernReps)
	b.WriteString("[seconds per run, fusion off in the closure and tape columns; speedup = closure/tape]\n")
	fmt.Fprintf(&b, "%-12s%14s%14s%14s%10s\n", "workload", "closure", "tape", "fused", "speedup")
	for _, r := range d.Workloads {
		fmt.Fprintf(&b, "%-12s%14.4f%14.4f%14.4f%9.1fx\n", r.Name, r.Closure, r.Tape, r.Fused, r.Speedup())
	}
	b.WriteString("note: all three builds produce bit-identical outputs (engine contract)\n")
	b.WriteString("note: the non-canonical branchy body cannot fuse — the tape engine is its only dispatch win\n")
	return b.String()
}

// BCEResult is one Fig B1 check-elision A/B: the same build measured
// with every runtime check kept (NoBCE) and with the proven checks
// elided (default).
type BCEResult struct {
	Name     string
	Checked  float64 // seconds, NoBCE build
	Elided   float64 // seconds, default build
	Elisions int     // checks the default build discharged at compile time
}

// Speedup is the checked/elided throughput ratio.
func (r BCEResult) Speedup() float64 {
	if r.Elided <= 0 {
		return 0
	}
	return r.Checked / r.Elided
}

// BCEData carries the bounds-check-elimination measurements (Fig B1):
// the per-check A/Bs plus the gather-parallelization scenario.
type BCEData struct {
	P       Params
	Kernels []BCEResult
	// GatherSerial is the opaque-index gather build (unprovable, so
	// checked and force-serialized) measured sequentially; GatherPar is
	// the proven build across the core axis. Their ratio is the
	// combined win of elision plus parallelization.
	GatherSerial float64
	GatherPar    Series
}

// CollectBCE measures the Fig B1 workloads. The launch-visibility rows
// (axpy on both statement engines, the 1-D stencil) run a tiny vector
// many times so the one hoisted range check per operand per launch —
// exactly what the bounds proofs elide — is a measurable share of the
// run. The gather rows run at full length: its per-element bounds test
// scales with N, and the proven build both elides it and parallelizes
// the nest while the opaque build keeps the checked serial loop.
func CollectBCE(p Params) (*BCEData, error) {
	d := &BCEData{P: p}
	bd := apps.KernDefines(p.BCEN, p.BCEReps)
	gd := apps.GatherDefines(p.KernN, p.GatherM, p.KernReps)
	// The relational rows (PR 8) run at gather length: their proofs come
	// from the relational layer — the derived subscript through the
	// affine relation (it needs the parallelizer's forward substitution
	// to fuse), the clamped gather through path-sensitive refinement,
	// and the pointer loop through the points-to resolution.
	rd := apps.RelationalDefines(p.KernN, p.KernN+16, 16, p.KernReps)
	workloads := []struct {
		name string
		src  string
		defs map[string]string
		cfg  core.Config
	}{
		{"axpy (closure)", apps.AxpySrc, bd, core.Config{}},
		{"axpy (tape)", apps.AxpySrc, bd, core.Config{Engine: comp.EngineTape}},
		{"stencil", apps.StencilSrc, bd, core.Config{}},
		{"gather", apps.GatherSrc, gd, core.Config{}},
		{"derived", apps.DerivedSrc, rd, core.Config{Parallelize: true}},
		{"gather (clamp)", apps.ClampGatherSrc, rd, core.Config{}},
		{"ptr-scale", apps.PtrScaleSrc, rd, core.Config{}},
	}
	for _, w := range workloads {
		r := BCEResult{Name: w.name}
		checkedCfg := w.cfg
		checkedCfg.NoBCE = true
		var err error
		r.Checked, err = measureSeq(variant{
			name: w.name + " checked", src: w.src, defs: w.defs,
			init: initOf(w.src), entry: "run", cfg: checkedCfg,
		}, p.Reps)
		if err != nil {
			return nil, err
		}
		r.Elided, err = measureSeq(variant{
			name: w.name + " elided", src: w.src, defs: w.defs,
			init: initOf(w.src), entry: "run", cfg: w.cfg,
		}, p.Reps)
		if err != nil {
			return nil, err
		}
		// The measured build came through the program cache; rebuilding
		// with the same key reads its compile-time elision counter.
		cfg := w.cfg
		cfg.Defines = w.defs
		prog, _, _, err := core.BuildProgram(w.src, cfg)
		if err != nil {
			return nil, err
		}
		r.Elisions = prog.ElidedChecks()
		d.Kernels = append(d.Kernels, r)
	}

	var err error
	d.GatherSerial, err = measureSeq(variant{
		name: "gather opaque", src: apps.GatherOpaqueSrc, defs: gd,
		init: "initgather", entry: "run",
		cfg: core.Config{Parallelize: true}}, p.Reps)
	if err != nil {
		return nil, err
	}
	d.GatherPar, err = measure(variant{
		name: "gather proven (parallel)", src: apps.GatherSrc, defs: gd,
		init: "initgather", entry: "run",
		cfg: core.Config{Parallelize: true}}, p.Cores, p.Reps)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// initOf maps a Fig B1 source to its init entry point.
func initOf(src string) string {
	switch src {
	case apps.GatherSrc, apps.GatherOpaqueSrc:
		return "initgather"
	case apps.DerivedSrc, apps.ClampGatherSrc, apps.PtrScaleSrc:
		return "initrel"
	}
	return "initvec"
}

// FigB1 renders the check-elision table plus the gather scenario.
func (d *BCEData) FigB1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig B1 — bounds-check elimination: checked vs proven builds (launch rows N=%d, %d sweeps; gather N=%d from %d, %d sweeps)\n",
		d.P.BCEN, d.P.BCEReps, d.P.KernN, d.P.GatherM, d.P.KernReps)
	b.WriteString("[seconds per run; speedup = checked/elided; elisions = checks discharged at compile time]\n")
	fmt.Fprintf(&b, "%-16s%14s%14s%10s%10s\n", "workload", "checked", "elided", "speedup", "elisions")
	for _, r := range d.Kernels {
		fmt.Fprintf(&b, "%-16s%14.4f%14.4f%9.2fx%10d\n", r.Name, r.Checked, r.Elided, r.Speedup(), r.Elisions)
	}
	b.WriteString("\ngather parallelization: proven index contents vs opaque (serialized, checked)\n")
	fmt.Fprintf(&b, "opaque serial baseline: %.4f s\n", d.GatherSerial)
	fmt.Fprintf(&b, "%-26s%10s%10s\n", "cores", "seconds", "speedup")
	for _, c := range sortedCores(d.P.Cores) {
		t, ok := d.GatherPar.Times[c]
		if !ok {
			continue
		}
		sp := 0.0
		if t > 0 && d.GatherSerial > 0 {
			sp = d.GatherSerial / t
		}
		fmt.Fprintf(&b, "%-26d%10.4f%9.2fx\n", c, t, sp)
	}
	b.WriteString("note: checked and elided builds are bit-identical — the proofs only remove checks that can never fire\n")
	b.WriteString("note: the opaque build keeps the per-element test and is force-serialized for trap-order parity\n")
	return b.String()
}

// LamaData carries the ELL SpMV measurements (Figs. 10 and 11).
type LamaData struct {
	P      Params
	SeqGCC float64
	Series []Series
}

// CollectLama measures the ELL SpMV variants.
func CollectLama(p Params) (*LamaData, error) {
	d := &LamaData{P: p}
	defs := apps.LamaDefines(p.LamaRows, p.LamaNNZ)
	var err error
	d.SeqGCC, err = measureSeq(variant{name: "seq gcc", src: apps.LamaSrc, defs: defs,
		init: "initell", entry: "run",
		cfg: core.Config{Backend: comp.BackendGCC}}, p.Reps)
	if err != nil {
		return nil, err
	}
	variants := []variant{
		{name: "pure auto (gcc)", src: apps.LamaSrc, defs: defs,
			init: "initell", entry: "run",
			cfg: core.Config{Parallelize: true, Backend: comp.BackendGCC}},
		{name: "pure auto (icc)", src: apps.LamaSrc, defs: defs,
			init: "initell", entry: "run",
			cfg: core.Config{Parallelize: true, Backend: comp.BackendICC}},
		{name: "manual static (gcc)", src: apps.LamaManualSrc, defs: defs,
			init: "initell", entry: "run",
			cfg: core.Config{Backend: comp.BackendGCC}},
		{name: "manual static (icc)", src: apps.LamaManualSrc, defs: defs,
			init: "initell", entry: "run",
			cfg: core.Config{Backend: comp.BackendICC, Vectorize: true}},
	}
	for _, v := range variants {
		s, err := measure(v, p.Cores, p.Reps)
		if err != nil {
			return nil, err
		}
		d.Series = append(d.Series, s)
	}
	return d, nil
}

// Fig10 renders the LAMA execution times (paper Fig. 10).
func (d *LamaData) Fig10() *Figure {
	return &Figure{
		ID:    "Fig 10",
		Title: fmt.Sprintf("LAMA ELL sparse matrix-vector multiplication, execution time (%d rows, %d nnz/row)", d.P.LamaRows, d.P.LamaNNZ),
		Kind:  "time", Cores: sortedCores(d.P.Cores),
		Series: d.Series, Baseline: d.SeqGCC, BaseName: "gcc -O2 analog",
		Notes: []string{
			"indirect addressing: classic polyhedral tools cannot parallelize this code at all",
			"the hand-written kernel avoids the per-row pure call and stays slightly ahead",
		},
	}
}

// Fig11 renders the LAMA speedups (paper Fig. 11).
func (d *LamaData) Fig11() *Figure {
	return d.Fig10().Speedup("Fig 11", "LAMA ELL SpMV, speedup vs sequential GCC")
}

// Fig2 demonstrates the tiling legality example of the paper's Fig. 2:
// the dependence set {(1,0),(0,1),(1,-1)} forbids rectangular tiling
// until the nest is sheared by one, after which all distances are
// non-negative and the green tiling of the figure becomes legal.
func Fig2() string {
	n := &poly.Nest{Iters: []string{"i", "j"}}
	s := poly.NewSystem()
	s.AddLowerBound("i", poly.NewAffine(1))
	s.AddUpperBound("i", poly.NewAffine(14))
	s.AddLowerBound("j", poly.NewAffine(1))
	s.AddUpperBound("j", poly.NewAffine(14))
	n.Domain = s
	st := &poly.Statement{ID: 0}
	st.Writes = []poly.Access{{Array: "A", Write: true, Subs: []poly.Affine{poly.Var("i"), poly.Var("j")}}}
	st.Reads = []poly.Access{
		{Array: "A", Subs: []poly.Affine{poly.Var("i").Sub(poly.NewAffine(1)), poly.Var("j")}},
		{Array: "A", Subs: []poly.Affine{poly.Var("i"), poly.Var("j").Sub(poly.NewAffine(1))}},
		{Array: "A", Subs: []poly.Affine{poly.Var("i").Sub(poly.NewAffine(1)), poly.Var("j").Add(poly.NewAffine(1))}},
	}
	n.Stmts = []*poly.Statement{st}

	var b strings.Builder
	b.WriteString("Fig 2 — iteration-space dependences and tiling legality\n")
	deps := poly.AnalyzeDeps(n)
	b.WriteString("dependences before shearing:\n")
	for _, d := range deps {
		fmt.Fprintf(&b, "  %v\n", d)
	}
	fmt.Fprintf(&b, "rectangular tiling legal: %v (the red tiling of Fig. 2, left)\n", poly.Permutable(n, deps))
	f, ok := poly.LegalSkew(deps, 0)
	fmt.Fprintf(&b, "legal shearing factor: %d (ok=%v)\n", f, ok)
	skewed := poly.ApplySkew(n, 0, f)
	sdeps := poly.AnalyzeDeps(skewed)
	b.WriteString("dependences after j' = j + i shearing:\n")
	for _, d := range sdeps {
		fmt.Fprintf(&b, "  %v\n", d)
	}
	fmt.Fprintf(&b, "rectangular tiling legal: %v (the green tiling of Fig. 2, right)\n", poly.Permutable(skewed, sdeps))
	return b.String()
}
