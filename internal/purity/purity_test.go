package purity

import (
	"strings"
	"testing"

	"purec/internal/parser"
	"purec/internal/sema"
)

// run parses+checks src and returns the purity result. Semantic errors
// fail the test; purity violations are returned for inspection.
func run(t *testing.T, src string) *Result {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return Check(info)
}

func wantOK(t *testing.T, src string) *Result {
	t.Helper()
	r := run(t, src)
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected purity errors:\n%v", err)
	}
	return r
}

func wantErr(t *testing.T, src, fragment string) {
	t.Helper()
	r := run(t, src)
	err := r.Err()
	if err == nil {
		t.Fatalf("expected purity error containing %q, got none", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("expected error containing %q, got:\n%v", fragment, err)
	}
}

// --- The paper's listings ---

// Listing 2: the valid subset.
func TestListing2ValidOperations(t *testing.T) {
	r := wantOK(t, `
int* globalPtr;

pure int* func2(pure int* p1, int p2) {
    int a = p2;
    int b = a + 42;
    int* c = (int*)malloc(3 * sizeof(int));
    pure int* ptr = p1;
    pure int* extPtr2;
    extPtr2 = (pure int*)globalPtr;
    pure int* extPtr3;
    extPtr3 = (pure int*)func2(p1, p2);
    return c;
}
`)
	if !r.PureFuncs["func2"] {
		t.Error("func2 must verify as pure")
	}
}

// Listing 2 line 11: int* extPtr1 = globalPtr; // invalid
func TestListing2ExternalPointerWithoutCast(t *testing.T) {
	wantErr(t, `
int* globalPtr;
pure int* f(pure int* p1, int p2) {
    int* extPtr1 = globalPtr;
    return extPtr1;
}
`, "external data")
}

// Listing 2 line 14: func1(); // invalid — calling an impure function.
func TestListing2CallImpure(t *testing.T) {
	wantErr(t, `
void func1(void) { }
pure int f(int x) {
    func1();
    return x;
}
`, "calls impure function func1")
}

// Listing 4: intPtr = extPtr; // invalid
func TestListing4AssignExternalToPlainPointer(t *testing.T) {
	wantErr(t, `
pure int g(pure int* extPtr) {
    pure int* intPtr = (pure int*)extPtr;
    int* bad;
    bad = (int*)extPtr;
    return intPtr[0];
}
`, "pure")
}

// Listing 3: valid pure-cast assignment.
func TestListing3PureCast(t *testing.T) {
	wantOK(t, `
float* external;
pure float f(int i) {
    pure float* internal = (pure float*)external;
    return internal[i];
}
`)
}

// Listing 7: the matmul kernel functions must verify.
func TestListing7MatmulPure(t *testing.T) {
	r := wantOK(t, `
float **A, **Bt, **C;

pure float mult(float a, float b) {
    return a * b;
}

pure float dot(pure float* a, pure float* b, int size) {
    float res = 0.0f;
    for (int i = 0; i < size; ++i)
        res += mult(a[i], b[i]);
    return res;
}

int main(void) {
    for (int i = 0; i < 64; ++i)
        for (int j = 0; j < 64; ++j)
            C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], 64);
    return 0;
}
`)
	if !r.PureFuncs["mult"] || !r.PureFuncs["dot"] {
		t.Error("mult and dot must verify as pure")
	}
	if r.PureFuncs["main"] {
		t.Error("main must not be pure")
	}
}

// --- Hashset behaviour ---

func TestPureMayCallPureBuiltins(t *testing.T) {
	wantOK(t, `
pure double f(double x) {
    return sin(x) + cos(x) + log(x) + sqrt(x) + fabs(x);
}
`)
}

func TestPureMayCallItselfRecursively(t *testing.T) {
	wantOK(t, `
pure int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
`)
}

func TestMutualRecursionBetweenPureFunctions(t *testing.T) {
	wantOK(t, `
pure int isOdd(int n);
pure int isEven(int n) {
    if (n == 0) return 1;
    return isOdd(n - 1);
}
pure int isOdd(int n) {
    if (n == 0) return 0;
    return isEven(n - 1);
}
`)
}

func TestPureCallsPrintfRejected(t *testing.T) {
	wantErr(t, `
pure int f(int x) {
    printf("%d", x);
    return x;
}
`, "unknown function printf")
}

func TestFailedPureRemovedFromHashset(t *testing.T) {
	r := run(t, `
int g;
pure int bad(int x) {
    g = x;
    return x;
}
pure int good(int x) {
    return bad(x);
}
`)
	if r.Err() == nil {
		t.Fatal("expected violation")
	}
	if r.PureFuncs["bad"] {
		t.Error("bad must be removed from the pure set")
	}
	if r.IsPure("bad") {
		t.Error("IsPure(bad) must be false")
	}
}

// --- Side-effect rules ---

func TestGlobalWriteRejected(t *testing.T) {
	wantErr(t, `
int counter;
pure int f(int x) {
    counter = counter + 1;
    return x;
}
`, "modifies global counter")
}

func TestGlobalIncrementRejected(t *testing.T) {
	wantErr(t, `
int counter;
pure int f(int x) {
    counter++;
    return x;
}
`, "modifies global")
}

func TestParameterWriteRejected(t *testing.T) {
	wantErr(t, `
pure int f(int x) {
    x = 3;
    return x;
}
`, "modifies parameter x")
}

func TestStoreThroughParamPointerRejected(t *testing.T) {
	wantErr(t, `
pure int f(pure int* p) {
    p[0] = 1;
    return 0;
}
`, "stores through parameter p")
}

func TestStoreThroughGlobalPointerRejected(t *testing.T) {
	wantErr(t, `
int* gp;
pure int f(int x) {
    gp[0] = x;
    return x;
}
`, "stores through global gp")
}

func TestStoreThroughDerefGlobalRejected(t *testing.T) {
	wantErr(t, `
int* gp;
pure int f(int x) {
    *gp = x;
    return x;
}
`, "stores through global gp")
}

func TestLocalArrayWriteAllowed(t *testing.T) {
	wantOK(t, `
pure int f(int n) {
    int a[16];
    for (int i = 0; i < 16; i++)
        a[i] = i * n;
    return a[3];
}
`)
}

func TestLocalMallocWriteAllowed(t *testing.T) {
	wantOK(t, `
pure int f(int n) {
    int* p = (int*)malloc(16 * sizeof(int));
    p[0] = n;
    int r = p[0];
    free(p);
    return r;
}
`)
}

func TestLocalScalarMutationAllowed(t *testing.T) {
	wantOK(t, `
pure int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s += i;
        s++;
    }
    return s;
}
`)
}

// --- free rules (Sect. 3.2) ---

func TestFreeOfParameterRejected(t *testing.T) {
	wantErr(t, `
pure int f(pure int* p) {
    free((int*)p);
    return 0;
}
`, "free may only release memory allocated with malloc in the same function")
}

func TestFreeOfGlobalRejected(t *testing.T) {
	wantErr(t, `
int* gp;
pure int f(int x) {
    free(gp);
    return x;
}
`, "free may only release")
}

func TestFreeOfLocalMallocAllowed(t *testing.T) {
	wantOK(t, `
pure int f(int n) {
    int* p = (int*)malloc(8);
    free(p);
    return n;
}
`)
}

// --- pure pointer rules (Sect. 3.1) ---

func TestPurePointerSingleAssignment(t *testing.T) {
	wantErr(t, `
int* gp;
pure int f(int x) {
    pure int* p;
    p = (pure int*)gp;
    p = (pure int*)gp;
    return p[0];
}
`, "assigned more than once")
}

func TestPurePointerInitCountsAsAssignment(t *testing.T) {
	wantErr(t, `
int* gp;
pure int f(pure int* q) {
    pure int* p = q;
    p = (pure int*)gp;
    return p[0];
}
`, "assigned more than once")
}

func TestPurePointerContentNotWritable(t *testing.T) {
	wantErr(t, `
pure int f(pure int* q) {
    pure int* p = q;
    p[1] = 3;
    return 0;
}
`, "stores through pure pointer p")
}

func TestPureReturnNeedsCast(t *testing.T) {
	// extPtr3 = (pure int*)func2(...) is valid; without the cast the
	// assignment is rejected.
	wantErr(t, `
pure int* id(pure int* p, int n) { return (int*)malloc(4); }
pure int f(pure int* p) {
    pure int* q;
    q = id(p, 1);
    return q[0];
}
`, "must be assigned pure data")
}

func TestPureCastToPlainPointerRejected(t *testing.T) {
	wantErr(t, `
int* gp;
pure int f(int x) {
    int* p;
    p = (pure int*)gp;
    return p[0];
}
`, "cannot assign pure data to non-pure pointer")
}

// Pure-pointer write protection also applies outside pure functions.
func TestImpureFunctionCannotWriteThroughPurePointer(t *testing.T) {
	wantErr(t, `
int main(void) {
    int buf[4];
    pure int* p = (pure int*)buf;
    p[0] = 1;
    return 0;
}
`, "stores through pure pointer p")
}

func TestPointerParamOfPureFunctionMustBePure(t *testing.T) {
	wantErr(t, `
pure int f(int* p) {
    return p[0];
}
`, "pointer parameter p must be declared pure")
}

// Reading globals is allowed (pure functions may depend on globals like
// GCC's __attribute__((pure)) semantics — only writes are side-effects).
func TestReadingGlobalAllowed(t *testing.T) {
	wantOK(t, `
int scale;
pure int f(int x) {
    return x * scale;
}
`)
}

func TestHeatKernelVerifies(t *testing.T) {
	wantOK(t, `
pure float avg(pure float* up, pure float* mid, pure float* down, int j) {
    return 0.25f * (up[j] + mid[j - 1] + mid[j + 1] + down[j]);
}
`)
}

func TestNestedLoopLocalBufferVerifies(t *testing.T) {
	wantOK(t, `
pure float filter(pure float* px, int bands) {
    float acc[8];
    for (int b = 0; b < 8; b++)
        acc[b] = 0.0f;
    for (int b = 0; b < bands; b++)
        acc[b % 8] += px[b] * 0.5f;
    float r = 0.0f;
    for (int b = 0; b < 8; b++)
        r += acc[b];
    return r;
}
`)
}
