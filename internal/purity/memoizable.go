package purity

import (
	"purec/internal/ast"
	"purec/internal/memo"
	"purec/internal/sema"
	"purec/internal/types"
)

// Memoizable computes which pure functions may have their calls served
// from a memoization table keyed by (function, scalar argument values).
// Purity (verified by Check and carried on the pure markers) makes a
// function side-effect free, but memoizing additionally requires the
// result to be a function of the argument values alone:
//
//   - every parameter is scalar (int or float) — pointer arguments make
//     the result depend on pointed-to memory, which the key cannot
//     capture — and there are at most memo.MaxArgs of them;
//   - the return type is scalar, so the result fits a table cell;
//   - the body reads no globals: pure functions may read global state,
//     but a caller can mutate it between calls, so a cached result
//     would go stale;
//   - the body calls nothing but side-effect-free math builtins and
//     other global-free pure functions. malloc/free are excluded even
//     though the paper's hashset admits them: serving a cached result
//     skips the allocation, which would make per-Process heap
//     accounting depend on cache state.
//
// Helper callees only need the body conditions (a pointer-taking pure
// helper operating on caller-local data is still deterministic), so the
// analysis runs in two steps: a fixpoint for "global-free" bodies, then
// the signature filter. Like the compiler's inliner, it trusts the pure
// markers in info — run it on a checked model whose purity was already
// verified.
func Memoizable(info *sema.Info) map[string]bool {
	// globalFree starts as every pure user function and shrinks until no
	// member reads a global or calls outside the set.
	globalFree := map[string]*ast.FuncDecl{}
	for name, sig := range info.Funcs {
		if sig.Pure && !sig.Builtin && sig.Decl != nil && sig.Decl.Body != nil {
			globalFree[name] = sig.Decl
		}
	}
	for changed := true; changed; {
		changed = false
		for name, fd := range globalFree {
			if !bodyGlobalFree(info, fd, globalFree) {
				delete(globalFree, name)
				changed = true
			}
		}
	}

	out := map[string]bool{}
	for name := range globalFree {
		if scalarSignature(info.Funcs[name]) {
			out[name] = true
		}
	}
	return out
}

// bodyGlobalFree reports whether fd's body references no globals and
// calls only math builtins or functions currently in the safe set.
func bodyGlobalFree(info *sema.Info, fd *ast.FuncDecl, safe map[string]*ast.FuncDecl) bool {
	ok := true
	ast.Walk(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if sym := info.Ref[x]; sym != nil && sym.Kind == sema.SymGlobal {
				ok = false
			}
		case *ast.CallExpr:
			name := x.Fun.Name
			if _, isSafe := safe[name]; isSafe {
				break
			}
			if name == "malloc" || name == "free" || !sema.IsPureBuiltin(name) {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// scalarSignature reports whether sig is all-scalar and small enough
// for a memo key.
func scalarSignature(sig *sema.Sig) bool {
	if sig == nil || len(sig.Params) > memo.MaxArgs {
		return false
	}
	if sig.Ret == nil || (sig.Ret.Kind != types.Int && sig.Ret.Kind != types.Float) {
		return false
	}
	for _, p := range sig.Params {
		if p == nil || (p.Kind != types.Int && p.Kind != types.Float) {
			return false
		}
	}
	return true
}
