package purity

import (
	"testing"

	"purec/internal/parser"
	"purec/internal/sema"
)

// memoRun parses+checks src, verifies purity, and returns the
// memoizable set.
func memoRun(t *testing.T, src string) map[string]bool {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	if err := Check(info).Err(); err != nil {
		t.Fatalf("purity: %v", err)
	}
	return Memoizable(info)
}

func TestMemoizableScalarPure(t *testing.T) {
	m := memoRun(t, `
pure int square(int x) { return x * x; }
pure float mix(float a, float b) { return a * 0.5f + b * 0.5f; }
int main(void) { return square(3) + (int)mix(1.0f, 2.0f); }
`)
	if !m["square"] || !m["mix"] {
		t.Fatalf("scalar pure functions not memoizable: %v", m)
	}
}

func TestMemoizableRejectsPointerParams(t *testing.T) {
	m := memoRun(t, `
pure float sum(pure float* v, int n) {
    float s = 0.0f;
    for (int i = 0; i < n; i++) s += v[i];
    return s;
}
int main(void) { float a[4]; return (int)sum((pure float*)a, 4); }
`)
	if m["sum"] {
		t.Fatal("pointer-taking function must not be memoizable")
	}
}

func TestMemoizableRejectsGlobalReaders(t *testing.T) {
	m := memoRun(t, `
int scale;
pure int f(int x) { return x * scale; }
pure int g(int x) { return f(x) + 1; }
pure int h(int x) { return x + 1; }
int main(void) { scale = 2; return f(1) + g(1) + h(1); }
`)
	if m["f"] {
		t.Fatal("global-reading function must not be memoizable")
	}
	if m["g"] {
		t.Fatal("transitive global read through f must disqualify g")
	}
	if !m["h"] {
		t.Fatal("independent scalar function must stay memoizable")
	}
}

func TestMemoizableRejectsMallocFree(t *testing.T) {
	m := memoRun(t, `
pure int f(int x) {
    int* p = (int*)malloc(4 * sizeof(int));
    p[0] = x;
    int r = p[0];
    free(p);
    return r;
}
int main(void) { return f(3); }
`)
	if m["f"] {
		t.Fatal("malloc/free bodies must not be memoizable (heap accounting)")
	}
}

func TestMemoizableAllowsMathBuiltinsAndHelpers(t *testing.T) {
	m := memoRun(t, `
pure float helper(float x) { return sqrt(x) + sin(x); }
pure float f(float x) { return helper(x) * 2.0f; }
int main(void) { return (int)f(2.0f); }
`)
	if !m["helper"] || !m["f"] {
		t.Fatalf("math-only functions must be memoizable: %v", m)
	}
}

func TestMemoizableRecursion(t *testing.T) {
	m := memoRun(t, `
pure int fib(int n) {
    if (n < 2)
        return n;
    return fib(n - 1) + fib(n - 2);
}
int main(void) { return fib(10); }
`)
	if !m["fib"] {
		t.Fatal("self-recursive scalar pure function must be memoizable")
	}
}

func TestMemoizableRejectsTooManyArgs(t *testing.T) {
	m := memoRun(t, `
pure int f(int a, int b, int c, int d, int e) { return a + b + c + d + e; }
int main(void) { return f(1, 2, 3, 4, 5); }
`)
	if m["f"] {
		t.Fatal("more than memo.MaxArgs parameters must bypass memoization")
	}
}

func TestMemoizableAllowsLocalArrayHelper(t *testing.T) {
	// A pointer-taking helper on caller-local data keeps the caller
	// memoizable (the helper itself is not).
	m := memoRun(t, `
pure float dot(pure float* a, pure float* b, int n) {
    float s = 0.0f;
    for (int i = 0; i < n; i++) s += a[i] * b[i];
    return s;
}
pure float f(float x) {
    float v[4];
    for (int i = 0; i < 4; i++) v[i] = x + (float)i;
    return dot((pure float*)v, (pure float*)v, 4);
}
int main(void) { return (int)f(1.0f); }
`)
	if m["dot"] {
		t.Fatal("pointer-taking helper must not be memoizable itself")
	}
	if !m["f"] {
		t.Fatal("caller with scalar signature and local data must be memoizable")
	}
}
