// Package purity implements the paper's verification pass for pure
// functions (Sect. 3.2).
//
// A function marked pure must not change the state of any variable
// outside its scope. The pass verifies, per the paper:
//
//   - a pure function only calls functions from the pure hashset, which is
//     seeded with the side-effect-free C standard functions (sin, cos,
//     log, ...) plus malloc and free, and contains every function declared
//     pure (including the function itself, enabling recursion);
//   - free only releases memory that was allocated by malloc inside the
//     same pure function;
//   - assignments never modify function-external data: globals and
//     parameters are read-only, external pointers may only be read after a
//     (pure T*) cast into a pure-declared pointer (Listings 3 and 4);
//   - pure pointers are assigned at most once and their content is never
//     written (Sect. 3.1);
//   - pointer parameters of pure functions must themselves be declared
//     pure, which is what lets callers pass read-only views.
//
// Unlike GCC's __attribute__((pure)), which is an unchecked programmer
// promise, this pass rejects the program when a marked function is not
// actually side-effect free — that distinction is the paper's main point.
package purity

import (
	"fmt"
	"strings"

	"purec/internal/ast"
	"purec/internal/sema"
	"purec/internal/token"
)

// Result reports the verified purity information for a translation unit.
type Result struct {
	// PureFuncs contains the user-defined functions that were declared
	// pure and passed verification.
	PureFuncs map[string]bool
	// Errors lists every purity violation found.
	Errors []error
}

// IsPure reports whether name may be called from a pure context: either a
// verified pure user function or one of the pure standard functions of
// the initial hashset.
func (r *Result) IsPure(name string) bool {
	return r.PureFuncs[name] || sema.IsPureBuiltin(name)
}

// Err returns all violations joined, or nil.
func (r *Result) Err() error {
	if len(r.Errors) == 0 {
		return nil
	}
	msgs := make([]string, len(r.Errors))
	for i, e := range r.Errors {
		msgs[i] = e.Error()
	}
	return fmt.Errorf("%s", strings.Join(msgs, "\n"))
}

// Check verifies all pure-declared functions of the analyzed file.
// The returned Result is usable even when Err() != nil.
func Check(info *sema.Info) *Result {
	c := &checker{
		info: info,
		res:  &Result{PureFuncs: map[string]bool{}},
	}
	// Seed the hashset with every function *declared* pure; the paper
	// inserts names first so that recursion and mutual recursion among
	// pure functions verify (Sect. 3.2).
	for name, sig := range info.Funcs {
		if sig.Pure {
			c.res.PureFuncs[name] = true
		}
	}
	for _, d := range info.File.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Pure {
			c.checkPureFunc(fd)
		} else {
			c.checkImpureFunc(fd)
		}
	}
	c.checkGlobalPurePointers()
	// Functions that failed verification are removed from the set so
	// downstream parallelization never trusts them.
	for name := range c.failed {
		delete(c.res.PureFuncs, name)
	}
	return c.res
}

type prov int

const (
	provUnknown  prov = iota
	provLocal         // points into memory created in this function (malloc, &local, local array)
	provPure          // read-only view of external data (pure pointer)
	provExternal      // external data reachable for writing — forbidden source
)

type checker struct {
	info   *sema.Info
	res    *Result
	failed map[string]bool

	fn  *ast.FuncDecl
	prv map[*sema.Symbol]prov
	// pureAssigns counts assignments to pure pointers (max one) inside
	// the pure function being checked; pureAssignsGlobal does the same
	// for pure pointers assigned in impure functions.
	pureAssigns       map[*sema.Symbol]int
	pureAssignsGlobal map[*sema.Symbol]int
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.res.Errors = append(c.res.Errors, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
	if c.fn != nil && c.fn.Pure {
		if c.failed == nil {
			c.failed = map[string]bool{}
		}
		c.failed[c.fn.Name] = true
	}
}

// ----------------------------------------------------------------------------
// Pure function verification

func (c *checker) checkPureFunc(fd *ast.FuncDecl) {
	c.fn = fd
	c.prv = map[*sema.Symbol]prov{}
	c.pureAssigns = map[*sema.Symbol]int{}
	defer func() { c.fn = nil }()

	// Parameter rules: pointer parameters must be pure.
	for _, p := range fd.Params {
		if len(p.Type.Ptrs) > 0 && !p.Type.Ptrs[len(p.Type.Ptrs)-1].Pure {
			c.errorf(p.NamePos, "pure function %s: pointer parameter %s must be declared pure", fd.Name, p.Name)
		}
	}
	for _, sym := range c.info.FuncLocals[fd.Name] {
		if sym.Kind == sema.SymParam {
			if sym.Pure {
				c.prv[sym] = provPure
			} else if sym.Type.IsPtr() {
				c.prv[sym] = provExternal
			}
		}
	}
	c.stmts(fd.Body.List)
}

func (c *checker) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.DeclStmt:
		for _, d := range x.Decls {
			c.localDecl(d)
		}
	case *ast.ExprStmt:
		c.expr(x.X)
	case *ast.BlockStmt:
		c.stmts(x.List)
	case *ast.IfStmt:
		c.expr(x.Cond)
		c.stmt(x.Then)
		if x.Else != nil {
			c.stmt(x.Else)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			c.stmt(x.Init)
		}
		if x.Cond != nil {
			c.expr(x.Cond)
		}
		if x.Post != nil {
			c.expr(x.Post)
		}
		c.stmt(x.Body)
	case *ast.WhileStmt:
		c.expr(x.Cond)
		c.stmt(x.Body)
	case *ast.DoStmt:
		c.stmt(x.Body)
		c.expr(x.Cond)
	case *ast.ReturnStmt:
		if x.X != nil {
			c.expr(x.X)
		}
	case *ast.SwitchStmt:
		c.expr(x.Tag)
		for _, cl := range x.Cases {
			c.stmts(cl.Body)
		}
	}
}

func (c *checker) localDecl(d *ast.VarDecl) {
	sym := c.symOf(d)
	if sym == nil {
		return
	}
	if sym.IsArray() {
		c.prv[sym] = provLocal
		return
	}
	if d.Init == nil {
		return
	}
	c.expr(d.Init)
	if sym.Type.IsPtr() {
		c.assignPointer(sym, d.Init, d.Pos(), true)
	}
}

// symOf finds the sema symbol for a local declaration.
func (c *checker) symOf(d *ast.VarDecl) *sema.Symbol {
	for _, s := range c.info.FuncLocals[c.fn.Name] {
		if s.Decl == d {
			return s
		}
	}
	return nil
}

// expr walks an expression inside a pure function, flagging violations.
func (c *checker) expr(e ast.Expr) {
	switch x := e.(type) {
	case nil:
		return
	case *ast.AssignExpr:
		c.expr(x.RHS)
		c.checkWrite(x.LHS, x.RHS, x.Pos(), x.Op == token.ASSIGN)
	case *ast.UnaryExpr:
		if x.Op == token.INC || x.Op == token.DEC {
			c.checkWrite(x.X, nil, x.Pos(), false)
			return
		}
		c.expr(x.X)
	case *ast.PostfixExpr:
		c.checkWrite(x.X, nil, x.Pos(), false)
	case *ast.CallExpr:
		c.call(x)
	case *ast.BinaryExpr:
		c.expr(x.X)
		c.expr(x.Y)
	case *ast.CondExpr:
		c.expr(x.Cond)
		c.expr(x.Then)
		c.expr(x.Else)
	case *ast.IndexExpr:
		c.expr(x.X)
		c.expr(x.Index)
	case *ast.MemberExpr:
		c.expr(x.X)
	case *ast.CastExpr:
		c.expr(x.X)
	case *ast.ParenExpr:
		c.expr(x.X)
	case *ast.SizeofExpr:
		// compile-time only
	}
}

func (c *checker) call(x *ast.CallExpr) {
	name := x.Fun.Name
	for _, a := range x.Args {
		c.expr(a)
	}
	if name == "free" {
		if len(x.Args) == 1 && c.classify(x.Args[0]) != provLocal {
			c.errorf(x.Pos(), "pure function %s: free may only release memory allocated with malloc in the same function (paper Sect. 3.2)", c.fn.Name)
		}
		return
	}
	if c.res.PureFuncs[name] || sema.IsPureBuiltin(name) {
		return
	}
	if _, known := c.info.Funcs[name]; known {
		c.errorf(x.Pos(), "pure function %s calls impure function %s (Listing 2)", c.fn.Name, name)
		return
	}
	c.errorf(x.Pos(), "pure function %s calls unknown function %s, which cannot be verified pure", c.fn.Name, name)
}

// checkWrite validates a store to lhs. rhs is the assigned expression for
// plain assignments (nil for ++/--/compound), isPlain marks `=`.
func (c *checker) checkWrite(lhs ast.Expr, rhs ast.Expr, pos token.Pos, isPlain bool) {
	switch x := lhs.(type) {
	case *ast.Ident:
		sym := c.info.Ref[x]
		if sym == nil {
			return
		}
		switch sym.Kind {
		case sema.SymGlobal:
			c.errorf(pos, "pure function %s modifies global %s (side-effect)", c.fn.Name, sym.Name)
		case sema.SymParam:
			c.errorf(pos, "pure function %s modifies parameter %s (parameters are read-only in pure functions)", c.fn.Name, sym.Name)
		case sema.SymLocal:
			if sym.Type.IsPtr() {
				c.assignPointer(sym, rhs, pos, isPlain)
			}
		}
	case *ast.IndexExpr:
		c.expr(x.Index)
		c.checkStoreBase(x.X, pos)
	case *ast.UnaryExpr:
		if x.Op == token.MUL {
			c.checkStoreBase(x.X, pos)
			return
		}
		c.errorf(pos, "invalid store target in pure function %s", c.fn.Name)
	case *ast.MemberExpr:
		if x.Arrow {
			c.checkStoreBase(x.X, pos)
			return
		}
		c.checkStoreBase(x.X, pos)
	case *ast.ParenExpr:
		c.checkWrite(x.X, rhs, pos, isPlain)
	default:
		c.errorf(pos, "invalid store target in pure function %s", c.fn.Name)
	}
}

// checkStoreBase validates that the object ultimately written through base
// was created inside the function scope (paper Listing 4: "If the data is
// assigned to a target which was declared outside of the scope, this code
// would imply a side-effect").
func (c *checker) checkStoreBase(base ast.Expr, pos token.Pos) {
	switch x := base.(type) {
	case *ast.Ident:
		sym := c.info.Ref[x]
		if sym == nil {
			return
		}
		switch sym.Kind {
		case sema.SymGlobal:
			c.errorf(pos, "pure function %s stores through global %s (side-effect)", c.fn.Name, sym.Name)
			return
		case sema.SymParam:
			c.errorf(pos, "pure function %s stores through parameter %s (side-effect)", c.fn.Name, sym.Name)
			return
		}
		if sym.IsArray() {
			return // local array: in-scope storage
		}
		if sym.Pure {
			c.errorf(pos, "pure function %s stores through pure pointer %s (pure pointers are read-only)", c.fn.Name, sym.Name)
			return
		}
		switch c.prv[sym] {
		case provLocal:
			// ok: locally allocated
		case provPure:
			c.errorf(pos, "pure function %s stores through pure pointer %s", c.fn.Name, sym.Name)
		default:
			c.errorf(pos, "pure function %s stores through pointer %s which may reference external data", c.fn.Name, sym.Name)
		}
	case *ast.IndexExpr:
		// multi-dimensional store a[i][j]: validate the ultimate base
		c.expr(x.Index)
		c.checkStoreBase(x.X, pos)
	case *ast.MemberExpr:
		c.checkStoreBase(x.X, pos)
	case *ast.ParenExpr:
		c.checkStoreBase(x.X, pos)
	case *ast.CastExpr:
		c.checkStoreBase(x.X, pos)
	case *ast.UnaryExpr:
		if x.Op == token.MUL {
			c.checkStoreBase(x.X, pos)
			return
		}
		c.errorf(pos, "pure function %s: unsupported store base", c.fn.Name)
	case *ast.BinaryExpr:
		// pointer arithmetic: the base pointer determines the object
		tl := c.info.ExprType[x.X]
		if tl != nil && tl.IsPtr() {
			c.checkStoreBase(x.X, pos)
			return
		}
		c.checkStoreBase(x.Y, pos)
	default:
		c.errorf(pos, "pure function %s: unsupported store base", c.fn.Name)
	}
}

// assignPointer enforces the pointer assignment rules of Sect. 3.1/3.2 for
// an assignment (or initialization) of rhs to the local pointer sym.
func (c *checker) assignPointer(sym *sema.Symbol, rhs ast.Expr, pos token.Pos, isPlain bool) {
	if sym.Pure {
		c.pureAssigns[sym]++
		if c.pureAssigns[sym] > 1 {
			c.errorf(pos, "pure pointer %s assigned more than once (pure pointers can only be assigned once)", sym.Name)
		}
		if rhs == nil {
			c.errorf(pos, "pure pointer %s cannot be modified in place", sym.Name)
			return
		}
		switch c.classify(rhs) {
		case provPure, provLocal:
			c.prv[sym] = provPure
		default:
			c.errorf(pos, "pure pointer %s must be assigned pure data — use a (pure %s) cast (Listing 3)", sym.Name, c.castHint(sym))
		}
		return
	}
	if rhs == nil {
		return // ++/-- on a local pointer moves within its object
	}
	switch c.classify(rhs) {
	case provLocal:
		c.prv[sym] = provLocal
	case provPure:
		c.errorf(pos, "cannot assign pure data to non-pure pointer %s (would allow external writes)", sym.Name)
		c.prv[sym] = provExternal
	case provExternal:
		c.errorf(pos, "pointer %s assigns function-external data; declare it pure and cast the source (Listing 4: intPtr = extPtr is invalid)", sym.Name)
		c.prv[sym] = provExternal
	default:
		c.prv[sym] = provUnknown
	}
}

func (c *checker) castHint(sym *sema.Symbol) string {
	if sym.Type != nil && sym.Type.Elem != nil {
		return sym.Type.Elem.String() + "*"
	}
	return "T*"
}

// classify determines the provenance of a pointer-valued expression.
func (c *checker) classify(e ast.Expr) prov {
	switch x := e.(type) {
	case *ast.Ident:
		sym := c.info.Ref[x]
		if sym == nil {
			return provUnknown
		}
		switch sym.Kind {
		case sema.SymGlobal:
			if sym.Pure {
				return provPure
			}
			return provExternal
		case sema.SymParam:
			if sym.Pure {
				return provPure
			}
			if sym.Type.IsPtr() {
				return provExternal
			}
			return provLocal
		case sema.SymLocal:
			if sym.IsArray() {
				return provLocal
			}
			if sym.Pure {
				return provPure
			}
			if p, ok := c.prv[sym]; ok {
				return p
			}
			return provUnknown
		}
		return provUnknown
	case *ast.CallExpr:
		if x.Fun.Name == "malloc" {
			return provLocal
		}
		// Pointers returned by (pure) functions must be laundered
		// through a pure cast before use (Listing 2, extPtr3).
		return provExternal
	case *ast.CastExpr:
		t := c.info.ExprType[x]
		if t != nil && t.IsPtr() && t.Pure {
			return provPure
		}
		return c.classify(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return c.addrProv(x.X)
		}
		return provUnknown
	case *ast.BinaryExpr:
		tl := c.info.ExprType[x.X]
		if tl != nil && tl.IsPtr() {
			return c.classify(x.X)
		}
		return c.classify(x.Y)
	case *ast.ParenExpr:
		return c.classify(x.X)
	case *ast.CondExpr:
		a, b := c.classify(x.Then), c.classify(x.Else)
		if a == provExternal || b == provExternal {
			return provExternal
		}
		if a == provUnknown || b == provUnknown {
			return provUnknown
		}
		if a == provPure || b == provPure {
			return provPure
		}
		return provLocal
	case *ast.IndexExpr:
		// Loading a pointer stored in an array: conservatively external.
		return provExternal
	case *ast.IntLit:
		return provLocal // NULL
	}
	return provUnknown
}

// addrProv classifies &expr by the storage of expr.
func (c *checker) addrProv(e ast.Expr) prov {
	switch x := e.(type) {
	case *ast.Ident:
		sym := c.info.Ref[x]
		if sym == nil {
			return provUnknown
		}
		switch sym.Kind {
		case sema.SymLocal:
			return provLocal
		case sema.SymParam:
			return provLocal // scalar parameter copy lives in the frame
		default:
			return provExternal
		}
	case *ast.IndexExpr:
		return c.classify(x.X)
	case *ast.MemberExpr:
		return c.addrProv(x.X)
	case *ast.ParenExpr:
		return c.addrProv(x.X)
	}
	return provUnknown
}

// ----------------------------------------------------------------------------
// Checks outside pure functions

// checkImpureFunc enforces the pure-pointer rules that hold everywhere:
// pure pointers are single-assignment and never written through, and pure
// casts may only be assigned to pure-declared pointers.
func (c *checker) checkImpureFunc(fd *ast.FuncDecl) {
	for _, a := range ast.Assignments(fd.Body) {
		if base, sym := c.writeBase(a.LHS); base != nil && sym != nil && sym.Pure {
			if !sameIdentTarget(a.LHS) {
				c.errorf(a.Pos(), "function %s stores through pure pointer %s (pure pointers are read-only)", fd.Name, sym.Name)
			}
		}
		// Direct reassignment of a pure pointer variable.
		if id, ok := a.LHS.(*ast.Ident); ok {
			sym := c.info.Ref[id]
			if sym != nil && sym.Pure {
				if c.pureAssignsGlobal == nil {
					c.pureAssignsGlobal = map[*sema.Symbol]int{}
				}
				c.pureAssignsGlobal[sym]++
				if c.pureAssignsGlobal[sym] > 1 || (sym.Decl != nil && sym.Decl.Init != nil) {
					c.errorf(a.Pos(), "pure pointer %s assigned more than once", sym.Name)
				}
			}
		}
	}
}

// writeBase returns the ultimate identifier written through by lhs, or nil.
func (c *checker) writeBase(lhs ast.Expr) (ast.Expr, *sema.Symbol) {
	switch x := lhs.(type) {
	case *ast.IndexExpr:
		return c.writeBase(x.X)
	case *ast.MemberExpr:
		if x.Arrow {
			return c.writeBase(x.X)
		}
		return c.writeBase(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.MUL {
			return c.writeBase(x.X)
		}
	case *ast.ParenExpr:
		return c.writeBase(x.X)
	case *ast.Ident:
		return x, c.info.Ref[x]
	}
	return nil, nil
}

// sameIdentTarget reports whether lhs is a bare identifier (variable
// reassignment rather than a store through it).
func sameIdentTarget(lhs ast.Expr) bool {
	_, ok := lhs.(*ast.Ident)
	return ok
}

// checkGlobalPurePointers verifies that file-scope pure pointers keep the
// single-assignment property across the program.
func (c *checker) checkGlobalPurePointers() {
	// Counting happens in checkImpureFunc/checkPureFunc via Ref symbols;
	// here we only validate initializers of global pure pointers.
	for _, g := range c.info.Globals {
		if !g.Pure || g.Decl == nil || g.Decl.Init == nil {
			continue
		}
		if _, ok := g.Decl.Init.(*ast.CastExpr); !ok {
			ct := c.info.ExprType[g.Decl.Init]
			if ct == nil || !ct.IsPtr() || !ct.Pure {
				c.res.Errors = append(c.res.Errors, fmt.Errorf("%s: global pure pointer %s must be initialized from a (pure T*) cast", g.Decl.Pos(), g.Name))
			}
		}
	}
}

// pureAssignsGlobal counts assignments to pure pointers outside pure
// functions (field declared on checker, initialized lazily).
