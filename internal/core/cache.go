package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"purec/internal/comp"
)

// CacheKey identifies a compiled Program by content: the source text
// plus every compile-relevant Config field. Run state (TeamSize,
// Stdout, cache controls) is excluded, so builds that differ only in
// how they will be run share one Program.
type CacheKey [sha256.Size]byte

// String returns the hex form of the key — the on-disk entry name and
// the program identity the daemon reports.
func (k CacheKey) String() string { return hex.EncodeToString(k[:]) }

// ParseCacheKey parses the hex form back into a key.
func ParseCacheKey(s string) (CacheKey, error) {
	var key CacheKey
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(key) {
		return key, fmt.Errorf("bad cache key %q", s)
	}
	copy(key[:], b)
	return key, nil
}

// Key computes the content address of a (source, Config) build — the
// identity under which the caches store it and the daemon quotas it.
func Key(src string, cfg Config) CacheKey {
	if cfg.FileName == "" {
		cfg.FileName = "program.c"
	}
	return cacheKey(src, cfg)
}

// cacheKey computes the content address of a build.
func cacheKey(src string, cfg Config) CacheKey {
	h := sha256.New()
	w := func(format string, args ...any) { fmt.Fprintf(h, format, args...) }
	w("src:%d:%s;", len(src), src)
	w("mode:%d;file:%s;par:%t;backend:%d;engine:%d;vec:%t;nofuse:%t;nobce:%t;noalias:%t;combine:%d;sparsepriv:%t;",
		cfg.Mode, cfg.FileName, cfg.Parallelize, cfg.Backend, cfg.Engine, cfg.Vectorize, cfg.NoFuse, cfg.NoBCE, cfg.NoAlias,
		cfg.Combine, cfg.SparsePrivates)
	w("memo:%t;memocap:%d;memoshards:%d;",
		cfg.Memoize, cfg.MemoCapacity, cfg.MemoShards)
	t := cfg.Transform
	w("tile:%t;sizes:%v;skew:%t;sched:%s;mintrip:%d;",
		t.Tile, t.TileSizes, t.Skew, t.Schedule, t.MinParallelTrip)
	writeMap := func(tag string, m map[string]string) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w("%s:%d;", tag, len(keys))
		for _, k := range keys {
			w("%d:%s=%d:%s;", len(k), k, len(m[k]), m[k])
		}
	}
	writeMap("def", cfg.Defines)
	writeMap("files", cfg.Files)
	var key CacheKey
	h.Sum(key[:0])
	return key
}

// BuildSource reports where a build came from.
type BuildSource int

// Build sources, cheapest-first.
const (
	// SourceMemory: the in-memory cache already held the Program
	// (including joining an in-flight singleflight build of it).
	SourceMemory BuildSource = iota
	// SourceDisk: the Program was restored from the persistent disk
	// cache — the pipeline front end did not run.
	SourceDisk
	// SourceCompiled: the full pipeline ran.
	SourceCompiled
)

var buildSourceNames = [...]string{"memory", "disk", "compiled"}

// String returns the source name ("memory", "disk", "compiled").
func (s BuildSource) String() string { return buildSourceNames[s] }

// cacheEntry is one in-flight or finished build. The sync.Once gives
// the cache singleflight behaviour: concurrent builders of the same key
// run the pipeline once and share the result.
type cacheEntry struct {
	once sync.Once
	prog *comp.Program
	art  *Artifact
	err  error
	// src records how the singleflight body obtained the Program
	// (SourceDisk or SourceCompiled); callers that joined the entry
	// after its insertion report SourceMemory instead.
	src BuildSource
	// done is set after the singleflight build finishes; eviction skips
	// entries that are still building so a capacity squeeze can never
	// drop an in-flight pipeline run.
	done atomic.Bool
}

// ProgramCache is a content-addressed, re-entrant cache of compiled
// Programs keyed by (source, Config) hash. Because Programs are
// immutable and all run state lives in Processes, serving the same
// Program to many concurrent builds is safe. Eviction is LRU: every hit
// promotes its key, and once the capacity is exceeded the
// least-recently-used finished entry is dropped (in-flight builds are
// never evicted).
type ProgramCache struct {
	mu      sync.Mutex
	max     int
	entries map[CacheKey]*cacheEntry
	order   []CacheKey
	hits    uint64
	misses  uint64
	// disk is the optional persistent layer (WithDisk): in-memory misses
	// consult it before running the pipeline, and finished builds are
	// written through to it.
	disk *DiskCache
}

// DefaultCache is the cache Build and BuildProgram use when Config.Cache
// is nil.
var DefaultCache = NewProgramCache(128)

// NewProgramCache creates a cache holding at most max programs (max < 1
// means 1).
func NewProgramCache(max int) *ProgramCache {
	if max < 1 {
		max = 1
	}
	return &ProgramCache{max: max, entries: map[CacheKey]*cacheEntry{}}
}

// WithDisk layers a persistent disk cache under the in-memory cache:
// misses consult it before running the pipeline front end, and finished
// builds are written through. Returns c for chaining.
func (c *ProgramCache) WithDisk(d *DiskCache) *ProgramCache {
	c.mu.Lock()
	c.disk = d
	c.mu.Unlock()
	return c
}

// Disk returns the layered disk cache (nil without one).
func (c *ProgramCache) Disk() *DiskCache {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disk
}

// build returns the cached program for (src, cfg), running the pipeline
// at most once per key.
func (c *ProgramCache) build(src string, cfg Config) (*comp.Program, *Artifact, bool, error) {
	prog, art, source, err := c.BuildDetail(src, cfg)
	return prog, art, source == SourceMemory, err
}

// BuildDetail is build with the cache layer that served the request
// made explicit: SourceMemory (in-memory hit, including joining an
// in-flight build), SourceDisk (restored from the persistent cache,
// front end skipped) or SourceCompiled (full pipeline).
func (c *ProgramCache) BuildDetail(src string, cfg Config) (*comp.Program, *Artifact, BuildSource, error) {
	if cfg.FileName == "" {
		cfg.FileName = "program.c"
	}
	key := cacheKey(src, cfg)
	c.mu.Lock()
	disk := c.disk
	e, hit := c.entries[key]
	if hit {
		c.hits++
		c.promote(key)
	} else {
		c.misses++
		e = &cacheEntry{}
		c.entries[key] = e
		c.order = append(c.order, key)
		c.evictOver()
	}
	c.mu.Unlock()
	e.once.Do(func() {
		defer e.done.Store(true)
		if disk != nil {
			if art, ok := disk.Load(src, key, cfg); ok {
				if prog, err := art.Compile(cfg); err == nil {
					e.art, e.prog, e.src = art, prog, SourceDisk
					return
				}
				// The entry revalidated but did not compile (a toolchain
				// whose Compile rejects what this one stored): fall back
				// to the full build, which overwrites the entry.
			}
		}
		e.src = SourceCompiled
		e.art, e.err = Front(src, cfg)
		if e.err == nil {
			e.prog, e.err = e.art.Compile(cfg)
		}
		if e.err == nil && disk != nil {
			// Write-through is best-effort: a full disk never blocks
			// serving the build.
			_ = disk.Store(key, cfg, e.art)
		}
	})
	if e.err != nil {
		// Failed builds are not worth a cache slot: drop the entry so
		// it neither evicts valid Programs nor reports as a hit.
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
			for i, k := range c.order {
				if k == key {
					c.order = append(c.order[:i], c.order[i+1:]...)
					break
				}
			}
		}
		c.mu.Unlock()
		return nil, nil, SourceCompiled, e.err
	}
	if hit {
		return e.prog, e.art, SourceMemory, nil
	}
	return e.prog, e.art, e.src, nil
}

// promote moves key to the most-recently-used end of the order (caller
// holds c.mu).
func (c *ProgramCache) promote(key CacheKey) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i], c.order[i+1:]...), key)
			return
		}
	}
}

// evictOver drops least-recently-used finished entries until the cache
// fits its capacity (caller holds c.mu). Entries whose singleflight
// build is still running are skipped — evicting them would detach a
// build other goroutines are waiting on and let a concurrent insert of
// the same key rerun the pipeline; if only in-flight entries remain the
// cache temporarily exceeds its capacity instead.
func (c *ProgramCache) evictOver() {
	for len(c.order) > c.max {
		evicted := false
		for i, k := range c.order {
			if e := c.entries[k]; e != nil && e.done.Load() {
				delete(c.entries, k)
				c.order = append(c.order[:i], c.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// Stats returns the hit/miss counters.
func (c *ProgramCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached programs.
func (c *ProgramCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset drops all entries and counters.
func (c *ProgramCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[CacheKey]*cacheEntry{}
	c.order = nil
	c.hits, c.misses = 0, 0
}
