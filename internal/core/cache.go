package core

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"purec/internal/comp"
)

// CacheKey identifies a compiled Program by content: the source text
// plus every compile-relevant Config field. Run state (TeamSize,
// Stdout, cache controls) is excluded, so builds that differ only in
// how they will be run share one Program.
type CacheKey [sha256.Size]byte

// cacheKey computes the content address of a build.
func cacheKey(src string, cfg Config) CacheKey {
	h := sha256.New()
	w := func(format string, args ...any) { fmt.Fprintf(h, format, args...) }
	w("src:%d:%s;", len(src), src)
	w("mode:%d;file:%s;par:%t;backend:%d;engine:%d;vec:%t;nofuse:%t;nobce:%t;noalias:%t;combine:%d;sparsepriv:%t;",
		cfg.Mode, cfg.FileName, cfg.Parallelize, cfg.Backend, cfg.Engine, cfg.Vectorize, cfg.NoFuse, cfg.NoBCE, cfg.NoAlias,
		cfg.Combine, cfg.SparsePrivates)
	w("memo:%t;memocap:%d;memoshards:%d;",
		cfg.Memoize, cfg.MemoCapacity, cfg.MemoShards)
	t := cfg.Transform
	w("tile:%t;sizes:%v;skew:%t;sched:%s;mintrip:%d;",
		t.Tile, t.TileSizes, t.Skew, t.Schedule, t.MinParallelTrip)
	writeMap := func(tag string, m map[string]string) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w("%s:%d;", tag, len(keys))
		for _, k := range keys {
			w("%d:%s=%d:%s;", len(k), k, len(m[k]), m[k])
		}
	}
	writeMap("def", cfg.Defines)
	writeMap("files", cfg.Files)
	var key CacheKey
	h.Sum(key[:0])
	return key
}

// cacheEntry is one in-flight or finished build. The sync.Once gives
// the cache singleflight behaviour: concurrent builders of the same key
// run the pipeline once and share the result.
type cacheEntry struct {
	once sync.Once
	prog *comp.Program
	art  *Artifact
	err  error
	// done is set after the singleflight build finishes; eviction skips
	// entries that are still building so a capacity squeeze can never
	// drop an in-flight pipeline run.
	done atomic.Bool
}

// ProgramCache is a content-addressed, re-entrant cache of compiled
// Programs keyed by (source, Config) hash. Because Programs are
// immutable and all run state lives in Processes, serving the same
// Program to many concurrent builds is safe. Eviction is LRU: every hit
// promotes its key, and once the capacity is exceeded the
// least-recently-used finished entry is dropped (in-flight builds are
// never evicted).
type ProgramCache struct {
	mu      sync.Mutex
	max     int
	entries map[CacheKey]*cacheEntry
	order   []CacheKey
	hits    uint64
	misses  uint64
}

// DefaultCache is the cache Build and BuildProgram use when Config.Cache
// is nil.
var DefaultCache = NewProgramCache(128)

// NewProgramCache creates a cache holding at most max programs (max < 1
// means 1).
func NewProgramCache(max int) *ProgramCache {
	if max < 1 {
		max = 1
	}
	return &ProgramCache{max: max, entries: map[CacheKey]*cacheEntry{}}
}

// build returns the cached program for (src, cfg), running the pipeline
// at most once per key.
func (c *ProgramCache) build(src string, cfg Config) (*comp.Program, *Artifact, bool, error) {
	key := cacheKey(src, cfg)
	c.mu.Lock()
	e, hit := c.entries[key]
	if hit {
		c.hits++
		c.promote(key)
	} else {
		c.misses++
		e = &cacheEntry{}
		c.entries[key] = e
		c.order = append(c.order, key)
		c.evictOver()
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.art, e.err = Front(src, cfg)
		if e.err == nil {
			e.prog, e.err = e.art.Compile(cfg)
		}
		e.done.Store(true)
	})
	if e.err != nil {
		// Failed builds are not worth a cache slot: drop the entry so
		// it neither evicts valid Programs nor reports as a hit.
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
			for i, k := range c.order {
				if k == key {
					c.order = append(c.order[:i], c.order[i+1:]...)
					break
				}
			}
		}
		c.mu.Unlock()
		return nil, nil, false, e.err
	}
	return e.prog, e.art, hit, nil
}

// promote moves key to the most-recently-used end of the order (caller
// holds c.mu).
func (c *ProgramCache) promote(key CacheKey) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i], c.order[i+1:]...), key)
			return
		}
	}
}

// evictOver drops least-recently-used finished entries until the cache
// fits its capacity (caller holds c.mu). Entries whose singleflight
// build is still running are skipped — evicting them would detach a
// build other goroutines are waiting on and let a concurrent insert of
// the same key rerun the pipeline; if only in-flight entries remain the
// cache temporarily exceeds its capacity instead.
func (c *ProgramCache) evictOver() {
	for len(c.order) > c.max {
		evicted := false
		for i, k := range c.order {
			if e := c.entries[k]; e != nil && e.done.Load() {
				delete(c.entries, k)
				c.order = append(c.order[:i], c.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// Stats returns the hit/miss counters.
func (c *ProgramCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached programs.
func (c *ProgramCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset drops all entries and counters.
func (c *ProgramCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[CacheKey]*cacheEntry{}
	c.order = nil
	c.hits, c.misses = 0, 0
}
