package core

import (
	"strings"
	"testing"

	"purec/internal/comp"
	"purec/internal/transform"
)

const matmulSrc = `#include <stdio.h>
#include <stdlib.h>
#define N 16

float **A, **Bt, **C;

pure float mult(float a, float b) {
    return a * b;
}

pure float dot(pure float* a, pure float* b, int size) {
    float res = 0.0f;
    for (int i = 0; i < size; ++i)
        res += mult(a[i], b[i]);
    return res;
}

void init(void) {
    A = (float**)malloc(N * sizeof(float*));
    Bt = (float**)malloc(N * sizeof(float*));
    C = (float**)malloc(N * sizeof(float*));
    for (int i = 0; i < N; i++) {
        A[i] = (float*)malloc(N * sizeof(float));
        Bt[i] = (float*)malloc(N * sizeof(float));
        C[i] = (float*)malloc(N * sizeof(float));
        for (int j = 0; j < N; j++) {
            A[i][j] = (float)(i + j);
            Bt[i][j] = (float)(i - j);
        }
    }
}

int main(void) {
    init();
    for (int i = 0; i < N; ++i)
        for (int j = 0; j < N; ++j)
            C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], N);
    float s = 0.0f;
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            s += C[i][j];
    return (int)s;
}
`

func TestPipelineStages(t *testing.T) {
	res, err := Build(matmulSrc, Config{Parallelize: true, TeamSize: 2, Transform: transform.Options{MinParallelTrip: -1}})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stages
	// PC-PrePro removed system includes.
	if strings.Contains(st.Stripped, "<stdio.h>") {
		t.Error("system includes must be stripped")
	}
	// GCC-E expanded the N macro.
	if strings.Contains(st.Expanded, "#define") || !strings.Contains(st.Expanded, "16") {
		t.Error("macro expansion failed")
	}
	// PC-CC marked the SCoP and substituted the pure call.
	if !strings.Contains(st.Marked, "#pragma scop") || !strings.Contains(st.Marked, "#pragma endscop") {
		t.Errorf("scop markers missing:\n%s", st.Marked)
	}
	if !strings.Contains(st.Marked, "tmpConst_dot_0") {
		t.Errorf("call substitution missing:\n%s", st.Marked)
	}
	// polycc inserted the OpenMP pragma and the call came back.
	if !strings.Contains(st.Transformed, "#pragma omp parallel for") {
		t.Errorf("omp pragma missing:\n%s", st.Transformed)
	}
	if strings.Contains(st.Transformed, "tmpConst_") {
		t.Errorf("placeholders must be restored:\n%s", st.Transformed)
	}
	// PC-PosPro restored includes and lowered pure.
	if !strings.HasPrefix(st.Final, "#include <stdio.h>") {
		t.Errorf("includes not reinserted:\n%s", st.Final[:80])
	}
	if strings.Contains(st.Final, "pure") {
		t.Errorf("pure keyword must be lowered in the final source:\n%s", st.Final)
	}
	if !strings.Contains(st.Final, "const float*") {
		t.Errorf("pure pointers must become const:\n%s", st.Final)
	}
	if res.SCoPs < 1 {
		t.Errorf("SCoPs: %d", res.SCoPs)
	}
}

// The parallelized program must compute the same result as the
// untransformed sequential build, on any team size and backend.
func TestPipelineSemanticsPreserved(t *testing.T) {
	seq, err := Build(matmulSrc, Config{Parallelize: false, TeamSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.Machine.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	for _, teams := range []int{1, 2, 4} {
		for _, be := range []comp.Backend{comp.BackendGCC, comp.BackendICC} {
			res, err := Build(matmulSrc, Config{Parallelize: true, TeamSize: teams, Backend: be, Transform: transform.Options{MinParallelTrip: -1}})
			if err != nil {
				t.Fatalf("teams=%d backend=%v: %v", teams, be, err)
			}
			got, err := res.Machine.RunMain()
			if err != nil {
				t.Fatalf("teams=%d backend=%v: %v", teams, be, err)
			}
			if got != want {
				t.Fatalf("teams=%d backend=%v: got %d want %d", teams, be, got, want)
			}
		}
	}
}

func TestPipelineMallocLoopParallelized(t *testing.T) {
	// The paper found (Sect. 4.3.1) that treating malloc as pure lets
	// the matrix-initialization loop be parallelized too. Our chain
	// reproduces this: init's loop contains malloc calls only, so it is
	// marked and transformed.
	res, err := Build(matmulSrc, Config{Parallelize: true, TeamSize: 2, Transform: transform.Options{MinParallelTrip: -1}})
	if err != nil {
		t.Fatal(err)
	}
	foundInit := false
	for _, l := range res.Report.Loops {
		if l.Func == "init" && l.ParallelLevel >= 0 {
			foundInit = true
		}
	}
	if !foundInit {
		t.Errorf("init's malloc loop should be parallelized (the paper's Fig. 3 surprise); report:\n%s", res.Report)
	}
}

func TestListing5RejectedByPipeline(t *testing.T) {
	src := `
pure int func(pure int* a, int idx) {
    return a[idx - 1] + a[idx];
}
int arr[100];
int main(void) {
    for (int i = 1; i < 100; i++)
        arr[i] = func((pure int*)arr, i);
    return 0;
}
`
	_, err := Build(src, Config{Parallelize: true})
	if err == nil || !strings.Contains(err.Error(), "Listing 5") {
		t.Fatalf("expected Listing-5 error, got %v", err)
	}
}

func TestPurityFailureStopsPipeline(t *testing.T) {
	src := `
int g;
pure int bad(int x) { g = x; return x; }
int main(void) { return bad(1); }
`
	_, err := Build(src, Config{Parallelize: true})
	if err == nil || !strings.Contains(err.Error(), "purity") {
		t.Fatalf("expected purity error, got %v", err)
	}
}

func TestDefinesInjection(t *testing.T) {
	src := `
int main(void) { return PROBLEM; }
`
	res, err := Build(src, Config{Defines: map[string]string{"PROBLEM": "77"}})
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Machine.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if v != 77 {
		t.Fatalf("got %d", v)
	}
}

func TestTilingThroughPipeline(t *testing.T) {
	res, err := Build(matmulSrc, Config{
		Parallelize: true,
		TeamSize:    2,
		Transform:   transform.Options{Tile: true, TileSizes: []int{4, 4}, MinParallelTrip: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stages.Transformed, "iT") {
		t.Errorf("tile loops missing:\n%s", res.Stages.Transformed)
	}
	got, err := res.Machine.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := Build(matmulSrc, Config{})
	want, _ := seq.Machine.RunMain()
	if got != want {
		t.Fatalf("tiled result %d want %d", got, want)
	}
}
