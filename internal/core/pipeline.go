// Package core drives the paper's complete compiler chain (Fig. 1):
//
//	C source
//	  → PC-PrePro   strip #include <...>            (internal/preproc)
//	  → GCC-E       expand macros and local includes (internal/preproc)
//	  → PC-CC       parse, type check, verify pure functions, mark SCoPs,
//	                substitute pure calls by tmpConst_* placeholders
//	                (internal/{parser,sema,purity,scop})
//	  → polycc      polyhedral transformation, OpenMP/simd pragma
//	                insertion (internal/{poly,transform})
//	  → restore     re-insert the substituted calls
//	  → PC-PosPro   re-insert system includes, lower pure to plain C
//	                (pure pointers become const, function purity is
//	                erased), exactly as described in Sect. 3.2
//	  → "GCC/ICC"   restart the front end on the generated source and
//	                compile to an executable machine (internal/comp)
//
// Per the paper, the chain restarts from the beginning on the transformed
// source ("we start the GCC toolchain from the beginning with the program
// file built at the end of our compiler pass"), which also guarantees the
// executed program is exactly the printed artifact.
package core

import (
	"fmt"
	"io"
	"sync/atomic"

	"purec/internal/ast"
	"purec/internal/comp"
	"purec/internal/parser"
	"purec/internal/preproc"
	"purec/internal/purity"
	"purec/internal/rt"
	"purec/internal/scop"
	"purec/internal/sema"
	"purec/internal/transform"
	"purec/internal/vra"
)

// Mode selects which parallelizer the chain models.
type Mode int

// Parallelizer modes.
const (
	// ModePure is the paper's chain: loop bodies may call verified pure
	// functions (and malloc/free).
	ModePure Mode = iota
	// ModePluTo models the classic polyhedral tool on its own: any
	// function call in a loop body disqualifies the nest, so only
	// manually inlined code is transformed (Sect. 4.2).
	ModePluTo
)

// Config controls one pipeline run. The compile-relevant fields (Mode,
// Defines, Files, Parallelize, Transform, Backend, Engine, Vectorize,
// NoFuse, NoBCE, NoAlias, Combine, SparsePrivates, Memoize,
// MemoCapacity, MemoShards) form the content-addressed program-cache
// key; TeamSize, Stdout and the cache controls are run state and never
// affect the compiled Program.
type Config struct {
	// Mode selects pure-aware (default) or classic polyhedral
	// parallelization.
	Mode Mode
	// FileName labels diagnostics.
	FileName string
	// Defines are injected object-like macros (like -DN=4096).
	Defines map[string]string
	// Files resolves local #include "..." directives.
	Files map[string]string
	// Parallelize enables the SCoP/polyhedral stages; when false the
	// pipeline produces the sequential baseline build.
	Parallelize bool
	// Transform configures the polyhedral stage (tiling, skewing,
	// schedule clause).
	Transform transform.Options
	// Backend selects the GCC or ICC compile analog.
	Backend comp.Backend
	// Engine selects closure-tree (default) or linearized-tape statement
	// execution in the compiled Program. Results are bit-identical either
	// way. Compile-relevant: part of the program-cache key.
	Engine comp.Engine
	// Vectorize enables the PluTo-SICA SIMD analog: fused-kernel
	// compilation of canonical reduction loops anywhere in the program.
	Vectorize bool
	// NoFuse disables the kernel-fusion engine (fusion is on by
	// default): element-wise affine innermost loops and the
	// ICC/Vectorize reduction kernels then execute through
	// per-iteration closure dispatch. Results are bit-identical either
	// way; the knob exists for A/B measurement (purebench Fig K1).
	// Compile-relevant: part of the program-cache key.
	NoFuse bool
	// NoBCE disables bounds-check elimination (elision is on by
	// default): the compiled Program then keeps every runtime range
	// check even for accesses the value-range analysis proved safe.
	// Results are bit-identical either way — elision is only applied to
	// checks that provably never fire — so the knob exists for A/B
	// measurement (purebench Fig B1) and for debugging the analysis.
	// Compile-relevant: part of the program-cache key.
	NoBCE bool
	// NoAlias disables the points-to analysis (alias resolution is on
	// by default): the SCoP detector then treats every pointer-based
	// access conservatively, so nests reading or writing through
	// pointers stay serial and their checks stay in place. Results are
	// bit-identical either way; the knob exists for A/B measurement and
	// for debugging the analysis.
	// Compile-relevant: part of the program-cache key.
	NoAlias bool
	// Combine selects the reduction combine topology: rt.CombineLinear
	// (default, worker-ordered folds) or rt.CombineTree (log-depth
	// pairwise merges). Integer reductions are bit-identical across
	// topologies; float reductions follow their own topology's
	// documented bracketing. Compile-relevant: part of the program-cache
	// key.
	Combine rt.Combine
	// SparsePrivates allocates array-reduction private copies as
	// block-sparse segments with lazy first-touch identity fill, making
	// a worker's cost proportional to the cells it touches instead of
	// the accumulator length. Compile-relevant: part of the
	// program-cache key.
	SparsePrivates bool
	// Memoize wraps calls of memoizable pure functions (scalar
	// signature, global-free body) behind a concurrency-safe memo table
	// shared by every Process of the compiled Program. Compile-relevant:
	// part of the program-cache key.
	Memoize bool
	// MemoCapacity bounds the memo table entry count (0 means the
	// memo package default).
	MemoCapacity int
	// MemoShards sets the memo table lock-stripe count (0 means the
	// memo package default).
	MemoShards int
	// TeamSize is the OpenMP thread-count analog (cores in the paper's
	// figures).
	//lint:cachekey run state: sizes the Process team, never the Program
	TeamSize int
	// Stdout receives printf output of the compiled program.
	//lint:cachekey run state: seeds the Process, never the Program
	Stdout io.Writer
	// NoCache bypasses the program cache for this build.
	//lint:cachekey cache control: decides whether to consult the cache, not what is compiled
	NoCache bool
	// Cache overrides the cache used for this build (nil means the
	// package-level DefaultCache).
	//lint:cachekey cache control: selects which cache to consult, not what is compiled
	Cache *ProgramCache
}

// Stages holds the source snapshots after each chain stage of Fig. 1.
type Stages struct {
	Original    string
	Stripped    string // after PC-PrePro
	Expanded    string // after GCC-E
	Marked      string // after PC-CC (scop pragmas + tmpConst_ substitution)
	Transformed string // after polycc + call restoration
	Final       string // after PC-PosPro (includes back, pure lowered)
}

// Artifact is the output of the pipeline front end (everything up to
// and including PC-PosPro): the per-stage source snapshots, the pass
// reports and the checked semantic model of the final source. It is
// immutable once returned and safe to share between builds.
type Artifact struct {
	Stages Stages
	// Pure lists the verified pure functions.
	Pure []string
	// Memoizable lists the pure functions whose calls a memoizing build
	// serves from the memo table (scalar signature, global-free body).
	Memoizable []string
	// SCoPs is the number of loop nests handed to the polyhedral stage.
	SCoPs int
	// Rejections explains loops that were considered but not marked.
	Rejections []string
	// Report describes the polyhedral transformations applied.
	Report *transform.Report
	// Info is the semantic model of the final source; the Compile step
	// turns it into an executable comp.Program.
	Info *sema.Info
	// VRA is the value-range analysis of the final source: the bounds
	// proofs the Compile step uses for check elimination, and the
	// diagnostics purecc -analyze reports.
	VRA *vra.Result
}

// Result is a finished build: the front-end artifact plus one compiled
// Program wrapped with one fresh Process as a Machine. The embedded
// Artifact is shared with the program cache — treat its fields
// (Stages, Pure, SCoPs, Rejections, Report, Info) as read-only.
type Result struct {
	Artifact
	// Machine is the executable program: Result.Program plus one
	// Process. For concurrent runs create more Processes from Program.
	Machine *comp.Machine
	// Program is the immutable compile artifact (shared across builds
	// that hit the program cache).
	Program *comp.Program
	// CacheHit reports whether Program came from the program cache.
	CacheHit bool
}

// frontRuns counts pipeline front-end entries. Disk-cache restores and
// in-memory hits bypass Front entirely, so the delta of FrontRuns
// across a build is the test- and stats-visible proof that the compile
// chain was (or was not) re-entered.
var frontRuns atomic.Uint64

// FrontRuns returns the number of times the pipeline front end has run
// in this process.
func FrontRuns() uint64 { return frontRuns.Load() }

// Front runs the pipeline front end (PC-PrePro → GCC-E → PC-CC → polycc
// → PC-PosPro) on src, stopping before the executable compile.
func Front(src string, cfg Config) (*Artifact, error) {
	frontRuns.Add(1)
	if cfg.FileName == "" {
		cfg.FileName = "program.c"
	}
	res := &Artifact{}
	res.Stages.Original = src

	// PC-PrePro: remove system includes.
	stripped, includes := preproc.StripSystemIncludes(src)
	res.Stages.Stripped = stripped

	// GCC-E: expand macros and local includes.
	ex := &preproc.Expander{Files: cfg.Files}
	for k, v := range cfg.Defines {
		ex.Define(k, v)
	}
	expanded, err := ex.Expand(stripped)
	if err != nil {
		return nil, fmt.Errorf("preprocess: %v", err)
	}
	res.Stages.Expanded = expanded

	// PC-CC: parse, check, verify purity.
	file, err := parser.Parse(cfg.FileName, expanded)
	if err != nil {
		return nil, fmt.Errorf("parse: %v", err)
	}
	info, err := sema.Check(file)
	if err != nil {
		return nil, fmt.Errorf("check: %v", err)
	}
	pres := purity.Check(info)
	if err := pres.Err(); err != nil {
		return nil, fmt.Errorf("purity check: %v", err)
	}
	for name := range pres.PureFuncs {
		res.Pure = append(res.Pure, name)
	}

	// Value-range analysis on the original model. Its findings carry the
	// positions the user wrote, so they are what Artifact.VRA reports;
	// the bounds proofs are recomputed on the final model below because
	// they must key off the syntax nodes the Compile step lowers.
	early := vra.Analyze(info)

	if cfg.Parallelize {
		// The alias oracle hands the detector the early analysis's
		// points-to facts; both run over the same model, so symbols
		// match. The guard keeps a typed-nil oracle out of the
		// interface value.
		var oracle scop.AliasOracle
		if !cfg.NoAlias && early.Alias != nil {
			oracle = early.Alias
		}
		sres := scop.DetectWith(info, pres, scop.Options{
			AllowPureCalls: cfg.Mode == ModePure,
			Aliases:        oracle,
		})
		if len(sres.Errors) > 0 {
			// Listing-5 violations are hard errors in the paper's pass.
			return nil, fmt.Errorf("scop: %v", sres.Errors[0])
		}
		res.SCoPs = len(sres.SCoPs)
		res.Rejections = sres.Rejections
		// A star read whose subscript interval is proven inside the read
		// array's extent can never trap, so the polyhedral stage may
		// parallelize its nest (gather parallelization). This runs before
		// pragma marking and call substitution so every real call is
		// still visible to the analysis.
		markBoundedStars(sres.SCoPs, early)
		scop.MarkPragmas(sres.SCoPs)
		// Temporarily hide the pure calls from the polyhedral stage.
		subs := make([][]scop.Substitution, len(sres.SCoPs))
		for i, sc := range sres.SCoPs {
			subs[i] = scop.SubstituteCalls(sc)
		}
		res.Stages.Marked = ast.Print(file)
		rep, err := transform.Parallelize(sres.SCoPs, cfg.Transform)
		if err != nil {
			return nil, fmt.Errorf("polyhedral transform: %v", err)
		}
		res.Report = rep
		for i, sc := range sres.SCoPs {
			scop.RestoreCalls(sc, subs[i])
		}
		res.Stages.Transformed = ast.Print(file)
	} else {
		res.Stages.Marked = ast.Print(file)
		res.Stages.Transformed = res.Stages.Marked
	}

	// PC-PosPro: lower pure to plain C and re-insert system includes.
	lowered, err := parser.Parse(cfg.FileName, res.Stages.Transformed)
	if err != nil {
		return nil, fmt.Errorf("internal: transformed source does not reparse: %v", err)
	}
	StripPure(lowered)
	res.Stages.Final = preproc.ReinsertSystemIncludes(ast.Print(lowered), includes)

	// Restart the chain on the generated file: re-parse and re-check so
	// the Compile step starts from a fresh semantic model. The model
	// keeps the pure markers (they carry the inlining and vectorization
	// facts GCC/ICC would rediscover from the const lowering plus static
	// analysis); Stages.Final is the plain-C artifact the paper's chain
	// hands to GCC.
	finalFile, err := parser.Parse(cfg.FileName, res.Stages.Transformed)
	if err != nil {
		return nil, fmt.Errorf("internal: final source does not reparse: %v", err)
	}
	finalInfo, err := sema.Check(finalFile)
	if err != nil {
		return nil, fmt.Errorf("internal: final source does not re-check: %v", err)
	}
	res.Info = finalInfo
	// Re-run the value-range analysis on the final model for the bounds
	// proofs (keyed to the nodes Compile lowers), but keep the findings
	// from the original model: their positions match the user's source.
	res.VRA = vra.Analyze(finalInfo)
	res.VRA.Findings = early.Findings
	for name := range purity.Memoizable(finalInfo) {
		res.Memoizable = append(res.Memoizable, name)
	}
	return res, nil
}

// markBoundedStars transfers the analysis' bounds proofs onto the star
// accesses of the detected nests: a proven read is downgraded to
// Bounded (parallelization-safe), an unproven one keeps the derivation
// note for the LoopReport.SerialReason diagnostic.
func markBoundedStars(scops []*scop.SCoP, res *vra.Result) {
	for _, sc := range scops {
		for _, st := range sc.Nest.Stmts {
			for i := range st.Reads {
				a := &st.Reads[i]
				if !a.Star || a.Ref == nil {
					continue
				}
				e, ok := a.Ref.(ast.Expr)
				if !ok {
					continue
				}
				if res.Proven(e) {
					a.Bounded = true
				} else {
					a.Note = res.Note(e)
				}
			}
		}
	}
}

// Compile turns the front-end artifact into an immutable, shareable
// executable Program — the "GCC/ICC" step of Fig. 1.
func (a *Artifact) Compile(cfg Config) (*comp.Program, error) {
	var proofs map[ast.Expr]bool
	if a.VRA != nil {
		proofs = a.VRA.Proofs()
	}
	prog, err := comp.CompileProgram(a.Info, comp.Options{
		Backend:        cfg.Backend,
		Engine:         cfg.Engine,
		Vectorize:      cfg.Vectorize,
		NoFuse:         cfg.NoFuse,
		NoBCE:          cfg.NoBCE,
		Combine:        cfg.Combine,
		SparsePrivates: cfg.SparsePrivates,
		Proofs:         proofs,
		Memoize:        cfg.Memoize,
		Memoizable:     a.Memoizable,
		MemoCapacity:   cfg.MemoCapacity,
		MemoShards:     cfg.MemoShards,
	})
	if err != nil {
		return nil, fmt.Errorf("compile: %v", err)
	}
	return prog, nil
}

// BuildProgram runs the full chain on src and returns the immutable
// Program plus the front-end artifact. Repeated builds of the same
// (source, Config) pair are served from the program cache (unless
// cfg.NoCache is set); hit reports whether this build was.
func BuildProgram(src string, cfg Config) (prog *comp.Program, art *Artifact, hit bool, err error) {
	if cfg.FileName == "" {
		cfg.FileName = "program.c"
	}
	if cfg.NoCache {
		art, err = Front(src, cfg)
		if err != nil {
			return nil, nil, false, err
		}
		prog, err = art.Compile(cfg)
		return prog, art, false, err
	}
	cache := cfg.Cache
	if cache == nil {
		cache = DefaultCache
	}
	return cache.build(src, cfg)
}

// Build runs the full chain on src and pairs the (possibly cached)
// Program with one fresh Process, returned as Result.Machine.
func Build(src string, cfg Config) (*Result, error) {
	prog, art, hit, err := BuildProgram(src, cfg)
	if err != nil {
		return nil, err
	}
	proc, err := prog.NewProcess(comp.ProcOptions{
		Team:   rt.NewTeam(cfg.TeamSize),
		Stdout: cfg.Stdout,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Artifact: *art,
		Machine:  &comp.Machine{Process: proc},
		Program:  prog,
		CacheHit: hit,
	}, nil
}

// StripPure lowers the pure extension to plain C in place: pure pointer
// qualifiers become const and the pure function modifier is removed —
// the exact lowering of Sect. 3.2 ("The pointer prefixes are replaced
// with the const keyword ... we remove the function prefix completely").
func StripPure(f *ast.File) {
	strip := func(t *ast.TypeExpr) {
		if t == nil {
			return
		}
		if t.Pure {
			// "pure T*" was normalized to both a type-level and an
			// outermost-pointer-level qualifier; lower it to a single
			// leading const ("const T*").
			t.Pure = false
			t.Const = true
			if n := len(t.Ptrs); n > 0 && t.Ptrs[n-1].Pure {
				t.Ptrs[n-1].Pure = false
			}
		}
		for i := range t.Ptrs {
			if t.Ptrs[i].Pure {
				t.Ptrs[i].Pure = false
				t.Ptrs[i].Const = true
			}
		}
	}
	ast.Walk(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			x.Pure = false
			strip(x.Ret)
			for i := range x.Params {
				strip(x.Params[i].Type)
			}
		case *ast.TypeExpr:
			strip(x)
		}
		return true
	})
}
