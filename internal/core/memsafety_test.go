package core

import (
	"io"
	"strings"
	"testing"

	"purec/internal/interp"
	"purec/internal/parser"
	"purec/internal/sema"
)

// runBoth executes src through the compiled backend and the interpreter
// oracle, returning both errors (nil when the run succeeded).
func runBoth(t *testing.T, src string) (compErr, interpErr error) {
	t.Helper()
	res, err := Build(src, Config{NoCache: true, Stdout: io.Discard})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	_, compErr = res.Machine.RunMain()

	file, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(file)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	in, err := interp.New(info, nil)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	_, interpErr = in.RunMain()
	return compErr, interpErr
}

// TestUseAfterFreeDetected: accessing a freed malloc block must surface
// as a runtime error in both backends — the freed segment is poisoned,
// so the stale pointer no longer reaches live memory.
func TestUseAfterFreeDetected(t *testing.T) {
	src := `
int main(void) {
    int* p = (int*)malloc(4 * sizeof(int));
    p[0] = 42;
    free(p);
    return p[0];
}
`
	compErr, interpErr := runBoth(t, src)
	if compErr == nil {
		t.Error("comp backend silently accepted a use-after-free")
	}
	if interpErr == nil {
		t.Error("interp oracle silently accepted a use-after-free")
	}
}

// TestUseAfterFreeStoreDetected covers the store side of the poisoning.
func TestUseAfterFreeStoreDetected(t *testing.T) {
	src := `
int main(void) {
    float* p = (float*)malloc(8 * sizeof(float));
    free(p);
    p[2] = 1.5f;
    return 0;
}
`
	compErr, interpErr := runBoth(t, src)
	if compErr == nil {
		t.Error("comp backend silently accepted a store after free")
	}
	if interpErr == nil {
		t.Error("interp oracle silently accepted a store after free")
	}
}

// TestUseAfterFreePrintfDetected: printf %s on a freed segment must
// trap instead of silently printing an empty string (the poisoned
// backing slice reads as length 0, which would mask the bug).
func TestUseAfterFreePrintfDetected(t *testing.T) {
	src := `
int main(void) {
    int* s = (int*)malloc(4 * sizeof(int));
    s[0] = 104;
    s[1] = 105;
    s[2] = 0;
    free(s);
    printf("%s\n", s);
    return 0;
}
`
	compErr, interpErr := runBoth(t, src)
	for name, err := range map[string]error{"comp": compErr, "interp": interpErr} {
		if err == nil {
			t.Errorf("%s backend silently printed a freed string", name)
			continue
		}
		if !strings.Contains(err.Error(), "use after free") {
			t.Errorf("%s backend error %q does not name the use-after-free", name, err)
		}
	}
}

// TestValidFreePatternStillRuns: the poisoning must not break the legal
// malloc/use/free lifecycle.
func TestValidFreePatternStillRuns(t *testing.T) {
	src := `
int main(void) {
    int* p = (int*)malloc(4 * sizeof(int));
    p[0] = 7;
    int v = p[0];
    free(p);
    return v;
}
`
	compErr, interpErr := runBoth(t, src)
	if compErr != nil {
		t.Errorf("comp: %v", compErr)
	}
	if interpErr != nil {
		t.Errorf("interp: %v", interpErr)
	}
}

// TestNullStringPrintfMatchesBackends: printf %s of NULL prints
// "(null)" in both backends (oracle alignment).
func TestNullStringPrintfMatchesBackends(t *testing.T) {
	src := `
int main(void) {
    int* p = (int*)0;
    printf("s=%s\n", p);
    return 0;
}
`
	compErr, interpErr := runBoth(t, src)
	if compErr != nil || interpErr != nil {
		t.Fatalf("comp=%v interp=%v, want both nil", compErr, interpErr)
	}
}

// TestCrossSegmentPointerDiffDetected: subtracting pointers into
// different objects is undefined behaviour in C; here it must report a
// checked runtime error instead of a meaningless offset delta.
func TestCrossSegmentPointerDiffDetected(t *testing.T) {
	src := `
int main(void) {
    int a[4];
    int b[4];
    int* p = a;
    int* q = b;
    int d = p - q;
    return d;
}
`
	compErr, interpErr := runBoth(t, src)
	for name, err := range map[string]error{"comp": compErr, "interp": interpErr} {
		if err == nil {
			t.Errorf("%s backend returned garbage for a cross-segment pointer difference", name)
			continue
		}
		if !strings.Contains(err.Error(), "pointer difference across segments") {
			t.Errorf("%s backend error %q does not name the cross-segment diff", name, err)
		}
	}
}

// TestSameSegmentPointerDiffStillWorks: the checked path must keep
// legal same-object pointer arithmetic exact.
func TestSameSegmentPointerDiffStillWorks(t *testing.T) {
	src := `
int main(void) {
    int a[8];
    int* p = a + 6;
    int* q = a + 2;
    return p - q;
}
`
	res, err := Build(src, Config{NoCache: true})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	v, err := res.Machine.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if v != 4 {
		t.Fatalf("p - q = %d, want 4", v)
	}
}
