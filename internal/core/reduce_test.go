package core

import (
	"strings"
	"sync"
	"testing"

	"purec/internal/comp"
	"purec/internal/interp"
	"purec/internal/rt"
	"purec/internal/transform"
)

// reduceSrc is the README quickstart shape: a loop accumulating results
// of a pure call — the paper's headline pattern, which the reduction
// stage must parallelize end to end.
const reduceSrc = `#include <stdio.h>
pure int square(int x) { return x * x; }
int main(void) {
    int s = 0;
    for (int i = 0; i < 100; i++) s += square(i);
    printf("%d\n", s);
    return s == 328350;
}
`

// TestQuickstartReductionParallelizes pins the acceptance criterion:
// the README quickstart loop compiles to a parallel reduction — the
// report shows a parallel nest with reduction(+:s) — and the computed
// sum is identical to the serial build and the interp oracle.
func TestQuickstartReductionParallelizes(t *testing.T) {
	res, err := Build(reduceSrc, Config{Parallelize: true, TeamSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stages.Transformed, "reduction(+:s)") {
		t.Fatalf("transformed source lacks the reduction clause:\n%s", res.Stages.Transformed)
	}
	if len(res.Report.Loops) != 1 {
		t.Fatalf("want 1 SCoP in report, got %d", len(res.Report.Loops))
	}
	lr := res.Report.Loops[0]
	if lr.ParallelLevel != 0 {
		t.Fatalf("quickstart nest not parallel: %+v", lr)
	}
	if len(lr.Reductions) != 1 || lr.Reductions[0] != "+:s" {
		t.Fatalf("report reductions = %v, want [+:s]", lr.Reductions)
	}
	if lr.SerialReason != "" {
		t.Fatalf("parallel nest carries a serial reason: %q", lr.SerialReason)
	}

	par, err := res.Machine.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Build(reduceSrc, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ser, err := seq.Machine.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	in, err := interp.New(res.Info, nil)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := in.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if par != 1 || ser != 1 || oracle != 1 {
		t.Fatalf("parallel=%d serial=%d oracle=%d, want all 1 (sum matches 328350)", par, ser, oracle)
	}
}

// TestSerialReasonReachesReport pins the diagnosis path: when a scalar
// write is not a recognized reduction, the report says so.
func TestSerialReasonReachesReport(t *testing.T) {
	src := `
pure int f(int x) { return x + 1; }
int main(void) {
    int s = 0;
    int t = 0;
    for (int i = 0; i < 100; i++) {
        s += f(i);
        t = s + 2;
    }
    return t;
}
`
	res, err := Build(src, Config{Parallelize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Loops) != 1 {
		t.Fatalf("want 1 SCoP, got %d", len(res.Report.Loops))
	}
	lr := res.Report.Loops[0]
	if lr.ParallelLevel != -1 {
		t.Fatalf("nest must stay serial (s is read by t's update): %+v", lr)
	}
	if !strings.Contains(lr.SerialReason, "scalar write to") || !strings.Contains(lr.SerialReason, "s") {
		t.Fatalf("SerialReason = %q, want a scalar-write explanation naming s", lr.SerialReason)
	}
	if !strings.Contains(res.Report.String(), lr.SerialReason) {
		t.Fatal("Report.String must include the serialization reason")
	}
}

// reduceOracleSrc exercises an integer reduction with a pure call under
// an imbalance-prone schedule; run() returns the checksum.
const reduceOracleSrc = `
pure int weight(int x) { return (x * x) % 97 + (x % 7); }
int run(void) {
    int s = 1234;
    for (int i = 0; i < 3000; i++)
        s += weight(i);
    return s;
}
int main(void) { return run(); }
`

// TestReductionOracle12Processes proves integer reductions bit-identical
// across backends and team sizes: 12 concurrent Processes (mixed real
// and simulated teams, both backends) must all return exactly the
// sequential interp oracle's value. Run under -race in CI.
func TestReductionOracle12Processes(t *testing.T) {
	cfgs := []Config{
		{Parallelize: true, Backend: comp.BackendGCC, Transform: transform.Options{Schedule: "dynamic,1"}},
		{Parallelize: true, Backend: comp.BackendICC, Transform: transform.Options{Schedule: "guided,2"}},
	}
	// Sequential oracle from the first build's checked model.
	first, err := Build(reduceOracleSrc, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.Stages.Transformed, "reduction(+:s)") {
		t.Fatalf("reduction not recognized:\n%s", first.Stages.Transformed)
	}
	in, err := interp.New(first.Info, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := in.RunMain()
	if err != nil {
		t.Fatal(err)
	}

	const procs = 12
	teamSizes := []int{1, 2, 3, 5, 8, 16}
	var wg sync.WaitGroup
	errs := make(chan error, procs*len(cfgs))
	for _, cfg := range cfgs {
		prog, _, _, err := BuildProgram(reduceOracleSrc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < procs; p++ {
			n := teamSizes[p%len(teamSizes)]
			team := rt.NewTeam(n)
			if p%2 == 1 {
				team = rt.NewSimTeam(n)
			}
			wg.Add(1)
			go func(prog *comp.Program, team *rt.Team, backend comp.Backend) {
				defer wg.Done()
				proc, err := prog.NewProcess(comp.ProcOptions{Team: team})
				if err != nil {
					errs <- err
					return
				}
				got, err := proc.RunMain()
				if err != nil {
					errs <- err
					return
				}
				if got != want {
					errs <- &comp.RuntimeError{Msg: "reduction mismatch"}
				}
			}(prog, team, cfg.Backend)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("process: %v", err)
	}
}

// TestReductionUnderTiling checks reductions compose with the tiling
// path: the k-accumulation of the tiled matmul test still reduces
// correctly (array writes remain ordinary accesses; only the scalar
// accumulator is privatized).
func TestReductionUnderTiling(t *testing.T) {
	src := `
#define N 24
float A[N];
int main(void) {
    for (int i = 0; i < N; i++)
        A[i] = (float)(i % 5) * 0.5f;
    float s = 0.0f;
    for (int i = 0; i < N; i++)
        s += A[i];
    return (int)s;
}
`
	par, err := Build(src, Config{Parallelize: true, TeamSize: 4,
		Transform: transform.Options{Tile: true, TileSizes: []int{8}, MinParallelTrip: -1}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.Machine.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Build(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.Machine.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("tiled reduction: got %d want %d", got, want)
	}
}

// TestMinMaxReductionParallelizes pins the ROADMAP follow-up end to
// end: the canonical min if-pattern is recognized by scop, excluded
// from the parallelism decision, emitted as reduction(min:m), and the
// parallel run matches the serial build and the interp oracle exactly.
func TestMinMaxReductionParallelizes(t *testing.T) {
	src := `
int a[4000];
void setup(void) {
    for (int i = 0; i < 4000; i++)
        a[i] = (i * 2654435761) % 100000;
}
int main(void) {
    setup();
    int m = 1 << 30;
    for (int i = 0; i < 4000; i++)
        if (a[i] < m) m = a[i];
    return m % 251;
}
`
	res, err := Build(src, Config{Parallelize: true, TeamSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stages.Transformed, "reduction(min:m)") {
		t.Fatalf("transformed source lacks the min clause:\n%s", res.Stages.Transformed)
	}
	var lr *transform.LoopReport
	for i := range res.Report.Loops {
		for _, r := range res.Report.Loops[i].Reductions {
			if r == "min:m" {
				lr = &res.Report.Loops[i]
			}
		}
	}
	if lr == nil {
		t.Fatalf("no loop report carries the min:m reduction: %+v", res.Report.Loops)
	}
	if lr.ParallelLevel != 0 {
		t.Fatalf("min nest not parallel: %+v", *lr)
	}

	par, err := res.Machine.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Build(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ser, err := seq.Machine.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	in, err := interp.New(res.Info, nil)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := in.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if par != ser || par != oracle {
		t.Fatalf("parallel=%d serial=%d oracle=%d must all agree", par, ser, oracle)
	}
}

// TestMinMaxTernaryRecognized covers the ?: form and the max
// direction through the same pipeline.
func TestMinMaxTernaryRecognized(t *testing.T) {
	src := `
int a[1000];
int main(void) {
    for (int i = 0; i < 1000; i++)
        a[i] = (i * 37) % 8191;
    int m = -1;
    for (int i = 0; i < 1000; i++)
        m = a[i] > m ? a[i] : m;
    return m % 127;
}
`
	res, err := Build(src, Config{Parallelize: true, TeamSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stages.Transformed, "reduction(max:m)") {
		t.Fatalf("transformed source lacks the max clause:\n%s", res.Stages.Transformed)
	}
	par, err := res.Machine.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Build(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ser, err := seq.Machine.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if par != ser {
		t.Fatalf("parallel=%d serial=%d", par, ser)
	}
}

// TestMinMaxUsedElsewhereStaysSerial: an accumulator read by another
// statement in the nest is a real dependence, not a reduction.
func TestMinMaxUsedElsewhereStaysSerial(t *testing.T) {
	src := `
int a[100], b[100];
int main(void) {
    for (int i = 0; i < 100; i++)
        a[i] = i;
    int m = 1 << 30;
    for (int i = 0; i < 100; i++) {
        if (a[i] < m) m = a[i];
        b[i] = m;
    }
    return m;
}
`
	res, err := Build(src, Config{Parallelize: true, TeamSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range res.Report.Loops {
		for _, r := range lr.Reductions {
			if r == "min:m" && lr.ParallelLevel >= 0 {
				t.Fatalf("m is read by b[i]=m; the nest must stay serial: %+v", lr)
			}
		}
	}
	par, err := res.Machine.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Build(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ser, err := seq.Machine.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if par != ser {
		t.Fatalf("parallel=%d serial=%d", par, ser)
	}
}
