package core

import (
	"bytes"
	"sort"
	"testing"
)

const memoPipelineSrc = `
pure int price(int item, int qty) {
    int r = 0;
    for (int i = 0; i < 200; i++)
        r += (item * 13 + qty * 7 + i) % 23;
    return r;
}
int main(void) {
    int total = 0;
    for (int i = 0; i < 300; i++)
        total += price(i % 5, i % 3);
    printf("total=%d\n", total);
    return 0;
}
`

// TestMemoizeThroughPipeline checks the Config.Memoize plumbing end to
// end: the knob reaches the compiled Program, the artifact reports the
// memoizable set, the cache key separates memoizing from plain builds,
// and the outputs agree.
func TestMemoizeThroughPipeline(t *testing.T) {
	cache := NewProgramCache(8)

	var plainOut bytes.Buffer
	plain, err := Build(memoPipelineSrc, Config{Cache: cache, Stdout: &plainOut})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Machine.RunMain(); err != nil {
		t.Fatal(err)
	}
	if plain.Program.Memo() != nil {
		t.Fatal("plain build carries a memo table")
	}

	var memoOut bytes.Buffer
	memoized, err := Build(memoPipelineSrc, Config{Cache: cache, Memoize: true, Stdout: &memoOut})
	if err != nil {
		t.Fatal(err)
	}
	if memoized.CacheHit {
		t.Fatal("Memoize change must miss the program cache")
	}
	if memoized.Program.Memo() == nil {
		t.Fatal("memoizing build has no table")
	}
	got := append([]string(nil), memoized.Memoizable...)
	sort.Strings(got)
	if len(got) != 1 || got[0] != "price" {
		t.Fatalf("Artifact.Memoizable = %v, want [price]", got)
	}
	if _, err := memoized.Machine.RunMain(); err != nil {
		t.Fatal(err)
	}
	if plainOut.String() != memoOut.String() || plainOut.Len() == 0 {
		t.Fatalf("memoized output %q differs from plain %q", memoOut.String(), plainOut.String())
	}
	if s := memoized.Program.MemoStats(); s.Hits == 0 {
		t.Fatalf("memoizing run recorded no hits: %+v", s)
	}

	// MemoCapacity is compile-relevant: a different capacity is a
	// different Program.
	resized, err := Build(memoPipelineSrc, Config{Cache: cache, Memoize: true, MemoCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resized.CacheHit || resized.Program == memoized.Program {
		t.Fatal("MemoCapacity change must miss the program cache")
	}

	// Identical memoizing builds share the Program and thus the table.
	again, err := Build(memoPipelineSrc, Config{Cache: cache, Memoize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.Program != memoized.Program {
		t.Fatal("identical memoizing build must hit the cache")
	}
}
