package core

import (
	"strings"
	"testing"

	"purec/internal/comp"
)

// gatherProvenSrc fills idx with (i*7+13) % M, so the value-range
// analysis proves every idx cell inside x's extent M and the gather
// nest parallelizes.
const gatherProvenSrc = `
#define N 4096
#define M 2048
int idx[N];
float x[M];
float y[N];

void fill() {
    for (int i = 0; i < M; i++) { x[i] = (float)i * 0.5f; }
    for (int i = 0; i < N; i++) { idx[i] = (i * 7 + 13) % M; }
}

void gather() {
    for (int i = 0; i < N; i++) { y[i] = x[idx[i]]; }
}

int main() { fill(); gather(); return (int)y[5]; }
`

// gatherOpaqueSrc routes the modulus through a global scalar assigned
// in another function, so idx's contents stay unbounded and the nest
// must serialize for trap parity.
const gatherOpaqueSrc = `
#define N 4096
int idx[N];
float x[2048];
float y[N];
int m;

void setm(int v) { m = v; }

void fill() {
    setm(2048);
    for (int i = 0; i < N; i++) { idx[i] = (i * 7 + 13) % m; }
}

void gather() {
    for (int i = 0; i < N; i++) { y[i] = x[idx[i]]; }
}

int main() { fill(); gather(); return (int)y[5]; }
`

// TestGatherParallelization checks the vra→scop→transform chain: a
// proven gather nest parallelizes with its checks elided, an opaque one
// serializes with a diagnostic naming the index array.
func TestGatherParallelization(t *testing.T) {
	prog, art, _, err := BuildProgram(gatherProvenSrc, Config{Parallelize: true, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range art.Report.Loops {
		if l.ParallelLevel < 0 {
			t.Errorf("nest in %s stayed serial: %s", l.Func, l.SerialReason)
		}
	}
	if prog.ElidedChecks() == 0 {
		t.Errorf("proven build elided no checks")
	}
	if len(art.VRA.Findings) != 0 {
		t.Errorf("unexpected findings: %v", art.VRA.Findings)
	}
	proc, err := prog.NewProcess(comp.ProcOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.RunMain(); err != nil {
		t.Fatalf("run: %v", err)
	}

	prog2, art2, _, err := BuildProgram(gatherOpaqueSrc, Config{Parallelize: true, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	var reason string
	for _, l := range art2.Report.Loops {
		if l.Func == "gather" {
			if l.ParallelLevel >= 0 {
				t.Errorf("opaque gather nest parallelized")
			}
			reason = l.SerialReason
		}
	}
	if !strings.Contains(reason, "serialized by read x[idx[i]]") ||
		!strings.Contains(reason, "idx") {
		t.Errorf("serial reason does not name the gather read: %q", reason)
	}
	proc2, err := prog2.NewProcess(comp.ProcOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc2.RunMain(); err != nil {
		t.Fatalf("opaque run: %v", err)
	}
}

// TestNoBCECacheKey checks that NoBCE builds do not alias proven builds
// in the program cache.
func TestNoBCECacheKey(t *testing.T) {
	cache := NewProgramCache(8)
	p1, _, _, err := BuildProgram(gatherProvenSrc, Config{Parallelize: true, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	p2, _, hit, err := BuildProgram(gatherProvenSrc, Config{Parallelize: true, NoBCE: true, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if hit || p1 == p2 {
		t.Fatalf("NoBCE build served from the BCE cache entry")
	}
	if p2.ElidedChecks() != 0 {
		t.Errorf("NoBCE build elided %d checks", p2.ElidedChecks())
	}
	if p1.ElidedChecks() == 0 {
		t.Errorf("default build elided no checks")
	}
}
