package core

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"purec/internal/apps"
	"purec/internal/comp"
	"purec/internal/interp"
	"purec/internal/mem"
	"purec/internal/rt"
)

// kernelWorkloads are the Fig K1 programs, sized down for tests.
func kernelWorkloads() []struct {
	name string
	src  string
	defs map[string]string
	out  string
	n    int
	cfg  Config
} {
	kd := apps.KernDefines(512, 2)
	return []struct {
		name string
		src  string
		defs map[string]string
		out  string
		n    int
		cfg  Config
	}{
		{"axpy", apps.AxpySrc, kd, "y", 512, Config{Parallelize: true}},
		{"copy", apps.CopySrc, kd, "y", 512, Config{Parallelize: true}},
		{"stencil", apps.StencilSrc, kd, "y", 512, Config{Parallelize: true}},
		{"matmul", apps.MatmulKernSrc, apps.MatmulDefines(20), "C", 20 * 20,
			Config{Parallelize: true, Backend: comp.BackendICC}},
	}
}

// snapshotVec renders the bit pattern of a float vector global. For
// matmul (float**) it walks the row pointers.
func snapshotVec(p mem.Pointer, name string, n int) string {
	var b strings.Builder
	if name == "C" {
		rows := int(math.Sqrt(float64(n)))
		for i := 0; i < rows; i++ {
			row := p.Add(int64(i)).LoadPtr()
			for j := 0; j < rows; j++ {
				fmt.Fprintf(&b, "%x,", math.Float64bits(row.Add(int64(j)).LoadFloat()))
			}
		}
		return b.String()
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%x,", math.Float64bits(p.Add(int64(i)).LoadFloat()))
	}
	return b.String()
}

// TestKernelFusionOracle12Processes is the fused-kernel equivalence
// proof: every Fig K1 workload runs on 12 concurrent Processes (mixed
// real and simulated teams) of two Programs — fusion on and fusion
// off — and every output must be bit-identical to the sequential
// interp oracle. Run under -race in CI: fused parallel workers share
// the parent environment read-only and write disjoint chunk slices.
func TestKernelFusionOracle12Processes(t *testing.T) {
	teamSizes := []int{1, 2, 3, 5, 8, 16}
	for _, w := range kernelWorkloads() {
		w := w
		t.Run(w.name, func(t *testing.T) {
			// Sequential interp oracle.
			first, err := Build(w.src, withDefs(w.cfg, w.defs))
			if err != nil {
				t.Fatal(err)
			}
			in, err := interp.New(first.Info, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := in.RunMain(); err != nil {
				t.Fatal(err)
			}
			op, err := in.GlobalPtr(w.out)
			if err != nil {
				t.Fatal(err)
			}
			want := snapshotVec(op, w.out, w.n)

			const procs = 12
			var wg sync.WaitGroup
			errs := make(chan error, 2*procs)
			for _, noFuse := range []bool{false, true} {
				cfg := withDefs(w.cfg, w.defs)
				cfg.NoFuse = noFuse
				prog, _, _, err := BuildProgram(w.src, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !noFuse && prog.FusedKernels() == 0 {
					t.Fatalf("%s: fused build reports zero fused kernels", w.name)
				}
				for p := 0; p < procs; p++ {
					team := rt.NewTeam(teamSizes[p%len(teamSizes)])
					if p%2 == 1 {
						team = rt.NewSimTeam(teamSizes[p%len(teamSizes)])
					}
					wg.Add(1)
					go func(prog *comp.Program, team *rt.Team, noFuse bool) {
						defer wg.Done()
						proc, err := prog.NewProcess(comp.ProcOptions{Team: team})
						if err != nil {
							errs <- err
							return
						}
						if _, err := proc.RunMain(); err != nil {
							errs <- fmt.Errorf("NoFuse=%v: %v", noFuse, err)
							return
						}
						p, err := proc.GlobalPtr(w.out)
						if err != nil {
							errs <- err
							return
						}
						if got := snapshotVec(p, w.out, w.n); got != want {
							errs <- fmt.Errorf("NoFuse=%v team=%d sim=%v: output differs from oracle",
								noFuse, team.Size(), team.Simulated())
						}
					}(prog, team, noFuse)
				}
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

func withDefs(cfg Config, defs map[string]string) Config {
	cfg.Defines = defs
	return cfg
}

// TestKernelFusionOutOfBoundsEdgeTraps pins the hoisted-range-check
// contract on the trap side: a stencil whose edge iteration reads one
// cell past the array must fail as a runtime error with fusion on,
// with fusion off, and in the interp oracle — never silently read a
// neighboring allocation.
func TestKernelFusionOutOfBoundsEdgeTraps(t *testing.T) {
	src := `
float *x, *y;
void initvec(void) {
    x = (float*)malloc(N * sizeof(float));
    y = (float*)malloc(N * sizeof(float));
    for (int i = 0; i < N; i++)
        x[i] = 1.0f;
}
int main(void) {
    initvec();
    /* i runs to N-1 inclusive: x[i+1] reads x[N] on the last edge */
    for (int i = 1; i < N; i++)
        y[i] = 0.5f * (x[i - 1] + x[i + 1]);
    return 0;
}
`
	defs := map[string]string{"N": "64"}
	for _, noFuse := range []bool{false, true} {
		cfg := Config{NoFuse: noFuse, Defines: defs}
		res, err := Build(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := res.Machine.RunMain(); err == nil {
			t.Fatalf("NoFuse=%v: out-of-bounds stencil edge must trap", noFuse)
		} else if _, isRT := err.(*comp.RuntimeError); !isRT {
			t.Fatalf("NoFuse=%v: want RuntimeError, got %T %v", noFuse, err, err)
		}
	}
	// The oracle agrees the program is faulty.
	art, err := Front(src, Config{Defines: defs})
	if err != nil {
		t.Fatal(err)
	}
	in, err := interp.New(art.Info, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.RunMain(); err == nil {
		t.Fatal("interp oracle must also trap the out-of-bounds edge")
	}
}
