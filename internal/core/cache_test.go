package core

import (
	"sync"
	"testing"

	"purec/internal/comp"
)

// TestProgramCacheHit checks the content-addressed build cache:
// building the same (source, Config) twice returns the identical
// Program without recompiling; changing any compile-relevant field
// misses; run-state fields (TeamSize, Stdout) do not affect the key.
func TestProgramCacheHit(t *testing.T) {
	cache := NewProgramCache(8)
	cfg := Config{Parallelize: true, TeamSize: 2, Cache: cache}

	r1, err := Build(matmulSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Fatal("first build reported a cache hit")
	}
	r2, err := Build(matmulSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("second identical build missed the cache")
	}
	if r1.Program != r2.Program {
		t.Fatal("cache hit returned a different Program")
	}
	if r1.Machine.Process == r2.Machine.Process {
		t.Fatal("cached builds must still get fresh Processes")
	}

	// Run-state differences share the Program.
	cfg3 := cfg
	cfg3.TeamSize = 7
	r3, err := Build(matmulSrc, cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if !r3.CacheHit || r3.Program != r1.Program {
		t.Fatal("TeamSize change must not change the cache key")
	}

	// Compile-relevant differences miss.
	cfg4 := cfg
	cfg4.Backend = comp.BackendICC
	r4, err := Build(matmulSrc, cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if r4.CacheHit || r4.Program == r1.Program {
		t.Fatal("Backend change must miss the cache")
	}
	cfg5 := cfg
	cfg5.Defines = map[string]string{"EXTRA": "1"}
	if r5, err := Build(matmulSrc, cfg5); err != nil {
		t.Fatal(err)
	} else if r5.CacheHit {
		t.Fatal("Defines change must miss the cache")
	}
	cfg6 := cfg
	cfg6.NoAlias = true
	if r6, err := Build(matmulSrc, cfg6); err != nil {
		t.Fatal(err)
	} else if r6.CacheHit || r6.Program == r1.Program {
		t.Fatal("NoAlias change must miss the cache (it changes which nests parallelize)")
	}

	hits, misses := cache.Stats()
	if hits != 2 || misses != 4 {
		t.Fatalf("stats = %d hits / %d misses, want 2/4", hits, misses)
	}

	// Cached programs still execute correctly per Process.
	v1, err := r1.Machine.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := r2.Machine.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("cached builds disagree: %d vs %d", v1, v2)
	}
}

// TestProgramCacheNoCache verifies the bypass switch.
func TestProgramCacheNoCache(t *testing.T) {
	cache := NewProgramCache(8)
	cfg := Config{Parallelize: true, Cache: cache, NoCache: true}
	for i := 0; i < 2; i++ {
		res, err := Build(matmulSrc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHit {
			t.Fatal("NoCache build reported a cache hit")
		}
	}
	if cache.Len() != 0 {
		t.Fatalf("NoCache builds populated the cache (%d entries)", cache.Len())
	}
}

// TestProgramCacheEviction checks the capacity bound.
func TestProgramCacheEviction(t *testing.T) {
	cache := NewProgramCache(2)
	srcs := []string{
		"int main(void) { return 1; }",
		"int main(void) { return 2; }",
		"int main(void) { return 3; }",
	}
	for _, s := range srcs {
		if _, _, _, err := BuildProgram(s, Config{Cache: cache}); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", cache.Len())
	}
	// The oldest entry was evicted: rebuilding it misses.
	if _, _, hit, err := BuildProgram(srcs[0], Config{Cache: cache}); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Fatal("evicted entry reported a cache hit")
	}
	// The newest survives.
	if _, _, hit, err := BuildProgram(srcs[2], Config{Cache: cache}); err != nil {
		t.Fatal(err)
	} else if !hit {
		t.Fatal("fresh entry was evicted prematurely")
	}
}

// TestProgramCacheLRUPromotion: a hit promotes its entry, so a hot
// program survives capacity pressure that evicts colder ones (pure FIFO
// would drop the hot entry first).
func TestProgramCacheLRUPromotion(t *testing.T) {
	cache := NewProgramCache(2)
	hot := "int main(void) { return 1; }"
	cold := "int main(void) { return 2; }"
	fresh := "int main(void) { return 3; }"
	for _, s := range []string{hot, cold} {
		if _, _, _, err := BuildProgram(s, Config{Cache: cache}); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the oldest entry, then insert a third program.
	if _, _, hit, err := BuildProgram(hot, Config{Cache: cache}); err != nil || !hit {
		t.Fatalf("hot rebuild: hit=%v err=%v", hit, err)
	}
	if _, _, _, err := BuildProgram(fresh, Config{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	// The promoted hot entry survives; the cold one was evicted.
	if _, _, hit, err := BuildProgram(hot, Config{Cache: cache}); err != nil || !hit {
		t.Fatalf("hot entry was evicted despite promotion: hit=%v err=%v", hit, err)
	}
	if _, _, hit, err := BuildProgram(cold, Config{Cache: cache}); err != nil || hit {
		t.Fatalf("cold entry should have been the eviction victim: hit=%v err=%v", hit, err)
	}
}

// TestProgramCacheInFlightNotEvicted: an entry whose singleflight build
// is still running must not be evicted by a concurrent insert — other
// builders hold a reference to it and a same-key insert would rerun the
// pipeline mid-build.
func TestProgramCacheInFlightNotEvicted(t *testing.T) {
	cache := NewProgramCache(1)
	// Plant an in-flight entry by hand: present in the table, once not
	// yet completed (done unset).
	var inflightKey CacheKey
	inflightKey[0] = 0xAB
	inflight := &cacheEntry{}
	cache.mu.Lock()
	cache.entries[inflightKey] = inflight
	cache.order = append(cache.order, inflightKey)
	cache.mu.Unlock()

	// A real build over capacity must keep the in-flight entry.
	if _, _, _, err := BuildProgram("int main(void) { return 4; }", Config{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	cache.mu.Lock()
	_, stillThere := cache.entries[inflightKey]
	n := len(cache.entries)
	cache.mu.Unlock()
	if !stillThere {
		t.Fatal("in-flight entry was evicted mid-build")
	}
	if n != 2 {
		t.Fatalf("cache holds %d entries, want 2 (capacity temporarily exceeded)", n)
	}

	// Once the in-flight build finishes it becomes evictable again.
	inflight.done.Store(true)
	if _, _, _, err := BuildProgram("int main(void) { return 5; }", Config{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	cache.mu.Lock()
	_, stillThere = cache.entries[inflightKey]
	cache.mu.Unlock()
	if stillThere {
		t.Fatal("finished placeholder entry survived eviction pressure")
	}
}

// TestProgramCacheSingleflight: concurrent builds of the same key run
// the pipeline once and all receive the same Program (re-entrancy of
// the build pipeline).
func TestProgramCacheSingleflight(t *testing.T) {
	cache := NewProgramCache(8)
	cfg := Config{Parallelize: true, Cache: cache}
	const n = 8
	progs := make([]*comp.Program, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prog, _, _, err := BuildProgram(matmulSrc, cfg)
			progs[i], errs[i] = prog, err
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("build %d: %v", i, errs[i])
		}
		if progs[i] != progs[0] {
			t.Fatalf("build %d compiled a separate Program", i)
		}
	}
	if _, misses := cache.Stats(); misses != 1 {
		t.Fatalf("pipeline ran %d times for one key", misses)
	}
}

// TestProgramCacheDropsErrors: failed builds must not occupy cache
// slots (they would evict valid Programs and report as hits).
func TestProgramCacheDropsErrors(t *testing.T) {
	cache := NewProgramCache(8)
	bad := "int main(void { return 0; }"
	for i := 0; i < 2; i++ {
		if _, _, _, err := BuildProgram(bad, Config{Cache: cache}); err == nil {
			t.Fatal("expected build error")
		}
	}
	if cache.Len() != 0 {
		t.Fatalf("error builds left %d cache entries", cache.Len())
	}
	if _, misses := cache.Stats(); misses != 2 {
		t.Fatalf("misses = %d, want 2 (error entries must not hit)", misses)
	}
}
