package core

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"purec/internal/interp"
	"purec/internal/parser"
	"purec/internal/purity"
	"purec/internal/sema"
)

// TestPuritySoundnessOracle is the dynamic side-effect oracle promised in
// DESIGN.md: for generated programs, whenever the static purity checker
// ACCEPTS a pure-marked function, actually executing that function must
// not change any observable global state. (The converse does not hold —
// the checker is deliberately conservative.)
func TestPuritySoundnessOracle(t *testing.T) {
	f := func(seed uint32) bool {
		src := genOracleProgram(seed)
		file, err := parser.Parse("o.c", src)
		if err != nil {
			return true // generator produced an invalid program: skip
		}
		info, err := sema.Check(file)
		if err != nil {
			return true
		}
		pres := purity.Check(info)
		if pres.Err() != nil {
			return true // rejected: nothing to verify dynamically
		}
		if !pres.PureFuncs["probe"] {
			return true
		}
		// probe was verified pure: executing main (which calls probe)
		// must leave the globals exactly as direct initialization would.
		in, err := interp.New(info, nil)
		if err != nil {
			return true
		}
		before := snapshotGlobals(t, in)
		if _, err := in.Call("probe", interp.IntV(3)); err != nil {
			return true // runtime fault is fine; side-effects are not
		}
		after := snapshotGlobals(t, in)
		if before != after {
			t.Logf("purity checker accepted a function with side-effects!\nsource:\n%s\nbefore: %s\nafter:  %s",
				src, before, after)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// snapshotGlobals renders the observable global scalar and array state.
func snapshotGlobals(t *testing.T, in *interp.Interp) string {
	t.Helper()
	var b strings.Builder
	p, err := in.GlobalPtr("garr")
	if err == nil && !p.IsNull() {
		for i := 0; i < 4; i++ {
			fmt.Fprintf(&b, "%v,", p.Add(int64(i)).LoadInt())
		}
	}
	if v, err := in.GlobalValue("gscalar"); err == nil {
		fmt.Fprintf(&b, "g=%d", v.AsInt())
	}
	return b.String()
}

// genOracleProgram builds a small program with a pure-marked probe
// function whose body is drawn from a mix of genuinely pure and
// side-effecting snippets. The checker must accept only the pure ones;
// the oracle verifies the accepted ones dynamically.
func genOracleProgram(seed uint32) string {
	s := seed
	pick := func(list []string) string {
		s = s*1664525 + 1013904223
		return list[int(s>>16)%len(list)]
	}
	bodies := []string{
		// pure bodies
		"int a = x + 1; return a * 2;",
		"int r = 0; for (int i = 0; i < x; i++) r += i; return r;",
		"int* p = (int*)malloc(4 * sizeof(int)); p[0] = x; int r = p[0]; free(p); return r;",
		"int buf[4]; buf[0] = x; buf[1] = buf[0] * 2; return buf[1];",
		"return garr[0] + x;", // reading globals is allowed
		"pure int* v = (pure int*)garr; return v[1] + x;",
		"return probe2(x) + 1;",
		// impure bodies — must be rejected statically
		"garr[0] = x; return x;",
		"garr[1] = garr[1] + 1; return x;",
		"gscalar = x; return x;",
		"gscalar++; return gscalar;",
		"int* p = garr; p[2] = x; return x;",
		"leak(); return x;",
	}
	body := pick(bodies)
	return fmt.Sprintf(`
int garr[4];
int gscalar;

void leak(void) { gscalar = 99; }

pure int probe2(int y) { return y * y; }

pure int probe(int x) {
    %s
}

int main(void) {
    return probe(3);
}
`, body)
}
