package core

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"purec/internal/comp"
	"purec/internal/interp"
	"purec/internal/rt"
	"purec/internal/transform"
)

// poolOracleSrc exercises every piece of per-run state a pooled Process
// must reset: the guest PRNG (srand/rand), heap storage reached through
// a global pointer (malloc), an integer array reduction, an integer
// scalar reduction, a memoizable pure call, an element-wise float
// kernel, and printf output. Integer reductions are bit-identical under
// any bracketing, and the float array is element-wise, so every
// schedule, team size and engine must reproduce the serial interp
// oracle exactly — run after run after run on the same reused Process.
const poolOracleSrc = `
int hist[32];
float fvec[256];
int *data;
int total;

pure int mix(int x) {
    int r = 0;
    for (int i = 0; i < 20; i++)
        r += (x * 7 + i) % 13;
    return r;
}

int main(void) {
    srand(42);
    data = (int*)malloc(256 * sizeof(int));
    for (int i = 0; i < 256; i++)
        data[i] = rand() % 32;
    for (int i = 0; i < 32; i++)
        hist[i] = 0;
    for (int i = 0; i < 256; i++)
        hist[data[i]]++;
    for (int i = 0; i < 256; i++)
        fvec[i] = sqrt((float)data[i]) * 0.5f;
    total = 0;
    for (int i = 0; i < 32; i++)
        total += mix(hist[i]);
    printf("total=%d h0=%d h31=%d\n", total, hist[0], hist[31]);
    return total % 101;
}
`

// poolOracleState is the complete observable outcome of one run.
type poolOracleState struct {
	ret   int64
	out   string
	hist  string
	fvec  string
	total int64
}

func snapIntVec(load func(i int64) int64, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,", load(int64(i)))
	}
	return b.String()
}

func snapFloatVec(load func(i int64) float64, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%x,", math.Float64bits(load(int64(i))))
	}
	return b.String()
}

// poolOracleWant runs the serial tree-walking interpreter and snapshots
// the full observable state.
func poolOracleWant(t *testing.T) poolOracleState {
	t.Helper()
	art, err := Front(poolOracleSrc, Config{FileName: "t.c"})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	in, err := interp.New(art.Info, &out)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := in.RunMain()
	if err != nil {
		t.Fatal(err)
	}
	hp, err := in.GlobalPtr("hist")
	if err != nil {
		t.Fatal(err)
	}
	fp, err := in.GlobalPtr("fvec")
	if err != nil {
		t.Fatal(err)
	}
	tv, err := in.GlobalValue("total")
	if err != nil {
		t.Fatal(err)
	}
	return poolOracleState{
		ret:   ret,
		out:   out.String(),
		hist:  snapIntVec(func(i int64) int64 { return hp.Add(i).LoadInt() }, 32),
		fvec:  snapFloatVec(func(i int64) float64 { return fp.Add(i).LoadFloat() }, 256),
		total: tv.AsInt(),
	}
}

// snapProcess snapshots a finished machine run.
func snapProcess(proc *comp.Process, ret int64, out string) (poolOracleState, error) {
	hp, err := proc.GlobalPtr("hist")
	if err != nil {
		return poolOracleState{}, err
	}
	fp, err := proc.GlobalPtr("fvec")
	if err != nil {
		return poolOracleState{}, err
	}
	tot, err := proc.GlobalInt("total")
	if err != nil {
		return poolOracleState{}, err
	}
	return poolOracleState{
		ret:   ret,
		out:   out,
		hist:  snapIntVec(func(i int64) int64 { return hp.Add(i).LoadInt() }, 32),
		fvec:  snapFloatVec(func(i int64) float64 { return fp.Add(i).LoadFloat() }, 256),
		total: tot,
	}, nil
}

// TestPoolReuseOracle12Goroutines is the daemon's determinism gate: 12
// goroutines hammer one compiled Program through a shared ProcessPool —
// every configuration of {schedule} × {closure, tape} × {gcc, icc} plus
// a memoizing build — with team sizes cycling through real and
// simulated teams, and every single run (reused Process or fresh) must
// reproduce the serial interp oracle bit for bit: return value, stdout
// bytes, the integer histogram, the float vector and the scalar total.
// A reset that leaked PRNG state, heap contents, globals or memo state
// between runs fails here. Run under -race in CI.
func TestPoolReuseOracle12Goroutines(t *testing.T) {
	want := poolOracleWant(t)
	if want.out == "" {
		t.Fatal("oracle produced no output")
	}

	type variant struct {
		name string
		cfg  Config
	}
	var variants []variant
	for _, sched := range []string{"", "static,3", "dynamic,1", "guided,2"} {
		variants = append(variants, variant{
			name: "closure/gcc/" + sched,
			cfg: Config{FileName: "t.c", Parallelize: true,
				Transform: transform.Options{Schedule: sched}},
		})
	}
	variants = append(variants,
		variant{"tape/gcc/", Config{FileName: "t.c", Parallelize: true, Engine: comp.EngineTape}},
		variant{"closure/icc/", Config{FileName: "t.c", Parallelize: true, Backend: comp.BackendICC}},
		variant{"closure/gcc/memo", Config{FileName: "t.c", Parallelize: true, Memoize: true}},
	)

	teamSizes := []int{1, 2, 3, 5, 8}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			prog, _, _, err := BuildProgram(poolOracleSrc, v.cfg)
			if err != nil {
				t.Fatal(err)
			}
			// The team factory cycles sizes and alternates real and
			// simulated teams across the pool's fresh Processes.
			var teamSeq atomic.Int64
			pool := prog.NewPool(comp.PoolOptions{
				Size: 4,
				NewTeam: func() *rt.Team {
					i := teamSeq.Add(1) - 1
					size := teamSizes[i%int64(len(teamSizes))]
					if i%2 == 1 {
						return rt.NewSimTeam(size)
					}
					return rt.NewTeam(size)
				},
			})

			const goroutines = 12
			const runsEach = 3
			var wg sync.WaitGroup
			errs := make(chan error, goroutines*runsEach)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for r := 0; r < runsEach; r++ {
						proc, err := pool.Get()
						if err != nil {
							errs <- fmt.Errorf("g%d r%d get: %v", g, r, err)
							return
						}
						var out bytes.Buffer
						proc.SetStdout(&out)
						ret, err := proc.RunMain()
						if err != nil {
							errs <- fmt.Errorf("g%d r%d run: %v", g, r, err)
							return
						}
						got, err := snapProcess(proc, ret, out.String())
						pool.Put(proc)
						if err != nil {
							errs <- fmt.Errorf("g%d r%d snapshot: %v", g, r, err)
							return
						}
						if got != want {
							errs <- fmt.Errorf("g%d r%d diverged from oracle: ret %d/%d out %q/%q total %d/%d hist eq=%v fvec eq=%v",
								g, r, got.ret, want.ret, got.out, want.out,
								got.total, want.total, got.hist == want.hist, got.fvec == want.fvec)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}

			s := pool.Stats()
			if s.Gets != goroutines*runsEach {
				t.Errorf("pool gets = %d, want %d", s.Gets, goroutines*runsEach)
			}
			if s.Reuses == 0 {
				t.Error("pool reuse never happened — the test exercised only fresh Processes")
			}
			if v.cfg.Memoize {
				if ms := prog.MemoStats(); ms.Hits == 0 {
					t.Errorf("memoizing build recorded no memo hits across pooled runs: %+v", ms)
				}
			}
		})
	}
}
