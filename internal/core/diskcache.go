package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"purec/internal/parser"
	"purec/internal/purity"
	"purec/internal/sema"
	"purec/internal/vra"
)

// The persistent program cache stores validated build products on disk,
// keyed by the same content hash as the in-memory ProgramCache. An
// entry holds the lowered, polyhedrally transformed source of a
// finished build plus the front end's verdicts (pure set, SCoP count,
// rejections) and an integrity checksum. Loading an entry restores an
// executable Artifact without re-entering the pipeline front end
// (preprocess, parse, purity, SCoP detection, polyhedral transform):
// only the cheap revalidation the chain runs on its own output anyway —
// parse + semantic check + value-range analysis of the already-lowered
// source — and the closure compile run again, because compiled
// Programs are Go closures and cannot be serialized. Corrupt entries
// (truncated files, bit flips, version skew) are detected by the
// checksum, rejected, deleted and rebuilt from source — never executed.
//
// Writes are torn-write-safe for concurrent daemons sharing one cache
// directory: each entry is written to an O_EXCL temp file and
// atomically renamed into place, so a reader sees either the old
// complete entry, the new complete entry, or nothing.

// diskEntryVersion is bumped whenever the entry layout or the restore
// contract changes; entries of other versions are rejected as corrupt.
const diskEntryVersion = 1

// diskEntry is the JSON form of one on-disk cache entry.
type diskEntry struct {
	Version     int      `json:"version"`
	Key         string   `json:"key"`
	FileName    string   `json:"file_name"`
	Transformed string   `json:"transformed"`
	Final       string   `json:"final"`
	Pure        []string `json:"pure,omitempty"`
	SCoPs       int      `json:"scops"`
	Rejections  []string `json:"rejections,omitempty"`
	// Sum is the hex SHA-256 of the canonical payload; Load rejects
	// entries whose recomputed sum differs (bit flip, truncation that
	// still parses, hand edits).
	Sum string `json:"sum"`
}

// sum computes the canonical integrity checksum of the entry payload.
func (e *diskEntry) sum() string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d;key:%s;file:%d:%s;", e.Version, e.Key, len(e.FileName), e.FileName)
	fmt.Fprintf(h, "trans:%d:%s;final:%d:%s;", len(e.Transformed), e.Transformed, len(e.Final), e.Final)
	fmt.Fprintf(h, "pure:%d:%s;scops:%d;rej:%d:%s;",
		len(e.Pure), strings.Join(e.Pure, ","), e.SCoPs, len(e.Rejections), strings.Join(e.Rejections, "\x00"))
	return hex.EncodeToString(h.Sum(nil))
}

// DiskStats counts the disk cache's traffic. Corrupt counts entries the
// integrity or revalidation checks rejected (each is deleted and the
// build falls back to the full pipeline).
type DiskStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Stores  uint64 `json:"stores"`
	Corrupt uint64 `json:"corrupt"`
	Evicted uint64 `json:"evicted"`
}

// DiskCache is the persistent, shareable half of the program cache: a
// directory of checksummed build products keyed by content hash.
// Multiple daemons may point at one directory; entries are written
// atomically and validated on every load, so a reader can never observe
// (or execute) a torn or corrupted artifact.
type DiskCache struct {
	dir string
	max int

	mu sync.Mutex
	// inflight guards keys a loader is currently reading: capacity
	// eviction skips them, so an eviction racing a load can never pull
	// the file out from under the reader.
	inflight map[CacheKey]int
	stats    DiskStats
}

// NewDiskCache opens (creating if needed) the cache directory, keeping
// at most maxEntries finished entries (0 or less means unlimited).
func NewDiskCache(dir string, maxEntries int) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk cache: %v", err)
	}
	return &DiskCache{dir: dir, max: maxEntries, inflight: map[CacheKey]int{}}, nil
}

// Dir returns the cache directory.
func (d *DiskCache) Dir() string { return d.dir }

// Stats snapshots the traffic counters.
func (d *DiskCache) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Len returns the number of entry files currently in the directory.
func (d *DiskCache) Len() int {
	names, _ := filepath.Glob(filepath.Join(d.dir, "*.json"))
	return len(names)
}

// path returns the entry file of a key.
func (d *DiskCache) path(key CacheKey) string {
	return filepath.Join(d.dir, key.String()+".json")
}

func (d *DiskCache) beginLoad(key CacheKey) {
	d.mu.Lock()
	d.inflight[key]++
	d.mu.Unlock()
}

func (d *DiskCache) endLoad(key CacheKey) {
	d.mu.Lock()
	if d.inflight[key]--; d.inflight[key] <= 0 {
		delete(d.inflight, key)
	}
	d.mu.Unlock()
}

func (d *DiskCache) count(field *uint64) {
	d.mu.Lock()
	*field++
	d.mu.Unlock()
}

// Load restores the Artifact of a previously stored build. It returns
// ok=false on a plain miss and on any integrity failure; corrupt
// entries are deleted so the rebuilt artifact can replace them. The
// returned Artifact carries src as Stages.Original; the intermediate
// front-end snapshots (Stripped/Expanded/Marked) and the transform
// Report are not persisted — the daemon's execution path needs neither.
func (d *DiskCache) Load(src string, key CacheKey, cfg Config) (*Artifact, bool) {
	d.beginLoad(key)
	defer d.endLoad(key)
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		d.count(&d.stats.Misses)
		return nil, false
	}
	e := &diskEntry{}
	if err := json.Unmarshal(data, e); err != nil {
		d.reject(key, "undecodable entry")
		return nil, false
	}
	if e.Version != diskEntryVersion || e.Key != key.String() || e.Sum != e.sum() {
		d.reject(key, "integrity check failed")
		return nil, false
	}
	art, err := restoreArtifact(src, e)
	if err != nil {
		// The payload checksummed clean but no longer revalidates (e.g.
		// an entry written by a build of a different toolchain state).
		// Treat exactly like corruption: reject, delete, rebuild.
		d.reject(key, "revalidation failed")
		return nil, false
	}
	d.count(&d.stats.Hits)
	return art, true
}

// reject deletes a failed entry and counts it as corrupt (plus a miss,
// so hit-rate arithmetic stays honest).
func (d *DiskCache) reject(key CacheKey, _ string) {
	os.Remove(d.path(key))
	d.mu.Lock()
	d.stats.Corrupt++
	d.stats.Misses++
	d.mu.Unlock()
}

// Store persists a finished build product. The write is atomic
// (O_EXCL temp file + rename); concurrent daemons storing the same key
// race benignly — last rename wins, every intermediate state is a
// complete entry.
func (d *DiskCache) Store(key CacheKey, cfg Config, art *Artifact) error {
	name := cfg.FileName
	if name == "" {
		name = "program.c"
	}
	e := &diskEntry{
		Version:     diskEntryVersion,
		Key:         key.String(),
		FileName:    name,
		Transformed: art.Stages.Transformed,
		Final:       art.Stages.Final,
		Pure:        append([]string(nil), art.Pure...),
		SCoPs:       art.SCoPs,
		Rejections:  append([]string(nil), art.Rejections...),
	}
	sort.Strings(e.Pure)
	e.Sum = e.sum()
	data, err := json.MarshalIndent(e, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	d.count(&d.stats.Stores)
	d.evictOver()
	return nil
}

// evictOver drops the oldest finished entries until the directory fits
// the capacity. Keys with a load in flight are skipped — the reader
// holds no file lock, so deleting under it could turn a valid hit into
// a spurious miss; if only in-flight entries remain the cache
// temporarily exceeds its capacity instead.
func (d *DiskCache) evictOver() {
	if d.max <= 0 {
		return
	}
	names, err := filepath.Glob(filepath.Join(d.dir, "*.json"))
	if err != nil || len(names) <= d.max {
		return
	}
	type entry struct {
		path string
		mod  int64
	}
	var entries []entry
	for _, n := range names {
		fi, err := os.Stat(n)
		if err != nil {
			continue
		}
		entries = append(entries, entry{n, fi.ModTime().UnixNano()})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mod < entries[j].mod })
	over := len(entries) - d.max
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, e := range entries {
		if over <= 0 {
			return
		}
		base := strings.TrimSuffix(filepath.Base(e.path), ".json")
		if key, err := ParseCacheKey(base); err == nil && d.inflight[key] > 0 {
			continue
		}
		if os.Remove(e.path) == nil {
			d.stats.Evicted++
			over--
		}
	}
}

// restoreArtifact revalidates a disk entry into an executable Artifact
// without the pipeline front end: the stored source is already lowered
// and transformed, so only the chain's own restart-on-generated-file
// steps run — parse, semantic check, value-range analysis and the
// memoizable-set computation. Exactly what core.Front does after
// PC-PosPro, and nothing before it.
func restoreArtifact(src string, e *diskEntry) (*Artifact, error) {
	art := &Artifact{
		Pure:       append([]string(nil), e.Pure...),
		SCoPs:      e.SCoPs,
		Rejections: append([]string(nil), e.Rejections...),
	}
	art.Stages.Original = src
	art.Stages.Transformed = e.Transformed
	art.Stages.Final = e.Final
	file, err := parser.Parse(e.FileName, e.Transformed)
	if err != nil {
		return nil, fmt.Errorf("stored source does not reparse: %v", err)
	}
	info, err := sema.Check(file)
	if err != nil {
		return nil, fmt.Errorf("stored source does not re-check: %v", err)
	}
	art.Info = info
	// The analysis runs on the final model only: the bounds proofs the
	// Compile step consumes are keyed to these nodes. The user-source
	// findings of -analyze are a front-end concern and are not restored.
	art.VRA = vra.Analyze(info)
	for name := range purity.Memoizable(info) {
		art.Memoizable = append(art.Memoizable, name)
	}
	return art, nil
}
