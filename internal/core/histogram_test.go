package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"purec/internal/apps"
	"purec/internal/comp"
	"purec/internal/interp"
	"purec/internal/mem"
	"purec/internal/rt"
	"purec/internal/transform"
)

// snapshotIntVec renders the bit pattern of an int vector global.
func snapshotIntVec(p mem.Pointer, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,", p.Add(int64(i)).LoadInt())
	}
	return b.String()
}

// TestArrayReductionOracle12Processes is the array-reduction
// equivalence proof (run under -race in CI): the histogram workload
// runs through the full pipeline — scop recognition, the
// reduction(+:hist[]) pragma, privatized per-worker copies — on 12
// concurrent Processes mixing real and simulated teams, every
// schedule clause, fusion on and off, and every output must be
// bit-identical to the sequential interp oracle. Integer array
// reductions are exact by contract regardless of grouping.
func TestArrayReductionOracle12Processes(t *testing.T) {
	const n, bins = 6000, 32
	defs := apps.HistogramDefines(n, bins)

	// Sequential interp oracle.
	art, err := Front(apps.HistogramSrc, Config{Defines: defs})
	if err != nil {
		t.Fatal(err)
	}
	in, err := interp.New(art.Info, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.RunMain(); err != nil {
		t.Fatal(err)
	}
	op, err := in.GlobalPtr("out")
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotIntVec(op, bins)

	// The oracle must agree with the arithmetic reference.
	ref := apps.HistogramRef(n, bins)
	var refSnap strings.Builder
	for _, v := range ref {
		fmt.Fprintf(&refSnap, "%d,", v)
	}
	if want != refSnap.String() {
		t.Fatalf("oracle %s != reference %s", want, refSnap.String())
	}

	teamSizes := []int{1, 2, 3, 5, 8, 16}
	for _, sched := range []string{"", "static,5", "dynamic,1", "guided,2"} {
		for _, noFuse := range []bool{false, true} {
			cfg := Config{Parallelize: true, NoFuse: noFuse, Defines: defs,
				Transform: transform.Options{Schedule: sched}}
			prog, _, _, err := BuildProgram(apps.HistogramSrc, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !noFuse && prog.FusedKernels() == 0 {
				t.Fatal("fused build reports zero fused kernels")
			}
			const procs = 12
			var wg sync.WaitGroup
			errs := make(chan error, procs)
			for p := 0; p < procs; p++ {
				team := rt.NewTeam(teamSizes[p%len(teamSizes)])
				if p%2 == 1 {
					team = rt.NewSimTeam(teamSizes[p%len(teamSizes)])
				}
				wg.Add(1)
				go func(team *rt.Team) {
					defer wg.Done()
					proc, err := prog.NewProcess(comp.ProcOptions{Team: team})
					if err != nil {
						errs <- err
						return
					}
					if _, err := proc.RunMain(); err != nil {
						errs <- fmt.Errorf("sched=%q NoFuse=%v: %v", sched, noFuse, err)
						return
					}
					gp, err := proc.GlobalPtr("out")
					if err != nil {
						errs <- err
						return
					}
					if got := snapshotIntVec(gp, bins); got != want {
						errs <- fmt.Errorf("sched=%q NoFuse=%v team=%d sim=%v: output differs from oracle",
							sched, noFuse, team.Size(), team.Simulated())
					}
				}(team)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		}
	}

	// Serial build (no parallelization) also matches.
	seq, err := Build(apps.HistogramSrc, Config{Defines: defs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seq.Machine.RunMain(); err != nil {
		t.Fatal(err)
	}
	gp, err := seq.Machine.GlobalPtr("out")
	if err != nil {
		t.Fatal(err)
	}
	if got := snapshotIntVec(gp, bins); got != want {
		t.Error("serial build differs from oracle")
	}
}

// TestHistogramPipelineEmitsArrayClause pins the end-to-end plumbing:
// the transformed source of the histogram workload must carry the
// array-reduction pragma and the report must show the parallel level.
func TestHistogramPipelineEmitsArrayClause(t *testing.T) {
	res, err := Build(apps.HistogramSrc, Config{Parallelize: true,
		Defines: apps.HistogramDefines(1000, 16)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stages.Transformed, "reduction(+:hist[])") {
		t.Errorf("transformed source lacks reduction(+:hist[]):\n%s", res.Stages.Transformed)
	}
	found := false
	for _, lr := range res.Report.Loops {
		for _, r := range lr.Reductions {
			if r == "+:hist[]" && lr.ParallelLevel == 0 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("report lacks a parallel +:hist[] nest: %+v", res.Report.Loops)
	}
}

// TestArrayReductionSelfReadStaysSerial is the regression test for
// the recognition soundness fix: a compound update whose right-hand
// side reads the accumulator array through another subscript
// (hist[a[i]] += hist[b[i]]) must NOT be parallelized — each worker
// would read its identity-filled private copy where the serial loop
// reads the evolving shared array, silently changing the result. The
// pipeline must keep the nest serial and match the oracle at every
// team size.
func TestArrayReductionSelfReadStaysSerial(t *testing.T) {
	src := `
int a[100], b[100];
int out;
int main(void) {
    int hist[16];
    for (int i = 0; i < 100; i++) {
        a[i] = i % 16;
        b[i] = (i * 3) % 16;
    }
    for (int i = 0; i < 16; i++) hist[i] = 1;
    for (int i = 0; i < 100; i++)
        hist[a[i]] += hist[b[i]];
    int s = 0;
    for (int i = 0; i < 16; i++) s += hist[i] % 1000;
    out = s;
    return 0;
}`
	art, err := Front(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := interp.New(art.Info, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.RunMain(); err != nil {
		t.Fatal(err)
	}
	wantV, err := in.GlobalValue("out")
	if err != nil {
		t.Fatal(err)
	}
	want := wantV.I
	res, err := Build(src, Config{Parallelize: true, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range res.Report.Loops {
		for _, r := range lr.Reductions {
			if strings.Contains(r, "hist[]") {
				t.Fatalf("self-reading update wrongly recognized as array reduction: %+v", res.Report.Loops)
			}
		}
	}
	for _, teamSize := range []int{1, 4, 8} {
		for _, sim := range []bool{false, true} {
			team := rt.NewTeam(teamSize)
			if sim {
				team = rt.NewSimTeam(teamSize)
			}
			proc, err := res.Program.NewProcess(comp.ProcOptions{Team: team})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := proc.RunMain(); err != nil {
				t.Fatal(err)
			}
			got, err := proc.GlobalInt("out")
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("team=%d sim=%v: got %d, oracle %d", teamSize, sim, got, want)
			}
		}
	}
}
