package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"purec/internal/apps"
	"purec/internal/comp"
	"purec/internal/interp"
	"purec/internal/rt"
	"purec/internal/transform"
)

// aliasWorkloads are the relational-analysis equivalence programs: the
// derived-iterator subscript (forward-substituted, proven via the
// affine relation), the ?:-clamped gather (proven via path-sensitive
// refinement), the no-alias pointer loop (parallelized via points-to
// resolution) and the overlapping pointer pair (must stay serial —
// the alias resolution exposes the carried dependence).
func aliasWorkloads() []struct {
	name string
	src  string
	out  string
	n    int
} {
	return []struct {
		name string
		src  string
		out  string
		n    int
	}{
		{"derived", apps.DerivedSrc, "y", 512},
		{"clamp-gather", apps.ClampGatherSrc, "y", 512},
		{"ptr-scale", apps.PtrScaleSrc, "y", 512},
		{"aliased-pair", apps.AliasedPairSrc, "x", 544},
	}
}

func aliasDefs() map[string]string { return apps.RelationalDefines(512, 544, 16, 2) }

// TestAliasOracle12Processes is the relational-proof equivalence suite:
// every workload runs on 12 concurrent Processes (alias analysis on and
// off, both compiler backends, both statement engines, all loop
// schedules, mixed real and simulated teams) and every output must be
// bit-identical to the sequential interp oracle. The alias-driven
// parallelization and the relation-driven check elision remove only
// work that could never fire — and the aliased pair proves the other
// direction: its overlapping pointers serialize under every
// configuration, so the suite would race (and -race would catch it) if
// pointer names were ever again mistaken for distinct arrays. Run
// under -race in CI.
func TestAliasOracle12Processes(t *testing.T) {
	teamSizes := []int{1, 2, 3, 5, 8, 16}
	schedules := []string{"", "static,3", "dynamic,1"}
	builds := []struct {
		noAlias bool
		backend comp.Backend
		engine  comp.Engine
	}{
		{false, comp.BackendGCC, comp.EngineClosure},
		{true, comp.BackendGCC, comp.EngineClosure},
		{false, comp.BackendICC, comp.EngineTape},
		{true, comp.BackendICC, comp.EngineTape},
	}
	for _, w := range aliasWorkloads() {
		w := w
		t.Run(w.name, func(t *testing.T) {
			first, err := Build(w.src, withDefs(Config{Parallelize: true}, aliasDefs()))
			if err != nil {
				t.Fatal(err)
			}
			in, err := interp.New(first.Info, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := in.RunMain(); err != nil {
				t.Fatal(err)
			}
			op, err := in.GlobalPtr(w.out)
			if err != nil {
				t.Fatal(err)
			}
			want := snapshotVec(op, w.out, w.n)

			var wg sync.WaitGroup
			errs := make(chan error, len(builds)*len(schedules))
			idx := 0
			for _, b := range builds {
				for _, sched := range schedules {
					cfg := withDefs(Config{Parallelize: true}, aliasDefs())
					cfg.NoAlias = b.noAlias
					cfg.Backend = b.backend
					cfg.Engine = b.engine
					cfg.Transform = transform.Options{Schedule: sched, MinParallelTrip: -1}
					prog, _, _, err := BuildProgram(w.src, cfg)
					if err != nil {
						t.Fatal(err)
					}
					team := rt.NewTeam(teamSizes[idx%len(teamSizes)])
					if idx%2 == 1 {
						team = rt.NewSimTeam(teamSizes[idx%len(teamSizes)])
					}
					idx++
					wg.Add(1)
					go func(prog *comp.Program, team *rt.Team, noAlias bool, sched string) {
						defer wg.Done()
						proc, err := prog.NewProcess(comp.ProcOptions{Team: team})
						if err != nil {
							errs <- err
							return
						}
						if _, err := proc.RunMain(); err != nil {
							errs <- fmt.Errorf("NoAlias=%v sched=%q: %v", noAlias, sched, err)
							return
						}
						p, err := proc.GlobalPtr(w.out)
						if err != nil {
							errs <- err
							return
						}
						if got := snapshotVec(p, w.out, w.n); got != want {
							errs <- fmt.Errorf("NoAlias=%v sched=%q team=%d sim=%v: output differs from oracle",
								noAlias, sched, team.Size(), team.Simulated())
						}
					}(prog, team, b.noAlias, sched)
				}
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestAliasProofEdges pins both sides of the alias boundary. The
// disjoint pointer pair must parallelize with the resolution named in
// the report; the overlapping pair must serialize whether the analysis
// resolves it (carried dependence on the renamed array) or is disabled
// (unresolved pointer).
func TestAliasProofEdges(t *testing.T) {
	t.Run("disjoint-parallel", func(t *testing.T) {
		cfg := withDefs(Config{Parallelize: true, NoCache: true}, aliasDefs())
		cfg.Transform.MinParallelTrip = -1
		prog, art, _, err := BuildProgram(apps.PtrScaleSrc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		parallel := false
		for _, l := range art.Report.Loops {
			if l.Func == "run" && l.ParallelLevel >= 0 {
				parallel = true
				if len(l.AliasNotes) == 0 {
					t.Error("parallel pointer nest must carry alias notes")
				}
			}
		}
		if !parallel {
			t.Fatalf("disjoint pointer nest must parallelize:\n%s", art.Report)
		}
		if prog.ElidedChecks() == 0 {
			t.Error("resolved pointer build elided no checks")
		}
	})

	t.Run("overlap-serial-resolved", func(t *testing.T) {
		cfg := withDefs(Config{Parallelize: true, NoCache: true}, aliasDefs())
		cfg.Transform.MinParallelTrip = -1
		_, art, _, err := BuildProgram(apps.AliasedPairSrc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range art.Report.Loops {
			if l.Func != "run" {
				continue
			}
			if l.ParallelLevel >= 0 {
				t.Fatalf("overlapping pointers must serialize: %+v", l)
			}
			if !strings.Contains(l.SerialReason, "dependences on x") {
				t.Errorf("resolved overlap must name the renamed array: %q", l.SerialReason)
			}
		}
	})

	t.Run("overlap-serial-disabled", func(t *testing.T) {
		cfg := withDefs(Config{Parallelize: true, NoCache: true, NoAlias: true}, aliasDefs())
		cfg.Transform.MinParallelTrip = -1
		_, art, _, err := BuildProgram(apps.AliasedPairSrc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range art.Report.Loops {
			if l.Func != "run" {
				continue
			}
			if l.ParallelLevel >= 0 {
				t.Fatalf("-noalias must serialize every pointer nest: %+v", l)
			}
			if !strings.Contains(l.SerialReason, "unresolved pointer") {
				t.Errorf("disabled analysis must report the unresolved pointer: %q", l.SerialReason)
			}
		}
	})
}
