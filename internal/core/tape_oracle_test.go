package core

import (
	"fmt"
	"sync"
	"testing"

	"purec/internal/apps"
	"purec/internal/comp"
	"purec/internal/interp"
	"purec/internal/rt"
	"purec/internal/transform"
)

// tapeWorkloads are the Fig T1 programs sized down for tests: the
// element-wise kernels plus the non-canonical branchy body, the one
// workload whose every iteration runs on the statement engine.
func tapeWorkloads() []struct {
	name string
	src  string
	defs map[string]string
	out  string
	n    int
	cfg  Config
} {
	ws := kernelWorkloads()
	ws = append(ws, struct {
		name string
		src  string
		defs map[string]string
		out  string
		n    int
		cfg  Config
	}{"noncanon", apps.NoncanonSrc, apps.KernDefines(512, 2), "y", 512, Config{Parallelize: true}})
	return ws
}

// TestTapeEngineOracle12Processes is the tape-backend equivalence
// proof: every Fig T1 workload runs on 12 concurrent Processes (mixed
// real and simulated teams, all loop schedules) of tape-engine
// Programs — fusion on and fusion off — and every output must be
// bit-identical to the sequential interp oracle. Run under -race in
// CI: tape workers clone the environment slice headers but share the
// constant pools and instruction array read-only.
func TestTapeEngineOracle12Processes(t *testing.T) {
	teamSizes := []int{1, 2, 3, 5, 8, 16}
	schedules := []string{"", "static,5", "dynamic,1", "guided,2"}
	for _, w := range tapeWorkloads() {
		w := w
		t.Run(w.name, func(t *testing.T) {
			// Sequential interp oracle.
			first, err := Build(w.src, withDefs(w.cfg, w.defs))
			if err != nil {
				t.Fatal(err)
			}
			in, err := interp.New(first.Info, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := in.RunMain(); err != nil {
				t.Fatal(err)
			}
			op, err := in.GlobalPtr(w.out)
			if err != nil {
				t.Fatal(err)
			}
			want := snapshotVec(op, w.out, w.n)

			var wg sync.WaitGroup
			errs := make(chan error, 2*len(schedules)*3)
			for _, noFuse := range []bool{false, true} {
				for si, sched := range schedules {
					cfg := withDefs(w.cfg, w.defs)
					cfg.NoFuse = noFuse
					cfg.Engine = comp.EngineTape
					cfg.Transform = transform.Options{Schedule: sched}
					prog, _, _, err := BuildProgram(w.src, cfg)
					if err != nil {
						t.Fatal(err)
					}
					// 3 processes per (noFuse, schedule) build:
					// 12 concurrent processes per fusion mode.
					for p := 0; p < 3; p++ {
						idx := si*3 + p
						team := rt.NewTeam(teamSizes[idx%len(teamSizes)])
						if idx%2 == 1 {
							team = rt.NewSimTeam(teamSizes[idx%len(teamSizes)])
						}
						wg.Add(1)
						go func(prog *comp.Program, team *rt.Team, noFuse bool, sched string) {
							defer wg.Done()
							proc, err := prog.NewProcess(comp.ProcOptions{Team: team})
							if err != nil {
								errs <- err
								return
							}
							if _, err := proc.RunMain(); err != nil {
								errs <- fmt.Errorf("NoFuse=%v sched=%q: %v", noFuse, sched, err)
								return
							}
							p, err := proc.GlobalPtr(w.out)
							if err != nil {
								errs <- err
								return
							}
							if got := snapshotVec(p, w.out, w.n); got != want {
								errs <- fmt.Errorf("NoFuse=%v sched=%q team=%d sim=%v: output differs from oracle",
									noFuse, sched, team.Size(), team.Simulated())
							}
						}(prog, team, noFuse, sched)
					}
				}
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestTapeEngineTrapParity pins the trap side of the engine contract:
// faulty programs must fail as runtime errors on the tape engine
// exactly as they do on the closure engine and in the interp oracle —
// same fault, never a silent wrong answer.
func TestTapeEngineTrapParity(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"oob-store", `
float *y;
int main(void) {
    y = (float*)malloc(8 * sizeof(float));
    for (int i = 0; i <= 8; i++)
        y[i] = 1.0f;
    return 0;
}
`},
		{"div-zero", `
int d;
int main(void) {
    d = 0;
    int s = 0;
    for (int i = 0; i < 4; i++)
        s = s + i / d;
    return s;
}
`},
		{"rem-zero", `
int d;
int main(void) {
    d = 0;
    return 7 % d;
}
`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, eng := range []comp.Engine{comp.EngineClosure, comp.EngineTape} {
				res, err := Build(tc.src, Config{Engine: eng, NoFuse: true})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := res.Machine.RunMain(); err == nil {
					t.Fatalf("engine=%v: faulty program must trap", eng)
				} else if _, isRT := err.(*comp.RuntimeError); !isRT {
					t.Fatalf("engine=%v: want RuntimeError, got %T %v", eng, err, err)
				}
			}
			// The oracle agrees the program is faulty.
			art, err := Front(tc.src, Config{})
			if err != nil {
				t.Fatal(err)
			}
			in, err := interp.New(art.Info, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := in.RunMain(); err == nil {
				t.Fatal("interp oracle must also trap")
			}
		})
	}
}
