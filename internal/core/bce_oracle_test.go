package core

import (
	"fmt"
	"sync"
	"testing"

	"purec/internal/apps"
	"purec/internal/comp"
	"purec/internal/interp"
	"purec/internal/rt"
	"purec/internal/transform"
)

// bceWorkloads are the check-elision equivalence programs: the proven
// gather (elided per-element test, parallelized nest), the opaque
// gather (checked, force-serialized) and axpy (elided launch checks).
func bceWorkloads() []struct {
	name string
	src  string
	defs map[string]string
	out  string
	n    int
} {
	return []struct {
		name string
		src  string
		defs map[string]string
		out  string
		n    int
	}{
		{"gather-proven", apps.GatherSrc, apps.GatherDefines(512, 128, 2), "y", 512},
		{"gather-opaque", apps.GatherOpaqueSrc, apps.GatherDefines(512, 128, 2), "y", 512},
		{"axpy", apps.AxpySrc, apps.KernDefines(512, 2), "y", 512},
	}
}

// TestBCEOracle12Processes is the check-elision equivalence proof:
// every workload runs on 12 concurrent Processes (BCE on and off,
// both compiler backends, both statement engines, all loop schedules,
// mixed real and simulated teams) and every output must be
// bit-identical to the sequential interp oracle — elision removes only
// checks that could never fire, never a computation. Run under -race
// in CI.
func TestBCEOracle12Processes(t *testing.T) {
	teamSizes := []int{1, 2, 3, 5, 8, 16}
	schedules := []string{"", "static,3", "dynamic,1"}
	builds := []struct {
		noBCE   bool
		backend comp.Backend
		engine  comp.Engine
	}{
		{false, comp.BackendGCC, comp.EngineClosure},
		{true, comp.BackendGCC, comp.EngineClosure},
		{false, comp.BackendICC, comp.EngineTape},
		{true, comp.BackendICC, comp.EngineTape},
	}
	for _, w := range bceWorkloads() {
		w := w
		t.Run(w.name, func(t *testing.T) {
			first, err := Build(w.src, withDefs(Config{Parallelize: true}, w.defs))
			if err != nil {
				t.Fatal(err)
			}
			in, err := interp.New(first.Info, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := in.RunMain(); err != nil {
				t.Fatal(err)
			}
			op, err := in.GlobalPtr(w.out)
			if err != nil {
				t.Fatal(err)
			}
			want := snapshotVec(op, w.out, w.n)

			var wg sync.WaitGroup
			errs := make(chan error, len(builds)*len(schedules))
			idx := 0
			for _, b := range builds {
				for _, sched := range schedules {
					cfg := withDefs(Config{Parallelize: true}, w.defs)
					cfg.NoBCE = b.noBCE
					cfg.Backend = b.backend
					cfg.Engine = b.engine
					cfg.Transform = transform.Options{Schedule: sched}
					prog, _, _, err := BuildProgram(w.src, cfg)
					if err != nil {
						t.Fatal(err)
					}
					team := rt.NewTeam(teamSizes[idx%len(teamSizes)])
					if idx%2 == 1 {
						team = rt.NewSimTeam(teamSizes[idx%len(teamSizes)])
					}
					idx++
					wg.Add(1)
					go func(prog *comp.Program, team *rt.Team, noBCE bool, sched string) {
						defer wg.Done()
						proc, err := prog.NewProcess(comp.ProcOptions{Team: team})
						if err != nil {
							errs <- err
							return
						}
						if _, err := proc.RunMain(); err != nil {
							errs <- fmt.Errorf("NoBCE=%v sched=%q: %v", noBCE, sched, err)
							return
						}
						p, err := proc.GlobalPtr(w.out)
						if err != nil {
							errs <- err
							return
						}
						if got := snapshotVec(p, w.out, w.n); got != want {
							errs <- fmt.Errorf("NoBCE=%v sched=%q team=%d sim=%v: output differs from oracle",
								noBCE, sched, team.Size(), team.Simulated())
						}
					}(prog, team, b.noBCE, sched)
				}
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// proofMarginSrc is the exactly-one-element margin: with SLACK=0 the
// index contents reach M-1 — the last in-bounds cell — and the proof
// holds by nothing to spare; with SLACK=1 the modulus admits M, one
// past the end, the proof fails and the kept check must trap.
const proofMarginSrc = `
int idx[N];
float x[M];
float y[N];

void fill() {
    for (int i = 0; i < M; i++) { x[i] = (float)(i % 5) * 0.5f; }
    for (int i = 0; i < N; i++) { idx[i] = i % (M + SLACK); }
}

void gather() {
    for (int i = 0; i < N; i++) { y[i] = x[idx[i]]; }
}

int main() { fill(); gather(); return 0; }
`

func marginDefines(n, m, slack int) map[string]string {
	return map[string]string{
		"N":     fmt.Sprintf("%d", n),
		"M":     fmt.Sprintf("%d", m),
		"SLACK": fmt.Sprintf("%d", slack),
	}
}

// TestBCEProofMargin pins both edges of the proof boundary. The
// zero-slack build is proven with exactly one element of margin: it
// must parallelize, elide, run clean and match the oracle. The
// one-slack build is unprovable by exactly one element: the check
// stays even with BCE on, and the program traps identically on both
// engines and in the interp oracle — never a silent wrong answer.
func TestBCEProofMargin(t *testing.T) {
	n, m := 256, 64

	t.Run("proven-edge", func(t *testing.T) {
		defs := marginDefines(n, m, 0)
		prog, art, _, err := BuildProgram(proofMarginSrc, withDefs(Config{Parallelize: true, NoCache: true}, defs))
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range art.Report.Loops {
			if l.Func == "gather" && l.ParallelLevel < 0 {
				t.Errorf("proven-edge gather serialized: %s", l.SerialReason)
			}
		}
		if prog.ElidedChecks() == 0 {
			t.Error("proven-edge build elided no checks")
		}
		proc, err := prog.NewProcess(comp.ProcOptions{Team: rt.NewTeam(4)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := proc.RunMain(); err != nil {
			t.Fatalf("proven-edge run: %v", err)
		}
		first, err := Build(proofMarginSrc, withDefs(Config{}, defs))
		if err != nil {
			t.Fatal(err)
		}
		in, err := interp.New(first.Info, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := in.RunMain(); err != nil {
			t.Fatal(err)
		}
		op, err := in.GlobalPtr("y")
		if err != nil {
			t.Fatal(err)
		}
		pp, err := proc.GlobalPtr("y")
		if err != nil {
			t.Fatal(err)
		}
		if snapshotVec(pp, "y", n) != snapshotVec(op, "y", n) {
			t.Error("proven-edge output differs from oracle")
		}
	})

	t.Run("unprovable-by-one", func(t *testing.T) {
		defs := marginDefines(n, m, 1)
		for _, eng := range []comp.Engine{comp.EngineClosure, comp.EngineTape} {
			prog, art, _, err := BuildProgram(proofMarginSrc,
				withDefs(Config{Parallelize: true, NoCache: true, Engine: eng}, defs))
			if err != nil {
				t.Fatal(err)
			}
			for _, l := range art.Report.Loops {
				if l.Func == "gather" && l.ParallelLevel >= 0 {
					t.Error("unprovable gather must stay serial")
				}
			}
			proc, err := prog.NewProcess(comp.ProcOptions{Team: rt.NewTeam(2)})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := proc.RunMain(); err == nil {
				t.Fatalf("engine=%v: unprovable access must trap with BCE on", eng)
			} else if _, isRT := err.(*comp.RuntimeError); !isRT {
				t.Fatalf("engine=%v: want RuntimeError, got %T %v", eng, err, err)
			}
		}
		art, err := Front(proofMarginSrc, withDefs(Config{}, defs))
		if err != nil {
			t.Fatal(err)
		}
		in, err := interp.New(art.Info, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := in.RunMain(); err == nil {
			t.Fatal("interp oracle must also trap")
		}
	})
}
