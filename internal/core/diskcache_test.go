package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"purec/internal/comp"
	"purec/internal/rt"
)

const diskCacheSrc = `
int acc[16];

int main(void) {
    for (int i = 0; i < 16; i++)
        acc[i] = i * 3 + 1;
    int s = 0;
    for (int i = 0; i < 16; i++)
        s += acc[i];
    printf("s=%d\n", s);
    return s % 97;
}
`

func newDiskTest(t *testing.T, maxEntries int) (*DiskCache, string) {
	t.Helper()
	dir := t.TempDir()
	d, err := NewDiskCache(dir, maxEntries)
	if err != nil {
		t.Fatal(err)
	}
	return d, dir
}

// runViaCache builds through the cache and executes, returning the
// build source and stdout.
func runViaCache(t *testing.T, c *ProgramCache, src string, cfg Config) (BuildSource, string) {
	t.Helper()
	prog, _, bs, err := c.BuildDetail(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	proc, err := prog.NewProcess(comp.ProcOptions{Team: rt.NewTeam(1), Stdout: &out})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.RunMain(); err != nil {
		t.Fatal(err)
	}
	return bs, out.String()
}

// TestDiskCacheRestartSkipsFrontEnd is the daemon-restart contract: a
// second ProgramCache (a "restarted daemon") sharing the first one's
// disk directory must serve the program from disk — provably without
// re-entering the pipeline front end — and the restored Program's
// output must match the originally compiled one byte for byte.
func TestDiskCacheRestartSkipsFrontEnd(t *testing.T) {
	d, _ := newDiskTest(t, 0)
	cfg := Config{FileName: "t.c"}

	first := NewProgramCache(8).WithDisk(d)
	bs, out1 := runViaCache(t, first, diskCacheSrc, cfg)
	if bs != SourceCompiled {
		t.Fatalf("first build source = %v, want compiled", bs)
	}
	if st := d.Stats(); st.Stores != 1 {
		t.Fatalf("disk stats after first build = %+v, want 1 store", st)
	}

	// "Restart": a fresh in-memory cache over the same directory.
	restarted := NewProgramCache(8).WithDisk(d)
	frontBefore := FrontRuns()
	bs, out2 := runViaCache(t, restarted, diskCacheSrc, cfg)
	if bs != SourceDisk {
		t.Fatalf("post-restart build source = %v, want disk", bs)
	}
	if delta := FrontRuns() - frontBefore; delta != 0 {
		t.Fatalf("front end ran %d times serving a disk hit, want 0", delta)
	}
	if out1 != out2 {
		t.Fatalf("restored program output %q differs from compiled %q", out2, out1)
	}
	if st := d.Stats(); st.Hits != 1 {
		t.Fatalf("disk stats after restart = %+v, want 1 hit", st)
	}
}

// corruptAndRebuild stores one entry, mangles it with mangle, and
// asserts the corruption is detected, the entry rejected and deleted,
// and the next build falls back to the full pipeline (the corrupt
// payload is never turned into an executable Program).
func corruptAndRebuild(t *testing.T, mangle func(t *testing.T, path string)) {
	t.Helper()
	d, dir := newDiskTest(t, 0)
	cfg := Config{FileName: "t.c"}
	key := Key(diskCacheSrc, cfg)

	first := NewProgramCache(8).WithDisk(d)
	if bs, _ := runViaCache(t, first, diskCacheSrc, cfg); bs != SourceCompiled {
		t.Fatalf("seed build source = %v", bs)
	}
	path := filepath.Join(dir, key.String()+".json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("entry file missing after store: %v", err)
	}
	mangle(t, path)

	// The mangled entry must fail Load outright...
	if _, ok := d.Load(diskCacheSrc, key, cfg); ok {
		t.Fatal("Load accepted a corrupted entry")
	}
	if st := d.Stats(); st.Corrupt == 0 {
		t.Fatalf("corruption not counted: %+v", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry not deleted (stat err %v)", err)
	}

	// ...and a restarted daemon must rebuild from source, not execute
	// the corrupt payload: the front end provably runs again.
	restarted := NewProgramCache(8).WithDisk(d)
	frontBefore := FrontRuns()
	bs, out := runViaCache(t, restarted, diskCacheSrc, cfg)
	if bs != SourceCompiled {
		t.Fatalf("post-corruption build source = %v, want compiled", bs)
	}
	if delta := FrontRuns() - frontBefore; delta == 0 {
		t.Fatal("front end did not run for the rebuild")
	}
	if out != "s=376\n" {
		t.Fatalf("rebuilt program output = %q", out)
	}
}

// TestDiskCacheTruncatedEntryRejected: a truncated entry file (torn
// write simulation) is detected, rejected and rebuilt.
func TestDiskCacheTruncatedEntryRejected(t *testing.T) {
	corruptAndRebuild(t, func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDiskCacheBitFlipRejected: a single flipped bit inside the stored
// payload fails the integrity checksum even when the JSON still
// decodes.
func TestDiskCacheBitFlipRejected(t *testing.T) {
	corruptAndRebuild(t, func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Flip a bit inside the transformed-source payload (not in the
		// JSON structure), so the entry still unmarshals but the sum
		// breaks.
		i := bytes.Index(data, []byte("acc"))
		if i < 0 {
			t.Fatal("payload marker not found")
		}
		data[i] ^= 0x01
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDiskCacheVersionSkewRejected: entries of another layout version
// are rejected as corrupt, not restored.
func TestDiskCacheVersionSkewRejected(t *testing.T) {
	corruptAndRebuild(t, func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data = bytes.Replace(data,
			[]byte(fmt.Sprintf(`"version": %d`, diskEntryVersion)),
			[]byte(fmt.Sprintf(`"version": %d`, diskEntryVersion+1)), 1)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDiskCacheEvictionSkipsInflightLoad: capacity eviction must never
// delete an entry another goroutine is currently loading.
func TestDiskCacheEvictionSkipsInflightLoad(t *testing.T) {
	d, dir := newDiskTest(t, 2)
	cfg := Config{FileName: "t.c"}
	cache := NewProgramCache(16).WithDisk(d)

	srcFor := func(i int) string {
		return fmt.Sprintf("int main(void) { printf(\"v%d\\n\"); return %d; }", i, i)
	}
	if _, _, _, err := cache.BuildDetail(srcFor(0), cfg); err != nil {
		t.Fatal(err)
	}
	key0 := Key(srcFor(0), cfg)
	path0 := filepath.Join(dir, key0.String()+".json")

	// Pin key0 as in-flight, then store enough entries to squeeze the
	// 2-entry capacity hard.
	d.beginLoad(key0)
	for i := 1; i <= 4; i++ {
		if _, _, _, err := cache.BuildDetail(srcFor(i), cfg); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path0); err != nil {
		t.Fatalf("eviction removed the in-flight entry: %v", err)
	}
	if st := d.Stats(); st.Evicted == 0 {
		t.Fatalf("capacity squeeze evicted nothing: %+v", st)
	}
	d.endLoad(key0)

	// Released, the key becomes evictable again on the next store.
	if _, _, _, err := cache.BuildDetail(srcFor(5), cfg); err != nil {
		t.Fatal(err)
	}
	if n := d.Len(); n > 3 {
		t.Fatalf("directory holds %d entries, want <= capacity+1", n)
	}
}

// TestDiskCacheConcurrentDaemonsShareDir: many DiskCache instances
// (daemons) storing and loading the same key in one directory must
// never produce a torn or unreadable entry — every Load that finds the
// file must restore a valid artifact.
func TestDiskCacheConcurrentDaemonsShareDir(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{FileName: "t.c"}
	key := Key(diskCacheSrc, cfg)

	art, err := Front(diskCacheSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const daemons = 4
	const iters = 25
	caches := make([]*DiskCache, daemons)
	for i := range caches {
		if caches[i], err = NewDiskCache(dir, 0); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, daemons)
	for i := 0; i < daemons; i++ {
		wg.Add(1)
		go func(d *DiskCache, i int) {
			defer wg.Done()
			for k := 0; k < iters; k++ {
				if err := d.Store(key, cfg, art); err != nil {
					errs <- fmt.Errorf("daemon %d store: %v", i, err)
					return
				}
				got, ok := d.Load(diskCacheSrc, key, cfg)
				if !ok {
					errs <- fmt.Errorf("daemon %d: load rejected a freshly stored entry", i)
					return
				}
				if got.Stages.Transformed != art.Stages.Transformed {
					errs <- fmt.Errorf("daemon %d: restored payload differs", i)
					return
				}
			}
		}(caches[i], i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for i, d := range caches {
		if st := d.Stats(); st.Corrupt != 0 {
			t.Errorf("daemon %d saw %d corrupt entries under concurrent stores", i, st.Corrupt)
		}
	}
	// No temp files may survive the races.
	tmps, _ := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if len(tmps) != 0 {
		t.Errorf("leftover temp files: %v", tmps)
	}
}
