package vra

import (
	"testing"

	"purec/internal/ast"
	"purec/internal/parser"
	"purec/internal/sema"
)

const ztripSrc = `
int a[10];
int n;

int main() {
    int last = 20;
    for (int i = 0; i < n; i++) { last = i; }
    a[last] = 1;
    return 0;
}
`

// A canonical loop that executes zero times (n is a never-stored global,
// so its value is 0) must not let body-assigned values leak past the
// loop: last is 20 at the access, which is out of bounds for a[10].
func TestZeroTripLoopPostState(t *testing.T) {
	file, err := parser.Parse("ztrip.pc", ztripSrc)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(file)
	if err != nil {
		t.Fatal(err)
	}
	res := Analyze(info)
	for e := range res.Proofs() {
		t.Errorf("UNSOUND proof for %s", ast.PrintExpr(e))
	}
	t.Logf("findings:\n%s", renderAll(res))
}
