package vra

import (
	"fmt"

	"purec/internal/ast"
	"purec/internal/sema"
	"purec/internal/token"
)

// linRel is an affine relation between two scalars: the owning symbol
// equals A*Base + B at the current program point. A relation with a nil
// Base is never stored (a constant value lives in the interval env).
type linRel struct {
	Base *sema.Symbol
	A, B int64
}

// linForm is an expression canonicalized to A*Base + B. Base == nil
// means the expression is the constant B.
type linForm struct {
	Base *sema.Symbol
	A, B int64
}

// linOf canonicalizes an int expression to an affine form over a single
// scalar, following recorded relations so that after j = i + 1 the
// expression j - 1 resolves to 1*i + 0.
func (w *walker) linOf(e ast.Expr) (linForm, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.IntLit:
		return linForm{B: x.Value}, true
	case *ast.CharLit:
		return linForm{B: x.Value}, true
	case *ast.Ident:
		sym := w.a.info.Ref[x]
		if !isIntScalar(sym) {
			return linForm{}, false
		}
		if r, ok := w.rel[sym]; ok {
			return linForm{Base: r.Base, A: r.A, B: r.B}, true
		}
		return linForm{Base: sym, A: 1}, true
	case *ast.UnaryExpr:
		if x.Op == token.SUB {
			if f, ok := w.linOf(x.X); ok {
				return linForm{Base: f.Base, A: -f.A, B: -f.B}, true
			}
		}
		if x.Op == token.ADD {
			return w.linOf(x.X)
		}
	case *ast.BinaryExpr:
		fx, okX := w.linOf(x.X)
		fy, okY := w.linOf(x.Y)
		if !okX || !okY {
			return linForm{}, false
		}
		switch x.Op {
		case token.ADD:
			return combineLin(fx, fy, 1)
		case token.SUB:
			return combineLin(fx, fy, -1)
		case token.MUL:
			if fx.Base == nil {
				return linForm{Base: fy.Base, A: fx.B * fy.A, B: fx.B * fy.B}, true
			}
			if fy.Base == nil {
				return linForm{Base: fx.Base, A: fy.B * fx.A, B: fy.B * fx.B}, true
			}
		}
	}
	return linForm{}, false
}

// combineLin adds fx + sign*fy when the result stays affine over at
// most one base symbol.
func combineLin(fx, fy linForm, sign int64) (linForm, bool) {
	switch {
	case fy.Base == nil:
		return linForm{Base: fx.Base, A: fx.A, B: fx.B + sign*fy.B}, true
	case fx.Base == nil:
		return linForm{Base: fy.Base, A: sign * fy.A, B: fx.B + sign*fy.B}, true
	case fx.Base == fy.Base:
		a := fx.A + sign*fy.A
		f := linForm{Base: fx.Base, A: a, B: fx.B + sign*fy.B}
		if a == 0 {
			f.Base = nil
		}
		return f, true
	}
	return linForm{}, false
}

// deriveRel records the relation established by `sym = rhs`, computed
// against the pre-assignment relation state (lin), after the interval
// env has been updated. It also drops every relation the assignment
// kills.
func (w *walker) deriveRel(sym *sema.Symbol, lin linForm, ok bool) {
	if sym == nil || !isIntScalar(sym) {
		return
	}
	if ok && lin.Base == sym && lin.A == 1 {
		// Self-shift (j = j + c): existing relations survive translated.
		w.shiftRel(sym, lin.B)
		return
	}
	w.invalidateRel(sym)
	if ok && lin.Base != nil && lin.Base != sym {
		w.rel[sym] = linRel{Base: lin.Base, A: lin.A, B: lin.B}
	}
}

// shiftRel translates the relation state for `sym += d`: sym's own
// relation moves by d, and relations based on sym compensate.
func (w *walker) shiftRel(sym *sema.Symbol, d int64) {
	if r, ok := w.rel[sym]; ok {
		r.B += d
		w.rel[sym] = r
	}
	for k, r := range w.rel {
		if r.Base == sym {
			r.B -= r.A * d
			w.rel[k] = r
		}
	}
}

// invalidateRel forgets sym's relation and every relation based on it.
func (w *walker) invalidateRel(sym *sema.Symbol) {
	delete(w.rel, sym)
	for k, r := range w.rel {
		if r.Base == sym {
			delete(w.rel, k)
		}
	}
}

// relEntail decides a comparison exactly when both sides canonicalize
// to affine forms over the same base with equal coefficients: then the
// difference is a compile-time constant and the relation is settled
// regardless of the base's runtime value.
func (w *walker) relEntail(op token.Kind, x, y ast.Expr) (canTrue, canFalse, ok bool) {
	fx, okX := w.linOf(x)
	if !okX {
		return true, true, false
	}
	fy, okY := w.linOf(y)
	if !okY || fx.Base != fy.Base || fx.A != fy.A {
		return true, true, false
	}
	d := fx.B - fy.B // x - y, a known constant
	switch op {
	case token.LSS:
		return d < 0, d >= 0, true
	case token.LEQ:
		return d <= 0, d > 0, true
	case token.GTR:
		return d > 0, d <= 0, true
	case token.GEQ:
		return d >= 0, d < 0, true
	case token.EQL:
		return d == 0, d != 0, true
	case token.NEQ:
		return d != 0, d == 0, true
	}
	return true, true, false
}

// relFacts renders the relations feeding an expression, for derivations.
func (w *walker) relFacts(e ast.Expr) []string {
	var parts []string
	seen := map[*sema.Symbol]bool{}
	ast.Walk(e, func(n ast.Node) bool {
		if id, okI := n.(*ast.Ident); okI {
			sym := w.a.info.Ref[id]
			if r, okR := w.rel[sym]; okR && !seen[sym] {
				seen[sym] = true
				parts = append(parts, fmt.Sprintf("%s = %s", sym.Name, renderRel(r)))
			}
		}
		return true
	})
	return parts
}

func renderRel(r linRel) string {
	s := r.Base.Name
	if r.A != 1 {
		s = fmt.Sprintf("%d*%s", r.A, s)
	}
	switch {
	case r.B > 0:
		s += fmt.Sprintf(" + %d", r.B)
	case r.B < 0:
		s += fmt.Sprintf(" - %d", -r.B)
	}
	return s
}
