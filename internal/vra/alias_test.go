package vra

import (
	"strings"
	"testing"

	"purec/internal/parser"
	"purec/internal/sema"
)

func analyzeSrc(t *testing.T, src string) (*Result, *sema.Info) {
	t.Helper()
	file, err := parser.Parse("alias.pc", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(file)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(info), info
}

func localSym(t *testing.T, info *sema.Info, fn, name string) *sema.Symbol {
	t.Helper()
	for _, s := range info.FuncLocals[fn] {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no local %s in %s", name, fn)
	return nil
}

func globalSym(t *testing.T, info *sema.Info, name string) *sema.Symbol {
	t.Helper()
	for _, s := range info.Globals {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no global %s", name)
	return nil
}

// TestAliasExactResolution covers the exact chain: &a[k], array decay,
// pointer copies, pointer arithmetic, and single-store malloc globals.
func TestAliasExactResolution(t *testing.T) {
	src := `
float a[32];
float *g;
void init() { g = (float*)malloc(64 * sizeof(float)); }
int main() {
    float *p = &a[0];
    float *q = &a[4];
    float *r = p + 2;
    float *s = a;
    init();
    sink(p, q, r, s);
    return 0;
}
pure float sink(pure float* w, pure float* x, pure float* y, pure float* z) {
    return w[0] + x[0] + y[0] + z[0];
}
`
	res, info := analyzeSrc(t, src)
	al := res.Alias
	if al == nil {
		t.Fatal("no alias result")
	}
	cases := []struct {
		name   string
		region string
		off    int64
	}{
		{"p", "a", 0}, {"q", "a", 4}, {"r", "a", 2}, {"s", "a", 0},
	}
	for _, c := range cases {
		sym := localSym(t, info, "main", c.name)
		reg, off, ok := al.ResolveExact(sym)
		if !ok || reg != c.region || off != c.off {
			t.Errorf("%s: got (%q, %d, %v), want (%q, %d)", c.name, reg, off, ok, c.region, c.off)
		}
	}
	g := globalSym(t, info, "g")
	reg, off, ok := al.ResolveExact(g)
	if !ok || !strings.HasPrefix(reg, "malloc@") || off != 0 {
		t.Errorf("g: got (%q, %d, %v), want malloc region", reg, off, ok)
	}
}

// TestAliasUnresolved covers the conservative side: multi-store
// pointers keep a may set, data-dependent ones are unknown.
func TestAliasUnresolved(t *testing.T) {
	src := `
float a[8];
float b[8];
int flag;
int main() {
    float *p = &a[0];
    if (flag) { p = &b[0]; }
    float *q = &a[flag];
    return (int)(p[0] + q[0]);
}
`
	res, info := analyzeSrc(t, src)
	al := res.Alias
	p := localSym(t, info, "main", "p")
	if _, _, ok := al.ResolveExact(p); ok {
		t.Error("two-store p must not resolve exactly")
	}
	if set := al.MayPointTo(p); len(set) != 2 || set[0] != "a" || set[1] != "b" {
		t.Errorf("p may set: %v, want [a b]", set)
	}
	q := localSym(t, info, "main", "q")
	if _, _, ok := al.ResolveExact(q); ok {
		t.Error("data-dependent q must not resolve exactly")
	}
	if d := al.Describe(q); !strings.Contains(d, "anything") {
		t.Errorf("q describe: %q", d)
	}
}

// TestAliasElision pins the proof consumer: a pointer initialized to a
// declared array proves its accesses against the array's extent, minus
// the offset.
func TestAliasElision(t *testing.T) {
	src := `
float a[16];
float out[8];
int main() {
    float *p = &a[8];
    for (int i = 0; i < 8; i++)
        out[i] = p[i];
    return 0;
}
`
	res, _ := analyzeSrc(t, src)
	found := false
	for e := range res.Proofs() {
		if exprString(e) == "p[i]" {
			found = true
		}
	}
	if !found {
		t.Error("p[i] with p = &a[8], i in [0,8) not proven against extent 16-8")
	}
	if len(res.Findings) != 0 {
		t.Errorf("unexpected findings: %v", res.Findings)
	}
}
