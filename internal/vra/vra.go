package vra

import (
	"fmt"
	"sort"
	"strings"

	"purec/internal/ast"
	"purec/internal/sema"
	"purec/internal/token"
	"purec/internal/types"
)

// Kind classifies a diagnostic finding.
type Kind int

// Finding kinds, ordered by severity.
const (
	// DefiniteOOB marks an access whose subscript interval lies entirely
	// outside the array extent: it traps on every execution that reaches
	// it. purecc -analyze treats it as a compile error.
	DefiniteOOB Kind = iota
	// PossibleOOB marks an access whose subscript interval is not
	// contained in the extent but may intersect it.
	PossibleOOB
	// UninitScalar marks a read of a local scalar before any assignment.
	UninitScalar
	// DeadGuard marks an if/while condition that can never be true.
	DeadGuard
	// AlwaysTrue marks an if condition that holds on every execution:
	// the branch is unconditional and the else arm is dead.
	AlwaysTrue
	// DeadStore marks an assignment whose stored value is never read.
	DeadStore
	// UnusedVar marks a local variable that is declared but never used.
	UnusedVar
)

var kindNames = [...]string{
	DefiniteOOB:  "definite out-of-bounds",
	PossibleOOB:  "possible out-of-bounds",
	UninitScalar: "uninitialized read",
	DeadGuard:    "dead guard",
	AlwaysTrue:   "always-true branch",
	DeadStore:    "dead store",
	UnusedVar:    "unused variable",
}

// String returns the human-readable kind name.
func (k Kind) String() string { return kindNames[k] }

// Finding is one diagnostic with its source position and a
// human-readable range derivation.
type Finding struct {
	Kind Kind
	Pos  token.Pos
	// Expr is the source form of the offending expression or condition.
	Expr string
	// Msg explains the finding, including the derived intervals.
	Msg string
}

// String renders the finding as position: kind: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Kind, f.Msg)
}

// Result is the outcome of one whole-program analysis.
type Result struct {
	// Findings lists the diagnostics in source order.
	Findings []Finding
	// Alias is the flow-insensitive points-to result for guest
	// pointers, keyed by pointer symbol.
	Alias *AliasResult
	safe  map[ast.Expr]bool
	notes map[ast.Expr]string
}

// Proven reports whether the index expression was proven in-bounds for
// every execution: its subscript intervals fit the array extent. Only a
// proven access may have its runtime check elided.
func (r *Result) Proven(e ast.Expr) bool { return r.safe[e] }

// Proofs returns the proven-access set keyed by syntax node, the form
// the compiler consumes.
func (r *Result) Proofs() map[ast.Expr]bool { return r.safe }

// Note returns the derivation recorded for an index expression that was
// checked but not proven ("" when the access was never range-checked,
// e.g. its extent is unknown).
func (r *Result) Note(e ast.Expr) string { return r.notes[e] }

// HasDefiniteOOB reports whether any finding is a definite
// out-of-bounds access (the -analyze compile-error class).
func (r *Result) HasDefiniteOOB() bool {
	for _, f := range r.Findings {
		if f.Kind == DefiniteOOB {
			return true
		}
	}
	return false
}

// analyzer holds the whole-program facts shared by every function walk.
type analyzer struct {
	info *sema.Info
	res  *Result

	// extent is the element extent of pointers assigned exactly once
	// from a constant-size malloc and never escaped; declared arrays
	// carry their extents in Symbol.Dims instead.
	extent map[*sema.Symbol]int64
	// content tracks the value interval of every cell of an int index
	// array (declared or single-malloc buffer): the union of all stores
	// the program makes plus zero (fresh segments are zeroed).
	content map[*sema.Symbol]Interval
	tracked map[*sema.Symbol]bool
	escaped map[*sema.Symbol]bool
	// addrTaken holds every symbol (scalars included) whose address is
	// taken anywhere; such variables can be read or written through
	// pointers, so dead-store reasoning must skip them.
	addrTaken map[*sema.Symbol]bool
	// fixedGlobal holds globals with no stores anywhere in the program:
	// their value is the declared initializer (zero without one).
	fixedGlobal map[*sema.Symbol]Interval

	// alias is the flow-insensitive points-to result, computed once
	// after fact collection (it is purely syntactic).
	alias *AliasResult

	declToSym      map[*ast.VarDecl]*sema.Symbol
	uninitReported map[*sema.Symbol]bool

	contentChanged bool
	changed        map[*sema.Symbol]bool
}

// Analyze runs the value-range analysis over the checked program.
func Analyze(info *sema.Info) *Result {
	a := &analyzer{
		info:           info,
		res:            &Result{safe: map[ast.Expr]bool{}, notes: map[ast.Expr]string{}},
		extent:         map[*sema.Symbol]int64{},
		content:        map[*sema.Symbol]Interval{},
		tracked:        map[*sema.Symbol]bool{},
		escaped:        map[*sema.Symbol]bool{},
		addrTaken:      map[*sema.Symbol]bool{},
		fixedGlobal:    map[*sema.Symbol]Interval{},
		declToSym:      map[*ast.VarDecl]*sema.Symbol{},
		uninitReported: map[*sema.Symbol]bool{},
		changed:        map[*sema.Symbol]bool{},
	}
	a.collectFacts()
	a.alias = a.analyzeAliases()
	// Array contents feed other arrays' contents (idx2[i] = idx[i]), so
	// the collect pass iterates to a fixpoint; anything still widening
	// after a few rounds is poisoned to unbounded.
	for round := 0; ; round++ {
		a.contentChanged = false
		a.changed = map[*sema.Symbol]bool{}
		a.walkAll(false)
		if !a.contentChanged {
			break
		}
		if round >= 2 {
			for sym := range a.changed {
				a.content[sym] = Top()
			}
			break
		}
	}
	a.walkAll(true)
	a.deadCode()
	a.res.Alias = a.alias
	sort.SliceStable(a.res.Findings, func(i, j int) bool {
		pi, pj := a.res.Findings[i].Pos, a.res.Findings[j].Pos
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Col < pj.Col
	})
	return a.res
}

// ----------------------------------------------------------------------------
// Whole-program fact collection

func (a *analyzer) collectFacts() {
	for name, syms := range a.info.FuncLocals {
		_ = name
		for _, s := range syms {
			if s.Decl != nil {
				a.declToSym[s.Decl] = s
			}
		}
	}
	for _, g := range a.info.Globals {
		if g.Decl != nil {
			a.declToSym[g.Decl] = g
		}
	}

	// Escapes: a pointer or array whose address leaves our sight (alias
	// assignment, address-of, argument to a function that may write or
	// free through it) gets no extent and no content tracking.
	for _, fd := range a.info.File.Funcs() {
		if fd.Body != nil {
			a.scanStmt(fd.Body)
		}
	}
	for _, g := range a.info.Globals {
		if g.Decl != nil && g.Decl.Init != nil {
			a.scanExpr(g.Decl.Init)
		}
	}

	// Pointer extents and fixed globals from program-wide store counts.
	stores := map[*sema.Symbol]int{}
	mallocExt := map[*sema.Symbol]int64{}
	countStore := func(sym *sema.Symbol, rhs ast.Expr, op token.Kind) {
		if sym == nil {
			return
		}
		stores[sym]++
		if sym.Type != nil && sym.Type.Kind == types.Ptr && op == token.ASSIGN {
			if n, ok := a.mallocExtent(sym, rhs); ok {
				mallocExt[sym] = n
			}
		}
	}
	scan := func(n ast.Node) {
		ast.Walk(n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.AssignExpr:
				if id, ok := ast.Unparen(x.LHS).(*ast.Ident); ok {
					countStore(a.info.Ref[id], x.RHS, x.Op)
				}
			case *ast.UnaryExpr:
				if x.Op == token.INC || x.Op == token.DEC {
					if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
						countStore(a.info.Ref[id], nil, x.Op)
					}
				}
			case *ast.PostfixExpr:
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
					countStore(a.info.Ref[id], nil, x.Op)
				}
			case *ast.VarDecl:
				if x.Init != nil {
					if sym := a.declToSym[x]; sym != nil {
						countStore(sym, x.Init, token.ASSIGN)
					}
				}
			}
			return true
		})
	}
	scan(a.info.File)

	for sym, n := range mallocExt {
		if stores[sym] == 1 && !a.escaped[sym] {
			a.extent[sym] = n
		}
	}
	for _, g := range a.info.Globals {
		if stores[g] != 0 || g.IsArray() || g.Type == nil {
			continue
		}
		switch g.Type.Kind {
		case types.Int:
			iv := Exact(0)
			if g.Decl != nil && g.Decl.Init != nil {
				if v, ok := sema.ConstInt(g.Decl.Init); ok {
					iv = Exact(v)
				} else {
					continue
				}
			}
			a.fixedGlobal[g] = iv
		}
	}

	// Content tracking: int element type, known extent, not escaped.
	track := func(sym *sema.Symbol) {
		if sym == nil || a.escaped[sym] {
			return
		}
		if sym.IsArray() {
			if len(sym.Dims) >= 1 && sym.Type != nil && sym.Type.Elem != nil &&
				sym.Type.Elem.Kind == types.Int {
				a.tracked[sym] = true
				a.content[sym] = Exact(0)
			}
			return
		}
		if _, ok := a.extent[sym]; ok && sym.Type.Elem != nil &&
			sym.Type.Elem.Kind == types.Int {
			a.tracked[sym] = true
			a.content[sym] = Exact(0)
		}
	}
	for _, g := range a.info.Globals {
		track(g)
	}
	for _, syms := range a.info.FuncLocals {
		for _, s := range syms {
			track(s)
		}
	}
}

// mallocExtent matches rhs against (T*)malloc(constant) and returns the
// element extent of sym's pointee type.
func (a *analyzer) mallocExtent(sym *sema.Symbol, rhs ast.Expr) (int64, bool) {
	e := ast.Unparen(rhs)
	for {
		if c, ok := e.(*ast.CastExpr); ok {
			e = ast.Unparen(c.X)
			continue
		}
		break
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || call.Fun.Name != "malloc" || len(call.Args) != 1 {
		return 0, false
	}
	bytes, ok := sema.ConstInt(call.Args[0])
	if !ok || bytes < 0 {
		return 0, false
	}
	esz := int64(1)
	if sym.Type != nil && sym.Type.Elem != nil && sym.Type.Elem.CSize > 0 {
		esz = int64(sym.Type.Elem.CSize)
	}
	return bytes / esz, true
}

// scanStmt/scanExpr find escaping pointers: any use of a pointer or
// array name outside the whitelisted read contexts (subscript base,
// argument to a verified-pure callee through a pure parameter).
func (a *analyzer) scanStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.DeclStmt:
		for _, d := range x.Decls {
			if d.Init != nil {
				a.scanExpr(d.Init)
			}
		}
	case *ast.ExprStmt:
		a.scanExpr(x.X)
	case *ast.BlockStmt:
		for _, st := range x.List {
			a.scanStmt(st)
		}
	case *ast.IfStmt:
		a.scanExpr(x.Cond)
		a.scanStmt(x.Then)
		if x.Else != nil {
			a.scanStmt(x.Else)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			a.scanStmt(x.Init)
		}
		if x.Cond != nil {
			a.scanExpr(x.Cond)
		}
		if x.Post != nil {
			a.scanExpr(x.Post)
		}
		a.scanStmt(x.Body)
	case *ast.WhileStmt:
		a.scanExpr(x.Cond)
		a.scanStmt(x.Body)
	case *ast.DoStmt:
		a.scanStmt(x.Body)
		a.scanExpr(x.Cond)
	case *ast.ReturnStmt:
		if x.X != nil {
			a.scanExpr(x.X)
		}
	case *ast.SwitchStmt:
		a.scanExpr(x.Tag)
		for _, c := range x.Cases {
			for _, st := range c.Body {
				a.scanStmt(st)
			}
		}
	}
}

func (a *analyzer) scanExpr(e ast.Expr) {
	switch x := e.(type) {
	case nil:
	case *ast.Ident:
		a.markEscape(x)
	case *ast.ParenExpr:
		a.scanExpr(x.X)
	case *ast.IndexExpr:
		a.scanBase(x.X)
		a.scanExpr(x.Index)
	case *ast.CallExpr:
		sig := a.info.Funcs[x.Fun.Name]
		for i, arg := range x.Args {
			if id := baseIdentOf(arg); id != nil {
				if !a.argIsReadOnly(x.Fun.Name, sig, i) {
					a.markEscape(id)
				}
				continue
			}
			a.scanExpr(arg)
		}
	case *ast.AssignExpr:
		switch l := ast.Unparen(x.LHS).(type) {
		case *ast.Ident:
			// Target of a write, not an escape.
		case *ast.IndexExpr:
			a.scanBase(l.X)
			a.scanExpr(l.Index)
		default:
			a.scanExpr(x.LHS)
		}
		a.scanExpr(x.RHS)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			// Address taken: everything under it escapes.
			for _, id := range ast.Idents(x.X) {
				a.markEscape(id)
				if sym := a.info.Ref[id]; sym != nil {
					a.addrTaken[sym] = true
				}
			}
			return
		}
		a.scanExpr(x.X)
	case *ast.PostfixExpr:
		a.scanExpr(x.X)
	case *ast.BinaryExpr:
		a.scanExpr(x.X)
		a.scanExpr(x.Y)
	case *ast.CondExpr:
		a.scanExpr(x.Cond)
		a.scanExpr(x.Then)
		a.scanExpr(x.Else)
	case *ast.CastExpr:
		a.scanExpr(x.X)
	case *ast.MemberExpr:
		a.scanExpr(x.X)
	case *ast.SizeofExpr:
		// Types only; sizeof expr does not evaluate its operand.
	}
}

// scanBase follows a subscript-base chain without escaping the root
// name: x in x[i], x[i][j].
func (a *analyzer) scanBase(e ast.Expr) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
	case *ast.IndexExpr:
		a.scanBase(x.X)
		a.scanExpr(x.Index)
	default:
		a.scanExpr(e)
	}
}

// argIsReadOnly reports whether passing a pointer to parameter i of the
// named callee cannot write or free through it: a verified-pure callee
// taking it through a pure (read-only) pointer. free is nominally in
// the paper's pure hashset but releases its argument, so it always
// escapes.
func (a *analyzer) argIsReadOnly(name string, sig *sema.Sig, i int) bool {
	if name == "free" || sig == nil || !sig.Pure {
		return false
	}
	if sig.Builtin {
		return true // pure math builtins never retain pointers
	}
	if i >= len(sig.Params) {
		return false
	}
	p := sig.Params[i]
	if p == nil || p.Kind != types.Ptr {
		return true // scalar parameter: the pointer value never crosses
	}
	return p.Pure
}

func (a *analyzer) markEscape(id *ast.Ident) {
	sym := a.info.Ref[id]
	if sym == nil {
		return
	}
	if sym.IsArray() || (sym.Type != nil && sym.Type.Kind == types.Ptr) {
		a.escaped[sym] = true
	}
}

// baseIdentOf strips parens and casts down to a plain identifier.
func baseIdentOf(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.CastExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

func (a *analyzer) widenContent(sym *sema.Symbol, iv Interval) {
	if !a.tracked[sym] {
		return
	}
	u := a.content[sym].Union(iv)
	if u != a.content[sym] {
		a.content[sym] = u
		a.contentChanged = true
		a.changed[sym] = true
	}
}

// ----------------------------------------------------------------------------
// Per-function interval walk

func (a *analyzer) walkAll(prove bool) {
	for _, fd := range a.info.File.Funcs() {
		if fd.Body == nil {
			continue
		}
		w := &walker{
			a:       a,
			prove:   prove,
			env:     map[*sema.Symbol]Interval{},
			written: map[*sema.Symbol]bool{},
			refine:  map[string]Interval{},
			rel:     map[*sema.Symbol]linRel{},
		}
		w.stmt(fd.Body)
	}
}

type walker struct {
	a       *analyzer
	prove   bool
	env     map[*sema.Symbol]Interval
	written map[*sema.Symbol]bool
	refine  map[string]Interval
	// rel holds affine relations between live scalars: rel[j] = {i,a,b}
	// means j == a*i + b at this program point.
	rel map[*sema.Symbol]linRel
}

func (w *walker) branch() *walker {
	c := &walker{a: w.a, prove: w.prove,
		env:     make(map[*sema.Symbol]Interval, len(w.env)),
		written: make(map[*sema.Symbol]bool, len(w.written)),
		refine:  make(map[string]Interval, len(w.refine)),
		rel:     make(map[*sema.Symbol]linRel, len(w.rel))}
	for k, v := range w.env {
		c.env[k] = v
	}
	for k, v := range w.written {
		c.written[k] = v
	}
	for k, v := range w.refine {
		c.refine[k] = v
	}
	for k, v := range w.rel {
		c.rel[k] = v
	}
	return c
}

// merge joins two branch outcomes back into w.
func (w *walker) merge(b1, b2 *walker) {
	keys := map[*sema.Symbol]bool{}
	for k := range b1.env {
		keys[k] = true
	}
	for k := range b2.env {
		keys[k] = true
	}
	w.env = make(map[*sema.Symbol]Interval, len(keys))
	for k := range keys {
		w.env[k] = b1.lookup(k).Union(b2.lookup(k))
	}
	w.written = map[*sema.Symbol]bool{}
	for k := range b1.written {
		w.written[k] = true
	}
	for k := range b2.written {
		w.written[k] = true
	}
	w.refine = map[string]Interval{}
	for k, v1 := range b1.refine {
		if v2, ok := b2.refine[k]; ok {
			w.refine[k] = v1.Union(v2)
		}
	}
	// A relation survives a join only when both sides derived the same one.
	w.rel = map[*sema.Symbol]linRel{}
	for k, r1 := range b1.rel {
		if r2, ok := b2.rel[k]; ok && r1 == r2 {
			w.rel[k] = r1
		}
	}
}

// lookup returns the interval of a scalar symbol.
func (w *walker) lookup(sym *sema.Symbol) Interval {
	if iv, ok := w.env[sym]; ok {
		return iv
	}
	if iv, ok := w.a.fixedGlobal[sym]; ok {
		return iv
	}
	return Top()
}

func (w *walker) setScalar(sym *sema.Symbol, iv Interval) {
	if sym == nil {
		return
	}
	if isIntScalar(sym) {
		w.env[sym] = iv
	}
	w.written[sym] = true
	w.invalidateRefines(sym.Name)
}

func isIntScalar(sym *sema.Symbol) bool {
	return sym != nil && !sym.IsArray() && sym.Type != nil && sym.Type.Kind == types.Int
}

func (w *walker) invalidateRefines(name string) {
	for k := range w.refine {
		if strings.Contains(k, name) {
			delete(w.refine, k)
		}
	}
}

func (w *walker) clearRefines() {
	for k := range w.refine {
		delete(w.refine, k)
	}
}

// havoc forgets everything the given statement may assign; impure calls
// additionally forget every non-fixed global.
func (w *walker) havoc(n ast.Node, except *sema.Symbol) {
	syms, impure := w.assignedSyms(n)
	for sym := range syms {
		if sym == except {
			continue
		}
		if isIntScalar(sym) {
			w.env[sym] = Top()
		}
		w.invalidateRel(sym)
		// written is deliberately left alone: a body-local read that
		// precedes the body's own first assignment is still a read of an
		// uninitialized scalar on the first iteration.
	}
	if impure {
		w.havocGlobals()
	}
	w.clearRefines()
}

func (w *walker) havocGlobals() {
	for sym := range w.env {
		if sym.Kind == sema.SymGlobal {
			w.env[sym] = Top()
		}
	}
	for k, r := range w.rel {
		if k.Kind == sema.SymGlobal || r.Base.Kind == sema.SymGlobal {
			delete(w.rel, k)
		}
	}
	w.clearRefines()
}

func (w *walker) assignedSyms(n ast.Node) (map[*sema.Symbol]bool, bool) {
	out := map[*sema.Symbol]bool{}
	impure := false
	add := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if sym := w.a.info.Ref[id]; sym != nil {
				out[sym] = true
			}
		}
	}
	ast.Walk(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.AssignExpr:
			add(x.LHS)
		case *ast.UnaryExpr:
			if x.Op == token.INC || x.Op == token.DEC {
				add(x.X)
			}
		case *ast.PostfixExpr:
			add(x.X)
		case *ast.VarDecl:
			if sym := w.a.declToSym[x]; sym != nil {
				out[sym] = true
			}
		case *ast.CallExpr:
			sig := w.a.info.Funcs[x.Fun.Name]
			if sig == nil || !sig.Pure {
				impure = true
			}
		}
		return true
	})
	return out, impure
}

// ----------------------------------------------------------------------------
// Statements

func (w *walker) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.DeclStmt:
		for _, d := range x.Decls {
			sym := w.a.declToSym[d]
			if d.Init != nil {
				iv := w.eval(d.Init)
				lin, linOK := w.linOf(d.Init)
				w.setScalar(sym, iv)
				w.deriveRel(sym, lin, linOK)
				continue
			}
			if isIntScalar(sym) {
				w.env[sym] = Top()
			}
		}
	case *ast.ExprStmt:
		w.eval(x.X)
	case *ast.BlockStmt:
		for _, st := range x.List {
			w.stmt(st)
		}
	case *ast.IfStmt:
		w.ifStmt(x)
	case *ast.ForStmt:
		w.forStmt(x)
	case *ast.WhileStmt:
		w.havoc(x.Body, nil)
		w.deadGuard(x.Cond)
		w.eval(x.Cond)
		b := w.branch()
		b.applyCond(x.Cond, true)
		b.stmt(x.Body)
		// Values assigned in the body are already havoced; branch-local
		// precision dies with the branch.
	case *ast.DoStmt:
		w.havoc(x.Body, nil)
		w.stmt(x.Body)
		w.eval(x.Cond)
		w.havoc(x.Body, nil)
	case *ast.ReturnStmt:
		if x.X != nil {
			w.eval(x.X)
		}
	case *ast.SwitchStmt:
		w.eval(x.Tag)
		w.havoc(x, nil)
		for _, c := range x.Cases {
			b := w.branch()
			for _, st := range c.Body {
				b.stmt(st)
			}
		}
	}
}

func (w *walker) ifStmt(x *ast.IfStmt) {
	w.eval(x.Cond)
	w.deadGuard(x.Cond)
	w.alwaysTrueGuard(x.Cond)
	then := w.branch()
	then.applyCond(x.Cond, true)
	then.stmt(x.Then)
	els := w.branch()
	els.applyCond(x.Cond, false)
	if x.Else != nil {
		els.stmt(x.Else)
	}
	w.merge(then, els)
}

func (w *walker) deadGuard(cond ast.Expr) {
	if !w.prove {
		return
	}
	if _, isConst := sema.ConstInt(cond); isConst {
		return // a literal if (0) is an intentional guard, not a bug
	}
	canTrue, _ := w.condTruth(cond)
	if canTrue {
		return
	}
	w.a.res.Findings = append(w.a.res.Findings, Finding{
		Kind: DeadGuard,
		Pos:  cond.Pos(),
		Expr: ast.PrintExpr(cond),
		Msg: fmt.Sprintf("condition %s is always false (%s)",
			ast.PrintExpr(cond), w.guardDerivation(cond)),
	})
}

// alwaysTrueGuard reports an if condition that holds on every
// execution — the test is redundant and any else arm is dead. Loop
// conditions are exempt: being true on entry is what loops are for.
func (w *walker) alwaysTrueGuard(cond ast.Expr) {
	if !w.prove {
		return
	}
	if _, isConst := sema.ConstInt(cond); isConst {
		return // if (1) is an intentional guard, not a bug
	}
	_, canFalse := w.condTruth(cond)
	if canFalse {
		return
	}
	w.a.res.Findings = append(w.a.res.Findings, Finding{
		Kind: AlwaysTrue,
		Pos:  cond.Pos(),
		Expr: ast.PrintExpr(cond),
		Msg: fmt.Sprintf("condition %s is always true (%s)",
			ast.PrintExpr(cond), w.guardDerivation(cond)),
	})
}

// guardDerivation renders the facts that settled a guard: the affine
// relations first (the stronger fact), then the value ranges.
func (w *walker) guardDerivation(cond ast.Expr) string {
	parts := w.relFacts(cond)
	if c := w.contributors(cond); c != "" {
		parts = append(parts, c)
	}
	if len(parts) == 0 {
		return "no facts"
	}
	return strings.Join(parts, ", ")
}

// forStmt analyzes a loop; canonical loops get a precise iterator
// interval, everything else falls back to havoc-and-walk-once.
func (w *walker) forStmt(x *ast.ForStmt) {
	iter, lb, ub, incl, ok := w.canonical(x)
	if ok {
		if assigned, _ := w.assignedSyms(x.Body); assigned[iter] {
			ok = false // body reassigns the iterator: not canonical
		}
	}
	if !ok {
		if x.Init != nil {
			w.stmt(x.Init)
		}
		w.havoc(x.Body, nil)
		if x.Post != nil {
			w.havoc(&ast.ExprStmt{X: x.Post}, nil)
		}
		if x.Cond != nil {
			w.deadGuard(x.Cond)
			w.eval(x.Cond)
		}
		w.stmt(x.Body)
		if x.Post != nil {
			w.eval(x.Post)
		}
		w.havoc(x.Body, nil)
		return
	}
	// The lower bound is evaluated once on entry; the upper bound is
	// re-evaluated every iteration, so it reads the havoced state.
	lbIv := w.eval(lb)
	entry := w.branch() // pre-loop state, for the zero-trip join below
	w.havoc(x.Body, iter)
	ubIv := w.eval(ub)
	hi := ubIv
	if !incl {
		hi = ubIv.Sub(Exact(1))
	}
	body := Interval{Lo: lbIv.Lo, NoLo: lbIv.NoLo, Hi: hi.Hi, NoHi: hi.NoHi}
	w.env[iter] = body
	w.written[iter] = true
	w.stmt(x.Body)
	// After the loop the iterator holds the first failing value (or the
	// untouched lower bound when the range is empty).
	exit := ubIv
	if incl {
		exit = ubIv.Add(Exact(1))
	}
	w.env[iter] = lbIv.Union(exit)
	w.clearRefines()
	// A loop whose range may be empty never runs its body: join the
	// pre-loop state back in so post-loop facts don't assume ≥ 1 trip.
	op := token.LSS
	if incl {
		op = token.LEQ
	}
	if _, canFalse := relTruth(op, lbIv, ubIv); canFalse {
		entry.env[iter] = lbIv
		entry.written[iter] = true
		w.merge(w.branch(), entry)
	}
}

// canonical matches for (int i = LB; i </<= UB; i++).
func (w *walker) canonical(x *ast.ForStmt) (iter *sema.Symbol, lb, ub ast.Expr, incl, ok bool) {
	switch init := x.Init.(type) {
	case *ast.DeclStmt:
		if len(init.Decls) != 1 || init.Decls[0].Init == nil {
			return nil, nil, nil, false, false
		}
		iter = w.a.declToSym[init.Decls[0]]
		lb = init.Decls[0].Init
	case *ast.ExprStmt:
		as, okA := init.X.(*ast.AssignExpr)
		if !okA || as.Op != token.ASSIGN {
			return nil, nil, nil, false, false
		}
		id, okI := ast.Unparen(as.LHS).(*ast.Ident)
		if !okI {
			return nil, nil, nil, false, false
		}
		iter = w.a.info.Ref[id]
		lb = as.RHS
	default:
		return nil, nil, nil, false, false
	}
	if iter == nil || !isIntScalar(iter) {
		return nil, nil, nil, false, false
	}
	cond, okC := ast.Unparen(x.Cond).(*ast.BinaryExpr)
	if !okC {
		return nil, nil, nil, false, false
	}
	cid, okI := ast.Unparen(cond.X).(*ast.Ident)
	if !okI || w.a.info.Ref[cid] != iter {
		return nil, nil, nil, false, false
	}
	switch cond.Op {
	case token.LSS:
		incl = false
	case token.LEQ:
		incl = true
	default:
		return nil, nil, nil, false, false
	}
	ub = cond.Y
	switch post := x.Post.(type) {
	case *ast.PostfixExpr:
		id, okP := ast.Unparen(post.X).(*ast.Ident)
		if !okP || w.a.info.Ref[id] != iter || post.Op != token.INC {
			return nil, nil, nil, false, false
		}
	case *ast.UnaryExpr:
		id, okP := ast.Unparen(post.X).(*ast.Ident)
		if !okP || w.a.info.Ref[id] != iter || post.Op != token.INC {
			return nil, nil, nil, false, false
		}
	case *ast.AssignExpr:
		id, okP := ast.Unparen(post.LHS).(*ast.Ident)
		if !okP || w.a.info.Ref[id] != iter || post.Op != token.ADDASSIGN {
			return nil, nil, nil, false, false
		}
		if v, okV := sema.ConstInt(post.RHS); !okV || v != 1 {
			return nil, nil, nil, false, false
		}
	default:
		return nil, nil, nil, false, false
	}
	return iter, lb, ub, incl, true
}

// ----------------------------------------------------------------------------
// Conditions

// condTruth decides whether a condition can evaluate to true / false.
func (w *walker) condTruth(cond ast.Expr) (canTrue, canFalse bool) {
	switch x := ast.Unparen(cond).(type) {
	case *ast.IntLit:
		return x.Value != 0, x.Value == 0
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			f, t := w.condTruth(x.X)
			return t, f
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			t1, f1 := w.condTruth(x.X)
			// The right conjunct only evaluates when the left held, so
			// judge it under the left's refinement: this is what catches
			// contradictions like s < 0 && s > 10.
			b := w.branch()
			b.applyCond(x.X, true)
			t2, f2 := b.condTruth(x.Y)
			return t1 && t2, f1 || f2
		case token.LOR:
			t1, f1 := w.condTruth(x.X)
			b := w.branch()
			b.applyCond(x.X, false)
			t2, f2 := b.condTruth(x.Y)
			return t1 || t2, f1 && f2
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			if !isIntExpr(w.a.info, x.X) || !isIntExpr(w.a.info, x.Y) {
				return true, true
			}
			// Relational entailment first: after j = i + 1 the test
			// j > i settles without knowing i's range at all.
			if t, f, ok := w.relEntail(x.Op, x.X, x.Y); ok {
				return t, f
			}
			a, b := w.eval(x.X), w.eval(x.Y)
			return relTruth(x.Op, a, b)
		}
	}
	return true, true
}

func isIntExpr(info *sema.Info, e ast.Expr) bool {
	t := info.ExprType[e]
	return t != nil && t.Kind == types.Int
}

// relTruth decides a relation over two intervals.
func relTruth(op token.Kind, a, b Interval) (canTrue, canFalse bool) {
	// possible(a < b)  ⟺ min(a) < max(b); unbounded sides always allow it.
	lssPossible := func(a, b Interval) bool {
		return a.NoLo || b.NoHi || a.Lo < b.Hi
	}
	leqPossible := func(a, b Interval) bool {
		return a.NoLo || b.NoHi || a.Lo <= b.Hi
	}
	overlap := func(a, b Interval) bool {
		return leqPossible(a, b) && leqPossible(b, a)
	}
	switch op {
	case token.LSS:
		return lssPossible(a, b), leqPossible(b, a)
	case token.LEQ:
		return leqPossible(a, b), lssPossible(b, a)
	case token.GTR:
		return lssPossible(b, a), leqPossible(a, b)
	case token.GEQ:
		return leqPossible(b, a), lssPossible(a, b)
	case token.EQL:
		bothExact := a.Bounded() && b.Bounded() && a.Lo == a.Hi && b.Lo == b.Hi
		return overlap(a, b), !(bothExact && a.Lo == b.Lo)
	case token.NEQ:
		bothExact := a.Bounded() && b.Bounded() && a.Lo == a.Hi && b.Lo == b.Hi
		return !(bothExact && a.Lo == b.Lo), overlap(a, b)
	}
	return true, true
}

// applyCond refines the environment under the assumption that cond
// evaluated to truth.
func (w *walker) applyCond(cond ast.Expr, truth bool) {
	switch x := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			w.applyCond(x.X, !truth)
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			if truth {
				w.applyCond(x.X, true)
				w.applyCond(x.Y, true)
			}
		case token.LOR:
			if !truth {
				w.applyCond(x.X, false)
				w.applyCond(x.Y, false)
			}
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			if !isIntExpr(w.a.info, x.X) || !isIntExpr(w.a.info, x.Y) {
				return
			}
			w.applyRel(x.X, x.Op, w.eval(x.Y), truth)
			w.applyRel(x.Y, swapRel(x.Op), w.eval(x.X), truth)
		}
	}
}

func swapRel(op token.Kind) token.Kind {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op // EQL, NEQ are symmetric
}

// applyRel narrows the target of `target op other` assumed truth.
func (w *walker) applyRel(target ast.Expr, op token.Kind, other Interval, truth bool) {
	if !truth {
		switch op {
		case token.LSS:
			op = token.GEQ
		case token.LEQ:
			op = token.GTR
		case token.GTR:
			op = token.LEQ
		case token.GEQ:
			op = token.LSS
		case token.EQL:
			op = token.NEQ
		case token.NEQ:
			op = token.EQL
		}
	}
	var c Interval
	switch op {
	case token.LSS:
		if other.NoHi {
			return
		}
		hi, _ := addSat(other.Hi, -1)
		c = Interval{NoLo: true, Hi: hi}
	case token.LEQ:
		if other.NoHi {
			return
		}
		c = Interval{NoLo: true, Hi: other.Hi}
	case token.GTR:
		if other.NoLo {
			return
		}
		lo, _ := addSat(other.Lo, 1)
		c = Interval{Lo: lo, NoHi: true}
	case token.GEQ:
		if other.NoLo {
			return
		}
		c = Interval{Lo: other.Lo, NoHi: true}
	case token.EQL:
		c = other
	default:
		return
	}
	switch t := ast.Unparen(target).(type) {
	case *ast.Ident:
		sym := w.a.info.Ref[t]
		if isIntScalar(sym) {
			w.env[sym] = w.lookup(sym).Refine(c)
		}
	case *ast.IndexExpr:
		key := ast.PrintExpr(t)
		if prev, ok := w.refine[key]; ok {
			c = prev.Refine(c)
		}
		w.refine[key] = c
	}
}

// ----------------------------------------------------------------------------
// Expressions

func (w *walker) eval(e ast.Expr) Interval {
	switch x := e.(type) {
	case nil:
		return Top()
	case *ast.IntLit:
		return Exact(x.Value)
	case *ast.CharLit:
		return Exact(x.Value)
	case *ast.FloatLit, *ast.StringLit:
		return Top()
	case *ast.ParenExpr:
		return w.eval(x.X)
	case *ast.Ident:
		return w.identValue(x)
	case *ast.BinaryExpr:
		a := w.eval(x.X)
		b := w.eval(x.Y)
		return w.binop(x.Op, a, b)
	case *ast.UnaryExpr:
		return w.unary(x)
	case *ast.PostfixExpr:
		return w.incDec(x.X, x.Op)
	case *ast.AssignExpr:
		return w.assign(x)
	case *ast.CondExpr:
		w.eval(x.Cond)
		// Each arm only evaluates under its polarity of the condition,
		// so refine both: this is what proves the clamp idiom
		// j < 0 ? 0 : j and its mirror.
		tb := w.branch()
		tb.applyCond(x.Cond, true)
		t := tb.eval(x.Then)
		fb := w.branch()
		fb.applyCond(x.Cond, false)
		f := fb.eval(x.Else)
		w.merge(tb, fb)
		return t.Union(f)
	case *ast.CallExpr:
		return w.call(x)
	case *ast.IndexExpr:
		return w.access(x, false)
	case *ast.MemberExpr:
		w.eval(x.X)
		return Top()
	case *ast.CastExpr:
		return w.cast(x)
	case *ast.SizeofExpr:
		if v, ok := sema.ConstInt(x); ok {
			return Exact(v)
		}
		return Top()
	}
	return Top()
}

func (w *walker) identValue(id *ast.Ident) Interval {
	sym := w.a.info.Ref[id]
	if sym == nil {
		return Top()
	}
	if w.prove && sym.Kind == sema.SymLocal && !sym.IsArray() &&
		sym.Type != nil && (sym.Type.Kind == types.Int || sym.Type.Kind == types.Float) &&
		!w.written[sym] && sym.Decl != nil && sym.Decl.Init == nil &&
		!w.a.uninitReported[sym] {
		w.a.uninitReported[sym] = true
		w.a.res.Findings = append(w.a.res.Findings, Finding{
			Kind: UninitScalar,
			Pos:  id.Pos(),
			Expr: id.Name,
			Msg: fmt.Sprintf("%s is read before any assignment (declared at %s without an initializer)",
				id.Name, sym.Decl.Pos()),
		})
	}
	if !isIntScalar(sym) {
		return Top()
	}
	return w.lookup(sym)
}

func (w *walker) binop(op token.Kind, a, b Interval) Interval {
	switch op {
	case token.ADD:
		return a.Add(b)
	case token.SUB:
		return a.Sub(b)
	case token.MUL:
		return a.Mul(b)
	case token.QUO:
		return a.Div(b)
	case token.REM:
		return a.Mod(b)
	case token.AND:
		return a.And(b)
	case token.SHL:
		return a.Shl(b)
	case token.SHR:
		return a.Shr(b)
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ,
		token.LAND, token.LOR:
		return Range(0, 1)
	}
	return Top()
}

func (w *walker) unary(x *ast.UnaryExpr) Interval {
	switch x.Op {
	case token.SUB:
		return w.eval(x.X).Neg()
	case token.ADD:
		return w.eval(x.X)
	case token.NOT:
		w.eval(x.X)
		return Range(0, 1)
	case token.INC, token.DEC:
		return w.incDec(x.X, x.Op)
	case token.MUL, token.AND:
		w.eval(x.X)
		return Top()
	}
	w.eval(x.X)
	return Top()
}

func (w *walker) incDec(target ast.Expr, op token.Kind) Interval {
	delta := Exact(1)
	if op == token.DEC {
		delta = Exact(-1)
	}
	switch t := ast.Unparen(target).(type) {
	case *ast.Ident:
		sym := w.a.info.Ref[t]
		if isIntScalar(sym) {
			nv := w.lookup(sym).Add(delta)
			w.setScalar(sym, nv)
			w.shiftRel(sym, delta.Lo)
			return nv
		}
		if sym != nil {
			w.written[sym] = true
		}
		return Top()
	case *ast.IndexExpr:
		iv := w.access(t, true)
		if id, _ := chainOf(t); id != nil {
			if sym := w.a.info.Ref[id]; sym != nil && !w.prove {
				w.a.widenContent(sym, Top())
			}
		}
		w.clearRefines()
		return iv
	}
	w.eval(target)
	return Top()
}

func (w *walker) assign(x *ast.AssignExpr) Interval {
	rhs := w.eval(x.RHS)
	switch l := ast.Unparen(x.LHS).(type) {
	case *ast.Ident:
		sym := w.a.info.Ref[l]
		nv := rhs
		lin, linOK := w.linOf(x.RHS)
		if x.Op != token.ASSIGN {
			if bin, ok := x.Op.AssignBinOp(); ok {
				nv = w.binop(bin, w.lookup(sym), rhs)
			} else {
				nv = Top()
			}
			// Fold the compound op into the affine form: only the
			// additive ones stay affine.
			switch {
			case x.Op == token.ADDASSIGN && linOK:
				self := linForm{Base: sym, A: 1}
				if r, ok := w.rel[sym]; ok {
					self = linForm{Base: r.Base, A: r.A, B: r.B}
				}
				lin, linOK = combineLin(self, lin, 1)
			case x.Op == token.SUBASSIGN && linOK:
				self := linForm{Base: sym, A: 1}
				if r, ok := w.rel[sym]; ok {
					self = linForm{Base: r.Base, A: r.A, B: r.B}
				}
				lin, linOK = combineLin(self, lin, -1)
			default:
				linOK = false
			}
		}
		w.setScalar(sym, nv)
		w.deriveRel(sym, lin, linOK)
		return nv
	case *ast.IndexExpr:
		w.access(l, true)
		if id, subs := chainOf(l); id != nil {
			if sym := w.a.info.Ref[id]; sym != nil && !w.prove && fullAccess(sym, subs, w.a) {
				if x.Op == token.ASSIGN {
					w.a.widenContent(sym, rhs)
				} else {
					w.a.widenContent(sym, Top())
				}
			}
		}
		w.clearRefines() // an element store may invalidate guard facts
		return rhs
	default:
		w.eval(x.LHS)
		return rhs
	}
}

// fullAccess reports whether subs address one element of sym (rather
// than a partial row of a multi-dimensional array).
func fullAccess(sym *sema.Symbol, subs []ast.Expr, a *analyzer) bool {
	if sym.IsArray() {
		return len(subs) == len(sym.Dims)
	}
	return len(subs) == 1
}

func (w *walker) call(x *ast.CallExpr) Interval {
	var args []Interval
	for _, arg := range x.Args {
		args = append(args, w.eval(arg))
	}
	sig := w.a.info.Funcs[x.Fun.Name]
	if sig == nil || !sig.Pure {
		w.havocGlobals()
	}
	// The polyhedral helper builtins have exact interval semantics;
	// modeling them keeps tiled loop bounds provable.
	switch x.Fun.Name {
	case "imin":
		if len(args) == 2 {
			return minIv(args[0], args[1])
		}
	case "imax":
		if len(args) == 2 {
			return maxIv(args[0], args[1])
		}
	case "abs":
		if len(args) == 1 {
			return absIv(args[0])
		}
	case "floord":
		if len(args) == 2 {
			d := args[0].Div(args[1])
			return d.Add(Range(-1, 0))
		}
	case "ceild":
		if len(args) == 2 {
			d := args[0].Div(args[1])
			return d.Add(Range(0, 1))
		}
	}
	return Top()
}

func minIv(a, b Interval) Interval {
	var out Interval
	out.NoLo = a.NoLo || b.NoLo
	if !out.NoLo {
		out.Lo = a.Lo
		if b.Lo < out.Lo {
			out.Lo = b.Lo
		}
	}
	switch {
	case a.NoHi && b.NoHi:
		out.NoHi = true
	case a.NoHi:
		out.Hi = b.Hi
	case b.NoHi:
		out.Hi = a.Hi
	default:
		out.Hi = a.Hi
		if b.Hi < out.Hi {
			out.Hi = b.Hi
		}
	}
	return out
}

func maxIv(a, b Interval) Interval { return minIv(a.Neg(), b.Neg()).Neg() }

func absIv(a Interval) Interval {
	if !a.Bounded() {
		return Interval{Lo: 0, NoHi: true}
	}
	if a.Lo >= 0 {
		return a
	}
	hi := -a.Lo
	if a.Hi > hi {
		hi = a.Hi
	}
	return Range(0, hi)
}

func (w *walker) cast(x *ast.CastExpr) Interval {
	iv := w.eval(x.X)
	t := x.Type
	if t == nil || t.IsPointer() {
		return Top()
	}
	var lo, hi int64
	switch t.Base {
	case ast.Char:
		lo, hi = -128, 127
	case ast.Short:
		lo, hi = -32768, 32767
	case ast.Int:
		lo, hi = -2147483648, 2147483647
	case ast.Unsigned:
		lo, hi = 0, 4294967295
	case ast.Long:
		return iv
	default:
		return Top() // float casts and struct types carry no int range
	}
	if iv.Inside(lo, hi) {
		return iv
	}
	return Range(lo, hi) // narrowing may wrap anywhere in the target range
}

// ----------------------------------------------------------------------------
// Array accesses: proofs and findings

// chainOf unwinds a subscript chain x[a][b] to its base identifier and
// the subscripts in source order.
func chainOf(e *ast.IndexExpr) (*ast.Ident, []ast.Expr) {
	var subs []ast.Expr
	cur := ast.Expr(e)
	for {
		ix, ok := ast.Unparen(cur).(*ast.IndexExpr)
		if !ok {
			break
		}
		subs = append([]ast.Expr{ix.Index}, subs...)
		cur = ix.X
	}
	id, _ := ast.Unparen(cur).(*ast.Ident)
	return id, subs
}

// access evaluates an index expression, records bounds findings and
// proofs for it, and returns the interval of the loaded value.
func (w *walker) access(e *ast.IndexExpr, write bool) Interval {
	id, subs := chainOf(e)
	var sym *sema.Symbol
	if id != nil {
		sym = w.a.info.Ref[id]
	}
	if sym != nil && sym.IsArray() {
		ivs := make([]Interval, len(subs))
		for i, s := range subs {
			ivs[i] = w.eval(s)
		}
		if w.prove {
			proven := true
			for i, s := range subs {
				if i >= len(sym.Dims) {
					proven = false
					break
				}
				if !w.checkSub(e, id.Name, s, ivs[i], int64(sym.Dims[i])) {
					proven = false
				}
			}
			if proven && len(subs) == len(sym.Dims) {
				w.a.res.safe[e] = true
			}
		}
		if len(subs) == len(sym.Dims) {
			return w.loadValue(e, sym)
		}
		return Top()
	}
	// Pointer-style access: only the outermost level resolves here;
	// deeper levels recurse through eval of the base expression.
	idxIv := w.eval(e.Index)
	base := ast.Unparen(e.X)
	if bid, ok := base.(*ast.Ident); ok {
		bsym := w.a.info.Ref[bid]
		if bsym != nil {
			if ext, ok := w.a.extent[bsym]; ok {
				if w.prove && w.checkSub(e, bid.Name, e.Index, idxIv, ext) {
					w.a.res.safe[e] = true
				}
				return w.loadValue(e, bsym)
			}
			// Alias-derived extent: a pointer resolved to a declared
			// array by its own initializer (which dominates every use)
			// inherits the array's bounds shifted by the offset.
			if t, ok := w.a.alias.Resolve(bsym); ok && t.Array != nil &&
				t.DeclInit && len(t.Array.Dims) == 1 {
				//lint:rawmem t.Off is the points-to model's compile-time element offset, not a runtime mem.Pointer field
				ext := int64(t.Array.Dims[0]) - t.Off
				if w.prove && ext > 0 && w.checkSub(e, bid.Name, e.Index, idxIv, ext) {
					w.a.res.safe[e] = true
				}
				return w.loadValue(e, t.Array)
			}
		}
		return Top()
	}
	w.eval(base)
	return Top()
}

// loadValue returns the value interval of one loaded element, applying
// any guard refinement recorded for this exact source expression.
func (w *walker) loadValue(e ast.Expr, sym *sema.Symbol) Interval {
	iv := Top()
	if w.a.tracked[sym] {
		iv = w.a.content[sym]
	}
	if r, ok := w.refine[ast.PrintExpr(e)]; ok {
		iv = iv.Refine(r)
	}
	return iv
}

// checkSub compares one subscript interval against [0, extent) and
// records the finding; it reports whether the subscript is proven.
func (w *walker) checkSub(e *ast.IndexExpr, name string, sub ast.Expr, iv Interval, extent int64) bool {
	if iv.Inside(0, extent-1) {
		return true
	}
	src := ast.PrintExpr(e)
	detail := fmt.Sprintf("subscript %s in %s, extent of %s is %d",
		ast.PrintExpr(sub), iv, name, extent)
	if c := w.contributors(sub); c != "" {
		detail += " (" + c + ")"
	}
	w.a.res.notes[e] = detail
	if iv.DisjointFrom(0, extent-1) {
		w.a.res.Findings = append(w.a.res.Findings, Finding{
			Kind: DefiniteOOB, Pos: e.Pos(), Expr: src,
			Msg: fmt.Sprintf("%s always out of bounds: %s", src, detail),
		})
		return false
	}
	w.a.res.Findings = append(w.a.res.Findings, Finding{
		Kind: PossibleOOB, Pos: e.Pos(), Expr: src,
		Msg: fmt.Sprintf("%s may be out of bounds: %s", src, detail),
	})
	return false
}

// contributors renders the derived ranges of the scalars and index
// arrays an expression reads, for the human-readable derivations.
func (w *walker) contributors(e ast.Expr) string {
	var parts []string
	seen := map[string]bool{}
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			parts = append(parts, s)
		}
	}
	ast.Walk(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			sym := w.a.info.Ref[x]
			if isIntScalar(sym) {
				add(fmt.Sprintf("%s in %s", x.Name, w.lookup(sym)))
			}
		case *ast.IndexExpr:
			if id, _ := chainOf(x); id != nil {
				if sym := w.a.info.Ref[id]; sym != nil && w.a.tracked[sym] {
					add(fmt.Sprintf("contents of %s in %s", id.Name, w.a.content[sym]))
				}
			}
		}
		return true
	})
	return strings.Join(parts, ", ")
}
