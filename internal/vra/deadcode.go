package vra

import (
	"fmt"

	"purec/internal/ast"
	"purec/internal/sema"
	"purec/internal/token"
)

// deadCode runs the liveness diagnostics per function: locals that are
// declared but never used, and stores whose value is never read —
// either because the variable has no reads at all, or because a later
// store in the same straight-line block overwrites it first.
// Address-taken variables are exempt (a pointer may read them), as are
// globals and parameters.
func (a *analyzer) deadCode() {
	for _, fd := range a.info.File.Funcs() {
		if fd.Body == nil {
			continue
		}
		a.deadCodeFunc(fd)
	}
}

type storeSite struct {
	pos  token.Pos
	expr string
}

func (a *analyzer) deadCodeFunc(fd *ast.FuncDecl) {
	eligible := func(sym *sema.Symbol) bool {
		return sym != nil && sym.Kind == sema.SymLocal && !sym.IsArray() &&
			!a.addrTaken[sym]
	}

	// Reference census: every identifier occurrence is a use, except
	// the target of a plain assignment (compound assigns and ++/--
	// read the old value, so their targets stay uses).
	reads := map[*sema.Symbol]int{}
	stores := map[*sema.Symbol][]storeSite{}
	storeTargets := map[*ast.Ident]bool{}
	ast.Walk(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignExpr); ok && as.Op == token.ASSIGN {
			if id, okI := ast.Unparen(as.LHS).(*ast.Ident); okI {
				storeTargets[id] = true
				if sym := a.info.Ref[id]; eligible(sym) {
					stores[sym] = append(stores[sym], storeSite{
						pos: as.Pos(), expr: ast.PrintExpr(as),
					})
				}
			}
		}
		return true
	})
	ast.Walk(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !storeTargets[id] {
			if sym := a.info.Ref[id]; sym != nil {
				reads[sym]++
			}
		}
		return true
	})

	for _, sym := range a.info.FuncLocals[fd.Name] {
		if !eligible(sym) || sym.Decl == nil || reads[sym] > 0 {
			continue
		}
		switch {
		case len(stores[sym]) == 0:
			a.res.Findings = append(a.res.Findings, Finding{
				Kind: UnusedVar,
				Pos:  sym.Decl.Pos(),
				Expr: sym.Name,
				Msg: fmt.Sprintf("%s is declared but never used (declared at %s)",
					sym.Name, sym.Decl.Pos()),
			})
		default:
			for _, st := range stores[sym] {
				a.res.Findings = append(a.res.Findings, Finding{
					Kind: DeadStore,
					Pos:  st.pos,
					Expr: st.expr,
					Msg: fmt.Sprintf("value stored by %s is never read (%s has no reads in %s)",
						st.expr, sym.Name, fd.Name),
				})
			}
		}
	}

	// Straight-line overwrites: x = e1; x = e2; with no intervening
	// read of x, no control flow and no calls makes e1's store dead
	// even when x is live later.
	overwritten := map[token.Pos]bool{}
	ast.Walk(fd.Body, func(n ast.Node) bool {
		blk, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		pending := map[*sema.Symbol]storeSite{}
		for _, st := range blk.List {
			as := plainAssign(st)
			if as == nil {
				// Any other statement may read or branch: forget all.
				pending = map[*sema.Symbol]storeSite{}
				continue
			}
			id, _ := ast.Unparen(as.LHS).(*ast.Ident)
			sym := a.info.Ref[id]
			// Reads inside this statement kill the pending stores of
			// what they read.
			for _, rid := range ast.Idents(as.RHS) {
				delete(pending, a.info.Ref[rid])
			}
			if !eligible(sym) || !effectFree(as.RHS) || hasCall(as.RHS) {
				delete(pending, sym)
				continue
			}
			if prev, okP := pending[sym]; okP && !overwritten[prev.pos] {
				overwritten[prev.pos] = true
				a.res.Findings = append(a.res.Findings, Finding{
					Kind: DeadStore,
					Pos:  prev.pos,
					Expr: prev.expr,
					Msg: fmt.Sprintf("value stored by %s is overwritten by %s before any read",
						prev.expr, as2line(as)),
				})
			}
			pending[sym] = storeSite{pos: as.Pos(), expr: ast.PrintExpr(as)}
		}
		return true
	})
}

// plainAssign matches an expression statement that is exactly
// `ident = rhs`.
func plainAssign(st ast.Stmt) *ast.AssignExpr {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	as, ok := ast.Unparen(es.X).(*ast.AssignExpr)
	if !ok || as.Op != token.ASSIGN {
		return nil
	}
	if _, ok := ast.Unparen(as.LHS).(*ast.Ident); !ok {
		return nil
	}
	return as
}

// effectFree reports whether evaluating e cannot write any variable.
func effectFree(e ast.Expr) bool {
	free := true
	ast.Walk(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignExpr, *ast.PostfixExpr:
			free = false
		case *ast.UnaryExpr:
			if x.Op == token.INC || x.Op == token.DEC {
				free = false
			}
		}
		return free
	})
	return free
}

func hasCall(e ast.Expr) bool {
	found := false
	ast.Walk(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

func as2line(as *ast.AssignExpr) string {
	return fmt.Sprintf("%s at %s", ast.PrintExpr(as), as.Pos())
}
