package vra

import (
	"fmt"
	"sort"
	"strings"

	"purec/internal/ast"
	"purec/internal/sema"
	"purec/internal/token"
	"purec/internal/types"
)

// Target is an exact points-to resolution: the pointer always holds
// region base + Off elements (when its defining store has executed).
type Target struct {
	// Region names the pointed-to storage: a declared array's name, or
	// a synthetic "malloc@pos" id unique to one allocation site.
	Region string
	// Array is the declared array symbol when Region is one, nil for
	// malloc regions.
	Array *sema.Symbol
	// Off is the element offset of the pointer into the region.
	Off int64
	// DeclInit reports that the single store is the pointer's own
	// declaration initializer, which dominates every later use in the
	// function — the form check-elision proofs may rely on.
	DeclInit bool
}

// AliasResult is the flow-insensitive points-to map for guest
// pointers. A pointer is either exactly resolved (single store, affine
// chain to one region), bounded to a may-point-to region set, or
// unknown (may point anywhere).
type AliasResult struct {
	exact map[*sema.Symbol]Target
	may   map[*sema.Symbol][]string
}

// Resolve returns the exact target of a pointer, when its value is a
// compile-time region + offset.
func (r *AliasResult) Resolve(sym *sema.Symbol) (Target, bool) {
	if r == nil {
		return Target{}, false
	}
	t, ok := r.exact[sym]
	return t, ok
}

// ResolveExact is the scop-facing form of Resolve.
func (r *AliasResult) ResolveExact(sym *sema.Symbol) (region string, off int64, ok bool) {
	t, ok := r.Resolve(sym)
	return t.Region, t.Off, ok
}

// MayPointTo returns the may-point-to region set of a pointer; nil
// means unknown (anything).
func (r *AliasResult) MayPointTo(sym *sema.Symbol) []string {
	if r == nil {
		return nil
	}
	if t, ok := r.exact[sym]; ok {
		return []string{t.Region}
	}
	return r.may[sym]
}

// Describe renders one pointer's points-to fact for reports.
func (r *AliasResult) Describe(sym *sema.Symbol) string {
	if t, ok := r.Resolve(sym); ok {
		return fmt.Sprintf("%s -> %s[+%d]", sym.Name, t.Region, t.Off)
	}
	if set := r.MayPointTo(sym); len(set) > 0 {
		return fmt.Sprintf("%s -> {%s}", sym.Name, strings.Join(set, ", "))
	}
	return fmt.Sprintf("%s -> anything", sym.Name)
}

// analyzeAliases computes the points-to result from the program-wide
// pointer store sets gathered syntactically.
func (a *analyzer) analyzeAliases() *AliasResult {
	res := &AliasResult{
		exact: map[*sema.Symbol]Target{},
		may:   map[*sema.Symbol][]string{},
	}

	// Gather every store to every pointer variable.
	type ptrStore struct {
		rhs      ast.Expr // nil for ++/--/compound ops (unresolvable)
		declInit bool
	}
	stores := map[*sema.Symbol][]ptrStore{}
	isPtr := func(sym *sema.Symbol) bool {
		return sym != nil && !sym.IsArray() && sym.Type != nil && sym.Type.Kind == types.Ptr
	}
	note := func(sym *sema.Symbol, s ptrStore) {
		if isPtr(sym) {
			stores[sym] = append(stores[sym], s)
		}
	}
	ast.Walk(a.info.File, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignExpr:
			if id, ok := ast.Unparen(x.LHS).(*ast.Ident); ok {
				rhs := x.RHS
				if x.Op != token.ASSIGN {
					rhs = nil
				}
				note(a.info.Ref[id], ptrStore{rhs: rhs})
			}
		case *ast.UnaryExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && (x.Op == token.INC || x.Op == token.DEC) {
				note(a.info.Ref[id], ptrStore{})
			}
		case *ast.PostfixExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				note(a.info.Ref[id], ptrStore{})
			}
		case *ast.VarDecl:
			if x.Init != nil {
				note(a.declToSym[x], ptrStore{rhs: x.Init, declInit: true})
			}
		}
		return true
	})

	// targetOf resolves an rvalue to a region + element offset,
	// chasing pointer copies through other single-store pointers.
	visiting := map[*sema.Symbol]bool{}
	var resolveSym func(sym *sema.Symbol) (Target, bool)
	var targetOf func(e ast.Expr) (Target, bool)

	targetOf = func(e ast.Expr) (Target, bool) {
		e = stripCasts(e)
		switch x := e.(type) {
		case *ast.Ident:
			sym := a.info.Ref[x]
			if sym == nil {
				return Target{}, false
			}
			if sym.IsArray() && len(sym.Dims) == 1 {
				return Target{Region: sym.Name, Array: sym}, true // array decay
			}
			return resolveSym(sym)
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return Target{}, false
			}
			switch op := ast.Unparen(x.X).(type) {
			case *ast.Ident: // &arr
				sym := a.info.Ref[op]
				if sym != nil && sym.IsArray() && len(sym.Dims) == 1 {
					return Target{Region: sym.Name, Array: sym}, true
				}
			case *ast.IndexExpr: // &arr[c], &p[c]
				k, okK := sema.ConstInt(op.Index)
				if !okK {
					return Target{}, false
				}
				t, ok := targetOf(op.X)
				if !ok {
					return Target{}, false
				}
				t.Off += k
				return t, true
			}
		case *ast.BinaryExpr: // p + c, p - c, c + p
			if c, ok := sema.ConstInt(x.Y); ok {
				t, okT := targetOf(x.X)
				if !okT {
					return Target{}, false
				}
				switch x.Op {
				case token.ADD:
					t.Off += c
					return t, true
				case token.SUB:
					t.Off -= c
					return t, true
				}
				return Target{}, false
			}
			if c, ok := sema.ConstInt(x.X); ok && x.Op == token.ADD {
				t, okT := targetOf(x.Y)
				if !okT {
					return Target{}, false
				}
				t.Off += c
				return t, true
			}
		case *ast.CallExpr:
			if x.Fun.Name == "malloc" && len(x.Args) == 1 {
				return Target{Region: fmt.Sprintf("malloc@%s", x.Pos())}, true
			}
		}
		return Target{}, false
	}

	resolveSym = func(sym *sema.Symbol) (Target, bool) {
		if t, ok := res.exact[sym]; ok {
			return t, true
		}
		if !isPtr(sym) || sym.Kind == sema.SymParam || a.addrTaken[sym] ||
			visiting[sym] || len(stores[sym]) != 1 {
			return Target{}, false
		}
		st := stores[sym][0]
		if st.rhs == nil {
			return Target{}, false
		}
		visiting[sym] = true
		t, ok := targetOf(st.rhs)
		delete(visiting, sym)
		if !ok {
			return Target{}, false
		}
		t.DeclInit = st.declInit
		res.exact[sym] = t
		return t, true
	}

	for sym, sts := range stores {
		if _, ok := resolveSym(sym); ok {
			continue
		}
		if sym.Kind == sema.SymParam || a.addrTaken[sym] {
			continue // unknown: no entry in either map
		}
		// Multi-store pointer: the may set is the union of each store's
		// region, unknown if any store fails to resolve.
		set := map[string]bool{}
		ok := true
		for _, st := range sts {
			if st.rhs == nil {
				ok = false
				break
			}
			t, okT := targetOf(st.rhs)
			if !okT {
				ok = false
				break
			}
			set[t.Region] = true
		}
		if ok && len(set) > 0 {
			regions := make([]string, 0, len(set))
			for r := range set {
				regions = append(regions, r)
			}
			sort.Strings(regions)
			res.may[sym] = regions
		}
	}
	return res
}

func stripCasts(e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		if c, ok := e.(*ast.CastExpr); ok {
			e = c.X
			continue
		}
		return e
	}
}
