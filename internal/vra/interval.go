// Package vra implements a static value-range analysis over the checked
// syntax tree: it derives integer intervals for loop iterators, affine
// subscript expressions and index-array contents, compares them against
// declared array extents, and exports both bounds proofs (consumed by
// the compiler's check-elimination and the gather-parallelization
// passes) and human-readable diagnostics (purecc -analyze).
//
// The analysis is flow-sensitive for scalars inside one function body
// and flow-insensitive for array contents and pointer extents across
// the whole program: an index array's content interval is the union of
// every store the program can make to it (plus zero, the execution
// model's segment initialization), so a proof derived from it holds at
// every read site regardless of call order. All derived intervals are
// over-approximations; a proof is only emitted when the whole interval
// fits inside the extent, which is what makes check elision sound.
package vra

import (
	"fmt"
	"math"
)

// Interval is an integer range [Lo, Hi]; NoLo/NoHi mark the side as
// unbounded. The zero value is the exact interval [0, 0].
type Interval struct {
	Lo, Hi     int64
	NoLo, NoHi bool
}

// Exact returns the single-point interval [v, v].
func Exact(v int64) Interval { return Interval{Lo: v, Hi: v} }

// Range returns the interval [lo, hi].
func Range(lo, hi int64) Interval { return Interval{Lo: lo, Hi: hi} }

// Top returns the unbounded interval (-inf, +inf).
func Top() Interval { return Interval{NoLo: true, NoHi: true} }

// IsTop reports whether the interval is unbounded on both sides.
func (iv Interval) IsTop() bool { return iv.NoLo && iv.NoHi }

// Bounded reports whether both ends are finite.
func (iv Interval) Bounded() bool { return !iv.NoLo && !iv.NoHi }

// Inside reports whether the whole interval fits in [lo, hi].
func (iv Interval) Inside(lo, hi int64) bool {
	return iv.Bounded() && iv.Lo >= lo && iv.Hi <= hi
}

// DisjointFrom reports whether the interval cannot intersect [lo, hi]:
// every value it may take is outside. An unbounded side may take values
// inside, so it never counts as disjoint.
func (iv Interval) DisjointFrom(lo, hi int64) bool {
	below := !iv.NoHi && iv.Hi < lo
	above := !iv.NoLo && iv.Lo > hi
	return below || above
}

// String renders the interval in mathematical notation.
func (iv Interval) String() string {
	l, h := "(-inf", "+inf)"
	if !iv.NoLo {
		l = fmt.Sprintf("[%d", iv.Lo)
	}
	if !iv.NoHi {
		h = fmt.Sprintf("%d]", iv.Hi)
	}
	return l + ", " + h
}

// addSat adds with saturation at the int64 limits; sat reports overflow.
func addSat(a, b int64) (v int64, sat bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		if b > 0 {
			return math.MaxInt64, true
		}
		return math.MinInt64, true
	}
	return s, false
}

// mulSat multiplies with saturation at the int64 limits.
func mulSat(a, b int64) (v int64, sat bool) {
	if a == 0 || b == 0 {
		return 0, false
	}
	p := a * b
	if p/b != a {
		if (a > 0) == (b > 0) {
			return math.MaxInt64, true
		}
		return math.MinInt64, true
	}
	return p, false
}

// Add returns an interval containing a+b for all a in iv, b in o.
func (iv Interval) Add(o Interval) Interval {
	var out Interval
	out.NoLo = iv.NoLo || o.NoLo
	out.NoHi = iv.NoHi || o.NoHi
	if !out.NoLo {
		v, sat := addSat(iv.Lo, o.Lo)
		out.Lo, out.NoLo = v, sat
	}
	if !out.NoHi {
		v, sat := addSat(iv.Hi, o.Hi)
		out.Hi, out.NoHi = v, sat
	}
	return out
}

// Sub returns an interval containing a-b.
func (iv Interval) Sub(o Interval) Interval { return iv.Add(o.Neg()) }

// Neg returns an interval containing -a.
func (iv Interval) Neg() Interval {
	out := Interval{Lo: -iv.Hi, Hi: -iv.Lo, NoLo: iv.NoHi, NoHi: iv.NoLo}
	if !out.NoHi && iv.Lo == math.MinInt64 {
		out.Hi, out.NoHi = math.MaxInt64, true
	}
	if !out.NoLo && iv.Hi == math.MinInt64 {
		out.Lo, out.NoLo = math.MaxInt64, true
	}
	return out
}

// Mul returns an interval containing a*b.
func (iv Interval) Mul(o Interval) Interval {
	if iv == Exact(0) || o == Exact(0) {
		return Exact(0)
	}
	if !iv.Bounded() || !o.Bounded() {
		// Refining unbounded products (sign reasoning) buys little for
		// subscript proofs; stay conservative.
		return Top()
	}
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	sat := false
	for _, a := range []int64{iv.Lo, iv.Hi} {
		for _, b := range []int64{o.Lo, o.Hi} {
			v, s := mulSat(a, b)
			sat = sat || s
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if sat {
		return Top()
	}
	return Range(lo, hi)
}

// Div returns an interval containing a/b (C truncated division).
func (iv Interval) Div(o Interval) Interval {
	if !iv.Bounded() || !o.Bounded() || (o.Lo <= 0 && o.Hi >= 0) {
		// A possible zero divisor traps at runtime; the analysis only
		// reasons about values of evaluations that complete.
		return Top()
	}
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for _, a := range []int64{iv.Lo, iv.Hi} {
		for _, b := range []int64{o.Lo, o.Hi} {
			v := a / b
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return Range(lo, hi)
}

// Mod returns an interval containing a%b (C semantics: the result takes
// the dividend's sign). For a constant positive divisor m this is the
// index-array workhorse: a nonnegative dividend yields [0, m-1].
func (iv Interval) Mod(o Interval) Interval {
	if !o.Bounded() || o.Lo <= 0 {
		return Top()
	}
	m := o.Hi - 1 // |a % b| <= max(b)-1
	if iv.Bounded() && iv.Lo >= 0 {
		if iv.Hi < o.Lo && o.Lo == o.Hi {
			return iv // a < b with b exact: a%b == a
		}
		hi := m
		if iv.Hi < hi {
			hi = iv.Hi
		}
		return Range(0, hi)
	}
	if iv.Bounded() && iv.Hi <= 0 {
		return Range(-m, 0)
	}
	return Range(-m, m)
}

// And returns an interval containing a&b. With one nonnegative bounded
// operand the result is [0, that operand's Hi] regardless of the other
// side (masking clears every bit above it).
func (iv Interval) And(o Interval) Interval {
	if o.Bounded() && o.Lo >= 0 {
		return Range(0, o.Hi)
	}
	if iv.Bounded() && iv.Lo >= 0 {
		return Range(0, iv.Hi)
	}
	return Top()
}

// Shl returns an interval containing a<<b for an exact shift count.
func (iv Interval) Shl(o Interval) Interval {
	if !iv.Bounded() || !o.Bounded() || o.Lo != o.Hi || o.Lo < 0 || o.Lo > 62 {
		return Top()
	}
	return iv.Mul(Exact(int64(1) << uint(o.Lo)))
}

// Shr returns an interval containing a>>b for a nonnegative dividend
// and an exact shift count.
func (iv Interval) Shr(o Interval) Interval {
	if !iv.Bounded() || iv.Lo < 0 || !o.Bounded() || o.Lo != o.Hi || o.Lo < 0 || o.Lo > 62 {
		return Top()
	}
	d := int64(1) << uint(o.Lo)
	return Range(iv.Lo/d, iv.Hi/d)
}

// Union returns the smallest interval containing both.
func (iv Interval) Union(o Interval) Interval {
	var out Interval
	out.NoLo = iv.NoLo || o.NoLo
	out.NoHi = iv.NoHi || o.NoHi
	if !out.NoLo {
		out.Lo = iv.Lo
		if o.Lo < out.Lo {
			out.Lo = o.Lo
		}
	}
	if !out.NoHi {
		out.Hi = iv.Hi
		if o.Hi > out.Hi {
			out.Hi = o.Hi
		}
	}
	return out
}

// Refine intersects the interval with o, returning the receiver
// unchanged when the intersection would be empty (the refinement site
// is then dead code; keeping the over-approximation is always sound).
func (iv Interval) Refine(o Interval) Interval {
	out := iv
	if !o.NoLo && (out.NoLo || o.Lo > out.Lo) {
		out.Lo, out.NoLo = o.Lo, false
	}
	if !o.NoHi && (out.NoHi || o.Hi < out.Hi) {
		out.Hi, out.NoHi = o.Hi, false
	}
	if out.Bounded() && out.Lo > out.Hi {
		return iv
	}
	return out
}
