package vra

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"purec/internal/ast"
	"purec/internal/parser"
	"purec/internal/sema"
)

func exprString(e ast.Expr) string { return ast.PrintExpr(e) }

// analyzeFile runs the analysis over one corpus program.
func analyzeFile(t *testing.T, name string) *Result {
	t.Helper()
	path := filepath.Join("testdata", name)
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	file, err := parser.Parse(name, string(src))
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	info, err := sema.Check(file)
	if err != nil {
		t.Fatalf("%s: check: %v", name, err)
	}
	return Analyze(info)
}

// expect is one required finding: its kind plus a substring of the
// rendered message (derivations included, so the corpus also pins that
// findings explain themselves).
type expect struct {
	kind   Kind
	substr string
}

// TestGoldenCorpus runs the analysis over the testdata programs and
// checks every expected finding appears — and nothing unexpected does.
func TestGoldenCorpus(t *testing.T) {
	cases := []struct {
		file string
		want []expect
	}{
		{"definite_oob.pc", []expect{
			{DefiniteOOB, "a[12] always out of bounds"},
			{DefiniteOOB, "b[i] always out of bounds"},
		}},
		{"possible_oob.pc", []expect{
			{PossibleOOB, "a[i] may be out of bounds"},
			{PossibleOOB, "x[idx[i]] may be out of bounds"},
		}},
		{"uninit_scalar.pc", []expect{
			{UninitScalar, "s is read before any assignment"},
			{UninitScalar, "t is read before any assignment"},
		}},
		{"dead_guard.pc", []expect{
			{DeadGuard, "s < 0 && s > 10 is always false"},
			{DeadGuard, "i > 100 is always false"},
		}},
		{"dead_store.pc", []expect{
			{DeadStore, "value stored by t = 1 is overwritten"},
			{DeadStore, "value stored by u = 5 is never read"},
		}},
		{"unused_var.pc", []expect{
			{UnusedVar, "unused is declared but never used"},
		}},
		{"entailment.pc", []expect{
			{DeadGuard, "j <= i is always false (j = i + 1"},
			{AlwaysTrue, "j > i is always true (j = i + 1"},
		}},
		{"clamp.pc", nil},
		{"derived.pc", nil},
		{"clean.pc", nil},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			res := analyzeFile(t, tc.file)
			matched := make([]bool, len(res.Findings))
			for _, w := range tc.want {
				found := false
				for i, f := range res.Findings {
					if !matched[i] && f.Kind == w.kind && strings.Contains(f.Msg, w.substr) {
						matched[i] = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("missing finding %v %q; got:\n%s", w.kind, w.substr, renderAll(res))
				}
			}
			for i, f := range res.Findings {
				if !matched[i] {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			// Every finding carries a position and a derivation.
			for _, f := range res.Findings {
				if f.Pos.Line == 0 {
					t.Errorf("finding without position: %s", f)
				}
				if f.Msg == "" || f.Expr == "" {
					t.Errorf("finding without derivation: %+v", f)
				}
			}
		})
	}
}

func renderAll(res *Result) string {
	var b strings.Builder
	for _, f := range res.Findings {
		b.WriteString("  " + f.String() + "\n")
	}
	if b.Len() == 0 {
		return "  (none)\n"
	}
	return b.String()
}

// TestClampProofs pins the path-sensitive refinement: all three clamp
// idioms (if-statement, ?:, else-branch) prove their x[j] access, so no
// corpus finding fires and every x[j] check may be elided.
func TestClampProofs(t *testing.T) {
	res := analyzeFile(t, "clamp.pc")
	proven := 0
	for e := range res.Proofs() {
		if s := exprString(e); s == "x[j]" {
			proven++
		}
	}
	if proven != 3 {
		t.Errorf("want all 3 clamped x[j] accesses proven, got %d", proven)
	}
}

// TestDerivedProofs pins the derived-iterator subscript: j = i + 5
// inherits i's loop bounds and xx[j] proves in-bounds.
func TestDerivedProofs(t *testing.T) {
	res := analyzeFile(t, "derived.pc")
	for e := range res.Proofs() {
		if exprString(e) == "xx[j]" {
			return
		}
	}
	t.Error("xx[j] with j = i + 5 not proven")
}

// TestCleanProofs pins the prover side of the corpus: the clean gather
// program's reads are all proven, so the compiler may elide their
// checks and parallelize the nest.
func TestCleanProofs(t *testing.T) {
	res := analyzeFile(t, "clean.pc")
	if len(res.Proofs()) == 0 {
		t.Fatal("clean.pc proved nothing")
	}
	if res.HasDefiniteOOB() {
		t.Fatal("clean.pc reported a definite OOB")
	}
}
