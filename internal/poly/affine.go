// Package poly implements the polyhedral machinery that the paper's tool
// chain delegates to PluTo: affine iteration domains, array access
// functions, dependence analysis with distance/direction vectors,
// legality checks, loop skewing, rectangular tiling and parallel-loop
// detection (Sect. 3.3 and Fig. 2 of the paper).
//
// The representation follows the classical model: each statement instance
// is a point of a Z-polyhedron described by affine inequalities over loop
// iterators and symbolic parameters; dependences are polyhedra relating
// source and target instances; a transformation is legal when every
// dependence remains lexicographically positive.
package poly

import (
	"fmt"
	"sort"
	"strings"

	"purec/internal/ast"
	"purec/internal/sema"
	"purec/internal/token"
)

// Affine is a linear expression  Σ coef[v]·v + Const  over named
// dimensions (loop iterators and structure parameters).
type Affine struct {
	Coef  map[string]int64
	Const int64
}

// NewAffine returns the affine expression equal to c.
func NewAffine(c int64) Affine {
	return Affine{Coef: map[string]int64{}, Const: c}
}

// Var returns the affine expression consisting of the single variable v.
func Var(v string) Affine {
	return Affine{Coef: map[string]int64{v: 1}, Const: 0}
}

// Clone returns a deep copy.
func (a Affine) Clone() Affine {
	c := Affine{Coef: make(map[string]int64, len(a.Coef)), Const: a.Const}
	for k, v := range a.Coef {
		c.Coef[k] = v
	}
	return c
}

// Add returns a+b.
func (a Affine) Add(b Affine) Affine {
	r := a.Clone()
	for k, v := range b.Coef {
		r.Coef[k] += v
		if r.Coef[k] == 0 {
			delete(r.Coef, k)
		}
	}
	r.Const += b.Const
	return r
}

// Sub returns a−b.
func (a Affine) Sub(b Affine) Affine { return a.Add(b.Scale(-1)) }

// Scale returns s·a.
func (a Affine) Scale(s int64) Affine {
	r := NewAffine(a.Const * s)
	for k, v := range a.Coef {
		if v*s != 0 {
			r.Coef[k] = v * s
		}
	}
	return r
}

// IsConst reports whether a has no variable terms.
func (a Affine) IsConst() bool { return len(a.Coef) == 0 }

// CoefOf returns the coefficient of v (0 when absent).
func (a Affine) CoefOf(v string) int64 { return a.Coef[v] }

// Eval evaluates the expression under the given assignment; missing
// variables default to 0.
func (a Affine) Eval(env map[string]int64) int64 {
	r := a.Const
	for k, v := range a.Coef {
		r += v * env[k]
	}
	return r
}

// Rename returns a copy with every variable v replaced by f(v).
func (a Affine) Rename(f func(string) string) Affine {
	r := NewAffine(a.Const)
	for k, v := range a.Coef {
		r.Coef[f(k)] += v
	}
	return r
}

// Vars returns the variables with nonzero coefficients, sorted.
func (a Affine) Vars() []string {
	vs := make([]string, 0, len(a.Coef))
	for k := range a.Coef {
		vs = append(vs, k)
	}
	sort.Strings(vs)
	return vs
}

// Equal reports structural equality.
func (a Affine) Equal(b Affine) bool {
	if a.Const != b.Const || len(a.Coef) != len(b.Coef) {
		return false
	}
	for k, v := range a.Coef {
		if b.Coef[k] != v {
			return false
		}
	}
	return true
}

// String renders the expression deterministically, e.g. "2*i + j - 3".
func (a Affine) String() string {
	var b strings.Builder
	first := true
	for _, v := range a.Vars() {
		c := a.Coef[v]
		switch {
		case first && c == 1:
			b.WriteString(v)
		case first && c == -1:
			b.WriteString("-" + v)
		case first:
			fmt.Fprintf(&b, "%d*%s", c, v)
		case c == 1:
			b.WriteString(" + " + v)
		case c == -1:
			b.WriteString(" - " + v)
		case c > 0:
			fmt.Fprintf(&b, " + %d*%s", c, v)
		default:
			fmt.Fprintf(&b, " - %d*%s", -c, v)
		}
		first = false
	}
	switch {
	case first:
		fmt.Fprintf(&b, "%d", a.Const)
	case a.Const > 0:
		fmt.Fprintf(&b, " + %d", a.Const)
	case a.Const < 0:
		fmt.Fprintf(&b, " - %d", -a.Const)
	}
	return b.String()
}

// VarClass classifies a name appearing in an expression that is being
// converted to affine form.
type VarClass int

// Classifications returned by a ClassifyFunc.
const (
	ClassIter  VarClass = iota // a loop iterator: stays a variable
	ClassParam                 // a symbolic parameter: stays a variable
	ClassOther                 // anything else: the expression is not affine
)

// ClassifyFunc decides how an identifier is treated during extraction.
type ClassifyFunc func(name string) VarClass

// ErrNotAffine reports a subexpression that has no affine form.
type ErrNotAffine struct {
	Expr ast.Expr
}

// Error implements the error interface.
func (e *ErrNotAffine) Error() string {
	return fmt.Sprintf("%s: expression %q is not affine", e.Expr.Pos(), ast.PrintExpr(e.Expr))
}

// FromExpr converts a syntactic expression to affine form. Identifiers
// are classified by classify; integer literals, +, -, unary -, and
// multiplication by constants are affine; everything else fails with
// ErrNotAffine. sizes resolves sema constant folds for sub-expressions.
func FromExpr(e ast.Expr, classify ClassifyFunc) (Affine, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return NewAffine(x.Value), nil
	case *ast.CharLit:
		return NewAffine(x.Value), nil
	case *ast.Ident:
		switch classify(x.Name) {
		case ClassIter, ClassParam:
			return Var(x.Name), nil
		}
		return Affine{}, &ErrNotAffine{Expr: e}
	case *ast.ParenExpr:
		return FromExpr(x.X, classify)
	case *ast.UnaryExpr:
		if x.Op == token.SUB {
			a, err := FromExpr(x.X, classify)
			if err != nil {
				return Affine{}, err
			}
			return a.Scale(-1), nil
		}
		return Affine{}, &ErrNotAffine{Expr: e}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD, token.SUB:
			a, err := FromExpr(x.X, classify)
			if err != nil {
				return Affine{}, err
			}
			b, err := FromExpr(x.Y, classify)
			if err != nil {
				return Affine{}, err
			}
			if x.Op == token.ADD {
				return a.Add(b), nil
			}
			return a.Sub(b), nil
		case token.MUL:
			a, err := FromExpr(x.X, classify)
			if err != nil {
				return Affine{}, err
			}
			b, err := FromExpr(x.Y, classify)
			if err != nil {
				return Affine{}, err
			}
			if a.IsConst() {
				return b.Scale(a.Const), nil
			}
			if b.IsConst() {
				return a.Scale(b.Const), nil
			}
			return Affine{}, &ErrNotAffine{Expr: e}
		}
		return Affine{}, &ErrNotAffine{Expr: e}
	case *ast.CastExpr:
		return FromExpr(x.X, classify)
	}
	if v, ok := sema.ConstInt(e); ok {
		return NewAffine(v), nil
	}
	return Affine{}, &ErrNotAffine{Expr: e}
}
