package poly

import "testing"

// starNest builds for (i = 0..99) with one statement carrying the
// given accesses of array A.
func starNest(writes, reads []Access) *Nest {
	n := &Nest{Iters: []string{"i"}, Domain: NewSystem()}
	n.Domain.AddLowerBound("i", NewAffine(0))
	n.Domain.AddUpperBound("i", NewAffine(99))
	n.Stmts = []*Statement{{ID: 0, Writes: writes, Reads: reads}}
	return n
}

func TestStarWriteSelfDependence(t *testing.T) {
	// A star write (A[idx[i]] = ...) may hit the same cell in two
	// iterations: the analysis must report a carried output dependence
	// even though the access pairs with itself.
	n := starNest([]Access{{Array: "A", Star: true, Write: true}}, nil)
	deps := AnalyzeDeps(n)
	carried := false
	for _, d := range deps {
		if d.Level == 1 && d.Kind == Output {
			carried = true
		}
	}
	if !carried {
		t.Fatalf("star write self-dependence missing: %v", deps)
	}
	if ParallelLevels(n, deps)[0] {
		t.Error("star write must serialize the loop")
	}
}

func TestStarReductionDependencesDoNotSerialize(t *testing.T) {
	// Reduction-tagged star accesses (hist[a[i]]++ recognized as an
	// array reduction) carry dependences, but the privatizing runtime
	// dissolves them: the level must stay parallel.
	n := starNest(
		[]Access{{Array: "A", Star: true, Write: true, Reduction: true}},
		[]Access{{Array: "A", Star: true, Reduction: true}})
	deps := AnalyzeDeps(n)
	if len(deps) == 0 {
		t.Fatal("reduction star accesses must still report their dependences")
	}
	for _, d := range deps {
		if !d.Reduction {
			t.Errorf("dependence %v not marked reduction", d)
		}
	}
	if !ParallelLevels(n, deps)[0] {
		t.Error("reduction dependences must not serialize the loop")
	}
}

func TestStarPairsWithAffineAccess(t *testing.T) {
	// A star access must conflict with an affine access of the same
	// array even though their subscript counts differ — skipping the
	// pair (the pre-star behaviour for mismatched dimensions) would
	// drop a real dependence.
	n := starNest(
		[]Access{{Array: "A", Star: true, Write: true, Reduction: true}},
		nil)
	n.Stmts = append(n.Stmts, &Statement{ID: 1, Seq: 1, Reads: []Access{
		{Array: "A", Subs: []Affine{Var("i")}},
	}})
	deps := AnalyzeDeps(n)
	crossPair := false
	for _, d := range deps {
		if d.Src != d.Dst && d.Array == "A" && !d.Reduction {
			crossPair = true
		}
	}
	if !crossPair {
		t.Fatalf("star write and affine read of A must conflict: %v", deps)
	}
	if ParallelLevels(n, deps)[0] {
		t.Error("the non-reduction read must serialize the loop")
	}
}
