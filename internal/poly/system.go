package poly

import (
	"fmt"
	"sort"
	"strings"
)

// Rel is the relation of a constraint to zero.
type Rel int

// Constraint relations: expr >= 0 or expr == 0.
const (
	GE Rel = iota // Expr >= 0
	EQ            // Expr == 0
)

// Constraint is one affine constraint.
type Constraint struct {
	Expr Affine
	Rel  Rel
}

// String renders the constraint.
func (c Constraint) String() string {
	if c.Rel == EQ {
		return c.Expr.String() + " == 0"
	}
	return c.Expr.String() + " >= 0"
}

// System is a conjunction of affine constraints over named variables.
// It supports Fourier–Motzkin elimination, satisfiability testing (over
// the rationals, a sound over-approximation for integer emptiness as used
// in dependence testing) and bound extraction.
type System struct {
	Cons []Constraint
}

// NewSystem returns an empty (universally true) system.
func NewSystem() *System { return &System{} }

// Clone deep-copies the system.
func (s *System) Clone() *System {
	c := &System{Cons: make([]Constraint, len(s.Cons))}
	for i, cn := range s.Cons {
		c.Cons[i] = Constraint{Expr: cn.Expr.Clone(), Rel: cn.Rel}
	}
	return c
}

// Add appends a constraint.
func (s *System) Add(c Constraint) { s.Cons = append(s.Cons, c) }

// AddGE adds expr >= 0.
func (s *System) AddGE(expr Affine) { s.Add(Constraint{Expr: expr, Rel: GE}) }

// AddEQ adds expr == 0.
func (s *System) AddEQ(expr Affine) { s.Add(Constraint{Expr: expr, Rel: EQ}) }

// AddLowerBound adds v >= bound.
func (s *System) AddLowerBound(v string, bound Affine) {
	s.AddGE(Var(v).Sub(bound))
}

// AddUpperBound adds v <= bound.
func (s *System) AddUpperBound(v string, bound Affine) {
	s.AddGE(bound.Sub(Var(v)))
}

// Vars returns all variables referenced by the system, sorted.
func (s *System) Vars() []string {
	set := map[string]bool{}
	for _, c := range s.Cons {
		for v := range c.Expr.Coef {
			set[v] = true
		}
	}
	vs := make([]string, 0, len(set))
	for v := range set {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}

// String renders the conjunction.
func (s *System) String() string {
	parts := make([]string, len(s.Cons))
	for i, c := range s.Cons {
		parts[i] = c.String()
	}
	return strings.Join(parts, " && ")
}

// Satisfies reports whether the assignment satisfies all constraints.
func (s *System) Satisfies(env map[string]int64) bool {
	for _, c := range s.Cons {
		v := c.Expr.Eval(env)
		if c.Rel == EQ && v != 0 {
			return false
		}
		if c.Rel == GE && v < 0 {
			return false
		}
	}
	return true
}

// normalizeEqs rewrites EQ constraints as two GE constraints, returning a
// GE-only system.
func (s *System) normalizeEqs() *System {
	out := NewSystem()
	for _, c := range s.Cons {
		if c.Rel == EQ {
			out.AddGE(c.Expr.Clone())
			out.AddGE(c.Expr.Scale(-1))
			continue
		}
		out.AddGE(c.Expr.Clone())
	}
	return out
}

// gcd returns the (non-negative) greatest common divisor.
func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// normalizeRow divides a GE row by the gcd of its coefficients, tightening
// the constant with integer floor division (a valid integer tightening).
func normalizeRow(e Affine) Affine {
	var g int64
	for _, c := range e.Coef {
		g = gcd(g, c)
	}
	if g <= 1 {
		return e
	}
	r := NewAffine(floorDiv(e.Const, g))
	for k, c := range e.Coef {
		r.Coef[k] = c / g
	}
	return r
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// Eliminate projects out variable v using Fourier–Motzkin elimination and
// returns the projected system. The projection is exact over the
// rationals and an over-approximation over the integers.
func (s *System) Eliminate(v string) *System {
	ge := s.normalizeEqs()
	var lowers, uppers, rest []Affine
	for _, c := range ge.Cons {
		coef := c.Expr.CoefOf(v)
		switch {
		case coef > 0:
			lowers = append(lowers, c.Expr) // c·v + r >= 0  →  v >= -r/c
		case coef < 0:
			uppers = append(uppers, c.Expr) // -c·v + r >= 0 →  v <= r/c
		default:
			rest = append(rest, c.Expr)
		}
	}
	out := NewSystem()
	for _, r := range rest {
		out.AddGE(normalizeRow(r))
	}
	for _, lo := range lowers {
		cl := lo.CoefOf(v)
		for _, up := range uppers {
			cu := -up.CoefOf(v)
			// combine: cu*lo + cl*up eliminates v
			comb := lo.Scale(cu).Add(up.Scale(cl))
			delete(comb.Coef, v)
			out.AddGE(normalizeRow(comb))
		}
	}
	return out
}

// EliminateAll projects out every variable in vs, in order.
func (s *System) EliminateAll(vs []string) *System {
	cur := s
	for _, v := range vs {
		cur = cur.Eliminate(v)
	}
	return cur
}

// IsEmpty reports whether the system has no rational solution: after
// eliminating every variable, some constant constraint is violated.
// Empty here is definitive; "not empty" may still be integer-empty, which
// is a safe over-approximation for dependence analysis (a spurious
// dependence can only suppress a parallelization, never break one).
func (s *System) IsEmpty() bool {
	cur := s.normalizeEqs()
	for {
		vars := cur.Vars()
		// Check constant rows as soon as they appear.
		for _, c := range cur.Cons {
			if c.Expr.IsConst() && c.Expr.Const < 0 {
				return true
			}
		}
		if len(vars) == 0 {
			return false
		}
		cur = cur.Eliminate(vars[0])
	}
}

// Bounds computes the rational lower and upper bounds of variable v over
// the system by eliminating all other variables. Unbounded directions
// report ok=false for the respective side.
func (s *System) Bounds(v string) (lo int64, hasLo bool, hi int64, hasHi bool) {
	cur := s.normalizeEqs()
	for _, other := range cur.Vars() {
		if other != v {
			cur = cur.Eliminate(other)
		}
	}
	hasLo, hasHi = false, false
	for _, c := range cur.Cons {
		coef := c.Expr.CoefOf(v)
		if coef == 0 {
			continue
		}
		// coef·v + const >= 0
		if coef > 0 {
			// v >= ceil(-const/coef)
			b := ceilDiv(-c.Expr.Const, coef)
			if !hasLo || b > lo {
				lo, hasLo = b, true
			}
		} else {
			// v <= floor(const/(-coef))
			b := floorDiv(c.Expr.Const, -coef)
			if !hasHi || b < hi {
				hi, hasHi = b, true
			}
		}
	}
	return lo, hasLo, hi, hasHi
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// SymbolicBounds extracts, for variable v, the set of affine lower and
// upper bound expressions implied by the system in terms of the remaining
// variables (after eliminating the variables listed in elim). Each
// returned bound is the affine rhs of v >= lb or v <= ub, with the
// convention that integer division is rounded toward the feasible side.
// This is the code-generation step (CLooG's role): loop bounds for
// transformed iterators are max(lowers) .. min(uppers).
func (s *System) SymbolicBounds(v string, elim []string) (lowers, uppers []Bound) {
	cur := s.normalizeEqs().EliminateAll(elim)
	for _, c := range cur.Cons {
		coef := c.Expr.CoefOf(v)
		if coef == 0 {
			continue
		}
		rest := c.Expr.Clone()
		delete(rest.Coef, v)
		if coef > 0 {
			// coef·v >= -rest  →  v >= ceil(-rest/coef)
			lowers = append(lowers, Bound{Expr: rest.Scale(-1), Div: coef, Ceil: true})
		} else {
			// -coef·v <= rest  →  v <= floor(rest/-coef)
			uppers = append(uppers, Bound{Expr: rest, Div: -coef, Ceil: false})
		}
	}
	return lowers, uppers
}

// Bound is an affine expression divided by a positive constant, with
// ceiling or floor rounding: Expr/Div rounded up (Ceil) or down.
type Bound struct {
	Expr Affine
	Div  int64
	Ceil bool
}

// String renders the bound.
func (b Bound) String() string {
	if b.Div == 1 {
		return b.Expr.String()
	}
	mode := "floord"
	if b.Ceil {
		mode = "ceild"
	}
	return fmt.Sprintf("%s(%s, %d)", mode, b.Expr.String(), b.Div)
}

// Eval evaluates the bound under an assignment.
func (b Bound) Eval(env map[string]int64) int64 {
	v := b.Expr.Eval(env)
	if b.Div == 1 {
		return v
	}
	if b.Ceil {
		return ceilDiv(v, b.Div)
	}
	return floorDiv(v, b.Div)
}
