package poly

import (
	"fmt"
	"strings"
)

// Access is one array access with affine subscripts in the iterators and
// parameters of the enclosing nest.
type Access struct {
	Array string
	Subs  []Affine
	Write bool
	// Reduction marks the access as part of a recognized reduction
	// statement (s op= expr for an associative-commutative op whose only
	// uses in the nest are that compound assignment; array reductions
	// like hist[a[i]]++ tag their star accesses the same way).
	// Dependences whose endpoints are both reduction accesses do not
	// serialize the nest: the runtime privatizes the accumulator per
	// worker and combines in a fixed order after the loop.
	Reduction bool
	// Star marks a data-dependent subscript (a gather/scatter like
	// hist[a[i]] whose cell cannot be expressed affinely). A star
	// access conservatively may touch any cell of the array, so
	// dependence analysis pairs it with every other access of the same
	// array without subscript equations.
	Star bool
	// Expr is the printed source form of the access ("hist[a[i]]"),
	// set for star accesses so diagnostics can name the offending
	// read; empty for ordinary affine accesses.
	Expr string
	// Index names the index array of a gather-shaped star access
	// (the "idx" of x[idx[i]]), when the subscript has that shape.
	Index string
	// Ref is the source syntax node (an ast.Expr) of a star access, the
	// key under which the value-range analysis records bounds proofs.
	// Typed as any so the polyhedral layer stays syntax-free.
	Ref any
	// Bounded marks a star read proven in-bounds by the value-range
	// analysis: it can never trap, so a nest whose only star accesses
	// are bounded reads (with no write to the same arrays) is safe to
	// parallelize.
	Bounded bool
	// Note carries the analysis' explanation when the proof failed
	// ("idx range unknown", or the derived interval vs the extent).
	Note string
	// Via names the source pointer of an access the alias analysis
	// resolved to its points-to region: Array then holds the region
	// name (the pointer's constant element offset folded into the
	// first subscript), so accesses through different pointers into
	// one region pair up in dependence analysis. It is also set, with
	// Array left as the pointer name, on accesses the analysis could
	// not resolve. Empty for direct array accesses.
	Via string
	// MayAlias marks an access through a pointer the alias analysis
	// could not resolve to a unique region. Such an access may touch
	// any array, so the transformer force-serializes the nest when the
	// access is a write — or a read beside any array write — because
	// concurrent iterations could reorder conflicting touches of the
	// hidden target region.
	MayAlias bool
}

// String renders the access like "A[i][j+1]"; star accesses render
// their source form with a [*] marker.
func (a Access) String() string {
	var b strings.Builder
	if a.Star {
		if a.Expr != "" {
			b.WriteString(a.Expr)
		} else {
			b.WriteString(a.Array + "[*]")
		}
		if a.Write {
			b.WriteString(" (write)")
		}
		return b.String()
	}
	b.WriteString(a.Array)
	for _, s := range a.Subs {
		fmt.Fprintf(&b, "[%s]", s.String())
	}
	if a.Write {
		b.WriteString(" (write)")
	}
	return b.String()
}

// Statement is one polyhedral statement: a body statement of a loop nest
// together with its array accesses. Seq is its textual position within
// the innermost body, used for loop-independent ordering.
type Statement struct {
	ID     int
	Seq    int
	Reads  []Access
	Writes []Access
	Label  string // diagnostic label, e.g. printed source
}

// Accesses returns reads and writes combined.
func (s *Statement) Accesses() []Access {
	out := make([]Access, 0, len(s.Reads)+len(s.Writes))
	out = append(out, s.Writes...)
	out = append(out, s.Reads...)
	return out
}

// Nest is a perfect affine loop nest: an ordered iterator list, the
// iteration domain as a constraint system over iterators and parameters,
// and the statements of the innermost body.
type Nest struct {
	Iters  []string
	Params []string
	Domain *System
	Stmts  []*Statement
}

// Depth returns the number of loops.
func (n *Nest) Depth() int { return len(n.Iters) }

// isIter reports whether v is one of the nest iterators.
func (n *Nest) isIter(v string) bool {
	for _, it := range n.Iters {
		if it == v {
			return true
		}
	}
	return false
}

// Points enumerates all integer points of the domain under the given
// parameter values (tests only; exponential in depth).
func (n *Nest) Points(params map[string]int64) [][]int64 {
	sys := n.Domain.Clone()
	for p, v := range params {
		sys.AddEQ(Var(p).Sub(NewAffine(v)))
	}
	var out [][]int64
	var rec func(level int, env map[string]int64)
	rec = func(level int, env map[string]int64) {
		if level == len(n.Iters) {
			pt := make([]int64, len(n.Iters))
			for i, it := range n.Iters {
				pt[i] = env[it]
			}
			out = append(out, pt)
			return
		}
		// Bound the current iterator given the fixed outer values.
		cur := sys.Clone()
		for i := 0; i < level; i++ {
			cur.AddEQ(Var(n.Iters[i]).Sub(NewAffine(env[n.Iters[i]])))
		}
		inner := append([]string{}, n.Iters[level+1:]...)
		cur = cur.EliminateAll(inner)
		lo, hasLo, hi, hasHi := cur.Bounds(n.Iters[level])
		if !hasLo || !hasHi {
			return
		}
		for v := lo; v <= hi; v++ {
			env[n.Iters[level]] = v
			// Validate against the full system restricted to known vars.
			rec(level+1, env)
		}
		delete(env, n.Iters[level])
	}
	rec(0, map[string]int64{})
	// Filter points that do not satisfy the full domain (FM projection
	// may over-approximate).
	valid := out[:0]
	for _, pt := range out {
		env := map[string]int64{}
		for p, v := range params {
			env[p] = v
		}
		for i, it := range n.Iters {
			env[it] = pt[i]
		}
		if n.Domain.Satisfies(env) {
			valid = append(valid, pt)
		}
	}
	return valid
}

// ----------------------------------------------------------------------------
// Dependence analysis

// DistEntry is one component of a dependence distance vector.
type DistEntry struct {
	Known          bool  // the component is a compile-time constant
	Val            int64 // value when Known
	Min            int64 // rational bounds when not exactly known
	Max            int64
	HasMin, HasMax bool
}

// String renders the entry; unknown components print as ranges or '*'.
func (d DistEntry) String() string {
	if d.Known {
		return fmt.Sprintf("%d", d.Val)
	}
	if d.HasMin && d.HasMax {
		return fmt.Sprintf("[%d..%d]", d.Min, d.Max)
	}
	return "*"
}

// Dep is a data dependence between two statement instances.
type Dep struct {
	Src, Dst *Statement
	Array    string
	// Level is the loop level carrying the dependence (1-based);
	// 0 means loop-independent (same iteration, statement order).
	Level int
	// Dist is the distance vector over the common loops.
	Dist []DistEntry
	// Kind is flow (write→read), anti (read→write) or output
	// (write→write).
	Kind DepKind
	// Reduction marks a dependence between two reduction accesses of the
	// same accumulator. Such dependences are real (the loop does carry
	// them) but do not forbid parallel execution: the parallel-reduction
	// runtime resolves them with private accumulators.
	Reduction bool
}

// DepKind classifies a dependence.
type DepKind int

// Dependence kinds.
const (
	Flow DepKind = iota
	Anti
	Output
)

var depKindNames = [...]string{"flow", "anti", "output"}

// String returns the dependence kind name.
func (k DepKind) String() string { return depKindNames[k] }

// String renders the dependence.
func (d *Dep) String() string {
	parts := make([]string, len(d.Dist))
	for i, e := range d.Dist {
		parts[i] = e.String()
	}
	suffix := ""
	if d.Reduction {
		suffix = " (reduction)"
	}
	return fmt.Sprintf("%s dep on %s S%d->S%d level %d dist (%s)%s",
		d.Kind, d.Array, d.Src.ID, d.Dst.ID, d.Level, strings.Join(parts, ","), suffix)
}

const srcSuffix = "$s"
const dstSuffix = "$t"

// AnalyzeDeps computes all dependences of the nest: for every pair of
// accesses to the same array with at least one write, and every carrying
// level, it builds the dependence polyhedron (both instances in the
// domain, equal subscripts, source lexicographically before target) and
// tests emptiness with Fourier–Motzkin. Non-empty systems yield a Dep
// with its distance vector bounds.
func AnalyzeDeps(n *Nest) []*Dep {
	var deps []*Dep
	for _, s1 := range n.Stmts {
		for _, s2 := range n.Stmts {
			for _, a1 := range s1.Accesses() {
				for _, a2 := range s2.Accesses() {
					if a1.Array != a2.Array || (!a1.Write && !a2.Write) {
						continue
					}
					if !a1.Star && !a2.Star && len(a1.Subs) != len(a2.Subs) {
						continue
					}
					deps = append(deps, depsForPair(n, s1, s2, a1, a2)...)
				}
			}
		}
	}
	return deps
}

// depsForPair finds the dependences with source access a1 in s1 and
// target access a2 in s2.
func depsForPair(n *Nest, s1, s2 *Statement, a1, a2 Access) []*Dep {
	base := NewSystem()
	rename := func(suffix string) func(string) string {
		return func(v string) string {
			if n.isIter(v) {
				return v + suffix
			}
			return v // parameters shared
		}
	}
	for _, c := range n.Domain.Cons {
		base.Add(Constraint{Expr: c.Expr.Rename(rename(srcSuffix)), Rel: c.Rel})
		base.Add(Constraint{Expr: c.Expr.Rename(rename(dstSuffix)), Rel: c.Rel})
	}
	// A star access may touch any cell, so no subscript equation can
	// constrain the dependence polyhedron: every instance pair that the
	// ordering admits conflicts conservatively.
	if !a1.Star && !a2.Star {
		for k := range a1.Subs {
			eq := a1.Subs[k].Rename(rename(srcSuffix)).Sub(a2.Subs[k].Rename(rename(dstSuffix)))
			base.AddEQ(eq)
		}
	}
	kind := classifyDep(a1, a2)
	reduction := a1.Reduction && a2.Reduction
	var out []*Dep
	// Carried at level l: outer iterators equal, level-l source < target.
	for l := 1; l <= n.Depth(); l++ {
		sys := base.Clone()
		for k := 0; k < l-1; k++ {
			it := n.Iters[k]
			sys.AddEQ(Var(it + srcSuffix).Sub(Var(it + dstSuffix)))
		}
		it := n.Iters[l-1]
		// dst - src >= 1
		sys.AddGE(Var(it + dstSuffix).Sub(Var(it + srcSuffix)).Sub(NewAffine(1)))
		if sys.IsEmpty() {
			continue
		}
		out = append(out, &Dep{
			Src: s1, Dst: s2, Array: a1.Array, Level: l, Kind: kind,
			Dist: distVector(n, sys), Reduction: reduction,
		})
	}
	// Loop-independent dependence: same iteration, s1 textually before s2
	// (or a write/read pair within one statement).
	if s1.Seq < s2.Seq || (s1 == s2 && a1.Write != a2.Write) {
		sys := base.Clone()
		for _, it := range n.Iters {
			sys.AddEQ(Var(it + srcSuffix).Sub(Var(it + dstSuffix)))
		}
		if !sys.IsEmpty() && s1.Seq < s2.Seq {
			out = append(out, &Dep{
				Src: s1, Dst: s2, Array: a1.Array, Level: 0, Kind: kind,
				Dist: zeroDist(n.Depth()), Reduction: reduction,
			})
		}
	}
	return out
}

func classifyDep(a1, a2 Access) DepKind {
	switch {
	case a1.Write && a2.Write:
		return Output
	case a1.Write:
		return Flow
	default:
		return Anti
	}
}

func zeroDist(d int) []DistEntry {
	out := make([]DistEntry, d)
	for i := range out {
		out[i] = DistEntry{Known: true}
	}
	return out
}

// distVector computes per-level bounds of dst−src over the dependence
// polyhedron sys.
func distVector(n *Nest, sys *System) []DistEntry {
	out := make([]DistEntry, n.Depth())
	for k, it := range n.Iters {
		cur := sys.Clone()
		delta := "delta$" + it
		cur.AddEQ(Var(delta).Sub(Var(it + dstSuffix)).Add(Var(it + srcSuffix)))
		lo, hasLo, hi, hasHi := cur.Bounds(delta)
		e := DistEntry{Min: lo, Max: hi, HasMin: hasLo, HasMax: hasHi}
		if hasLo && hasHi && lo == hi {
			e.Known = true
			e.Val = lo
		}
		out[k] = e
	}
	return out
}
